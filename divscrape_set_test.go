package divscrape_test

import (
	"bytes"
	"testing"
	"time"

	"divscrape"
)

func setGen(t *testing.T, seed uint64, dur time.Duration) *divscrape.Generator {
	t.Helper()
	gen, err := divscrape.NewGenerator(divscrape.GeneratorConfig{Seed: seed, Duration: dur})
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// TestTrajectoryNonInterference is the metamorphic guarantee behind the
// third detector: adding trajectory to the set leaves the sentinel and
// arcane verdict streams exactly as they were. Detectors share only the
// enricher, whose outputs do not depend on how many detectors consume
// them, so slot i of the pair run must equal slot i of the triple run on
// every single event.
func TestTrajectoryNonInterference(t *testing.T) {
	pair, err := divscrape.NewDetectorSet()
	if err != nil {
		t.Fatal(err)
	}
	triple, err := divscrape.NewDetectorSet("sentinel", "arcane", "trajectory")
	if err != nil {
		t.Fatal(err)
	}
	vp := make([]divscrape.Verdict, pair.Len())
	vt := make([]divscrape.Verdict, triple.Len())
	n := 0
	err = setGen(t, 41, 4*time.Hour).Run(func(ev divscrape.Event) error {
		pair.InspectInto(ev.Entry, vp)
		triple.InspectInto(ev.Entry, vt)
		if vp[0] != vt[0] || vp[1] != vt[1] {
			t.Fatalf("event %d: pair verdicts changed under trajectory:\n pair:   %+v %+v\n triple: %+v %+v",
				n, vp[0], vp[1], vt[0], vt[1])
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty run")
	}
}

// TestAnalyzeThreeWaySharded: the three-detector set reports identical
// summaries from the sequential, sharded and relaxed entry points — the
// same mode-equivalence contract the pair has always had, now covering a
// detector whose state includes a trained model shared across shards.
func TestAnalyzeThreeWaySharded(t *testing.T) {
	names := []string{"sentinel", "arcane", "trajectory"}
	set, err := divscrape.NewDetectorSet(names...)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := divscrape.AnalyzeSet(setGen(t, 42, 4*time.Hour), set)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Detectors) != 3 {
		t.Fatalf("summary holds %d detectors, want 3", len(seq.Detectors))
	}
	if _, ok := seq.ConfusionOf("trajectory"); !ok {
		t.Fatal("summary missing trajectory confusion")
	}
	sharded, err := divscrape.AnalyzeShardedSet(setGen(t, 42, 4*time.Hour), 3, names...)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := divscrape.AnalyzeShardedRelaxedSet(setGen(t, 42, 4*time.Hour), 3, names...)
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range []*divscrape.Summary{sharded, relaxed} {
		if got.Total != seq.Total || got.Contingency != seq.Contingency {
			t.Fatalf("mode summary differs: %+v vs %+v", got, seq)
		}
		for i := range seq.Detectors {
			if got.Detectors[i] != seq.Detectors[i] {
				t.Fatalf("detector %d confusion differs: %+v vs %+v",
					i, got.Detectors[i], seq.Detectors[i])
			}
		}
	}
}

// TestSetSnapshotPairCompatible: a DetectorPair snapshot and a default
// DetectorSet snapshot are the same bytes, and each restores into the
// other — the set generalisation did not fork the state format.
func TestSetSnapshotPairCompatible(t *testing.T) {
	pair, err := divscrape.NewDetectorPair()
	if err != nil {
		t.Fatal(err)
	}
	set, err := divscrape.NewDetectorSet()
	if err != nil {
		t.Fatal(err)
	}
	err = setGen(t, 43, 90*time.Minute).Run(func(ev divscrape.Event) error {
		pair.Inspect(ev.Entry)
		set.InspectInto(ev.Entry, make([]divscrape.Verdict, set.Len()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var fromPair, fromSet bytes.Buffer
	if err := divscrape.Snapshot(&fromPair, pair); err != nil {
		t.Fatal(err)
	}
	if err := divscrape.SnapshotSet(&fromSet, set); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromPair.Bytes(), fromSet.Bytes()) {
		t.Error("pair and default-set snapshots are not byte-identical")
	}
	if _, err := divscrape.ResumeSet(bytes.NewReader(fromPair.Bytes())); err != nil {
		t.Fatalf("set resume from pair snapshot: %v", err)
	}
	if _, err := divscrape.Resume(bytes.NewReader(fromSet.Bytes())); err != nil {
		t.Fatalf("pair resume from set snapshot: %v", err)
	}
}

// TestUnknownDetectorName: the registry rejects typos with the available
// names in the message.
func TestUnknownDetectorName(t *testing.T) {
	if _, err := divscrape.NewDetectorSet("sentinel", "arcana"); err == nil {
		t.Fatal("unknown detector name accepted")
	}
	if _, err := divscrape.FactoriesFor("nope"); err == nil {
		t.Fatal("unknown factory name accepted")
	}
}
