package httpguard

import (
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"strings"
)

// Client-address derivation behind reverse proxies. Detection and
// enforcement key on the client IP; without this, a guard deployed behind
// any load balancer or CDN sees every request arrive from the proxy's
// address — all traffic collapses into one "client" (and one shard), and
// the first scraper to trip the ladder takes the whole site down with it.
// Forwarding headers are only honoured when the immediate peer is listed
// in Config.TrustedProxies, because any client can fabricate them.

// trustedNets is the parsed Config.TrustedProxies list.
type trustedNets []netip.Prefix

// parseTrustedProxies accepts bare IPs ("10.0.0.1") and CIDR prefixes
// ("10.0.0.0/8").
func parseTrustedProxies(list []string) (trustedNets, error) {
	if len(list) == 0 {
		return nil, nil
	}
	nets := make(trustedNets, 0, len(list))
	for _, s := range list {
		if strings.ContainsRune(s, '/') {
			p, err := netip.ParsePrefix(s)
			if err != nil {
				return nil, fmt.Errorf("trusted proxy %q: %w", s, err)
			}
			nets = append(nets, p.Masked())
			continue
		}
		a, err := netip.ParseAddr(s)
		if err != nil {
			return nil, fmt.Errorf("trusted proxy %q: %w", s, err)
		}
		nets = append(nets, netip.PrefixFrom(a, a.BitLen()))
	}
	return nets, nil
}

func (t trustedNets) contains(host string) bool {
	if len(t) == 0 {
		return false
	}
	a, err := netip.ParseAddr(host)
	if err != nil {
		return false
	}
	a = a.Unmap()
	for _, p := range t {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// clientIP derives the address detection should key on. Directly
// connected clients are identified by the TCP peer. When the peer is a
// trusted proxy, the X-Forwarded-For chain is walked right to left past
// any further trusted hops; the first untrusted address is the client.
// X-Real-IP is the fallback for proxies that only set that header. A
// malformed or absent forwarding chain falls back to the peer address.
func (g *Guard) clientIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	if !g.trusted.contains(host) {
		return host
	}
	if xff := strings.Join(r.Header.Values("X-Forwarded-For"), ","); xff != "" {
		raw := strings.Split(xff, ",")
		// Empty elements — a trailing comma, doubled separators, an empty
		// header instance — are separator artefacts, not forged hops; drop
		// them rather than letting the malformed-chain break below discard
		// the valid client address to their left.
		hops := raw[:0]
		for _, h := range raw {
			if s := strings.TrimSpace(h); s != "" {
				hops = append(hops, s)
			}
		}
		for i := len(hops) - 1; i >= 0; i-- {
			hop := hops[i]
			if _, err := netip.ParseAddr(hop); err != nil {
				break // forged or malformed chain: trust nothing to its left
			}
			if !g.trusted.contains(hop) {
				return hop
			}
			if i == 0 {
				// Every hop is a trusted proxy; the leftmost entry is the
				// closest thing to a client the chain names.
				return hop
			}
		}
	}
	if xr := strings.TrimSpace(r.Header.Get("X-Real-IP")); xr != "" {
		if _, err := netip.ParseAddr(xr); err == nil {
			return xr
		}
	}
	return host
}
