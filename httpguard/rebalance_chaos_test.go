package httpguard

import (
	"errors"
	"net/http"
	"strconv"
	"testing"

	"divscrape/internal/faultinject"
)

// Rebalance under injected failure: a snapshot or restore fault
// mid-rebalance must abort the swap cleanly — the guard keeps serving on
// the old topology, the topology RWMutex is released (no wedged writer),
// and a later clean Rebalance succeeds with all client state intact.

func TestChaosRebalanceSnapshotFaultKeepsOldTopology(t *testing.T) {
	testChaosRebalanceFault(t, "httpguard.rebalance.snapshot")
}

func TestChaosRebalanceRestoreFaultKeepsOldTopology(t *testing.T) {
	testChaosRebalanceFault(t, "httpguard.rebalance.restore")
}

func testChaosRebalanceFault(t *testing.T, point string) {
	t.Helper()
	g, _ := chaosGuard(t, func(c *Config) { c.Shards = 3 })
	h := g.Wrap(okHandler())

	// Warm some per-client state so an aborted swap would have something
	// to lose.
	for i := 0; i < 40; i++ {
		ip := "10.1." + strconv.Itoa(i%7) + ".25"
		if rec := do(t, h, ip, browserUA, "/p/"+strconv.Itoa(i)); rec.Code != http.StatusOK {
			t.Fatalf("warmup %d: %d", i, rec.Code)
		}
	}
	totalBefore, _, _ := g.Stats()

	faultinject.Enable(point, faultinject.Fault{
		Err: errors.New("injected rebalance failure"), Times: 1,
	})
	if err := g.Rebalance(5); err == nil {
		t.Fatalf("rebalance swallowed the injected %s fault", point)
	}
	if got := g.Shards(); got != 3 {
		t.Fatalf("failed rebalance changed topology: %d shards, want 3", got)
	}

	// The topology lock must be free and the old shard set fully live:
	// requests keep flowing and keep counting.
	for i := 0; i < 10; i++ {
		if rec := do(t, h, "10.1.2.25", browserUA, "/after/"+strconv.Itoa(i)); rec.Code != http.StatusOK {
			t.Fatalf("post-fault request %d: %d", i, rec.Code)
		}
	}
	if total, _, _ := g.Stats(); total != totalBefore+10 {
		t.Fatalf("stats did not advance on old topology: %d → %d", totalBefore, total)
	}

	// Fault exhausted (Times: 1): the same rebalance now succeeds and the
	// warmed state survived the aborted attempt.
	if err := g.Rebalance(5); err != nil {
		t.Fatalf("clean rebalance after fault: %v", err)
	}
	if got := g.Shards(); got != 5 {
		t.Fatalf("Shards() = %d after clean Rebalance(5)", got)
	}
	if total, _, _ := g.Stats(); total != totalBefore+10 {
		t.Fatalf("rebalance lost counters: %d, want %d", total, totalBefore+10)
	}
	if rec := do(t, h, "10.1.2.25", browserUA, "/final"); rec.Code != http.StatusOK {
		t.Fatalf("post-rebalance request: %d", rec.Code)
	}
}
