package httpguard

import (
	"time"

	"divscrape/internal/cluster"
	"divscrape/internal/iprep"
	"divscrape/internal/mitigate"
	"divscrape/internal/sessions"
)

// cluster.Backend implementation: the guard's replicable state plane.
// Ladder digests live in the per-shard mitigation engines, overlay
// entries in the shared reputation DB, session digests in the per-shard
// detector stores. Every method composes the guard's existing locking —
// g.mu shared for the topology, the shard mutex for per-client state —
// so replication interleaves safely with serving and Rebalance.

// Compile-time check that Guard satisfies the cluster state plane.
var _ cluster.Backend = (*Guard)(nil)

// LadderDigestsSince streams mitigation-ladder digests for clients
// active at or after since across every shard.
func (g *Guard) LadderDigestsSince(since time.Time, fn func(mitigate.ClientDigest)) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, s := range g.shards {
		s.mu.Lock()
		s.engine.DigestsSince(since, fn)
		s.mu.Unlock()
	}
}

// MergeLadderDigest folds a replicated ladder digest into the shard that
// owns the client, last-writer-wins. Digests whose key is not a parseable
// client address are rejected — the shard route would be undefined.
func (g *Guard) MergeLadderDigest(d mitigate.ClientDigest) bool {
	ip, err := iprep.ParseIPv4(d.Key)
	if err != nil {
		return false
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(g.shards) == 0 {
		return false
	}
	s := g.shards[g.shardIndex(ip, len(g.shards))]
	s.mu.Lock()
	ok := s.engine.MergeDigest(d)
	s.mu.Unlock()
	return ok
}

// OverlayEntries streams the live temporary reputation-overlay entries.
func (g *Guard) OverlayEntries(fn func(iprep.TempEntry)) {
	g.enricher.Reputation().TempEntries(fn)
}

// MergeOverlayEntry folds a replicated overlay entry into the shared
// reputation DB, longest-lease-wins.
func (g *Guard) MergeOverlayEntry(e iprep.TempEntry) bool {
	return g.enricher.Reputation().MergeTemporary(e)
}

// SessionDigestsSince streams detector-session digests for sessions
// active at or after since, both detector sides, across every shard.
func (g *Guard) SessionDigestsSince(since time.Time, fn func(cluster.SessionDigest)) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, s := range g.shards {
		s.mu.Lock()
		s.sen.SessionsSince(since, func(k sessions.Key, last time.Time) {
			fn(cluster.SessionDigest{Side: cluster.SideSentinel, IP: k.IP,
				UAHash: k.UAHash, LastSeen: last.UnixNano()})
		})
		s.arc.SessionsSince(since, func(k sessions.Key, last time.Time) {
			fn(cluster.SessionDigest{Side: cluster.SideArcane, IP: k.IP,
				UAHash: k.UAHash, LastSeen: last.UnixNano()})
		})
		if s.traj != nil {
			s.traj.SessionsSince(since, func(k sessions.Key, last time.Time) {
				fn(cluster.SessionDigest{Side: cluster.SideTrajectory, IP: k.IP,
					UAHash: k.UAHash, LastSeen: last.UnixNano()})
			})
		}
		s.mu.Unlock()
	}
}

// SetEscalationFrozen freezes (or thaws) ladder escalation across every
// shard — the cluster's fail-closed response to quorum loss. The flag is
// guard-level state so Rebalance re-applies it to rebuilt shards.
func (g *Guard) SetEscalationFrozen(frozen bool) {
	g.escFrozen.Store(frozen)
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, s := range g.shards {
		s.mu.Lock()
		s.engine.SetEscalationFrozen(frozen)
		s.mu.Unlock()
	}
}

// EscalationFrozen reports whether ladder escalation is currently frozen.
func (g *Guard) EscalationFrozen() bool { return g.escFrozen.Load() }
