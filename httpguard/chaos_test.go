package httpguard

import (
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"divscrape/internal/faultinject"
)

// The guard's chaos suite: panics, stalls and clock skew injected into
// the inspect path, with the degraded-mode policy's promises checked on
// the wire. None of these tests sleep — stalls are channel handshakes
// through the faultinject sleep hook, and quarantine backoff runs on the
// guard's injected clock.

// chaosGuard builds a single-shard guard on a manually advanced clock,
// with the admission gate disabled unless the test enables it.
func chaosGuard(t *testing.T, mut func(*Config)) (*Guard, *time.Time) {
	t.Helper()
	t.Cleanup(faultinject.Reset)
	now := time.Date(2018, 3, 12, 10, 0, 0, 0, time.UTC)
	cfg := Config{
		Action:            Observe,
		Shards:            1,
		MaxInFlight:       -1,
		QuarantineBackoff: 10 * time.Second,
		Now:               func() time.Time { return now },
		Sleep:             func(time.Duration) {},
	}
	if mut != nil {
		mut(&cfg)
	}
	return newGuard(t, cfg), &now
}

// warmToSnapshot drives enough distinct-path requests through the guard
// to cross the sweep slot, so every shard holds a last-good snapshot.
func warmToSnapshot(t *testing.T, h http.Handler, ip string) {
	t.Helper()
	for i := 0; i < sweepEvery; i++ {
		if rec := do(t, h, ip, browserUA, "/product/"+strconv.Itoa(i)); rec.Code != http.StatusOK {
			t.Fatalf("warmup request %d: %d", i, rec.Code)
		}
	}
}

func TestChaosPanicQuarantinesAndFailOpenKeepsServing(t *testing.T) {
	var events []DegradedEvent
	g, now := chaosGuard(t, func(c *Config) {
		c.OnDegraded = func(ev DegradedEvent) { events = append(events, ev) }
	})
	h := g.Wrap(okHandler())
	warmToSnapshot(t, h, "172.16.0.9")
	if hs := g.Health(); !hs.PerShard[0].Sentinel.HasSnapshot {
		t.Fatal("no last-good snapshot after a sweep slot")
	}

	// The sentinel panics once mid-inspect. Fail-open: the request is
	// still served on the behavioural detector alone.
	faultinject.Enable("httpguard.inspect.sentinel", faultinject.Fault{Panic: "injected detector bug", Times: 1})
	if rec := do(t, h, "172.16.0.9", browserUA, "/page"); rec.Code != http.StatusOK {
		t.Fatalf("fail-open served %d during panic, want 200", rec.Code)
	}
	hs := g.Health()
	if hs.Healthy {
		t.Fatal("guard healthy with a quarantined detector")
	}
	if dh := hs.PerShard[0].Sentinel; !dh.Quarantined || dh.Reason != "injected detector bug" {
		t.Fatalf("sentinel health %+v", dh)
	}
	if hs.Panics["sentinel"] != 1 {
		t.Fatalf("panic counter %v", hs.Panics)
	}

	// Requests during quarantine keep flowing, counted as degraded.
	for i := 0; i < 5; i++ {
		if rec := do(t, h, "172.16.0.9", browserUA, "/page"); rec.Code != http.StatusOK {
			t.Fatalf("degraded request served %d", rec.Code)
		}
	}
	if hs := g.Health(); hs.DegradedRequests < 6 {
		t.Fatalf("degraded requests %d, want >= 6", hs.DegradedRequests)
	}

	// Before the backoff elapses no restore is attempted; after it, the
	// next request rebuilds the detector from the last good snapshot.
	*now = now.Add(g.cfg.QuarantineBackoff + time.Second)
	if rec := do(t, h, "172.16.0.9", browserUA, "/page"); rec.Code != http.StatusOK {
		t.Fatalf("restore request served %d", rec.Code)
	}
	hs = g.Health()
	if !hs.Healthy || hs.Restores["sentinel"] != 1 {
		t.Fatalf("after backoff: healthy=%v restores=%v", hs.Healthy, hs.Restores)
	}
	// The restored detector carries its snapshot state: the warmed
	// clients are still known, not a cold start.
	if st := g.State(); st.PerShard[0].SentinelClients == 0 {
		t.Fatal("restore came back cold despite a last-good snapshot")
	}
	// The observer saw exactly one quarantine and one restore.
	if len(events) != 2 || events[0].Kind != "quarantine" || events[1].Kind != "restore" {
		t.Fatalf("degraded events %+v", events)
	}
	if events[0].Detector != "sentinel" || events[0].Reason != "injected detector bug" {
		t.Fatalf("quarantine event %+v", events[0])
	}
}

func TestChaosFailClosedRefusesUntilRestore(t *testing.T) {
	g, now := chaosGuard(t, func(c *Config) { c.Degraded = FailClosed })
	h := g.Wrap(okHandler())
	if rec := do(t, h, "10.1.1.1", browserUA, "/"); rec.Code != http.StatusOK {
		t.Fatalf("healthy fail-closed guard served %d", rec.Code)
	}

	faultinject.Enable("httpguard.inspect.arcane", faultinject.Fault{Panic: "behavioural bug", Times: 1})
	rec := do(t, h, "10.1.1.1", browserUA, "/")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("fail-closed served %d during panic, want 503", rec.Code)
	}
	if rec.Header().Get("X-Scrape-Verdict") != "degraded" || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("refusal headers: %v", rec.Header())
	}
	// Still refused while quarantined.
	if rec := do(t, h, "10.1.1.1", browserUA, "/"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("quarantined fail-closed served %d", rec.Code)
	}
	// The health endpoint mirrors the degradation as a 503.
	if rec := do(t, g.DebugHandler(), "10.9.9.9", browserUA, DebugHealthPath); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("health endpoint %d for degraded guard", rec.Code)
	}

	// Backoff elapses: the detector restores (cold — no snapshot was
	// ever taken) and service resumes.
	*now = now.Add(g.cfg.QuarantineBackoff + time.Second)
	if rec := do(t, h, "10.1.1.1", browserUA, "/"); rec.Code != http.StatusOK {
		t.Fatalf("restored fail-closed guard served %d", rec.Code)
	}
	if rec := do(t, g.DebugHandler(), "10.9.9.9", browserUA, DebugHealthPath); rec.Code != http.StatusOK {
		t.Fatalf("health endpoint %d for restored guard", rec.Code)
	}
}

func TestChaosRepeatPanicsDoubleTheBackoff(t *testing.T) {
	g, now := chaosGuard(t, nil)
	h := g.Wrap(okHandler())
	// Every sentinel inspect panics: each restore attempt immediately
	// re-quarantines, and the backoff must double instead of hot-looping
	// rebuilds.
	faultinject.Enable("httpguard.inspect.sentinel", faultinject.Fault{Panic: "persistent bug"})
	do(t, h, "10.2.2.2", browserUA, "/")
	first := g.Health().PerShard[0].Sentinel.RetryAt
	if want := now.Add(10 * time.Second); !first.Equal(want) {
		t.Fatalf("first retryAt %v, want %v", first, want)
	}
	*now = now.Add(11 * time.Second)
	do(t, h, "10.2.2.2", browserUA, "/")
	second := g.Health().PerShard[0].Sentinel.RetryAt
	if want := now.Add(20 * time.Second); !second.Equal(want) {
		t.Fatalf("second retryAt %v, want doubled backoff %v", second, want)
	}
	if p := g.Health().Panics["sentinel"]; p != 2 {
		t.Fatalf("panics %d, want 2", p)
	}
}

func TestChaosPanicPastDetectorBarrierReleasesShard(t *testing.T) {
	// A panic that escapes the detector barrier itself — here from the
	// OnDegraded observer, which runs under the shard mutex — must not
	// leave the mutex held or leak the admission slot: either would turn
	// one fault into a shard that first hangs queued requests and then
	// sheds 100% of its traffic forever.
	g, _ := chaosGuard(t, func(c *Config) {
		c.MaxInFlight = 1
		c.OnDegraded = func(DegradedEvent) { panic("observer bug") }
	})
	h := g.Wrap(okHandler())
	faultinject.Enable("httpguard.inspect.sentinel", faultinject.Fault{Panic: "injected detector bug", Times: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("observer panic did not propagate")
			}
		}()
		do(t, h, "10.6.6.6", browserUA, "/boom")
	}()
	if n := g.shards[0].inflight.Load(); n != 0 {
		t.Fatalf("admission gauge leaked: inflight %d after escaped panic", n)
	}
	// The shard lock was released on the way out: subsequent requests
	// are judged normally (fail-open, sentinel quarantined) instead of
	// deadlocking — and with MaxInFlight 1, a leaked slot would shed
	// every one of them.
	for i := 0; i < 3; i++ {
		if rec := do(t, h, "10.6.6.6", browserUA, "/after"); rec.Code != http.StatusOK {
			t.Fatalf("request after escaped panic served %d", rec.Code)
		}
	}
	if hs := g.Health(); hs.Shed != 0 {
		t.Fatalf("shed %d, want 0 — the admission slot must survive the panic", hs.Shed)
	}
}

func TestChaosOverloadShedsToDegradedPolicy(t *testing.T) {
	g, _ := chaosGuard(t, func(c *Config) { c.MaxInFlight = 1 })
	h := g.Wrap(okHandler())

	// A channel handshake through the injected stall: the first request
	// blocks mid-inspect holding its in-flight slot, the second must
	// shed without ever queueing on the shard lock.
	entered := make(chan struct{})
	release := make(chan struct{})
	faultinject.SetSleep(func(time.Duration) {
		close(entered)
		<-release
	})
	faultinject.Enable("httpguard.inspect.sentinel", faultinject.Fault{Delay: time.Second, Times: 1})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if rec := do(t, h, "10.3.3.3", browserUA, "/slow"); rec.Code != http.StatusOK {
			t.Errorf("stalled request served %d", rec.Code)
		}
	}()
	<-entered
	// Fail-open: the shed request is served, just not judged.
	if rec := do(t, h, "10.3.3.3", browserUA, "/shed"); rec.Code != http.StatusOK {
		t.Fatalf("fail-open shed request served %d", rec.Code)
	}
	close(release)
	wg.Wait()

	hs := g.Health()
	if hs.Shed != 1 {
		t.Fatalf("shed counter %d, want 1", hs.Shed)
	}
	if g.StatsDetail().Total != 2 {
		t.Fatalf("total %d, want 2 — shed requests are still counted", g.StatsDetail().Total)
	}
}

func TestChaosOverloadFailClosedRefuses(t *testing.T) {
	g, _ := chaosGuard(t, func(c *Config) {
		c.MaxInFlight = 1
		c.Degraded = FailClosed
	})
	h := g.Wrap(okHandler())

	entered := make(chan struct{})
	release := make(chan struct{})
	faultinject.SetSleep(func(time.Duration) {
		close(entered)
		<-release
	})
	faultinject.Enable("httpguard.inspect.sentinel", faultinject.Fault{Delay: time.Second, Times: 1})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		do(t, h, "10.4.4.4", browserUA, "/slow")
	}()
	<-entered
	rec := do(t, h, "10.4.4.4", browserUA, "/shed")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("fail-closed shed request served %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("refusal missing Retry-After")
	}
	close(release)
	wg.Wait()
	if hs := g.Health(); hs.Shed != 1 {
		t.Fatalf("shed counter %d", hs.Shed)
	}
}

func TestChaosClockSkewDoesNotDisturbService(t *testing.T) {
	g, _ := chaosGuard(t, nil)
	h := g.Wrap(okHandler())
	for i := 0; i < 10; i++ {
		if rec := do(t, h, "10.5.5.5", browserUA, "/a"); rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d", i, rec.Code)
		}
	}
	// The clock jumps three minutes backwards mid-stream (an NTP step).
	// The guard must keep judging — monotonising or tolerating regressed
	// event time is the detectors' documented contract.
	faultinject.Enable("httpguard.clock", faultinject.Fault{Skew: -3 * time.Minute, Times: 5})
	for i := 0; i < 5; i++ {
		if rec := do(t, h, "10.5.5.5", browserUA, "/b"); rec.Code != http.StatusOK {
			t.Fatalf("skewed request %d: %d", i, rec.Code)
		}
	}
	// Skew exhausted: time snaps forward again.
	for i := 0; i < 5; i++ {
		if rec := do(t, h, "10.5.5.5", browserUA, "/c"); rec.Code != http.StatusOK {
			t.Fatalf("post-skew request %d: %d", i, rec.Code)
		}
	}
	if total := g.StatsDetail().Total; total != 20 {
		t.Fatalf("total %d, want 20", total)
	}
	if !g.Health().Healthy {
		t.Fatal("clock skew degraded the guard")
	}
}
