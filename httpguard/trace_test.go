package httpguard

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"divscrape/internal/faultinject"
	"divscrape/internal/trace"
)

// tracedGuard builds a guard with the provenance plane armed and a
// deterministic clock, and drives one blatant scraper up the graduated
// ladder to Block.
func tracedGuard(t *testing.T, rec trace.RecorderConfig) (*Guard, http.Handler, string) {
	t.Helper()
	clock := newFakeClock()
	g := newGuard(t, Config{
		Policy: graduated(),
		Now:    func() time.Time { return clock.tick(time.Second) },
		Sleep:  func(time.Duration) {},
		Trace:  &rec,
	})
	h := g.Wrap(okHandler())
	const ip = "172.16.0.9"
	blocked := false
	for i := 0; i < 60; i++ {
		if do(t, h, ip, toolUA, "/api/price/"+strconv.Itoa(i)).Code == http.StatusForbidden {
			blocked = true
		}
	}
	if !blocked {
		t.Fatal("scraper never reached Block")
	}
	return g, h, ip
}

// The acceptance walk: a replayed scraper is driven to Block, and the
// explain endpoint returns the full provenance — per-detector verdicts,
// feature values and the rung transitions that led there.
func TestExplainEndpointShowsBlockProvenance(t *testing.T) {
	g, _, ip := tracedGuard(t, trace.RecorderConfig{})

	srv := httptest.NewServer(g.DebugHandler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + DebugExplainPath + "?client=" + ip)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var tl trace.Timeline
	if err := json.NewDecoder(res.Body).Decode(&tl); err != nil {
		t.Fatal(err)
	}
	if tl.Client != ip || len(tl.Records) == 0 {
		t.Fatalf("timeline empty: %+v", tl)
	}

	var sawEscalation, sawBlock, sawFeatures bool
	for _, r := range tl.Records {
		if len(r.Detectors) != 2 {
			t.Fatalf("record %d carries %d detector records, want 2", r.Seq, len(r.Detectors))
		}
		for _, dr := range r.Detectors {
			if dr.Detector != "sentinel" && dr.Detector != "arcane" {
				t.Fatalf("unexpected detector %q", dr.Detector)
			}
			if len(dr.Features) > 0 {
				sawFeatures = true
				for _, f := range dr.Features {
					if f.Name == "" {
						t.Fatalf("unnamed feature in %+v", dr)
					}
				}
			}
		}
		if r.Sampled == "escalation" {
			sawEscalation = true
			if r.RungBefore == r.RungAfter {
				t.Errorf("escalation record without a rung transition: %+v", r)
			}
		}
		if r.RungAfter == "block" {
			sawBlock = true
		}
	}
	if !sawEscalation {
		t.Error("no escalation was captured (escalations must always be sampled)")
	}
	if !sawBlock {
		t.Error("no record shows the block rung")
	}
	if !sawFeatures {
		t.Error("no record carries a feature snapshot")
	}

	// Escalation capture is unconditional: every rung increase of the
	// ladder walk must be on record even though head/rate sampling was
	// left at defaults.
	if res, err = srv.Client().Get(srv.URL + DebugExplainPath); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("explain without client answered %d, want 400", res.StatusCode)
	}
}

func TestTraceEndpointFilters(t *testing.T) {
	g, _, ip := tracedGuard(t, trace.RecorderConfig{})

	srv := httptest.NewServer(g.DebugHandler())
	defer srv.Close()
	get := func(query string) trace.TraceResponse {
		t.Helper()
		res, err := srv.Client().Get(srv.URL + DebugTracePath + query)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var doc trace.TraceResponse
		if err := json.NewDecoder(res.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	all := get("")
	if all.Stats.Seen == 0 || all.Stats.Captured == 0 || len(all.Records) == 0 {
		t.Fatalf("trace endpoint empty: %+v", all.Stats)
	}
	for _, r := range get("?action=block&client=" + ip).Records {
		if r.Action != "block" || r.Client != ip {
			t.Errorf("filtered record leaked through: %+v", r)
		}
	}
	if got := get("?limit=1"); len(got.Records) != 1 {
		t.Errorf("limit=1 returned %d records", len(got.Records))
	}
}

// A quarantine while tracing lands in the provenance event ring, so the
// explain timeline shows why a client's verdicts degraded.
func TestQuarantineEventsOnTimeline(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	clock := newFakeClock()
	g := newGuard(t, Config{
		Policy: graduated(),
		Now:    func() time.Time { return clock.tick(time.Second) },
		Sleep:  func(time.Duration) {},
		Trace:  &trace.RecorderConfig{},
	})
	h := g.Wrap(okHandler())
	faultinject.Enable("httpguard.inspect.sentinel", faultinject.Fault{Panic: "injected detector bug", Times: 1})
	const ip = "10.1.2.3"
	for i := 0; i < 40; i++ {
		do(t, h, ip, toolUA, "/api/item/"+strconv.Itoa(i))
	}
	tl := g.FlightRecorder().Explain(ip)
	var sawQuarantine, sawRestore bool
	for _, ev := range tl.Events {
		switch ev.Kind {
		case "quarantine":
			sawQuarantine = true
			if ev.Detector != "sentinel" || ev.Detail == "" {
				t.Errorf("quarantine event incomplete: %+v", ev)
			}
		case "restore":
			sawRestore = true
		}
	}
	if !sawQuarantine || !sawRestore {
		t.Errorf("timeline events missing quarantine=%v restore=%v: %+v",
			sawQuarantine, sawRestore, tl.Events)
	}
}

// Stage histograms from the guard's decide path land on the same
// metrics page DebugHandler already serves.
func TestGuardStageHistogramsOnMetricsPage(t *testing.T) {
	g, _, _ := tracedGuard(t, trace.RecorderConfig{})
	srv := httptest.NewServer(g.DebugHandler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + DebugMetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`divscrape_stage_seconds_count{stage="enrich"}`,
		`divscrape_stage_seconds_count{detector="sentinel",stage="detect"}`,
		`divscrape_stage_seconds_count{detector="arcane",stage="detect"}`,
		`divscrape_stage_seconds_count{stage="ensemble"}`,
		"divscrape_trace_decisions_total",
		"divscrape_trace_records_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}

// Tracing disabled is the default: no tracer, no recorder, and the
// trace endpoints answer 404 so probes can detect the feature.
func TestTracingDisabledByDefault(t *testing.T) {
	clock := newFakeClock()
	g := newGuard(t, Config{Now: clock.Now})
	if g.Tracer() != nil || g.FlightRecorder() != nil {
		t.Fatal("tracing enabled without Config.Trace")
	}
	srv := httptest.NewServer(g.DebugHandler())
	defer srv.Close()
	for _, path := range []string{DebugTracePath, DebugExplainPath + "?client=x"} {
		res, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusNotFound {
			t.Errorf("%s answered %d with tracing disabled, want 404", path, res.StatusCode)
		}
	}
}

// pprof is opt-in: absent by default, mounted behind EnablePprof.
func TestPprofOptIn(t *testing.T) {
	clock := newFakeClock()
	probe := func(g *Guard) int {
		srv := httptest.NewServer(g.DebugHandler())
		defer srv.Close()
		res, err := srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		return res.StatusCode
	}
	if code := probe(newGuard(t, Config{Now: clock.Now})); code != http.StatusNotFound {
		t.Errorf("pprof served without EnablePprof: %d", code)
	}
	if code := probe(newGuard(t, Config{Now: clock.Now, EnablePprof: true})); code != http.StatusOK {
		t.Errorf("pprof absent with EnablePprof: %d", code)
	}
}
