package httpguard

import (
	"encoding/json"
	"net/http"
	"time"

	"divscrape/internal/metrics"
	"divscrape/internal/mitigate"
)

// Observability surface: every guard carries a metrics.Registry whose
// instruments read the shard atomics the hot path already maintains —
// instrumenting the guard added one histogram observation per request and
// nothing else. DebugHandler exposes the registry at
// /debug/divscrape/metrics (Prometheus text, ?format=json for JSON) and a
// structural snapshot at /debug/divscrape/state, the two endpoints a
// long-running deployment watches for drift: alert-rate moving, action
// mix shifting, per-shard client state growing.

// DebugMetricsPath and DebugStatePath are the endpoints DebugHandler
// serves.
const (
	DebugMetricsPath = "/debug/divscrape/metrics"
	DebugStatePath   = "/debug/divscrape/state"
)

// latencyBuckets spans sub-millisecond decisions to multi-second tarpits.
var latencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// buildMetrics wires the registry. Called once from New, before the guard
// is shared, so registration never races.
func (g *Guard) buildMetrics() {
	r := metrics.NewRegistry()
	g.metrics = r
	g.latency = r.MustHistogram("divscrape_guard_request_seconds",
		"Wall time from decision start to response completion.", latencyBuckets)

	// Traffic counters: read straight off the shard atomics under the
	// topology read-lock, so scrapes agree with StatsDetail and survive
	// Rebalance.
	sumShards := func(read func(*guardShard) uint64) func() uint64 {
		return func() uint64 {
			g.mu.RLock()
			defer g.mu.RUnlock()
			var total uint64
			for _, s := range g.shards {
				total += read(s)
			}
			return total
		}
	}
	r.MustCounterFunc("divscrape_guard_requests_total",
		"Requests judged.", sumShards(func(s *guardShard) uint64 { return s.total.Load() }))
	r.MustCounterFunc("divscrape_guard_alerted_total",
		"Requests with a 1-out-of-2 alert.", sumShards(func(s *guardShard) uint64 { return s.alerted.Load() }))
	r.MustCounterFunc("divscrape_guard_challenges_passed_total",
		"Solved challenge beacons.", sumShards(func(s *guardShard) uint64 { return s.passed.Load() }))
	for _, a := range []struct {
		name string
		read func(*guardShard) uint64
	}{
		{"allow", func(s *guardShard) uint64 { return s.allowed.Load() }},
		{"tarpit", func(s *guardShard) uint64 { return s.tarpitted.Load() }},
		{"challenge", func(s *guardShard) uint64 { return s.challenged.Load() }},
		{"block", func(s *guardShard) uint64 { return s.blocked.Load() }},
	} {
		r.MustCounterFunc("divscrape_guard_actions_total",
			"Enforcement outcomes by action.", sumShards(a.read),
			metrics.Label{Key: "action", Value: a.name})
	}
	r.MustCounterFunc("divscrape_guard_evicted_total",
		"State entries dropped by windowed sweeps.", g.evicted.Load)
	r.MustCounterFunc("divscrape_guard_sweeps_total",
		"Windowed eviction sweeps run.", g.sweeps.Load)

	// Live-state gauges take the shard locks briefly; scrapes are rare
	// relative to requests, so the contention is noise.
	r.MustGaugeFunc("divscrape_guard_shards",
		"Detection-state partitions.", func() int64 { return int64(g.Shards()) })
	sumLocked := func(read func(*guardShard) int) func() int64 {
		return func() int64 {
			g.mu.RLock()
			defer g.mu.RUnlock()
			var total int64
			for _, s := range g.shards {
				s.mu.Lock()
				total += int64(read(s))
				s.mu.Unlock()
			}
			return total
		}
	}
	r.MustGaugeFunc("divscrape_guard_engine_clients",
		"Clients holding enforcement-ladder state.",
		sumLocked(func(s *guardShard) int { return s.engine.Len() }))
	r.MustGaugeFunc("divscrape_guard_detector_clients",
		"Live per-client states by detector.",
		sumLocked(func(s *guardShard) int { return s.sen.Clients() }),
		metrics.Label{Key: "detector", Value: "sentinel"})
	r.MustGaugeFunc("divscrape_guard_detector_clients",
		"Live per-client states by detector.",
		sumLocked(func(s *guardShard) int { return s.arc.Sessions() }),
		metrics.Label{Key: "detector", Value: "arcane"})
}

// observeLatency records one request's wall time into the latency
// histogram.
func (g *Guard) observeLatency(start time.Time) {
	g.latency.Observe(g.cfg.Now().Sub(start).Seconds())
}

// Metrics returns the guard's registry, for callers embedding it into a
// larger metrics surface or scraping it directly. Encoding a scrape is
// allocation-free once warm (see internal/metrics).
func (g *Guard) Metrics() *metrics.Registry { return g.metrics }

// ShardState is one shard's live-state snapshot in the state endpoint.
type ShardState struct {
	EngineClients   int                   `json:"engine_clients"`
	SentinelClients int                   `json:"sentinel_clients"`
	ArcaneSessions  int                   `json:"arcane_sessions"`
	Actions         mitigate.ActionCounts `json:"actions"`
	Total           uint64                `json:"total"`
	Alerted         uint64                `json:"alerted"`
}

// State is the structural snapshot served at DebugStatePath.
type State struct {
	Policy           string        `json:"policy"`
	Shards           int           `json:"shards"`
	EvictWindow      time.Duration `json:"evict_window_ns"`
	Sweeps           uint64        `json:"sweeps"`
	Evicted          uint64        `json:"evicted"`
	Totals           GuardStats    `json:"totals"`
	PerShard         []ShardState  `json:"per_shard"`
	ChallengesHosted bool          `json:"challenges_hosted"`
}

// State captures the guard's live structure: per-shard client-state
// sizes, counters, policy and eviction configuration. Unlike the metrics
// scrape it allocates freely — it is a diagnostic page, not a poll
// target.
func (g *Guard) State() State {
	st := State{
		Policy:           g.policy.Mode.String(),
		EvictWindow:      g.cfg.EvictWindow,
		Sweeps:           g.sweeps.Load(),
		Evicted:          g.evicted.Load(),
		Totals:           g.StatsDetail(),
		ChallengesHosted: g.policy.UsesChallenge(),
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	st.Shards = len(g.shards)
	for _, s := range g.shards {
		s.mu.Lock()
		ss := ShardState{
			EngineClients:   s.engine.Len(),
			SentinelClients: s.sen.Clients(),
			ArcaneSessions:  s.arc.Sessions(),
			Total:           s.total.Load(),
			Alerted:         s.alerted.Load(),
		}
		s.mu.Unlock()
		ss.Actions = mitigate.ActionCounts{
			Allowed:    s.allowed.Load(),
			Tarpitted:  s.tarpitted.Load(),
			Challenged: s.challenged.Load(),
			Blocked:    s.blocked.Load(),
		}
		st.PerShard = append(st.PerShard, ss)
	}
	return st
}

// DebugHandler serves the guard's observability endpoints. Mount it on an
// operations listener (or merge it into an existing mux):
//
//	mux.Handle("/debug/divscrape/", guard.DebugHandler())
func (g *Guard) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle(DebugMetricsPath, g.metrics.Handler())
	mux.HandleFunc(DebugStatePath, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(g.State())
	})
	return mux
}
