package httpguard

import (
	"encoding/json"
	"net/http"
	netpprof "net/http/pprof"
	"time"

	"divscrape/internal/metrics"
	"divscrape/internal/mitigate"
)

// Observability surface: every guard carries a metrics.Registry whose
// instruments read the shard atomics the hot path already maintains —
// instrumenting the guard added one histogram observation per request and
// nothing else. DebugHandler exposes the registry at
// /debug/divscrape/metrics (Prometheus text, ?format=json for JSON) and a
// structural snapshot at /debug/divscrape/state, the two endpoints a
// long-running deployment watches for drift: alert-rate moving, action
// mix shifting, per-shard client state growing.

// DebugMetricsPath, DebugStatePath, DebugHealthPath, DebugTracePath and
// DebugExplainPath are the endpoints DebugHandler serves. The trace and
// explain endpoints answer 404 unless Config.Trace enabled the
// provenance plane; /debug/pprof/ is mounted only with
// Config.EnablePprof.
const (
	DebugMetricsPath = "/debug/divscrape/metrics"
	DebugStatePath   = "/debug/divscrape/state"
	DebugHealthPath  = "/debug/divscrape/health"
	DebugTracePath   = "/debug/divscrape/trace"
	DebugExplainPath = "/debug/divscrape/explain"
)

// latencyBuckets spans sub-millisecond decisions to multi-second tarpits.
var latencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// buildMetrics wires the registry. Called once from New, before the guard
// is shared, so registration never races.
func (g *Guard) buildMetrics() {
	r := metrics.NewRegistry()
	g.metrics = r
	g.latency = r.MustHistogram("divscrape_guard_request_seconds",
		"Wall time from decision start to response completion.", latencyBuckets)

	// Traffic counters: read straight off the shard atomics under the
	// topology read-lock, so scrapes agree with StatsDetail and survive
	// Rebalance.
	sumShards := func(read func(*guardShard) uint64) func() uint64 {
		return func() uint64 {
			g.mu.RLock()
			defer g.mu.RUnlock()
			var total uint64
			for _, s := range g.shards {
				total += read(s)
			}
			return total
		}
	}
	r.MustCounterFunc("divscrape_guard_requests_total",
		"Requests judged.", sumShards(func(s *guardShard) uint64 { return s.total.Load() }))
	r.MustCounterFunc("divscrape_guard_alerted_total",
		"Requests with a 1-out-of-2 alert.", sumShards(func(s *guardShard) uint64 { return s.alerted.Load() }))
	r.MustCounterFunc("divscrape_guard_challenges_passed_total",
		"Solved challenge beacons.", sumShards(func(s *guardShard) uint64 { return s.passed.Load() }))
	for _, a := range []struct {
		name string
		read func(*guardShard) uint64
	}{
		{"allow", func(s *guardShard) uint64 { return s.allowed.Load() }},
		{"tarpit", func(s *guardShard) uint64 { return s.tarpitted.Load() }},
		{"challenge", func(s *guardShard) uint64 { return s.challenged.Load() }},
		{"block", func(s *guardShard) uint64 { return s.blocked.Load() }},
	} {
		r.MustCounterFunc("divscrape_guard_actions_total",
			"Enforcement outcomes by action.", sumShards(a.read),
			metrics.Label{Key: "action", Value: a.name})
	}
	r.MustCounterFunc("divscrape_guard_evicted_total",
		"State entries dropped by windowed sweeps.", g.evicted.Load)
	r.MustCounterFunc("divscrape_guard_sweeps_total",
		"Windowed eviction sweeps run.", g.sweeps.Load)

	// Failure plane: shed and degraded request tallies, per-detector
	// panic/restore counts, and a quarantine gauge an alert can sit on.
	r.MustCounterFunc("divscrape_guard_shed_total",
		"Requests shed by admission control.", g.shed.Load)
	r.MustCounterFunc("divscrape_guard_degraded_total",
		"Requests judged with a quarantined detector sitting out.", g.degradedReqs.Load)
	for side := detectorSide(0); side < detectorSide(g.numActiveSides()); side++ {
		r.MustCounterFunc("divscrape_guard_detector_panics_total",
			"Detector panics caught at the shard barrier.", g.panics[side].Load,
			metrics.Label{Key: "detector", Value: sideNames[side]})
		r.MustCounterFunc("divscrape_guard_detector_restores_total",
			"Quarantined detectors restored to service.", g.restores[side].Load,
			metrics.Label{Key: "detector", Value: sideNames[side]})
	}
	r.MustGaugeFunc("divscrape_guard_quarantined_detectors",
		"Detector slots currently quarantined across all shards.",
		func() int64 { return int64(g.quarantinedCount()) })

	// Live-state gauges take the shard locks briefly; scrapes are rare
	// relative to requests, so the contention is noise.
	r.MustGaugeFunc("divscrape_guard_shards",
		"Detection-state partitions.", func() int64 { return int64(g.Shards()) })
	sumLocked := func(read func(*guardShard) int) func() int64 {
		return func() int64 {
			g.mu.RLock()
			defer g.mu.RUnlock()
			var total int64
			for _, s := range g.shards {
				s.mu.Lock()
				total += int64(read(s))
				s.mu.Unlock()
			}
			return total
		}
	}
	r.MustGaugeFunc("divscrape_guard_engine_clients",
		"Clients holding enforcement-ladder state.",
		sumLocked(func(s *guardShard) int { return s.engine.Len() }))
	r.MustGaugeFunc("divscrape_guard_detector_clients",
		"Live per-client states by detector.",
		sumLocked(func(s *guardShard) int { return s.sen.Clients() }),
		metrics.Label{Key: "detector", Value: "sentinel"})
	r.MustGaugeFunc("divscrape_guard_detector_clients",
		"Live per-client states by detector.",
		sumLocked(func(s *guardShard) int { return s.arc.Sessions() }),
		metrics.Label{Key: "detector", Value: "arcane"})
	if g.cfg.EnableTrajectory {
		r.MustGaugeFunc("divscrape_guard_detector_clients",
			"Live per-client states by detector.",
			sumLocked(func(s *guardShard) int { return s.traj.Sessions() }),
			metrics.Label{Key: "detector", Value: "trajectory"})
	}
}

// observeLatency records one request's wall time into the latency
// histogram.
func (g *Guard) observeLatency(start time.Time) {
	g.latency.Observe(g.cfg.Now().Sub(start).Seconds())
}

// Metrics returns the guard's registry, for callers embedding it into a
// larger metrics surface or scraping it directly. Encoding a scrape is
// allocation-free once warm (see internal/metrics).
func (g *Guard) Metrics() *metrics.Registry { return g.metrics }

// ShardState is one shard's live-state snapshot in the state endpoint.
type ShardState struct {
	EngineClients   int `json:"engine_clients"`
	SentinelClients int `json:"sentinel_clients"`
	ArcaneSessions  int `json:"arcane_sessions"`
	// TrajectorySessions is reported only on trajectory-enabled guards;
	// pair guards keep their original document shape.
	TrajectorySessions int                   `json:"trajectory_sessions,omitempty"`
	Actions            mitigate.ActionCounts `json:"actions"`
	Total              uint64                `json:"total"`
	Alerted            uint64                `json:"alerted"`
}

// State is the structural snapshot served at DebugStatePath.
type State struct {
	Policy           string        `json:"policy"`
	Shards           int           `json:"shards"`
	EvictWindow      time.Duration `json:"evict_window_ns"`
	Sweeps           uint64        `json:"sweeps"`
	Evicted          uint64        `json:"evicted"`
	Totals           GuardStats    `json:"totals"`
	PerShard         []ShardState  `json:"per_shard"`
	ChallengesHosted bool          `json:"challenges_hosted"`
}

// State captures the guard's live structure: per-shard client-state
// sizes, counters, policy and eviction configuration. Unlike the metrics
// scrape it allocates freely — it is a diagnostic page, not a poll
// target.
func (g *Guard) State() State {
	st := State{
		Policy:           g.policy.Mode.String(),
		EvictWindow:      g.cfg.EvictWindow,
		Sweeps:           g.sweeps.Load(),
		Evicted:          g.evicted.Load(),
		Totals:           g.StatsDetail(),
		ChallengesHosted: g.policy.UsesChallenge(),
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	st.Shards = len(g.shards)
	for _, s := range g.shards {
		s.mu.Lock()
		ss := ShardState{
			EngineClients:   s.engine.Len(),
			SentinelClients: s.sen.Clients(),
			ArcaneSessions:  s.arc.Sessions(),
			Total:           s.total.Load(),
			Alerted:         s.alerted.Load(),
		}
		if s.traj != nil {
			ss.TrajectorySessions = s.traj.Sessions()
		}
		s.mu.Unlock()
		ss.Actions = mitigate.ActionCounts{
			Allowed:    s.allowed.Load(),
			Tarpitted:  s.tarpitted.Load(),
			Challenged: s.challenged.Load(),
			Blocked:    s.blocked.Load(),
		}
		st.PerShard = append(st.PerShard, ss)
	}
	return st
}

// DetectorHealth is one detector slot's failure-plane state in the
// health endpoint.
type DetectorHealth struct {
	// Quarantined reports the slot is out of service after a panic.
	Quarantined bool `json:"quarantined"`
	// Reason is the panic value that quarantined the slot.
	Reason string `json:"reason,omitempty"`
	// RetryAt is when a restore will next be attempted.
	RetryAt time.Time `json:"retry_at,omitzero"`
	// HasSnapshot reports a last-good snapshot exists to restore from;
	// without one the slot comes back cold.
	HasSnapshot bool `json:"has_snapshot"`
}

// ShardHealth is one shard's failure-plane state. Trajectory is nil on
// pair guards, keeping their health document shape unchanged.
type ShardHealth struct {
	Shard      int             `json:"shard"`
	InFlight   int64           `json:"in_flight"`
	Sentinel   DetectorHealth  `json:"sentinel"`
	Arcane     DetectorHealth  `json:"arcane"`
	Trajectory *DetectorHealth `json:"trajectory,omitempty"`
}

// GuardHealth is the document served at DebugHealthPath.
type GuardHealth struct {
	// Healthy is true when no detector slot is quarantined. The endpoint
	// mirrors it in the HTTP status: 200 healthy, 503 degraded, so a
	// load-balancer check needs no JSON parsing.
	Healthy bool `json:"healthy"`
	// DegradedMode names the configured policy for degraded requests.
	DegradedMode string `json:"degraded_mode"`
	// MaxInFlight is the per-shard admission bound; 0 = gate disabled.
	MaxInFlight int `json:"max_in_flight"`
	// Shed counts requests refused full judgement by admission control.
	Shed uint64 `json:"shed_total"`
	// DegradedRequests counts requests judged with a detector sitting out.
	DegradedRequests uint64 `json:"degraded_requests_total"`
	// Panics and Restores tally failure-plane transitions by detector.
	Panics   map[string]uint64 `json:"detector_panics_total"`
	Restores map[string]uint64 `json:"detector_restores_total"`
	// Quarantined counts detector slots currently out of service.
	Quarantined int           `json:"quarantined_detectors"`
	PerShard    []ShardHealth `json:"per_shard"`
}

// quarantinedCount reports how many detector slots are currently out of
// service across all shards.
func (g *Guard) quarantinedCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, s := range g.shards {
		s.mu.Lock()
		if s.senHealth.quarantined {
			n++
		}
		if s.arcHealth.quarantined {
			n++
		}
		if s.trajHealth.quarantined {
			n++
		}
		s.mu.Unlock()
	}
	return n
}

// Health captures the guard's failure-plane state: per-shard detector
// quarantines, admission-control pressure and degraded-request totals.
// Like State it allocates freely — a diagnostic page, not a poll target.
func (g *Guard) Health() GuardHealth {
	h := GuardHealth{
		Healthy:          true,
		DegradedMode:     g.cfg.Degraded.String(),
		MaxInFlight:      g.cfg.MaxInFlight,
		Shed:             g.shed.Load(),
		DegradedRequests: g.degradedReqs.Load(),
		Panics:           make(map[string]uint64, numSides),
		Restores:         make(map[string]uint64, numSides),
	}
	for side := detectorSide(0); side < detectorSide(g.numActiveSides()); side++ {
		h.Panics[sideNames[side]] = g.panics[side].Load()
		h.Restores[sideNames[side]] = g.restores[side].Load()
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	for i, s := range g.shards {
		sh := ShardHealth{Shard: i, InFlight: s.inflight.Load()}
		s.mu.Lock()
		for side := detectorSide(0); side < detectorSide(g.numActiveSides()); side++ {
			dh := s.health(side)
			out := DetectorHealth{
				Quarantined: dh.quarantined,
				Reason:      dh.reason,
				HasSnapshot: dh.hasGood,
			}
			if dh.quarantined {
				out.RetryAt = dh.retryAt
				h.Healthy = false
				h.Quarantined++
			}
			switch side {
			case sideSentinel:
				sh.Sentinel = out
			case sideArcane:
				sh.Arcane = out
			default:
				sh.Trajectory = &out
			}
		}
		s.mu.Unlock()
		h.PerShard = append(h.PerShard, sh)
	}
	return h
}

// DebugHandler serves the guard's observability endpoints. Mount it on an
// operations listener (or merge it into an existing mux):
//
//	mux.Handle("/debug/divscrape/", guard.DebugHandler())
func (g *Guard) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle(DebugMetricsPath, g.metrics.Handler())
	mux.HandleFunc(DebugStatePath, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(g.State())
	})
	mux.HandleFunc(DebugHealthPath, func(w http.ResponseWriter, r *http.Request) {
		h := g.Health()
		w.Header().Set("Content-Type", "application/json")
		if !h.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h)
	})
	// Flight-recorder endpoints: a nil recorder (tracing disabled) serves
	// 404, so these are mounted unconditionally and the surface is stable.
	rec := g.trace.Recorder()
	mux.Handle(DebugTracePath, rec.TraceHandler())
	mux.Handle(DebugExplainPath, rec.ExplainHandler())
	if g.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	}
	return mux
}
