package httpguard

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"divscrape/internal/logfmt"
)

// fakeClock hands out strictly increasing instants.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2018, 3, 12, 10, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) tick(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
}

func newGuard(t *testing.T, cfg Config) *Guard {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// do sends one synthetic request directly through the wrapped handler.
func do(t *testing.T, h http.Handler, ip, ua, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	req.RemoteAddr = ip + ":51234"
	req.Header.Set("User-Agent", ua)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

const toolUA = "python-requests/2.18.4"
const browserUA = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36"

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Action: Action(99)}); err == nil {
		t.Error("invalid action accepted")
	}
}

func TestObserveModeNeverInterferes(t *testing.T) {
	clock := newFakeClock()
	var verdicts []Verdicts
	g := newGuard(t, Config{
		Action: Observe,
		Now:    func() time.Time { return clock.tick(100 * time.Millisecond) },
		OnVerdict: func(_ logfmt.Entry, v Verdicts) {
			verdicts = append(verdicts, v)
		},
	})
	h := g.Wrap(okHandler())
	for i := 0; i < 10; i++ {
		rec := do(t, h, "172.16.0.9", toolUA, "/api/price/"+strconv.Itoa(i))
		if rec.Code != http.StatusOK {
			t.Fatalf("observe mode altered response: %d", rec.Code)
		}
		if rec.Header().Get("X-Scrape-Verdict") != "" {
			t.Fatal("observe mode tagged a response")
		}
	}
	if len(verdicts) != 10 {
		t.Fatalf("OnVerdict called %d times", len(verdicts))
	}
	// A tool UA from a datacenter range must alert the commercial
	// detector.
	if !verdicts[0].Commercial.Alert {
		t.Error("commercial detector silent on tool UA")
	}
	total, alerted, blocked := g.Stats()
	if total != 10 || alerted != 10 || blocked != 0 {
		t.Errorf("stats = %d/%d/%d", total, alerted, blocked)
	}
}

func TestTagMode(t *testing.T) {
	clock := newFakeClock()
	g := newGuard(t, Config{
		Action: Tag,
		Now:    func() time.Time { return clock.tick(time.Second) },
	})
	h := g.Wrap(okHandler())

	rec := do(t, h, "172.16.0.9", toolUA, "/api/price/1")
	if rec.Code != http.StatusOK {
		t.Fatalf("tag mode blocked: %d", rec.Code)
	}
	if got := rec.Header().Get("X-Scrape-Verdict"); got != "commercial" {
		t.Errorf("verdict header = %q", got)
	}

	rec2 := do(t, h, "10.0.0.5", browserUA, "/")
	if rec2.Header().Get("X-Scrape-Verdict") != "" {
		t.Error("clean request tagged")
	}
}

func TestBlockMode(t *testing.T) {
	clock := newFakeClock()
	g := newGuard(t, Config{
		Action: Block,
		Now:    func() time.Time { return clock.tick(time.Second) },
	})
	h := g.Wrap(okHandler())

	rec := do(t, h, "172.16.0.9", toolUA, "/api/price/1")
	if rec.Code != http.StatusForbidden {
		t.Fatalf("block mode passed the scraper: %d", rec.Code)
	}
	if rec.Header().Get("X-Scrape-Verdict") != "blocked" {
		t.Error("blocked response not labelled")
	}
	// Humans keep flowing.
	rec2 := do(t, h, "10.0.0.5", browserUA, "/")
	if rec2.Code != http.StatusOK {
		t.Errorf("human blocked: %d", rec2.Code)
	}
	_, _, blocked := g.Stats()
	if blocked != 1 {
		t.Errorf("blocked counter = %d", blocked)
	}
}

func TestBlockOnConfirmedOnly(t *testing.T) {
	clock := newFakeClock()
	g := newGuard(t, Config{
		Action:               Block,
		BlockOnConfirmedOnly: true,
		Now:                  func() time.Time { return clock.tick(time.Second) },
	})
	h := g.Wrap(okHandler())

	// Early requests: only the commercial detector alerts (behavioural is
	// warming up) — with confirmation required, they pass tagged.
	rec := do(t, h, "172.16.0.9", toolUA, "/api/price/1")
	if rec.Code != http.StatusOK {
		t.Fatalf("unconfirmed single-tool alert blocked: %d", rec.Code)
	}
	if rec.Header().Get("X-Scrape-Verdict") != "commercial" {
		t.Errorf("verdict header = %q", rec.Header().Get("X-Scrape-Verdict"))
	}
	// Keep scraping; once the behavioural detector confirms, blocking
	// kicks in.
	var blockedAt int = -1
	for i := 2; i < 60; i++ {
		rec := do(t, h, "172.16.0.9", toolUA, "/api/price/"+strconv.Itoa(i))
		if rec.Code == http.StatusForbidden {
			blockedAt = i
			break
		}
	}
	if blockedAt < 0 {
		t.Fatal("sustained scraping never confirmed and blocked")
	}
}

func TestResponseStatusRecorded(t *testing.T) {
	clock := newFakeClock()
	var statuses []int
	g := newGuard(t, Config{
		Now: func() time.Time { return clock.tick(time.Second) },
		OnVerdict: func(e logfmt.Entry, _ Verdicts) {
			statuses = append(statuses, e.Status)
		},
	})
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	}))
	do(t, h, "10.0.0.5", browserUA, "/missing")
	if len(statuses) != 1 || statuses[0] != http.StatusNotFound {
		t.Errorf("recorded statuses = %v, want [404]", statuses)
	}
}

func TestBasicAuthBecomesAuthUser(t *testing.T) {
	clock := newFakeClock()
	var entries []logfmt.Entry
	g := newGuard(t, Config{
		Now: func() time.Time { return clock.tick(time.Second) },
		OnVerdict: func(e logfmt.Entry, _ Verdicts) {
			entries = append(entries, e)
		},
	})
	h := g.Wrap(okHandler())
	req := httptest.NewRequest("GET", "/api/price/1", nil)
	req.RemoteAddr = "10.112.0.4:4000"
	req.Header.Set("User-Agent", "Java/1.8.0_151")
	req.SetBasicAuth("ota-partner-7", "secret")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if len(entries) != 1 || entries[0].AuthUser != "ota-partner-7" {
		t.Errorf("auth user = %+v", entries)
	}
}

func TestGuardAgainstLiveServer(t *testing.T) {
	clock := newFakeClock()
	g := newGuard(t, Config{
		Action: Block,
		Now:    func() time.Time { return clock.tick(500 * time.Millisecond) },
	})
	srv := httptest.NewServer(g.Wrap(okHandler()))
	defer srv.Close()

	client := srv.Client()
	req, err := http.NewRequest("GET", srv.URL+"/api/price/1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("User-Agent", toolUA)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Loopback (127.0.0.1) is outside the synthetic reputation plan, so
	// the verdict rides on the UA signature alone — which suffices.
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("live scraper request got %d", resp.StatusCode)
	}
}

func TestConcurrentRequestsSafe(t *testing.T) {
	clock := newFakeClock()
	g := newGuard(t, Config{
		Now: func() time.Time { return clock.tick(10 * time.Millisecond) },
	})
	h := g.Wrap(okHandler())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ip := fmt.Sprintf("10.0.%d.%d", w, i%8)
				req := httptest.NewRequest("GET", "/product/"+strconv.Itoa(i), nil)
				req.RemoteAddr = ip + ":1000"
				req.Header.Set("User-Agent", browserUA)
				h.ServeHTTP(httptest.NewRecorder(), req)
			}
		}(w)
	}
	wg.Wait()
	total, _, _ := g.Stats()
	if total != 400 {
		t.Errorf("total = %d, want 400", total)
	}
}
