// Package httpguard deploys the divscrape detector pair as live HTTP
// middleware: every request through the wrapped handler is converted to
// the access-log view the detectors consume, judged in real time, and
// answered with a graduated enforcement action. This is the "operational"
// face of the reproduction: the paper studies the tools as offline log
// analysers, but the products they model run inline, and a downstream
// adopter of this library will want exactly this entry point.
//
// Enforcement is driven by a mitigate.Engine per shard rather than a
// static action switch: the adjudicated verdicts feed a per-client
// suspicion integral that climbs the Allow → Tarpit → Challenge → Block
// ladder and decays back. The legacy static behaviours (Observe, Tag,
// Block) remain available as Config.Action and are implemented as static
// mitigation policies. When the graduated policy is active the guard also
// hosts the challenge flow itself: it serves the challenge script, and a
// POST to the verify endpoint marks the client's challenge solved.
//
// The middleware observes the *response* status via a recording writer,
// so its log view matches what Apache would have written. The detectors
// are single-threaded by design (per-client state machines), so the guard
// partitions traffic by client IP across Config.Shards internal shards,
// each with its own detector pair, enricher, mitigation engine and mutex —
// the same key-partitioning the offline pipeline's Sharded and
// ShardedRelaxed modes use. A client's requests always hash to the same
// shard, so per-client detection and enforcement state is exactly what a
// single serialised pair would hold, while unrelated clients no longer
// contend on one lock. Note the guard's topology is the relaxed one:
// responses leave in whatever order shards finish, stats, tracing and
// eviction are shard-local, and nothing ever merges the streams back
// into arrival order — pipeline.ShardedRelaxed is this deployment shape
// replayed offline, and the facts proven for it (per-client total order,
// order-free aggregate equality) are what make the guard's inline
// judgements equivalent to the paper's offline analysis.
//
// The shard count is a runtime tunable, not a boot-time constant:
// Rebalance snapshots every client's state, rehashes it onto a new shard
// set and swaps the topology without dropping a request, and
// SnapshotInto/RestoreFrom persist the same state across process
// restarts — see rebalance.go and internal/statecodec.
package httpguard

import (
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"divscrape/internal/arcane"
	"divscrape/internal/detector"
	"divscrape/internal/fnvhash"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/metrics"
	"divscrape/internal/mitigate"
	"divscrape/internal/sentinel"
	"divscrape/internal/sitemodel"
	"divscrape/internal/trace"
	"divscrape/internal/trajectory"
)

// Action is the legacy static policy selector, kept for compatibility;
// Config.Policy supersedes it.
type Action int

const (
	// Observe lets everything through and only records verdicts.
	Observe Action = iota + 1
	// Tag forwards alerted requests with X-Scrape-Verdict headers set, so
	// the application can degrade (serve cached prices, hide inventory).
	Tag
	// Block answers alerted requests with 403 without reaching the app.
	Block
)

// Verdicts is the set of per-request judgements exposed to callbacks.
// Trajectory stays zero on pair guards (Config.EnableTrajectory unset),
// so the ensemble semantics below reduce to the classic pair schemes.
type Verdicts struct {
	// Commercial is the fingerprint/reputation detector's verdict.
	Commercial detector.Verdict
	// Behavioural is the session-analysis detector's verdict.
	Behavioural detector.Verdict
	// Trajectory is the semantic navigation detector's verdict; zero
	// unless the guard was built with Config.EnableTrajectory.
	Trajectory detector.Verdict
}

// votes counts alerting detectors.
func (v Verdicts) votes() int {
	n := 0
	if v.Commercial.Alert {
		n++
	}
	if v.Behavioural.Alert {
		n++
	}
	if v.Trajectory.Alert {
		n++
	}
	return n
}

// Alerted reports whether any detector alerted (1-out-of-N, the paper's
// maximum-detection scheme).
func (v Verdicts) Alerted() bool {
	return v.votes() > 0
}

// Confirmed reports whether at least two detectors alerted. On a pair
// guard that is 2-out-of-2, the paper's minimum-false-alarm scheme; with
// the trajectory side enabled it is the 2-out-of-3 majority, which keeps
// confirmation strict while letting any one detector sit out.
func (v Verdicts) Confirmed() bool {
	return v.votes() >= 2
}

// Config parameterises the guard.
type Config struct {
	// Action selects a legacy static policy. Default Observe. Ignored
	// when Policy is set.
	Action Action
	// BlockOnConfirmedOnly, with Action Block, blocks only 2-out-of-2
	// confirmed requests; single-tool alerts are tagged instead. This is
	// the serial-confirmation deployment the paper sketches.
	BlockOnConfirmedOnly bool
	// Policy, when non-nil, selects the mitigation policy directly —
	// typically mitigate.Graduated() for the full escalation ladder.
	Policy *mitigate.Policy
	// TrustedProxies lists the peers (IPs or CIDR prefixes) allowed to
	// assert the client address via X-Forwarded-For / X-Real-IP. When the
	// immediate peer is listed here, the guard keys detection and
	// enforcement by the forwarded client address; otherwise a deployment
	// behind a proxy would collapse all traffic into one client.
	TrustedProxies []string
	// OnVerdict, if set, observes every request's verdicts after the
	// response completes. Called synchronously; keep it fast.
	OnVerdict func(entry logfmt.Entry, v Verdicts)
	// OnDecision, if set, observes the enforcement decision taken for
	// every request, keyed by the derived client address in entry.
	// Called synchronously before the response is written.
	OnDecision func(entry logfmt.Entry, v Verdicts, d mitigate.Decision)
	// Sentinel and Arcane override detector configurations.
	Sentinel sentinel.Config
	// Arcane overrides the behavioural detector configuration.
	Arcane arcane.Config
	// EnableTrajectory adds the semantic trajectory detector as a third
	// judging side on every shard. Alerted becomes 1-out-of-3 and
	// Confirmed the 2-out-of-3 majority; snapshots grow a trajectory
	// block (a pair guard cannot restore a trajectory snapshot, or vice
	// versa — restore guards refuse mismatched layouts).
	EnableTrajectory bool
	// Trajectory overrides the trajectory detector configuration. Only
	// consulted with EnableTrajectory; a nil Model selects the shared
	// default benign-trained model.
	Trajectory trajectory.Config
	// Shards partitions detection state by client IP across this many
	// independently locked detector pairs; clients never contend across
	// shards. Default GOMAXPROCS.
	Shards int
	// EvictWindow bounds how long idle per-client detector state survives:
	// the periodic per-shard sweep drops sessions untouched for longer.
	// Zero selects twice the larger detector idle timeout (verdict-neutral
	// by the eviction-equivalence argument); negative disables the
	// detector sweep (the mitigation engine still sweeps by its IdleTTL).
	EvictWindow time.Duration
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
	// Sleep overrides the tarpit stall (tests and benchmarks substitute
	// a no-op). When nil the tarpit uses a timer that also observes the
	// request context, so disconnected clients release their goroutines.
	Sleep func(time.Duration)
	// Degraded selects what the guard does with requests it cannot fully
	// judge — shed by admission control, or inspected while a detector
	// is quarantined after a panic. Default FailOpen.
	Degraded DegradedMode
	// MaxInFlight bounds concurrently judged requests per shard; excess
	// requests are shed to the Degraded policy instead of queueing on
	// the shard lock. Challenge-flow requests are exempt (a client must
	// always be able to solve its way back down the ladder). Default
	// 256; negative disables the gate.
	MaxInFlight int
	// QuarantineBackoff is how long a detector that panicked stays
	// quarantined before a restore attempt; repeat panics double it, up
	// to 32×. Default 30s.
	QuarantineBackoff time.Duration
	// OnDegraded, if set, observes failure-plane transitions (detector
	// quarantines and restores). Called synchronously under the shard
	// lock: keep it fast and never call back into the guard.
	OnDegraded func(DegradedEvent)
	// Trace, when non-nil, enables the decision provenance plane:
	// per-stage latency histograms in the guard's metrics registry and a
	// sampled flight recorder of complete decision records (feature
	// snapshot, per-detector verdicts and reasons, ensemble outcome,
	// mitigation rung before/after), served at DebugTracePath and
	// DebugExplainPath. The zero trace.RecorderConfig takes the
	// documented sampling defaults; escalations are always captured.
	// Nil keeps the decide path entirely trace-free — steady-state
	// ServeHTTP stays 0 allocs/request with the plane compiled in.
	Trace *trace.RecorderConfig
	// EnablePprof mounts net/http/pprof's profile handlers under
	// /debug/pprof/ on DebugHandler. Off by default: the debug mux is
	// often reachable from operations networks where exposing heap and
	// CPU profiles should be a deliberate choice.
	EnablePprof bool
}

// guardShard is one key-partition of detection and enforcement state: a
// private detector pair, mitigation engine and lock. The lock guards only
// detector and engine mutation; counters are atomics updated outside it,
// and enrichment happens before the lock is ever taken, so the critical
// section is exactly the per-client state machines and nothing else.
type guardShard struct {
	mu  sync.Mutex
	sen *sentinel.Detector
	arc *arcane.Detector
	// traj is the optional third side; nil unless EnableTrajectory.
	traj   *trajectory.Detector
	engine *mitigate.Engine

	// index is the shard's position in the current topology, recorded so
	// failure-plane events can name the shard without holding g.mu.
	index int
	// inflight is the admission-control gauge: incremented before the
	// shard lock is taken, so the shed decision itself never queues.
	inflight atomic.Int64
	// senHealth, arcHealth and trajHealth are the failure-plane state of
	// the detector slots (failure.go); guarded by mu.
	senHealth  detectorHealth
	arcHealth  detectorHealth
	trajHealth detectorHealth

	total      atomic.Uint64
	alerted    atomic.Uint64
	passed     atomic.Uint64
	allowed    atomic.Uint64
	tarpitted  atomic.Uint64
	challenged atomic.Uint64
	blocked    atomic.Uint64
}

// countAction tallies an enforcement outcome without touching the shard
// lock.
func (s *guardShard) countAction(a mitigate.Action) {
	switch a {
	case mitigate.Tarpit:
		s.tarpitted.Add(1)
	case mitigate.Challenge:
		s.challenged.Add(1)
	case mitigate.Block:
		s.blocked.Add(1)
	default:
		s.allowed.Add(1)
	}
}

// sweepEvery is the per-shard request period between enforcement-state
// eviction sweeps.
const sweepEvery = 4096

// challengeFlow classifies a request's role in the challenge protocol.
type challengeFlow int

const (
	flowNone challengeFlow = iota
	flowScript
	flowVerify
)

// Guard is the middleware instance. Create with New, wrap handlers with
// Wrap.
type Guard struct {
	cfg      Config
	policy   mitigate.Policy
	trusted  trustedNets
	enricher *detector.SharedEnricher
	recPool  sync.Pool // *statusRecorder

	// Observability surface (debug.go): the registry reads the atomic
	// counters below and on the shards; latency lands in the histogram on
	// every request. evicted counts sessions dropped by windowed sweeps.
	metrics *metrics.Registry
	latency *metrics.Histogram
	evicted atomic.Uint64
	sweeps  atomic.Uint64

	// trace is the provenance plane (trace.go); nil when Config.Trace is
	// nil, which every span and capture call site tolerates at the cost
	// of one nil check.
	trace *trace.Tracer

	// Failure-plane counters (failure.go): requests shed by admission
	// control, requests judged with a quarantined detector sitting out,
	// and per-detector panic/restore tallies. Guard-level rather than
	// per-shard so they survive Rebalance.
	shed         atomic.Uint64
	degradedReqs atomic.Uint64
	panics       [numSides]atomic.Uint64
	restores     [numSides]atomic.Uint64

	// escFrozen mirrors the cluster plane's degraded fail-closed state at
	// the guard level (cluster.go): it survives Rebalance, which rebuilds
	// the shard engines and must re-apply the freeze to the new set.
	escFrozen atomic.Bool

	// mu guards the shard set itself: requests hold it shared for the
	// duration of a decision, Rebalance and state restore hold it
	// exclusively while they swap or rewrite the set. The per-shard mutex
	// below it still serialises per-client state; this lock only makes
	// the shard *topology* safely mutable at runtime.
	mu     sync.RWMutex
	shards []*guardShard
}

// New builds a guard with its own detector pairs, mitigation engines and
// reputation feed.
func New(cfg Config) (*Guard, error) {
	var policy mitigate.Policy
	switch {
	case cfg.Policy != nil:
		policy = *cfg.Policy
	case cfg.Action == 0, cfg.Action == Observe:
		policy = mitigate.Observe()
	case cfg.Action == Tag:
		policy = mitigate.Tag()
	case cfg.Action == Block:
		policy = mitigate.StaticBlock(cfg.BlockOnConfirmedOnly)
	default:
		return nil, fmt.Errorf("httpguard: invalid action %d", int(cfg.Action))
	}
	trusted, err := parseTrustedProxies(cfg.TrustedProxies)
	if err != nil {
		return nil, fmt.Errorf("httpguard: %w", err)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.QuarantineBackoff <= 0 {
		cfg.QuarantineBackoff = 30 * time.Second
	}
	switch {
	case cfg.MaxInFlight == 0:
		cfg.MaxInFlight = 256
	case cfg.MaxInFlight < 0:
		cfg.MaxInFlight = 0 // gate disabled
	}
	if cfg.EvictWindow == 0 {
		// Twice the larger idle timeout: comfortably inside the
		// verdict-neutral regime even with sweeps landing mid-window.
		senIdle := cfg.Sentinel.IdleTimeout
		if senIdle <= 0 {
			senIdle = sentinel.DefaultConfig().IdleTimeout
		}
		arcIdle := cfg.Arcane.IdleTimeout
		if arcIdle <= 0 {
			arcIdle = arcane.DefaultConfig().IdleTimeout
		}
		cfg.EvictWindow = 2 * max(senIdle, arcIdle)
		if cfg.EnableTrajectory {
			trajIdle := cfg.Trajectory.IdleTimeout
			if trajIdle <= 0 {
				trajIdle = trajectory.DefaultConfig().IdleTimeout
			}
			cfg.EvictWindow = max(cfg.EvictWindow, 2*trajIdle)
		}
	}
	g := &Guard{
		cfg:     cfg,
		policy:  policy,
		trusted: trusted,
		// One shared, concurrency-safe enricher: cache hits cost a read
		// lock, and a UA parsed for one shard's client is a hit for all.
		enricher: detector.NewSharedEnricher(iprep.BuildFeed()),
		shards:   make([]*guardShard, cfg.Shards),
	}
	g.recPool.New = func() any { return new(statusRecorder) }
	for i := range g.shards {
		shard, err := g.newShard()
		if err != nil {
			return nil, err
		}
		shard.index = i
		g.shards[i] = shard
	}
	g.buildMetrics()
	if cfg.Trace != nil {
		g.trace = trace.New(trace.Config{
			Registry:  g.metrics,
			Detectors: sideNames[:g.numActiveSides()],
			Now:       cfg.Now,
			Recorder:  *cfg.Trace,
		})
	}
	return g, nil
}

// newShard builds one key-partition: a private detector pair and
// mitigation engine configured like every other shard's.
func (g *Guard) newShard() (*guardShard, error) {
	sen, err := sentinel.New(g.cfg.Sentinel)
	if err != nil {
		return nil, fmt.Errorf("httpguard: commercial detector: %w", err)
	}
	arc, err := arcane.New(g.cfg.Arcane)
	if err != nil {
		return nil, fmt.Errorf("httpguard: behavioural detector: %w", err)
	}
	var traj *trajectory.Detector
	if g.cfg.EnableTrajectory {
		if traj, err = trajectory.New(g.cfg.Trajectory); err != nil {
			return nil, fmt.Errorf("httpguard: trajectory detector: %w", err)
		}
	}
	engine, err := mitigate.New(g.policy)
	if err != nil {
		return nil, fmt.Errorf("httpguard: mitigation engine: %w", err)
	}
	return &guardShard{sen: sen, arc: arc, traj: traj, engine: engine}, nil
}

// Shards reports the number of detection-state partitions.
func (g *Guard) Shards() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.shards)
}

// Policy returns the effective mitigation policy.
func (g *Guard) Policy() mitigate.Policy { return g.policy }

// Stats reports lifetime counters summed across shards: requests seen,
// requests alerted (1-out-of-2) and requests blocked.
func (g *Guard) Stats() (total, alerted, blocked uint64) {
	s := g.StatsDetail()
	return s.Total, s.Alerted, s.Actions.Blocked
}

// GuardStats is the lifetime counter snapshot across all shards.
type GuardStats struct {
	// Total and Alerted count requests seen and 1-out-of-2 alerts.
	Total, Alerted uint64
	// Actions tallies enforcement outcomes.
	Actions mitigate.ActionCounts
	// ChallengesPassed counts solved challenge beacons.
	ChallengesPassed uint64
}

// StatsDetail reports the full counter snapshot summed across shards. The
// counters are lock-free atomics, so the snapshot is a consistent point
// per counter but not across counters — the usual monitoring contract.
func (g *Guard) StatsDetail() GuardStats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out GuardStats
	for _, s := range g.shards {
		out.Total += s.total.Load()
		out.Alerted += s.alerted.Load()
		out.Actions.Add(mitigate.ActionCounts{
			Allowed:    s.allowed.Load(),
			Tarpitted:  s.tarpitted.Load(),
			Challenged: s.challenged.Load(),
			Blocked:    s.blocked.Load(),
		})
		out.ChallengesPassed += s.passed.Load()
	}
	return out
}

// shardIndex hashes a client's numeric address onto a shard with FNV-1a
// — the same partition rule the offline pipeline's Sharded mode uses —
// so one client's state always lives behind one lock, and resharding can
// recompute every client's home from its session key alone. Addresses
// that do not parse as IPv4 collapse to 0, exactly as enrichment does,
// keeping routing and session keying consistent. The caller must hold
// g.mu.
func (g *Guard) shardIndex(ip uint32, shards int) int {
	return int(fnvhash.IP32(ip) % uint32(shards))
}

// challengeBody is the interstitial served in place of content at the
// Challenge rung; loading it in a browser runs the challenge script,
// which posts the solution beacon.
const challengeBody = `<!doctype html>
<html><head><script src="` + sitemodel.ChallengeScriptPath + `"></script></head>
<body>Checking your browser&hellip; reload in a moment.</body></html>
`

// challengeScript proves a JavaScript runtime by posting the verify
// beacon. (A production deployment would compute a signed token here; the
// reproduction's protocol is the beacon itself, matching sitemodel.)
const challengeScript = `(function(){var x=new XMLHttpRequest();x.open("POST","` +
	sitemodel.ChallengeVerifyPath + `");x.send();})();
`

// Response bodies as byte slices, written directly (fmt would allocate on
// the hot path's interface boxing).
var (
	challengeScriptBytes = []byte(challengeScript)
	challengeBodyBytes   = []byte(challengeBody)
)

// Wrap returns a handler that judges every request before delegating to
// next.
func (g *Guard) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Pre-decision uses the request view with a provisional status;
		// the final verdict below re-records with the real status for
		// accurate session state. Products make the same compromise: the
		// block/allow decision cannot wait for the response.
		entry := g.entryFor(r, http.StatusOK, 0)
		flow := g.flowFor(r)
		verdicts, dec, fail := g.decide(entry, flow)
		if g.cfg.OnDecision != nil {
			g.cfg.OnDecision(entry, verdicts, dec)
		}

		// The challenge flow is hosted by the guard itself and always
		// reachable — no client could otherwise solve its way back down
		// the ladder, and a degraded guard still verifies beacons.
		switch flow {
		case flowScript:
			w.Header().Set("Content-Type", "text/javascript; charset=utf-8")
			w.Write(challengeScriptBytes)
			g.report(entryWithStatus(entry, http.StatusOK), verdicts)
			g.observeLatency(entry.Time)
			return
		case flowVerify:
			w.WriteHeader(http.StatusNoContent)
			g.report(entryWithStatus(entry, http.StatusNoContent), verdicts)
			g.observeLatency(entry.Time)
			return
		}

		// Degraded judgement under FailClosed is refused with 503 — not
		// 403, the client did nothing wrong; the guard is impaired. Under
		// FailOpen (the default) execution falls through and the request
		// is served on whatever judgement remained.
		if fail != failNone && g.cfg.Degraded == FailClosed {
			w.Header().Set("X-Scrape-Verdict", "degraded")
			w.Header().Set("Retry-After", "1")
			http.Error(w, "detection degraded, retry shortly", http.StatusServiceUnavailable)
			g.report(entryWithStatus(entry, http.StatusServiceUnavailable), verdicts)
			g.observeLatency(entry.Time)
			return
		}

		switch dec.Action {
		case mitigate.Block:
			w.Header().Set("X-Scrape-Verdict", "blocked")
			http.Error(w, "automated scraping detected", http.StatusForbidden)
			g.report(entryWithStatus(entry, http.StatusForbidden), verdicts)
			g.observeLatency(entry.Time)
			return
		case mitigate.Challenge:
			w.Header().Set("X-Scrape-Verdict", "challenge")
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write(challengeBodyBytes)
			g.report(entryWithStatus(entry, http.StatusServiceUnavailable), verdicts)
			g.observeLatency(entry.Time)
			return
		case mitigate.Tarpit:
			g.tarpit(r.Context(), dec.Delay)
		}
		if dec.Tagged {
			w.Header().Set("X-Scrape-Verdict", verdictLabel(verdicts))
		}

		// The recorder is pooled: it is the only per-request heap object
		// the guard would otherwise create on the allow path.
		rec := g.recPool.Get().(*statusRecorder)
		rec.ResponseWriter, rec.status = w, http.StatusOK
		next.ServeHTTP(rec, r)
		status := rec.status
		rec.ResponseWriter = nil
		g.recPool.Put(rec)
		g.report(entryWithStatus(entry, status), verdicts)
		g.observeLatency(entry.Time)
	})
}

// flowFor classifies the request against the challenge protocol; only
// meaningful when the policy can challenge.
func (g *Guard) flowFor(r *http.Request) challengeFlow {
	if !g.policy.UsesChallenge() {
		return flowNone
	}
	switch {
	case r.URL.Path == sitemodel.ChallengeScriptPath && r.Method == http.MethodGet:
		return flowScript
	case r.URL.Path == sitemodel.ChallengeVerifyPath && r.Method == http.MethodPost:
		return flowVerify
	}
	return flowNone
}

// decide runs both detectors and the mitigation engine of the client's
// shard. Only detector-state and engine mutation sit inside the shard
// lock: enrichment happens first through the shared read-mostly enricher,
// and all counters are atomics updated outside the critical section.
// Challenge-flow requests bypass the engine (they must stay reachable)
// but still update detector state — the sentinel's own challenge tracking
// depends on seeing the beacon.
func (g *Guard) decide(entry logfmt.Entry, flow challengeFlow) (Verdicts, mitigate.Decision, failState) {
	var req detector.Request
	ts := g.trace.Now()
	g.enricher.EnrichInto(&req, entry)
	g.trace.Lap(trace.StageEnrich, ts)
	// The shard set is held shared for the whole decision (including the
	// counter updates), so a concurrent Rebalance observes either all of
	// this request's effects on the old topology or none: requests are
	// never dropped, only briefly delayed while the swap runs.
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := g.shards[g.shardIndex(req.IP, len(g.shards))]

	// Admission control: the in-flight gauge is checked before the shard
	// lock is ever taken, so a shed decision costs two atomic ops and no
	// queueing — the point of the gate is that overload never reaches
	// the lock. Challenge-flow requests are exempt.
	gated := flow == flowNone && g.cfg.MaxInFlight > 0
	if gated && s.inflight.Add(1) > int64(g.cfg.MaxInFlight) {
		s.inflight.Add(-1)
		s.total.Add(1)
		g.shed.Add(1)
		return Verdicts{}, mitigate.Decision{Action: mitigate.Allow}, failShed
	}

	// The count-based sweep cadence stays per-shard and deterministic
	// under a test clock; the ticket is drawn before the lock so the
	// sweep itself is the only extra work ever done inside it.
	sweep := s.total.Add(1)%sweepEvery == 0

	// The admission gauge is released on every exit from here on —
	// including a panic escaping the sweep or engine path below — or a
	// single fault would leak admission slots until the shard sheds
	// everything. Open-coded, so the non-shed path stays zero-alloc.
	if gated {
		defer s.inflight.Add(-1)
	}
	v, dec, fail := s.judge(g, &req, entry, flow, sweep)

	if fail == failDegraded {
		g.degradedReqs.Add(1)
	}
	if v.Alerted() {
		s.alerted.Add(1)
	}
	if flow == flowVerify {
		s.passed.Add(1)
	}
	s.countAction(dec.Action)
	return v, dec, fail
}

// judge is the shard-locked portion of a decision: detectors, periodic
// sweep, and mitigation engine. The unlock is deferred: the detector
// calls sit behind their own panic barrier, but a panic escaping the
// sweep or engine path — the same corrupted-state-machine failure, just
// surfacing in Snapshot or Apply instead of Inspect — must not leave
// the shard mutex held forever and the shard hung.
func (s *guardShard) judge(g *Guard, req *detector.Request, entry logfmt.Entry, flow challengeFlow, sweep bool) (v Verdicts, dec mitigate.Decision, fail failState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr := g.trace
	// Each detector runs behind the shard's panic barrier: a quarantined
	// side sits out (its verdict stays zero) and the ensemble degrades
	// to whatever detection remains.
	ts := tr.Now()
	okSen := s.runDetector(g, sideSentinel, req, &v.Commercial, entry.Time)
	ts = tr.LapDetector(int(sideSentinel), ts)
	okArc := s.runDetector(g, sideArcane, req, &v.Behavioural, entry.Time)
	ts = tr.LapDetector(int(sideArcane), ts)
	okTraj := true
	if s.traj != nil {
		okTraj = s.runDetector(g, sideTrajectory, req, &v.Trajectory, entry.Time)
		tr.LapDetector(int(sideTrajectory), ts)
	}
	if !okSen || !okArc || !okTraj {
		fail = failDegraded
	}
	// Periodic eviction bounds state growth: hostile traffic rotates
	// through fresh addresses, and idle, decayed clients would otherwise
	// accumulate forever. The same slot sweeps the shard's detector
	// session stores on the configured retention window, so a long-lived
	// guard's memory stays O(clients active in the window), and
	// re-snapshots each healthy detector as its quarantine-restore
	// point — the state a panicking side comes back from.
	if sweep {
		n := s.engine.Sweep(entry.Time)
		if g.cfg.EvictWindow > 0 {
			cutoff := entry.Time.Add(-g.cfg.EvictWindow)
			n += s.sen.EvictBefore(cutoff)
			n += s.arc.EvictBefore(cutoff)
			if s.traj != nil {
				n += s.traj.EvictBefore(cutoff)
			}
		}
		s.refreshLastGood(sideSentinel)
		s.refreshLastGood(sideArcane)
		if s.traj != nil {
			s.refreshLastGood(sideTrajectory)
		}
		g.sweeps.Add(1)
		g.evicted.Add(uint64(n))
	}
	// The ladder rung before Apply is read only when tracing: the flight
	// record reports rung-before → rung-after, and a rung increase is the
	// always-capture escalation trigger.
	var rungBefore mitigate.Action
	if tr != nil {
		rungBefore = s.engine.Level(entry.RemoteAddr)
	}
	ts = tr.Now() // re-anchor: sweep work must not pollute the ensemble span
	switch {
	case flow == flowScript:
		dec = mitigate.Decision{Action: mitigate.Allow}
	case flow == flowVerify:
		s.engine.ChallengePassed(entry.RemoteAddr, entry.Time)
		dec = mitigate.Decision{Action: mitigate.Allow}
	case fail == failDegraded && g.cfg.Degraded == FailClosed:
		// Fail-closed refuses the request in Wrap; feeding a partial
		// assessment into the ladder would corrupt the client's
		// suspicion integral with verdicts one detector never cast.
		dec = mitigate.Decision{Action: mitigate.Allow}
	default:
		score := v.Commercial.Score + v.Behavioural.Score
		n := 2.0
		if s.traj != nil {
			score += v.Trajectory.Score
			n = 3.0
		}
		dec = s.engine.Apply(entry.RemoteAddr, entry.Time, mitigate.Assessment{
			Alerted:   v.Alerted(),
			Confirmed: v.Confirmed(),
			Score:     score / n,
		})
	}
	tr.Lap(trace.StageEnsemble, ts)
	if tr != nil {
		// Captured under the shard lock: the feature snapshot aliases the
		// detectors' scratch vectors, which the next request on this shard
		// overwrites.
		s.capture(tr, req, entry, &v, dec, rungBefore, okSen, okArc, okTraj)
	}
	return v, dec, fail
}

func (g *Guard) report(entry logfmt.Entry, v Verdicts) {
	if g.cfg.OnVerdict != nil {
		g.cfg.OnVerdict(entry, v)
	}
}

// entryFor converts a live request into the Combined Log Format view,
// deriving the client address through any trusted proxy chain.
func (g *Guard) entryFor(r *http.Request, status int, size int64) logfmt.Entry {
	user := "-"
	if u, _, ok := r.BasicAuth(); ok && u != "" {
		user = u
	}
	path := r.URL.RequestURI()
	if path == "" {
		path = "/"
	}
	return logfmt.Entry{
		RemoteAddr: g.clientIP(r),
		Identity:   "-",
		AuthUser:   user,
		// The skew fault point lets the chaos suite shift the guard's
		// clock without touching Config.Now; disarmed it adds one atomic
		// load and a zero Add.
		Time:      g.cfg.Now().Add(fiClock.Skew()),
		Method:    r.Method,
		Path:      path,
		Proto:     r.Proto,
		Status:    status,
		Bytes:     size,
		Referer:   headerOrDash(r, "Referer"),
		UserAgent: headerOrDash(r, "User-Agent"),
	}
}

func entryWithStatus(e logfmt.Entry, status int) logfmt.Entry {
	e.Status = status
	return e
}

func headerOrDash(r *http.Request, name string) string {
	if v := r.Header.Get(name); v != "" {
		return v
	}
	return "-"
}

func verdictLabel(v Verdicts) string {
	switch {
	case v.Confirmed():
		return "confirmed"
	case v.Commercial.Alert:
		return "commercial"
	case v.Behavioural.Alert:
		return "behavioural"
	default:
		return "trajectory"
	}
}

// statusRecorder captures the response status for the post-hoc log view.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}
