// Package httpguard deploys the divscrape detector pair as live HTTP
// middleware: every request through the wrapped handler is converted to
// the access-log view the detectors consume, judged in real time, and —
// depending on policy — observed, tagged or blocked. This is the
// "operational" face of the reproduction: the paper studies the tools as
// offline log analysers, but the products they model run inline, and a
// downstream adopter of this library will want exactly this entry point.
//
// The middleware observes the *response* status via a recording writer,
// so its log view matches what Apache would have written. The detectors
// are single-threaded by design (per-client state machines), so the guard
// partitions traffic by client IP across Config.Shards internal shards,
// each with its own detector pair, enricher and mutex — the same
// key-partitioning the offline pipeline's Sharded mode uses. A client's
// requests always hash to the same shard, so per-client detection state is
// exactly what a single serialised pair would hold, while unrelated
// clients no longer contend on one lock.
package httpguard

import (
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"divscrape/internal/arcane"
	"divscrape/internal/detector"
	"divscrape/internal/fnvhash"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/sentinel"
)

// Action is what the guard does with an alerted request.
type Action int

const (
	// Observe lets everything through and only records verdicts.
	Observe Action = iota + 1
	// Tag forwards alerted requests with X-Scrape-Verdict headers set, so
	// the application can degrade (serve cached prices, hide inventory).
	Tag
	// Block answers alerted requests with 403 without reaching the app.
	Block
)

// Verdicts is the pair of per-request judgements exposed to callbacks.
type Verdicts struct {
	// Commercial is the fingerprint/reputation detector's verdict.
	Commercial detector.Verdict
	// Behavioural is the session-analysis detector's verdict.
	Behavioural detector.Verdict
}

// Alerted reports whether either detector alerted (1-out-of-2, the
// paper's maximum-detection scheme).
func (v Verdicts) Alerted() bool {
	return v.Commercial.Alert || v.Behavioural.Alert
}

// Confirmed reports whether both detectors alerted (2-out-of-2, the
// paper's minimum-false-alarm scheme).
func (v Verdicts) Confirmed() bool {
	return v.Commercial.Alert && v.Behavioural.Alert
}

// Config parameterises the guard.
type Config struct {
	// Action selects what happens to alerted requests. Default Observe.
	Action Action
	// BlockOnConfirmedOnly, with Action Block, blocks only 2-out-of-2
	// confirmed requests; single-tool alerts are tagged instead. This is
	// the serial-confirmation deployment the paper sketches.
	BlockOnConfirmedOnly bool
	// OnVerdict, if set, observes every request's verdicts after the
	// response completes. Called synchronously; keep it fast.
	OnVerdict func(entry logfmt.Entry, v Verdicts)
	// Sentinel and Arcane override detector configurations.
	Sentinel sentinel.Config
	// Arcane overrides the behavioural detector configuration.
	Arcane arcane.Config
	// Shards partitions detection state by client IP across this many
	// independently locked detector pairs; clients never contend across
	// shards. Default GOMAXPROCS.
	Shards int
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// guardShard is one key-partition of detection state: a private detector
// pair, enricher and lock.
type guardShard struct {
	mu       sync.Mutex
	enricher *detector.Enricher
	sen      *sentinel.Detector
	arc      *arcane.Detector
	total    uint64
	alerted  uint64
	blocked  uint64
}

// Guard is the middleware instance. Create with New, wrap handlers with
// Wrap.
type Guard struct {
	cfg    Config
	shards []*guardShard
}

// New builds a guard with its own detector pairs and reputation feed.
func New(cfg Config) (*Guard, error) {
	if cfg.Action == 0 {
		cfg.Action = Observe
	}
	if cfg.Action != Observe && cfg.Action != Tag && cfg.Action != Block {
		return nil, fmt.Errorf("httpguard: invalid action %d", int(cfg.Action))
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	g := &Guard{cfg: cfg, shards: make([]*guardShard, cfg.Shards)}
	for i := range g.shards {
		sen, err := sentinel.New(cfg.Sentinel)
		if err != nil {
			return nil, fmt.Errorf("httpguard: commercial detector: %w", err)
		}
		arc, err := arcane.New(cfg.Arcane)
		if err != nil {
			return nil, fmt.Errorf("httpguard: behavioural detector: %w", err)
		}
		g.shards[i] = &guardShard{
			enricher: detector.NewEnricher(iprep.BuildFeed()),
			sen:      sen,
			arc:      arc,
		}
	}
	return g, nil
}

// Shards reports the number of detection-state partitions.
func (g *Guard) Shards() int { return len(g.shards) }

// Stats reports lifetime counters summed across shards: requests seen,
// requests alerted (1-out-of-2) and requests blocked.
func (g *Guard) Stats() (total, alerted, blocked uint64) {
	for _, s := range g.shards {
		s.mu.Lock()
		total += s.total
		alerted += s.alerted
		blocked += s.blocked
		s.mu.Unlock()
	}
	return total, alerted, blocked
}

// shardFor hashes a client address onto a shard with FNV-1a, so one
// client's state always lives behind one lock.
func (g *Guard) shardFor(remoteAddr string) *guardShard {
	return g.shards[fnvhash.String32(remoteAddr)%uint32(len(g.shards))]
}

// Wrap returns a handler that judges every request before delegating to
// next.
func (g *Guard) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Pre-decision uses the request view with a provisional status;
		// the final verdict below re-records with the real status for
		// accurate session state. Products make the same compromise: the
		// block/allow decision cannot wait for the response.
		entry := g.entryFor(r, http.StatusOK, 0)
		verdicts, shard := g.inspect(entry)

		switch {
		case g.cfg.Action == Block && verdicts.Alerted() &&
			(!g.cfg.BlockOnConfirmedOnly || verdicts.Confirmed()):
			shard.mu.Lock()
			shard.blocked++
			shard.mu.Unlock()
			w.Header().Set("X-Scrape-Verdict", "blocked")
			http.Error(w, "automated scraping detected", http.StatusForbidden)
			g.report(entryWithStatus(entry, http.StatusForbidden), verdicts)
			return
		case g.cfg.Action != Observe && verdicts.Alerted():
			w.Header().Set("X-Scrape-Verdict", verdictLabel(verdicts))
		}

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		g.report(entryWithStatus(entry, rec.status), verdicts)
	})
}

// inspect runs both detectors of the client's shard under that shard's
// lock, returning the shard so callers can account follow-up actions
// without re-hashing.
func (g *Guard) inspect(entry logfmt.Entry) (Verdicts, *guardShard) {
	s := g.shardFor(entry.RemoteAddr)
	s.mu.Lock()
	defer s.mu.Unlock()
	req := s.enricher.Enrich(entry)
	v := Verdicts{
		Commercial:  s.sen.Inspect(&req),
		Behavioural: s.arc.Inspect(&req),
	}
	s.total++
	if v.Alerted() {
		s.alerted++
	}
	return v, s
}

func (g *Guard) report(entry logfmt.Entry, v Verdicts) {
	if g.cfg.OnVerdict != nil {
		g.cfg.OnVerdict(entry, v)
	}
}

// entryFor converts a live request into the Combined Log Format view.
func (g *Guard) entryFor(r *http.Request, status int, size int64) logfmt.Entry {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	user := "-"
	if u, _, ok := r.BasicAuth(); ok && u != "" {
		user = u
	}
	path := r.URL.RequestURI()
	if path == "" {
		path = "/"
	}
	return logfmt.Entry{
		RemoteAddr: host,
		Identity:   "-",
		AuthUser:   user,
		Time:       g.cfg.Now(),
		Method:     r.Method,
		Path:       path,
		Proto:      r.Proto,
		Status:     status,
		Bytes:      size,
		Referer:    headerOrDash(r, "Referer"),
		UserAgent:  headerOrDash(r, "User-Agent"),
	}
}

func entryWithStatus(e logfmt.Entry, status int) logfmt.Entry {
	e.Status = status
	return e
}

func headerOrDash(r *http.Request, name string) string {
	if v := r.Header.Get(name); v != "" {
		return v
	}
	return "-"
}

func verdictLabel(v Verdicts) string {
	switch {
	case v.Confirmed():
		return "confirmed"
	case v.Commercial.Alert:
		return "commercial"
	default:
		return "behavioural"
	}
}

// statusRecorder captures the response status for the post-hoc log view.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}
