package httpguard

import (
	"context"
	"testing"
	"time"
)

func TestDegradedModeNames(t *testing.T) {
	if FailOpen.String() != "fail-open" || FailClosed.String() != "fail-closed" {
		t.Fatalf("mode names: %q %q", FailOpen, FailClosed)
	}
}

func TestFailureConfigDefaults(t *testing.T) {
	g := newGuard(t, Config{Action: Observe})
	if g.cfg.MaxInFlight != 256 {
		t.Fatalf("MaxInFlight default %d, want 256", g.cfg.MaxInFlight)
	}
	if g.cfg.QuarantineBackoff != 30*time.Second {
		t.Fatalf("QuarantineBackoff default %v, want 30s", g.cfg.QuarantineBackoff)
	}
	if g.cfg.Degraded != FailOpen {
		t.Fatalf("Degraded default %v, want fail-open", g.cfg.Degraded)
	}
	// Negative disables the admission gate entirely.
	g = newGuard(t, Config{Action: Observe, MaxInFlight: -1})
	if g.cfg.MaxInFlight != 0 {
		t.Fatalf("negative MaxInFlight normalised to %d, want 0", g.cfg.MaxInFlight)
	}
}

func TestTarpitObservesContextCancellation(t *testing.T) {
	// No injected Sleep: the tarpit runs its real timer path, but the
	// context is already cancelled, so it must return immediately — a
	// disconnected client's goroutine is never pinned for the delay.
	g := newGuard(t, Config{Action: Observe})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	go func() {
		g.tarpit(ctx, time.Hour)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tarpit ignored context cancellation")
	}
}

func TestTarpitUsesInjectedSleep(t *testing.T) {
	var slept []time.Duration
	g := newGuard(t, Config{
		Action: Observe,
		Sleep:  func(d time.Duration) { slept = append(slept, d) },
	})
	g.tarpit(context.Background(), 3*time.Second)
	if len(slept) != 1 || slept[0] != 3*time.Second {
		t.Fatalf("injected sleep saw %v", slept)
	}
}

func TestTarpitZeroDelayReturns(t *testing.T) {
	g := newGuard(t, Config{Action: Observe})
	g.tarpit(context.Background(), 0) // must not touch a timer
}
