package httpguard

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// The guard's inline decision path — entry conversion, shared enrichment,
// both detectors, mitigation engine, response — must be allocation-free
// per request in steady state under the observe policy (enforcement and
// challenge-flow responses are excluded: they write headers and bodies
// through net/http, which allocates by design). The serving harness uses
// a reusable recorder so the measurement sees only the guard.
func TestServeHTTPZeroAllocsSteadyState(t *testing.T) {
	var now time.Time
	g, err := New(Config{
		Action: Observe,
		Now:    func() time.Time { return now },
		Sleep:  func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	base := time.Date(2018, 3, 11, 6, 0, 0, 0, time.UTC)
	// A small stable client population: UA and IP caches warm on the first
	// pass, per-client detector state exists from then on.
	type client struct{ addr, ua string }
	clients := []client{
		{"10.1.2.3:40000", "Mozilla/5.0 (X11; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0"},
		{"10.9.8.7:40000", "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36"},
		{"172.16.4.4:40000", "python-requests/2.18.4"},
	}
	reqs := make([]*http.Request, len(clients))
	for i, c := range clients {
		r := httptest.NewRequest(http.MethodGet, "/product/17", nil)
		r.RemoteAddr = c.addr
		r.Header.Set("User-Agent", c.ua)
		reqs[i] = r
	}

	w := &nopResponseWriter{header: make(http.Header)}
	serve := func(i int) {
		now = base.Add(time.Duration(i) * time.Second)
		w.reset()
		h.ServeHTTP(w, reqs[i%len(reqs)])
	}
	// Warm: caches fill, sessions allocate once.
	for i := 0; i < 64; i++ {
		serve(i)
	}

	i := 64
	allocs := testing.AllocsPerRun(500, func() {
		serve(i)
		i++
	})
	if allocs != 0 {
		t.Errorf("ServeHTTP allocates %.1f/op in steady state, want 0", allocs)
	}
}

// A monitoring scraper polls the metrics endpoint for the life of the
// process, so the encoder hot path over a live guard's registry — func
// instruments reading shard atomics under the topology lock, the latency
// histogram, labelled action counters — must be allocation-free once its
// buffer has grown. Traffic keeps flowing between scrapes to prove warm
// instrument updates don't re-trigger growth.
func TestMetricsScrapeZeroAllocsLiveGuard(t *testing.T) {
	var now time.Time
	g, err := New(Config{
		Action: Observe,
		Shards: 4,
		Now:    func() time.Time { return now },
		Sleep:  func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	base := time.Date(2018, 3, 11, 6, 0, 0, 0, time.UTC)
	req := httptest.NewRequest(http.MethodGet, "/product/17", nil)
	req.RemoteAddr = "10.1.2.3:40000"
	req.Header.Set("User-Agent", "Mozilla/5.0 (X11; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0")
	w := &nopResponseWriter{header: make(http.Header)}
	i := 0
	serve := func() {
		now = base.Add(time.Duration(i) * time.Second)
		i++
		w.reset()
		h.ServeHTTP(w, req)
	}
	for j := 0; j < 32; j++ {
		serve()
	}

	reg := g.Metrics()
	var buf []byte
	buf = reg.AppendPrometheus(buf[:0]) // grow the buffer once
	if len(buf) == 0 {
		t.Fatal("empty scrape")
	}
	allocs := testing.AllocsPerRun(200, func() {
		serve()
		buf = reg.AppendPrometheus(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("metrics scrape allocates %.1f/op on a live guard, want 0", allocs)
	}
}
