package httpguard

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"divscrape/internal/logfmt"
	"divscrape/internal/mitigate"
	"divscrape/internal/workload"
)

func graduated() *mitigate.Policy {
	p := mitigate.Graduated()
	return &p
}

// TestGraduatedLadderOverHTTP drives a blatant scraper through the guard
// and expects the full ladder in order: served, then challenged, then
// blocked — never the reverse.
func TestGraduatedLadderOverHTTP(t *testing.T) {
	clock := newFakeClock()
	var delays []time.Duration
	g := newGuard(t, Config{
		Policy: graduated(),
		Now:    func() time.Time { return clock.tick(time.Second) },
		Sleep:  func(d time.Duration) { delays = append(delays, d) },
	})
	h := g.Wrap(okHandler())

	stage := 0 // 0 served, 1 challenged, 2 blocked
	var sawServed, sawChallenged, sawBlocked bool
	for i := 0; i < 60; i++ {
		rec := do(t, h, "172.16.0.9", toolUA, "/api/price/"+strconv.Itoa(i))
		switch rec.Code {
		case http.StatusOK:
			sawServed = true
			if stage > 0 {
				t.Fatalf("request %d served after escalation began", i)
			}
		case http.StatusServiceUnavailable:
			sawChallenged = true
			if stage > 1 {
				t.Fatalf("request %d challenged after a block", i)
			}
			stage = 1
			if rec.Header().Get("X-Scrape-Verdict") != "challenge" {
				t.Error("challenge response not labelled")
			}
			if !strings.Contains(rec.Body.String(), "__challenge.js") {
				t.Error("challenge interstitial does not reference the script")
			}
		case http.StatusForbidden:
			sawBlocked = true
			stage = 2
		default:
			t.Fatalf("request %d: unexpected status %d", i, rec.Code)
		}
	}
	if !sawServed || !sawChallenged || !sawBlocked {
		t.Fatalf("ladder incomplete: served=%v challenged=%v blocked=%v",
			sawServed, sawChallenged, sawBlocked)
	}
	if len(delays) == 0 {
		t.Error("tarpit rung never fired")
	}
	stats := g.StatsDetail()
	if stats.Actions.Tarpitted == 0 || stats.Actions.Challenged == 0 || stats.Actions.Blocked == 0 {
		t.Errorf("stats missed ladder actions: %+v", stats.Actions)
	}
}

// TestChallengeFlowOverHTTP: a challenged client that fetches the script
// and posts the beacon is no longer challenged.
func TestChallengeFlowOverHTTP(t *testing.T) {
	clock := newFakeClock()
	// Low rungs so a single-tool alert escalates to Challenge fast, with
	// Block far away — the client under test should sit at Challenge.
	p := mitigate.Graduated()
	p.TarpitThreshold = 0.05
	p.ChallengeThreshold = 0.1
	p.BlockThreshold = 50
	p.ScoreCap = 60
	g := newGuard(t, Config{
		Policy: &p,
		Now:    func() time.Time { return clock.tick(time.Second) },
		Sleep:  func(time.Duration) {},
	})
	h := g.Wrap(okHandler())

	const ip = "172.16.0.9"
	var challenged bool
	for i := 0; i < 20 && !challenged; i++ {
		rec := do(t, h, ip, toolUA, "/api/price/"+strconv.Itoa(i))
		challenged = rec.Code == http.StatusServiceUnavailable
	}
	if !challenged {
		t.Fatal("client never challenged")
	}

	// The browser-side of the interstitial: fetch the script, post the
	// solution.
	rec := do(t, h, ip, toolUA, "/__challenge.js")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "__verify") {
		t.Fatalf("challenge script fetch: %d %q", rec.Code, rec.Body.String())
	}
	req := httptest.NewRequest(http.MethodPost, "/__verify", nil)
	req.RemoteAddr = ip + ":51234"
	req.Header.Set("User-Agent", toolUA)
	vrec := httptest.NewRecorder()
	h.ServeHTTP(vrec, req)
	if vrec.Code != http.StatusNoContent {
		t.Fatalf("verify beacon answered %d", vrec.Code)
	}

	// Inside the pass window the client is tarpitted at worst, not
	// challenged or blocked.
	for i := 0; i < 5; i++ {
		rec := do(t, h, ip, toolUA, "/api/price/"+strconv.Itoa(100+i))
		if rec.Code != http.StatusOK {
			t.Fatalf("post-solve request %d denied with %d", i, rec.Code)
		}
	}
	if g.StatsDetail().ChallengesPassed != 1 {
		t.Errorf("challenges passed = %d", g.StatsDetail().ChallengesPassed)
	}
}

// TestStaticPoliciesServeNoChallengeFlow: without a graduated policy the
// guard must not shadow the application's challenge endpoints.
func TestStaticPoliciesServeNoChallengeFlow(t *testing.T) {
	clock := newFakeClock()
	g := newGuard(t, Config{
		Action: Observe,
		Now:    func() time.Time { return clock.tick(time.Second) },
	})
	marker := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	h := g.Wrap(marker)
	rec := do(t, h, "10.0.0.5", browserUA, "/__challenge.js")
	if rec.Code != http.StatusTeapot {
		t.Errorf("observe guard intercepted the challenge script: %d", rec.Code)
	}
}

// TestTrustedProxyClientDerivation covers the X-Forwarded-For /
// X-Real-IP satellite: detection must key on the real client, but only
// when the peer is trusted.
func TestTrustedProxyClientDerivation(t *testing.T) {
	cases := []struct {
		name    string
		trusted []string
		peer    string
		xff     string
		realIP  string
		want    string
	}{
		{"no trust ignores xff", nil, "10.0.0.1", "203.0.113.9", "", "10.0.0.1"},
		{"trusted peer takes xff", []string{"10.0.0.1"}, "10.0.0.1", "203.0.113.9", "", "203.0.113.9"},
		{"walks past trusted hops", []string{"10.0.0.0/8"}, "10.0.0.1", "203.0.113.9, 10.0.0.2", "", "203.0.113.9"},
		{"all hops trusted uses leftmost", []string{"10.0.0.0/8"}, "10.0.0.1", "10.0.0.7, 10.0.0.2", "", "10.0.0.7"},
		{"malformed xff falls back to peer", []string{"10.0.0.1"}, "10.0.0.1", "not-an-ip", "", "10.0.0.1"},
		{"x-real-ip fallback", []string{"10.0.0.1"}, "10.0.0.1", "", "203.0.113.7", "203.0.113.7"},
		{"untrusted peer ignores x-real-ip", nil, "10.9.9.9", "", "203.0.113.7", "10.9.9.9"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			var got string
			g := newGuard(t, Config{
				TrustedProxies: tc.trusted,
				Now:            func() time.Time { return clock.tick(time.Second) },
				OnDecision: func(e logfmt.Entry, _ Verdicts, _ mitigate.Decision) {
					got = e.RemoteAddr
				},
			})
			h := g.Wrap(okHandler())
			req := httptest.NewRequest(http.MethodGet, "/", nil)
			req.RemoteAddr = tc.peer + ":443"
			req.Header.Set("User-Agent", browserUA)
			if tc.xff != "" {
				req.Header.Set("X-Forwarded-For", tc.xff)
			}
			if tc.realIP != "" {
				req.Header.Set("X-Real-IP", tc.realIP)
			}
			h.ServeHTTP(httptest.NewRecorder(), req)
			if got != tc.want {
				t.Errorf("client derived as %q, want %q", got, tc.want)
			}
		})
	}
	if _, err := New(Config{TrustedProxies: []string{"bogus"}}); err == nil {
		t.Error("invalid trusted proxy accepted")
	}
}

// TestEnforcementShardConsistency mirrors PR 1's pipeline equivalence
// test on the response plane: a guard with 1 shard and one with N must
// produce identical per-client action sequences on the same deterministic
// workload, because a client's detection and enforcement state is
// shard-local.
func TestEnforcementShardConsistency(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed:     23,
		Duration: 90 * time.Minute,
		Profile: workload.Profile{
			HumanVisitors:       12,
			HumanSessionsPerDay: 6,
			NaiveScrapers:       1,
			NaiveRate:           1,
			NaiveDuty:           0.5,
			AggressiveScrapers:  1,
			AggressiveRate:      4,
			AggressiveDuty:      0.3,
			StealthBots:         3,
			StealthSessionGap:   20 * time.Minute,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	events, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}

	drive := func(shards int) map[string][]mitigate.Action {
		actions := map[string][]mitigate.Action{}
		var now time.Time
		g := newGuard(t, Config{
			Policy: graduated(),
			Shards: shards,
			Now:    func() time.Time { return now },
			Sleep:  func(time.Duration) {},
			OnDecision: func(e logfmt.Entry, _ Verdicts, d mitigate.Decision) {
				actions[e.RemoteAddr] = append(actions[e.RemoteAddr], d.Action)
			},
		})
		h := g.Wrap(okHandler())
		for i := range events {
			e := &events[i].Entry
			now = e.Time
			req := httptest.NewRequest(e.Method, e.Path, nil)
			req.RemoteAddr = e.RemoteAddr + ":40000"
			req.Header.Set("User-Agent", e.UserAgent)
			if e.Referer != "-" {
				req.Header.Set("Referer", e.Referer)
			}
			h.ServeHTTP(httptest.NewRecorder(), req)
		}
		if got, _, _ := g.Stats(); got != uint64(len(events)) {
			t.Fatalf("guard saw %d of %d events", got, len(events))
		}
		return actions
	}

	one := drive(1)
	many := drive(8)
	if len(one) != len(many) {
		t.Fatalf("client counts differ: %d vs %d", len(one), len(many))
	}
	for client, seq := range one {
		other, ok := many[client]
		if !ok {
			t.Fatalf("client %s missing from sharded run", client)
		}
		if fmt.Sprint(seq) != fmt.Sprint(other) {
			t.Fatalf("client %s action sequences diverge:\n 1 shard: %v\n 8 shards: %v",
				client, seq, other)
		}
	}
}
