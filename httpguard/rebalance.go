package httpguard

import (
	"fmt"

	"divscrape/internal/detector"
	"divscrape/internal/faultinject"
	"divscrape/internal/fnvhash"
	"divscrape/internal/iprep"
	"divscrape/internal/mitigate"
	"divscrape/internal/statecodec"
)

// Fault points the chaos suite arms around the rebalance swap: an
// injected snapshot or restore failure must leave the guard serving on
// its old topology with the topology lock released — never a wedged
// RWMutex or a half-swapped shard set.
var (
	fiRebalanceSnapshot = faultinject.At("httpguard.rebalance.snapshot")
	fiRebalanceRestore  = faultinject.At("httpguard.rebalance.restore")
)

// Live shard rebalancing and guard-level snapshot/restore. Both are built
// on the same mechanism: every stateful component of the shard set — the
// commercial and behavioural detectors' session stores and the mitigation
// engines' client ladders — serialises to a canonical, partition-agnostic
// form (detector.ShardedSnapshotter / mitigate.SnapshotMerged), and that
// form redistributes across any shard count by rehashing each client's
// key. Rebalance does snapshot → rehash → restore entirely in memory
// under the topology lock; Snapshot/Restore expose the same bytes through
// the state codec so a live guard survives a process restart.

// tagGuard opens a guard state block in a snapshot.
const tagGuard uint16 = 0x4755

// Rebalance re-partitions the guard's per-client detection and
// enforcement state across newShards shards, without dropping a request:
// in-flight requests finish on the old topology, requests arriving during
// the swap wait on the topology lock, and every client's sessions,
// suspicion scores and ladder positions move to their new home shard.
// Decisions are unaffected — a client's state follows it, so the action
// stream is identical to a guard that ran with newShards all along.
//
// The swap holds the guard's topology lock exclusively for the duration
// of one full state serialisation and restore; with hundreds of
// thousands of live clients this is milliseconds, the price of turning
// the shard count from a boot-time constant into a runtime tunable.
func (g *Guard) Rebalance(newShards int) error {
	if newShards <= 0 {
		return fmt.Errorf("httpguard: invalid shard count %d", newShards)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if newShards == len(g.shards) {
		return nil
	}

	next := make([]*guardShard, newShards)
	for i := range next {
		shard, err := g.newShard()
		if err != nil {
			return err
		}
		shard.index = i
		next[i] = shard
	}

	w := statecodec.NewWriter()
	g.snapshotShardsLocked(w)
	if err := fiRebalanceSnapshot.Fire(); err != nil {
		w.Fail(err)
	}
	if err := w.Err(); err != nil {
		return fmt.Errorf("httpguard: rebalance snapshot: %w", err)
	}
	if err := fiRebalanceRestore.Fire(); err != nil {
		return fmt.Errorf("httpguard: rebalance restore: %w", err)
	}
	if err := restoreShards(statecodec.NewReader(w.Bytes()), next, newShards, g.cfg.EnableTrajectory); err != nil {
		return fmt.Errorf("httpguard: rebalance restore: %w", err)
	}

	// The cluster plane's fail-closed freeze is guard-level state; the
	// rebuilt engines start thawed and must inherit it.
	if g.escFrozen.Load() {
		for _, s := range next {
			s.engine.SetEscalationFrozen(true)
		}
	}
	g.shards = next
	return nil
}

// SnapshotInto serialises the guard's full detection and enforcement
// state (all shards merged, counters included) in the canonical
// partition-agnostic form. The topology lock is held exclusively, so the
// snapshot is a consistent cut even on a guard serving live traffic.
func (g *Guard) SnapshotInto(w *statecodec.Writer) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.snapshotShardsLocked(w)
}

// RestoreFrom rebuilds the guard's state from a snapshot, distributing
// clients across the guard's current shard count — which need not match
// the count the snapshot was taken at. The guard's configuration
// (detector tuning, mitigation policy) must match the snapshotting
// guard's. On failure the shards are left fresh, never half-restored.
func (g *Guard) RestoreFrom(r *statecodec.Reader) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	next := make([]*guardShard, len(g.shards))
	for i := range next {
		shard, err := g.newShard()
		if err != nil {
			return err
		}
		shard.index = i
		next[i] = shard
	}
	if err := restoreShards(r, next, len(next), g.cfg.EnableTrajectory); err != nil {
		return err
	}
	if g.escFrozen.Load() {
		for _, s := range next {
			s.engine.SetEscalationFrozen(true)
		}
	}
	g.shards = next
	return nil
}

// snapshotShardsLocked writes the fleet counter totals plus the merged
// detector and engine state. Caller holds g.mu exclusively. The guard's
// lock-free action counters are serialised in their own right — they are
// not derivable from the engines' tallies, because challenge-flow
// requests count as allowed without ever reaching an engine.
func (g *Guard) snapshotShardsLocked(w *statecodec.Writer) {
	w.Tag(tagGuard)
	var total, alerted, passed, allowed, tarpitted, challenged, blocked uint64
	sens := make([]detector.Detector, len(g.shards))
	arcs := make([]detector.Detector, len(g.shards))
	engines := make([]*mitigate.Engine, len(g.shards))
	for i, s := range g.shards {
		total += s.total.Load()
		alerted += s.alerted.Load()
		passed += s.passed.Load()
		allowed += s.allowed.Load()
		tarpitted += s.tarpitted.Load()
		challenged += s.challenged.Load()
		blocked += s.blocked.Load()
		sens[i] = s.sen
		arcs[i] = s.arc
		engines[i] = s.engine
	}
	for _, c := range []uint64{total, alerted, passed, allowed, tarpitted, challenged, blocked} {
		w.Uint64(c)
	}
	if err := g.shards[0].sen.SnapshotShardsInto(w, sens); err != nil {
		w.Fail(err)
		return
	}
	if err := g.shards[0].arc.SnapshotShardsInto(w, arcs); err != nil {
		w.Fail(err)
		return
	}
	// The trajectory block exists only on trajectory-enabled guards, so a
	// pair guard's snapshots keep their original layout; restore refuses a
	// layout mismatch via the detectors' own tags.
	if g.cfg.EnableTrajectory {
		trajs := make([]detector.Detector, len(g.shards))
		for i, s := range g.shards {
			trajs[i] = s.traj
		}
		if err := g.shards[0].traj.SnapshotShardsInto(w, trajs); err != nil {
			w.Fail(err)
			return
		}
	}
	mitigate.SnapshotMerged(w, engines)
}

// restoreShards distributes a guard snapshot across a fresh shard set.
// withTraj must match the layout the snapshot was written with — i.e.
// the snapshotting guard's EnableTrajectory.
func restoreShards(r *statecodec.Reader, shards []*guardShard, n int, withTraj bool) error {
	if err := r.Expect(tagGuard); err != nil {
		return err
	}
	var counters [7]uint64
	for i := range counters {
		counters[i] = r.Uint64()
	}
	if err := r.Err(); err != nil {
		return err
	}
	part := func(ip uint32) int { return int(fnvhash.IP32(ip) % uint32(n)) }
	sens := make([]detector.Detector, len(shards))
	arcs := make([]detector.Detector, len(shards))
	engines := make([]*mitigate.Engine, len(shards))
	for i, s := range shards {
		sens[i] = s.sen
		arcs[i] = s.arc
		engines[i] = s.engine
	}
	if err := shards[0].sen.RestoreShards(r, sens, part); err != nil {
		return err
	}
	if err := shards[0].arc.RestoreShards(r, arcs, part); err != nil {
		return err
	}
	if withTraj {
		trajs := make([]detector.Detector, len(shards))
		for i, s := range shards {
			trajs[i] = s.traj
		}
		if err := shards[0].traj.RestoreShards(r, trajs, part); err != nil {
			return err
		}
	}
	// Engines key clients by their derived address string; partition by
	// parsing it back to the numeric form enrichment produced, so a
	// client's engine state lands on the shard its requests route to.
	err := mitigate.RestorePartitioned(r, engines, func(key string) int {
		ip, perr := iprep.ParseIPv4(key)
		if perr != nil {
			ip = 0
		}
		return part(ip)
	})
	if err != nil {
		return err
	}
	// Fleet counter totals live on the first shard of the restored set.
	s0 := shards[0]
	s0.total.Store(counters[0])
	s0.alerted.Store(counters[1])
	s0.passed.Store(counters[2])
	s0.allowed.Store(counters[3])
	s0.tarpitted.Store(counters[4])
	s0.challenged.Store(counters[5])
	s0.blocked.Store(counters[6])
	return nil
}
