package httpguard

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"divscrape/internal/mitigate"
)

// driveTraffic pushes a mixed population through a guard and returns it.
func driveTraffic(t *testing.T, cfg Config, n int) *Guard {
	t.Helper()
	var now time.Time
	cfg.Now = func() time.Time { return now }
	cfg.Sleep = func(time.Duration) {}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	base := time.Date(2018, 3, 11, 6, 0, 0, 0, time.UTC)
	clients := []struct{ addr, ua string }{
		{"10.1.2.3:40000", "Mozilla/5.0 (X11; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0"},
		{"172.16.4.4:40000", "python-requests/2.18.4"},
		{"192.168.96.9:40000", "Scrapy/1.5.0 (+https://scrapy.org)"},
	}
	for i := 0; i < n; i++ {
		now = base.Add(time.Duration(i) * time.Second)
		c := clients[i%len(clients)]
		r := httptest.NewRequest(http.MethodGet, "/product/17", nil)
		r.RemoteAddr = c.addr
		r.Header.Set("User-Agent", c.ua)
		h.ServeHTTP(httptest.NewRecorder(), r)
	}
	return g
}

func TestDebugMetricsEndpoint(t *testing.T) {
	g := driveTraffic(t, Config{Policy: policyPtr(), Shards: 2}, 90)
	srv := httptest.NewServer(g.DebugHandler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + DebugMetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	body := bodyOf(t, res)
	for _, want := range []string{
		"divscrape_guard_requests_total 90",
		"# TYPE divscrape_guard_actions_total counter",
		`divscrape_guard_actions_total{action="allow"}`,
		`divscrape_guard_detector_clients{detector="sentinel"}`,
		`divscrape_guard_detector_clients{detector="arcane"}`,
		"divscrape_guard_shards 2",
		"divscrape_guard_request_seconds_count 90",
		"divscrape_guard_alerted_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q:\n%s", want, body)
		}
	}

	// JSON format of the same registry.
	res, err = srv.Client().Get(srv.URL + DebugMetricsPath + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(bodyOf(t, res)), &m); err != nil {
		t.Fatalf("metrics JSON invalid: %v", err)
	}
	if v, ok := m["divscrape_guard_requests_total"]; !ok || v.(float64) != 90 {
		t.Errorf("json requests_total = %v", v)
	}
}

func TestDebugStateEndpoint(t *testing.T) {
	g := driveTraffic(t, Config{Policy: policyPtr(), Shards: 3}, 60)
	srv := httptest.NewServer(g.DebugHandler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + DebugStatePath)
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if st.Policy != "graduated" {
		t.Errorf("policy = %q", st.Policy)
	}
	if st.Shards != 3 || len(st.PerShard) != 3 {
		t.Errorf("shards = %d, per-shard entries = %d", st.Shards, len(st.PerShard))
	}
	if st.Totals.Total != 60 {
		t.Errorf("totals = %d", st.Totals.Total)
	}
	var perShardTotal uint64
	clients := 0
	for _, s := range st.PerShard {
		perShardTotal += s.Total
		clients += s.SentinelClients
	}
	if perShardTotal != 60 {
		t.Errorf("per-shard totals sum to %d", perShardTotal)
	}
	if clients == 0 {
		t.Error("no live detector clients reported")
	}
	if !st.ChallengesHosted {
		t.Error("graduated guard does not report hosted challenges")
	}
	if st.EvictWindow <= 0 {
		t.Errorf("evict window = %v, want defaulted positive", st.EvictWindow)
	}
}

// The guard's metrics sweep the shard windows; with an aggressive window
// and traffic that goes quiet, the periodic sweep path must run and be
// visible in the counters. sweepEvery is 4096 per shard, so exercise it
// directly via the shard internals rather than 4096 requests.
func TestGuardWindowSweepEvicts(t *testing.T) {
	var now time.Time
	g, err := New(Config{
		Policy:      policyPtr(),
		Shards:      1,
		EvictWindow: 10 * time.Minute,
		Now:         func() time.Time { return now },
		Sleep:       func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	base := time.Date(2018, 3, 11, 6, 0, 0, 0, time.UTC)
	serve := func(addr string, at time.Time) {
		now = at
		r := httptest.NewRequest(http.MethodGet, "/product/1", nil)
		r.RemoteAddr = addr
		r.Header.Set("User-Agent", "python-requests/2.18.4")
		h.ServeHTTP(httptest.NewRecorder(), r)
	}
	serve("10.1.1.1:1", base)
	serve("10.1.1.2:1", base.Add(time.Second))
	// One hour later a fresh client arrives; the old two are outside the
	// 10-minute window. Force the sweep slot by aligning the counter.
	g.mu.RLock()
	s := g.shards[0]
	g.mu.RUnlock()
	s.total.Store(sweepEvery - 1) // next request draws the sweep ticket
	serve("10.1.1.3:1", base.Add(time.Hour))
	if got := g.evicted.Load(); got == 0 {
		t.Error("window sweep evicted nothing")
	}
	if g.sweeps.Load() == 0 {
		t.Error("sweep counter not advanced")
	}
	st := g.State()
	if st.PerShard[0].SentinelClients != 1 {
		t.Errorf("sentinel clients after sweep = %d, want 1", st.PerShard[0].SentinelClients)
	}
}

func policyPtr() *mitigate.Policy {
	p := mitigate.Graduated()
	return &p
}

func bodyOf(t *testing.T, res *http.Response) string {
	t.Helper()
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
