package httpguard

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestClientIPMalformedAndEmptyForwardedEntries pins the fallback
// contract for damaged X-Forwarded-For chains: empty elements (trailing
// commas, doubled separators, empty header instances) are separator
// artefacts and must not discard the valid client address around them,
// while genuinely malformed entries still poison everything to their
// left and fall back to the peer address.
func TestClientIPMalformedAndEmptyForwardedEntries(t *testing.T) {
	cases := []struct {
		name string
		xff  []string // one element per header instance
		want string
	}{
		{"trailing comma", []string{"203.0.113.9,"}, "203.0.113.9"},
		{"leading comma", []string{",203.0.113.9"}, "203.0.113.9"},
		{"doubled separator", []string{"203.0.113.9,, 10.0.0.2"}, "203.0.113.9"},
		{"spaces only element", []string{"203.0.113.9,   , 10.0.0.2"}, "203.0.113.9"},
		{"empty header instance", []string{"", "203.0.113.9"}, "203.0.113.9"},
		{"empty instance between hops", []string{"203.0.113.9", "", "10.0.0.2"}, "203.0.113.9"},
		{"whole header empty", []string{""}, "10.0.0.1"},
		{"only commas", []string{",,,"}, "10.0.0.1"},
		{"garbage entry falls back", []string{"203.0.113.9, garbage"}, "10.0.0.1"},
		{"garbage left of client kept", []string{"garbage, 203.0.113.9"}, "203.0.113.9"},
		{"garbage then trailing comma", []string{"garbage, 203.0.113.9,"}, "203.0.113.9"},
		{"port suffix is malformed", []string{"203.0.113.9:443"}, "10.0.0.1"},
		{"ipv6 client", []string{"2001:db8::7,"}, "2001:db8::7"},
	}
	g := newGuard(t, Config{Action: Observe, TrustedProxies: []string{"10.0.0.0/8"}})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodGet, "/", nil)
			req.RemoteAddr = "10.0.0.1:443"
			req.Header.Del("X-Forwarded-For")
			for _, v := range tc.xff {
				req.Header.Add("X-Forwarded-For", v)
			}
			if got := g.clientIP(req); got != tc.want {
				t.Errorf("clientIP = %q, want %q", got, tc.want)
			}
		})
	}
}
