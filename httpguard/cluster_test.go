package httpguard

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"divscrape/internal/cluster"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/mitigate"
	"divscrape/internal/workload"
)

// The cluster convergence proofs: K guards behind a consistent-hash
// router, exchanging state deltas over an in-process network on a
// simulated clock, produce the same per-client enforcement as one guard
// that saw all the traffic — exactly while healthy, and convergently
// under node kills and partitions that heal.

// clusterClock is the single simulated clock every guard and node reads.
// The replay is single-threaded: the driver writes, everyone else reads.
type clusterClock struct{ t time.Time }

func (c *clusterClock) Now() time.Time { return c.t }

// clusterRig is K guards + nodes on one MemNetwork and clock.
type clusterRig struct {
	t         *testing.T
	ids       []string
	clock     *clusterClock
	net       *cluster.MemNetwork
	ring      *cluster.Ring // the router's static view; kills overlay a skip set
	guards    map[string]*Guard
	nodes     map[string]*cluster.Node
	handlers  map[string]http.Handler
	actions   map[string][]mitigate.Action
	decisions int
	killed    map[string]bool
	lastTick  time.Time
}

// newClusterRig builds K guard+node pairs. policy maps node ID to its
// degraded policy (absent = FailOpen).
func newClusterRig(t *testing.T, ids []string, policy map[string]cluster.DegradedPolicy) *clusterRig {
	t.Helper()
	rig := &clusterRig{
		t:        t,
		ids:      append([]string(nil), ids...),
		clock:    &clusterClock{},
		net:      cluster.NewMemNetwork(),
		ring:     cluster.NewRing(ids),
		guards:   map[string]*Guard{},
		nodes:    map[string]*cluster.Node{},
		handlers: map[string]http.Handler{},
		actions:  map[string][]mitigate.Action{},
		killed:   map[string]bool{},
	}
	sort.Strings(rig.ids)
	for _, id := range rig.ids {
		rig.spawn(id, policy[id])
	}
	return rig
}

// spawn builds (or rebuilds, after a kill) the guard, node and wrapped
// handler for id with fresh state.
func (rig *clusterRig) spawn(id string, pol cluster.DegradedPolicy) {
	rig.t.Helper()
	g := newGuard(rig.t, Config{
		Policy: graduated(),
		Shards: 2,
		Now:    rig.clock.Now,
		Sleep:  func(time.Duration) {},
		OnDecision: func(e logfmt.Entry, _ Verdicts, d mitigate.Decision) {
			rig.decisions++
			rig.actions[e.RemoteAddr] = append(rig.actions[e.RemoteAddr], d.Action)
		},
	})
	peers := make([]string, 0, len(rig.ids)-1)
	for _, p := range rig.ids {
		if p != id {
			peers = append(peers, p)
		}
	}
	shim := &shimTransport{}
	n, err := cluster.New(cluster.Config{
		ID:            id,
		Peers:         peers,
		Backend:       g,
		Transport:     shim,
		Now:           rig.clock.Now,
		Rand:          func() float64 { return 0.5 },
		DeltaInterval: time.Second,
		SendRetries:   2,
		SendBackoff:   200 * time.Millisecond,
		Degraded:      pol,
	})
	if err != nil {
		rig.t.Fatal(err)
	}
	shim.t = rig.net.Attach(n)
	rig.guards[id] = g
	rig.nodes[id] = n
	rig.handlers[id] = g.Wrap(okHandler())
}

type shimTransport struct{ t cluster.Transport }

func (s *shimTransport) Send(to string, frame []byte) error {
	if s.t == nil {
		return cluster.ErrPeerUnreachable
	}
	return s.t.Send(to, frame)
}

// kill takes a node down: its process state is gone and the network
// refuses frames to it.
func (rig *clusterRig) kill(id string) {
	rig.killed[id] = true
	rig.net.Down(id)
}

// revive restarts a killed node as a fresh process: empty guard state,
// new cluster node; anti-entropy has to repopulate it.
func (rig *clusterRig) revive(id string, pol cluster.DegradedPolicy) {
	delete(rig.killed, id)
	rig.net.Up(id)
	rig.spawn(id, pol)
}

// route picks the serving node for a client: the static ring owner, with
// the router (like a health-checking LB) skipping killed nodes.
func (rig *clusterRig) route(ipStr string) string {
	ip, err := iprep.ParseIPv4(ipStr)
	if err != nil {
		rig.t.Fatalf("unroutable client %q: %v", ipStr, err)
	}
	owner, _ := rig.ring.OwnerSkip(ip, func(id string) bool { return rig.killed[id] })
	return owner
}

// replay drives events through the routed guards, ticking the cluster on
// the events' own timeline. between(i) runs before event i — the hook
// kills, partitions and heals mid-replay.
func (rig *clusterRig) replay(events []workload.Event, between func(i int)) {
	rig.t.Helper()
	for i := range events {
		if between != nil {
			between(i)
		}
		e := &events[i].Entry
		rig.clock.t = e.Time
		req := httptest.NewRequest(e.Method, e.Path, nil)
		req.RemoteAddr = e.RemoteAddr + ":40000"
		req.Header.Set("User-Agent", e.UserAgent)
		if e.Referer != "-" {
			req.Header.Set("Referer", e.Referer)
		}
		rig.handlers[rig.route(e.RemoteAddr)].ServeHTTP(httptest.NewRecorder(), req)
		// Tick the cluster at most once per simulated 250ms.
		if rig.clock.t.Sub(rig.lastTick) >= 250*time.Millisecond {
			rig.lastTick = rig.clock.t
			rig.net.Pump(rig.clock.t)
			for _, id := range rig.ids {
				if !rig.killed[id] {
					rig.nodes[id].Tick(rig.clock.t)
				}
			}
		}
	}
}

// referenceActions replays events through one guard that sees all
// traffic, returning per-client action sequences.
func referenceActions(t *testing.T, events []workload.Event) map[string][]mitigate.Action {
	t.Helper()
	actions := map[string][]mitigate.Action{}
	g := guardWithClock(t, 3, events, actions)
	driveGuard(t, g, events, nil, actions)
	return actions
}

// clusterNodeIDs builds k synthetic node addresses.
func clusterNodeIDs(k int) []string {
	ids := make([]string, k)
	for i := range ids {
		ids[i] = "node-" + string(rune('a'+i)) + ":9300"
	}
	return ids
}

// TestClusterConvergenceHealthy is the core proof at 3 and 5 nodes: with
// every node healthy, owner routing makes each client's decisions on one
// node, and the per-client action sequences are byte-identical to the
// one-big-node reference — replication changes nothing it should not.
func TestClusterConvergenceHealthy(t *testing.T) {
	events := rebalanceEvents(t)
	want := referenceActions(t, events)
	for _, k := range []int{3, 5} {
		rig := newClusterRig(t, clusterNodeIDs(k), nil)
		rig.replay(events, nil)
		if rig.decisions != len(events) {
			t.Fatalf("k=%d: %d decisions for %d events — requests dropped", k, rig.decisions, len(events))
		}
		if len(rig.actions) != len(want) {
			t.Fatalf("k=%d: client count %d vs reference %d", k, len(rig.actions), len(want))
		}
		for client, ref := range want {
			got := rig.actions[client]
			if len(got) != len(ref) {
				t.Fatalf("k=%d client %s: %d actions vs %d", k, client, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("k=%d client %s action %d: %v vs %v", k, client, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestClusterNodeKillConvergesAfterHeal kills one node mid-replay (its
// state dies with it) and revives it fresh later. Requirements: every
// request is still served, humans never get challenged or blocked, and
// every client the reference ends Blocked is Blocked at the end here too
// — replication gave the failover nodes the ladder history, and
// anti-entropy repopulated the revived node.
func TestClusterNodeKillConvergesAfterHeal(t *testing.T) {
	events := rebalanceEvents(t)
	want := referenceActions(t, events)
	ids := clusterNodeIDs(3)
	rig := newClusterRig(t, ids, nil)
	killAt, reviveAt := len(events)*2/5, len(events)*7/10
	victim := ids[1]
	rig.replay(events, func(i int) {
		switch i {
		case killAt:
			rig.kill(victim)
		case reviveAt:
			rig.revive(victim, cluster.FailOpen)
		}
	})
	if rig.decisions != len(events) {
		t.Fatalf("%d decisions for %d events — requests dropped in failover", rig.decisions, len(events))
	}
	assertConvergedEnforcement(t, events, want, rig.actions)
}

// TestClusterPartitionFailClosedStopsEscalating isolates one node's
// interconnect mid-replay while clients keep reaching it. The isolated
// node must drop to degraded, freeze escalation under FailClosed (no
// client it serves climbs the ladder on stale state), then thaw on heal
// and converge with the majority.
func TestClusterPartitionFailClosedStopsEscalating(t *testing.T) {
	events := rebalanceEvents(t)
	want := referenceActions(t, events)
	ids := clusterNodeIDs(3)
	victim := ids[2]
	rig := newClusterRig(t, ids, map[string]cluster.DegradedPolicy{victim: cluster.FailClosed})
	cutAt, healAt := len(events)*2/5, len(events)*7/10
	var frozeDuringCut, majorityFroze bool
	rig.replay(events, func(i int) {
		switch {
		case i == cutAt:
			rig.net.Isolate(victim)
		case i == healAt:
			rig.net.HealAll()
		case i > cutAt && i < healAt:
			frozeDuringCut = frozeDuringCut || rig.guards[victim].EscalationFrozen()
			majorityFroze = majorityFroze || rig.guards[ids[0]].EscalationFrozen()
		}
	})
	if rig.decisions != len(events) {
		t.Fatalf("%d decisions for %d events — partition dropped requests", rig.decisions, len(events))
	}
	if !frozeDuringCut {
		t.Fatalf("isolated fail-closed node never froze escalation")
	}
	if majorityFroze {
		t.Fatalf("majority-side node froze escalation")
	}
	if rig.guards[victim].EscalationFrozen() {
		t.Fatalf("victim still frozen after heal")
	}
	if rig.nodes[victim].Degraded() {
		t.Fatalf("victim still degraded after heal: %+v", rig.nodes[victim].Status())
	}
	assertConvergedEnforcement(t, events, want, rig.actions)
}

// assertConvergedEnforcement checks the fault-tolerant convergence
// contract: humans are never challenged or blocked, and every client the
// reference run ends at Block is at Block at the end of the cluster run.
func assertConvergedEnforcement(t *testing.T, events []workload.Event, want, got map[string][]mitigate.Action) {
	t.Helper()
	human := map[string]bool{}
	for i := range events {
		if !events[i].Label.Malicious() {
			human[events[i].Entry.RemoteAddr] = true
		}
	}
	blockedRef := 0
	for client, ref := range want {
		if human[client] {
			for _, a := range got[client] {
				if a >= mitigate.Challenge {
					t.Fatalf("human %s hit %v in cluster run", client, a)
				}
			}
			continue
		}
		if len(ref) == 0 || ref[len(ref)-1] != mitigate.Block {
			continue
		}
		blockedRef++
		seq := got[client]
		if len(seq) == 0 || seq[len(seq)-1] != mitigate.Block {
			last := mitigate.Allow
			if len(seq) > 0 {
				last = seq[len(seq)-1]
			}
			t.Fatalf("client %s: reference ends Blocked, cluster ends %v (%d actions)",
				client, last, len(seq))
		}
	}
	if blockedRef == 0 {
		t.Fatalf("reference run blocked nobody — workload proves nothing")
	}
}
