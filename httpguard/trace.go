package httpguard

import (
	"divscrape/internal/detector"
	"divscrape/internal/logfmt"
	"divscrape/internal/mitigate"
	"divscrape/internal/trace"
)

// Provenance plane: when Config.Trace is set, every decision passes
// through the flight recorder's sampler (one atomic add) and the sampled
// ones — plus every escalation and every watched client — are captured
// as complete trace.Records. Capture happens inside judge, under the
// shard lock, because the feature snapshots alias the shard detectors'
// reusable scratch vectors; the recorder mutex is a leaf below the shard
// lock, so the ordering is acyclic.

// FlightRecorder returns the guard's decision flight recorder, or nil
// when tracing is disabled (Config.Trace nil). The nil recorder is safe
// to use; every method no-ops.
func (g *Guard) FlightRecorder() *trace.Recorder { return g.trace.Recorder() }

// Tracer returns the guard's tracer, or nil when tracing is disabled.
func (g *Guard) Tracer() *trace.Tracer { return g.trace }

// capture builds and stores one flight record for a judged request.
// Called under the shard lock, only when tracing is enabled.
func (s *guardShard) capture(tr *trace.Tracer, req *detector.Request, entry logfmt.Entry,
	v *Verdicts, dec mitigate.Decision, rungBefore mitigate.Action, okSen, okArc, okTraj bool) {
	rec := tr.Recorder()
	kind := rec.Sample()
	if dec.Level > rungBefore {
		kind = trace.SampleEscalation
	}
	if kind == trace.SampleNone && rec.WantClient(entry.RemoteAddr) {
		kind = trace.SampleClient
	}
	if kind == trace.SampleNone {
		return
	}
	r := trace.Record{
		Seq:        req.Seq,
		Time:       entry.Time,
		Client:     entry.RemoteAddr,
		Sampled:    kind.String(),
		Alerted:    v.Alerted(),
		Confirmed:  v.Confirmed(),
		Action:     dec.Action.String(),
		RungBefore: rungBefore.String(),
		RungAfter:  dec.Level.String(),
		Suspicion:  dec.Score,
	}
	// A side that did not run (quarantined) contributes no features and
	// is marked skipped — its zero verdict is the degraded default, not a
	// judgement.
	sen := trace.DetectorRecordOf(sideNames[sideSentinel], &v.Commercial, explainerIf(okSen, s.sen))
	sen.Skipped = !okSen
	arc := trace.DetectorRecordOf(sideNames[sideArcane], &v.Behavioural, explainerIf(okArc, s.arc))
	arc.Skipped = !okArc
	r.Detectors = []trace.DetectorRecord{sen, arc}
	if s.traj != nil {
		traj := trace.DetectorRecordOf(sideNames[sideTrajectory], &v.Trajectory, explainerIf(okTraj, s.traj))
		traj.Skipped = !okTraj
		r.Detectors = append(r.Detectors, traj)
	}
	rec.Add(r)
}

// explainerIf gates a detector's feature snapshot on it having actually
// judged the request.
func explainerIf(ok bool, ex detector.Explainer) detector.Explainer {
	if !ok {
		return nil
	}
	return ex
}
