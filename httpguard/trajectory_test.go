package httpguard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/faultinject"
	"divscrape/internal/statecodec"
)

// The optional third detector side. These tests pin the triple-guard
// semantics (1-out-of-3 alert, 2-out-of-3 confirmation), the surfaces
// that grow a trajectory entry only when the side is enabled, and the
// failure plane and snapshot layout around the new slot.

func alert(score float64) detector.Verdict {
	return detector.Verdict{Alert: true, Score: score}
}

func TestVerdictsEnsembleSemantics(t *testing.T) {
	cases := []struct {
		name      string
		v         Verdicts
		alerted   bool
		confirmed bool
	}{
		{"none", Verdicts{}, false, false},
		{"commercial only", Verdicts{Commercial: alert(1)}, true, false},
		{"behavioural only", Verdicts{Behavioural: alert(1)}, true, false},
		{"trajectory only", Verdicts{Trajectory: alert(1)}, true, false},
		// The pair reduction: with Trajectory zero, Confirmed is the
		// classic 2-out-of-2.
		{"pair confirmed", Verdicts{Commercial: alert(1), Behavioural: alert(1)}, true, true},
		// Any two of three confirm; the third may sit out.
		{"sen+traj", Verdicts{Commercial: alert(1), Trajectory: alert(1)}, true, true},
		{"arc+traj", Verdicts{Behavioural: alert(1), Trajectory: alert(1)}, true, true},
		{"all three", Verdicts{Commercial: alert(1), Behavioural: alert(1), Trajectory: alert(1)}, true, true},
	}
	for _, tc := range cases {
		if got := tc.v.Alerted(); got != tc.alerted {
			t.Errorf("%s: Alerted() = %v, want %v", tc.name, got, tc.alerted)
		}
		if got := tc.v.Confirmed(); got != tc.confirmed {
			t.Errorf("%s: Confirmed() = %v, want %v", tc.name, got, tc.confirmed)
		}
	}
}

// trajSessions sums live trajectory sessions across shards.
func trajSessions(g *Guard) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, s := range g.shards {
		s.mu.Lock()
		if s.traj != nil {
			n += s.traj.Sessions()
		}
		s.mu.Unlock()
	}
	return n
}

// browse drives a plausible multi-client browsing mix through the guard.
func browse(t *testing.T, h http.Handler, clients, requests int) {
	t.Helper()
	for c := 0; c < clients; c++ {
		ip := fmt.Sprintf("10.20.%d.%d", c/250, c%250+1)
		for i := 0; i < requests; i++ {
			path := "/product/" + strconv.Itoa(i%9)
			if i%3 == 1 {
				path = "/category/" + strconv.Itoa(i%4)
			}
			if rec := do(t, h, ip, browserUA, path); rec.Code != http.StatusOK {
				t.Fatalf("client %s request %d: %d", ip, i, rec.Code)
			}
		}
	}
}

func TestTrajectoryGuardSurfaces(t *testing.T) {
	g := newGuard(t, Config{
		Action:           Observe,
		EnableTrajectory: true,
		Shards:           2,
		Sleep:            func(time.Duration) {},
	})
	h := g.Wrap(okHandler())
	browse(t, h, 6, 20)

	if n := trajSessions(g); n == 0 {
		t.Fatal("no trajectory sessions after browsing traffic")
	}

	// State reports trajectory sessions per shard; their sum matches the
	// live stores.
	st := g.State()
	sum := 0
	for _, ss := range st.PerShard {
		sum += ss.TrajectorySessions
	}
	if sum != trajSessions(g) {
		t.Errorf("state trajectory sessions %d, live %d", sum, trajSessions(g))
	}

	// Health grows a trajectory entry on every shard.
	for i, sh := range g.Health().PerShard {
		if sh.Trajectory == nil {
			t.Fatalf("shard %d health has no trajectory entry", i)
		}
	}

	// The metrics scrape carries the per-detector instruments for the
	// third side.
	rec := do(t, g.DebugHandler(), "10.99.0.1", browserUA, DebugMetricsPath)
	body := rec.Body.String()
	for _, want := range []string{
		`divscrape_guard_detector_clients{detector="trajectory"}`,
		`divscrape_guard_detector_panics_total{detector="trajectory"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// A pair guard's surfaces must not change shape when the trajectory code
// is merely compiled in: no trajectory metrics, health entries or state
// fields.
func TestPairGuardSurfacesUnchanged(t *testing.T) {
	g := newGuard(t, Config{Action: Observe, Shards: 2, Sleep: func(time.Duration) {}})
	h := g.Wrap(okHandler())
	browse(t, h, 3, 10)

	rec := do(t, g.DebugHandler(), "10.99.0.1", browserUA, DebugMetricsPath)
	if body := rec.Body.String(); strings.Contains(body, "trajectory") {
		t.Error("pair guard scrape mentions trajectory")
	}
	doc, err := json.Marshal(g.Health())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(doc), "trajectory") {
		t.Error("pair guard health document mentions trajectory")
	}
	if doc, err = json.Marshal(g.State()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(doc), "trajectory_sessions") {
		t.Error("pair guard state document carries trajectory_sessions")
	}
}

func TestChaosTrajectoryQuarantineAndRestore(t *testing.T) {
	g, now := chaosGuard(t, func(c *Config) { c.EnableTrajectory = true })
	h := g.Wrap(okHandler())
	warmToSnapshot(t, h, "172.16.0.9")
	if hs := g.Health(); !hs.PerShard[0].Trajectory.HasSnapshot {
		t.Fatal("no trajectory last-good snapshot after a sweep slot")
	}

	faultinject.Enable("httpguard.inspect.trajectory", faultinject.Fault{Panic: "trajectory bug", Times: 1})
	if rec := do(t, h, "172.16.0.9", browserUA, "/page"); rec.Code != http.StatusOK {
		t.Fatalf("fail-open served %d during trajectory panic", rec.Code)
	}
	hs := g.Health()
	if hs.Healthy {
		t.Fatal("guard healthy with quarantined trajectory side")
	}
	if dh := hs.PerShard[0].Trajectory; !dh.Quarantined || dh.Reason != "trajectory bug" {
		t.Fatalf("trajectory health %+v", dh)
	}
	if hs.Panics["trajectory"] != 1 {
		t.Fatalf("panic counters %v", hs.Panics)
	}
	// The pair keeps judging while the third side sits out.
	if rec := do(t, h, "172.16.0.9", browserUA, "/page"); rec.Code != http.StatusOK {
		t.Fatalf("degraded request served %d", rec.Code)
	}

	*now = now.Add(g.cfg.QuarantineBackoff + time.Second)
	if rec := do(t, h, "172.16.0.9", browserUA, "/page"); rec.Code != http.StatusOK {
		t.Fatalf("restore request served %d", rec.Code)
	}
	hs = g.Health()
	if !hs.Healthy || hs.Restores["trajectory"] != 1 {
		t.Fatalf("after backoff: healthy=%v restores=%v", hs.Healthy, hs.Restores)
	}
	// Restored warm from the last-good snapshot, not a cold start.
	if st := g.State(); st.PerShard[0].TrajectorySessions == 0 {
		t.Fatal("trajectory restore came back cold despite a snapshot")
	}
}

func tripleGuard(t *testing.T, shards int) *Guard {
	t.Helper()
	return newGuard(t, Config{
		Action:           Observe,
		EnableTrajectory: true,
		Shards:           shards,
		Sleep:            func(time.Duration) {},
	})
}

func TestTrajectorySnapshotRoundTrip(t *testing.T) {
	src := tripleGuard(t, 3)
	browse(t, src.Wrap(okHandler()), 5, 15)
	wantSessions := trajSessions(src)
	wantTotal := src.StatsDetail().Total

	w := statecodec.NewWriter()
	src.SnapshotInto(w)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	// Restoring onto a different shard count redistributes every session.
	dst := tripleGuard(t, 5)
	if err := dst.RestoreFrom(statecodec.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := trajSessions(dst); got != wantSessions {
		t.Errorf("restored trajectory sessions %d, want %d", got, wantSessions)
	}
	if got := dst.StatsDetail().Total; got != wantTotal {
		t.Errorf("restored total %d, want %d", got, wantTotal)
	}
	if rec := do(t, dst.Wrap(okHandler()), "10.20.0.1", browserUA, "/page"); rec.Code != http.StatusOK {
		t.Fatalf("restored guard served %d", rec.Code)
	}
}

// Snapshot layouts are guard-shape specific: a pair guard cannot restore
// a trajectory snapshot and vice versa — silently dropping or zeroing a
// side's state would be worse than refusing.
func TestTrajectorySnapshotLayoutMismatch(t *testing.T) {
	pair := newGuard(t, Config{Action: Observe, Shards: 2, Sleep: func(time.Duration) {}})
	triple := tripleGuard(t, 2)
	browse(t, pair.Wrap(okHandler()), 2, 10)
	browse(t, triple.Wrap(okHandler()), 2, 10)

	w := statecodec.NewWriter()
	triple.SnapshotInto(w)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if err := pair.RestoreFrom(statecodec.NewReader(w.Bytes())); err == nil {
		t.Error("pair guard accepted a trajectory-guard snapshot")
	}

	w = statecodec.NewWriter()
	pair.SnapshotInto(w)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if err := triple.RestoreFrom(statecodec.NewReader(w.Bytes())); err == nil {
		t.Error("trajectory guard accepted a pair-guard snapshot")
	}
}

func TestTrajectoryRebalanceConservesState(t *testing.T) {
	g := tripleGuard(t, 2)
	h := g.Wrap(okHandler())
	browse(t, h, 6, 15)
	wantSessions := trajSessions(g)
	wantTotal := g.StatsDetail().Total
	if wantSessions == 0 {
		t.Fatal("no trajectory sessions before rebalance")
	}

	if err := g.Rebalance(5); err != nil {
		t.Fatal(err)
	}
	if got := trajSessions(g); got != wantSessions {
		t.Errorf("rebalanced trajectory sessions %d, want %d", got, wantSessions)
	}
	if got := g.StatsDetail().Total; got != wantTotal {
		t.Errorf("rebalanced total %d, want %d", got, wantTotal)
	}
	if rec := do(t, h, "10.20.0.1", browserUA, "/page"); rec.Code != http.StatusOK {
		t.Fatalf("rebalanced guard served %d", rec.Code)
	}
}
