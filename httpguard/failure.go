package httpguard

import (
	"context"
	"fmt"
	"time"

	"divscrape/internal/arcane"
	"divscrape/internal/detector"
	"divscrape/internal/faultinject"
	"divscrape/internal/sentinel"
	"divscrape/internal/statecodec"
	"divscrape/internal/trace"
	"divscrape/internal/trajectory"
)

// The guard's failure plane. Three mechanisms keep a production guard
// serving through the failures the offline toolkit never sees:
//
//   - Panic isolation: a detector that panics mid-inspect is caught at
//     the shard boundary, quarantined, and rebuilt from its last good
//     snapshot after a backoff — one faulty state machine costs one
//     detector on one shard for a bounded time, never the process.
//   - Degraded-mode policy: what the guard does while it cannot fully
//     judge a request is an explicit, configured choice (FailOpen /
//     FailClosed), surfaced in metrics and the health endpoint —
//     never a silent default an adversary can probe for.
//   - Admission control: a per-shard in-flight bound sheds excess
//     requests to the degraded policy before queueing on the shard
//     lock collapses latency for everyone.
//
// All failure-plane bookkeeping is driven by the guard's injected
// clock (request event time), so quarantine backoff is deterministic
// under test and no code path here ever sleeps.

// Fault points for the chaos suite: panics/stalls injected into each
// detector's inspect path, and a clock-skew point on the guard's time
// source. Disarmed they cost one atomic load per request each.
var (
	fiSentinel   = faultinject.At("httpguard.inspect.sentinel")
	fiArcane     = faultinject.At("httpguard.inspect.arcane")
	fiTrajectory = faultinject.At("httpguard.inspect.trajectory")
	fiClock      = faultinject.At("httpguard.clock")
)

// DegradedMode selects what the guard does with a request it cannot
// fully judge — one shed by admission control, or inspected while a
// detector is quarantined.
type DegradedMode int

const (
	// FailOpen serves degraded requests with whatever detection
	// remains (possibly none), keeping the site up at the price of
	// letting scrapers through while degraded. The default.
	FailOpen DegradedMode = iota
	// FailClosed refuses degraded requests with 503 until the guard is
	// whole again, keeping detection authoritative at the price of
	// availability.
	FailClosed
)

// String returns the mode's stable name.
func (m DegradedMode) String() string {
	if m == FailClosed {
		return "fail-closed"
	}
	return "fail-open"
}

// failState classifies how a request's judgement degraded, if at all.
type failState uint8

const (
	failNone     failState = iota
	failShed               // admission control refused full judgement
	failDegraded           // a quarantined detector sat out the ensemble
)

// detectorSide indexes a shard's detector slots. The trajectory slot
// exists only on guards built with Config.EnableTrajectory; a pair guard
// runs sides [0, pairSides).
type detectorSide int

const (
	sideSentinel detectorSide = iota
	sideArcane
	sideTrajectory
	numSides

	// pairSides is the classic two-detector deployment's side count.
	pairSides = int(sideTrajectory)
)

var sideNames = [numSides]string{"sentinel", "arcane", "trajectory"}

// numActiveSides reports how many detector sides this guard runs: the
// paper's pair, plus the semantic trajectory side when enabled.
func (g *Guard) numActiveSides() int {
	if g.cfg.EnableTrajectory {
		return int(numSides)
	}
	return pairSides
}

// DegradedEvent describes one failure-plane transition, delivered to
// Config.OnDegraded.
type DegradedEvent struct {
	// Shard is the affected shard's index at event time.
	Shard int
	// Detector names the affected detector slot.
	Detector string
	// Kind is "quarantine" or "restore".
	Kind string
	// Reason carries the panic value for quarantines.
	Reason string
	// At is the event time (the guard's clock).
	At time.Time
}

// detectorHealth is one shard-side's failure-plane state. Guarded by
// the shard mutex, except the counters, which metrics read lock-free.
type detectorHealth struct {
	quarantined bool
	reason      string        // panic value of the quarantining failure
	backoff     time.Duration // current restore backoff
	retryAt     time.Time     // when a restore may next be attempted
	hasGood     bool          // snapW holds a restorable snapshot
	snapW       *statecodec.Writer
}

// maxQuarantineBackoffFactor caps the per-repeat-panic doubling of the
// restore backoff.
const maxQuarantineBackoffFactor = 32

// health returns the shard's state for one detector side.
func (s *guardShard) health(side detectorSide) *detectorHealth {
	switch side {
	case sideSentinel:
		return &s.senHealth
	case sideArcane:
		return &s.arcHealth
	default:
		return &s.trajHealth
	}
}

// runDetector runs one side's detector with the shard's panic barrier,
// attempting a quarantined side's restore first when its backoff has
// elapsed. It reports whether a verdict was produced; a quarantined
// side leaves the verdict zero. Caller holds the shard mutex.
func (s *guardShard) runDetector(g *Guard, side detectorSide, req *detector.Request, v *detector.Verdict, now time.Time) bool {
	h := s.health(side)
	if h.quarantined {
		if now.Before(h.retryAt) {
			return false
		}
		if !s.restoreDetector(g, side, now) {
			return false
		}
	}
	return s.inspectGuarded(g, side, req, v, now)
}

// inspectGuarded is the panic barrier around one InspectInto call. A
// panic — the detector's own or an injected one — quarantines the side
// and zeroes the verdict; the request is still answered under the
// degraded policy.
func (s *guardShard) inspectGuarded(g *Guard, side detectorSide, req *detector.Request, v *detector.Verdict, now time.Time) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			*v = detector.Verdict{}
			s.quarantine(g, side, r, now)
			ok = false
		}
	}()
	switch side {
	case sideSentinel:
		if err := fiSentinel.Fire(); err != nil {
			panic(err)
		}
		s.sen.InspectInto(req, v)
	case sideArcane:
		if err := fiArcane.Fire(); err != nil {
			panic(err)
		}
		s.arc.InspectInto(req, v)
	default:
		if err := fiTrajectory.Fire(); err != nil {
			panic(err)
		}
		s.traj.InspectInto(req, v)
	}
	return true
}

// quarantine takes one detector side out of service after a panic. The
// side's state machine is presumed corrupt and is never touched again;
// restoreDetector rebuilds a fresh instance from the last good
// snapshot once the backoff elapses. Repeat panics (a failure that
// survives restore) double the backoff up to 32× the configured base,
// so a persistently crashing detector converges to a slow retry loop
// instead of a rebuild storm. Caller holds the shard mutex.
func (s *guardShard) quarantine(g *Guard, side detectorSide, cause any, now time.Time) {
	h := s.health(side)
	h.quarantined = true
	h.reason = fmt.Sprint(cause)
	if h.backoff <= 0 {
		h.backoff = g.cfg.QuarantineBackoff
	} else if h.backoff < maxQuarantineBackoffFactor*g.cfg.QuarantineBackoff {
		h.backoff *= 2
	}
	h.retryAt = now.Add(h.backoff)
	g.panics[side].Add(1)
	g.notifyDegraded(DegradedEvent{
		Shard:    s.index,
		Detector: sideNames[side],
		Kind:     "quarantine",
		Reason:   h.reason,
		At:       now,
	})
}

// restoreDetector rebuilds a quarantined side: a fresh detector,
// restored from the shard's last good snapshot when one exists. A
// snapshot that fails to restore is discarded and the side comes back
// cold — session memory lost, but serving. Returns false (and pushes
// the retry out by one backoff) only if the detector cannot even be
// constructed. Caller holds the shard mutex.
func (s *guardShard) restoreDetector(g *Guard, side detectorSide, now time.Time) bool {
	h := s.health(side)
	fresh, err := g.buildDetector(side)
	if err != nil {
		h.retryAt = now.Add(h.backoff)
		return false
	}
	if h.hasGood {
		if rerr := fresh.RestoreFrom(statecodec.NewReader(h.snapW.Bytes())); rerr != nil {
			h.hasGood = false
			if fresh, err = g.buildDetector(side); err != nil {
				h.retryAt = now.Add(h.backoff)
				return false
			}
		}
	}
	s.setDetector(side, fresh)
	h.quarantined = false
	h.reason = ""
	g.restores[side].Add(1)
	g.notifyDegraded(DegradedEvent{
		Shard:    s.index,
		Detector: sideNames[side],
		Kind:     "restore",
		At:       now,
	})
	return true
}

// refreshLastGood re-snapshots a healthy side into the shard's
// last-good buffer. Runs in the shard's periodic sweep slot, so a
// quarantined side restores to a state at most one sweep interval old.
// Surviving to a snapshot point also retires the side's backoff: the
// detector has proven itself stable again. Caller holds the shard
// mutex.
func (s *guardShard) refreshLastGood(side detectorSide) {
	h := s.health(side)
	if h.quarantined {
		return
	}
	if h.snapW == nil {
		h.snapW = statecodec.NewWriter()
	}
	h.snapW.Reset()
	s.snapshotter(side).SnapshotInto(h.snapW)
	if h.snapW.Err() == nil {
		h.hasGood = true
		h.backoff = 0
	} else {
		h.hasGood = false
	}
}

// snapshotter returns the live detector behind one side as its
// snapshot capability.
func (s *guardShard) snapshotter(side detectorSide) detector.Snapshotter {
	switch side {
	case sideSentinel:
		return s.sen
	case sideArcane:
		return s.arc
	default:
		return s.traj
	}
}

// buildDetector constructs a fresh, identically configured detector for
// one side — the replacement instance a restore swaps in.
func (g *Guard) buildDetector(side detectorSide) (detector.Snapshotter, error) {
	switch side {
	case sideSentinel:
		return sentinel.New(g.cfg.Sentinel)
	case sideArcane:
		return arcane.New(g.cfg.Arcane)
	default:
		return trajectory.New(g.cfg.Trajectory)
	}
}

// setDetector swaps one side's live detector. Caller holds the shard
// mutex.
func (s *guardShard) setDetector(side detectorSide, d detector.Snapshotter) {
	switch side {
	case sideSentinel:
		s.sen = d.(*sentinel.Detector)
	case sideArcane:
		s.arc = d.(*arcane.Detector)
	default:
		s.traj = d.(*trajectory.Detector)
	}
}

// notifyDegraded delivers a failure-plane transition to the configured
// observer and, when tracing is on, to the flight recorder's provenance
// event ring (so an explain timeline shows the quarantine that degraded
// a client's verdicts). Called under the shard mutex — the callback must
// not call back into the guard; the recorder mutex is a leaf.
func (g *Guard) notifyDegraded(ev DegradedEvent) {
	if g.trace != nil {
		g.trace.Recorder().AddEvent(trace.Event{
			Time:     ev.At,
			Shard:    ev.Shard,
			Kind:     ev.Kind,
			Detector: ev.Detector,
			Detail:   ev.Reason,
		})
	}
	if g.cfg.OnDegraded != nil {
		g.cfg.OnDegraded(ev)
	}
}

// tarpit stalls the response for d. The stall observes the request
// context: a client that disconnects mid-tarpit releases its goroutine
// immediately instead of pinning it for the full delay — otherwise a
// scraper could hold-and-drop connections to exhaust the server the
// tarpit is defending. An injected Config.Sleep (tests, benchmarks)
// bypasses the context plumbing.
func (g *Guard) tarpit(ctx context.Context, d time.Duration) {
	if g.cfg.Sleep != nil {
		g.cfg.Sleep(d)
		return
	}
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
