package httpguard

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"divscrape/internal/logfmt"
	"divscrape/internal/mitigate"
	"divscrape/internal/statecodec"
	"divscrape/internal/workload"
)

// rebalanceEvents generates the deterministic mixed workload the
// resharding equivalence tests replay.
func rebalanceEvents(t *testing.T) []workload.Event {
	t.Helper()
	gen, err := workload.NewGenerator(workload.Config{
		Seed:     31,
		Duration: 4 * time.Hour,
		Profile: workload.Profile{
			HumanVisitors:       12,
			HumanSessionsPerDay: 6,
			NaiveScrapers:       1,
			NaiveRate:           1,
			NaiveDuty:           0.5,
			AggressiveScrapers:  1,
			AggressiveRate:      4,
			AggressiveDuty:      0.3,
			StealthBots:         3,
			StealthSessionGap:   20 * time.Minute,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	events, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 1500 {
		t.Fatalf("workload too small: %d events", len(events))
	}
	return events
}

// driveGuard replays events through g, recording each client's action
// sequence; rebalanceAt (event index → new shard count) triggers live
// reshards mid-stream.
func driveGuard(t *testing.T, g *Guard, events []workload.Event, rebalanceAt map[int]int, actions map[string][]mitigate.Action) {
	t.Helper()
	h := g.Wrap(okHandler())
	for i := range events {
		if n, ok := rebalanceAt[i]; ok {
			if err := g.Rebalance(n); err != nil {
				t.Fatalf("Rebalance(%d) at event %d: %v", n, i, err)
			}
			if got := g.Shards(); got != n {
				t.Fatalf("Shards() = %d after Rebalance(%d)", got, n)
			}
		}
		e := &events[i].Entry
		req := httptest.NewRequest(e.Method, e.Path, nil)
		req.RemoteAddr = e.RemoteAddr + ":40000"
		req.Header.Set("User-Agent", e.UserAgent)
		if e.Referer != "-" {
			req.Header.Set("Referer", e.Referer)
		}
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
}

func guardWithClock(t *testing.T, shards int, events []workload.Event, actions map[string][]mitigate.Action) *Guard {
	t.Helper()
	i := 0
	return newGuard(t, Config{
		Policy: graduated(),
		Shards: shards,
		Now: func() time.Time {
			// Serve each request at its log timestamp (the tests replay
			// single-threaded, so the index advance is safe).
			if i < len(events) {
				return events[i].Entry.Time
			}
			return events[len(events)-1].Entry.Time
		},
		Sleep: func(time.Duration) {},
		OnDecision: func(e logfmt.Entry, _ Verdicts, d mitigate.Decision) {
			i++
			actions[e.RemoteAddr] = append(actions[e.RemoteAddr], d.Action)
		},
	})
}

// TestRebalanceMidStreamEquivalence is the resharding proof: a guard
// that starts at 3 shards and rebalances to 5 (and later to 2) mid-stream
// produces the exact per-client action sequences of guards that ran the
// whole stream at a fixed shard count.
func TestRebalanceMidStreamEquivalence(t *testing.T) {
	events := rebalanceEvents(t)

	run := func(shards int, rebalanceAt map[int]int) map[string][]mitigate.Action {
		actions := map[string][]mitigate.Action{}
		g := guardWithClock(t, shards, events, actions)
		driveGuard(t, g, events, rebalanceAt, actions)
		return actions
	}

	want := run(5, nil) // the fixed-M reference
	got := run(3, map[int]int{
		len(events) / 3:     5, // N → M mid-stream
		len(events) * 3 / 4: 2, // and shrink later, for good measure
	})

	if len(got) != len(want) {
		t.Fatalf("client count differs: %d vs %d", len(got), len(want))
	}
	for client, seq := range want {
		g := got[client]
		if len(g) != len(seq) {
			t.Fatalf("client %s: %d actions vs %d", client, len(g), len(seq))
		}
		for i := range seq {
			if g[i] != seq[i] {
				t.Fatalf("client %s action %d: got %v, want %v", client, i, g[i], seq[i])
			}
		}
	}
}

// TestRebalanceConservesStats: counters are fleet totals and must survive
// the reshard exactly.
func TestRebalanceConservesStats(t *testing.T) {
	events := rebalanceEvents(t)
	actions := map[string][]mitigate.Action{}
	g := guardWithClock(t, 4, events, actions)
	driveGuard(t, g, events[:1000], nil, actions)
	before := g.StatsDetail()
	if err := g.Rebalance(7); err != nil {
		t.Fatal(err)
	}
	if after := g.StatsDetail(); after != before {
		t.Errorf("stats changed across rebalance: %+v vs %+v", after, before)
	}
}

func TestRebalanceRejectsInvalidCount(t *testing.T) {
	g := newGuard(t, Config{Shards: 2})
	if err := g.Rebalance(0); err == nil {
		t.Error("Rebalance(0) accepted")
	}
	if err := g.Rebalance(-3); err == nil {
		t.Error("Rebalance(-3) accepted")
	}
	if err := g.Rebalance(2); err != nil {
		t.Errorf("no-op Rebalance: %v", err)
	}
}

// TestRebalanceUnderConcurrentTraffic hammers the guard from several
// goroutines while another reshards repeatedly; run under -race this
// pins the topology-lock discipline, and afterwards every request must
// have been counted exactly once — none dropped.
func TestRebalanceUnderConcurrentTraffic(t *testing.T) {
	g := newGuard(t, Config{
		Policy: graduated(),
		Shards: 3,
		Sleep:  func(time.Duration) {},
	})
	h := g.Wrap(okHandler())

	const workers = 8
	const perWorker = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec := httptest.NewRecorder()
				req := httptest.NewRequest("GET", "/product/1", nil)
				req.RemoteAddr = "10.1.2.3:40000"
				req.Header.Set("User-Agent", "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36")
				h.ServeHTTP(rec, req)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, n := range []int{1, 6, 2, 8, 4, 3} {
			if err := g.Rebalance(n); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if total, _, _ := g.Stats(); total != workers*perWorker {
		t.Errorf("counted %d requests, served %d — requests dropped across rebalance", total, workers*perWorker)
	}
}

// TestGuardSnapshotRestoreAcrossShardCounts: a guard snapshot restores
// into a guard with a different shard count and continues with identical
// decisions — checkpoint-resume for the live middleware.
func TestGuardSnapshotRestoreAcrossShardCounts(t *testing.T) {
	events := rebalanceEvents(t)
	k := len(events) / 2

	// Reference: uninterrupted 5-shard guard.
	wantActions := map[string][]mitigate.Action{}
	ref := guardWithClock(t, 5, events, wantActions)
	driveGuard(t, ref, events, nil, wantActions)

	// Head: 3-shard guard over the prefix, snapshotted.
	headActions := map[string][]mitigate.Action{}
	head := guardWithClock(t, 3, events, headActions)
	driveGuard(t, head, events[:k], nil, headActions)
	w := statecodec.NewWriter()
	head.SnapshotInto(w)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	// Tail: fresh 5-shard guard restored from the 3-shard snapshot. Its
	// clock must continue at event k.
	tailActions := map[string][]mitigate.Action{}
	i := k
	tail := newGuard(t, Config{
		Policy: graduated(),
		Shards: 5,
		Now: func() time.Time {
			if i < len(events) {
				return events[i].Entry.Time
			}
			return events[len(events)-1].Entry.Time
		},
		Sleep: func(time.Duration) {},
		OnDecision: func(e logfmt.Entry, _ Verdicts, d mitigate.Decision) {
			i++
			tailActions[e.RemoteAddr] = append(tailActions[e.RemoteAddr], d.Action)
		},
	})
	if err := tail.RestoreFrom(statecodec.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	st := tail.StatsDetail()
	if st.Total != uint64(k) {
		t.Fatalf("restored Total = %d, want %d", st.Total, k)
	}
	driveGuard(t, tail, events[k:], nil, tailActions)

	for client, want := range wantActions {
		got := append(headActions[client], tailActions[client]...)
		if len(got) != len(want) {
			t.Fatalf("client %s: %d actions vs %d", client, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("client %s action %d: got %v, want %v (restart at %d)", client, j, got[j], want[j], k)
			}
		}
	}
}

// BenchmarkRebalance measures a live reshard of a guard warmed with a
// realistic client population — the latency a deployment pays to change
// its shard count under traffic.
func BenchmarkRebalance(b *testing.B) {
	gen, err := workload.NewGenerator(workload.Config{Seed: 32, Duration: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	events, err := gen.Generate()
	if err != nil {
		b.Fatal(err)
	}
	g, err := New(Config{
		Policy: graduated(),
		Shards: 4,
		Sleep:  func(time.Duration) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	h := g.Wrap(okHandler())
	for i := range events {
		e := &events[i].Entry
		req := httptest.NewRequest(e.Method, e.Path, nil)
		req.RemoteAddr = e.RemoteAddr + ":40000"
		req.Header.Set("User-Agent", e.UserAgent)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
	sizes := [2]int{8, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Rebalance(sizes[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}
