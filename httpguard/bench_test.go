package httpguard

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"divscrape/internal/mitigate"
	"divscrape/internal/workload"
)

// BenchmarkHTTPGuard measures the inline decision path — request
// conversion, both detectors, mitigation engine, response — with
// mitigation off (observe) and on (graduated). The workload is a
// pre-generated deterministic event mix replayed through the wrapped
// handler; tarpit sleeps are stubbed so the benchmark times the engine,
// not the stall it imposes.
func BenchmarkHTTPGuard(b *testing.B) {
	events := guardBenchEvents(b)
	observe := mitigate.Observe()
	grad := mitigate.Graduated()
	for _, cfg := range []struct {
		name   string
		policy *mitigate.Policy
	}{
		{"observe", &observe},
		{"graduated", &grad},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var now time.Time
			g, err := New(Config{
				Policy: cfg.policy,
				Now:    func() time.Time { return now },
				Sleep:  func(time.Duration) {},
			})
			if err != nil {
				b.Fatal(err)
			}
			h := g.Wrap(okHandler())
			// Requests are pre-built once; the loop measures the guard.
			reqs := make([]*benchRequest, len(events))
			for i := range events {
				e := &events[i].Entry
				r := httptest.NewRequest(e.Method, e.Path, nil)
				r.RemoteAddr = e.RemoteAddr + ":40000"
				r.Header.Set("User-Agent", e.UserAgent)
				reqs[i] = &benchRequest{r: r, at: e.Time}
			}
			// A single reusable writer keeps the harness out of the
			// measurement: allocs/op is the guard's own decision path.
			w := &nopResponseWriter{header: make(http.Header)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br := reqs[i%len(reqs)]
				now = br.at
				w.reset()
				h.ServeHTTP(w, br.r)
			}
			b.ReportMetric(float64(len(events)), "events")
		})
	}
}

// BenchmarkHTTPGuardTrajectory measures the same inline decision path
// with the semantic trajectory side enabled: the marginal cost of the
// third detector on every request, under the observe policy so the
// comparison against BenchmarkHTTPGuard/observe is detector-for-detector.
func BenchmarkHTTPGuardTrajectory(b *testing.B) {
	events := guardBenchEvents(b)
	observe := mitigate.Observe()
	var now time.Time
	g, err := New(Config{
		Policy:           &observe,
		EnableTrajectory: true,
		Now:              func() time.Time { return now },
		Sleep:            func(time.Duration) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	h := g.Wrap(okHandler())
	reqs := make([]*benchRequest, len(events))
	for i := range events {
		e := &events[i].Entry
		r := httptest.NewRequest(e.Method, e.Path, nil)
		r.RemoteAddr = e.RemoteAddr + ":40000"
		r.Header.Set("User-Agent", e.UserAgent)
		reqs[i] = &benchRequest{r: r, at: e.Time}
	}
	w := &nopResponseWriter{header: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := reqs[i%len(reqs)]
		now = br.at
		w.reset()
		h.ServeHTTP(w, br.r)
	}
	b.ReportMetric(float64(len(events)), "events")
}

// BenchmarkHTTPGuardShed measures the admission-control refusal path:
// the shard's in-flight gauge is pre-saturated, so every request sheds.
// This is the path that must stay cheap under overload — two atomic ops
// and the degraded-policy response, no shard lock, no detectors.
func BenchmarkHTTPGuardShed(b *testing.B) {
	var now time.Time
	g, err := New(Config{
		Action:      Observe,
		Shards:      1,
		MaxInFlight: 1,
		Now:         func() time.Time { return now },
		Sleep:       func(time.Duration) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	// A permanently claimed slot: the gate is full before the first
	// measured request arrives.
	g.shards[0].inflight.Store(1)
	h := g.Wrap(okHandler())
	r := httptest.NewRequest(http.MethodGet, "/product/1", nil)
	r.RemoteAddr = "198.51.100.7:40000"
	r.Header.Set("User-Agent", "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/63.0.3239.84 Safari/537.36")
	w := &nopResponseWriter{header: make(http.Header)}
	now = time.Date(2018, 3, 12, 10, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		h.ServeHTTP(w, r)
	}
	if g.shed.Load() == 0 {
		b.Fatal("gate never shed")
	}
}

type benchRequest struct {
	r  *http.Request
	at time.Time
}

// nopResponseWriter discards the response; headers are cleared per
// request without reallocating the map.
type nopResponseWriter struct {
	header http.Header
	status int
}

func (w *nopResponseWriter) Header() http.Header { return w.header }
func (w *nopResponseWriter) WriteHeader(code int) {
	w.status = code
}
func (w *nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nopResponseWriter) reset() {
	clear(w.header)
	w.status = 0
}

var guardBench struct {
	once   sync.Once
	events []workload.Event
	err    error
}

func guardBenchEvents(b *testing.B) []workload.Event {
	b.Helper()
	guardBench.once.Do(func() {
		gen, err := workload.NewGenerator(workload.Config{
			Seed:     42,
			Duration: time.Hour,
			Profile: workload.Profile{
				HumanVisitors:       30,
				HumanSessionsPerDay: 6,
				NaiveScrapers:       1,
				NaiveRate:           1,
				NaiveDuty:           0.5,
				AggressiveScrapers:  1,
				AggressiveRate:      4,
				AggressiveDuty:      0.3,
				StealthBots:         4,
				StealthSessionGap:   20 * time.Minute,
			},
		})
		if err != nil {
			guardBench.err = err
			return
		}
		guardBench.events, guardBench.err = gen.Generate()
	})
	if guardBench.err != nil {
		b.Fatal(guardBench.err)
	}
	if len(guardBench.events) == 0 {
		b.Fatal("no bench events")
	}
	return guardBench.events
}
