package httpguard

import (
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"divscrape/internal/trace"
)

// Regenerate the family golden with:
//
//	go test ./httpguard -run TestMetricsExposition -update
var update = flag.Bool("update", false, "rewrite golden files")

// promSample is one parsed sample line.
type promSample struct {
	name   string // metric name without labels
	series string // full identity: name plus rendered label set
	value  string
}

// parsePromLine splits `name{k="v",...} value`, honouring backslash
// escapes inside label values, so a hostile label cannot fool the lint.
func parsePromLine(t *testing.T, line string) promSample {
	t.Helper()
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without a value: %q", line)
		}
		return promSample{name: line[:sp], series: line[:sp], value: line[sp+1:]}
	}
	i := brace + 1
	inQuote := false
	for ; i < len(line); i++ {
		switch {
		case inQuote && line[i] == '\\':
			i++ // skip the escaped byte
		case line[i] == '"':
			inQuote = !inQuote
		case !inQuote && line[i] == '}':
			if i+1 >= len(line) || line[i+1] != ' ' {
				t.Fatalf("no space after label set: %q", line)
			}
			return promSample{name: line[:brace], series: line[:i+1], value: line[i+2:]}
		}
	}
	t.Fatalf("unterminated label set: %q", line)
	return promSample{}
}

// TestMetricsExposition scrapes a live traced guard and lints the page
// against the exposition-format rules a real Prometheus scraper
// enforces: HELP directly before its TYPE, one TYPE per family emitted
// before that family's samples, samples grouped under their family, no
// duplicate series, every value parseable. The family list (name +
// type) is pinned as a golden so a metric rename or silent drop shows
// up as a reviewable diff.
func TestMetricsExposition(t *testing.T) {
	g, _, _ := tracedGuard(t, trace.RecorderConfig{})
	srv := httptest.NewServer(g.DebugHandler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + DebugMetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("metrics page answered %d", res.StatusCode)
	}
	page := string(raw)
	if !strings.HasSuffix(page, "\n") {
		t.Error("page does not end with a newline")
	}

	types := map[string]string{} // family -> type
	seen := map[string]bool{}    // full series identity
	var families []string        // registration order, for the golden
	family, lastHelp := "", ""
	for n, line := range strings.Split(strings.TrimSuffix(page, "\n"), "\n") {
		lineNo := n + 1
		switch {
		case line == "":
			t.Errorf("line %d: blank line in exposition", lineNo)
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Errorf("line %d: HELP without text: %q", lineNo, line)
			}
			lastHelp = parts[0]
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(line[len("# TYPE "):], " ", 2)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := parts[0], parts[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Errorf("line %d: unknown type %q", lineNo, typ)
			}
			if _, dup := types[name]; dup {
				t.Errorf("line %d: duplicate TYPE for family %q", lineNo, name)
			}
			if lastHelp != name {
				t.Errorf("line %d: family %q TYPE not directly preceded by its HELP (last HELP: %q)",
					lineNo, name, lastHelp)
			}
			types[name] = typ
			families = append(families, name+" "+typ)
			family = name
		case strings.HasPrefix(line, "#"):
			t.Errorf("line %d: unknown comment %q", lineNo, line)
		default:
			s := parsePromLine(t, line)
			base := s.name
			if types[family] == "histogram" {
				for _, suffix := range []string{"_bucket", "_sum", "_count"} {
					if s.name == family+suffix {
						base = family
					}
				}
			}
			if base != family {
				t.Errorf("line %d: sample %q outside its family block (current family %q)",
					lineNo, s.name, family)
			}
			if seen[s.series] {
				t.Errorf("line %d: duplicate series %q", lineNo, s.series)
			}
			seen[s.series] = true
			if _, err := strconv.ParseFloat(s.value, 64); err != nil {
				t.Errorf("line %d: unparseable value %q: %v", lineNo, s.value, err)
			}
		}
	}

	// The tracing plane's families must be on the page next to the
	// guard's own.
	for _, want := range []string{
		"divscrape_stage_seconds histogram",
		"divscrape_trace_decisions_total counter",
		"divscrape_trace_records_total counter",
	} {
		found := false
		for _, f := range families {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("family %q missing from exposition", want)
		}
	}

	got := strings.Join(families, "\n") + "\n"
	path := filepath.Join("testdata", "metrics_families.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric family list drifted from %s (re-run with -update if intended)\n--- got ---\n%s--- want ---\n%s",
			path, got, string(want))
	}
}
