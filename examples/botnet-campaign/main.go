// Botnet campaign study: configure a traffic mix dominated by a
// distributed low-and-slow scraping botnet (the hardest archetype) and
// watch how each detector's hourly catch rate evolves. Demonstrates
// custom traffic profiles through the public API and shows *why* the
// detectors disagree: the commercial-style tool convicts sessions with
// stale fingerprints instantly, while the behavioural tool never collects
// enough per-session evidence on this archetype.
package main

import (
	"fmt"
	"log"
	"time"

	"divscrape"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Start from the calibrated mix, then strip it down to background
	// human traffic plus a large stealth botnet.
	profile := divscrape.CalibratedProfile(1)
	profile.NaiveScrapers = 0
	profile.AggressiveScrapers = 0
	profile.InfraScrapers = 0
	profile.HeadlessScrapers = 0
	profile.StealthBots = 220
	profile.StealthSessionGap = 30 * time.Minute

	const hours = 12
	gen, err := divscrape.NewGenerator(divscrape.GeneratorConfig{
		Seed:     99,
		Duration: hours * time.Hour,
		Profile:  profile,
	})
	if err != nil {
		return err
	}
	pair, err := divscrape.NewDetectorPair()
	if err != nil {
		return err
	}

	type hourly struct {
		botTotal, botCommercial, botBehavioural uint64
		humanTotal, falseAlarms                 uint64
	}
	buckets := make([]hourly, hours)
	var start time.Time

	err = gen.Run(func(ev divscrape.Event) error {
		if start.IsZero() {
			start = ev.Entry.Time.Truncate(time.Hour)
		}
		h := int(ev.Entry.Time.Sub(start) / time.Hour)
		if h < 0 || h >= hours {
			return nil
		}
		vc, vb := pair.Inspect(ev.Entry)
		b := &buckets[h]
		if ev.Label.Malicious() {
			b.botTotal++
			if vc.Alert {
				b.botCommercial++
			}
			if vb.Alert {
				b.botBehavioural++
			}
		} else {
			b.humanTotal++
			if vc.Alert || vb.Alert {
				b.falseAlarms++
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Println("stealth botnet campaign: hourly detection rates")
	fmt.Println("hour   bot reqs   commercial   behavioural   benign reqs   false alarms")
	for h, b := range buckets {
		fmt.Printf("%4d   %8d   %9.1f%%   %10.1f%%   %11d   %12d\n",
			h, b.botTotal,
			rate(b.botCommercial, b.botTotal),
			rate(b.botBehavioural, b.botTotal),
			b.humanTotal, b.falseAlarms)
	}
	fmt.Println("\nthe commercial-style tool owns this archetype: stale canned")
	fmt.Println("fingerprints convict sessions on sight, while per-session volume")
	fmt.Println("stays below the behavioural warm-up — the paper's 'Distil only' bucket.")
	return nil
}

func rate(n, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
