// Checkpoint-resume walkthrough: detection state that survives the
// process. The paper's insight — two diverse detectors watching the same
// traffic — only pays off if both detectors *remember*: the behavioural
// detector needs a session's history to score it, the commercial one
// tracks challenge solves and rate debt per client, and real scraping
// campaigns run for days while real processes restart (deploys, crashes,
// log rotation). This example makes the restart visible and then makes
// it disappear:
//
//  1. Replay the first half of a seeded day of traffic, then "crash".
//  2. Naive restart: a fresh detector pair replays the second half from
//     empty state — warm-ups re-run, session evidence is gone, alerts on
//     the split differ from the uninterrupted truth.
//  3. Durable restart: the same second half, but resumed from a
//     divscrape.Snapshot taken at the crash point — the verdict stream is
//     verified identical, event for event, to a run that never stopped.
//
// The snapshot is a versioned, checksummed, deterministic binary blob
// (internal/statecodec): equal state always produces equal bytes, corrupt
// or wrong-version files fail with typed errors, and the same format
// drives pipeline.Checkpoint/ResumeFrom, scrapedetect -save-state /
// -load-state, and httpguard's live shard rebalancing.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"divscrape"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type verdictPair struct{ c, b divscrape.Verdict }

func run() error {
	gen, err := divscrape.NewGenerator(divscrape.GeneratorConfig{Seed: 11, Duration: 24 * time.Hour})
	if err != nil {
		return err
	}
	events, err := gen.Generate()
	if err != nil {
		return err
	}
	k := len(events) / 2
	fmt.Printf("workload: %d requests over 24h; process \"crashes\" after request %d\n\n", len(events), k)

	// The uninterrupted run is the ground truth.
	truth, err := inspectAll(events)
	if err != nil {
		return err
	}

	// First half, then snapshot at the crash point.
	head, err := divscrape.NewDetectorPair()
	if err != nil {
		return err
	}
	for i := 0; i < k; i++ {
		head.Inspect(events[i].Entry)
	}
	var state bytes.Buffer
	if err := divscrape.Snapshot(&state, head); err != nil {
		return err
	}
	fmt.Printf("snapshot at crash point: %d bytes of per-client session state\n\n", state.Len())

	// Naive restart: fresh pair, empty memory.
	naive, err := divscrape.NewDetectorPair()
	if err != nil {
		return err
	}
	naiveDiverged := 0
	for i := k; i < len(events); i++ {
		c, b := naive.Inspect(events[i].Entry)
		if (verdictPair{c, b}) != truth[i] {
			naiveDiverged++
		}
	}

	// Durable restart: resume from the snapshot.
	resumed, err := divscrape.Resume(bytes.NewReader(state.Bytes()))
	if err != nil {
		return err
	}
	resumedDiverged := 0
	for i := k; i < len(events); i++ {
		c, b := resumed.Inspect(events[i].Entry)
		if (verdictPair{c, b}) != truth[i] {
			resumedDiverged++
		}
	}

	fmt.Printf("second half (%d requests) vs uninterrupted run:\n", len(events)-k)
	fmt.Printf("  fresh pair after restart:    %6d verdicts diverge (session memory lost)\n", naiveDiverged)
	fmt.Printf("  pair resumed from snapshot:  %6d verdicts diverge\n\n", resumedDiverged)

	if resumedDiverged != 0 {
		return fmt.Errorf("resumed run diverged on %d verdicts; the determinism guarantee is broken", resumedDiverged)
	}
	if naiveDiverged == 0 {
		return fmt.Errorf("fresh pair matched the uninterrupted run; the workload exercises no cross-boundary sessions")
	}
	fmt.Println("resumed run is event-for-event identical to the run that never crashed.")
	return nil
}

// inspectAll replays every event through a fresh pair, recording both
// verdicts per request.
func inspectAll(events []divscrape.Event) ([]verdictPair, error) {
	pair, err := divscrape.NewDetectorPair()
	if err != nil {
		return nil, err
	}
	out := make([]verdictPair, len(events))
	for i := range events {
		c, b := pair.Inspect(events[i].Entry)
		out[i] = verdictPair{c, b}
	}
	return out, nil
}
