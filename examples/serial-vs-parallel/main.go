// Deployment topology study (the paper's Section V): parallel deployment
// (both tools inspect all traffic) versus serial deployment (the first
// tool filters what the second must analyse). Serial saves second-stage
// inspection capacity but the second tool then builds its behavioural
// state from partial history — this example measures both the cost saving
// and the detection gap, driving the detectors individually through the
// public API.
package main

import (
	"fmt"
	"log"
	"time"

	"divscrape"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// arrangement runs one deployment topology over a fresh detector pair.
type arrangement struct {
	name string
	pair *divscrape.DetectorPair
	// decide inspects one request and reports the alarm decision plus
	// whether the second-stage detector was consulted.
	decide func(req *divscrape.Request) (alert, usedSecond bool)

	conf        divscrape.Confusion
	total       uint64
	secondStage uint64
}

func run() error {
	arrangements, err := buildArrangements()
	if err != nil {
		return err
	}

	for _, a := range arrangements {
		gen, err := divscrape.NewGenerator(divscrape.GeneratorConfig{
			Seed:     77,
			Duration: 24 * time.Hour,
		})
		if err != nil {
			return err
		}
		a := a
		err = gen.Run(func(ev divscrape.Event) error {
			req := a.pair.Enrich(ev.Entry)
			alert, usedSecond := a.decide(&req)
			a.conf.Add(alert, ev.Label.Malicious())
			a.total++
			if usedSecond {
				a.secondStage++
			}
			return nil
		})
		if err != nil {
			return err
		}
	}

	fmt.Println("deployment topologies over 24 simulated hours (identical traffic)")
	fmt.Println()
	fmt.Println("topology                        sens     spec     2nd-stage load")
	for _, a := range arrangements {
		fmt.Printf("%-28s  %.4f   %.4f   %6.2f%% of traffic\n",
			a.name, a.conf.Sensitivity(), a.conf.Specificity(),
			100*float64(a.secondStage)/float64(a.total))
	}
	fmt.Println()
	fmt.Println("which cascade saves depends on the traffic mix: on this bot-heavy")
	fmt.Println("capture the OR cascade is the cheap one (the analyzer only sees the")
	fmt.Println("small share the filter passed clean), while the AND cascade pays for")
	fmt.Println("confirming the majority-suspect stream — and both serial shapes give")
	fmt.Println("the behavioural analyzer only partial history to learn from.")
	return nil
}

func buildArrangements() ([]*arrangement, error) {
	parallel, err := divscrape.NewDetectorPair()
	if err != nil {
		return nil, err
	}
	serialAND, err := divscrape.NewDetectorPair()
	if err != nil {
		return nil, err
	}
	serialOR, err := divscrape.NewDetectorPair()
	if err != nil {
		return nil, err
	}

	return []*arrangement{
		{
			name: "parallel (1-out-of-2)",
			pair: parallel,
			decide: func(req *divscrape.Request) (bool, bool) {
				vc := parallel.Commercial.Inspect(req)
				vb := parallel.Behavioural.Inspect(req)
				return vc.Alert || vb.Alert, true
			},
		},
		{
			name: "serial commercial→behavioural AND",
			pair: serialAND,
			decide: func(req *divscrape.Request) (bool, bool) {
				vc := serialAND.Commercial.Inspect(req)
				if !vc.Alert {
					return false, false
				}
				vb := serialAND.Behavioural.Inspect(req)
				return vb.Alert, true
			},
		},
		{
			name: "serial commercial→behavioural OR",
			pair: serialOR,
			decide: func(req *divscrape.Request) (bool, bool) {
				vc := serialOR.Commercial.Inspect(req)
				if vc.Alert {
					return true, false
				}
				vb := serialOR.Behavioural.Inspect(req)
				return vb.Alert, true
			},
		},
	}, nil
}
