// Tracing walkthrough: arm the guard's decision provenance plane, let a
// scraping kit harvest until the graduated ladder blocks it, then answer
// the operator's question — *why was this client blocked?* — from the
// flight recorder, and show where the decide path spends its time from
// the per-stage latency histograms. Everything here is also reachable
// over HTTP (DebugTracePath / DebugExplainPath on the guard's debug
// mux); this demo reads the same data in-process.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"divscrape/httpguard"
	"divscrape/internal/mitigate"
	"divscrape/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	policy := mitigate.Graduated()
	guard, err := httpguard.New(httpguard.Config{
		Policy: &policy,
		// The demo drives the scraper's address via X-Forwarded-For, so
		// the test server's loopback peer must be a trusted proxy.
		TrustedProxies: []string{"127.0.0.1", "::1"},
		Sleep:          func(time.Duration) {}, // skip real tarpit stalls
		// A non-nil Trace arms the plane. The zero config samples the
		// first 64 decisions plus every 256th, and always captures
		// escalations — the records that explain a block.
		Trace: &trace.RecorderConfig{},
	})
	if err != nil {
		return err
	}

	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"price": 129.99, "currency": "EUR"}`)
	})
	srv := httptest.NewServer(guard.Wrap(app))
	defer srv.Close()

	// A scraping kit harvests the price catalogue until the ladder
	// blocks it.
	const scraper = "203.0.113.66"
	client := srv.Client()
	var blockedAt int
	for i := 1; i <= 80; i++ {
		req, err := http.NewRequest("GET", fmt.Sprintf("%s/api/price/%d", srv.URL, i), nil)
		if err != nil {
			return err
		}
		req.Header.Set("User-Agent", "python-requests/2.18.4")
		req.Header.Set("X-Forwarded-For", scraper)
		res, err := client.Do(req)
		if err != nil {
			return err
		}
		res.Body.Close()
		if res.StatusCode == http.StatusForbidden && blockedAt == 0 {
			blockedAt = i
		}
	}
	if blockedAt == 0 {
		return fmt.Errorf("scraper was never blocked")
	}
	fmt.Printf("scraper %s blocked at request %d\n\n", scraper, blockedAt)

	// -------- why? the provenance timeline --------
	//
	// Explain returns the client's captured records in stream order plus
	// the system-wide events (quarantines, restores) that framed them.
	// Over HTTP: GET /debug/divscrape/explain?client=203.0.113.66
	tl := guard.FlightRecorder().Explain(scraper)
	fmt.Printf("provenance for %s: %d records on file\n", scraper, len(tl.Records))
	for _, r := range tl.Records {
		if r.Sampled != "escalation" {
			continue // print just the ladder transitions
		}
		fmt.Printf("  seq=%-3d %s -> %s (suspicion %.2f)\n", r.Seq, r.RungBefore, r.RungAfter, r.Suspicion)
		for _, d := range r.Detectors {
			fmt.Printf("    %-8s alert=%-5v score=%.2f %s\n",
				d.Detector, d.Alert, d.Score, strings.Join(d.Reasons, ", "))
			for _, f := range d.Features {
				fmt.Printf("      %s = %.4g\n", f.Name, f.Value)
			}
		}
	}

	// -------- where does decide time go? --------
	//
	// The same spans feed divscrape_stage_seconds on the metrics page;
	// StageStats is the in-process view.
	fmt.Println("\nper-stage decide latency:")
	for _, st := range guard.Tracer().StageStats() {
		if st.Count == 0 {
			continue
		}
		fmt.Printf("  %-16s %5d spans, mean %7.0f ns\n", st.Name(), st.Count, st.Mean()*1e9)
	}

	// The recorder's own accounting: how much of the stream is on file.
	stats := guard.FlightRecorder().Stats()
	fmt.Printf("\nflight recorder: %d decisions seen, %d captured, %d held\n",
		stats.Seen, stats.Captured, stats.Held)
	return nil
}
