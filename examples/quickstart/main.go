// Quickstart: generate six hours of labelled synthetic e-commerce
// traffic, run both scraping detectors over it, and print the alerting
// diversity table the DSN 2018 paper reports (its Table 2) plus the
// labelled accuracy the paper names as future work.
package main

import (
	"fmt"
	"log"
	"time"

	"divscrape"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	gen, err := divscrape.NewGenerator(divscrape.GeneratorConfig{
		Seed:     7,
		Duration: 6 * time.Hour,
	})
	if err != nil {
		return err
	}
	pair, err := divscrape.NewDetectorPair()
	if err != nil {
		return err
	}

	summary, err := divscrape.Analyze(gen, pair)
	if err != nil {
		return err
	}

	total := summary.Total
	c := summary.Contingency
	fmt.Printf("analysed %d requests over 6 simulated hours\n\n", total)
	fmt.Println("alert diversity (cf. paper Table 2):")
	fmt.Printf("  both detectors     %8d  (%5.2f%%)\n", c.Both, pct(c.Both, total))
	fmt.Printf("  neither            %8d  (%5.2f%%)\n", c.Neither, pct(c.Neither, total))
	fmt.Printf("  commercial only    %8d  (%5.2f%%)\n", c.AOnly, pct(c.AOnly, total))
	fmt.Printf("  behavioural only   %8d  (%5.2f%%)\n", c.BOnly, pct(c.BOnly, total))

	fmt.Println("\nlabelled accuracy (the paper's intended next step):")
	com, beh := summary.Commercial(), summary.Behavioural()
	fmt.Printf("  commercial  sensitivity=%.3f specificity=%.3f\n",
		com.Sensitivity(), com.Specificity())
	fmt.Printf("  behavioural sensitivity=%.3f specificity=%.3f\n",
		beh.Sensitivity(), beh.Specificity())
	return nil
}

func pct(n, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
