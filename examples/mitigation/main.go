// Containment study: detection tells you who is scraping; this example
// asks what happens when you *act* on it. It replays the same seeded
// 24-hour workload through the closed loop — detectors → adjudicator →
// response engine → adaptive actor reaction — under four response
// policies, then compares what each one actually bought the site:
//
//   - observe:   every verdict is a log line; scrapers take the catalogue.
//   - tag:       the app can degrade, but content still flows.
//   - block:     the classic binary switch. Contains hard, but every
//     false positive is a shopper staring at a 403.
//   - graduated: Allow → Tarpit → Challenge → Block with score-driven
//     escalation and decay. Scrapers are slowed, then challenged (bots
//     fail, browsers pass invisibly), then blocked; humans caught in the
//     net solve one challenge and keep shopping.
//
// The scrapers fight back: they back off when tarpitted, rotate exit
// addresses when blocked, and headless browsers solve challenges — so the
// numbers below price the arms race, not a static target. Everything is
// reproducible from the seed.
package main

import (
	"fmt"
	"log"
	"os"

	"divscrape"
	"divscrape/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	results, err := experiments.ExecuteMitigation(experiments.CIScale)
	if err != nil {
		return err
	}
	if err := experiments.TableMitigation(results).Render(os.Stdout); err != nil {
		return err
	}

	byName := map[string]*experiments.MitigationResult{}
	for i := range results {
		r := &results[i]
		if r.Adjudicator == "1oo2" {
			byName[r.Policy] = r
		}
	}
	observe, block, grad := byName["observe"], byName["block"], byName["graduated"]
	fmt.Printf("\nreading the table (1-out-of-2 adjudication):\n")
	fmt.Printf("  doing nothing leaks %d catalogue pages to the campaigns;\n", observe.Leaked)
	fmt.Printf("  graduation cuts that to %d (%.1f%%), blocking to %d —\n",
		grad.Leaked, 100*float64(grad.Leaked)/float64(observe.Leaked), block.Leaked)
	fmt.Printf("  but static blocking denies %.3f%% of human requests vs %.3f%% graduated,\n",
		100*block.CollateralRate(), 100*grad.CollateralRate())
	fmt.Printf("  and %d challenges were solved by real browsers on their way back in.\n",
		grad.ChallengesPassed)

	// The same ladder runs inline: wrap any handler and the guard shards
	// detectors and response engines by client IP, serves the challenge
	// flow itself, and delays/challenges/blocks live traffic.
	policy := divscrape.GraduatedPolicy()
	fmt.Printf("\nthe ladder: tarpit at score %.1f (%v stall), challenge at %.1f, block at %.1f,\n",
		policy.TarpitThreshold, policy.TarpitDelay, policy.ChallengeThreshold, policy.BlockThreshold)
	fmt.Printf("decaying with a %v half-life back toward allow.\n", policy.ScoreHalfLife)
	fmt.Printf("\ninline: httpguard.New(httpguard.Config{Policy: &policy}) wraps any http.Handler;\n")
	fmt.Printf("offline: scrapedetect -log access.log -mitigate graduated replays a what-if.\n")
	return nil
}
