// Live guard demo: run the detector pair inline as HTTP middleware in
// front of a toy price API, then play both a human-like client and a
// scraping kit against it. The scraper gets blocked mid-harvest once the
// detectors convict it; the human browses undisturbed. This is the
// deployment form the paper's tools actually ship in — inline, not
// offline log analysis.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"divscrape/httpguard"
	"divscrape/internal/logfmt"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Simulated clock so the demo is instant and deterministic.
	var (
		mu  sync.Mutex
		now = time.Date(2018, 3, 12, 10, 0, 0, 0, time.UTC)
	)
	tick := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	var alerts int
	guard, err := httpguard.New(httpguard.Config{
		Action: httpguard.Block,
		Now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		},
		OnVerdict: func(e logfmt.Entry, v httpguard.Verdicts) {
			if v.Alerted() {
				alerts++
			}
		},
	})
	if err != nil {
		return err
	}

	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"price": 129.99, "currency": "EUR"}`)
	})
	srv := httptest.NewServer(guard.Wrap(app))
	defer srv.Close()

	fetch := func(path, ua string) int {
		req, err := http.NewRequest("GET", srv.URL+path, nil)
		if err != nil {
			return 0
		}
		req.Header.Set("User-Agent", ua)
		resp, err := srv.Client().Do(req)
		if err != nil {
			return 0
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	const browserUA = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36"
	const kitUA = "python-requests/2.18.4"

	fmt.Println("a human browses three product pages:")
	for _, p := range []string{"/product/11", "/product/845", "/product/32"} {
		tick(9 * time.Second)
		fmt.Printf("  GET %-14s → %d\n", p, fetch(p, browserUA))
	}

	fmt.Println("\na scraping kit starts harvesting the price API:")
	blocked := 0
	for i := 0; i < 8; i++ {
		tick(time.Second)
		code := fetch(fmt.Sprintf("/api/price/%d", i), kitUA)
		fmt.Printf("  GET /api/price/%d → %d\n", i, code)
		if code == http.StatusForbidden {
			blocked++
		}
	}

	total, alerted, blockedCount := guard.Stats()
	fmt.Printf("\nguard stats: %d requests, %d alerted, %d blocked\n",
		total, alerted, blockedCount)
	if blocked == 0 {
		return fmt.Errorf("demo failed: the kit was never blocked")
	}

	// The same guard carries a live observability surface: mount
	// guard.DebugHandler() on an operations listener and a Prometheus
	// scraper (or curl) reads the decision counters in real time.
	debug := httptest.NewServer(guard.DebugHandler())
	defer debug.Close()
	resp, err := http.Get(debug.URL + httpguard.DebugMetricsPath)
	if err != nil {
		return err
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("\na scrape of " + httpguard.DebugMetricsPath + " (excerpt):")
	for _, line := range strings.Split(string(scrape), "\n") {
		if strings.HasPrefix(line, "divscrape_guard_requests_total") ||
			strings.HasPrefix(line, "divscrape_guard_alerted_total") ||
			strings.HasPrefix(line, `divscrape_guard_actions_total{action="block"}`) {
			fmt.Println("  " + line)
		}
	}
	fmt.Println("the kit's declared User-Agent convicted it on sight; the human")
	fmt.Println("was untouched. Clean-fingerprint automation would need the")
	fmt.Println("behavioural detector to accumulate evidence first — exactly the")
	fmt.Println("diversity the paper measures between its two tools.")
	return nil
}
