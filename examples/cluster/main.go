// Cluster demo: three httpguard nodes replicate enforcement state, one
// is killed mid-harvest, and the cluster keeps blocking the scraper
// without missing a request. The walkthrough runs on the in-process
// cluster network with a simulated clock, so it is instant and
// deterministic: watch a scraping kit climb the ladder on its owner
// node, the replicated rung follow it to the failover node the moment
// the owner dies, and a revived (state-less) replacement be repopulated
// by anti-entropy.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"divscrape"
	"divscrape/httpguard"
	"divscrape/internal/iprep"
)

// lateTransport breaks the node ↔ network construction cycle: the node
// needs a transport at build time, the network hands one out only once
// the node exists to attach.
type lateTransport struct{ t divscrape.ClusterTransport }

func (l *lateTransport) Send(to string, frame []byte) error { return l.t.Send(to, frame) }

// member is one cluster node with its guard and wrapped application.
type member struct {
	id      string
	guard   *httpguard.Guard
	node    *divscrape.Cluster
	handler http.Handler
	alive   bool
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Simulated clock shared by every guard and node.
	var (
		mu  sync.Mutex
		now = time.Date(2018, 3, 12, 10, 0, 0, 0, time.UTC)
	)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}

	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"price": 129.99, "currency": "EUR"}`)
	})

	ids := []string{"node-a:9301", "node-b:9301", "node-c:9301"}
	net := divscrape.NewClusterMemNetwork()
	members := map[string]*member{}

	spawn := func(id string) (*member, error) {
		peers := make([]string, 0, len(ids)-1)
		for _, p := range ids {
			if p != id {
				peers = append(peers, p)
			}
		}
		pol := divscrape.GraduatedPolicy()
		guard, err := httpguard.New(httpguard.Config{
			Policy: &pol,
			Shards: 2,
			Now:    clock,
		})
		if err != nil {
			return nil, err
		}
		lt := &lateTransport{}
		node, err := divscrape.NewCluster(divscrape.ClusterConfig{
			ID:        id,
			Peers:     peers,
			Backend:   guard,
			Transport: lt,
			Now:       clock,
			OnEvent: func(ev divscrape.ClusterEvent) {
				fmt.Printf("  [%s] %s peer=%s %s\n", id, ev.Kind, ev.Peer, ev.Detail)
			},
		})
		if err != nil {
			return nil, err
		}
		lt.t = net.Attach(node)
		m := &member{id: id, guard: guard, node: node, handler: guard.Wrap(app), alive: true}
		members[id] = m
		return m, nil
	}
	for _, id := range ids {
		if _, err := spawn(id); err != nil {
			return err
		}
	}

	// tick advances the shared clock and drives every live node: sends,
	// failure detection and delayed-frame delivery all happen here.
	tick := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		t := now
		mu.Unlock()
		for _, id := range ids {
			if m := members[id]; m.alive {
				m.node.Tick(t)
			}
		}
		net.Pump(t)
	}
	// route asks any live node for the client's owner; its ring skips
	// peers it considers suspect or dead.
	route := func(ip uint32) *member {
		for _, id := range ids {
			if m := members[id]; m.alive {
				owner, _ := m.node.Route(ip)
				if o := members[owner]; o.alive {
					return o
				}
			}
		}
		return nil
	}
	fetch := func(m *member, ipStr, path, ua string) int {
		req := httptest.NewRequest("GET", path, nil)
		req.RemoteAddr = ipStr + ":44123"
		req.Header.Set("User-Agent", ua)
		rec := httptest.NewRecorder()
		m.handler.ServeHTTP(rec, req)
		return rec.Code
	}

	const kitUA = "python-requests/2.18.4"
	const scraperIP = "198.51.100.7"
	ip, err := iprep.ParseIPv4(scraperIP)
	if err != nil {
		return err
	}

	// Let a few delta rounds establish the membership view.
	for i := 0; i < 3; i++ {
		tick(time.Second)
	}

	owner := route(ip)
	fmt.Printf("a scraping kit (%s) harvests; the router sends it to its owner %s:\n", scraperIP, owner.id)
	for i := 0; i < 14; i++ {
		tick(500 * time.Millisecond)
		code := fetch(owner, scraperIP, fmt.Sprintf("/api/price/%d", i), kitUA)
		fmt.Printf("  GET /api/price/%d → %d\n", i, code)
	}

	// One more delta round ships the climbed ladder to both peers.
	tick(2 * time.Second)
	fmt.Println("\nthe owner's enforcement rung has replicated; every peer already knows:")
	for _, id := range ids {
		m := members[id]
		if m == owner {
			continue
		}
		level := "unknown"
		m.guard.LadderDigestsSince(time.Time{}, func(d divscrape.MitigationDigest) {
			if d.Key == scraperIP {
				level = d.Level.String()
			}
		})
		fmt.Printf("  %s sees %s at rung %s\n", id, scraperIP, level)
	}

	fmt.Printf("\n%s is killed. the survivors notice:\n", owner.id)
	dead := owner
	dead.alive = false
	net.Down(dead.id)
	for i := 0; i < 12; i++ {
		tick(time.Second)
	}

	failover := route(ip)
	fmt.Printf("\nthe ring fails the client over to %s; its very first request there:\n", failover.id)
	tick(time.Second)
	code := fetch(failover, scraperIP, "/api/price/next", kitUA)
	fmt.Printf("  GET /api/price/next → %d\n", code)
	if code != http.StatusForbidden {
		return fmt.Errorf("demo failed: failover node let the convicted scraper through (%d)", code)
	}
	fmt.Println("blocked on sight — the rung travelled with the state deltas, so the")
	fmt.Println("kit could not reset its record by waiting for a node to die.")

	fmt.Printf("\n%s restarts empty (a real process death loses its state):\n", dead.id)
	net.Up(dead.id)
	revived, err := spawn(dead.id)
	if err != nil {
		return err
	}
	for i := 0; i < 6; i++ {
		tick(time.Second)
	}
	level := "unknown"
	revived.guard.LadderDigestsSince(time.Time{}, func(d divscrape.MitigationDigest) {
		if d.Key == scraperIP {
			level = d.Level.String()
		}
	})
	fmt.Printf("  after anti-entropy, revived %s sees %s at rung %s\n", revived.id, scraperIP, level)
	if level != "block" {
		return fmt.Errorf("demo failed: anti-entropy did not repopulate the revived node (rung %s)", level)
	}

	st := failover.node.Status()
	fmt.Printf("\ncluster status at %s: members=%d reachable=%d degraded=%v deltas sent=%d received=%d\n",
		failover.id, st.Members, st.Reachable, st.Degraded, st.DeltasSent, st.DeltasReceived)
	fmt.Println("\nthe cluster lost a node mid-harvest and never dropped a decision;")
	fmt.Println("degraded-mode policy (fail-open here) only engages below quorum.")
	return nil
}
