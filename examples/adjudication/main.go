// Adjudication trade-off study (the paper's Section V): with labelled
// traffic, compare the 1-out-of-2 scheme ("alarm if either tool alerts")
// against 2-out-of-2 ("alarm only if both agree") — the exact schemes the
// paper proposes to evaluate once its dataset is labelled. 1oo2 maximises
// detection at the cost of inheriting both tools' false alarms; 2oo2
// suppresses false alarms but forfeits every single-tool catch.
package main

import (
	"fmt"
	"log"
	"time"

	"divscrape"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	gen, err := divscrape.NewGenerator(divscrape.GeneratorConfig{
		Seed:     2018,
		Duration: 24 * time.Hour,
	})
	if err != nil {
		return err
	}
	pair, err := divscrape.NewDetectorPair()
	if err != nil {
		return err
	}

	var single1, single2, oneOfTwo, twoOfTwo divscrape.Confusion
	var total uint64
	err = gen.Run(func(ev divscrape.Event) error {
		vc, vb := pair.Inspect(ev.Entry)
		malicious := ev.Label.Malicious()
		single1.Add(vc.Alert, malicious)
		single2.Add(vb.Alert, malicious)
		oneOfTwo.Add(vc.Alert || vb.Alert, malicious)
		twoOfTwo.Add(vc.Alert && vb.Alert, malicious)
		total++
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Printf("adjudication schemes over %d labelled requests (24 simulated hours)\n\n", total)
	fmt.Println("scheme        sensitivity   specificity   precision     F1      missed   false alarms")
	for _, row := range []struct {
		name string
		c    *divscrape.Confusion
	}{
		{"commercial ", &single1},
		{"behavioural", &single2},
		{"1-out-of-2 ", &oneOfTwo},
		{"2-out-of-2 ", &twoOfTwo},
	} {
		fmt.Printf("%s   %11.4f   %11.4f   %9.4f   %6.4f   %6d   %12d\n",
			row.name,
			row.c.Sensitivity(), row.c.Specificity(),
			row.c.Precision(), row.c.F1(),
			row.c.FN, row.c.FP)
	}

	fmt.Println("\nreading the trade-off:")
	fmt.Printf("  1oo2 misses %d fewer scraping requests than the best single tool,\n",
		bestSingleFN(&single1, &single2)-oneOfTwo.FN)
	fmt.Printf("  but raises %d more false alarms; 2oo2 inverts the trade.\n",
		oneOfTwo.FP-minFP(&single1, &single2))
	return nil
}

func bestSingleFN(a, b *divscrape.Confusion) uint64 {
	if a.FN < b.FN {
		return a.FN
	}
	return b.FN
}

func minFP(a, b *divscrape.Confusion) uint64 {
	if a.FP < b.FP {
		return a.FP
	}
	return b.FP
}
