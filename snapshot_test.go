package divscrape_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"divscrape"
	"divscrape/internal/statecodec"
)

// TestSnapshotResumePair proves the facade's durability contract: stop a
// replay at event k, Snapshot, Resume in a "new process" (a fresh pair),
// and the verdict stream over the remaining events is identical to an
// uninterrupted run's.
func TestSnapshotResumePair(t *testing.T) {
	gen, err := divscrape.NewGenerator(divscrape.GeneratorConfig{Seed: 5, Duration: 3 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	events, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	k := len(events) / 2

	full, err := divscrape.NewDetectorPair()
	if err != nil {
		t.Fatal(err)
	}
	type pairVerdict struct{ c, b divscrape.Verdict }
	var want []pairVerdict
	for i := range events {
		c, b := full.Inspect(events[i].Entry)
		if i >= k {
			want = append(want, pairVerdict{c, b})
		}
	}

	head, err := divscrape.NewDetectorPair()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		head.Inspect(events[i].Entry)
	}
	var state bytes.Buffer
	if err := divscrape.Snapshot(&state, head); err != nil {
		t.Fatal(err)
	}

	resumed, err := divscrape.Resume(bytes.NewReader(state.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := k; i < len(events); i++ {
		c, b := resumed.Inspect(events[i].Entry)
		if c != want[i-k].c || b != want[i-k].b {
			t.Fatalf("verdict %d diverged after resume", i)
		}
	}
}

// TestResumeRejectsDamage: every failure mode is a typed error, never a
// panic or a silently wrong pair.
func TestResumeRejectsDamage(t *testing.T) {
	gen, err := divscrape.NewGenerator(divscrape.GeneratorConfig{Seed: 6, Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := divscrape.NewDetectorPair()
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Run(func(ev divscrape.Event) error {
		pair.Inspect(ev.Entry)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var state bytes.Buffer
	if err := divscrape.Snapshot(&state, pair); err != nil {
		t.Fatal(err)
	}

	// Truncation.
	if _, err := divscrape.Resume(bytes.NewReader(state.Bytes()[:state.Len()/2])); err == nil {
		t.Error("truncated snapshot resumed")
	}
	// Payload damage → checksum failure.
	damaged := bytes.Clone(state.Bytes())
	damaged[len(damaged)/2] ^= 0x10
	if _, err := divscrape.Resume(bytes.NewReader(damaged)); !errors.Is(err, divscrape.ErrSnapshotChecksum) {
		t.Errorf("damaged snapshot: err = %v, want ErrSnapshotChecksum", err)
	}
	// Version mismatch → typed error.
	wrongVersion := bytes.Clone(state.Bytes())
	wrongVersion[4] ^= 0x7F
	var ve *divscrape.SnapshotVersionError
	if _, err := divscrape.Resume(bytes.NewReader(wrongVersion)); !errors.As(err, &ve) {
		t.Errorf("wrong-version snapshot: err = %v, want *SnapshotVersionError", err)
	}
	// Not a snapshot at all.
	if _, err := divscrape.Resume(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage resumed")
	}
}

// TestFailedRestoreLeavesPairReset: a pair whose RestoreFrom fails must
// behave like a fresh pair, never as a half-restored mix of one restored
// and one empty detector.
func TestFailedRestoreLeavesPairReset(t *testing.T) {
	gen, err := divscrape.NewGenerator(divscrape.GeneratorConfig{Seed: 7, Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	events, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}

	warm, err := divscrape.NewDetectorPair()
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		warm.Inspect(events[i].Entry)
	}
	var state bytes.Buffer
	if err := divscrape.Snapshot(&state, warm); err != nil {
		t.Fatal(err)
	}

	if _, err := divscrape.Resume(bytes.NewReader(state.Bytes()[:state.Len()-40])); err == nil {
		t.Fatal("truncated snapshot resumed")
	}

	// Truncate inside the second (behavioural) detector's section, so the
	// enricher and commercial sections restore before the failure, then
	// restore into the warm pair: it must come out fully reset.
	payload := state.Bytes()[14 : state.Len()-48]
	victim := warm
	if err := victim.RestoreFrom(statecodec.NewReader(payload)); err == nil {
		t.Fatal("corrupt payload accepted")
	}
	fresh, err := divscrape.NewDetectorPair()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500 && i < len(events); i++ {
		vc, vb := victim.Inspect(events[i].Entry)
		fc, fb := fresh.Inspect(events[i].Entry)
		if vc != fc || vb != fb {
			t.Fatalf("verdict %d differs from a fresh pair after failed restore", i)
		}
	}
}
