package anomaly

import (
	"divscrape/internal/statecodec"
)

// Snapshot support for the streaming baselines: a detector's learned
// normality (running moments, drift sums, quantile sketches) is exactly
// the state that takes longest to re-warm after a restart, so each
// primitive serialises its accumulated baseline through the state codec.
// Configuration (warm-up lengths, fence multipliers, freeze flags) stays
// with the constructing code.

// Section tags.
const (
	tagZScore   uint16 = 0x4101
	tagCUSUM    uint16 = 0x4102
	tagIQRFence uint16 = 0x4103
)

// SnapshotInto implements statecodec.Snapshotter.
func (z *ZScore) SnapshotInto(w *statecodec.Writer) {
	w.Tag(tagZScore)
	z.base.SnapshotInto(w)
	w.Float64(z.current)
	w.Float64(z.sd)
	w.Bool(z.sdValid)
}

// RestoreFrom implements statecodec.Snapshotter.
func (z *ZScore) RestoreFrom(r *statecodec.Reader) error {
	if err := r.Expect(tagZScore); err != nil {
		return err
	}
	if err := z.base.RestoreFrom(r); err != nil {
		return err
	}
	z.current = r.Float64()
	z.sd = r.Float64()
	z.sdValid = r.Bool()
	return r.Err()
}

// SnapshotInto implements statecodec.Snapshotter. The target is included
// because SetTarget re-anchors it at runtime (recalibration state, not
// construction configuration).
func (c *CUSUM) SnapshotInto(w *statecodec.Writer) {
	w.Tag(tagCUSUM)
	w.Float64(c.target)
	w.Float64(c.sum)
}

// RestoreFrom implements statecodec.Snapshotter.
func (c *CUSUM) RestoreFrom(r *statecodec.Reader) error {
	if err := r.Expect(tagCUSUM); err != nil {
		return err
	}
	c.target = r.Float64()
	c.sum = r.Float64()
	return r.Err()
}

// SnapshotInto implements statecodec.Snapshotter.
func (f *IQRFence) SnapshotInto(w *statecodec.Writer) {
	w.Tag(tagIQRFence)
	f.q1.SnapshotInto(w)
	f.q3.SnapshotInto(w)
	w.Float64(f.current)
}

// RestoreFrom implements statecodec.Snapshotter.
func (f *IQRFence) RestoreFrom(r *statecodec.Reader) error {
	if err := r.Expect(tagIQRFence); err != nil {
		return err
	}
	if err := f.q1.RestoreFrom(r); err != nil {
		return err
	}
	if err := f.q3.RestoreFrom(r); err != nil {
		return err
	}
	f.current = r.Float64()
	return r.Err()
}
