package anomaly

import (
	"testing"

	"divscrape/internal/statecodec"
)

func TestBaselineSnapshotRoundTrips(t *testing.T) {
	z1 := NewZScore(10)
	c1 := NewCUSUM(1.0, 0.2)
	f1 := NewIQRFence(1.5, 8)
	c1.SetTarget(1.4) // runtime recalibration must survive the snapshot
	x := 0.0
	for i := 0; i < 60; i++ {
		x = float64(i%9) + float64(i)*0.01
		z1.Observe(x)
		c1.Observe(x)
		f1.Observe(x)
	}

	w := statecodec.NewWriter()
	z1.SnapshotInto(w)
	c1.SnapshotInto(w)
	f1.SnapshotInto(w)

	z2 := NewZScore(10)
	c2 := NewCUSUM(1.0, 0.2)
	f2 := NewIQRFence(1.5, 8)
	r := statecodec.NewReader(w.Bytes())
	for _, s := range []statecodec.Snapshotter{z2, c2, f2} {
		if err := s.RestoreFrom(r); err != nil {
			t.Fatal(err)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}

	for i := 0; i < 100; i++ {
		x = float64((i*31)%13) * 0.7
		if a, b := z1.Observe(x), z2.Observe(x); a != b {
			t.Fatalf("ZScore diverged at %d: %g vs %g", i, a, b)
		}
		if a, b := c1.Observe(x), c2.Observe(x); a != b {
			t.Fatalf("CUSUM diverged at %d: %g vs %g", i, a, b)
		}
		if a, b := f1.Observe(x), f2.Observe(x); a != b {
			t.Fatalf("IQRFence diverged at %d: %g vs %g", i, a, b)
		}
	}
}

func TestBaselineRestoreRejectsTruncation(t *testing.T) {
	z := NewZScore(4)
	for i := 0; i < 20; i++ {
		z.Observe(float64(i))
	}
	w := statecodec.NewWriter()
	z.SnapshotInto(w)
	for cut := 0; cut < w.Len(); cut += 5 {
		fresh := NewZScore(4)
		if err := fresh.RestoreFrom(statecodec.NewReader(w.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
