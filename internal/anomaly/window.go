package anomaly

import (
	"math"
	"time"
)

// AgeBaseline exponentially forgets baseline history, keeping the mean
// and variance but reducing the effective observation count to keep·N —
// see stats.Welford.Decay. A detector running for weeks calls this on a
// wall-clock cadence so the baseline tracks traffic drift instead of
// being anchored to its first days. Aging can drop the baseline back
// below the warm-up count, in which case the detector goes silent again
// until it re-warms — the correct behaviour after a regime change.
//
// Aging deliberately changes future scores (that is its purpose), so it
// is not part of the verdict-preserving eviction the session layers
// implement; BaselineWindow makes the distinction explicit by opting a
// baseline into the sweeper separately.
func (z *ZScore) AgeBaseline(keep float64) {
	z.base.Decay(keep)
	z.sdValid = false
}

// BaselineN reports the baseline's effective observation count (for the
// state surface and tests).
func (z *ZScore) BaselineN() uint64 { return z.base.N() }

// BaselineWindow adapts a ZScore baseline to the sweeper's
// EvictBefore(cutoff) contract: each sweep ages the baseline by
// 2^(−elapsed/HalfLife), where elapsed is the cutoff's advance since the
// previous sweep. With the sweeper's fixed window the baseline's memory
// of any observation halves every HalfLife of wall-clock time, bounding
// how long dead traffic patterns dominate the population statistics.
type BaselineWindow struct {
	// Z is the baseline to age. Required.
	Z *ZScore
	// HalfLife is the wall-clock half-life of baseline weight. Required
	// (non-positive disables aging).
	HalfLife time.Duration

	last time.Time
}

// EvictBefore implements the sweeper hook. It returns the number of
// baseline observations forgotten by this aging step.
func (b *BaselineWindow) EvictBefore(cutoff time.Time) int {
	if b.Z == nil || b.HalfLife <= 0 {
		return 0
	}
	if b.last.IsZero() || cutoff.Before(b.last) {
		b.last = cutoff
		return 0
	}
	elapsed := cutoff.Sub(b.last)
	if elapsed <= 0 {
		return 0
	}
	b.last = cutoff
	before := b.Z.BaselineN()
	b.Z.AgeBaseline(halfLifeKeep(elapsed, b.HalfLife))
	return int(before - b.Z.BaselineN())
}

// halfLifeKeep converts an elapsed duration into the weight fraction kept
// under the given half-life.
func halfLifeKeep(elapsed, halfLife time.Duration) float64 {
	return math.Exp2(-float64(elapsed) / float64(halfLife))
}
