package anomaly

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZScoreWarmup(t *testing.T) {
	z := NewZScore(10)
	for i := 0; i < 10; i++ {
		if got := z.Observe(float64(i % 3)); got != 0 {
			t.Fatalf("observation %d scored %g during warmup", i, got)
		}
	}
	// A wild outlier after warmup must score high.
	if got := z.Observe(1000); got < 3 {
		t.Errorf("outlier scored %g, want >= 3", got)
	}
	if z.Score() == 0 {
		t.Error("Score() should retain the last value")
	}
	z.Reset()
	if z.Score() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestZScoreConstantBaseline(t *testing.T) {
	z := NewZScore(5)
	for i := 0; i < 5; i++ {
		z.Observe(7)
	}
	if got := z.Observe(7); got != 0 {
		t.Errorf("on-baseline observation scored %g", got)
	}
	// Zero-variance baseline: any deviation is maximally surprising but
	// finite.
	got := z.Observe(8)
	if got <= 0 || math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("deviation from constant baseline scored %g", got)
	}
}

func TestZScoreFrozenBaseline(t *testing.T) {
	z := NewZScore(5)
	z.FreezeBaseline = true
	for _, x := range []float64{10, 10, 12, 8, 10} {
		z.Observe(x)
	}
	_, _, n0 := z.Baseline()
	z.Observe(100)
	z.Observe(100)
	if _, _, n := z.Baseline(); n != n0 {
		t.Errorf("frozen baseline grew from %d to %d", n0, n)
	}
}

func TestZScoreMinimumWarmup(t *testing.T) {
	z := NewZScore(0) // clamped to 2
	z.Observe(1)
	if got := z.Observe(100); got != 0 {
		t.Errorf("second observation scored %g, warmup must be >= 2", got)
	}
}

func TestCUSUMDriftDetection(t *testing.T) {
	c := NewCUSUM(1.0, 0.2)
	// On-target noise accumulates nothing.
	for i := 0; i < 50; i++ {
		x := 1.0
		if i%2 == 0 {
			x = 0.8
		} else {
			x = 1.2
		}
		c.Observe(x)
	}
	if c.Score() > 0.5 {
		t.Errorf("symmetric noise accumulated %g", c.Score())
	}
	// A sustained shift accumulates linearly.
	var last float64
	for i := 0; i < 10; i++ {
		last = c.Observe(2.0)
	}
	if last < 7 {
		t.Errorf("sustained +1 drift over 10 steps accumulated only %g", last)
	}
	c.Reset()
	if c.Score() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestCUSUMNeverNegative(t *testing.T) {
	c := NewCUSUM(5, 0)
	for i := 0; i < 20; i++ {
		if got := c.Observe(0); got < 0 {
			t.Fatalf("CUSUM went negative: %g", got)
		}
	}
	c.SetTarget(-10)
	if got := c.Observe(0); got <= 0 {
		t.Errorf("after lowering the target, positive deviation scored %g", got)
	}
}

func TestIQRFence(t *testing.T) {
	f := NewIQRFence(1.5, 8)
	// Tight cluster around 10.
	for i := 0; i < 100; i++ {
		f.Observe(10 + float64(i%5)*0.1)
	}
	if got := f.Observe(10.2); got != 0 {
		t.Errorf("in-range value scored %g", got)
	}
	if got := f.Observe(50); got <= 0 {
		t.Errorf("far outlier scored %g", got)
	}
	if got := f.Observe(-50); got <= 0 {
		t.Errorf("low outlier scored %g", got)
	}
	f.Reset()
	if f.Score() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestIQRFenceSilentDuringWarmup(t *testing.T) {
	f := NewIQRFence(1.5, 8)
	for i := 0; i < 8; i++ {
		if got := f.Observe(float64(i * 1000)); got != 0 {
			t.Fatalf("scored %g during warmup", got)
		}
	}
}

func TestCompositeValidation(t *testing.T) {
	tests := []struct {
		name     string
		features []Feature
	}{
		{"empty", nil},
		{"unnamed", []Feature{{Weight: 1, Scale: 1}}},
		{"duplicate", []Feature{
			{Name: "x", Weight: 1, Scale: 1},
			{Name: "x", Weight: 1, Scale: 1},
		}},
		{"negative weight", []Feature{{Name: "x", Weight: -1, Scale: 1}}},
		{"zero scale", []Feature{{Name: "x", Weight: 1, Scale: 0}}},
		{"all zero weights", []Feature{{Name: "x", Weight: 0, Scale: 1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewComposite(tt.features); err == nil {
				t.Errorf("NewComposite(%v) succeeded, want error", tt.features)
			}
		})
	}
}

func TestCompositeScoring(t *testing.T) {
	c, err := NewComposite([]Feature{
		{Name: "a", Weight: 3, Scale: 1},
		{Name: "b", Weight: 1, Scale: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Only feature a, at its half-strength point: 3/4 * 0.5 = 0.375.
	score, contribs := c.Score(map[string]float64{"a": 1})
	if math.Abs(score-0.375) > 1e-9 {
		t.Errorf("score = %g, want 0.375", score)
	}
	if len(contribs) != 1 || contribs[0].Name != "a" {
		t.Errorf("contribs = %+v", contribs)
	}

	// Contributions are sorted by weighted share.
	score2, contribs2 := c.Score(map[string]float64{"a": 0.1, "b": 100})
	if len(contribs2) != 2 {
		t.Fatalf("want 2 contributions, got %d", len(contribs2))
	}
	if contribs2[0].Weighted < contribs2[1].Weighted {
		t.Error("contributions not sorted descending")
	}
	if score2 <= 0 {
		t.Errorf("score2 = %g", score2)
	}

	// Unknown, zero, negative and NaN features are ignored.
	score3, contribs3 := c.Score(map[string]float64{
		"zzz": 5, "a": 0, "b": -1,
	})
	if score3 != 0 || len(contribs3) != 0 {
		t.Errorf("score3 = %g with %d contribs, want all ignored", score3, len(contribs3))
	}
	score4, _ := c.Score(map[string]float64{"a": math.NaN()})
	if score4 != 0 {
		t.Errorf("NaN input scored %g", score4)
	}

	if got := c.Features(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Features() = %v", got)
	}
}

// Composite property: scores are always in [0, 1) and monotone in each
// feature's raw value.
func TestCompositeBoundedMonotoneProperty(t *testing.T) {
	c, err := NewComposite([]Feature{
		{Name: "x", Weight: 2, Scale: 0.5},
		{Name: "y", Weight: 1, Scale: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y, dx float64) bool {
		x = math.Abs(math.Mod(x, 1e6))
		y = math.Abs(math.Mod(y, 1e6))
		dx = math.Abs(math.Mod(dx, 1e3))
		s1, _ := c.Score(map[string]float64{"x": x, "y": y})
		s2, _ := c.Score(map[string]float64{"x": x + dx, "y": y})
		return s1 >= 0 && s1 < 1 && s2+1e-12 >= s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
