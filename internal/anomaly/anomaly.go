// Package anomaly provides streaming anomaly detectors over scalar feature
// streams: robust z-scores against an online baseline, CUSUM drift
// detection, and IQR fencing. The behavioural scraping detector composes
// these primitives over per-session features; they are deliberately
// self-contained so they can be property-tested in isolation.
//
// The DSN 2018 paper's in-house tool ("Arcane") is described only as a
// behavioural monitor; these are the standard building blocks such monitors
// use (cf. Stevanovic et al. 2012, Stassopoulou & Dikaiakos 2009, which the
// paper cites).
package anomaly

import (
	"math"

	"divscrape/internal/stats"
)

// Detector scores scalar observations; larger scores mean more anomalous.
// Implementations are stateful and not safe for concurrent use.
type Detector interface {
	// Observe incorporates x and returns its anomaly score (>= 0).
	Observe(x float64) float64
	// Score returns the current score without adding an observation.
	Score() float64
	// Reset returns the detector to its initial state.
	Reset()
}

// ZScore scores observations by distance from a running mean in units of
// the running standard deviation. It refuses to alarm during a warm-up
// period so early observations establish the baseline instead of alerting
// against an empty one.
type ZScore struct {
	base    stats.Welford
	warmup  uint64
	current float64
	// sd caches the baseline's standard deviation, refreshed only when the
	// baseline changes: scoring is then a subtract-abs-divide with no
	// variance/sqrt recomputation per observation. With FreezeBaseline set
	// the baseline never changes once warm, so the cache persists for the
	// whole scoring phase.
	sd      float64
	sdValid bool
	// FreezeBaseline stops baseline updates once warm; useful when the
	// caller wants a train-then-score split.
	FreezeBaseline bool
}

// NewZScore returns a z-score detector that stays silent for the first
// warmup observations (minimum 2).
func NewZScore(warmup int) *ZScore {
	if warmup < 2 {
		warmup = 2
	}
	return &ZScore{warmup: uint64(warmup)}
}

// Observe implements Detector.
func (z *ZScore) Observe(x float64) float64 {
	if z.base.N() < z.warmup {
		z.base.Add(x)
		z.sdValid = false
		z.current = 0
		return 0
	}
	if !z.sdValid {
		z.sd = z.base.StdDev()
		z.sdValid = true
	}
	sd := z.sd
	if sd == 0 {
		if x == z.base.Mean() {
			z.current = 0
		} else {
			// Any deviation from a perfectly constant baseline is maximally
			// surprising; report a large, finite score.
			z.current = maxScore
		}
	} else {
		z.current = math.Abs(x-z.base.Mean()) / sd
	}
	if !z.FreezeBaseline {
		z.base.Add(x)
		z.sdValid = false
	}
	return z.current
}

// Score implements Detector.
func (z *ZScore) Score() float64 { return z.current }

// Reset implements Detector.
func (z *ZScore) Reset() {
	z.base.Reset()
	z.current = 0
	z.sd, z.sdValid = 0, false
}

// Baseline exposes the running mean for diagnostics.
func (z *ZScore) Baseline() (mean, stddev float64, n uint64) {
	return z.base.Mean(), z.base.StdDev(), z.base.N()
}

// maxScore bounds scores when the baseline has zero variance.
const maxScore = 1e6

// CUSUM is a one-sided cumulative-sum change detector: it accumulates
// positive deviations of the input above a reference level (target + slack)
// and reports the accumulated sum. Sustained drifts accumulate quickly while
// symmetric noise cancels out, which makes it the right shape for detecting
// a client whose request rate has shifted upward and stayed there.
type CUSUM struct {
	target float64
	slack  float64
	sum    float64
}

// NewCUSUM returns a detector for upward shifts above target with the given
// slack (the allowed excursion before accumulation starts).
func NewCUSUM(target, slack float64) *CUSUM {
	if slack < 0 {
		slack = 0
	}
	return &CUSUM{target: target, slack: slack}
}

// Observe implements Detector.
func (c *CUSUM) Observe(x float64) float64 {
	c.sum += x - c.target - c.slack
	if c.sum < 0 {
		c.sum = 0
	}
	return c.sum
}

// Score implements Detector.
func (c *CUSUM) Score() float64 { return c.sum }

// Reset implements Detector.
func (c *CUSUM) Reset() { c.sum = 0 }

// SetTarget re-anchors the reference level (e.g. after recalibration).
func (c *CUSUM) SetTarget(target float64) { c.target = target }

// IQRFence scores observations against streaming quartile estimates using
// the Tukey fence rule: values beyond Q3 + k*IQR (or below Q1 - k*IQR)
// score proportionally to how far outside the fence they are, in IQR units.
type IQRFence struct {
	q1, q3  *stats.P2Quantile
	k       float64
	warmup  int
	current float64
}

// NewIQRFence returns a fence detector with multiplier k (1.5 is Tukey's
// classic "outlier", 3.0 "far out"). It stays silent for warmup
// observations (minimum 8, so the quartile sketches have settled).
func NewIQRFence(k float64, warmup int) *IQRFence {
	if k <= 0 {
		k = 1.5
	}
	if warmup < 8 {
		warmup = 8
	}
	return &IQRFence{
		q1:     stats.NewP2Quantile(0.25),
		q3:     stats.NewP2Quantile(0.75),
		k:      k,
		warmup: warmup,
	}
}

// Observe implements Detector.
func (f *IQRFence) Observe(x float64) float64 {
	defer func() {
		f.q1.Add(x)
		f.q3.Add(x)
	}()
	if f.q1.N() < f.warmup {
		f.current = 0
		return 0
	}
	q1, q3 := f.q1.Value(), f.q3.Value()
	iqr := q3 - q1
	if iqr <= 0 {
		f.current = 0
		return 0
	}
	upper := q3 + f.k*iqr
	lower := q1 - f.k*iqr
	switch {
	case x > upper:
		f.current = (x - upper) / iqr
	case x < lower:
		f.current = (lower - x) / iqr
	default:
		f.current = 0
	}
	return f.current
}

// Score implements Detector.
func (f *IQRFence) Score() float64 { return f.current }

// Reset implements Detector.
func (f *IQRFence) Reset() {
	f.q1 = stats.NewP2Quantile(0.25)
	f.q3 = stats.NewP2Quantile(0.75)
	f.current = 0
}
