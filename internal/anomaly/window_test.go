package anomaly

import (
	"math"
	"testing"
	"time"
)

func TestAgeBaselinePreservesMoments(t *testing.T) {
	z := NewZScore(2)
	for i := 0; i < 1000; i++ {
		z.Observe(float64(i % 10))
	}
	mean0, sd0, n0 := z.Baseline()
	z.AgeBaseline(0.5)
	mean1, sd1, n1 := z.Baseline()
	if mean1 != mean0 {
		t.Errorf("mean changed %g -> %g", mean0, mean1)
	}
	if math.Abs(sd1-sd0) > 1e-9 {
		t.Errorf("stddev changed %g -> %g", sd0, sd1)
	}
	if n1 != n0/2 {
		t.Errorf("n %d -> %d, want halved", n0, n1)
	}
}

func TestAgeBaselineAcceleratesDriftTracking(t *testing.T) {
	aged, anchored := NewZScore(2), NewZScore(2)
	for i := 0; i < 2000; i++ {
		aged.Observe(10)
		anchored.Observe(10)
	}
	aged.AgeBaseline(0.01) // forget almost everything
	// The regime shifts to 50; the aged baseline adapts much faster.
	for i := 0; i < 100; i++ {
		aged.Observe(50)
		anchored.Observe(50)
	}
	am, _, _ := aged.Baseline()
	nm, _, _ := anchored.Baseline()
	if !(am > nm+10) {
		t.Errorf("aged mean %g not tracking the shift faster than anchored %g", am, nm)
	}
}

func TestBaselineWindowEvictBefore(t *testing.T) {
	z := NewZScore(2)
	for i := 0; i < 1024; i++ {
		z.Observe(float64(i%7) * 1.5)
	}
	w := &BaselineWindow{Z: z, HalfLife: time.Hour}
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

	// First sweep anchors, forgetting nothing.
	if n := w.EvictBefore(base); n != 0 {
		t.Errorf("anchor sweep forgot %d", n)
	}
	n0 := z.BaselineN()
	// One half-life later: half the weight is gone.
	forgotten := w.EvictBefore(base.Add(time.Hour))
	if z.BaselineN() != n0/2 {
		t.Errorf("after one half-life N = %d, want %d", z.BaselineN(), n0/2)
	}
	if forgotten != int(n0-n0/2) {
		t.Errorf("reported %d forgotten, want %d", forgotten, n0-n0/2)
	}
	// A non-advancing (or regressing) cutoff is a no-op.
	if n := w.EvictBefore(base.Add(30 * time.Minute)); n != 0 {
		t.Errorf("regressing cutoff forgot %d", n)
	}

	// Disabled configurations are inert.
	if n := (&BaselineWindow{HalfLife: time.Hour}).EvictBefore(base); n != 0 {
		t.Errorf("nil-baseline window forgot %d", n)
	}
	if n := (&BaselineWindow{Z: z}).EvictBefore(base); n != 0 {
		t.Errorf("zero-half-life window forgot %d", n)
	}
}
