package anomaly

import (
	"fmt"
	"math"
	"sort"
)

// Feature is one named, weighted scalar signal contributing to a composite
// anomaly score. Scores are squashed to [0, 1) before weighting so a single
// unbounded signal cannot dominate the composite.
type Feature struct {
	// Name identifies the signal in explanations.
	Name string
	// Weight scales the squashed score. Negative weights are invalid.
	Weight float64
	// Scale is the score at which the squashed value reaches 0.5; it sets
	// the "knee" of the squashing curve per feature.
	Scale float64
}

// Composite combines multiple feature scores into one [0, 1) anomaly score
// with per-feature explanations. It is the scoring backbone of both
// detectors: each detector declares its features once and feeds raw signal
// values per request.
type Composite struct {
	features []Feature
	total    float64
	// normWeight[i] is features[i].Weight / total, precomputed at
	// construction so the per-request scoring loop performs one multiply
	// per active feature instead of a divide and a multiply.
	normWeight []float64
}

// NewComposite validates and freezes a feature set.
func NewComposite(features []Feature) (*Composite, error) {
	if len(features) == 0 {
		return nil, fmt.Errorf("anomaly: composite needs at least one feature")
	}
	seen := make(map[string]bool, len(features))
	var total float64
	fs := make([]Feature, len(features))
	copy(fs, features)
	for i, f := range fs {
		if f.Name == "" {
			return nil, fmt.Errorf("anomaly: feature %d has empty name", i)
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("anomaly: duplicate feature %q", f.Name)
		}
		seen[f.Name] = true
		if f.Weight < 0 {
			return nil, fmt.Errorf("anomaly: feature %q has negative weight", f.Name)
		}
		if f.Scale <= 0 {
			return nil, fmt.Errorf("anomaly: feature %q has non-positive scale", f.Name)
		}
		total += f.Weight
	}
	if total == 0 {
		return nil, fmt.Errorf("anomaly: all feature weights are zero")
	}
	norm := make([]float64, len(fs))
	for i, f := range fs {
		norm[i] = f.Weight / total
	}
	return &Composite{features: fs, total: total, normWeight: norm}, nil
}

// Contribution is one feature's share of a composite score.
type Contribution struct {
	Name     string
	Raw      float64
	Weighted float64
}

// Score combines raw per-feature values (keyed by feature name; missing
// features contribute zero) into a composite score in [0, 1). The returned
// contributions are sorted by descending weighted share and explain the
// score; callers surface the top entries as alert reasons.
func (c *Composite) Score(raw map[string]float64) (float64, []Contribution) {
	var sum float64
	contribs := make([]Contribution, 0, len(c.features))
	for i, f := range c.features {
		x, ok := raw[f.Name]
		if !ok || x <= 0 || math.IsNaN(x) {
			continue
		}
		squashed := squash(x, f.Scale)
		w := c.normWeight[i] * squashed
		sum += w
		contribs = append(contribs, Contribution{Name: f.Name, Raw: x, Weighted: w})
	}
	sort.Slice(contribs, func(i, j int) bool {
		if contribs[i].Weighted != contribs[j].Weighted {
			return contribs[i].Weighted > contribs[j].Weighted
		}
		return contribs[i].Name < contribs[j].Name
	})
	return sum, contribs
}

// ScoreVec is the allocation-free counterpart of Score: raw holds one
// value per feature in declaration order (length NumFeatures; zero,
// negative and NaN values contribute nothing), and scratch is a
// caller-owned contribution buffer reused across calls (its length is
// ignored; its capacity should be at least NumFeatures to stay
// allocation-free). The returned contributions alias scratch's backing
// array and are ordered exactly as Score orders them.
func (c *Composite) ScoreVec(raw []float64, scratch []Contribution) (float64, []Contribution) {
	var sum float64
	contribs := scratch[:0]
	for i := range c.features {
		x := raw[i]
		if x <= 0 || math.IsNaN(x) {
			continue
		}
		f := &c.features[i]
		squashed := squash(x, f.Scale)
		w := c.normWeight[i] * squashed
		sum += w
		contribs = append(contribs, Contribution{Name: f.Name, Raw: x, Weighted: w})
	}
	// Insertion sort (descending weight, name tie-break): tiny inputs, no
	// closure allocation, and the same total order sort.Slice produces in
	// Score.
	for i := 1; i < len(contribs); i++ {
		for j := i; j > 0 && contribLess(contribs[j], contribs[j-1]); j-- {
			contribs[j], contribs[j-1] = contribs[j-1], contribs[j]
		}
	}
	return sum, contribs
}

func contribLess(a, b Contribution) bool {
	if a.Weighted != b.Weighted {
		return a.Weighted > b.Weighted
	}
	return a.Name < b.Name
}

// NumFeatures returns the number of declared features (the required length
// of ScoreVec's raw argument).
func (c *Composite) NumFeatures() int { return len(c.features) }

// Features returns the feature names in declaration order.
func (c *Composite) Features() []string {
	names := make([]string, len(c.features))
	for i, f := range c.features {
		names[i] = f.Name
	}
	return names
}

// squash maps a non-negative raw score to [0, 1) with value 0.5 at scale:
// x / (x + scale). Monotone, bounded, and cheap.
func squash(x, scale float64) float64 {
	if x <= 0 {
		return 0
	}
	return x / (x + scale)
}
