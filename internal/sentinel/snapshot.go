package sentinel

import (
	"fmt"

	"divscrape/internal/detector"
	"divscrape/internal/sessions"
	"divscrape/internal/statecodec"
)

// tagSentinel opens a sentinel state block in a snapshot.
const tagSentinel uint16 = 0x5E01

var _ detector.ShardedSnapshotter = (*Detector)(nil)

// snapshotIPState and restoreIPState are the sessions value hooks; they
// must stay symmetric field for field.
func snapshotIPState(w *statecodec.Writer, st *ipState) {
	st.limiter.SnapshotInto(w)
	st.window.SnapshotInto(w)
	st.uaSeen.SnapshotInto(w)
	w.Bool(st.challengeSolved)
	w.Int(st.pagesNoSolve)
	w.Uint64(st.violations)
	w.Uint64(st.requests)
}

func restoreIPState(r *statecodec.Reader, st *ipState) error {
	if err := st.limiter.RestoreFrom(r); err != nil {
		return err
	}
	if err := st.window.RestoreFrom(r); err != nil {
		return err
	}
	if err := st.uaSeen.RestoreFrom(r); err != nil {
		return err
	}
	st.challengeSolved = r.Bool()
	st.pagesNoSolve = r.Int()
	st.violations = r.Uint64()
	st.requests = r.Uint64()
	return r.Err()
}

// SnapshotInto implements detector.Snapshotter.
func (d *Detector) SnapshotInto(w *statecodec.Writer) {
	if err := d.SnapshotShardsInto(w, []detector.Detector{d}); err != nil {
		w.Fail(err)
	}
}

// RestoreFrom implements detector.Snapshotter.
func (d *Detector) RestoreFrom(r *statecodec.Reader) error {
	return d.RestoreShards(r, []detector.Detector{d}, func(uint32) int { return 0 })
}

// SnapshotShardsInto implements detector.ShardedSnapshotter: the union of
// the shard instances' per-IP state, canonically ordered, so the bytes do
// not depend on how clients were partitioned.
func (d *Detector) SnapshotShardsInto(w *statecodec.Writer, shards []detector.Detector) error {
	stores, err := sentinelStores(shards)
	if err != nil {
		return err
	}
	w.Tag(tagSentinel)
	sessions.SnapshotMerged(w, stores)
	return w.Err()
}

// RestoreShards implements detector.ShardedSnapshotter.
func (d *Detector) RestoreShards(r *statecodec.Reader, shards []detector.Detector, part func(ip uint32) int) error {
	stores, err := sentinelStores(shards)
	if err != nil {
		return err
	}
	if err := r.Expect(tagSentinel); err != nil {
		return err
	}
	return sessions.RestorePartitioned(r, stores, func(k sessions.Key) int { return part(k.IP) })
}

// sentinelStores asserts a shard slice down to the session stores.
func sentinelStores(shards []detector.Detector) ([]*sessions.Store[ipState], error) {
	stores := make([]*sessions.Store[ipState], len(shards))
	for i, s := range shards {
		sd, ok := s.(*Detector)
		if !ok {
			return nil, fmt.Errorf("sentinel: shard %d is %T, not *sentinel.Detector", i, s)
		}
		stores[i] = sd.store
	}
	return stores, nil
}
