// Package sentinel implements a commercial-style bot-mitigation detector in
// the mould of the product the DSN 2018 paper pairs with the in-house tool:
// it judges each request with fast, mostly per-request evidence — User-Agent
// signatures and fingerprint-consistency checks, IP reputation feeds, a
// JavaScript challenge flow, request-rate conformance, and per-IP User-Agent
// rotation. Its verdicts are decisive from the very first request of a bad
// client, which is exactly what makes it diverse from the behavioural
// detector in internal/arcane (strong early, blind to clean-fingerprint
// automation).
package sentinel

import (
	"fmt"
	"time"

	"divscrape/internal/anomaly"
	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/ratelimit"
	"divscrape/internal/sessions"
	"divscrape/internal/sitemodel"
	"divscrape/internal/stats"
	"divscrape/internal/uaparse"
)

// Feature names used in verdict explanations.
const (
	featSignature  = "ua-signature"
	featReputation = "ip-reputation"
	featSpoofedBot = "spoofed-search-bot"
	featRate       = "rate-violation"
	featChallenge  = "challenge-unsolved"
	featRotation   = "ua-rotation"
)

// featIndex fixes the slot layout of the flat feature vector the detector
// reuses across requests; the composite scorer is declared in the same
// order, so slot i here is feature i there.
var featIndex = detector.NewFeatureIndex(
	featSignature, featReputation, featSpoofedBot, featRate, featChallenge, featRotation,
)

// Vector slots, resolved once at init.
var (
	idxSignature  = featIndex.Index(featSignature)
	idxReputation = featIndex.Index(featReputation)
	idxSpoofedBot = featIndex.Index(featSpoofedBot)
	idxRate       = featIndex.Index(featRate)
	idxChallenge  = featIndex.Index(featChallenge)
	idxRotation   = featIndex.Index(featRotation)
)

// Config tunes the detector. Zero values select the defaults documented on
// each field.
type Config struct {
	// AlertThreshold is the composite score above which a request alerts.
	// The default 0.18 is calibrated so that a declared automation tool,
	// a blocklisted source address, or a spoofed search-bot claim each
	// alert on their own, while weaker signals (datacenter reputation,
	// an unsolved challenge, rate pressure) must combine. Default 0.18.
	AlertThreshold float64
	// SustainedRate is the per-IP request rate (req/s) considered the
	// ceiling of human browsing. Default 1.5.
	SustainedRate float64
	// BurstSize is the rate limiter's burst allowance. Default 40.
	BurstSize float64
	// ChallengeGracePages is how many HTML pages a browser-claiming client
	// may fetch before an unexecuted JavaScript challenge becomes a
	// signal. Default 3.
	ChallengeGracePages int
	// RotationThreshold is the number of distinct User-Agents from one IP
	// beyond which rotation scores. Default 12.
	RotationThreshold int
	// IdleTimeout evicts per-IP state after inactivity. Default 60m.
	IdleTimeout time.Duration
	// Era bounds plausible browser versions; zero value selects
	// uaparse.Era2018 (the paper's capture window).
	Era uaparse.Era
	// InspectAuthUsers, when true, also inspects requests carrying an
	// authenticated user. By default authenticated partner traffic is
	// trusted, as deployments whitelist credentialed integrations.
	InspectAuthUsers bool
}

// DefaultConfig returns the tuned defaults used by the evaluation.
func DefaultConfig() Config {
	return Config{
		AlertThreshold:      0.18,
		SustainedRate:       1.5,
		BurstSize:           40,
		ChallengeGracePages: 3,
		RotationThreshold:   12,
		IdleTimeout:         time.Hour,
		Era:                 uaparse.Era2018(),
	}
}

func (c *Config) applyDefaults() {
	d := DefaultConfig()
	if c.AlertThreshold <= 0 {
		c.AlertThreshold = d.AlertThreshold
	}
	if c.SustainedRate <= 0 {
		c.SustainedRate = d.SustainedRate
	}
	if c.BurstSize <= 0 {
		c.BurstSize = d.BurstSize
	}
	if c.ChallengeGracePages <= 0 {
		c.ChallengeGracePages = d.ChallengeGracePages
	}
	if c.RotationThreshold <= 0 {
		c.RotationThreshold = d.RotationThreshold
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = d.IdleTimeout
	}
	if c.Era == (uaparse.Era{}) {
		c.Era = d.Era
	}
}

// ipState is the per-client-address memory.
type ipState struct {
	limiter         *ratelimit.GCRA
	window          *ratelimit.SlidingWindow
	uaSeen          *stats.CountSet
	challengeSolved bool
	pagesNoSolve    int
	violations      uint64
	requests        uint64
}

// Detector is the commercial-style detector. Not safe for concurrent use.
type Detector struct {
	cfg     Config
	checker *uaparse.Checker
	scorer  *anomaly.Composite
	store   *sessions.Store[ipState]

	// Per-request scratch, reused to keep Inspect allocation-free.
	vec      []float64
	contribs []anomaly.Contribution
	viols    []uaparse.Violation
	// vecValid marks vec as holding the last request's features; requests
	// short-circuited before scoring leave it false so the provenance
	// plane never snapshots a stale vector.
	vecValid bool
}

var (
	_ detector.Detector  = (*Detector)(nil)
	_ detector.Explainer = (*Detector)(nil)
)

// New builds a detector with cfg (zero fields take defaults).
func New(cfg Config) (*Detector, error) {
	cfg.applyDefaults()
	// Weights are fractions of a total of 10; scales set each signal's
	// half-strength point. Decision calibration (threshold 0.18):
	// a tool UA (severity 3 → 0.86 squashed × 0.22) or a blocklisted
	// address (1.0 suspicion → 0.74 × 0.25) alert alone; datacenter
	// reputation (0.65 → 0.65 × 0.25 = 0.16) needs a second signal.
	scorer, err := anomaly.NewComposite([]anomaly.Feature{
		{Name: featSignature, Weight: 2.2, Scale: 0.40},
		{Name: featReputation, Weight: 2.5, Scale: 0.35},
		{Name: featSpoofedBot, Weight: 2.3, Scale: 0.25},
		{Name: featRate, Weight: 1.3, Scale: 1.0},
		{Name: featChallenge, Weight: 0.9, Scale: 2.0},
		{Name: featRotation, Weight: 0.8, Scale: 1.0},
	})
	if err != nil {
		return nil, fmt.Errorf("sentinel: build scorer: %w", err)
	}
	d := &Detector{
		cfg:      cfg,
		checker:  uaparse.NewChecker(cfg.Era),
		scorer:   scorer,
		vec:      featIndex.NewVector(),
		contribs: make([]anomaly.Contribution, 0, featIndex.Len()),
		viols:    make([]uaparse.Violation, 0, 4),
	}
	d.store, err = sessions.NewStore(sessions.Config[ipState]{
		IdleTimeout: cfg.IdleTimeout,
		New:         func(time.Time) *ipState { return newIPState(cfg) },
		Recycle:     recycleIPState,
		Snapshot:    snapshotIPState,
		Restore:     restoreIPState,
	})
	if err != nil {
		return nil, fmt.Errorf("sentinel: build store: %w", err)
	}
	return d, nil
}

func newIPState(cfg Config) *ipState {
	limiter, err := ratelimit.NewGCRA(cfg.SustainedRate, cfg.BurstSize)
	if err != nil {
		// Config was validated by applyDefaults; rates are positive.
		panic(fmt.Sprintf("sentinel: impossible limiter config: %v", err))
	}
	window, err := ratelimit.NewSlidingWindow(time.Minute, 6)
	if err != nil {
		panic(fmt.Sprintf("sentinel: impossible window config: %v", err))
	}
	return &ipState{limiter: limiter, window: window, uaSeen: stats.NewCountSet()}
}

// recycleIPState resets an evicted client's state in place so the session
// store can hand it to the next new client without allocating: the
// limiter, window and UA set keep their backing storage.
func recycleIPState(st *ipState) {
	st.limiter.Reset()
	st.window.Reset()
	st.uaSeen.Reset()
	st.challengeSolved = false
	st.pagesNoSolve = 0
	st.violations = 0
	st.requests = 0
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "sentinel" }

// Reset implements detector.Detector.
func (d *Detector) Reset() {
	d.store.Reset()
}

// Inspect implements detector.Detector.
func (d *Detector) Inspect(req *detector.Request) detector.Verdict {
	var v detector.Verdict
	d.InspectInto(req, &v)
	return v
}

// InspectInto implements detector.Detector. It overwrites every field of
// *out and records reasons as interned feature-name constants, so the
// steady-state decision path performs no allocations.
func (d *Detector) InspectInto(req *detector.Request, out *detector.Verdict) {
	*out = detector.Verdict{}
	d.vecValid = false
	// Authenticated partner traffic is sanctioned automation.
	if !d.cfg.InspectAuthUsers && req.Entry.AuthUser != "" && req.Entry.AuthUser != "-" {
		return
	}

	now := req.Entry.Time
	st, _ := d.store.Touch(sessions.IPOnlyKey(req.IP), now)
	st.requests++
	st.uaSeen.Add(req.Entry.UserAgent)

	info := sitemodel.ClassifyPath(req.Entry.Path)
	if info.Kind == sitemodel.KindChallengeVerify && req.Entry.Method == "POST" {
		st.challengeSolved = true
		st.pagesNoSolve = 0
	}
	if info.Kind.IsPage() && !st.challengeSolved {
		st.pagesNoSolve++
	}

	// Verified benign automation: declared search bots from verified
	// ranges and declared monitors are whitelisted the way commercial
	// products whitelist them.
	if req.UA.Class == uaparse.ClassSearchBot && req.IPCat == iprep.SearchEngine {
		return
	}
	if req.UA.Class == uaparse.ClassMonitor {
		return
	}

	vec := d.vec
	for i := range vec {
		vec[i] = 0
	}

	// Signature / fingerprint consistency, weighted by severity: a
	// declared tool is near-definitive, a stale browser version merely
	// suspicious.
	d.viols = d.checker.AppendCheck(d.viols[:0], req.UA)
	if len(d.viols) > 0 {
		var severity float64
		for _, v := range d.viols {
			severity += violationSeverity(v)
		}
		vec[idxSignature] = severity
	}
	// A declared search bot outside verified ranges is a spoof.
	if req.UA.Class == uaparse.ClassSearchBot && req.IPCat != iprep.SearchEngine {
		vec[idxSpoofedBot] = 1
	}
	// Reputation prior.
	if s := req.IPCat.Suspicion(); s > 0 {
		vec[idxReputation] = s
	}
	// Rate conformance: count recent violations, decaying with the window.
	if !st.limiter.Allow(now) {
		st.violations++
		vec[idxRate] = 1 + float64(st.window.Observe(now))/60
	} else {
		st.window.Observe(now)
	}
	// Challenge flow: browser-claiming clients that keep fetching pages
	// without ever executing the challenge script.
	if req.UA.Class == uaparse.ClassBrowser || req.UA.Class == uaparse.ClassUnknown {
		if over := st.pagesNoSolve - d.cfg.ChallengeGracePages; over > 0 {
			vec[idxChallenge] = float64(over)
		}
	}
	// User-Agent rotation behind a single address.
	if over := st.uaSeen.Distinct() - d.cfg.RotationThreshold; over > 0 {
		vec[idxRotation] = float64(over)
	}

	d.vecValid = true
	score, contribs := d.scorer.ScoreVec(vec, d.contribs)
	out.Score = score
	if score >= d.cfg.AlertThreshold {
		out.Alert = true
		appendReasons(&out.Reasons, contribs)
	}
}

// Clients reports the number of live per-IP states (for diagnostics).
func (d *Detector) Clients() int { return d.store.Len() }

// FeatureNames implements detector.Explainer: the feature vector's slot
// names, in order. The returned slice is immutable.
func (d *Detector) FeatureNames() []string { return featIndex.Names() }

// LastFeatures implements detector.Explainer: the vector behind the most
// recent InspectInto, aliasing the detector's reusable scratch. ok is
// false when that request short-circuited before scoring (authenticated
// partner, verified search bot, declared monitor).
func (d *Detector) LastFeatures() ([]float64, bool) { return d.vec, d.vecValid }

// EvictBefore implements detector.Evictable: it proactively drops per-IP
// state untouched since cutoff. Verdict-neutral whenever cutoff trails
// stream time by at least Config.IdleTimeout (the sessions.Store
// eviction-equivalence argument).
func (d *Detector) EvictBefore(cutoff time.Time) int {
	return d.store.EvictBefore(cutoff)
}

// violationSeverity grades fingerprint violations: declared automation is
// near-definitive; version staleness is only a contributing signal.
func violationSeverity(v uaparse.Violation) float64 {
	switch v {
	case uaparse.ViolationToolUA, uaparse.ViolationHeadless:
		return 3.0
	case uaparse.ViolationEmptyUA:
		return 2.5
	case uaparse.ViolationFutureVersion:
		return 2.0
	case uaparse.ViolationStaleVersion:
		// Canned kit strings are years stale; with the 0.45 squash knee a
		// lone stale version sits right at the alert threshold, which is
		// how commercial products treat long-dead browser versions.
		return 2.0
	case uaparse.ViolationMalformedMozilla:
		return 1.5
	case uaparse.ViolationNoOS:
		return 1.0
	case uaparse.ViolationSpoofedBot:
		return 2.0
	default:
		return 1.0
	}
}

// appendReasons records the top contributions as interned feature-name
// constants; ReasonList caps the depth, so no slice is ever built.
func appendReasons(r *detector.ReasonList, contribs []anomaly.Contribution) {
	for i := range contribs {
		r.Append(contribs[i].Name)
	}
}

// SessionsSince streams the keys and last-activity stamps of clients
// active at or after since, newest first — the session digests the
// cluster plane ships so peers can gauge replica freshness. The walk
// rides the store's recency order and stops at the first stale session.
func (d *Detector) SessionsSince(since time.Time, fn func(key sessions.Key, lastSeen time.Time)) {
	d.store.RangeNewest(func(k sessions.Key, last time.Time) bool {
		if last.Before(since) {
			return false
		}
		fn(k, last)
		return true
	})
}
