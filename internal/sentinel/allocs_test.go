package sentinel

import (
	"testing"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/logfmt"
	"divscrape/internal/uaparse"
)

// Inspect reuses a flat feature vector, a contribution scratch buffer and
// a violation scratch slice, so judging a request for an already-live
// client must not allocate on the non-alerting path. The guard is a
// threshold rather than exact zero: session-state growth (new minute
// buckets, first-seen UAs) may legitimately allocate occasionally.
func TestInspectAllocGuard(t *testing.T) {
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2018, 3, 11, 12, 0, 0, 0, time.UTC)
	req := detector.Request{
		Entry: logfmt.Entry{
			RemoteAddr: "10.1.2.3", Identity: "-", AuthUser: "-",
			Method: "GET", Path: "/static/app.css", Proto: "HTTP/1.1",
			Status: 200, Bytes: 900, Referer: "/",
			UserAgent: "Mozilla/5.0 (X11; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0",
		},
		UA: uaparse.Parse("Mozilla/5.0 (X11; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0"),
		IP: 0x0a010203,
	}
	// Warm: create the per-IP session and settle the rate limiter.
	for i := 0; i < 50; i++ {
		req.Entry.Time = base.Add(time.Duration(i) * time.Second)
		d.Inspect(&req)
	}
	i := 50
	allocs := testing.AllocsPerRun(200, func() {
		req.Entry.Time = base.Add(time.Duration(i) * time.Second)
		i++
		d.Inspect(&req)
	})
	if allocs > 0.5 {
		t.Errorf("Inspect allocates %.2f/op in steady state, want ~0", allocs)
	}
}
