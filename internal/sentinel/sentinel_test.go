package sentinel

import (
	"testing"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/sitemodel"
	"divscrape/internal/uaparse"
)

var base = time.Date(2018, 3, 12, 10, 0, 0, 0, time.UTC)

const (
	cleanChrome = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36"
	staleChrome = "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/41.0.2228.0 Safari/537.36"
)

// mkReq builds an enriched request without the pipeline.
func mkReq(t *testing.T, seq uint64, ip, ua, path string, at time.Time) *detector.Request {
	t.Helper()
	addr, err := iprep.ParseIPv4(ip)
	if err != nil {
		t.Fatal(err)
	}
	cat, _ := iprep.BuildFeed().Lookup(addr)
	method := "GET"
	if path == sitemodel.ChallengeVerifyPath {
		method = "POST"
	}
	return &detector.Request{
		Seq: seq,
		Entry: logfmt.Entry{
			RemoteAddr: ip, Identity: "-", AuthUser: "-",
			Time: at, Method: method, Path: path, Proto: "HTTP/1.1",
			Status: 200, Bytes: 1000, Referer: "-", UserAgent: ua,
		},
		UA:    uaparse.Parse(ua),
		IP:    addr,
		IPCat: cat,
	}
}

func newDet(t *testing.T) *Detector {
	t.Helper()
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestToolUAAlertsImmediately(t *testing.T) {
	d := newDet(t)
	// Residential address: the only signal is the declared tool.
	req := mkReq(t, 0, "10.0.0.9", "python-requests/2.18.4", "/api/price/1", base)
	v := d.Inspect(req)
	if !v.Alert {
		t.Fatalf("tool UA not alerted (score %g)", v.Score)
	}
	if v.Reasons.Len() == 0 || v.Reasons.At(0) != "ua-signature" {
		t.Errorf("reasons = %v, want ua-signature first", v.Reasons.Strings())
	}
}

func TestBlocklistedAddressAlertsImmediately(t *testing.T) {
	d := newDet(t)
	ip := iprep.FormatIPv4(iprep.KnownScraperRanges[0].Nth(5))
	req := mkReq(t, 0, ip, cleanChrome, "/product/3", base)
	v := d.Inspect(req)
	if !v.Alert {
		t.Fatalf("blocklisted source not alerted (score %g)", v.Score)
	}
	if v.Reasons.Len() == 0 || v.Reasons.At(0) != "ip-reputation" {
		t.Errorf("reasons = %v, want ip-reputation first", v.Reasons.Strings())
	}
}

func TestDatacenterAloneDoesNotAlert(t *testing.T) {
	d := newDet(t)
	ip := iprep.FormatIPv4(iprep.DatacenterRanges[0].Nth(5))
	// Clean browser claim from a datacenter: grey, not convicted on the
	// first request.
	req := mkReq(t, 0, ip, cleanChrome, "/product/3", base)
	if v := d.Inspect(req); v.Alert {
		t.Fatalf("datacenter reputation alone alerted (score %g)", v.Score)
	}
}

func TestSpoofedSearchBotAlerts(t *testing.T) {
	d := newDet(t)
	googlebot := "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)"
	// Googlebot claim from residential space: spoof.
	v := d.Inspect(mkReq(t, 0, "10.0.0.9", googlebot, "/", base))
	if !v.Alert {
		t.Fatalf("spoofed search bot not alerted (score %g)", v.Score)
	}

	// The same claim from a verified range is whitelisted.
	d2 := newDet(t)
	verified := iprep.FormatIPv4(iprep.SearchEngineRanges[0].Nth(9))
	v2 := d2.Inspect(mkReq(t, 0, verified, googlebot, "/", base))
	if v2.Alert || v2.Score != 0 {
		t.Errorf("verified search bot scored %g", v2.Score)
	}
}

func TestMonitorWhitelisted(t *testing.T) {
	d := newDet(t)
	v := d.Inspect(mkReq(t, 0, "10.112.0.9", "Pingdom.com_bot_version_1.4_(http://www.pingdom.com/)", "/health", base))
	if v.Alert {
		t.Error("declared monitor alerted")
	}
}

func TestAuthenticatedTrafficSkipped(t *testing.T) {
	d := newDet(t)
	req := mkReq(t, 0, "10.112.0.9", "Java/1.8.0_151", "/api/price/1", base)
	req.Entry.AuthUser = "ota-partner-7"
	if v := d.Inspect(req); v.Alert || v.Score != 0 {
		t.Errorf("authenticated partner scored %g", v.Score)
	}

	// With InspectAuthUsers the same request is judged (and convicted:
	// tool UA).
	d2, err := New(Config{InspectAuthUsers: true})
	if err != nil {
		t.Fatal(err)
	}
	if v := d2.Inspect(req); !v.Alert {
		t.Error("InspectAuthUsers did not inspect authenticated traffic")
	}
}

func TestChallengeFlowSuppressesAndAccumulates(t *testing.T) {
	d := newDet(t)
	now := base

	// A browser that never executes the challenge accumulates suspicion
	// with every page; one stale-version signal pushes it over.
	var alerted bool
	for i := 0; i < 12; i++ {
		now = now.Add(3 * time.Second)
		v := d.Inspect(mkReq(t, uint64(i), "10.0.3.3", staleChrome, sitemodel.ProductPath(i), now))
		if v.Alert {
			alerted = true
		}
	}
	if !alerted {
		t.Error("stale browser that ignores the challenge never alerted")
	}

	// The same behaviour with a solved challenge and a clean UA stays
	// quiet.
	d2 := newDet(t)
	now = base
	d2.Inspect(mkReq(t, 0, "10.0.4.4", cleanChrome, sitemodel.HomePath, now))
	d2.Inspect(mkReq(t, 1, "10.0.4.4", cleanChrome, sitemodel.ChallengeVerifyPath, now.Add(time.Second)))
	for i := 0; i < 12; i++ {
		now = now.Add(5 * time.Second)
		v := d2.Inspect(mkReq(t, uint64(i+2), "10.0.4.4", cleanChrome, sitemodel.ProductPath(i), now))
		if v.Alert {
			t.Fatalf("clean challenged browser alerted at page %d (score %g, reasons %v)", i, v.Score, v.Reasons.Strings())
		}
	}
}

func TestRateViolationsRaiseScore(t *testing.T) {
	d := newDet(t)
	now := base
	var quietScore, floodScore float64
	// Gentle pace first.
	for i := 0; i < 10; i++ {
		now = now.Add(2 * time.Second)
		v := d.Inspect(mkReq(t, uint64(i), "10.0.5.5", cleanChrome, sitemodel.ProductPath(i), now))
		quietScore = v.Score
	}
	// Then a flood at 10 req/s.
	for i := 0; i < 300; i++ {
		now = now.Add(100 * time.Millisecond)
		v := d.Inspect(mkReq(t, uint64(i+10), "10.0.5.5", cleanChrome, sitemodel.ProductPath(i), now))
		floodScore = v.Score
	}
	if floodScore <= quietScore {
		t.Errorf("flood score %g not above quiet score %g", floodScore, quietScore)
	}
}

func TestUARotationSignal(t *testing.T) {
	d := newDet(t)
	now := base
	uas := []string{
		cleanChrome,
		"Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:58.0) Gecko/20100101 Firefox/58.0",
		"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_13_3) AppleWebKit/604.5.6 (KHTML, like Gecko) Version/11.0.3 Safari/604.5.6",
	}
	var fewUAScore float64
	for i := 0; i < 30; i++ {
		now = now.Add(400 * time.Millisecond)
		v := d.Inspect(mkReq(t, uint64(i), "10.96.0.7", uas[i%3], sitemodel.ProductPath(i), now))
		fewUAScore = v.Score
	}
	// Now a gateway presenting 30 distinct UAs.
	d2 := newDet(t)
	now = base
	var manyUAScore float64
	for i := 0; i < 30; i++ {
		now = now.Add(400 * time.Millisecond)
		ua := cleanChrome + " build/" + string(rune('A'+i))
		v := d2.Inspect(mkReq(t, uint64(i), "10.96.0.7", ua, sitemodel.ProductPath(i), now))
		manyUAScore = v.Score
	}
	if manyUAScore <= fewUAScore {
		t.Errorf("rotation score %g not above stable-UA score %g", manyUAScore, fewUAScore)
	}
}

func TestResetClearsState(t *testing.T) {
	d := newDet(t)
	now := base
	for i := 0; i < 200; i++ {
		now = now.Add(50 * time.Millisecond)
		d.Inspect(mkReq(t, uint64(i), "10.0.6.6", staleChrome, sitemodel.ProductPath(i), now))
	}
	if d.Clients() == 0 {
		t.Fatal("expected live client state")
	}
	d.Reset()
	if d.Clients() != 0 {
		t.Error("Reset left client state")
	}
	// Post-reset, the first request scores like a fresh detector.
	v := d.Inspect(mkReq(t, 0, "10.0.0.1", cleanChrome, "/", base))
	if v.Alert {
		t.Error("fresh state alerted a clean first request")
	}
}

func TestScoreThresholdConsistency(t *testing.T) {
	// Alert is exactly Score >= threshold: verify via a config with a
	// custom threshold.
	d, err := New(Config{AlertThreshold: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	v := d.Inspect(mkReq(t, 0, "10.0.0.9", "python-requests/2.18.4", "/api/price/1", base))
	if v.Alert {
		t.Error("score below 0.99 threshold must not alert")
	}
	if v.Score <= 0 {
		t.Error("score should still be reported")
	}
}

func BenchmarkInspect(b *testing.B) {
	d, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	feed := iprep.BuildFeed()
	addr, _ := iprep.ParseIPv4("172.16.0.9")
	cat, _ := feed.Lookup(addr)
	req := &detector.Request{
		Entry: logfmt.Entry{
			RemoteAddr: "172.16.0.9", Time: base,
			Method: "GET", Path: "/api/price/42", Proto: "HTTP/1.1",
			Status: 200, Bytes: 400, Referer: "-",
			UserAgent: "python-requests/2.18.4",
		},
		UA:    uaparse.Parse("python-requests/2.18.4"),
		IP:    addr,
		IPCat: cat,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req.Entry.Time = req.Entry.Time.Add(time.Second)
		d.Inspect(req)
	}
}
