package sentinel

import (
	"testing"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/statecodec"
	"divscrape/internal/workload"
)

// snapEvents generates a deterministic mixed workload for the snapshot
// equivalence tests.
func snapEvents(t *testing.T, seed uint64) []workload.Event {
	t.Helper()
	gen, err := workload.NewGenerator(workload.Config{
		Seed:     seed,
		Duration: 3 * time.Hour,
		Profile: workload.Profile{
			HumanVisitors:       20,
			HumanSessionsPerDay: 8,
			NaiveScrapers:       2,
			NaiveRate:           1.5,
			NaiveDuty:           0.5,
			AggressiveScrapers:  1,
			AggressiveRate:      4,
			AggressiveDuty:      0.4,
			StealthBots:         5,
			StealthSessionGap:   15 * time.Minute,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	events, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 1000 {
		t.Fatalf("workload too small: %d events", len(events))
	}
	return events
}

// TestSnapshotResumeEquivalence stops a replay at event k, snapshots,
// restores into a fresh detector and verifies the verdict stream from
// k onward is identical to the uninterrupted run's.
func TestSnapshotResumeEquivalence(t *testing.T) {
	events := snapEvents(t, 41)
	k := len(events) / 2

	full, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	enrFull := detector.NewEnricher(iprep.BuildFeed())
	var want []detector.Verdict
	for i := range events {
		var req detector.Request
		enrFull.EnrichInto(&req, events[i].Entry)
		v := full.Inspect(&req)
		if i >= k {
			want = append(want, v)
		}
	}

	head, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	enr := detector.NewEnricher(iprep.BuildFeed())
	for i := 0; i < k; i++ {
		var req detector.Request
		enr.EnrichInto(&req, events[i].Entry)
		head.Inspect(&req)
	}
	w := statecodec.NewWriter()
	head.SnapshotInto(w)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	tail, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tail.RestoreFrom(statecodec.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if tail.Clients() != head.Clients() {
		t.Fatalf("restored %d clients, had %d", tail.Clients(), head.Clients())
	}
	for i := k; i < len(events); i++ {
		var req detector.Request
		enr.EnrichInto(&req, events[i].Entry)
		got := tail.Inspect(&req)
		if got != want[i-k] {
			t.Fatalf("verdict %d diverged after resume: got %+v, want %+v", i, got, want[i-k])
		}
	}
}

// TestSnapshotDeterministicBytes pins the codec guarantee: the same
// detector state serialises to the same bytes, run to run.
func TestSnapshotDeterministicBytes(t *testing.T) {
	events := snapEvents(t, 42)
	build := func() []byte {
		d, err := New(Config{})
		if err != nil {
			t.Fatal(err)
		}
		enr := detector.NewEnricher(iprep.BuildFeed())
		for i := range events {
			var req detector.Request
			enr.EnrichInto(&req, events[i].Entry)
			d.Inspect(&req)
		}
		w := statecodec.NewWriter()
		d.SnapshotInto(w)
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), w.Bytes()...)
	}
	if string(build()) != string(build()) {
		t.Error("identical replays snapshotted to different bytes")
	}
}

// TestRestoreRejectsCorruptSnapshot fuzz-adjacent sanity: truncations of
// a real snapshot must error, never panic, and leave an empty store.
func TestRestoreRejectsCorruptSnapshot(t *testing.T) {
	events := snapEvents(t, 43)
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	enr := detector.NewEnricher(iprep.BuildFeed())
	for i := 0; i < 500; i++ {
		var req detector.Request
		enr.EnrichInto(&req, events[i].Entry)
		d.Inspect(&req)
	}
	w := statecodec.NewWriter()
	d.SnapshotInto(w)
	for cut := 0; cut < w.Len(); cut += 7 {
		fresh, err := New(Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.RestoreFrom(statecodec.NewReader(w.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if fresh.Clients() != 0 {
			t.Fatalf("failed restore left %d clients", fresh.Clients())
		}
	}
}
