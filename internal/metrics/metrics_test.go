package metrics

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("requests_total", "Requests seen.")
	g := r.MustGauge("live_sessions", "Live sessions.")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}

	out := string(r.AppendPrometheus(nil))
	for _, want := range []string{
		"# HELP requests_total Requests seen.",
		"# TYPE requests_total counter",
		"requests_total 5",
		"# TYPE live_sessions gauge",
		"live_sessions 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelsAndFuncInstruments(t *testing.T) {
	r := NewRegistry()
	blocked := r.MustCounter("actions_total", "Actions taken.", Label{Key: "action", Value: "block"})
	allowed := r.MustCounter("actions_total", "Actions taken.", Label{Key: "action", Value: "allow"})
	var live int64 = 42
	r.MustGaugeFunc("engine_clients", "Clients holding state.", func() int64 { return live })
	r.MustCounterFunc("sweeps_total", "Sweeps run.", func() uint64 { return 3 })

	blocked.Add(2)
	allowed.Add(9)
	out := string(r.AppendPrometheus(nil))
	for _, want := range []string{
		`actions_total{action="block"} 2`,
		`actions_total{action="allow"} 9`,
		"engine_clients 42",
		"sweeps_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One family header for the two labelled series.
	if n := strings.Count(out, "# TYPE actions_total counter"); n != 1 {
		t.Errorf("actions_total TYPE header appears %d times, want 1", n)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.MustHistogram("latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 5.555; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	out := string(r.AppendPrometheus(nil))
	for _, want := range []string{
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		"latency_seconds_sum 5.555",
		"latency_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.MustHistogram("h", "", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive, Prometheus semantics
	out := string(r.AppendPrometheus(nil))
	if !strings.Contains(out, `h_bucket{le="1"} 1`) {
		t.Errorf("boundary observation not in inclusive bucket:\n%s", out)
	}
}

func TestJSONEncodingIsValid(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("reqs", "", Label{Key: "mode", Value: `sh"ard`})
	c.Add(11)
	h := r.MustHistogram("lat", "", []float64{0.5})
	h.Observe(0.25)
	h.Observe(2)

	raw := r.AppendJSON(nil)
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("invalid JSON %s: %v", raw, err)
	}
	if v, ok := m[`reqs{mode="sh\"ard"}`]; !ok || v.(float64) != 11 {
		t.Errorf("labelled counter missing or wrong: %v (json: %s)", m, raw)
	}
	hist, ok := m["lat"].(map[string]any)
	if !ok {
		t.Fatalf("histogram missing: %s", raw)
	}
	if hist["count"].(float64) != 2 {
		t.Errorf("histogram count = %v", hist["count"])
	}
}

func TestHandlerServesBothFormats(t *testing.T) {
	r := NewRegistry()
	r.MustCounter("up", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, res)
	if !strings.Contains(body, "up 1") {
		t.Errorf("prometheus body missing sample: %s", body)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}

	res, err = srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, res)
	if !strings.Contains(body, `"up":1`) {
		t.Errorf("json body missing sample: %s", body)
	}
}

func readAll(t *testing.T, res *http.Response) string {
	t.Helper()
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestMustPanicsOnBadRegistration(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"invalid name", func(r *Registry) { r.MustCounter("9bad", "") }},
		{"invalid label", func(r *Registry) { r.MustCounter("ok", "", Label{Key: "0x", Value: "v"}) }},
		{"duplicate", func(r *Registry) { r.MustCounter("dup", ""); r.MustCounter("dup", "") }},
		{"kind clash", func(r *Registry) {
			r.MustCounter("clash", "", Label{Key: "a", Value: "1"})
			r.MustGauge("clash", "", Label{Key: "a", Value: "2"})
		}},
		{"empty histogram", func(r *Registry) { r.MustHistogram("h", "", nil) }},
		{"unsorted bounds", func(r *Registry) { r.MustHistogram("h", "", []float64{2, 1}) }},
		{"nil func", func(r *Registry) { r.MustGaugeFunc("g", "", nil) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		}()
	}
}

func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("c", "")
	h := r.MustHistogram("h", "", []float64{1, 10})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 20))
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []byte
			for j := 0; j < 100; j++ {
				buf = r.AppendPrometheus(buf[:0])
			}
		}()
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Errorf("counter = %d, want 4000", c.Value())
	}
	if h.Count() != 4000 {
		t.Errorf("histogram count = %d, want 4000", h.Count())
	}
}

// The scrape path must not become a garbage source on a long-lived guard:
// once the reused buffer has grown, encoding a registry representative of
// the live guard's (labelled counters, func gauges, a histogram) performs
// zero allocations in both formats, and the instrument update path none
// either.
func TestEncoderZeroAllocs(t *testing.T) {
	r := NewRegistry()
	for _, a := range []string{"allow", "tarpit", "challenge", "block"} {
		r.MustCounter("guard_actions_total", "Actions.", Label{Key: "action", Value: a}).Add(3)
	}
	r.MustGaugeFunc("guard_shards", "Shards.", func() int64 { return 8 })
	h := r.MustHistogram("guard_latency_seconds", "Latency.",
		[]float64{0.001, 0.01, 0.1, 1})
	h.Observe(0.004)

	var buf []byte
	buf = r.AppendPrometheus(buf[:0]) // grow once
	if allocs := testing.AllocsPerRun(200, func() {
		buf = r.AppendPrometheus(buf[:0])
	}); allocs != 0 {
		t.Errorf("AppendPrometheus allocates %.1f/op, want 0", allocs)
	}
	buf = r.AppendJSON(buf[:0])
	if allocs := testing.AllocsPerRun(200, func() {
		buf = r.AppendJSON(buf[:0])
	}); allocs != 0 {
		t.Errorf("AppendJSON allocates %.1f/op, want 0", allocs)
	}
	c := r.MustCounter("hot", "")
	if allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		h.Observe(0.02)
	}); allocs != 0 {
		t.Errorf("update path allocates %.1f/op, want 0", allocs)
	}
}
