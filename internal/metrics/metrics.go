// Package metrics is the observability surface of the live system: a
// small, dependency-free instrument set (counters, gauges, histograms and
// read-only callback gauges) collected in a Registry that encodes to the
// Prometheus text exposition format and to JSON.
//
// The design target is a long-running guard serving heavy traffic, so
// both halves of the API are allocation-free in steady state:
//
//   - Update side: every instrument is one or a few atomics. Counter.Add,
//     Gauge.Set and Histogram.Observe never allocate and never take a
//     lock, so they can sit directly on the request hot path.
//
//   - Scrape side: all metric names, label sets and histogram bucket
//     prefixes are serialised once at registration; an encode pass only
//     appends those pre-built byte slices and strconv-formatted values
//     into a reused buffer. After the first scrape has grown the buffer,
//     AppendPrometheus and AppendJSON perform zero allocations — guarded
//     by an alloc-regression test, because a scraper polling every few
//     seconds for weeks must not become a garbage source.
//
// Registration is expected at construction time (Must* helpers panic on
// invalid or duplicate names, like expvar); updates and scrapes may then
// proceed concurrently from any goroutine.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 metric (live session counts, queue depths,
// shard counts). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets with cumulative
// Prometheus semantics ("le" upper bounds) plus a running sum. Bounds are
// fixed at registration; Observe is a binary search plus two atomic adds,
// allocation- and lock-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the implicit +Inf bucket is
	// index len(bounds).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Label is one name="value" pair attached to an instrument.
type Label struct {
	Key, Value string
}

// kind is the Prometheus metric type of a family.
type kind uint8

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
)

var kindNames = [...]string{"", "counter", "gauge", "histogram"}

// instrument is one sample series inside a family: the precomputed sample
// prefix plus a read function. read must be cheap and allocation-free.
type instrument struct {
	// promPrefix is `name{labels} ` (or `name ` unlabelled), ready to
	// append before the value.
	promPrefix []byte
	// jsonKey is the JSON object key (full sample name), quoted.
	jsonKey []byte
	// readInt reads the value for counter/gauge kinds.
	readInt func() int64
	// hist, for histogram kind, is the backing histogram; bucketPrefixes
	// align with hist.buckets (the +Inf bucket last).
	hist           *Histogram
	bucketPrefixes [][]byte
	sumPrefix      []byte
	countPrefix    []byte
}

// family groups the instruments sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	header []byte // "# HELP ...\n# TYPE ...\n"
	series []*instrument
}

// Registry holds an ordered set of metric families and encodes them. The
// zero value is unusable; construct with NewRegistry. Registration and
// encoding lock internally; instrument updates never do.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	seen     map[string]bool // full sample names, for duplicate detection
	buf      []byte          // reused encode buffer for the Write* forms
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}, seen: map[string]bool{}}
}

// MustCounter registers and returns a counter. It panics on an invalid or
// duplicate name+labels combination — metric registration is programmer
// intent, not runtime input.
func (r *Registry) MustCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	inst := &instrument{readInt: func() int64 { return int64(c.v.Load()) }}
	r.mustRegister(name, help, kindCounter, inst, labels)
	return c
}

// MustGauge registers and returns a settable gauge.
func (r *Registry) MustGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	inst := &instrument{readInt: func() int64 { return g.v.Load() }}
	r.mustRegister(name, help, kindGauge, inst, labels)
	return g
}

// MustGaugeFunc registers a read-only gauge backed by fn, the bridge to
// state that already has its own source of truth (an atomic counter on a
// guard shard, a store's Len). fn is called on every scrape under the
// registry lock; it must be cheap, allocation-free and safe to call
// concurrently with the rest of the program.
func (r *Registry) MustGaugeFunc(name, help string, fn func() int64, labels ...Label) {
	if fn == nil {
		panic("metrics: MustGaugeFunc requires a read function")
	}
	r.mustRegister(name, help, kindGauge, &instrument{readInt: fn}, labels)
}

// MustCounterFunc registers a read-only counter backed by fn; same
// contract as MustGaugeFunc, for values that only grow.
func (r *Registry) MustCounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if fn == nil {
		panic("metrics: MustCounterFunc requires a read function")
	}
	r.mustRegister(name, help, kindCounter, &instrument{readInt: func() int64 { return int64(fn()) }}, labels)
}

// MustHistogram registers and returns a histogram with the given ascending
// bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) MustHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("metrics: histogram %s bounds must ascend (bound %d)", name, i))
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	inst := &instrument{hist: h}
	r.mustRegister(name, help, kindHistogram, inst, labels)
	return h
}

// mustRegister validates and wires an instrument into its family.
func (r *Registry) mustRegister(name, help string, k kind, inst *instrument, labels []Label) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("metrics: metric %s: invalid label name %q", name, l.Key))
		}
	}
	// Stable label order makes the sample identity canonical.
	labels = append([]Label(nil), labels...)
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })

	sample := sampleName(name, labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[sample] {
		panic(fmt.Sprintf("metrics: duplicate registration of %s", sample))
	}
	r.seen[sample] = true

	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k}
		f.header = appendHeader(nil, name, help, k)
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != k {
		panic(fmt.Sprintf("metrics: metric %s registered as both %s and %s",
			name, kindNames[f.kind], kindNames[k]))
	}

	inst.jsonKey = appendJSONString(nil, sample)
	if k == kindHistogram {
		h := inst.hist
		inst.bucketPrefixes = make([][]byte, len(h.buckets))
		for i := range h.bounds {
			inst.bucketPrefixes[i] = samplePrefix(name+"_bucket", withLE(labels, h.bounds[i], false))
		}
		inst.bucketPrefixes[len(h.bounds)] = samplePrefix(name+"_bucket", withLE(labels, 0, true))
		inst.sumPrefix = samplePrefix(name+"_sum", labels)
		inst.countPrefix = samplePrefix(name+"_count", labels)
	} else {
		inst.promPrefix = samplePrefix(name, labels)
	}
	f.series = append(f.series, inst)
}

// withLE appends the le label (Prometheus bucket bound) to a label set.
func withLE(labels []Label, bound float64, inf bool) []Label {
	v := "+Inf"
	if !inf {
		v = formatFloat(bound)
	}
	out := append(append([]Label(nil), labels...), Label{Key: "le", Value: v})
	return out
}

// validName enforces the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
