package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// Histogram edge cases: observations the IEEE float lattice allows but
// callers never intend. The registry's contract is that no observation,
// however pathological, can break a scrape — the Prometheus text stays
// grammatical (its grammar admits bare NaN/+Inf) and the JSON document
// stays parseable (non-finite sums encode as quoted strings).

func TestHistogramNonFiniteObservations(t *testing.T) {
	r := NewRegistry()
	h := r.MustHistogram("weird_seconds", "Edge-case histogram.", []float64{1, 10})
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(5)

	if got := h.Count(); got != 4 {
		t.Errorf("Count = %d, want 4 (non-finite observations must still count)", got)
	}
	if sum := h.Sum(); !math.IsNaN(sum) {
		t.Errorf("Sum = %v, want NaN (poisoned visibly, not silently dropped)", sum)
	}

	page := string(r.AppendPrometheus(nil))
	// NaN compares false with every bound, so it lands in the +Inf
	// bucket; -Inf is <= every bound, so it lands in the first.
	for _, want := range []string{
		`weird_seconds_bucket{le="1"} 1`,    // -Inf
		`weird_seconds_bucket{le="10"} 2`,   // cumulative: -Inf, 5
		`weird_seconds_bucket{le="+Inf"} 4`, // all of them
		"weird_seconds_sum NaN",
		"weird_seconds_count 4",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("prometheus page missing %q:\n%s", want, page)
		}
	}
}

func TestJSONSurvivesNonFiniteSums(t *testing.T) {
	r := NewRegistry()
	nan := r.MustHistogram("nan_hist", "", []float64{1}, Label{Key: "k", Value: "n"})
	pos := r.MustHistogram("inf_hist", "", []float64{1}, Label{Key: "k", Value: "p"})
	neg := r.MustHistogram("inf_hist", "", []float64{1}, Label{Key: "k", Value: "m"})
	nan.Observe(math.NaN())
	pos.Observe(math.Inf(1))
	neg.Observe(math.Inf(-1))

	raw := r.AppendJSON(nil)
	var doc map[string]struct {
		Count   uint64   `json:"count"`
		Sum     any      `json:"sum"`
		Buckets []uint64 `json:"buckets"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("JSON page unparseable with non-finite sums: %v\n%s", err, raw)
	}
	for key, wantSum := range map[string]string{
		`nan_hist{k="n"}`: "NaN",
		`inf_hist{k="p"}`: "+Inf",
		`inf_hist{k="m"}`: "-Inf",
	} {
		got, ok := doc[key]
		if !ok {
			t.Errorf("JSON page missing %q:\n%s", key, raw)
			continue
		}
		if got.Sum != wantSum {
			t.Errorf("%s sum = %v, want %q", key, got.Sum, wantSum)
		}
		if got.Count != 1 {
			t.Errorf("%s count = %d, want 1", key, got.Count)
		}
	}
}

// Hostile label values — quotes, backslashes, newlines — must escape
// cleanly in both encoders: the Prometheus page keeps its line grammar
// and the JSON document stays parseable, round-tripping the original
// value.
func TestHostileLabelValues(t *testing.T) {
	hostile := []string{
		`quote"inside`,
		`back\slash`,
		"new\nline",
		`all"three\of` + "\nthem",
	}
	r := NewRegistry()
	for i, v := range hostile {
		c := r.MustCounter("hostile_total", "Counter with hostile labels.",
			Label{Key: "v", Value: v})
		c.Add(uint64(i + 1))
	}

	page := string(r.AppendPrometheus(nil))
	for _, line := range strings.Split(page, "\n") {
		if strings.Count(line, "\n") != 0 {
			t.Fatalf("raw newline survived into a sample line: %q", line)
		}
	}
	for i, want := range []string{
		`hostile_total{v="quote\"inside"} 1`,
		`hostile_total{v="back\\slash"} 2`,
		`hostile_total{v="new\nline"} 3`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("case %d: prometheus page missing %q:\n%s", i, want, page)
		}
	}

	raw := r.AppendJSON(nil)
	var doc map[string]int64
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("JSON page unparseable with hostile labels: %v\n%s", err, raw)
	}
	if len(doc) != len(hostile) {
		t.Fatalf("JSON doc carries %d series, want %d:\n%s", len(doc), len(hostile), raw)
	}
	// The JSON keys reuse the canonical (escaped) sample identity; every
	// hostile value must appear in exactly one key with its value intact.
	for i := range hostile {
		found := false
		for _, v := range doc {
			if v == int64(i+1) {
				found = true
			}
		}
		if !found {
			t.Errorf("series %d missing from JSON doc:\n%s", i, raw)
		}
	}
}

// The escapes themselves, pinned directly.
func TestEscapeLabelValue(t *testing.T) {
	for in, want := range map[string]string{
		`plain`:  `plain`,
		`a"b`:    `a\"b`,
		`a\b`:    `a\\b`,
		"a\nb":   `a\nb`,
		"\\\"\n": `\\\"\n`,
		``:       ``,
	} {
		if got := escapeLabelValue(in); got != want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAppendJSONFloat(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{math.NaN(), `"NaN"`},
		{math.Inf(1), `"+Inf"`},
		{math.Inf(-1), `"-Inf"`},
		{1.5, "1.5"},
		{0, "0"},
	} {
		if got := string(appendJSONFloat(nil, tc.v)); got != tc.want {
			t.Errorf("appendJSONFloat(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
