package metrics

import (
	"math"
	"net/http"
	"strconv"
	"strings"
)

// This file is the scrape side of the registry: Prometheus text and JSON
// encoders built purely from pre-serialised prefixes plus strconv appends,
// so a warm scrape performs no allocations (the buffer has grown to size
// and every byte written comes from an existing slice or a formatted
// number). The Write* forms reuse one internal buffer under the registry
// lock; the Append* forms let callers own the buffer (tests, callers with
// their own pooling).

// sampleName renders the canonical full sample identity, e.g.
// `requests_total{action="block"}`.
func sampleName(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// samplePrefix is sampleName plus the separating space, as bytes ready to
// prepend to a formatted value.
func samplePrefix(name string, labels []Label) []byte {
	return append([]byte(sampleName(name, labels)), ' ')
}

// escapeLabelValue applies the Prometheus label-value escapes.
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// appendHeader renders the # HELP / # TYPE preamble of a family.
func appendHeader(buf []byte, name, help string, k kind) []byte {
	if help != "" {
		buf = append(buf, "# HELP "...)
		buf = append(buf, name...)
		buf = append(buf, ' ')
		buf = append(buf, strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(help)...)
		buf = append(buf, '\n')
	}
	buf = append(buf, "# TYPE "...)
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = append(buf, kindNames[k]...)
	buf = append(buf, '\n')
	return buf
}

// formatFloat renders a float the way the encoder will, for precomputed
// bucket bounds.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// appendJSONString appends a quoted, escaped JSON string. Metric names and
// label values are printable ASCII in practice; the escape set covers the
// characters valid label values can introduce.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			if c < 0x20 {
				const hex = "0123456789abcdef"
				buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
			} else {
				buf = append(buf, c)
			}
		}
	}
	return append(buf, '"')
}

// appendJSONFloat appends a float as a JSON value. JSON has no literal
// for non-finite numbers — strconv's bare NaN/+Inf would make the whole
// document unparseable — so those are encoded as the quoted strings
// "NaN", "+Inf" and "-Inf" (the convention encoding/json users adopt;
// Prometheus text needs no such guard, its grammar admits them bare).
// A histogram fed a NaN observation therefore poisons its sum, visibly,
// without ever breaking the scrape endpoint.
func appendJSONFloat(buf []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(buf, `"NaN"`...)
	case math.IsInf(v, 1):
		return append(buf, `"+Inf"`...)
	case math.IsInf(v, -1):
		return append(buf, `"-Inf"`...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// AppendPrometheus appends the registry's metrics in the Prometheus text
// exposition format and returns the extended buffer. Appending into a
// buffer with sufficient capacity performs no allocations.
func (r *Registry) AppendPrometheus(buf []byte) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.appendPrometheusLocked(buf)
}

func (r *Registry) appendPrometheusLocked(buf []byte) []byte {
	for _, f := range r.families {
		buf = append(buf, f.header...)
		for _, s := range f.series {
			if f.kind == kindHistogram {
				h := s.hist
				var cum uint64
				for i := range h.buckets {
					cum += h.buckets[i].Load()
					buf = append(buf, s.bucketPrefixes[i]...)
					buf = strconv.AppendUint(buf, cum, 10)
					buf = append(buf, '\n')
				}
				buf = append(buf, s.sumPrefix...)
				buf = strconv.AppendFloat(buf, h.Sum(), 'g', -1, 64)
				buf = append(buf, '\n')
				buf = append(buf, s.countPrefix...)
				buf = strconv.AppendUint(buf, h.Count(), 10)
				buf = append(buf, '\n')
				continue
			}
			buf = append(buf, s.promPrefix...)
			buf = strconv.AppendInt(buf, s.readInt(), 10)
			buf = append(buf, '\n')
		}
	}
	return buf
}

// AppendJSON appends the registry's metrics as one JSON object keyed by
// full sample name and returns the extended buffer. Like AppendPrometheus
// it is allocation-free once the buffer has grown.
func (r *Registry) AppendJSON(buf []byte) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.appendJSONLocked(buf)
}

func (r *Registry) appendJSONLocked(buf []byte) []byte {
	buf = append(buf, '{')
	first := true
	for _, f := range r.families {
		for _, s := range f.series {
			if !first {
				buf = append(buf, ',')
			}
			first = false
			buf = append(buf, s.jsonKey...)
			buf = append(buf, ':')
			if f.kind == kindHistogram {
				h := s.hist
				buf = append(buf, `{"count":`...)
				buf = strconv.AppendUint(buf, h.Count(), 10)
				buf = append(buf, `,"sum":`...)
				buf = appendJSONFloat(buf, h.Sum())
				buf = append(buf, `,"buckets":[`...)
				var cum uint64
				for i := range h.buckets {
					if i > 0 {
						buf = append(buf, ',')
					}
					cum += h.buckets[i].Load()
					buf = strconv.AppendUint(buf, cum, 10)
				}
				buf = append(buf, `]}`...)
			} else {
				buf = strconv.AppendInt(buf, s.readInt(), 10)
			}
		}
	}
	return append(buf, '}')
}

// WritePrometheus encodes into the registry's reused buffer and writes it
// to w. The buffer grows to the scrape size once and is then stable, so a
// polling scraper does not generate garbage.
// The lock is held across the Write so concurrent scrapes cannot clobber
// the shared buffer mid-flight; debug scrapers are few and the encoded
// page is small, so the serialisation is invisible in practice.
func (r *Registry) WritePrometheus(w interface{ Write([]byte) (int, error) }) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.appendPrometheusLocked(r.buf[:0])
	_, err := w.Write(r.buf)
	return err
}

// WriteJSON is WritePrometheus for the JSON encoding.
func (r *Registry) WriteJSON(w interface{ Write([]byte) (int, error) }) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.appendJSONLocked(r.buf[:0])
	_, err := w.Write(r.buf)
	return err
}

// Handler returns an http.Handler serving the registry: Prometheus text by
// default, JSON with ?format=json.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
