package diversity

import "sort"

// StatusBreakdown counts alerted requests per HTTP status code for a pair
// of detectors — the structure behind the paper's Tables 3 and 4. The
// "overall" counters include every alert; the "exclusive" counters include
// only requests alerted by exactly one of the two detectors.
type StatusBreakdown struct {
	overallA   map[int]uint64
	overallB   map[int]uint64
	exclusiveA map[int]uint64
	exclusiveB map[int]uint64
}

// NewStatusBreakdown returns empty counters.
func NewStatusBreakdown() *StatusBreakdown {
	return &StatusBreakdown{
		overallA:   make(map[int]uint64, 16),
		overallB:   make(map[int]uint64, 16),
		exclusiveA: make(map[int]uint64, 16),
		exclusiveB: make(map[int]uint64, 16),
	}
}

// Add records one request's status and the two alert decisions.
func (s *StatusBreakdown) Add(status int, aAlert, bAlert bool) {
	if aAlert {
		s.overallA[status]++
		if !bAlert {
			s.exclusiveA[status]++
		}
	}
	if bAlert {
		s.overallB[status]++
		if !aAlert {
			s.exclusiveB[status]++
		}
	}
}

// StatusCount is one row of a per-status table.
type StatusCount struct {
	// Status is the HTTP status code.
	Status int
	// Count is the number of alerted requests with that status.
	Count uint64
}

// OverallA returns detector A's per-status alert counts sorted by
// descending count (the paper's Table 3 ordering).
func (s *StatusBreakdown) OverallA() []StatusCount { return sorted(s.overallA) }

// OverallB returns detector B's per-status alert counts, descending.
func (s *StatusBreakdown) OverallB() []StatusCount { return sorted(s.overallB) }

// ExclusiveA returns per-status counts of requests alerted by A only
// (the paper's Table 4 left half).
func (s *StatusBreakdown) ExclusiveA() []StatusCount { return sorted(s.exclusiveA) }

// ExclusiveB returns per-status counts of requests alerted by B only.
func (s *StatusBreakdown) ExclusiveB() []StatusCount { return sorted(s.exclusiveB) }

func sorted(m map[int]uint64) []StatusCount {
	out := make([]StatusCount, 0, len(m))
	for status, count := range m {
		out = append(out, StatusCount{Status: status, Count: count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Status < out[j].Status
	})
	return out
}
