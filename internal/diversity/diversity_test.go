package diversity

import (
	"math"
	"testing"
	"testing/quick"

	"divscrape/internal/detector"
)

func TestContingencyCells(t *testing.T) {
	var c Contingency
	c.Add(true, true)
	c.Add(true, true)
	c.Add(true, false)
	c.Add(false, true)
	c.Add(false, false)
	if c.Both != 2 || c.AOnly != 1 || c.BOnly != 1 || c.Neither != 1 {
		t.Errorf("cells = %+v", c)
	}
	if c.Total() != 5 {
		t.Errorf("total = %d", c.Total())
	}
	if c.TotalA() != 3 || c.TotalB() != 3 {
		t.Errorf("marginals = %d/%d", c.TotalA(), c.TotalB())
	}

	var d Contingency
	d.Merge(c)
	d.Merge(c)
	if d.Total() != 10 {
		t.Errorf("merged total = %d", d.Total())
	}
}

// Property: cells always sum to the number of Adds, marginals are
// consistent.
func TestContingencyConservationProperty(t *testing.T) {
	f := func(pairs []struct{ A, B bool }) bool {
		var c Contingency
		var a, b uint64
		for _, p := range pairs {
			c.Add(p.A, p.B)
			if p.A {
				a++
			}
			if p.B {
				b++
			}
		}
		return c.Total() == uint64(len(pairs)) && c.TotalA() == a && c.TotalB() == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMeasuresFromContingency(t *testing.T) {
	// Perfect agreement: Q = 1, disagreement 0.
	perfect := Contingency{Both: 50, Neither: 50}
	m := MeasuresFromContingency(perfect)
	if !m.Defined || m.YuleQ != 1 || m.Disagreement != 0 {
		t.Errorf("perfect agreement: %+v", m)
	}
	// Perfect complementarity: Q = -1, disagreement 1.
	complement := Contingency{AOnly: 50, BOnly: 50}
	m2 := MeasuresFromContingency(complement)
	if !m2.Defined || m2.YuleQ != -1 || m2.Disagreement != 1 {
		t.Errorf("perfect complement: %+v", m2)
	}
	// Independence: ad == bc → Q = 0.
	indep := Contingency{Both: 10, Neither: 10, AOnly: 10, BOnly: 10}
	m3 := MeasuresFromContingency(indep)
	if !m3.Defined || m3.YuleQ != 0 {
		t.Errorf("independence: %+v", m3)
	}
	// Empty: undefined, zeros.
	m4 := MeasuresFromContingency(Contingency{})
	if m4.Defined || m4.YuleQ != 0 {
		t.Errorf("empty: %+v", m4)
	}
	// All in one agreeing cell: denominator zero → undefined Q.
	m5 := MeasuresFromContingency(Contingency{Both: 10})
	if m5.Defined {
		t.Errorf("degenerate table claims defined Q: %+v", m5)
	}
}

func TestCorrectnessTable(t *testing.T) {
	var ct CorrectnessTable
	// A correct alert by both on malicious traffic.
	ct.Add(true, true, true)
	// Both wrong: alert on benign.
	ct.Add(true, true, false)
	// A right (no alert on benign), B wrong (alert on benign).
	ct.Add(false, true, false)
	// A wrong (missed), B right (caught).
	ct.Add(false, true, true)
	if ct.BothCorrect != 1 || ct.BothWrong != 1 || ct.AOnlyCorrect != 1 || ct.BOnlyCorrect != 1 {
		t.Errorf("cells = %+v", ct)
	}
	if ct.Total() != 4 {
		t.Errorf("total = %d", ct.Total())
	}
	m := MeasuresFromCorrectness(ct)
	if m.DoubleFault != 0.25 || m.Disagreement != 0.5 {
		t.Errorf("measures = %+v", m)
	}
	if MeasuresFromCorrectness(CorrectnessTable{}).Defined {
		t.Error("empty table claims defined Q")
	}
}

func TestYuleQRange(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		m := MeasuresFromContingency(Contingency{
			Both: uint64(a), AOnly: uint64(b), BOnly: uint64(c), Neither: uint64(d),
		})
		if !m.Defined {
			return true
		}
		return m.YuleQ >= -1-1e-12 && m.YuleQ <= 1+1e-12 &&
			m.Disagreement >= 0 && m.Disagreement <= 1 &&
			m.DoubleFault >= 0 && m.DoubleFault <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestByArchetype(t *testing.T) {
	b := NewByArchetype()
	b.Add(detector.ArchetypeHuman, false, false)
	b.Add(detector.ArchetypeHuman, true, false)
	b.Add(detector.ArchetypeScraperNaive, true, true)

	human := b.Table(detector.ArchetypeHuman)
	if human.Total() != 2 || human.AOnly != 1 || human.Neither != 1 {
		t.Errorf("human table = %+v", human)
	}
	missing := b.Table(detector.ArchetypeMonitor)
	if missing.Total() != 0 {
		t.Error("absent archetype should be a zero table")
	}
	overall := b.Overall()
	if overall.Total() != 3 || overall.Both != 1 {
		t.Errorf("overall = %+v", overall)
	}
}

func TestStatusBreakdown(t *testing.T) {
	s := NewStatusBreakdown()
	// 200: both alert ×3; A only ×1.
	for i := 0; i < 3; i++ {
		s.Add(200, true, true)
	}
	s.Add(200, true, false)
	// 302: B only ×2.
	s.Add(302, false, true)
	s.Add(302, false, true)
	// 404: nobody alerts — must not appear anywhere.
	s.Add(404, false, false)

	oa := s.OverallA()
	if len(oa) != 1 || oa[0].Status != 200 || oa[0].Count != 4 {
		t.Errorf("OverallA = %+v", oa)
	}
	ob := s.OverallB()
	if len(ob) != 2 || ob[0].Status != 200 || ob[0].Count != 3 || ob[1].Status != 302 {
		t.Errorf("OverallB = %+v", ob)
	}
	ea := s.ExclusiveA()
	if len(ea) != 1 || ea[0].Count != 1 {
		t.Errorf("ExclusiveA = %+v", ea)
	}
	eb := s.ExclusiveB()
	if len(eb) != 1 || eb[0].Status != 302 || eb[0].Count != 2 {
		t.Errorf("ExclusiveB = %+v", eb)
	}
}

func TestStatusBreakdownOrdering(t *testing.T) {
	s := NewStatusBreakdown()
	for i := 0; i < 5; i++ {
		s.Add(302, true, false)
	}
	for i := 0; i < 9; i++ {
		s.Add(200, true, false)
	}
	s.Add(500, true, false)
	s.Add(404, true, false) // ties with 500 at count 1: lower status first
	got := s.OverallA()
	wantOrder := []int{200, 302, 404, 500}
	for i, w := range wantOrder {
		if got[i].Status != w {
			t.Fatalf("order = %+v, want statuses %v", got, wantOrder)
		}
	}
}

// Property: per-status exclusive counts never exceed overall counts, and
// summing overall counts reproduces the contingency marginals.
func TestStatusBreakdownConsistencyProperty(t *testing.T) {
	f := func(events []struct {
		Status uint8
		A, B   bool
	}) bool {
		s := NewStatusBreakdown()
		var c Contingency
		for _, e := range events {
			status := 200 + int(e.Status)%300
			s.Add(status, e.A, e.B)
			c.Add(e.A, e.B)
		}
		sum := func(rows []StatusCount) uint64 {
			var total uint64
			for _, r := range rows {
				total += r.Count
			}
			return total
		}
		if sum(s.OverallA()) != c.TotalA() || sum(s.OverallB()) != c.TotalB() {
			return false
		}
		if sum(s.ExclusiveA()) != c.AOnly || sum(s.ExclusiveB()) != c.BOnly {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeasuresNaNFree(t *testing.T) {
	for _, m := range []Measures{
		MeasuresFromContingency(Contingency{}),
		MeasuresFromContingency(Contingency{Both: 1}),
		MeasuresFromCorrectness(CorrectnessTable{BothWrong: 3}),
	} {
		if math.IsNaN(m.YuleQ) || math.IsNaN(m.Disagreement) || math.IsNaN(m.DoubleFault) {
			t.Errorf("NaN in %+v", m)
		}
	}
}

func TestMcNemar(t *testing.T) {
	// No discordant pairs: no evidence of a difference.
	m := McNemarFromCorrectness(CorrectnessTable{BothCorrect: 100, BothWrong: 5})
	if m.Statistic != 0 || m.PValue != 1 || m.Discordant != 0 {
		t.Errorf("concordant-only table: %+v", m)
	}
	// Symmetric discordance: statistic near zero, p near 1.
	sym := McNemarFromCorrectness(CorrectnessTable{AOnlyCorrect: 50, BOnlyCorrect: 50})
	if sym.PValue < 0.9 {
		t.Errorf("symmetric discordance p = %g, want ~1", sym.PValue)
	}
	// Heavy asymmetry: significant.
	asym := McNemarFromCorrectness(CorrectnessTable{AOnlyCorrect: 90, BOnlyCorrect: 10})
	if asym.PValue > 1e-10 {
		t.Errorf("90:10 asymmetry p = %g, want tiny", asym.PValue)
	}
	if asym.Statistic <= sym.Statistic {
		t.Error("asymmetry should increase the statistic")
	}
	// Hand-checked value: b=25, c=10 → (|15|-1)²/35 = 196/35 = 5.6.
	hand := McNemarFromCorrectness(CorrectnessTable{AOnlyCorrect: 25, BOnlyCorrect: 10})
	if math.Abs(hand.Statistic-5.6) > 1e-9 {
		t.Errorf("statistic = %g, want 5.6", hand.Statistic)
	}
	if hand.PValue > 0.025 || hand.PValue < 0.01 {
		t.Errorf("p-value = %g, want ~0.018", hand.PValue)
	}
	// P-values always in [0, 1].
	for _, b := range []uint64{0, 1, 5, 1000} {
		for _, c := range []uint64{0, 1, 7, 2000} {
			m := McNemarFromCorrectness(CorrectnessTable{AOnlyCorrect: b, BOnlyCorrect: c})
			if m.PValue < 0 || m.PValue > 1 {
				t.Fatalf("p out of range for b=%d c=%d: %g", b, c, m.PValue)
			}
		}
	}
}
