package diversity

import "math"

// McNemar is the McNemar test over a pair of detectors' discordant
// decisions: given how often exactly one tool is correct (the b and c
// cells of the correctness table), it asks whether the two tools'
// error rates differ significantly or the observed asymmetry is chance.
// This is the standard significance test for comparing two classifiers
// on paired data — the statistical footing the paper's next-step
// analysis would need before declaring one tool better.
type McNemar struct {
	// Statistic is the continuity-corrected chi-squared statistic
	// (|b-c|-1)²/(b+c), 0 when there are no discordant pairs.
	Statistic float64
	// PValue is the two-sided p-value under the chi-squared distribution
	// with one degree of freedom.
	PValue float64
	// Discordant is b+c, the number of requests exactly one tool judged
	// correctly.
	Discordant uint64
}

// McNemarFromCorrectness computes the test from a labelled agreement
// table.
func McNemarFromCorrectness(t CorrectnessTable) McNemar {
	return mcnemar(t.AOnlyCorrect, t.BOnlyCorrect)
}

func mcnemar(b, c uint64) McNemar {
	m := McNemar{Discordant: b + c}
	if m.Discordant == 0 {
		m.PValue = 1
		return m
	}
	diff := math.Abs(float64(b) - float64(c))
	// Edwards' continuity correction; clamp at zero for tiny asymmetries.
	adj := diff - 1
	if adj < 0 {
		adj = 0
	}
	m.Statistic = adj * adj / float64(m.Discordant)
	m.PValue = chiSquared1Survival(m.Statistic)
	return m
}

// chiSquared1Survival returns P(X >= x) for X ~ chi-squared with one
// degree of freedom, via the complementary error function:
// P = erfc(sqrt(x/2)).
func chiSquared1Survival(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Erfc(math.Sqrt(x / 2))
}
