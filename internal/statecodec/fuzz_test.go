package statecodec_test

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"divscrape/internal/cluster"
	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/mitigate"
	"divscrape/internal/statecodec"
	"divscrape/internal/trajectory"
	"divscrape/internal/workload"
)

// typedDecodeError reports whether err is one of the codec's documented
// failure modes — the only errors hostile bytes are allowed to produce.
func typedDecodeError(err error) bool {
	var ve *statecodec.VersionError
	return errors.Is(err, statecodec.ErrCorrupt) ||
		errors.Is(err, statecodec.ErrBadMagic) ||
		errors.Is(err, statecodec.ErrChecksum) ||
		errors.As(err, &ve)
}

// deltaSeeds builds realistic cluster delta frames — the frames a peer
// actually puts on the wire — so the fuzzer starts from the newest
// production encoding rather than rediscovering its shape.
func deltaSeeds(f *testing.F) [][]byte {
	f.Helper()
	base := time.Unix(1520700000, 0)
	full := &cluster.Delta{
		From:         "node-a:9301",
		Seq:          7,
		SentUnixNano: base.UnixNano(),
		Kind:         cluster.DeltaFull,
		Ladders: []mitigate.ClientDigest{
			{Key: "203.0.113.7", Score: 3.1, Level: mitigate.Block,
				Challenged: 9, PassUntil: base.Add(time.Hour), LastSeen: base},
		},
		Overlay: []iprep.TempEntry{
			{Prefix: iprep.MustCIDR("198.51.100.0/24"), Cat: iprep.KnownScraper,
				Until: base.Add(30 * time.Minute)},
		},
		Sessions: []cluster.SessionDigest{
			{Side: cluster.SideArcane, IP: 0xCB007107, UAHash: 0x9E3779B97F4A7C15,
				LastSeen: base.UnixNano()},
		},
	}
	heartbeat := &cluster.Delta{From: "node-b:9302", Seq: 1, Kind: cluster.DeltaIncremental}
	var seeds [][]byte
	for _, d := range []*cluster.Delta{full, heartbeat} {
		frame, err := d.EncodeFrame()
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, frame)
	}
	return seeds
}

// trajectorySeeds serialises a warmed trajectory-detector snapshot — the
// newest detector frame the codec carries (tag 0x544A, nested per-session
// blocks) — so the fuzzer mutates the production layout rather than
// rediscovering it.
func trajectorySeeds(f *testing.F) [][]byte {
	f.Helper()
	gen, err := workload.NewGenerator(workload.Config{Seed: 77, Duration: 45 * time.Minute})
	if err != nil {
		f.Fatal(err)
	}
	events, err := gen.Generate()
	if err != nil {
		f.Fatal(err)
	}
	d, err := trajectory.New(trajectory.Config{})
	if err != nil {
		f.Fatal(err)
	}
	enr := detector.NewEnricher(iprep.BuildFeed())
	var req detector.Request
	var v detector.Verdict
	for i := range events {
		enr.EnrichInto(&req, events[i].Entry)
		d.InspectInto(&req, &v)
	}
	w := statecodec.NewWriter()
	d.SnapshotInto(w)
	var buf bytes.Buffer
	if err := statecodec.Encode(&buf, w); err != nil {
		f.Fatal(err)
	}
	return [][]byte{buf.Bytes()}
}

// FuzzDecode feeds arbitrary bytes through the container decoder and, when
// a frame validates, drains the payload with every primitive in rotation.
// The invariant under fuzz: corrupt or truncated input returns an error —
// it never panics, never spins, and never allocates beyond the input size.
func FuzzDecode(f *testing.F) {
	// Seed with a well-formed frame, near-miss corruptions of it, and the
	// trivially broken inputs.
	w := statecodec.NewWriter()
	w.Tag(0x0101)
	w.Uint64(42)
	w.String("seed")
	w.Time(time.Unix(1520700000, 0))
	w.Float64(2.5)
	var good bytes.Buffer
	if err := statecodec.Encode(&good, w); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	for _, cut := range []int{0, 4, 13, 14, good.Len() - 1} {
		f.Add(good.Bytes()[:cut])
	}
	flipped := bytes.Clone(good.Bytes())
	flipped[5] ^= 0x40 // version byte
	f.Add(flipped)
	f.Add([]byte("DVSC"))
	f.Add([]byte{})
	// Cluster delta frames: the newest — and most structured — production
	// payload this codec carries, plus truncated and bit-flipped variants.
	for _, frame := range deltaSeeds(f) {
		f.Add(frame)
		f.Add(frame[:len(frame)/2])
		mut := bytes.Clone(frame)
		mut[len(mut)/3] ^= 0x80
		f.Add(mut)
	}
	// Trajectory detector snapshots: the session-store frame the third
	// detector adds, with truncated and bit-flipped variants.
	for _, frame := range trajectorySeeds(f) {
		f.Add(frame)
		f.Add(frame[:len(frame)/2])
		mut := bytes.Clone(frame)
		mut[2*len(mut)/3] ^= 0x08
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := statecodec.Decode(bytes.NewReader(data))
		if err != nil {
			if !typedDecodeError(err) {
				t.Fatalf("Decode returned untyped error %v", err)
			}
			return
		}
		// Frame validated: drain the payload through every read shape.
		// Whatever the bytes, reads must terminate with either clean EOF
		// or a sticky ErrCorrupt.
		for r.Err() == nil && r.Remaining() > 0 {
			r.Uint8()
			r.Uint16()
			r.Uint32()
			r.Uint64()
			r.Bool()
			r.Float64()
			_ = r.String()
			r.Time()
			r.Duration()
			r.Count(16)
			_ = r.Expect(0x0101)
		}
		if err := r.Err(); err != nil && !errors.Is(err, statecodec.ErrCorrupt) {
			t.Fatalf("Reader failed with untyped error %v", err)
		}
	})
}

// FuzzDecodeDelta aims arbitrary bytes at the full cluster frame decoder
// — container validation plus the delta's own structural checks. Hostile
// peers get exactly two outcomes: a valid Delta or a typed error. Never
// a panic, never an unchecked out-of-range field.
func FuzzDecodeDelta(f *testing.F) {
	for _, frame := range deltaSeeds(f) {
		f.Add(frame)
		for _, cut := range []int{4, 14, len(frame) / 2, len(frame) - 1} {
			if cut >= 0 && cut < len(frame) {
				f.Add(frame[:cut])
			}
		}
		mut := bytes.Clone(frame)
		mut[len(mut)-3] ^= 0x01 // inside the checksum trailer
		f.Add(mut)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := cluster.DecodeFrame(data)
		if err != nil {
			if !typedDecodeError(err) {
				t.Fatalf("DecodeFrame returned untyped error %v", err)
			}
			return
		}
		// A frame that validated must also re-encode: the decoded form is
		// structurally sound, not just parseable.
		if d.Kind != cluster.DeltaIncremental && d.Kind != cluster.DeltaFull {
			t.Fatalf("decoded delta with invalid kind %d", d.Kind)
		}
		for _, l := range d.Ladders {
			if l.Level > mitigate.Block {
				t.Fatalf("decoded ladder rung %d out of range", l.Level)
			}
		}
		for _, e := range d.Overlay {
			if e.Prefix.Bits < 0 || e.Prefix.Bits > 32 {
				t.Fatalf("decoded prefix length %d out of range", e.Prefix.Bits)
			}
		}
		if _, err := d.EncodeFrame(); err != nil {
			t.Fatalf("validated delta failed to re-encode: %v", err)
		}
	})
}

// FuzzRoundTrip drives the primitive layer with fuzzed values and asserts
// exact round-trips through a framed container, including the checksum.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(0), false, 0.0, "", int64(0))
	f.Add(uint64(math.MaxUint64), int64(math.MinInt64), true, math.Inf(1), "scraper", int64(1520700000123456789))
	f.Add(uint64(1), int64(-1), false, math.NaN(), "\x00\xff", int64(-62135596800))

	f.Fuzz(func(t *testing.T, u uint64, i int64, b bool, fl float64, s string, unixNano int64) {
		w := statecodec.NewWriter()
		w.Uint64(u)
		w.Int64(i)
		w.Bool(b)
		w.Float64(fl)
		w.String(s)
		ts := time.Unix(unixNano/1e9, unixNano%1e9)
		w.Time(ts)

		var buf bytes.Buffer
		if err := statecodec.Encode(&buf, w); err != nil {
			t.Fatal(err)
		}
		r, err := statecodec.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("Decode of freshly encoded frame: %v", err)
		}
		if got := r.Uint64(); got != u {
			t.Errorf("Uint64 = %d, want %d", got, u)
		}
		if got := r.Int64(); got != i {
			t.Errorf("Int64 = %d, want %d", got, i)
		}
		if got := r.Bool(); got != b {
			t.Errorf("Bool = %v, want %v", got, b)
		}
		if got := math.Float64bits(r.Float64()); got != math.Float64bits(fl) {
			t.Errorf("Float64 bits = %#x, want %#x", got, math.Float64bits(fl))
		}
		if got := r.String(); got != s {
			t.Errorf("String = %q, want %q", got, s)
		}
		if got := r.Time(); !got.Equal(ts) {
			t.Errorf("Time = %v, want %v", got, ts)
		}
		if err := r.Err(); err != nil {
			t.Fatalf("round-trip reader failed: %v", err)
		}
		if r.Remaining() != 0 {
			t.Errorf("Remaining = %d after full drain", r.Remaining())
		}
	})
}
