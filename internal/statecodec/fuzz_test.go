package statecodec

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"
)

// FuzzDecode feeds arbitrary bytes through the container decoder and, when
// a frame validates, drains the payload with every primitive in rotation.
// The invariant under fuzz: corrupt or truncated input returns an error —
// it never panics, never spins, and never allocates beyond the input size.
func FuzzDecode(f *testing.F) {
	// Seed with a well-formed frame, near-miss corruptions of it, and the
	// trivially broken inputs.
	w := NewWriter()
	w.Tag(0x0101)
	w.Uint64(42)
	w.String("seed")
	w.Time(time.Unix(1520700000, 0))
	w.Float64(2.5)
	var good bytes.Buffer
	if err := Encode(&good, w); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	for _, cut := range []int{0, 4, 13, 14, good.Len() - 1} {
		f.Add(good.Bytes()[:cut])
	}
	flipped := bytes.Clone(good.Bytes())
	flipped[5] ^= 0x40 // version byte
	f.Add(flipped)
	f.Add([]byte("DVSC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Decode(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("Decode returned untyped error %v", err)
			}
			return
		}
		// Frame validated: drain the payload through every read shape.
		// Whatever the bytes, reads must terminate with either clean EOF
		// or a sticky ErrCorrupt.
		for r.Err() == nil && r.Remaining() > 0 {
			r.Uint8()
			r.Uint16()
			r.Uint32()
			r.Uint64()
			r.Bool()
			r.Float64()
			_ = r.String()
			r.Time()
			r.Duration()
			r.Count(16)
			_ = r.Expect(0x0101)
		}
		if err := r.Err(); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Reader failed with untyped error %v", err)
		}
	})
}

// FuzzRoundTrip drives the primitive layer with fuzzed values and asserts
// exact round-trips through a framed container, including the checksum.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(0), false, 0.0, "", int64(0))
	f.Add(uint64(math.MaxUint64), int64(math.MinInt64), true, math.Inf(1), "scraper", int64(1520700000123456789))
	f.Add(uint64(1), int64(-1), false, math.NaN(), "\x00\xff", int64(-62135596800))

	f.Fuzz(func(t *testing.T, u uint64, i int64, b bool, fl float64, s string, unixNano int64) {
		w := NewWriter()
		w.Uint64(u)
		w.Int64(i)
		w.Bool(b)
		w.Float64(fl)
		w.String(s)
		ts := time.Unix(unixNano/1e9, unixNano%1e9)
		w.Time(ts)

		var buf bytes.Buffer
		if err := Encode(&buf, w); err != nil {
			t.Fatal(err)
		}
		r, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("Decode of freshly encoded frame: %v", err)
		}
		if got := r.Uint64(); got != u {
			t.Errorf("Uint64 = %d, want %d", got, u)
		}
		if got := r.Int64(); got != i {
			t.Errorf("Int64 = %d, want %d", got, i)
		}
		if got := r.Bool(); got != b {
			t.Errorf("Bool = %v, want %v", got, b)
		}
		if got := math.Float64bits(r.Float64()); got != math.Float64bits(fl) {
			t.Errorf("Float64 bits = %#x, want %#x", got, math.Float64bits(fl))
		}
		if got := r.String(); got != s {
			t.Errorf("String = %q, want %q", got, s)
		}
		if got := r.Time(); !got.Equal(ts) {
			t.Errorf("Time = %v, want %v", got, ts)
		}
		if err := r.Err(); err != nil {
			t.Fatalf("round-trip reader failed: %v", err)
		}
		if r.Remaining() != 0 {
			t.Errorf("Remaining = %d after full drain", r.Remaining())
		}
	})
}
