// Package statecodec is the durable state plane's wire format: a
// versioned, deterministic binary codec every stateful layer serialises
// itself through. The same state always encodes to the same bytes —
// map-backed structures sort their keys before writing — so snapshots can
// be diffed, content-addressed and compared across processes, and the
// checkpoint-resume equivalence proofs in internal/pipeline can assert on
// byte streams rather than on floating-point tolerances.
//
// # Layering
//
// The codec has two levels. Writer and Reader are the primitive level:
// fixed-width little-endian integers, IEEE-754 floats, length-prefixed
// strings and wall-clock timestamps, with 16-bit section tags (Tag /
// Expect) that catch layer misalignment early. Encode and Decode are the
// container level: they frame a Writer's payload with a magic number, a
// format version and an FNV-1a checksum, so a snapshot file read back by
// a newer (or corrupted by anything) binary fails loudly with a typed
// error instead of silently restoring garbage.
//
// # Error model
//
// Both halves use sticky errors. A Writer never fails on well-formed use
// (it writes to memory) but records a failure injected via Fail — the
// hook layers use to report unsupported state — and Encode refuses to
// frame a failed writer. A Reader records the first decode failure and
// returns zero values from then on; callers check Err (or the error from
// a RestoreFrom) once at the end instead of threading an error through
// every primitive read. All reads are bounds-checked against the
// remaining payload, including collection lengths before allocation, so
// corrupt or truncated input returns an error and never panics or
// over-allocates — the property the package fuzz tests pin down.
package statecodec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"divscrape/internal/fnvhash"
)

// Version is the snapshot format version Encode stamps into the
// container header. Bump it whenever any layer's serialised layout
// changes incompatibly; Decode rejects every other version with a
// *VersionError.
const Version uint16 = 1

// magic identifies a divscrape state snapshot container.
var magic = [4]byte{'D', 'V', 'S', 'C'}

// maxPayload bounds the declared payload length Decode will buffer
// (defence against a corrupt header demanding an absurd allocation).
const maxPayload = 1 << 30

// Typed decode errors. ErrBadMagic, ErrChecksum and ErrCorrupt are
// sentinel values (wrap-compared with errors.Is); version mismatch is the
// typed *VersionError so callers can report both sides of the mismatch.
var (
	// ErrBadMagic reports input that is not a state snapshot at all.
	ErrBadMagic = errors.New("statecodec: bad magic (not a state snapshot)")
	// ErrChecksum reports a payload whose checksum does not match.
	ErrChecksum = errors.New("statecodec: checksum mismatch (snapshot corrupted)")
	// ErrCorrupt reports structurally invalid payload contents.
	ErrCorrupt = errors.New("statecodec: corrupt snapshot")
)

// Damaged reports whether err is snapshot damage — corruption, a
// checksum mismatch, bad magic or a version mismatch — as opposed to an
// I/O or configuration error. A caller holding older snapshot
// generations (internal/checkpoint) may fall back past damage to the
// previous generation; any other failure must surface, because an older
// file would fail the same way.
func Damaged(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrChecksum) || errors.Is(err, ErrBadMagic)
}

// VersionError reports a snapshot written by an incompatible format
// version. It unwraps to ErrCorrupt so coarse callers can treat it as a
// decode failure while precise ones inspect the versions.
type VersionError struct {
	// Got is the version stamped in the snapshot; Want is this binary's.
	Got, Want uint16
}

// Error implements error.
func (e *VersionError) Error() string {
	return fmt.Sprintf("statecodec: snapshot version %d, this binary reads version %d", e.Got, e.Want)
}

// Unwrap lets errors.Is(err, ErrCorrupt) match version mismatches too.
func (e *VersionError) Unwrap() error { return ErrCorrupt }

// Snapshotter is the contract every stateful layer implements to
// participate in the durable state plane: SnapshotInto serialises the
// layer's dynamic state (configuration is not serialised — restore
// targets must be constructed with the same configuration), and
// RestoreFrom rebuilds that state in place. RestoreFrom must leave the
// receiver unusable-but-consistent only by returning an error; it must
// never panic on corrupt input.
type Snapshotter interface {
	SnapshotInto(w *Writer)
	RestoreFrom(r *Reader) error
}

// Writer accumulates a snapshot payload in memory. The zero value is
// ready to use; Reset recycles the buffer across snapshots.
type Writer struct {
	buf []byte
	err error
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Reset clears the payload (keeping the buffer) and the sticky error, so
// a long-lived writer can frame periodic checkpoints without reallocating.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.err = nil
}

// Len returns the payload size so far.
func (w *Writer) Len() int { return len(w.buf) }

// Bytes returns the raw payload (no container framing). The slice aliases
// the writer's buffer and is invalidated by further writes or Reset.
func (w *Writer) Bytes() []byte { return w.buf }

// Err returns the sticky failure injected via Fail, or nil.
func (w *Writer) Err() error { return w.err }

// Fail records a snapshot failure (e.g. a layer that cannot serialise
// its state). The first failure sticks; Encode refuses a failed writer.
func (w *Writer) Fail(err error) {
	if w.err == nil && err != nil {
		w.err = err
	}
}

// Uint8 writes one byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Uint16 writes a fixed-width little-endian uint16.
func (w *Writer) Uint16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// Uint32 writes a fixed-width little-endian uint32.
func (w *Writer) Uint32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// Uint64 writes a fixed-width little-endian uint64.
func (w *Writer) Uint64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// Int writes a signed integer as its two's-complement uint64 image.
func (w *Writer) Int(v int) { w.Uint64(uint64(int64(v))) }

// Int64 writes a signed 64-bit integer.
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// Bool writes a boolean as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.Uint8(1)
	} else {
		w.Uint8(0)
	}
}

// Float64 writes the IEEE-754 bit pattern, so every value (including
// NaNs and signed zeros) round-trips exactly.
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// String writes a length-prefixed UTF-8 (or arbitrary byte) string.
func (w *Writer) String(s string) {
	w.Uint32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Duration writes a time.Duration as its nanosecond count.
func (w *Writer) Duration(d time.Duration) { w.Int64(int64(d)) }

// Time writes a wall-clock instant as Unix seconds + nanoseconds. The
// monotonic reading and location are deliberately dropped: restored state
// lives in a different process, where only the absolute instant is
// meaningful. The zero time round-trips to a time for which IsZero
// remains true.
func (w *Writer) Time(t time.Time) {
	w.Int64(t.Unix())
	w.Uint32(uint32(t.Nanosecond()))
}

// Tag writes a 16-bit section marker. Each layer opens its block with a
// distinct tag and restore sides Expect it, so a misaligned or shuffled
// snapshot fails at the section boundary instead of deserialising one
// layer's bytes as another's.
func (w *Writer) Tag(tag uint16) { w.Uint16(tag) }

// Reader decodes a payload produced by Writer. Construct with NewReader
// (or via Decode for framed containers). All methods are safe on corrupt
// input: the first failure sticks, subsequent reads return zero values,
// and no read allocates more than the remaining payload could hold.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over a raw payload.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread payload bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// fail records the first decode failure.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

// take returns the next n payload bytes, or nil after recording a
// truncation failure.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.fail("truncated: need %d bytes, have %d", n, r.Remaining())
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Uint8 reads one byte.
func (r *Reader) Uint8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Uint16 reads a little-endian uint16.
func (r *Reader) Uint16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// Uint32 reads a little-endian uint32.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Uint64 reads a little-endian uint64.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int reads a signed integer written by Writer.Int.
func (r *Reader) Int() int { return int(int64(r.Uint64())) }

// Int64 reads a signed 64-bit integer.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Bool reads a boolean; any byte other than 0 or 1 is corrupt.
func (r *Reader) Bool() bool {
	switch v := r.Uint8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("invalid bool byte %d", v)
		return false
	}
}

// Float64 reads an IEEE-754 bit pattern.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// String reads a length-prefixed string. The declared length is checked
// against the remaining payload before any allocation.
func (r *Reader) String() string {
	n := int(r.Uint32())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Duration reads a time.Duration.
func (r *Reader) Duration() time.Duration { return time.Duration(r.Int64()) }

// Time reads an instant written by Writer.Time.
func (r *Reader) Time() time.Time {
	sec := r.Int64()
	nsec := r.Uint32()
	if r.err != nil {
		return time.Time{}
	}
	if nsec >= 1e9 {
		r.fail("invalid nanoseconds %d", nsec)
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec))
}

// Expect consumes a section tag and fails unless it matches.
func (r *Reader) Expect(tag uint16) error {
	got := r.Uint16()
	if r.err == nil && got != tag {
		r.fail("section tag %#04x, want %#04x", got, tag)
	}
	return r.err
}

// Count reads a collection length and validates it against the remaining
// payload given a minimum per-element encoding size, so a corrupt length
// can never drive an oversized allocation or a long spin. It returns 0
// once the reader has failed.
func (r *Reader) Count(minElemBytes int) int {
	n := int(r.Uint32())
	if r.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	// Division form: n*minElemBytes would overflow int on 32-bit builds
	// for adversarial counts, defeating the bound.
	if n < 0 || n > r.Remaining()/minElemBytes {
		r.fail("implausible count %d (%d bytes/elem, %d remaining)", n, minElemBytes, r.Remaining())
		return 0
	}
	return n
}

// Encode frames w's payload into dst: magic, version, payload length,
// payload, FNV-1a 64 checksum. It fails if the writer carries a sticky
// error, so an unserialisable layer surfaces here rather than producing
// a plausible-looking but incomplete snapshot.
func Encode(dst io.Writer, w *Writer) error {
	if err := w.Err(); err != nil {
		return fmt.Errorf("statecodec: encode: %w", err)
	}
	var hdr [14]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	binary.LittleEndian.PutUint64(hdr[6:14], uint64(len(w.buf)))
	if _, err := dst.Write(hdr[:]); err != nil {
		return fmt.Errorf("statecodec: encode header: %w", err)
	}
	if _, err := dst.Write(w.buf); err != nil {
		return fmt.Errorf("statecodec: encode payload: %w", err)
	}
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], fnvhash.Bytes64(w.buf))
	if _, err := dst.Write(sum[:]); err != nil {
		return fmt.Errorf("statecodec: encode checksum: %w", err)
	}
	return nil
}

// Decode validates a framed container from src and returns a Reader over
// its payload. Magic, version, length and checksum are all checked before
// any payload byte is handed to a layer: a wrong-version snapshot returns
// a *VersionError, a damaged one ErrChecksum or ErrCorrupt.
func Decode(src io.Reader) (*Reader, error) {
	var hdr [14]byte
	if _, err := io.ReadFull(src, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return nil, &VersionError{Got: v, Want: Version}
	}
	n := binary.LittleEndian.Uint64(hdr[6:14])
	if n > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrCorrupt, n)
	}
	payload := make([]byte, int(n))
	if _, err := io.ReadFull(src, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", ErrCorrupt, err)
	}
	var sum [8]byte
	if _, err := io.ReadFull(src, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint64(sum[:]) != fnvhash.Bytes64(payload) {
		return nil, ErrChecksum
	}
	return NewReader(payload), nil
}
