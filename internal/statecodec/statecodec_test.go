package statecodec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	w := NewWriter()
	now := time.Date(2018, 3, 11, 7, 42, 13, 987654321, time.FixedZone("X", 3600))
	w.Uint8(0xAB)
	w.Uint16(0xBEEF)
	w.Uint32(0xDEADBEEF)
	w.Uint64(math.MaxUint64 - 7)
	w.Int(-42)
	w.Int64(math.MinInt64)
	w.Bool(true)
	w.Bool(false)
	w.Float64(math.Pi)
	w.Float64(math.Inf(-1))
	w.String("hello, 世界")
	w.String("")
	w.Duration(-90 * time.Minute)
	w.Time(now)
	w.Time(time.Time{})
	w.Tag(0x1234)

	r := NewReader(w.Bytes())
	if got := r.Uint8(); got != 0xAB {
		t.Errorf("Uint8 = %#x", got)
	}
	if got := r.Uint16(); got != 0xBEEF {
		t.Errorf("Uint16 = %#x", got)
	}
	if got := r.Uint32(); got != 0xDEADBEEF {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := r.Uint64(); got != math.MaxUint64-7 {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := r.Int(); got != -42 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Int64(); got != math.MinInt64 {
		t.Errorf("Int64 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.Float64(); got != math.Pi {
		t.Errorf("Float64 = %g", got)
	}
	if got := r.Float64(); !math.IsInf(got, -1) {
		t.Errorf("Float64 inf = %g", got)
	}
	if got := r.String(); got != "hello, 世界" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if got := r.Duration(); got != -90*time.Minute {
		t.Errorf("Duration = %v", got)
	}
	if got := r.Time(); !got.Equal(now) {
		t.Errorf("Time = %v, want %v", got, now)
	}
	if got := r.Time(); !got.IsZero() {
		t.Errorf("zero Time round-trip = %v (IsZero false)", got)
	}
	if err := r.Expect(0x1234); err != nil {
		t.Errorf("Expect: %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
	if r.Err() != nil {
		t.Errorf("Err = %v", r.Err())
	}
}

func TestNaNRoundTripsBitExact(t *testing.T) {
	w := NewWriter()
	bits := uint64(0x7FF8DEADBEEF0001)
	w.Float64(math.Float64frombits(bits))
	r := NewReader(w.Bytes())
	if got := math.Float64bits(r.Float64()); got != bits {
		t.Errorf("NaN bits = %#x, want %#x", got, bits)
	}
}

func TestTruncatedReadsStickError(t *testing.T) {
	w := NewWriter()
	w.Uint64(7)
	r := NewReader(w.Bytes()[:3])
	if got := r.Uint64(); got != 0 {
		t.Errorf("truncated Uint64 = %d, want 0", got)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("Err = %v, want ErrCorrupt", r.Err())
	}
	// Every subsequent read stays zero without panicking.
	if r.Uint32() != 0 || r.String() != "" || !r.Time().IsZero() {
		t.Error("reads after failure not zero")
	}
}

func TestStringLengthBoundedByPayload(t *testing.T) {
	w := NewWriter()
	w.Uint32(1 << 30) // declared length far beyond payload
	r := NewReader(w.Bytes())
	if got := r.String(); got != "" {
		t.Errorf("oversized String = %q", got)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("Err = %v", r.Err())
	}
}

func TestCountRejectsImplausibleLengths(t *testing.T) {
	w := NewWriter()
	w.Uint32(1000) // 1000 elements claimed, but no payload follows
	r := NewReader(w.Bytes())
	if n := r.Count(8); n != 0 {
		t.Errorf("Count = %d, want 0", n)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("Err = %v", r.Err())
	}
}

func TestExpectMismatch(t *testing.T) {
	w := NewWriter()
	w.Tag(0xAAAA)
	r := NewReader(w.Bytes())
	if err := r.Expect(0xBBBB); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Expect mismatch err = %v", err)
	}
}

func TestBoolRejectsInvalidByte(t *testing.T) {
	r := NewReader([]byte{7})
	if r.Bool() {
		t.Error("invalid bool decoded true")
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("Err = %v", r.Err())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Tag(0x0102)
	w.String("payload")
	w.Uint64(99)

	var buf bytes.Buffer
	if err := Encode(&buf, w); err != nil {
		t.Fatal(err)
	}
	r, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Expect(0x0102); err != nil {
		t.Fatal(err)
	}
	if got := r.String(); got != "payload" {
		t.Errorf("String = %q", got)
	}
	if got := r.Uint64(); got != 99 {
		t.Errorf("Uint64 = %d", got)
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	frame := func() []byte {
		w := NewWriter()
		w.String("same")
		w.Float64(1.5)
		var buf bytes.Buffer
		if err := Encode(&buf, w); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(frame(), frame()) {
		t.Error("identical payloads framed to different bytes")
	}
}

func TestEncodeRefusesFailedWriter(t *testing.T) {
	w := NewWriter()
	w.Fail(errors.New("layer cannot snapshot"))
	if err := Encode(&bytes.Buffer{}, w); err == nil || !strings.Contains(err.Error(), "cannot snapshot") {
		t.Errorf("Encode on failed writer: %v", err)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, NewWriter()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[0] ^= 0xFF
	if _, err := Decode(bytes.NewReader(b)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeRejectsVersionMismatchTyped(t *testing.T) {
	w := NewWriter()
	w.Uint64(1)
	var buf bytes.Buffer
	if err := Encode(&buf, w); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	binary.LittleEndian.PutUint16(b[4:6], Version+41)
	_, err := Decode(bytes.NewReader(b))
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want *VersionError", err)
	}
	if ve.Got != Version+41 || ve.Want != Version {
		t.Errorf("VersionError = %+v", ve)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Error("VersionError should unwrap to ErrCorrupt")
	}
}

func TestDecodeRejectsFlippedPayloadBit(t *testing.T) {
	w := NewWriter()
	w.String("integrity matters")
	var buf bytes.Buffer
	if err := Encode(&buf, w); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-12] ^= 0x01 // somewhere inside the payload
	if _, err := Decode(bytes.NewReader(b)); !errors.Is(err, ErrChecksum) {
		t.Errorf("err = %v, want ErrChecksum", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	w := NewWriter()
	w.String("soon to be cut short")
	var buf bytes.Buffer
	if err := Encode(&buf, w); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsAbsurdDeclaredLength(t *testing.T) {
	var hdr [14]byte
	copy(hdr[:4], []byte("DVSC"))
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	binary.LittleEndian.PutUint64(hdr[6:14], 1<<40)
	if _, err := Decode(bytes.NewReader(hdr[:])); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter()
	w.Uint64(1)
	w.Fail(errors.New("boom"))
	w.Reset()
	if w.Len() != 0 || w.Err() != nil {
		t.Errorf("Reset left Len=%d Err=%v", w.Len(), w.Err())
	}
	w.Uint8(9)
	if w.Len() != 1 {
		t.Errorf("write after Reset: Len=%d", w.Len())
	}
}
