package experiments

// Reference values from the paper (Marques et al., DSN 2018), used for
// side-by-side comparison columns and the paper-vs-measured record in
// EXPERIMENTS.md. The reproduction is judged on shape — who alerts more,
// bucket ordering, rough factors — not on absolute counts, since the
// substrate is a calibrated simulator rather than the Amadeus testbed.

// PaperTable1 holds the paper's Table 1.
var PaperTable1 = struct {
	Total, Distil, Arcane uint64
}{
	Total:  1_469_744,
	Distil: 1_275_056,
	Arcane: 1_240_713,
}

// PaperTable2 holds the paper's Table 2.
var PaperTable2 = struct {
	Both, Neither, ArcaneOnly, DistilOnly uint64
}{
	Both:       1_231_408,
	Neither:    185_383,
	ArcaneOnly: 9_305,
	DistilOnly: 43_648,
}

// PaperStatusCount is one status row of the paper's Tables 3/4.
type PaperStatusCount struct {
	Status int
	Count  uint64
}

// PaperTable3Arcane is the paper's Table 3, Arcane column.
var PaperTable3Arcane = []PaperStatusCount{
	{200, 1_204_241}, {302, 34_561}, {204, 1_560}, {400, 256},
	{304, 76}, {500, 11}, {404, 8},
}

// PaperTable3Distil is the paper's Table 3, Distil column.
var PaperTable3Distil = []PaperStatusCount{
	{200, 1_239_079}, {302, 34_832}, {204, 1_018}, {400, 73},
	{404, 32}, {304, 15}, {500, 6}, {403, 1},
}

// PaperTable4Arcane is the paper's Table 4, Arcane-only column.
var PaperTable4Arcane = []PaperStatusCount{
	{200, 7_693}, {204, 956}, {302, 321}, {400, 247},
	{304, 76}, {404, 7}, {500, 5},
}

// PaperTable4Distil is the paper's Table 4, Distil-only column.
var PaperTable4Distil = []PaperStatusCount{
	{200, 42_531}, {302, 592}, {204, 414}, {400, 64},
	{404, 31}, {304, 15}, {403, 1},
}
