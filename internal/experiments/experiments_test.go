package experiments

import (
	"reflect"
	"strings"
	"testing"

	"divscrape/internal/diversity"
	"divscrape/internal/report"
)

// The bench-scale run feeds every assertion below; execute it once.
var benchRun *Run

func run(t *testing.T) *Run {
	t.Helper()
	if benchRun == nil {
		r, err := Execute(BenchScale)
		if err != nil {
			t.Fatal(err)
		}
		benchRun = r
	}
	return benchRun
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"bench", "ci", "paper", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("galactic"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunInvariants(t *testing.T) {
	r := run(t)
	if r.Total == 0 {
		t.Fatal("empty run")
	}
	// The contingency cells partition the request stream.
	if r.Cont.Total() != r.Total {
		t.Errorf("contingency total %d != %d", r.Cont.Total(), r.Total)
	}
	// Confusion matrices account for every request.
	if r.ConfA.Total() != r.Total || r.ConfB.Total() != r.Total {
		t.Error("confusion totals inconsistent")
	}
	if r.Conf1oo2.Total() != r.Total || r.Conf2oo2.Total() != r.Total {
		t.Error("adjudicated totals inconsistent")
	}
	// Correctness table too.
	if r.Corr.Total() != r.Total {
		t.Error("correctness total inconsistent")
	}
	// ROC accumulators saw every request.
	posA, negA := r.ROCA.Totals()
	if posA+negA != r.Total {
		t.Error("ROC totals inconsistent")
	}
	// Marginal identities: alerts by A = TP_A + FP_A.
	if r.Cont.TotalA() != r.ConfA.TP+r.ConfA.FP {
		t.Error("A's alert marginal != confusion alerts")
	}
	if r.Cont.TotalB() != r.ConfB.TP+r.ConfB.FP {
		t.Error("B's alert marginal != confusion alerts")
	}
}

func TestAdjudicationIdentities(t *testing.T) {
	r := run(t)
	// 1oo2 alerts = Both + AOnly + BOnly; 2oo2 alerts = Both. These are
	// exact identities between the contingency table and the adjudicated
	// confusion matrices.
	alerts1 := r.Conf1oo2.TP + r.Conf1oo2.FP
	alerts2 := r.Conf2oo2.TP + r.Conf2oo2.FP
	if alerts1 != r.Cont.Both+r.Cont.AOnly+r.Cont.BOnly {
		t.Errorf("1oo2 alerts %d != contingency union %d",
			alerts1, r.Cont.Both+r.Cont.AOnly+r.Cont.BOnly)
	}
	if alerts2 != r.Cont.Both {
		t.Errorf("2oo2 alerts %d != Both %d", alerts2, r.Cont.Both)
	}
	// Sensitivity ordering: 1oo2 >= each single >= 2oo2 (set inclusion).
	if r.Conf1oo2.Sensitivity() < r.ConfA.Sensitivity()-1e-12 ||
		r.Conf1oo2.Sensitivity() < r.ConfB.Sensitivity()-1e-12 {
		t.Error("1oo2 sensitivity below a single tool")
	}
	if r.Conf2oo2.Sensitivity() > r.ConfA.Sensitivity()+1e-12 ||
		r.Conf2oo2.Sensitivity() > r.ConfB.Sensitivity()+1e-12 {
		t.Error("2oo2 sensitivity above a single tool")
	}
	// Specificity ordering is the mirror image.
	if r.Conf2oo2.Specificity() < r.ConfA.Specificity()-1e-12 ||
		r.Conf2oo2.Specificity() < r.ConfB.Specificity()-1e-12 {
		t.Error("2oo2 specificity below a single tool")
	}
}

func TestPaperShapeHolds(t *testing.T) {
	// Shape assertions at bench scale (the window starts at midnight so
	// the mix skews even more bot-heavy than the full capture; assert
	// orderings, not absolute counts).
	r := run(t)
	c := r.Cont
	if c.Both <= c.Neither {
		t.Error("shape: Both should dominate Neither")
	}
	if c.Neither <= c.AOnly {
		t.Error("shape: Neither should exceed single-tool buckets")
	}
	if c.AOnly <= c.BOnly {
		t.Error("shape: commercial-only should exceed behavioural-only (paper: 43,648 vs 9,305)")
	}
	// Commercial tool alerts more in total (paper: 1.275M vs 1.241M).
	if c.TotalA() <= c.TotalB() {
		t.Error("shape: A's alert total should exceed B's")
	}
}

func TestTablesRender(t *testing.T) {
	r := run(t)
	builders := map[string]func(*Run) *report.Table{
		"t1": Table1, "t2": Table2, "t3": Table3, "t4": Table4,
		"t5": Table5, "t6": Table6, "t8": Table8, "t9": Table9, "t10": Table10,
	}
	for name, build := range builders {
		tbl := build(r)
		out := tbl.String()
		if out == "" || tbl.Rows() == 0 {
			t.Errorf("%s rendered empty", name)
		}
	}
	// Table 1 carries the paper's reference numbers.
	if !strings.Contains(Table1(r).String(), "1,469,744") {
		t.Error("Table 1 missing the paper total")
	}
	if !strings.Contains(Table2(r).String(), "1,231,408") {
		t.Error("Table 2 missing the paper Both count")
	}
}

func TestExecuteDeterministic(t *testing.T) {
	a, err := Execute(BenchScale)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(BenchScale)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total || a.Cont != b.Cont || a.ConfA != b.ConfA || a.ConfB != b.ConfB {
		t.Error("identical scales produced different results")
	}
}

func TestExecuteTopologies(t *testing.T) {
	results, err := ExecuteTopologies(Scale{Name: "tiny", Duration: BenchScale.Duration / 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("got %d topologies, want 6", len(results))
	}
	byName := map[string]TopologyResult{}
	for _, r := range results {
		byName[r.Name] = r
		if r.Conf.Total() == 0 {
			t.Errorf("%s processed nothing", r.Name)
		}
	}
	// Serial arrangements never inspect more with the second detector
	// than the first; parallel inspects everything with both.
	for _, r := range results {
		if strings.HasPrefix(r.Name, "parallel") {
			if r.Costs[0].Inspected != r.Costs[1].Inspected {
				t.Errorf("%s costs unequal: %+v", r.Name, r.Costs)
			}
			continue
		}
		if r.Costs[1].Inspected > r.Costs[0].Inspected {
			t.Errorf("%s: second stage inspected %d of %d", r.Name,
				r.Costs[1].Inspected, r.Costs[0].Inspected)
		}
	}
	// OR forwards the filter's non-alerts, AND forwards its alerts: over
	// identical traffic and identical filter state the two cascades'
	// second-stage loads partition the stream exactly.
	or := byName["serial sentinel→arcane OR"]
	and := byName["serial sentinel→arcane AND"]
	if or.Costs[1].Inspected+and.Costs[1].Inspected != or.Costs[0].Inspected {
		t.Errorf("cascade second stages do not partition: OR %d + AND %d != %d",
			or.Costs[1].Inspected, and.Costs[1].Inspected, or.Costs[0].Inspected)
	}
	if tbl := Table7(results); tbl.Rows() != 6 {
		t.Errorf("Table7 rows = %d", tbl.Rows())
	}
}

func TestPaperReferenceConsistency(t *testing.T) {
	// The transcribed paper constants must be internally consistent.
	p2 := PaperTable2
	if p2.Both+p2.Neither+p2.ArcaneOnly+p2.DistilOnly != PaperTable1.Total {
		t.Error("paper Table 2 cells do not sum to Table 1 total")
	}
	if p2.Both+p2.DistilOnly != PaperTable1.Distil {
		t.Error("paper Distil marginal inconsistent")
	}
	if p2.Both+p2.ArcaneOnly != PaperTable1.Arcane {
		t.Error("paper Arcane marginal inconsistent")
	}
	sum := func(rows []PaperStatusCount) uint64 {
		var total uint64
		for _, r := range rows {
			total += r.Count
		}
		return total
	}
	if sum(PaperTable3Arcane) != PaperTable1.Arcane {
		t.Error("paper Table 3 Arcane column does not sum to its total")
	}
	if sum(PaperTable3Distil) != PaperTable1.Distil {
		t.Error("paper Table 3 Distil column does not sum to its total")
	}
	if sum(PaperTable4Arcane) != p2.ArcaneOnly {
		t.Error("paper Table 4 Arcane column does not sum to Arcane-only")
	}
	if sum(PaperTable4Distil) != p2.DistilOnly {
		t.Error("paper Table 4 Distil column does not sum to Distil-only")
	}
}

func TestExecuteThreeWay(t *testing.T) {
	run, err := ExecuteThreeWay(BenchScale)
	if err != nil {
		t.Fatal(err)
	}
	if run.Total == 0 {
		t.Fatal("empty three-way run")
	}
	for i, c := range run.Singles {
		if c.Total() != run.Total {
			t.Errorf("detector %d confusion total %d != %d", i, c.Total(), run.Total)
		}
	}
	// Vote monotonicity: sensitivity non-increasing, specificity
	// non-decreasing in k.
	for k := 1; k < 3; k++ {
		if run.Votes[k].Sensitivity() > run.Votes[k-1].Sensitivity()+1e-12 {
			t.Errorf("sensitivity increased from %doo3 to %doo3", k, k+1)
		}
		if run.Votes[k].Specificity() < run.Votes[k-1].Specificity()-1e-12 {
			t.Errorf("specificity decreased from %doo3 to %doo3", k, k+1)
		}
	}
	if Table11(run).Rows() == 0 {
		t.Error("table 11 empty")
	}
}

// The sharded measurement pass must reproduce the sequential pass exactly:
// every accumulator the tables are built from is order-sensitive only
// through detector state, which the key-partitioned pipeline preserves.
func TestExecuteShardedMatchesSequential(t *testing.T) {
	seq, err := Execute(BenchScale)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := ExecuteOpts(BenchScale, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if shard.Total != seq.Total {
		t.Fatalf("totals differ: sharded %d, sequential %d", shard.Total, seq.Total)
	}
	if shard.Cont != seq.Cont {
		t.Errorf("contingency differs: %+v vs %+v", shard.Cont, seq.Cont)
	}
	if shard.ConfA != seq.ConfA || shard.ConfB != seq.ConfB {
		t.Error("per-tool confusion matrices differ")
	}
	if shard.Conf1oo2 != seq.Conf1oo2 || shard.Conf2oo2 != seq.Conf2oo2 || shard.ConfWeighted != seq.ConfWeighted {
		t.Error("adjudicated confusion matrices differ")
	}
	if shard.Corr != seq.Corr {
		t.Error("correctness-agreement table differs")
	}
	if shard.ROCA.AUC() != seq.ROCA.AUC() || shard.ROCB.AUC() != seq.ROCB.AUC() {
		t.Error("ROC accumulators differ")
	}
}

// The relaxed measurement pass — no stream-order merge, shards delivering
// straight into the mutex-guarded accumulators — must also reproduce the
// sequential tables exactly: every accumulator add is commutative and
// joined to ground truth by sequence number, not arrival order. This is
// the experiments-level face of the pipeline's relaxed-equivalence proof,
// across the full accumulator set (status/archetype breakdowns, ROC
// grids) that the facade's Summary does not carry.
func TestExecuteRelaxedMatchesSequential(t *testing.T) {
	seq, err := Execute(BenchScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3} {
		relaxed, err := ExecuteOpts(BenchScale, Options{Shards: shards, Relaxed: true})
		if err != nil {
			t.Fatal(err)
		}
		if relaxed.Total != seq.Total {
			t.Fatalf("shards=%d: totals differ: relaxed %d, sequential %d",
				shards, relaxed.Total, seq.Total)
		}
		if relaxed.Cont != seq.Cont {
			t.Errorf("shards=%d: contingency differs: %+v vs %+v", shards, relaxed.Cont, seq.Cont)
		}
		if !reflect.DeepEqual(relaxed.Status, seq.Status) {
			t.Errorf("shards=%d: status breakdown differs", shards)
		}
		if !reflect.DeepEqual(relaxed.ByArch, seq.ByArch) {
			t.Errorf("shards=%d: archetype breakdown differs", shards)
		}
		if relaxed.ConfA != seq.ConfA || relaxed.ConfB != seq.ConfB {
			t.Errorf("shards=%d: per-tool confusion matrices differ", shards)
		}
		if relaxed.Conf1oo2 != seq.Conf1oo2 || relaxed.Conf2oo2 != seq.Conf2oo2 || relaxed.ConfWeighted != seq.ConfWeighted {
			t.Errorf("shards=%d: adjudicated confusion matrices differ", shards)
		}
		if relaxed.Corr != seq.Corr {
			t.Errorf("shards=%d: correctness-agreement table differs", shards)
		}
		if relaxed.ROCA.AUC() != seq.ROCA.AUC() || relaxed.ROCB.AUC() != seq.ROCB.AUC() {
			t.Errorf("shards=%d: ROC accumulators differ", shards)
		}
	}
}

func TestExecuteTrajectory(t *testing.T) {
	run, err := ExecuteTrajectory(BenchScale)
	if err != nil {
		t.Fatal(err)
	}
	if run.Total == 0 {
		t.Fatal("empty trajectory run")
	}
	for i, c := range run.Singles {
		if c.Total() != run.Total {
			t.Errorf("detector %d confusion total %d != %d", i, c.Total(), run.Total)
		}
	}
	if run.Weighted.Total() != run.Total {
		t.Error("weighted confusion incomplete")
	}
	// Vote monotonicity: sensitivity non-increasing, specificity
	// non-decreasing in k.
	for k := 1; k < 3; k++ {
		if run.Votes[k].Sensitivity() > run.Votes[k-1].Sensitivity()+1e-12 {
			t.Errorf("sensitivity increased from %doo3 to %doo3", k, k+1)
		}
		if run.Votes[k].Specificity() < run.Votes[k-1].Specificity()-1e-12 {
			t.Errorf("specificity decreased from %doo3 to %doo3", k, k+1)
		}
	}
	// Every pairwise table must partition the stream, and every pair must
	// exhibit some discordance — three identical channels would make the
	// whole experiment moot.
	for i, p := range run.Pairs {
		if p.Alerts.Total() != run.Total {
			t.Errorf("pair %d alert table total %d != %d", i, p.Alerts.Total(), run.Total)
		}
		if p.Correctness.Total() != run.Total {
			t.Errorf("pair %d correctness table total %d != %d", i, p.Correctness.Total(), run.Total)
		}
		if diversity.McNemarFromCorrectness(p.Correctness).Discordant == 0 {
			t.Errorf("pair %s/%s never disagrees", p.A, p.B)
		}
	}
	if Table13(run).Rows() == 0 || Table13Diversity(run).Rows() == 0 {
		t.Error("table 13 empty")
	}
}

// The E13 measurement is a pure function of (seed, duration): two runs
// must agree field-for-field, which is what makes the report
// byte-reproducible.
func TestExecuteTrajectoryDeterministic(t *testing.T) {
	a, err := ExecuteTrajectory(BenchScale)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecuteTrajectory(BenchScale)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two E13 runs differ:\n a: %+v\n b: %+v", a, b)
	}
}
