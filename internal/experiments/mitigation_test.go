package experiments

import (
	"testing"

	"divscrape/internal/mitigate"
)

// The containment study needs the 24-hour window: the corporate-NAT lunch
// rush — the structural benign-alert source that prices static blocking —
// happens at midday and the 3-hour bench window ends before it.
var mitigationResults []MitigationResult

func mitigation(t *testing.T) []MitigationResult {
	t.Helper()
	if mitigationResults == nil {
		r, err := ExecuteMitigation(CIScale)
		if err != nil {
			t.Fatal(err)
		}
		mitigationResults = r
	}
	return mitigationResults
}

func findMitigation(t *testing.T, results []MitigationResult, policy, adj string) *MitigationResult {
	t.Helper()
	for i := range results {
		if results[i].Policy == policy && results[i].Adjudicator == adj {
			return &results[i]
		}
	}
	t.Fatalf("no %s/%s row", policy, adj)
	return nil
}

// TestMitigationAcceptance is the PR's end-to-end acceptance criterion:
// the Graduated policy contains the adaptive scrapers — strictly fewer
// pages leaked than Observe, a shorter productive-campaign window, and a
// human collateral rate below the static Block policy's.
func TestMitigationAcceptance(t *testing.T) {
	results := mitigation(t)
	observe := findMitigation(t, results, "observe", "1oo2")
	tag := findMitigation(t, results, "tag", "1oo2")
	block := findMitigation(t, results, "block", "1oo2")
	graduated := findMitigation(t, results, "graduated", "1oo2")

	// Observe and Tag serve everything: identical leakage, zero denials.
	if observe.Leaked != tag.Leaked || observe.Total != tag.Total {
		t.Errorf("observe leaked %d/%d, tag %d/%d — tagging should not change service",
			observe.Leaked, observe.Total, tag.Leaked, tag.Total)
	}
	if observe.Collateral != 0 || observe.Actions.Blocked != 0 {
		t.Errorf("observe denied requests: %+v", observe.Actions)
	}
	if observe.Leaked == 0 {
		t.Fatal("observe run leaked nothing; the workload carries no campaigns")
	}

	// Containment: graduated must strictly beat doing nothing.
	if graduated.Leaked >= observe.Leaked {
		t.Errorf("graduated leaked %d, observe %d — no containment", graduated.Leaked, observe.Leaked)
	}
	if graduated.MeanTimeToContain >= observe.MeanTimeToContain {
		t.Errorf("graduated mean containment %v not under observe's %v",
			graduated.MeanTimeToContain, observe.MeanTimeToContain)
	}
	// The ladder actually gets used: all three adverse rungs fire, and
	// some clients solve their way back down.
	if graduated.Actions.Tarpitted == 0 || graduated.Actions.Challenged == 0 || graduated.Actions.Blocked == 0 {
		t.Errorf("graduated ladder unused: %+v", graduated.Actions)
	}
	if graduated.ChallengesPassed == 0 {
		t.Error("nobody solved a challenge in the graduated run")
	}

	// Human cost: static blocking must misfire on real shoppers (that is
	// its known failure mode), and graduation must cost less.
	if block.Collateral == 0 {
		t.Fatal("static block produced no collateral; the comparison is vacuous")
	}
	if graduated.CollateralRate() >= block.CollateralRate() {
		t.Errorf("graduated collateral %.5f not below static block's %.5f",
			graduated.CollateralRate(), block.CollateralRate())
	}
}

// TestMitigationAdjudicatorTradeoff checks the K-out-of-N axis: requiring
// both tools (2oo2) before acting lowers collateral and raises leakage
// relative to either-tool (1oo2), for any enforcing policy.
func TestMitigationAdjudicatorTradeoff(t *testing.T) {
	results := mitigation(t)
	for _, policy := range []string{"block", "graduated"} {
		k1 := findMitigation(t, results, policy, "1oo2")
		k2 := findMitigation(t, results, policy, "2oo2")
		if k2.Leaked <= k1.Leaked {
			t.Errorf("%s: 2oo2 leaked %d <= 1oo2's %d; confirmation should trade leakage for precision",
				policy, k2.Leaked, k1.Leaked)
		}
		if k2.CollateralRate() > k1.CollateralRate() {
			t.Errorf("%s: 2oo2 collateral %.5f above 1oo2's %.5f",
				policy, k2.CollateralRate(), k1.CollateralRate())
		}
	}
}

// TestMitigationByteReproducible re-executes the full grid and requires
// identical results and an identical rendered table: the whole closed
// loop — generation, detection, adjudication, enforcement, adaptation —
// is a pure function of the seed.
func TestMitigationByteReproducible(t *testing.T) {
	first := mitigation(t)
	second, err := ExecuteMitigation(CIScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("row counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("row %d differs:\n  %+v\n  %+v", i, first[i], second[i])
		}
	}
	if a, b := TableMitigation(first).String(), TableMitigation(second).String(); a != b {
		t.Error("rendered tables differ between identical-seed runs")
	}
}

// TestMitigationSpecsSubset exercises the single-pass entry point used by
// callers that only want one policy.
func TestMitigationSpecsSubset(t *testing.T) {
	res, err := ExecuteMitigationSpecs(BenchScale, []MitigationSpec{
		{PolicyName: "graduated", Policy: mitigate.Graduated(), K: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Policy != "graduated" || res[0].Adjudicator != "1oo2" {
		t.Fatalf("unexpected results: %+v", res)
	}
	r := res[0]
	if r.Total == 0 || r.MaliciousActors == 0 {
		t.Errorf("empty pass: %+v", r)
	}
	if r.Total != r.MaliciousRequests+r.BenignRequests {
		t.Errorf("partition broken: %d != %d+%d", r.Total, r.MaliciousRequests, r.BenignRequests)
	}
	if r.Actions.Total() != r.Total {
		t.Errorf("action tally %d does not cover all %d requests", r.Actions.Total(), r.Total)
	}
	if r.MeanTimeToContain < 0 || r.MeanTimeToContain > CIScale.Duration {
		t.Errorf("implausible containment time %v", r.MeanTimeToContain)
	}
}
