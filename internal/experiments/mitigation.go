package experiments

import (
	"fmt"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/mitigate"
	"divscrape/internal/report"
	"divscrape/internal/sitemodel"
	"divscrape/internal/workload"
)

// E12: containment efficacy. The detection experiments ask "who did we
// flag"; this one asks the question the products exist to answer: "how
// much did the scrapers actually get, and at what human cost?" Each pass
// replays the same seeded workload through the closed loop — detectors →
// adjudicator → mitigation engine → adaptive actor reaction — under one
// response policy, so the arms race (back off on tarpit, rotate on block,
// solve or fail challenges) is simulated rather than assumed.

// MitigationSpec is one closed-loop pass configuration.
type MitigationSpec struct {
	// PolicyName labels the response policy in reports.
	PolicyName string
	// Policy is the response policy under test.
	Policy mitigate.Policy
	// K is the adjudication threshold over the detector pair: 1 alerts on
	// either tool (maximum detection), 2 requires both (minimum false
	// alarms).
	K int
}

// MitigationResult is one pass's containment-efficacy measurement.
type MitigationResult struct {
	// Policy and Adjudicator identify the pass.
	Policy      string
	Adjudicator string
	// Total is the number of requests the pass served.
	Total uint64
	// MaliciousRequests / BenignRequests partition Total by ground truth.
	MaliciousRequests, BenignRequests uint64
	// Actions tallies enforcement decisions across all requests.
	Actions mitigate.ActionCounts
	// Tagged counts requests forwarded with the verdict header.
	Tagged uint64
	// TarpitDelay is the summed stall imposed on tarpitted responses —
	// the enforcement cost the site pays in held-open connections.
	TarpitDelay time.Duration
	// ChallengesPassed counts solved challenge beacons.
	ChallengesPassed uint64
	// Leaked counts malicious content-page requests (product, price,
	// category, search) that were actually served — the pages the
	// scrapers walked away with.
	Leaked uint64
	// Collateral counts benign requests denied content (challenged or
	// blocked): the human cost of the policy.
	Collateral uint64
	// MaliciousActors is the scraping population; LeakingActors how many
	// of them got at least one page.
	MaliciousActors, LeakingActors int
	// MeanTimeToContain averages, over leaking actors, the span from the
	// actor's first request to its *last* leaked page — how long each
	// campaign stayed productive before the policy shut it off (for
	// Observe this approaches the actor's lifetime).
	MeanTimeToContain time.Duration
}

// CollateralRate is the share of benign requests denied content.
func (r *MitigationResult) CollateralRate() float64 {
	if r.BenignRequests == 0 {
		return 0
	}
	return float64(r.Collateral) / float64(r.BenignRequests)
}

// DefaultMitigationSpecs enumerates the paper-relevant response policies
// crossed with both adjudication schemes.
func DefaultMitigationSpecs() []MitigationSpec {
	return []MitigationSpec{
		{PolicyName: "observe", Policy: mitigate.Observe(), K: 1},
		{PolicyName: "observe", Policy: mitigate.Observe(), K: 2},
		{PolicyName: "tag", Policy: mitigate.Tag(), K: 1},
		{PolicyName: "tag", Policy: mitigate.Tag(), K: 2},
		{PolicyName: "block", Policy: mitigate.StaticBlock(false), K: 1},
		{PolicyName: "block", Policy: mitigate.StaticBlock(false), K: 2},
		{PolicyName: "graduated", Policy: mitigate.Graduated(), K: 1},
		{PolicyName: "graduated", Policy: mitigate.Graduated(), K: 2},
	}
}

// ExecuteMitigation runs the full policy × adjudicator grid at the given
// scale. Every pass regenerates the workload from the same seed, so
// differences between rows are due to the response policy alone (and the
// actors' reactions to it).
func ExecuteMitigation(scale Scale) ([]MitigationResult, error) {
	return ExecuteMitigationSpecs(scale, DefaultMitigationSpecs())
}

// ExecuteMitigationSpecs is ExecuteMitigation over a chosen set of passes.
func ExecuteMitigationSpecs(scale Scale, specs []MitigationSpec) ([]MitigationResult, error) {
	results := make([]MitigationResult, 0, len(specs))
	for _, spec := range specs {
		r, err := executeMitigationPass(scale, spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: mitigation %s/%doo2: %w", spec.PolicyName, spec.K, err)
		}
		results = append(results, r)
	}
	return results, nil
}

// leakedKind reports whether a page kind is catalogue content a scraping
// campaign is after.
func leakedKind(k sitemodel.PageKind) bool {
	switch k {
	case sitemodel.KindProduct, sitemodel.KindPrice, sitemodel.KindCategory, sitemodel.KindSearch:
		return true
	default:
		return false
	}
}

func executeMitigationPass(scale Scale, spec MitigationSpec) (MitigationResult, error) {
	res := MitigationResult{
		Policy:      spec.PolicyName,
		Adjudicator: fmt.Sprintf("%doo2", spec.K),
	}
	gen, err := workload.NewGenerator(workload.Config{Seed: scale.Seed, Duration: scale.Duration})
	if err != nil {
		return res, fmt.Errorf("generator: %w", err)
	}
	sen, arc, err := freshPair()
	if err != nil {
		return res, err
	}
	engine, err := mitigate.New(spec.Policy)
	if err != nil {
		return res, err
	}
	enricher := detector.NewEnricher(iprep.BuildFeed())

	type campaign struct {
		first    time.Time
		lastLeak time.Time
		leaked   bool
	}
	campaigns := map[int]*campaign{}

	err = gen.RunClosedLoop(func(ev workload.Event) (workload.Enforcement, error) {
		// Detection sees the pre-decision view, as the inline guard does:
		// the block/allow choice cannot wait for the response.
		req := enricher.Enrich(ev.Entry)
		va, vb := sen.Inspect(&req), arc.Inspect(&req)
		confirmed := va.Alert && vb.Alert
		alerted := va.Alert || vb.Alert
		if spec.K >= 2 {
			alerted = confirmed
		}
		now := ev.Entry.Time
		info := sitemodel.ClassifyPath(ev.Entry.Path)

		// The challenge flow itself must stay reachable, or no client
		// could ever solve its way back down the ladder.
		var dec mitigate.Decision
		switch {
		case info.Kind == sitemodel.KindChallengeScript:
			dec = mitigate.Decision{Action: mitigate.Allow}
		case info.Kind == sitemodel.KindChallengeVerify && ev.Entry.Method == "POST":
			engine.ChallengePassed(ev.Entry.RemoteAddr, now)
			res.ChallengesPassed++
			dec = mitigate.Decision{Action: mitigate.Allow}
		default:
			dec = engine.Apply(ev.Entry.RemoteAddr, now, mitigate.Assessment{
				Alerted:   alerted,
				Confirmed: confirmed,
				Score:     (va.Score + vb.Score) / 2,
			})
		}

		res.Total++
		res.Actions.Count(dec.Action)
		if dec.Tagged {
			res.Tagged++
		}
		if dec.Action == mitigate.Tarpit {
			res.TarpitDelay += dec.Delay
		}
		served := dec.Action == mitigate.Allow || dec.Action == mitigate.Tarpit
		if ev.Label.Malicious() {
			res.MaliciousRequests++
			c := campaigns[ev.Label.ActorID]
			if c == nil {
				c = &campaign{first: now}
				campaigns[ev.Label.ActorID] = c
			}
			if served && ev.Entry.Status == 200 && leakedKind(info.Kind) {
				res.Leaked++
				c.leaked = true
				c.lastLeak = now
			}
		} else {
			res.BenignRequests++
			if dec.Action == mitigate.Challenge || dec.Action == mitigate.Block {
				res.Collateral++
			}
		}
		return workload.Enforcement{Action: dec.Action, Delay: dec.Delay}, nil
	})
	if err != nil {
		return res, err
	}

	res.MaliciousActors = len(campaigns)
	var span time.Duration
	for _, c := range campaigns {
		if c.leaked {
			res.LeakingActors++
			span += c.lastLeak.Sub(c.first)
		}
	}
	if res.LeakingActors > 0 {
		res.MeanTimeToContain = span / time.Duration(res.LeakingActors)
	}
	return res, nil
}

// TableMitigation renders the containment-efficacy comparison (E12).
func TableMitigation(results []MitigationResult) *report.Table {
	t := &report.Table{
		Title: "E12 — Containment efficacy by response policy",
		Columns: []string{
			"Policy", "Adj", "Requests", "Leaked", "Contain", "Collateral",
			"Tarpit", "Challenge", "Block", "Passed",
		},
		Aligns: []report.Align{
			report.Left, report.Left, report.Right, report.Right, report.Right,
			report.Right, report.Right, report.Right, report.Right, report.Right,
		},
	}
	for i := range results {
		r := &results[i]
		t.AddRow(
			r.Policy,
			r.Adjudicator,
			report.Count(r.Total),
			report.Count(r.Leaked),
			r.MeanTimeToContain.Round(time.Second).String(),
			report.Percent(r.Collateral, r.BenignRequests),
			report.Count(r.Actions.Tarpitted),
			report.Count(r.Actions.Challenged),
			report.Count(r.Actions.Blocked),
			report.Count(r.ChallengesPassed),
		)
	}
	return t
}
