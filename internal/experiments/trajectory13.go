package experiments

import (
	"fmt"

	"divscrape/internal/arcane"
	"divscrape/internal/detector"
	"divscrape/internal/diversity"
	"divscrape/internal/ensemble"
	"divscrape/internal/evaluate"
	"divscrape/internal/iprep"
	"divscrape/internal/report"
	"divscrape/internal/sentinel"
	"divscrape/internal/trajectory"
	"divscrape/internal/workload"
)

// TrajectoryRun is experiment E13: the semantic trajectory detector
// deployed as a third first-class channel next to the paper's commercial
// and behavioural tools. Where E11 adds a learned detector over the same
// per-request evidence, trajectory judges a different signal entirely —
// the shape of the navigation path through the site — so this experiment
// asks the paper's core question at the three-channel scale: does the
// new channel disagree with the old ones in the useful direction? The
// trajectory model trains on an offset seed so the evaluation stays
// held-out.
type TrajectoryRun struct {
	// Names are the three detector names in vote order.
	Names [3]string
	// Total is the number of evaluated requests.
	Total uint64
	// Singles are the per-detector confusion matrices.
	Singles [3]evaluate.Confusion
	// Votes[k-1] is the k-out-of-3 confusion matrix.
	Votes [3]evaluate.Confusion
	// Weighted is the mean-score fusion matrix at the E6 threshold.
	Weighted evaluate.Confusion
	// Pairs are the pairwise diversity tables in (0,1), (0,2), (1,2)
	// order: alert agreement plus labelled correctness agreement.
	Pairs [3]PairDiversity
}

// PairDiversity carries everything the pairwise diversity analysis
// needs for one detector pair.
type PairDiversity struct {
	// A and B name the two detectors.
	A, B string
	// Alerts is the raw alert-agreement table (the paper's Table 2 view).
	Alerts diversity.Contingency
	// Correctness is the labelled agreement-on-correctness table the
	// diversity measures and the McNemar test are computed from.
	Correctness diversity.CorrectnessTable
}

// pairIndex enumerates the three unordered pairs of three detectors.
var pairIndex = [3][2]int{{0, 1}, {0, 2}, {1, 2}}

// ExecuteTrajectory trains the trajectory model on an offset seed, then
// evaluates sentinel, arcane and trajectory plus the 1/2/3-out-of-3 and
// weighted schemes over the scale's dataset, accumulating pairwise
// diversity as it goes.
func ExecuteTrajectory(scale Scale) (*TrajectoryRun, error) {
	model, err := trajectory.Train(trajectory.TrainConfig{Seed: scale.Seed + 0x7261})
	if err != nil {
		return nil, fmt.Errorf("experiments: train trajectory: %w", err)
	}
	traj, err := trajectory.New(trajectory.Config{Model: model})
	if err != nil {
		return nil, fmt.Errorf("experiments: trajectory detector: %w", err)
	}
	sen, err := sentinel.New(sentinel.Config{})
	if err != nil {
		return nil, fmt.Errorf("experiments: sentinel: %w", err)
	}
	arc, err := arcane.New(arcane.Config{})
	if err != nil {
		return nil, fmt.Errorf("experiments: arcane: %w", err)
	}

	gen, err := workload.NewGenerator(workload.Config{
		Seed:     scale.Seed,
		Duration: scale.Duration,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: generator: %w", err)
	}
	enricher := detector.NewEnricher(iprep.BuildFeed())

	run := &TrajectoryRun{Names: [3]string{sen.Name(), arc.Name(), traj.Name()}}
	for i, p := range pairIndex {
		run.Pairs[i].A = run.Names[p[0]]
		run.Pairs[i].B = run.Names[p[1]]
	}
	adjs := [3]ensemble.KOutOfN{{K: 1}, {K: 2}, {K: 3}}
	weighted := ensemble.Weighted{Weights: []float64{1, 1, 1}, Threshold: 0.24}
	verdicts := make([]detector.Verdict, 3)
	err = gen.Run(func(ev workload.Event) error {
		req := enricher.Enrich(ev.Entry)
		verdicts[0] = sen.Inspect(&req)
		verdicts[1] = arc.Inspect(&req)
		verdicts[2] = traj.Inspect(&req)
		malicious := ev.Label.Malicious()
		run.Total++
		for i := range verdicts {
			run.Singles[i].Add(verdicts[i].Alert, malicious)
		}
		for i, adj := range adjs {
			run.Votes[i].Add(adj.Decide(verdicts).Alert, malicious)
		}
		run.Weighted.Add(weighted.Decide(verdicts).Alert, malicious)
		for i, p := range pairIndex {
			a, b := verdicts[p[0]].Alert, verdicts[p[1]].Alert
			run.Pairs[i].Alerts.Add(a, b)
			run.Pairs[i].Correctness.Add(a, b, malicious)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: trajectory run: %w", err)
	}
	return run, nil
}

// Table13 renders E13's accuracy half: singles, vote schemes and the
// weighted fusion.
func Table13(run *TrajectoryRun) *report.Table {
	t := &report.Table{
		Title: "E13 – Semantic trajectory as a third channel (accuracy)",
		Columns: []string{
			"Metric",
			run.Names[0], run.Names[1], run.Names[2],
			"1oo3", "2oo3", "3oo3", "weighted",
		},
		Aligns: []report.Align{
			report.Left,
			report.Right, report.Right, report.Right,
			report.Right, report.Right, report.Right, report.Right,
		},
	}
	confs := []evaluate.Confusion{
		run.Singles[0], run.Singles[1], run.Singles[2],
		run.Votes[0], run.Votes[1], run.Votes[2],
		run.Weighted,
	}
	addConfusionRows(t, confs)
	return t
}

// Table13Diversity renders E13's diversity half: for each detector pair,
// the alert-correlation and labelled-correctness measures plus the
// McNemar significance test over discordant decisions. A lower Yule's Q
// against both incumbents is the evidence that trajectory buys
// independence, not redundancy.
func Table13Diversity(run *TrajectoryRun) *report.Table {
	t := &report.Table{
		Title: "E13 – Pairwise diversity with the trajectory channel",
		Columns: []string{
			"Measure",
			run.Pairs[0].A + "/" + run.Pairs[0].B,
			run.Pairs[1].A + "/" + run.Pairs[1].B,
			run.Pairs[2].A + "/" + run.Pairs[2].B,
		},
		Aligns: []report.Align{report.Left, report.Right, report.Right, report.Right},
	}
	row := func(name string, f func(*PairDiversity) string) {
		cells := make([]string, 0, 4)
		cells = append(cells, name)
		for i := range run.Pairs {
			cells = append(cells, f(&run.Pairs[i]))
		}
		t.AddRow(cells...)
	}
	row("Both alert", func(p *PairDiversity) string { return report.Count(p.Alerts.Both) })
	row("A only", func(p *PairDiversity) string { return report.Count(p.Alerts.AOnly) })
	row("B only", func(p *PairDiversity) string { return report.Count(p.Alerts.BOnly) })
	row("Yule's Q (alerts)", func(p *PairDiversity) string {
		m := diversity.MeasuresFromContingency(p.Alerts)
		if !m.Defined {
			return "n/a"
		}
		return report.Metric(m.YuleQ)
	})
	row("Yule's Q (correct)", func(p *PairDiversity) string {
		m := diversity.MeasuresFromCorrectness(p.Correctness)
		if !m.Defined {
			return "n/a"
		}
		return report.Metric(m.YuleQ)
	})
	row("Disagreement", func(p *PairDiversity) string {
		return report.Metric(diversity.MeasuresFromCorrectness(p.Correctness).Disagreement)
	})
	row("Double fault", func(p *PairDiversity) string {
		return report.Metric(diversity.MeasuresFromCorrectness(p.Correctness).DoubleFault)
	})
	row("McNemar χ²", func(p *PairDiversity) string {
		return report.Metric(diversity.McNemarFromCorrectness(p.Correctness).Statistic)
	})
	row("McNemar p", func(p *PairDiversity) string {
		return report.Metric(diversity.McNemarFromCorrectness(p.Correctness).PValue)
	})
	return t
}
