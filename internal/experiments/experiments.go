// Package experiments defines and executes the reproduction's experiment
// suite: E1-E4 regenerate the paper's four tables; E5-E10 run the labelled
// analyses the paper's Section V plans (sensitivity/specificity,
// adjudication schemes, serial vs parallel deployment, single-tool-alert
// forensics, diversity statistics, ROC sweeps). One streaming pass over a
// generated dataset feeds every per-request accumulator; the topology
// study (E7) runs its own passes because deployment shape changes detector
// state.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"divscrape/internal/arcane"
	"divscrape/internal/detector"
	"divscrape/internal/diversity"
	"divscrape/internal/ensemble"
	"divscrape/internal/evaluate"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/pipeline"
	"divscrape/internal/sentinel"
	"divscrape/internal/workload"
)

// Scale selects how much of the 8-day capture to simulate. The traffic
// profile is identical at every scale; only the window length changes, so
// rates, session shapes and detector behaviour are preserved.
type Scale struct {
	// Name labels the scale in reports ("ci", "paper", ...).
	Name string
	// Duration is the simulated capture window.
	Duration time.Duration
	// Seed fixes the run.
	Seed uint64
}

// Predefined scales.
var (
	// BenchScale is small enough for go test -bench iterations.
	BenchScale = Scale{Name: "bench", Duration: 3 * time.Hour, Seed: 42}
	// CIScale is the default for divreport: one simulated day.
	CIScale = Scale{Name: "ci", Duration: 24 * time.Hour, Seed: 42}
	// PaperScale replays the full 8-day window of the paper's dataset.
	PaperScale = Scale{Name: "paper", Duration: 8 * 24 * time.Hour, Seed: 42}
)

// ScaleByName resolves a scale label.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "bench":
		return BenchScale, nil
	case "ci", "":
		return CIScale, nil
	case "paper":
		return PaperScale, nil
	default:
		return Scale{}, fmt.Errorf("experiments: unknown scale %q (want bench, ci or paper)", name)
	}
}

// DetectorPair names the two tools in paper order: A plays Distil
// (commercial), B plays Arcane (in-house).
type DetectorPair struct {
	A, B string
}

// Run is everything one streaming pass collects.
type Run struct {
	// Scale is the executed scale.
	Scale Scale
	// Names are the detector names (A = commercial-style, B = behavioural).
	Names DetectorPair
	// Total is the number of requests processed.
	Total uint64
	// Cont is the E2 contingency table (A = sentinel, B = arcane).
	Cont diversity.Contingency
	// Status is the E3/E4 per-status breakdown.
	Status *diversity.StatusBreakdown
	// ByArch partitions the contingency by ground-truth archetype (E8).
	ByArch *diversity.ByArchetype
	// ConfA and ConfB are the labelled confusion matrices (E5).
	ConfA, ConfB evaluate.Confusion
	// Conf1oo2 and Conf2oo2 are the adjudicated matrices (E6).
	Conf1oo2, Conf2oo2 evaluate.Confusion
	// ConfWeighted is the score-fusion matrix (E6 extension row).
	ConfWeighted evaluate.Confusion
	// Corr is the labelled agreement-on-correctness table (E9).
	Corr diversity.CorrectnessTable
	// ROCA and ROCB accumulate score distributions for E10.
	ROCA, ROCB *evaluate.GridROC
	// Elapsed is the wall-clock cost of the pass.
	Elapsed time.Duration
}

// buildDetectors constructs the calibrated pair. Exposed through Options
// for the ablation benches.
type Options struct {
	// Sentinel overrides the commercial-style detector config.
	Sentinel sentinel.Config
	// Arcane overrides the behavioural detector config.
	Arcane arcane.Config
	// Profile overrides the traffic mix; zero selects the calibrated one.
	Profile workload.Profile
	// WeightedThreshold is the fused-score alert level for the weighted
	// adjudication row. Default 0.24.
	WeightedThreshold float64
	// Shards, when positive, runs the measurement pass through the
	// sharded detection pipeline with that many workers instead of
	// inspecting inline. Results are identical (the pipeline's merge
	// restores stream order and per-client state is shard-local); only
	// wall-clock changes.
	Shards int
	// Relaxed runs the pass through the ShardedRelaxed pipeline — no
	// stream-order merge; shards deliver independently and a mutex
	// serialises the accumulators. Every accumulator is a commutative
	// per-request add keyed by the event's sequence number, so the tables
	// are still identical to the inline pass. Implies a sharded pass;
	// Shards 0 selects GOMAXPROCS.
	Relaxed bool
}

// Execute runs the full single-pass measurement at the given scale.
func Execute(scale Scale) (*Run, error) {
	return ExecuteOpts(scale, Options{})
}

// ExecuteOpts is Execute with configuration overrides.
func ExecuteOpts(scale Scale, opts Options) (*Run, error) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed:     scale.Seed,
		Duration: scale.Duration,
		Profile:  opts.Profile,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: generator: %w", err)
	}
	wThreshold := opts.WeightedThreshold
	if wThreshold <= 0 {
		wThreshold = 0.24
	}

	run := &Run{
		Scale:  scale,
		Names:  DetectorPair{A: "sentinel", B: "arcane"},
		Status: diversity.NewStatusBreakdown(),
		ByArch: diversity.NewByArchetype(),
		ROCA:   evaluate.NewGridROC(200),
		ROCB:   evaluate.NewGridROC(200),
	}
	// accumulate folds one adjudicated request into every accumulator.
	accumulate := func(ev *workload.Event, va, vb detector.Verdict) {
		malicious := ev.Label.Malicious()
		run.Total++
		run.Cont.Add(va.Alert, vb.Alert)
		run.Status.Add(ev.Entry.Status, va.Alert, vb.Alert)
		run.ByArch.Add(ev.Label.Archetype, va.Alert, vb.Alert)
		run.ConfA.Add(va.Alert, malicious)
		run.ConfB.Add(vb.Alert, malicious)
		run.Conf1oo2.Add(va.Alert || vb.Alert, malicious)
		run.Conf2oo2.Add(va.Alert && vb.Alert, malicious)
		run.ConfWeighted.Add((va.Score+vb.Score)/2 >= wThreshold, malicious)
		run.Corr.Add(va.Alert, vb.Alert, malicious)
		run.ROCA.Add(va.Score, malicious)
		run.ROCB.Add(vb.Score, malicious)
	}

	if opts.Shards > 0 || opts.Relaxed {
		return executeSharded(gen, run, opts, accumulate)
	}

	sen, err := sentinel.New(opts.Sentinel)
	if err != nil {
		return nil, fmt.Errorf("experiments: sentinel: %w", err)
	}
	arc, err := arcane.New(opts.Arcane)
	if err != nil {
		return nil, fmt.Errorf("experiments: arcane: %w", err)
	}

	enricher := detector.NewEnricher(iprep.BuildFeed())
	started := time.Now()
	err = gen.Run(func(ev workload.Event) error {
		req := enricher.Enrich(ev.Entry)
		accumulate(&ev, sen.Inspect(&req), arc.Inspect(&req))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: run: %w", err)
	}
	run.Elapsed = time.Since(started)
	return run, nil
}

// executeSharded runs the measurement pass through the key-partitioned
// pipeline. Events are materialised so labels can be joined back by the
// enricher's sequence number — after the order-restoring merge in
// Sharded mode, or straight off each shard in Relaxed mode (where a
// mutex serialises the accumulators; the joined-by-sequence adds are
// commutative, so delivery order cannot change any table).
func executeSharded(gen *workload.Generator, run *Run, opts Options,
	accumulate func(*workload.Event, detector.Verdict, detector.Verdict)) (*Run, error) {
	events, err := gen.Generate()
	if err != nil {
		return nil, fmt.Errorf("experiments: generate: %w", err)
	}
	mode := pipeline.Sharded
	if opts.Relaxed {
		mode = pipeline.ShardedRelaxed
	}
	pipe, err := pipeline.New(pipeline.Config{
		Factories: []detector.Factory{
			func() (detector.Detector, error) { return sentinel.New(opts.Sentinel) },
			func() (detector.Detector, error) { return arcane.New(opts.Arcane) },
		},
		Reputation: iprep.BuildFeed(),
		Mode:       mode,
		Shards:     opts.Shards,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: pipeline: %w", err)
	}

	started := time.Now()
	i := 0
	src := func() (logfmt.Entry, error) {
		if i >= len(events) {
			return logfmt.Entry{}, io.EOF
		}
		e := events[i].Entry
		i++
		return e, nil
	}
	if opts.Relaxed {
		var mu sync.Mutex
		sinks := make([]pipeline.Sink, pipe.Shards())
		for s := range sinks {
			sinks[s] = func(d pipeline.Decision) error {
				mu.Lock()
				accumulate(&events[d.Req.Seq], d.Verdicts[0], d.Verdicts[1])
				mu.Unlock()
				return nil
			}
		}
		err = pipe.RunRelaxed(context.Background(), src, sinks)
	} else {
		err = pipe.Run(context.Background(), src, func(d pipeline.Decision) error {
			accumulate(&events[d.Req.Seq], d.Verdicts[0], d.Verdicts[1])
			return nil
		})
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: sharded run: %w", err)
	}
	run.Elapsed = time.Since(started)
	return run, nil
}

// TopologyResult is one deployment arrangement's outcome (E7).
type TopologyResult struct {
	// Name identifies the arrangement.
	Name string
	// Conf is its labelled confusion matrix.
	Conf evaluate.Confusion
	// Costs is the per-detector inspection load.
	Costs []ensemble.DetectorCost
}

// ExecuteTopologies measures the four serial arrangements plus the two
// parallel votes, each over a fresh generator pass and fresh detector
// state (E7). Parallel results are recomputed (not reused from Execute)
// so all six rows share identical methodology.
func ExecuteTopologies(scale Scale) ([]TopologyResult, error) {
	type build struct {
		name string
		make func() (ensemble.Topology, error)
	}
	builds := []build{
		{"parallel 1oo2", func() (ensemble.Topology, error) {
			sen, arc, err := freshPair()
			if err != nil {
				return nil, err
			}
			return ensemble.NewParallel(ensemble.KOutOfN{K: 1}, sen, arc)
		}},
		{"parallel 2oo2", func() (ensemble.Topology, error) {
			sen, arc, err := freshPair()
			if err != nil {
				return nil, err
			}
			return ensemble.NewParallel(ensemble.KOutOfN{K: 2}, sen, arc)
		}},
		{"serial sentinel→arcane OR", func() (ensemble.Topology, error) {
			sen, arc, err := freshPair()
			if err != nil {
				return nil, err
			}
			return ensemble.NewSerial(sen, arc, ensemble.CascadeOR)
		}},
		{"serial sentinel→arcane AND", func() (ensemble.Topology, error) {
			sen, arc, err := freshPair()
			if err != nil {
				return nil, err
			}
			return ensemble.NewSerial(sen, arc, ensemble.CascadeAND)
		}},
		{"serial arcane→sentinel OR", func() (ensemble.Topology, error) {
			sen, arc, err := freshPair()
			if err != nil {
				return nil, err
			}
			return ensemble.NewSerial(arc, sen, ensemble.CascadeOR)
		}},
		{"serial arcane→sentinel AND", func() (ensemble.Topology, error) {
			sen, arc, err := freshPair()
			if err != nil {
				return nil, err
			}
			return ensemble.NewSerial(arc, sen, ensemble.CascadeAND)
		}},
	}

	results := make([]TopologyResult, 0, len(builds))
	for _, b := range builds {
		topo, err := b.make()
		if err != nil {
			return nil, fmt.Errorf("experiments: build %s: %w", b.name, err)
		}
		gen, err := workload.NewGenerator(workload.Config{
			Seed:     scale.Seed,
			Duration: scale.Duration,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: generator: %w", err)
		}
		enricher := detector.NewEnricher(iprep.BuildFeed())
		var conf evaluate.Confusion
		err = gen.Run(func(ev workload.Event) error {
			req := enricher.Enrich(ev.Entry)
			v := topo.Inspect(&req)
			conf.Add(v.Alert, ev.Label.Malicious())
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: topology %s: %w", b.name, err)
		}
		results = append(results, TopologyResult{Name: b.name, Conf: conf, Costs: topo.Cost()})
	}
	return results, nil
}

func freshPair() (*sentinel.Detector, *arcane.Detector, error) {
	sen, err := sentinel.New(sentinel.Config{})
	if err != nil {
		return nil, nil, err
	}
	arc, err := arcane.New(arcane.Config{})
	if err != nil {
		return nil, nil, err
	}
	return sen, arc, nil
}
