package experiments

import (
	"fmt"

	"divscrape/internal/arcane"
	"divscrape/internal/bayes"
	"divscrape/internal/detector"
	"divscrape/internal/ensemble"
	"divscrape/internal/evaluate"
	"divscrape/internal/iprep"
	"divscrape/internal/report"
	"divscrape/internal/sentinel"
	"divscrape/internal/workload"
)

// ThreeWayRun is experiment E11: the paper's diverse-detector study
// extended from two detectors to three by adding a learned Naive Bayes
// detector (the probabilistic approach of the paper's cited related
// work). The Bayes model trains on an independent seed so the evaluation
// stays held-out.
type ThreeWayRun struct {
	// Names are the three detector names in vote order.
	Names [3]string
	// Total is the number of evaluated requests.
	Total uint64
	// Singles are the per-detector confusion matrices.
	Singles [3]evaluate.Confusion
	// Votes[k-1] is the k-out-of-3 confusion matrix.
	Votes [3]evaluate.Confusion
}

// ExecuteThreeWay trains the Bayes detector on an offset seed, then
// evaluates all three detectors and the 1/2/3-out-of-3 schemes over the
// scale's dataset.
func ExecuteThreeWay(scale Scale) (*ThreeWayRun, error) {
	model, err := bayes.Train(bayes.TrainConfig{Seed: scale.Seed + 0x5eed})
	if err != nil {
		return nil, fmt.Errorf("experiments: train bayes: %w", err)
	}
	bay, err := bayes.New(bayes.Config{Model: model})
	if err != nil {
		return nil, fmt.Errorf("experiments: bayes detector: %w", err)
	}
	sen, err := sentinel.New(sentinel.Config{})
	if err != nil {
		return nil, fmt.Errorf("experiments: sentinel: %w", err)
	}
	arc, err := arcane.New(arcane.Config{})
	if err != nil {
		return nil, fmt.Errorf("experiments: arcane: %w", err)
	}

	gen, err := workload.NewGenerator(workload.Config{
		Seed:     scale.Seed,
		Duration: scale.Duration,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: generator: %w", err)
	}
	enricher := detector.NewEnricher(iprep.BuildFeed())

	run := &ThreeWayRun{Names: [3]string{sen.Name(), arc.Name(), bay.Name()}}
	adjs := [3]ensemble.KOutOfN{{K: 1}, {K: 2}, {K: 3}}
	verdicts := make([]detector.Verdict, 3)
	err = gen.Run(func(ev workload.Event) error {
		req := enricher.Enrich(ev.Entry)
		verdicts[0] = sen.Inspect(&req)
		verdicts[1] = arc.Inspect(&req)
		verdicts[2] = bay.Inspect(&req)
		malicious := ev.Label.Malicious()
		run.Total++
		for i := range verdicts {
			run.Singles[i].Add(verdicts[i].Alert, malicious)
		}
		for i, adj := range adjs {
			run.Votes[i].Add(adj.Decide(verdicts).Alert, malicious)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: three-way run: %w", err)
	}
	return run, nil
}

// Table11 renders E11.
func Table11(run *ThreeWayRun) *report.Table {
	t := &report.Table{
		Title: "E11 – Three diverse detectors (adding a learned Naive Bayes detector)",
		Columns: []string{
			"Metric",
			run.Names[0], run.Names[1], run.Names[2],
			"1oo3", "2oo3", "3oo3",
		},
		Aligns: []report.Align{
			report.Left,
			report.Right, report.Right, report.Right,
			report.Right, report.Right, report.Right,
		},
	}
	confs := []evaluate.Confusion{
		run.Singles[0], run.Singles[1], run.Singles[2],
		run.Votes[0], run.Votes[1], run.Votes[2],
	}
	addConfusionRows(t, confs)
	return t
}
