package experiments

import (
	"fmt"

	"divscrape/internal/detector"
	"divscrape/internal/diversity"
	"divscrape/internal/evaluate"
	"divscrape/internal/logfmt"
	"divscrape/internal/report"
)

// Table1 renders E1: total requests and per-tool alert counts, with the
// paper's numbers alongside for shape comparison. Column naming follows
// the paper: "Distil" is played by sentinel, "Arcane" by arcane.
func Table1(run *Run) *report.Table {
	t := &report.Table{
		Title:   "Table 1 – HTTP requests alerted by the two tools",
		Columns: []string{"", "Measured", "Share", "Paper", "Share"},
		Aligns:  []report.Align{report.Left, report.Right, report.Right, report.Right, report.Right},
	}
	t.AddRow("Total HTTP requests",
		report.Count(run.Total), "",
		report.Count(PaperTable1.Total), "")
	t.AddRow(fmt.Sprintf("Alerted by %s (Distil role)", run.Names.A),
		report.Count(run.Cont.TotalA()), report.Percent(run.Cont.TotalA(), run.Total),
		report.Count(PaperTable1.Distil), report.Percent(PaperTable1.Distil, PaperTable1.Total))
	t.AddRow(fmt.Sprintf("Alerted by %s (Arcane role)", run.Names.B),
		report.Count(run.Cont.TotalB()), report.Percent(run.Cont.TotalB(), run.Total),
		report.Count(PaperTable1.Arcane), report.Percent(PaperTable1.Arcane, PaperTable1.Total))
	return t
}

// Table2 renders E2: the alerting-diversity contingency table.
func Table2(run *Run) *report.Table {
	t := &report.Table{
		Title:   "Table 2 – Diversity in the alerting behavior by the two tools",
		Columns: []string{"HTTP requests alerted as malicious by", "Measured", "Share", "Paper", "Share"},
		Aligns:  []report.Align{report.Left, report.Right, report.Right, report.Right, report.Right},
	}
	paperTotal := PaperTable1.Total
	t.AddRow("Both tools",
		report.Count(run.Cont.Both), report.Percent(run.Cont.Both, run.Total),
		report.Count(PaperTable2.Both), report.Percent(PaperTable2.Both, paperTotal))
	t.AddRow("Neither",
		report.Count(run.Cont.Neither), report.Percent(run.Cont.Neither, run.Total),
		report.Count(PaperTable2.Neither), report.Percent(PaperTable2.Neither, paperTotal))
	t.AddRow(fmt.Sprintf("%s only (Arcane role)", run.Names.B),
		report.Count(run.Cont.BOnly), report.Percent(run.Cont.BOnly, run.Total),
		report.Count(PaperTable2.ArcaneOnly), report.Percent(PaperTable2.ArcaneOnly, paperTotal))
	t.AddRow(fmt.Sprintf("%s only (Distil role)", run.Names.A),
		report.Count(run.Cont.AOnly), report.Percent(run.Cont.AOnly, run.Total),
		report.Count(PaperTable2.DistilOnly), report.Percent(PaperTable2.DistilOnly, paperTotal))
	return t
}

// Table3 renders E3: alerted requests by HTTP status, overall counts.
// Layout follows the paper: the two tools side by side, each sorted by
// descending count.
func Table3(run *Run) *report.Table {
	return statusTable(
		"Table 3 – Alerted requests by HTTP status – overall counts",
		run.Names, run.Status.OverallB(), run.Status.OverallA())
}

// Table4 renders E4: per-status counts for requests alerted by exactly
// one tool.
func Table4(run *Run) *report.Table {
	return statusTable(
		"Table 4 – Alerted requests by HTTP status – single-tool alerts",
		run.Names, run.Status.ExclusiveB(), run.Status.ExclusiveA())
}

func statusTable(title string, names DetectorPair, arcaneRows, sentinelRows []diversity.StatusCount) *report.Table {
	t := &report.Table{
		Title: title,
		Columns: []string{
			names.B + " status", "Count",
			names.A + " status", "Count",
		},
		Aligns: []report.Align{report.Left, report.Right, report.Left, report.Right},
	}
	rows := len(arcaneRows)
	if len(sentinelRows) > rows {
		rows = len(sentinelRows)
	}
	for i := 0; i < rows; i++ {
		var c0, c1, c2, c3 string
		if i < len(arcaneRows) {
			c0 = logfmt.StatusLabel(arcaneRows[i].Status)
			c1 = report.Count(arcaneRows[i].Count)
		}
		if i < len(sentinelRows) {
			c2 = logfmt.StatusLabel(sentinelRows[i].Status)
			c3 = report.Count(sentinelRows[i].Count)
		}
		t.AddRow(c0, c1, c2, c3)
	}
	return t
}

// Table5 renders E5: the labelled evaluation the paper names as its next
// step — per-tool confusion matrices and the binary-classifier metrics.
func Table5(run *Run) *report.Table {
	t := &report.Table{
		Title:   "E5 – Labelled evaluation (per tool)",
		Columns: []string{"Metric", run.Names.A, run.Names.B},
		Aligns:  []report.Align{report.Left, report.Right, report.Right},
	}
	addConfusionRows(t, []evaluate.Confusion{run.ConfA, run.ConfB})
	return t
}

// Table6 renders E6: adjudication schemes over the pair.
func Table6(run *Run) *report.Table {
	t := &report.Table{
		Title:   "E6 – Adjudication schemes (parallel monitoring)",
		Columns: []string{"Metric", "1-out-of-2", "2-out-of-2", "weighted"},
		Aligns:  []report.Align{report.Left, report.Right, report.Right, report.Right},
	}
	addConfusionRows(t, []evaluate.Confusion{run.Conf1oo2, run.Conf2oo2, run.ConfWeighted})
	return t
}

func addConfusionRows(t *report.Table, confs []evaluate.Confusion) {
	row := func(name string, f func(*evaluate.Confusion) string) {
		cells := make([]string, 0, len(confs)+1)
		cells = append(cells, name)
		for i := range confs {
			cells = append(cells, f(&confs[i]))
		}
		t.AddRow(cells...)
	}
	row("TP", func(c *evaluate.Confusion) string { return report.Count(c.TP) })
	row("FP", func(c *evaluate.Confusion) string { return report.Count(c.FP) })
	row("TN", func(c *evaluate.Confusion) string { return report.Count(c.TN) })
	row("FN", func(c *evaluate.Confusion) string { return report.Count(c.FN) })
	row("Sensitivity", func(c *evaluate.Confusion) string { return report.Metric(c.Sensitivity()) })
	row("Specificity", func(c *evaluate.Confusion) string { return report.Metric(c.Specificity()) })
	row("Precision", func(c *evaluate.Confusion) string { return report.Metric(c.Precision()) })
	row("F1", func(c *evaluate.Confusion) string { return report.Metric(c.F1()) })
	row("MCC", func(c *evaluate.Confusion) string { return report.Metric(c.MCC()) })
}

// Table7 renders E7: deployment topologies with per-detector inspection
// cost — the parallel vs serial trade-off the paper sketches.
func Table7(results []TopologyResult) *report.Table {
	t := &report.Table{
		Title: "E7 – Parallel vs serial deployment (detection vs inspection cost)",
		Columns: []string{
			"Topology", "Sens", "Spec", "F1",
			"Insp(1st)", "Insp(2nd)", "2nd-stage load",
		},
		Aligns: []report.Align{
			report.Left, report.Right, report.Right, report.Right,
			report.Right, report.Right, report.Right,
		},
	}
	for i := range results {
		r := &results[i]
		first, second := uint64(0), uint64(0)
		if len(r.Costs) > 0 {
			first = r.Costs[0].Inspected
		}
		if len(r.Costs) > 1 {
			second = r.Costs[1].Inspected
		}
		t.AddRow(r.Name,
			report.Metric(r.Conf.Sensitivity()),
			report.Metric(r.Conf.Specificity()),
			report.Metric(r.Conf.F1()),
			report.Count(first),
			report.Count(second),
			report.Percent(second, first),
		)
	}
	return t
}

// Table8 renders E8: the per-archetype breakdown of single-tool alerts —
// the paper's "why is a given tool more appropriate to detect certain
// behaviors".
func Table8(run *Run) *report.Table {
	t := &report.Table{
		Title: "E8 – Alert agreement by ground-truth archetype",
		Columns: []string{
			"Archetype", "Requests", "Both",
			run.Names.A + " only", run.Names.B + " only", "Neither",
		},
		Aligns: []report.Align{
			report.Left, report.Right, report.Right,
			report.Right, report.Right, report.Right,
		},
	}
	for _, arch := range detector.Archetypes() {
		ct := run.ByArch.Table(arch)
		if ct.Total() == 0 {
			continue
		}
		t.AddRow(arch.String(),
			report.Count(ct.Total()),
			report.Count(ct.Both),
			report.Count(ct.AOnly),
			report.Count(ct.BOnly),
			report.Count(ct.Neither),
		)
	}
	return t
}

// Table9 renders E9: the classical diversity statistics over both the
// raw alert agreement and the labelled correctness agreement.
func Table9(run *Run) *report.Table {
	alerting := diversity.MeasuresFromContingency(run.Cont)
	correctness := diversity.MeasuresFromCorrectness(run.Corr)
	t := &report.Table{
		Title:   "E9 – Pairwise diversity measures",
		Columns: []string{"Measure", "Alert agreement", "Correctness agreement"},
		Aligns:  []report.Align{report.Left, report.Right, report.Right},
	}
	t.AddRow("Yule's Q", report.Metric(alerting.YuleQ), report.Metric(correctness.YuleQ))
	t.AddRow("Disagreement", report.Metric(alerting.Disagreement), report.Metric(correctness.Disagreement))
	t.AddRow("Double fault / both-miss", report.Metric(alerting.DoubleFault), report.Metric(correctness.DoubleFault))
	mcnemar := diversity.McNemarFromCorrectness(run.Corr)
	t.AddRow("McNemar chi-squared", "", report.Metric(mcnemar.Statistic))
	t.AddRow("McNemar p-value", "", report.Metric(mcnemar.PValue))
	return t
}

// Table10 renders E10: threshold sweeps — AUC plus selected operating
// points per tool.
func Table10(run *Run) *report.Table {
	t := &report.Table{
		Title:   "E10 – ROC threshold sweep",
		Columns: []string{"Quantity", run.Names.A, run.Names.B},
		Aligns:  []report.Align{report.Left, report.Right, report.Right},
	}
	t.AddRow("AUC",
		report.Metric(run.ROCA.AUC()),
		report.Metric(run.ROCB.AUC()))
	ta, ca := run.ROCA.BestYouden()
	tb, cb := run.ROCB.BestYouden()
	t.AddRow("Best-Youden threshold",
		report.Metric(ta), report.Metric(tb))
	t.AddRow("  sensitivity there",
		report.Metric(ca.Sensitivity()), report.Metric(cb.Sensitivity()))
	t.AddRow("  specificity there",
		report.Metric(ca.Specificity()), report.Metric(cb.Specificity()))
	for _, thr := range []float64{0.1, 0.2, 0.3, 0.5} {
		a := run.ROCA.ConfusionAt(thr)
		b := run.ROCB.ConfusionAt(thr)
		t.AddRow(fmt.Sprintf("TPR/FPR @ t=%.1f", thr),
			fmt.Sprintf("%s/%s", report.Metric(a.Sensitivity()), report.Metric(a.FPR())),
			fmt.Sprintf("%s/%s", report.Metric(b.Sensitivity()), report.Metric(b.FPR())),
		)
	}
	return t
}
