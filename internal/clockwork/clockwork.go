// Package clockwork supplies deterministic time and randomness for the
// traffic simulator: a simulated clock and a seeded PRNG with the
// distributions the workload models need (exponential inter-arrivals,
// log-normal think times, Zipf popularity). Everything is reproducible
// from a single seed so experiments regenerate byte-identical datasets.
package clockwork

import (
	"math"
	"math/rand/v2"
	"time"
)

// Source abstracts "what time is it": the simulated Clock below for
// replays and tests, the system clock for live operation. Components that
// need periodic wall-clock work (the eviction sweeper, live metrics) take
// a Source so the same code path is deterministic under test and real in
// production.
type Source interface {
	Now() time.Time
}

// System returns the wall-clock Source backed by time.Now.
func System() Source { return systemSource{} }

type systemSource struct{}

func (systemSource) Now() time.Time { return time.Now() }

// Clock is a manually advanced simulated clock. The zero value is unusable;
// construct with NewClock.
type Clock struct {
	now time.Time
}

// NewClock returns a clock frozen at start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current simulated instant.
func (c *Clock) Now() time.Time { return c.now }

// Advance moves the clock forward by d (negative d is ignored: simulated
// time never goes backwards).
func (c *Clock) Advance(d time.Duration) time.Time {
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}

// AdvanceTo moves the clock to t if t is later than now.
func (c *Clock) AdvanceTo(t time.Time) time.Time {
	if t.After(c.now) {
		c.now = t
	}
	return c.now
}

// Rand wraps a deterministic PRNG with the simulator's distributions.
// It is not safe for concurrent use; give each actor its own, derived
// from the run seed, so actors are independent streams.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a PRNG seeded from two words. Distinct (seed, stream)
// pairs yield independent sequences.
func NewRand(seed, stream uint64) *Rand {
	return &Rand{r: rand.New(rand.NewPCG(seed, stream))}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// IntN returns a uniform value in [0, n). n must be positive.
func (r *Rand) IntN(n int) int { return r.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.r.Uint64() }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.r.Float64() < p }

// Exp returns an exponentially distributed duration with the given mean;
// the inter-arrival law of a Poisson process.
func (r *Rand) Exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	u := r.r.Float64()
	for u == 0 {
		u = r.r.Float64()
	}
	d := time.Duration(-math.Log(u) * float64(mean))
	if d < 0 {
		return 0
	}
	return d
}

// LogNormal returns a log-normally distributed duration with the given
// median and sigma (dispersion of the underlying normal). Human think
// times are classically log-normal: many short gaps, a long tail.
func (r *Rand) LogNormal(median time.Duration, sigma float64) time.Duration {
	if median <= 0 {
		return 0
	}
	n := r.r.NormFloat64()
	d := time.Duration(float64(median) * math.Exp(sigma*n))
	if d < 0 {
		return 0
	}
	return d
}

// Normal returns a normally distributed value.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.r.NormFloat64()
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f]; f is clamped
// to [0, 1].
func (r *Rand) Jitter(d time.Duration, f float64) time.Duration {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	scale := 1 + f*(2*r.r.Float64()-1)
	return time.Duration(float64(d) * scale)
}

// Zipf draws from a Zipf distribution over [0, n) with exponent s > 1;
// product popularity in e-commerce catalogues is classically Zipfian.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a Zipf sampler over [0, n).
func NewZipf(r *Rand, s float64, n uint64) *Zipf {
	if s <= 1 {
		s = 1.1
	}
	if n == 0 {
		n = 1
	}
	return &Zipf{z: rand.NewZipf(r.r, s, 1, n-1)}
}

// Next draws the next index.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// WeightedChoice picks an index in proportion to the given non-negative
// weights. Returns 0 when all weights are zero.
func (r *Rand) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return 0
	}
	x := r.r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Diurnal modulates a base rate by the hour of day: traffic to consumer
// sites follows a day/night cycle with an evening peak. Returns a factor
// in [min, max] shaped as a cosine with its trough around 4am local time.
func Diurnal(t time.Time, min, max float64) float64 {
	if min > max {
		min, max = max, min
	}
	hour := float64(t.Hour()) + float64(t.Minute())/60
	// Trough at 04:00, peak at 16:00.
	phase := (hour - 4) / 24 * 2 * math.Pi
	shape := (1 - math.Cos(phase)) / 2 // 0 at trough, 1 at peak
	return min + (max-min)*shape
}
