package clockwork

import (
	"math"
	"testing"
	"time"
)

var base = time.Date(2018, 3, 11, 0, 0, 0, 0, time.UTC)

func TestClock(t *testing.T) {
	c := NewClock(base)
	if !c.Now().Equal(base) {
		t.Error("clock not at start")
	}
	c.Advance(time.Minute)
	if !c.Now().Equal(base.Add(time.Minute)) {
		t.Error("Advance wrong")
	}
	// Time never goes backwards.
	c.Advance(-time.Hour)
	if !c.Now().Equal(base.Add(time.Minute)) {
		t.Error("negative Advance moved the clock")
	}
	c.AdvanceTo(base) // earlier: ignored
	if !c.Now().Equal(base.Add(time.Minute)) {
		t.Error("AdvanceTo moved backwards")
	}
	c.AdvanceTo(base.Add(time.Hour))
	if !c.Now().Equal(base.Add(time.Hour)) {
		t.Error("AdvanceTo failed")
	}
}

func TestRandDeterminism(t *testing.T) {
	a := NewRand(1, 2)
	b := NewRand(1, 2)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical seeds diverged")
		}
	}
	c := NewRand(1, 3)
	same := true
	a2 := NewRand(1, 2)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different streams produced identical sequences")
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(42, 0)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(time.Second)
	}
	mean := float64(sum) / n / float64(time.Second)
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("Exp mean = %g s, want ~1", mean)
	}
	if r.Exp(0) != 0 || r.Exp(-time.Second) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRand(42, 1)
	const n = 20001
	samples := make([]time.Duration, n)
	for i := range samples {
		samples[i] = r.LogNormal(8*time.Second, 1.0)
	}
	// Median of samples should approximate the parameter.
	count := 0
	for _, s := range samples {
		if s < 8*time.Second {
			count++
		}
	}
	frac := float64(count) / n
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("fraction below median = %g, want ~0.5", frac)
	}
	if r.LogNormal(0, 1) != 0 {
		t.Error("non-positive median should yield 0")
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRand(42, 2)
	for i := 0; i < 1000; i++ {
		d := r.Jitter(time.Second, 0.25)
		if d < 750*time.Millisecond || d > 1250*time.Millisecond {
			t.Fatalf("Jitter out of bounds: %v", d)
		}
	}
	// Factor clamping.
	if d := r.Jitter(time.Second, -1); d != time.Second {
		t.Errorf("negative factor not clamped: %v", d)
	}
	for i := 0; i < 100; i++ {
		if d := r.Jitter(time.Second, 5); d < 0 || d > 2*time.Second {
			t.Fatalf("factor > 1 not clamped: %v", d)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRand(42, 3)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("Bool(0.3) hit rate = %g", frac)
	}
}

func TestWeightedChoice(t *testing.T) {
	r := NewRand(42, 4)
	counts := [3]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice([]float64{1, 2, 1})]++
	}
	if math.Abs(float64(counts[1])/n-0.5) > 0.03 {
		t.Errorf("middle weight selected %d of %d", counts[1], n)
	}
	// Degenerate weight vectors.
	if r.WeightedChoice([]float64{0, 0}) != 0 {
		t.Error("all-zero weights should return 0")
	}
	if got := r.WeightedChoice([]float64{-1, 0, 5}); got != 2 {
		t.Errorf("negative weights not skipped: %d", got)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(42, 5)
	z := NewZipf(r, 1.3, 1000)
	counts := make(map[uint64]int)
	const n = 20000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 100 heavily.
	if counts[0] < 10*counts[100]+1 {
		t.Errorf("Zipf not skewed: rank0=%d rank100=%d", counts[0], counts[100])
	}
	// Degenerate parameters are clamped, not fatal.
	_ = NewZipf(r, 0.5, 0)
}

func TestDiurnalShape(t *testing.T) {
	trough := Diurnal(time.Date(2018, 3, 11, 4, 0, 0, 0, time.UTC), 0.2, 1.0)
	peak := Diurnal(time.Date(2018, 3, 11, 16, 0, 0, 0, time.UTC), 0.2, 1.0)
	if math.Abs(trough-0.2) > 1e-9 {
		t.Errorf("trough = %g, want 0.2", trough)
	}
	if math.Abs(peak-1.0) > 1e-9 {
		t.Errorf("peak = %g, want 1.0", peak)
	}
	// All hours stay within bounds, inverted bounds are swapped.
	for h := 0; h < 24; h++ {
		v := Diurnal(time.Date(2018, 3, 11, h, 30, 0, 0, time.UTC), 1.0, 0.2)
		if v < 0.2-1e-9 || v > 1.0+1e-9 {
			t.Fatalf("hour %d: %g out of [0.2, 1.0]", h, v)
		}
	}
}

func TestNormal(t *testing.T) {
	r := NewRand(42, 6)
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := r.Normal(10, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 || math.Abs(sd-2) > 0.1 {
		t.Errorf("Normal(10,2) measured mean=%g sd=%g", mean, sd)
	}
}

func TestPermIntN(t *testing.T) {
	r := NewRand(42, 7)
	p := r.Perm(10)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	for i := 0; i < 100; i++ {
		if v := r.IntN(7); v < 0 || v >= 7 {
			t.Fatalf("IntN out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}
