package logfmt

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

const goodLine = `10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1" 200 5 "-" "-"`

func TestReaderStrictAbortsOnCorruption(t *testing.T) {
	input := goodLine + "\n" + "CORRUPT LINE\n" + goodLine + "\n"
	r := NewReader(strings.NewReader(input), ReaderConfig{Policy: Strict})
	if _, err := r.Next(); err != nil {
		t.Fatalf("first line: %v", err)
	}
	_, err := r.Next()
	if err == nil {
		t.Fatal("expected error on corrupt line")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not wrap *ParseError", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not identify the line number", err)
	}
	// The reader is poisoned after a strict failure.
	if _, err2 := r.Next(); !errors.Is(err2, err) {
		t.Errorf("subsequent Next returned %v, want the sticky error", err2)
	}
}

func TestReaderSkipCountsCorruption(t *testing.T) {
	input := strings.Join([]string{
		goodLine,
		"CORRUPT",
		"", // blank lines are ignored silently
		goodLine,
		"ALSO CORRUPT",
	}, "\n")
	r := NewReader(strings.NewReader(input), ReaderConfig{Policy: Skip})
	var n int
	for {
		_, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		n++
	}
	if n != 2 {
		t.Errorf("decoded %d entries, want 2", n)
	}
	if r.Skipped() != 2 {
		t.Errorf("Skipped() = %d, want 2", r.Skipped())
	}
}

func TestReaderForEach(t *testing.T) {
	input := strings.Repeat(goodLine+"\n", 5)
	r := NewReader(strings.NewReader(input), ReaderConfig{})
	var n int
	err := r.ForEach(func(Entry) error {
		n++
		return nil
	})
	if err != nil || n != 5 {
		t.Fatalf("ForEach: n=%d err=%v, want 5 nil", n, err)
	}

	// Early stop propagates the callback error.
	r2 := NewReader(strings.NewReader(input), ReaderConfig{})
	sentinel := errors.New("stop")
	err = r2.ForEach(func(Entry) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("ForEach error = %v, want sentinel", err)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	entries := []Entry{
		{
			RemoteAddr: "10.0.0.1", Identity: "-", AuthUser: "-",
			Time:   time.Date(2018, 3, 11, 6, 0, 0, 0, time.UTC),
			Method: "GET", Path: "/", Proto: "HTTP/1.1",
			Status: 200, Bytes: 100, Referer: "-", UserAgent: "x",
		},
		{
			RemoteAddr: "10.0.0.2", Identity: "-", AuthUser: "u",
			Time:   time.Date(2018, 3, 11, 6, 0, 1, 0, time.UTC),
			Method: "POST", Path: "/__verify", Proto: "HTTP/1.1",
			Status: 204, Bytes: -1, Referer: "/", UserAgent: `a "b"`,
		},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range entries {
		if err := w.Write(&entries[i]); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if w.Count() != 2 {
		t.Errorf("Count = %d, want 2", w.Count())
	}

	r := NewReader(&buf, ReaderConfig{})
	for i := range entries {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("read back %d: %v", i, err)
		}
		if !got.Equal(&entries[i]) {
			t.Errorf("entry %d mismatch:\n got  %+v\n want %+v", i, got, entries[i])
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestReaderHugeLineRejected(t *testing.T) {
	long := goodLine + strings.Repeat("x", 2048)
	r := NewReader(strings.NewReader(long), ReaderConfig{MaxLineBytes: 256})
	if _, err := r.Next(); err == nil {
		t.Error("expected error for oversized line")
	}
}

func TestStatusLabel(t *testing.T) {
	tests := []struct {
		code int
		want string
	}{
		{200, "200 (OK)"},
		{204, "204 (No content)"},
		{302, "302 (Found)"},
		{304, "304 (Not modified)"},
		{400, "400 (Bad request)"},
		{403, "403 (Forbidden)"},
		{404, "404 (Not found)"},
		{500, "500 (Internal Server Error)"},
		{418, "418"},
	}
	for _, tt := range tests {
		if got := StatusLabel(tt.code); got != tt.want {
			t.Errorf("StatusLabel(%d) = %q, want %q", tt.code, got, tt.want)
		}
	}
}

func TestPaperStatusesAllLabelled(t *testing.T) {
	for _, code := range PaperStatuses() {
		label := StatusLabel(code)
		if !strings.Contains(label, "(") {
			t.Errorf("paper status %d has no name: %q", code, label)
		}
	}
}
