package logfmt

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// ParallelReader decodes Combined Log Format with the parse stage fanned
// out across worker goroutines: a splitter carves the input into chunks
// on newline boundaries, workers parse chunks independently (each with a
// private Interner, so the zero-alloc fast path needs no locks), and the
// consumer reassembles the results in chunk-sequence order. The entry
// stream NextInto yields is therefore byte-identical to Reader's over the
// same input — including malformed-line handling, CR stripping, global
// line numbers in Strict errors, and the Skipped/Lines counters — only
// the wall-clock cost differs. Equivalence across worker counts and chunk
// sizes is pinned by TestParallelReaderEquivalence.
//
// ParallelReader is the ingest-side counterpart of the pipeline's
// ShardedRelaxed mode: once detection stops serialising on a merge, a
// single-goroutine parser becomes the next wall, and parsing is the one
// stage with no cross-request state at all — chunks only have to be cut
// on line boundaries and re-sequenced.
//
// The consumer side (NextInto/Next) must be driven by one goroutine.
// Memory is bounded: at most a handful of chunks (splitter + workers +
// reorder margin) are in flight, and chunk buffers and entry slabs
// recycle through pools.
type ParallelReader struct {
	policy   ErrPolicy
	chunkSz  int
	maxLine  int
	nworkers int

	work    chan rawChunk
	results chan parsedChunk
	stop    chan struct{}
	stopped sync.Once

	bufPool   sync.Pool // *[]byte, cap ≥ chunkSz
	entryPool sync.Pool // *[]Entry

	// Consumer state.
	pending map[int]parsedChunk
	cur     parsedChunk
	curIdx  int
	haveCur bool
	nextSeq int
	lineNo  int
	skipped int
	err     error

	// readErr is the splitter's terminal read error (nil for clean EOF);
	// written before the work channel closes, read by the consumer only
	// after the results channel closes, so the channel closures order the
	// accesses.
	readErr error
}

// ParallelConfig parameterises NewParallelReader.
type ParallelConfig struct {
	// Policy selects the malformed-line behaviour. Defaults to Strict,
	// matching Reader.
	Policy ErrPolicy
	// Workers is the parse goroutine count. Defaults to GOMAXPROCS.
	Workers int
	// ChunkBytes is the target chunk size handed to each worker. Larger
	// chunks amortise hand-off overhead; smaller ones bound reorder
	// latency. Defaults to 256 KiB.
	ChunkBytes int
	// MaxLineBytes bounds a single line, like ReaderConfig.MaxLineBytes;
	// input containing a longer line fails with bufio.ErrTooLong.
	// Defaults to 1 MiB.
	MaxLineBytes int
}

// rawChunk is the splitter→worker unit: data always ends on a line
// boundary (or the end of input) and never splits a line.
type rawChunk struct {
	seq       int
	data      []byte
	buf       *[]byte // backing buffer, recycled by the worker
	startLine int     // 1-based global line number of data's first line
}

// parsedChunk is the worker→consumer unit.
type parsedChunk struct {
	seq     int
	entries *[]Entry
	lines   int // lines consumed (all of them, or up to a Strict error)
	skipped int
	err     error // Strict parse error, already carrying the line number
}

// NewParallelReader starts the split/parse goroutines over r. The caller
// must drain to io.EOF (or a terminal error) or call Close, either of
// which releases the goroutines.
func NewParallelReader(r io.Reader, cfg ParallelConfig) *ParallelReader {
	if cfg.Policy == 0 {
		cfg.Policy = Strict
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 256 * 1024
	}
	if cfg.MaxLineBytes <= 0 {
		cfg.MaxLineBytes = 1 << 20
	}
	pr := &ParallelReader{
		policy:   cfg.Policy,
		chunkSz:  cfg.ChunkBytes,
		maxLine:  cfg.MaxLineBytes,
		nworkers: cfg.Workers,
		work:     make(chan rawChunk, cfg.Workers),
		results:  make(chan parsedChunk, 2*cfg.Workers),
		stop:     make(chan struct{}),
		pending:  make(map[int]parsedChunk, 2*cfg.Workers),
	}
	sz := cfg.ChunkBytes
	pr.bufPool.New = func() any {
		b := make([]byte, 0, sz)
		return &b
	}
	pr.entryPool.New = func() any {
		es := make([]Entry, 0, 64)
		return &es
	}

	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr.worker()
		}()
	}
	go func() {
		wg.Wait()
		close(pr.results)
	}()
	go pr.split(r)
	return pr
}

// split carves the input into newline-aligned chunks. It owns the carry
// of the trailing partial line between reads.
func (pr *ParallelReader) split(r io.Reader) {
	defer close(pr.work)
	var carry []byte
	seq := 0
	line := 1
	var rerr error
	for rerr == nil {
		bp := pr.bufPool.Get().(*[]byte)
		b := append((*bp)[:0], carry...)
		carry = carry[:0]
		// Fill to at least one target chunk containing a newline; a line
		// longer than the bound is the same terminal error the buffered
		// scanner reports.
		target := pr.chunkSz
		for {
			for len(b) < target && rerr == nil {
				if len(b) == cap(b) {
					b = append(b, 0)[:len(b)]
				}
				var n int
				n, rerr = r.Read(b[len(b):cap(b)])
				b = b[:len(b)+n]
			}
			if bytes.IndexByte(b, '\n') >= 0 || rerr != nil {
				break
			}
			if len(b) > pr.maxLine {
				rerr = bufio.ErrTooLong
				b = b[:0]
				break
			}
			target = len(b) + pr.chunkSz
		}
		// On any terminal read condition (EOF or a mid-stream failure) the
		// whole buffer ships, partial final line included — the buffered
		// scanner likewise drains its buffer before surfacing the error.
		data := b
		if rerr == nil {
			cut := bytes.LastIndexByte(b, '\n') + 1 // > 0: loop above guarantees one
			data = b[:cut]
			if len(b)-cut > pr.maxLine {
				rerr = bufio.ErrTooLong
			}
			carry = append(carry, b[cut:]...)
		}
		if len(data) == 0 {
			*bp = b[:0]
			pr.bufPool.Put(bp)
			continue
		}
		*bp = b
		rc := rawChunk{seq: seq, data: data, buf: bp, startLine: line}
		select {
		case pr.work <- rc:
		case <-pr.stop:
			return
		}
		seq++
		line += bytes.Count(data, nl)
		if data[len(data)-1] != '\n' {
			line++ // final unterminated line
		}
	}
	if rerr != io.EOF {
		pr.readErr = rerr
	}
}

var nl = []byte{'\n'}

func (pr *ParallelReader) worker() {
	in := NewInterner(1 << 16)
	for rc := range pr.work {
		select {
		case <-pr.stop:
			*rc.buf = (*rc.buf)[:0]
			pr.bufPool.Put(rc.buf)
			continue // keep draining so the splitter never blocks forever
		default:
		}
		pc := parsedChunk{seq: rc.seq}
		esp := pr.entryPool.Get().(*[]Entry)
		entries := (*esp)[:0]
		lineNo := rc.startLine
		data := rc.data
		for len(data) > 0 {
			var ln []byte
			if i := bytes.IndexByte(data, '\n'); i >= 0 {
				ln, data = data[:i], data[i+1:]
			} else {
				ln, data = data, nil
			}
			if n := len(ln); n > 0 && ln[n-1] == '\r' {
				ln = ln[:n-1] // ScanLines parity: CRLF terminators
			}
			if len(ln) == 0 {
				lineNo++
				continue
			}
			entries = append(entries, Entry{})
			if err := ParseCombinedBytes(ln, &entries[len(entries)-1], in); err != nil {
				entries = entries[:len(entries)-1]
				if pr.policy == Strict {
					pc.err = fmt.Errorf("line %d: %w", lineNo, err)
					lineNo++
					break
				}
				pc.skipped++
			}
			lineNo++
		}
		pc.lines = lineNo - rc.startLine
		*esp = entries
		pc.entries = esp
		*rc.buf = (*rc.buf)[:0]
		pr.bufPool.Put(rc.buf)
		select {
		case pr.results <- pc:
		case <-pr.stop:
			pr.entryPool.Put(esp)
		}
	}
}

// NextInto decodes the next well-formed entry into *e, in the exact
// order Reader would have produced. It returns io.EOF at end of input, a
// *ParseError wrapped with its line position under the Strict policy, or
// the underlying read error. Terminal errors are sticky and release the
// reader's goroutines; the contents of *e are unspecified on error.
func (pr *ParallelReader) NextInto(e *Entry) error {
	if pr.err != nil {
		return pr.err
	}
	for {
		if pr.haveCur {
			if pr.curIdx < len(*pr.cur.entries) {
				*e = (*pr.cur.entries)[pr.curIdx]
				pr.curIdx++
				return nil
			}
			// Chunk exhausted: settle its accounting, surface a Strict
			// error positioned after the entries that preceded it.
			pr.lineNo += pr.cur.lines
			pr.skipped += pr.cur.skipped
			err := pr.cur.err
			pr.entryPool.Put(pr.cur.entries)
			pr.haveCur = false
			pr.nextSeq++
			if err != nil {
				return pr.fail(err)
			}
		}
		if pc, ok := pr.pending[pr.nextSeq]; ok {
			delete(pr.pending, pr.nextSeq)
			pr.cur, pr.curIdx, pr.haveCur = pc, 0, true
			continue
		}
		pc, ok := <-pr.results
		if !ok {
			if pr.readErr != nil {
				return pr.fail(pr.readErr)
			}
			return pr.fail(io.EOF)
		}
		pr.pending[pc.seq] = pc
	}
}

// Next returns the next well-formed entry; see NextInto.
func (pr *ParallelReader) Next() (Entry, error) {
	var e Entry
	if err := pr.NextInto(&e); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// Skipped reports how many malformed lines were dropped under the Skip
// policy, across all entries delivered so far.
func (pr *ParallelReader) Skipped() int { return pr.skipped }

// Lines reports how many input lines back the entries delivered so far.
func (pr *ParallelReader) Lines() int { return pr.lineNo }

// Close releases the reader's goroutines without draining the input.
// Safe to call at any point (including after EOF, where it is a no-op);
// subsequent NextInto calls report the terminal state.
func (pr *ParallelReader) Close() error {
	pr.fail(io.EOF)
	return nil
}

// fail records the terminal error and shuts the goroutines down: the
// stop channel unblocks the splitter and workers, and draining results
// lets them all exit. Returns the error for tail-call convenience.
func (pr *ParallelReader) fail(err error) error {
	if pr.err == nil {
		pr.err = err
	}
	pr.stopped.Do(func() {
		close(pr.stop)
		go func() {
			for range pr.results {
			}
		}()
	})
	return pr.err
}
