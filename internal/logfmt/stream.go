package logfmt

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// ErrPolicy controls how a Reader reacts to malformed lines.
type ErrPolicy int

const (
	// Strict aborts reading at the first malformed line.
	Strict ErrPolicy = iota + 1
	// Skip counts malformed lines and continues with the next one.
	Skip
)

// Reader streams Entry values from an access-log file.
//
// Real log files contain the occasional truncated or corrupt line (log
// rotation mid-write, disk pressure, multi-writer interleaving), so Reader
// supports a skip policy that counts malformed lines rather than failing.
type Reader struct {
	sc       *bufio.Scanner
	policy   ErrPolicy
	lineNo   int
	badLines int
	err      error
	intern   *Interner
}

// ReaderConfig parameterises NewReader.
type ReaderConfig struct {
	// Policy selects the malformed-line behaviour. Defaults to Strict.
	Policy ErrPolicy
	// MaxLineBytes bounds a single line. Defaults to 1 MiB.
	MaxLineBytes int
}

// NewReader wraps r for streaming Combined Log Format decoding.
func NewReader(r io.Reader, cfg ReaderConfig) *Reader {
	if cfg.Policy == 0 {
		cfg.Policy = Strict
	}
	if cfg.MaxLineBytes <= 0 {
		cfg.MaxLineBytes = 1 << 20
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), cfg.MaxLineBytes)
	return &Reader{sc: sc, policy: cfg.Policy, intern: NewInterner(1 << 16)}
}

// Next returns the next well-formed entry. It returns io.EOF when the input
// is exhausted, or a *ParseError (wrapped with line position) under the
// Strict policy.
func (r *Reader) Next() (Entry, error) {
	var e Entry
	if err := r.NextInto(&e); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// NextInto decodes the next well-formed entry into *e, the allocation-free
// counterpart of Next: the line buffer is not copied, string fields are
// interned across lines, and *e may be reused call after call. On a non-nil
// error the contents of *e are unspecified.
func (r *Reader) NextInto(e *Entry) error {
	if r.err != nil {
		return r.err
	}
	for r.sc.Scan() {
		r.lineNo++
		line := r.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		err := ParseCombinedBytes(line, e, r.intern)
		if err == nil {
			return nil
		}
		if r.policy == Strict {
			r.err = fmt.Errorf("line %d: %w", r.lineNo, err)
			return r.err
		}
		r.badLines++
	}
	if err := r.sc.Err(); err != nil {
		r.err = err
		return err
	}
	r.err = io.EOF
	return io.EOF
}

// Skipped reports how many malformed lines were dropped under the Skip
// policy.
func (r *Reader) Skipped() int { return r.badLines }

// Lines reports how many lines have been consumed so far.
func (r *Reader) Lines() int { return r.lineNo }

// ForEach streams all remaining entries to fn, stopping early if fn returns
// an error. A fn error is returned verbatim; end of input returns nil.
func (r *Reader) ForEach(fn func(Entry) error) error {
	for {
		e, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(e); err != nil {
			return err
		}
	}
}

// Writer streams entries to an underlying writer in Combined Log Format.
// It reuses an internal buffer; Flush must be called before the underlying
// writer is closed.
type Writer struct {
	bw  *bufio.Writer
	buf []byte
	n   int64
}

// NewWriter returns a Writer emitting Combined Log Format lines to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 256*1024), buf: make([]byte, 0, 512)}
}

// Write appends one record. Entries are written in call order.
func (w *Writer) Write(e *Entry) error {
	w.buf = AppendCombined(w.buf[:0], e)
	w.buf = append(w.buf, '\n')
	if _, err := w.bw.Write(w.buf); err != nil {
		return fmt.Errorf("logfmt: write entry: %w", err)
	}
	w.n++
	return nil
}

// Count reports how many entries have been written.
func (w *Writer) Count() int64 { return w.n }

// Flush drains buffered output to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("logfmt: flush: %w", err)
	}
	return nil
}
