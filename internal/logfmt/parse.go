package logfmt

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseError describes a malformed access-log line. It records the zero-based
// byte offset where parsing failed and a short description of what was
// expected, so that operators can locate corruption in multi-gigabyte logs.
type ParseError struct {
	// Offset is the byte position in the line where parsing stopped.
	Offset int
	// Reason describes what the parser expected at Offset.
	Reason string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("logfmt: parse error at offset %d: %s", e.Offset, e.Reason)
}

// ParseCombined parses one line in Apache Combined Log Format:
//
//	remote identity authuser [time] "request" status bytes "referer" "user-agent"
//
// Quoted fields may contain backslash-escaped quotes and backslashes, as
// produced by Apache's log escaping.
func ParseCombined(line string) (Entry, error) {
	var e Entry
	p := parser{s: line}
	if err := p.common(&e); err != nil {
		return Entry{}, err
	}
	ref, err := p.quoted("referer")
	if err != nil {
		return Entry{}, err
	}
	e.Referer = ref
	ua, err := p.quoted("user-agent")
	if err != nil {
		return Entry{}, err
	}
	e.UserAgent = ua
	if !p.atEnd() {
		return Entry{}, &ParseError{Offset: p.i, Reason: "trailing data after user-agent"}
	}
	return e, nil
}

// ParseCommon parses one line in Apache Common Log Format (the Combined
// format without the referer and user-agent fields).
func ParseCommon(line string) (Entry, error) {
	var e Entry
	p := parser{s: line}
	if err := p.common(&e); err != nil {
		return Entry{}, err
	}
	if !p.atEnd() {
		return Entry{}, &ParseError{Offset: p.i, Reason: "trailing data after bytes field"}
	}
	e.Referer = "-"
	e.UserAgent = "-"
	return e, nil
}

// parser is a cursor over a single log line.
type parser struct {
	s string
	i int
}

// common consumes the fields shared by Common and Combined formats.
func (p *parser) common(e *Entry) error {
	var err error
	if e.RemoteAddr, err = p.token("remote address"); err != nil {
		return err
	}
	if e.Identity, err = p.token("identity"); err != nil {
		return err
	}
	if e.AuthUser, err = p.token("auth user"); err != nil {
		return err
	}
	if e.Time, err = p.bracketedTime(); err != nil {
		return err
	}
	req, err := p.quoted("request line")
	if err != nil {
		return err
	}
	splitRequest(req, e)
	statusTok, err := p.token("status")
	if err != nil {
		return err
	}
	status, err := strconv.Atoi(statusTok)
	if err != nil || status < 100 || status > 599 {
		return &ParseError{Offset: p.i, Reason: "invalid status code " + strconv.Quote(statusTok)}
	}
	e.Status = status
	sizeTok, err := p.token("bytes")
	if err != nil {
		return err
	}
	if sizeTok == "-" {
		e.Bytes = -1
	} else {
		n, err := strconv.ParseInt(sizeTok, 10, 64)
		if err != nil || n < 0 {
			return &ParseError{Offset: p.i, Reason: "invalid bytes field " + strconv.Quote(sizeTok)}
		}
		e.Bytes = n
	}
	return nil
}

// splitRequest fills Method/Path/Proto from the quoted request line, or
// RawRequest when the line does not have the canonical three-part shape.
func splitRequest(req string, e *Entry) {
	sp1 := strings.IndexByte(req, ' ')
	if sp1 <= 0 {
		e.RawRequest = req
		return
	}
	sp2 := strings.LastIndexByte(req, ' ')
	if sp2 == sp1 {
		e.RawRequest = req
		return
	}
	method, path, proto := req[:sp1], req[sp1+1:sp2], req[sp2+1:]
	if !validMethod(method) || !strings.HasPrefix(proto, "HTTP/") || path == "" {
		e.RawRequest = req
		return
	}
	e.Method, e.Path, e.Proto = method, path, proto
}

func validMethod(m string) bool {
	if m == "" {
		return false
	}
	for i := 0; i < len(m); i++ {
		c := m[i]
		if c < 'A' || c > 'Z' {
			return false
		}
	}
	return true
}

func (p *parser) skipSpaces() {
	for p.i < len(p.s) && p.s[p.i] == ' ' {
		p.i++
	}
}

func (p *parser) atEnd() bool {
	p.skipSpaces()
	return p.i == len(p.s)
}

// token consumes a space-delimited field.
func (p *parser) token(what string) (string, error) {
	p.skipSpaces()
	if p.i >= len(p.s) {
		return "", &ParseError{Offset: p.i, Reason: "missing " + what}
	}
	start := p.i
	for p.i < len(p.s) && p.s[p.i] != ' ' {
		p.i++
	}
	return p.s[start:p.i], nil
}

// bracketedTime consumes "[...]" and parses the Apache timestamp inside.
func (p *parser) bracketedTime() (time.Time, error) {
	p.skipSpaces()
	if p.i >= len(p.s) || p.s[p.i] != '[' {
		return time.Time{}, &ParseError{Offset: p.i, Reason: "expected '[' opening timestamp"}
	}
	p.i++
	end := strings.IndexByte(p.s[p.i:], ']')
	if end < 0 {
		return time.Time{}, &ParseError{Offset: p.i, Reason: "unterminated timestamp"}
	}
	raw := p.s[p.i : p.i+end]
	t, err := time.Parse(ApacheTime, raw)
	if err != nil {
		return time.Time{}, &ParseError{Offset: p.i, Reason: "invalid timestamp " + strconv.Quote(raw)}
	}
	p.i += end + 1
	return t, nil
}

// quoted consumes a double-quoted field, handling \" and \\ escapes.
func (p *parser) quoted(what string) (string, error) {
	p.skipSpaces()
	if p.i >= len(p.s) || p.s[p.i] != '"' {
		return "", &ParseError{Offset: p.i, Reason: "expected '\"' opening " + what}
	}
	p.i++
	// Fast path: no escapes before the closing quote.
	rest := p.s[p.i:]
	if j := strings.IndexAny(rest, `"\`); j >= 0 && rest[j] == '"' {
		p.i += j + 1
		return rest[:j], nil
	}
	var sb strings.Builder
	for p.i < len(p.s) {
		c := p.s[p.i]
		switch c {
		case '"':
			p.i++
			return sb.String(), nil
		case '\\':
			if p.i+1 >= len(p.s) {
				return "", &ParseError{Offset: p.i, Reason: "dangling escape in " + what}
			}
			next := p.s[p.i+1]
			switch next {
			case '"', '\\':
				sb.WriteByte(next)
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				sb.WriteByte('\\')
				sb.WriteByte(next)
			}
			p.i += 2
		default:
			sb.WriteByte(c)
			p.i++
		}
	}
	return "", &ParseError{Offset: p.i, Reason: "unterminated " + what}
}
