package logfmt

import "strconv"

// Status codes that appear in the paper's tables. The generator and the
// report renderer share this registry so tables carry the same labels the
// paper prints, e.g. "200 (OK)".
const (
	StatusOK                  = 200
	StatusNoContent           = 204
	StatusFound               = 302
	StatusNotModified         = 304
	StatusBadRequest          = 400
	StatusForbidden           = 403
	StatusNotFound            = 404
	StatusInternalServerError = 500
)

// statusNames maps the codes used by the evaluation to the human-readable
// names the paper prints next to them.
var statusNames = map[int]string{
	StatusOK:                  "OK",
	StatusNoContent:           "No content",
	StatusFound:               "Found",
	StatusNotModified:         "Not modified",
	StatusBadRequest:          "Bad request",
	StatusForbidden:           "Forbidden",
	StatusNotFound:            "Not found",
	StatusInternalServerError: "Internal Server Error",
	201:                       "Created",
	206:                       "Partial content",
	301:                       "Moved permanently",
	401:                       "Unauthorized",
	405:                       "Method not allowed",
	429:                       "Too many requests",
	502:                       "Bad gateway",
	503:                       "Service unavailable",
}

// StatusLabel renders a status code the way the paper's tables do:
// "200 (OK)". Unknown codes render as the bare number.
func StatusLabel(code int) string {
	name, ok := statusNames[code]
	if !ok {
		return strconv.Itoa(code)
	}
	return strconv.Itoa(code) + " (" + name + ")"
}

// PaperStatuses lists, in a stable order, the status codes that the paper's
// Tables 3 and 4 break alerts down by.
func PaperStatuses() []int {
	return []int{
		StatusOK,
		StatusFound,
		StatusNoContent,
		StatusBadRequest,
		StatusNotModified,
		StatusNotFound,
		StatusInternalServerError,
		StatusForbidden,
	}
}
