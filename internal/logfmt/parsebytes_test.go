package logfmt

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// corpusLines is a mix of shapes exercising every branch of the fast
// parser: plain GETs, dash fields, auth users, escapes, raw request lines,
// query strings and non-UTC zones.
var corpusLines = []string{
	`10.1.2.3 - - [11/Mar/2018:06:25:14 +0000] "GET /product/17 HTTP/1.1" 200 52344 "/category/3" "Mozilla/5.0 (X11; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0"`,
	`172.16.0.9 - - [11/Mar/2018:06:25:14 +0000] "POST /__verify HTTP/1.1" 204 - "-" "curl/7.58.0"`,
	`10.112.0.4 - ota-partner-7 [12/Mar/2018:09:00:01 +0000] "GET /api/price/5 HTTP/1.1" 200 431 "-" "Java/1.8.0_151"`,
	`10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1" 200 5 "-" "weird \"agent\" v1"`,
	`10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "\x16\x03\x01" 400 226 "-" "-"`,
	`10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET /search?q=flights+paris HTTP/1.1" 200 31000 "/" "UA"`,
	`10.0.0.1 - - [11/Mar/2018:23:59:59 -0530] "GET / HTTP/1.1" 200 5 "-" "-"`,
	`10.0.0.1 - - [01/Dec/2018:00:00:00 +0930] "DELETE /cart HTTP/1.0" 500 12 "-" "-"`,
}

// The byte parser must agree with the string parser on every well-formed
// line, timestamps included (compared as instants, since the zone objects
// differ).
func TestParseCombinedBytesMatchesString(t *testing.T) {
	in := NewInterner(1 << 10)
	for _, line := range corpusLines {
		want, err := ParseCombined(line)
		if err != nil {
			t.Fatalf("ParseCombined(%q): %v", line, err)
		}
		var got Entry
		if err := ParseCombinedBytes([]byte(line), &got, in); err != nil {
			t.Fatalf("ParseCombinedBytes(%q): %v", line, err)
		}
		if !got.Equal(&want) {
			t.Errorf("mismatch for %q:\n bytes:  %+v\n string: %+v", line, got, want)
		}
		if !got.Time.Equal(want.Time) {
			t.Errorf("time mismatch for %q: %v vs %v", line, got.Time, want.Time)
		}
		// A nil interner must behave identically.
		var noIntern Entry
		if err := ParseCombinedBytes([]byte(line), &noIntern, nil); err != nil {
			t.Fatalf("ParseCombinedBytes nil interner (%q): %v", line, err)
		}
		if !noIntern.Equal(&want) {
			t.Errorf("nil-interner mismatch for %q", line)
		}
	}
}

// Both parsers must reject the same malformed lines.
func TestParseCombinedBytesErrors(t *testing.T) {
	bad := []string{
		"",
		"10.0.0.1",
		`10.0.0.1 - - 11/Mar/2018:06:25:14 +0000 "GET / HTTP/1.1" 200 5 "-" "-"`,
		`10.0.0.1 - - [11/Mar/2018:06:25:14 +0000 "GET / HTTP/1.1" 200 5 "-" "-"`,
		`10.0.0.1 - - [not-a-time] "GET / HTTP/1.1" 200 5 "-" "-"`,
		`10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1 200 5 "-" "-"`,
		`10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1" two 5 "-" "-"`,
		`10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1" 999 5 "-" "-"`,
		`10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1" 200 -5 "-" "-"`,
		`10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1" 200 5 "-"`,
		`10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1" 200 5 "-" "-" extra`,
		`10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1" 200 5 "-" "abc\`,
		`10.0.0.1 - - [11/Mar/2018:06:25:14 +9900] "GET / HTTP/1.1" 200 5 "-" "-"`,
		// Calendar-invalid date: time.Date would normalize 31/Feb to
		// 3/Mar; both parsers must reject it instead.
		`10.0.0.1 - - [31/Feb/2026:10:00:00 +0000] "GET / HTTP/1.1" 200 5 "-" "-"`,
	}
	var e Entry
	in := NewInterner(1 << 10)
	for _, line := range bad {
		err := ParseCombinedBytes([]byte(line), &e, in)
		if err == nil {
			t.Errorf("ParseCombinedBytes(%q) succeeded, want error", line)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("error %v for %q is not a *ParseError", err, line)
		}
	}
}

// Steady-state parsing must not allocate: with a warmed interner, parsing
// a seen-before shape is pure byte scanning plus map hits.
func TestParseCombinedBytesZeroAllocs(t *testing.T) {
	in := NewInterner(1 << 10)
	lines := make([][]byte, len(corpusLines))
	for i, l := range corpusLines {
		lines[i] = []byte(l)
	}
	var e Entry
	// Warm the intern table (first pass allocates the canonical strings).
	for _, l := range lines {
		if err := ParseCombinedBytes(l, &e, in); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range lines {
		// Lines carrying backslash escapes legitimately allocate (escape
		// decoding); they are the rare path by construction.
		if strings.Contains(string(l), `\`) {
			continue
		}
		l := l
		allocs := testing.AllocsPerRun(100, func() {
			if err := ParseCombinedBytes(l, &e, in); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("ParseCombinedBytes(%q) allocates %.1f/op, want 0", l, allocs)
		}
	}
}

// The streaming reader's NextInto must also be allocation-free in steady
// state (scanner buffer reuse + interning); this is the pipeline's ingest
// path.
func TestReaderNextIntoZeroAllocsSteadyState(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		sb.WriteString(corpusLines[i%3]) // repeat-heavy, like real traffic
		sb.WriteByte('\n')
	}
	r := NewReader(strings.NewReader(sb.String()), ReaderConfig{Policy: Skip})
	var e Entry
	// Warm: first few lines populate the intern table and scanner buffer.
	for i := 0; i < 10; i++ {
		if err := r.NextInto(&e); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := r.NextInto(&e); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("NextInto allocates %.1f/op in steady state, want 0", allocs)
	}
}

func TestInternerBounded(t *testing.T) {
	in := NewInterner(0) // clamps to the 256 minimum
	for i := 0; i < 10000; i++ {
		b := []byte{byte(i), byte(i >> 8), 'x'}
		if got := in.Intern(b); got != string(b) {
			t.Fatalf("Intern returned %q for %q", got, b)
		}
	}
	if len(in.m) > 256 {
		t.Errorf("intern table grew to %d entries, cap 256", len(in.m))
	}
}

func TestInternerLocationCache(t *testing.T) {
	in := NewInterner(256)
	l1 := in.location(5 * 3600)
	l2 := in.location(5 * 3600)
	if l1 != l2 {
		t.Error("location not cached")
	}
	if in.location(0) != time.UTC {
		t.Error("zero offset should be UTC")
	}
}
