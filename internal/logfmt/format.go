package logfmt

import (
	"strconv"
	"strings"
)

// AppendCombined appends the Combined Log Format rendering of e to dst and
// returns the extended buffer. It is the allocation-free counterpart of
// FormatCombined for hot generation loops.
func AppendCombined(dst []byte, e *Entry) []byte {
	dst = appendCommon(dst, e)
	dst = append(dst, ' ')
	dst = appendQuoted(dst, e.Referer)
	dst = append(dst, ' ')
	dst = appendQuoted(dst, e.UserAgent)
	return dst
}

// AppendCommon appends the Common Log Format rendering of e to dst.
func AppendCommon(dst []byte, e *Entry) []byte {
	return appendCommon(dst, e)
}

// FormatCombined renders e in Combined Log Format.
func FormatCombined(e *Entry) string {
	return string(AppendCombined(make([]byte, 0, 256), e))
}

// FormatCommon renders e in Common Log Format.
func FormatCommon(e *Entry) string {
	return string(AppendCommon(make([]byte, 0, 192), e))
}

func appendCommon(dst []byte, e *Entry) []byte {
	dst = append(dst, orDash(e.RemoteAddr)...)
	dst = append(dst, ' ')
	dst = append(dst, orDash(e.Identity)...)
	dst = append(dst, ' ')
	dst = append(dst, orDash(e.AuthUser)...)
	dst = append(dst, ' ', '[')
	dst = e.Time.AppendFormat(dst, ApacheTime)
	dst = append(dst, ']', ' ')
	dst = appendQuoted(dst, e.RequestLine())
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(e.Status), 10)
	dst = append(dst, ' ')
	dst = append(dst, sizeString(e.Bytes)...)
	return dst
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// appendQuoted writes s surrounded by double quotes, escaping embedded
// quotes and backslashes the way Apache does.
func appendQuoted(dst []byte, s string) []byte {
	dst = append(dst, '"')
	if !strings.ContainsAny(s, `"\`) {
		dst = append(dst, s...)
	} else {
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '"' || c == '\\' {
				dst = append(dst, '\\')
			}
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}
