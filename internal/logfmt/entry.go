// Package logfmt parses and emits Apache HTTP access logs in Common and
// Combined Log Format. It is the ingestion substrate for the whole library:
// the synthetic workload generator writes these records and the detection
// pipeline reads them back, exactly as the DSN 2018 paper's dataset was a
// set of Apache access logs for an e-commerce application.
//
// The package is allocation-conscious: parsing works on byte slices without
// regular expressions, and formatting appends to caller-provided buffers.
package logfmt

import (
	"strconv"
	"strings"
	"time"
)

// ApacheTime is the timestamp layout used inside the square brackets of an
// Apache access-log record, e.g. "11/Mar/2018:06:25:14 +0000".
const ApacheTime = "02/Jan/2006:15:04:05 -0700"

// Entry is a single access-log record. The zero value is not a valid record;
// construct entries explicitly or via Parse functions.
type Entry struct {
	// RemoteAddr is the client IP address (the %h field).
	RemoteAddr string
	// Identity is the RFC 1413 identity (%l), almost always "-".
	Identity string
	// AuthUser is the authenticated user (%u), "-" when absent.
	AuthUser string
	// Time is the request timestamp (%t).
	Time time.Time
	// Method is the HTTP method of the request line, e.g. "GET". Empty when
	// the request line was malformed (see RawRequest).
	Method string
	// Path is the request target including any query string.
	Path string
	// Proto is the protocol of the request line, e.g. "HTTP/1.1".
	Proto string
	// RawRequest holds the original quoted request line only when it could
	// not be split into method, path and protocol (malformed requests that
	// typically produce a 400 status). It is empty for well-formed lines.
	RawRequest string
	// Status is the HTTP response status code (%>s).
	Status int
	// Bytes is the response size in bytes (%b); -1 represents the "-" that
	// Apache logs for zero-byte responses.
	Bytes int64
	// Referer is the Referer header ("%{Referer}i"), "-" when absent.
	// Only present in Combined Log Format.
	Referer string
	// UserAgent is the User-Agent header ("%{User-agent}i"), "-" when
	// absent. Only present in Combined Log Format.
	UserAgent string
}

// RequestLine reconstructs the quoted request-line field.
func (e *Entry) RequestLine() string {
	if e.RawRequest != "" {
		return e.RawRequest
	}
	var sb strings.Builder
	sb.Grow(len(e.Method) + len(e.Path) + len(e.Proto) + 2)
	sb.WriteString(e.Method)
	sb.WriteByte(' ')
	sb.WriteString(e.Path)
	sb.WriteByte(' ')
	sb.WriteString(e.Proto)
	return sb.String()
}

// PathOnly returns the request path with any query string removed.
func (e *Entry) PathOnly() string {
	if i := strings.IndexByte(e.Path, '?'); i >= 0 {
		return e.Path[:i]
	}
	return e.Path
}

// Query returns the raw query string (without '?'), or "" when absent.
func (e *Entry) Query() string {
	if i := strings.IndexByte(e.Path, '?'); i >= 0 {
		return e.Path[i+1:]
	}
	return ""
}

// String renders the entry in Combined Log Format.
func (e *Entry) String() string {
	return string(AppendCombined(nil, e))
}

// Equal reports whether two entries are identical field by field, with
// timestamps compared at second granularity (the resolution of the format).
func (e *Entry) Equal(o *Entry) bool {
	return e.RemoteAddr == o.RemoteAddr &&
		e.Identity == o.Identity &&
		e.AuthUser == o.AuthUser &&
		e.Time.Unix() == o.Time.Unix() &&
		e.Method == o.Method &&
		e.Path == o.Path &&
		e.Proto == o.Proto &&
		e.RawRequest == o.RawRequest &&
		e.Status == o.Status &&
		e.Bytes == o.Bytes &&
		e.Referer == o.Referer &&
		e.UserAgent == o.UserAgent
}

// sizeString renders the %b field: "-" for -1, decimal otherwise.
func sizeString(n int64) string {
	if n < 0 {
		return "-"
	}
	return strconv.FormatInt(n, 10)
}
