package logfmt

import (
	"bytes"
	"strconv"
	"time"
)

// Interner deduplicates the repeat-heavy string fields of access-log
// records (addresses, User-Agents, methods, paths) so that steady-state
// parsing performs no allocations: looking up a []byte key in a
// map[string]string does not allocate, and on a hit the already-interned
// string is returned. The table is bounded; once full, misses fall back to
// plain allocation without caching, which bounds memory under adversarial
// churn (e.g. random query strings).
//
// An Interner also caches *time.Location values per numeric zone offset,
// removing the per-line allocation time.Parse performs for non-UTC zones.
//
// Interner is not safe for concurrent use; each Reader owns one.
type Interner struct {
	m    map[string]string
	max  int
	locs map[int]*time.Location
}

// NewInterner returns an interner holding at most max distinct strings
// (minimum 256).
func NewInterner(max int) *Interner {
	if max < 256 {
		max = 256
	}
	return &Interner{
		m:    make(map[string]string, 1024),
		max:  max,
		locs: make(map[int]*time.Location, 4),
	}
}

// Intern returns a string equal to b, reusing a previously interned copy
// when possible. A nil receiver simply allocates.
func (in *Interner) Intern(b []byte) string {
	if in == nil {
		return string(b)
	}
	if s, ok := in.m[string(b)]; ok { // compiler elides the conversion
		return s
	}
	s := string(b)
	if len(in.m) < in.max {
		in.m[s] = s
	}
	return s
}

// location returns a cached fixed-offset zone for the given offset in
// seconds east of UTC.
func (in *Interner) location(offset int) *time.Location {
	if offset == 0 {
		return time.UTC
	}
	if in == nil {
		return time.FixedZone("", offset)
	}
	if loc, ok := in.locs[offset]; ok {
		return loc
	}
	loc := time.FixedZone("", offset)
	in.locs[offset] = loc
	return loc
}

// ParseCombinedBytes parses one Combined Log Format line into *e, the
// allocation-free counterpart of ParseCombined: the timestamp is decoded
// without time.Parse and string fields are deduplicated through in (which
// may be nil to disable interning). On error the contents of *e are
// unspecified. Fields of *e left over from a previous record are fully
// overwritten, so one Entry can be reused across calls.
func ParseCombinedBytes(line []byte, e *Entry, in *Interner) error {
	p := bparser{s: line, in: in}
	if err := p.common(e); err != nil {
		return err
	}
	ref, err := p.quoted("referer")
	if err != nil {
		return err
	}
	e.Referer = ref
	ua, err := p.quoted("user-agent")
	if err != nil {
		return err
	}
	e.UserAgent = ua
	if !p.atEnd() {
		return &ParseError{Offset: p.i, Reason: "trailing data after user-agent"}
	}
	return nil
}

// bparser is the []byte twin of parser; it shares the grammar but interns
// its string results and decodes the timestamp manually.
type bparser struct {
	s  []byte
	i  int
	in *Interner
}

func (p *bparser) common(e *Entry) error {
	var err error
	if e.RemoteAddr, err = p.token("remote address"); err != nil {
		return err
	}
	if e.Identity, err = p.token("identity"); err != nil {
		return err
	}
	if e.AuthUser, err = p.token("auth user"); err != nil {
		return err
	}
	if e.Time, err = p.bracketedTime(); err != nil {
		return err
	}
	req, err := p.quotedRaw("request line")
	if err != nil {
		return err
	}
	p.splitRequest(req, e)
	statusTok, err := p.tokenRaw("status")
	if err != nil {
		return err
	}
	status, ok := atoi(statusTok)
	if !ok || status < 100 || status > 599 {
		return &ParseError{Offset: p.i, Reason: "invalid status code " + strconv.Quote(string(statusTok))}
	}
	e.Status = status
	sizeTok, err := p.tokenRaw("bytes")
	if err != nil {
		return err
	}
	if len(sizeTok) == 1 && sizeTok[0] == '-' {
		e.Bytes = -1
	} else {
		n, ok := atoi64(sizeTok)
		if !ok {
			return &ParseError{Offset: p.i, Reason: "invalid bytes field " + strconv.Quote(string(sizeTok))}
		}
		e.Bytes = n
	}
	return nil
}

// splitRequest mirrors the string parser's request-line split, interning
// the method/path/proto (or raw request) results.
func (p *bparser) splitRequest(req []byte, e *Entry) {
	e.Method, e.Path, e.Proto, e.RawRequest = "", "", "", ""
	sp1 := bytes.IndexByte(req, ' ')
	if sp1 <= 0 {
		e.RawRequest = p.in.Intern(req)
		return
	}
	sp2 := bytes.LastIndexByte(req, ' ')
	if sp2 == sp1 {
		e.RawRequest = p.in.Intern(req)
		return
	}
	method, path, proto := req[:sp1], req[sp1+1:sp2], req[sp2+1:]
	if !validMethodBytes(method) || !hasHTTPPrefix(proto) || len(path) == 0 {
		e.RawRequest = p.in.Intern(req)
		return
	}
	e.Method = p.in.Intern(method)
	e.Path = p.in.Intern(path)
	e.Proto = p.in.Intern(proto)
}

func validMethodBytes(m []byte) bool {
	if len(m) == 0 {
		return false
	}
	for _, c := range m {
		if c < 'A' || c > 'Z' {
			return false
		}
	}
	return true
}

func hasHTTPPrefix(b []byte) bool {
	return len(b) >= 5 && b[0] == 'H' && b[1] == 'T' && b[2] == 'T' && b[3] == 'P' && b[4] == '/'
}

func atoi(b []byte) (int, bool) {
	n, ok := atoi64(b)
	return int(n), ok
}

func atoi64(b []byte) (int64, bool) {
	if len(b) == 0 || len(b) > 18 {
		return 0, false
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}

func (p *bparser) skipSpaces() {
	for p.i < len(p.s) && p.s[p.i] == ' ' {
		p.i++
	}
}

func (p *bparser) atEnd() bool {
	p.skipSpaces()
	return p.i == len(p.s)
}

// tokenRaw consumes a space-delimited field without interning it.
func (p *bparser) tokenRaw(what string) ([]byte, error) {
	p.skipSpaces()
	if p.i >= len(p.s) {
		return nil, &ParseError{Offset: p.i, Reason: "missing " + what}
	}
	start := p.i
	for p.i < len(p.s) && p.s[p.i] != ' ' {
		p.i++
	}
	return p.s[start:p.i], nil
}

func (p *bparser) token(what string) (string, error) {
	b, err := p.tokenRaw(what)
	if err != nil {
		return "", err
	}
	return p.in.Intern(b), nil
}

var monthDays = [...]string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}

// bracketedTime consumes "[...]" and decodes the fixed-width Apache
// timestamp (02/Jan/2006:15:04:05 -0700) without time.Parse.
func (p *bparser) bracketedTime() (time.Time, error) {
	p.skipSpaces()
	if p.i >= len(p.s) || p.s[p.i] != '[' {
		return time.Time{}, &ParseError{Offset: p.i, Reason: "expected '[' opening timestamp"}
	}
	p.i++
	rest := p.s[p.i:]
	end := bytes.IndexByte(rest, ']')
	if end < 0 {
		return time.Time{}, &ParseError{Offset: p.i, Reason: "unterminated timestamp"}
	}
	raw := rest[:end]
	t, ok := p.parseApacheTime(raw)
	if !ok {
		return time.Time{}, &ParseError{Offset: p.i, Reason: "invalid timestamp " + strconv.Quote(string(raw))}
	}
	p.i += end + 1
	return t, nil
}

// parseApacheTime decodes "02/Jan/2006:15:04:05 -0700". The layout is
// fixed-width, so offsets are constants.
func (p *bparser) parseApacheTime(b []byte) (time.Time, bool) {
	if len(b) != 26 || b[2] != '/' || b[6] != '/' || b[11] != ':' ||
		b[14] != ':' || b[17] != ':' || b[20] != ' ' {
		return time.Time{}, false
	}
	day, ok1 := atoi(b[0:2])
	year, ok2 := atoi(b[7:11])
	hour, ok3 := atoi(b[12:14])
	min, ok4 := atoi(b[15:17])
	sec, ok5 := atoi(b[18:20])
	if !(ok1 && ok2 && ok3 && ok4 && ok5) {
		return time.Time{}, false
	}
	month := 0
	for i, m := range &monthDays {
		if b[3] == m[0] && b[4] == m[1] && b[5] == m[2] {
			month = i + 1
			break
		}
	}
	if month == 0 || day < 1 || day > 31 || hour > 23 || min > 59 || sec > 59 {
		return time.Time{}, false
	}
	sign := 0
	switch b[21] {
	case '+':
		sign = 1
	case '-':
		sign = -1
	default:
		return time.Time{}, false
	}
	zh, ok6 := atoi(b[22:24])
	zm, ok7 := atoi(b[24:26])
	if !ok6 || !ok7 || zh > 23 || zm > 59 {
		return time.Time{}, false
	}
	offset := sign * (zh*3600 + zm*60)
	t := time.Date(year, time.Month(month), day, hour, min, sec, 0, p.in.location(offset))
	// time.Date normalizes calendar-invalid dates (31/Feb → 3/Mar); the
	// string parser's time.Parse rejects them, so reject here too. Only
	// the day can overflow — every other component is range-checked above.
	if t.Day() != day {
		return time.Time{}, false
	}
	return t, true
}

// quotedRaw consumes a double-quoted field. The no-escape fast path
// returns a sub-slice of the input; the escape path allocates.
func (p *bparser) quotedRaw(what string) ([]byte, error) {
	p.skipSpaces()
	if p.i >= len(p.s) || p.s[p.i] != '"' {
		return nil, &ParseError{Offset: p.i, Reason: "expected '\"' opening " + what}
	}
	p.i++
	rest := p.s[p.i:]
	// Fast path: closing quote before any escape.
	for j := 0; j < len(rest); j++ {
		switch rest[j] {
		case '"':
			p.i += j + 1
			return rest[:j], nil
		case '\\':
			return p.quotedSlow(what)
		}
	}
	return nil, &ParseError{Offset: len(p.s), Reason: "unterminated " + what}
}

// quotedSlow handles backslash escapes; p.i points at the first byte after
// the opening quote.
func (p *bparser) quotedSlow(what string) ([]byte, error) {
	var buf []byte
	for p.i < len(p.s) {
		c := p.s[p.i]
		switch c {
		case '"':
			p.i++
			return buf, nil
		case '\\':
			if p.i+1 >= len(p.s) {
				return nil, &ParseError{Offset: p.i, Reason: "dangling escape in " + what}
			}
			next := p.s[p.i+1]
			switch next {
			case '"', '\\':
				buf = append(buf, next)
			case 'n':
				buf = append(buf, '\n')
			case 't':
				buf = append(buf, '\t')
			default:
				buf = append(buf, '\\', next)
			}
			p.i += 2
		default:
			buf = append(buf, c)
			p.i++
		}
	}
	return nil, &ParseError{Offset: p.i, Reason: "unterminated " + what}
}

func (p *bparser) quoted(what string) (string, error) {
	b, err := p.quotedRaw(what)
	if err != nil {
		return "", err
	}
	return p.in.Intern(b), nil
}
