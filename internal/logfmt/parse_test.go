package logfmt

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func mustTime(t *testing.T, s string) time.Time {
	t.Helper()
	ts, err := time.Parse(ApacheTime, s)
	if err != nil {
		t.Fatalf("parse time %q: %v", s, err)
	}
	return ts
}

func TestParseCombined(t *testing.T) {
	tests := []struct {
		name string
		give string
		want Entry
	}{
		{
			name: "typical GET",
			give: `10.1.2.3 - - [11/Mar/2018:06:25:14 +0000] "GET /product/17 HTTP/1.1" 200 52344 "/category/3" "Mozilla/5.0 (X11; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0"`,
			want: Entry{
				RemoteAddr: "10.1.2.3", Identity: "-", AuthUser: "-",
				Method: "GET", Path: "/product/17", Proto: "HTTP/1.1",
				Status: 200, Bytes: 52344,
				Referer:   "/category/3",
				UserAgent: "Mozilla/5.0 (X11; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0",
			},
		},
		{
			name: "dash bytes and dash referer",
			give: `172.16.0.9 - - [11/Mar/2018:06:25:14 +0000] "POST /__verify HTTP/1.1" 204 - "-" "curl/7.58.0"`,
			want: Entry{
				RemoteAddr: "172.16.0.9", Identity: "-", AuthUser: "-",
				Method: "POST", Path: "/__verify", Proto: "HTTP/1.1",
				Status: 204, Bytes: -1, Referer: "-", UserAgent: "curl/7.58.0",
			},
		},
		{
			name: "auth user present",
			give: `10.112.0.4 - ota-partner-7 [12/Mar/2018:09:00:01 +0000] "GET /api/price/5 HTTP/1.1" 200 431 "-" "Java/1.8.0_151"`,
			want: Entry{
				RemoteAddr: "10.112.0.4", Identity: "-", AuthUser: "ota-partner-7",
				Method: "GET", Path: "/api/price/5", Proto: "HTTP/1.1",
				Status: 200, Bytes: 431, Referer: "-", UserAgent: "Java/1.8.0_151",
			},
		},
		{
			name: "escaped quote inside user agent",
			give: `10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1" 200 5 "-" "weird \"agent\" v1"`,
			want: Entry{
				RemoteAddr: "10.0.0.1", Identity: "-", AuthUser: "-",
				Method: "GET", Path: "/", Proto: "HTTP/1.1",
				Status: 200, Bytes: 5, Referer: "-", UserAgent: `weird "agent" v1`,
			},
		},
		{
			name: "malformed request line preserved raw",
			give: `10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "\x16\x03\x01" 400 226 "-" "-"`,
			want: Entry{
				RemoteAddr: "10.0.0.1", Identity: "-", AuthUser: "-",
				RawRequest: `\x16\x03\x01`,
				Status:     400, Bytes: 226, Referer: "-", UserAgent: "-",
			},
		},
		{
			name: "query string kept in path",
			give: `10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET /search?q=flights+paris HTTP/1.1" 200 31000 "/" "UA"`,
			want: Entry{
				RemoteAddr: "10.0.0.1", Identity: "-", AuthUser: "-",
				Method: "GET", Path: "/search?q=flights+paris", Proto: "HTTP/1.1",
				Status: 200, Bytes: 31000, Referer: "/", UserAgent: "UA",
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseCombined(tt.give)
			if err != nil {
				t.Fatalf("ParseCombined(%q) error: %v", tt.give, err)
			}
			tt.want.Time = mustTime(t, strings.TrimSuffix(strings.SplitN(tt.give, "[", 2)[1][:26], "]"))
			if !got.Equal(&tt.want) {
				t.Errorf("ParseCombined mismatch:\n got  %+v\n want %+v", got, tt.want)
			}
		})
	}
}

func TestParseCombinedErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{"empty", ""},
		{"truncated after ip", "10.0.0.1"},
		{"missing bracket", `10.0.0.1 - - 11/Mar/2018:06:25:14 +0000 "GET / HTTP/1.1" 200 5 "-" "-"`},
		{"unterminated time", `10.0.0.1 - - [11/Mar/2018:06:25:14 +0000 "GET / HTTP/1.1" 200 5 "-" "-"`},
		{"bad time", `10.0.0.1 - - [not-a-time] "GET / HTTP/1.1" 200 5 "-" "-"`},
		{"unterminated request", `10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1 200 5 "-" "-"`},
		{"status not numeric", `10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1" two 5 "-" "-"`},
		{"status out of range", `10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1" 999 5 "-" "-"`},
		{"negative bytes", `10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1" 200 -5 "-" "-"`},
		{"missing user agent", `10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1" 200 5 "-"`},
		{"trailing garbage", `10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1" 200 5 "-" "-" extra`},
		{"dangling escape", `10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1" 200 5 "-" "abc\`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseCombined(tt.give)
			if err == nil {
				t.Fatalf("ParseCombined(%q) succeeded, want error", tt.give)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v is not a *ParseError", err)
			}
			if pe.Error() == "" {
				t.Error("ParseError has empty message")
			}
		})
	}
}

func TestParseCommon(t *testing.T) {
	line := `10.0.0.1 - - [11/Mar/2018:06:25:14 +0000] "GET / HTTP/1.1" 200 5`
	e, err := ParseCommon(line)
	if err != nil {
		t.Fatalf("ParseCommon: %v", err)
	}
	if e.Referer != "-" || e.UserAgent != "-" {
		t.Errorf("common format should default referer/UA to '-', got %q %q", e.Referer, e.UserAgent)
	}
	if _, err := ParseCommon(line + ` "-" "-"`); err == nil {
		t.Error("ParseCommon accepted combined-format trailing fields")
	}
}

// TestRoundTripProperty: format(parse(x)) == x for arbitrary well-formed
// entries.
func TestRoundTripProperty(t *testing.T) {
	base := mustTime(t, "11/Mar/2018:00:00:00 +0000")
	methods := []string{"GET", "POST", "HEAD", "PUT"}
	paths := []string{"/", "/product/5", "/search?q=a+b", "/static/app.css", "/api/price/999"}
	uas := []string{"-", "curl/7.58.0", `quote " inside`, `back\slash`, "Mozilla/5.0 (X11) Gecko"}

	f := func(ipA, ipB, ipC, ipD uint8, methodIdx, pathIdx, uaIdx uint, status uint16, bytes int32, dt uint32) bool {
		e := Entry{
			RemoteAddr: FormatQuad(ipA, ipB, ipC, ipD),
			Identity:   "-",
			AuthUser:   "-",
			Time:       base.Add(time.Duration(dt%700000) * time.Second),
			Method:     methods[methodIdx%uint(len(methods))],
			Path:       paths[pathIdx%uint(len(paths))],
			Proto:      "HTTP/1.1",
			Status:     100 + int(status%500),
			Bytes:      int64(bytes),
			Referer:    "-",
			UserAgent:  uas[uaIdx%uint(len(uas))],
		}
		if e.Bytes < 0 {
			e.Bytes = -1
		}
		line := FormatCombined(&e)
		got, err := ParseCombined(line)
		if err != nil {
			t.Logf("parse %q: %v", line, err)
			return false
		}
		return got.Equal(&e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// FormatQuad is a test helper building dotted-quad strings.
func FormatQuad(a, b, c, d uint8) string {
	return strings.Join([]string{
		itoa(int(a)), itoa(int(b)), itoa(int(c)), itoa(int(d)),
	}, ".")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [3]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestEntryHelpers(t *testing.T) {
	e := Entry{Method: "GET", Path: "/search?q=x&page=2", Proto: "HTTP/1.1"}
	if got := e.PathOnly(); got != "/search" {
		t.Errorf("PathOnly = %q, want /search", got)
	}
	if got := e.Query(); got != "q=x&page=2" {
		t.Errorf("Query = %q", got)
	}
	if got := e.RequestLine(); got != "GET /search?q=x&page=2 HTTP/1.1" {
		t.Errorf("RequestLine = %q", got)
	}
	raw := Entry{RawRequest: "garbage"}
	if got := raw.RequestLine(); got != "garbage" {
		t.Errorf("raw RequestLine = %q", got)
	}
	if q := (&Entry{Path: "/plain"}).Query(); q != "" {
		t.Errorf("Query on plain path = %q, want empty", q)
	}
}

func BenchmarkParseCombined(b *testing.B) {
	line := `10.1.2.3 - - [11/Mar/2018:06:25:14 +0000] "GET /product/17 HTTP/1.1" 200 52344 "/category/3" "Mozilla/5.0 (X11; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0"`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseCombined(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendCombined(b *testing.B) {
	e, err := ParseCombined(`10.1.2.3 - - [11/Mar/2018:06:25:14 +0000] "GET /product/17 HTTP/1.1" 200 52344 "/" "Mozilla/5.0"`)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendCombined(buf[:0], &e)
	}
}
