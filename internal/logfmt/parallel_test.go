package logfmt

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

// combinedLine renders one well-formed Combined Log Format line with
// enough variation to exercise the interner and field parsing.
func combinedLine(i int) string {
	t := time.Date(2017, 3, 11, 9, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second)
	return fmt.Sprintf(`10.0.%d.%d - - [%s] "GET /catalog/item/%d HTTP/1.1" 200 %d "http://shop.example/catalog" "Mozilla/5.0 (X11; Linux x86_64) variant-%d"`,
		i%16, i%251, t.Format("02/Jan/2006:15:04:05 -0700"), i%97, 512+i%2048, i%7)
}

// buildLog renders n lines, sprinkling in the irregularities the reader
// contract covers: empty lines, CRLF terminators, and (if bad is true)
// malformed lines.
func buildLog(n int, bad bool) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		switch {
		case i%53 == 17:
			sb.WriteString("\n") // empty line, skipped silently
		case i%41 == 13:
			sb.WriteString(combinedLine(i))
			sb.WriteString("\r\n") // CRLF terminator
		case bad && i%67 == 29:
			sb.WriteString("not a log line at all\n")
		default:
			sb.WriteString(combinedLine(i))
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// drain consumes every entry plus the terminal error from either reader
// implementation via the shared NextInto shape.
type entrySource interface {
	NextInto(*Entry) error
	Skipped() int
	Lines() int
}

func drain(src entrySource) (entries []Entry, skipped, lines int, err error) {
	var e Entry
	for {
		if err = src.NextInto(&e); err != nil {
			return entries, src.Skipped(), src.Lines(), err
		}
		entries = append(entries, e)
	}
}

// The core metamorphic property: for any input, policy, worker count,
// and chunk size, ParallelReader's entry stream, counters, and terminal
// error are indistinguishable from Reader's.
func TestParallelReaderEquivalence(t *testing.T) {
	inputs := map[string]string{
		"clean":              buildLog(600, false),
		"with-bad-lines":     buildLog(600, true),
		"empty":              "",
		"only-empty-lines":   "\n\n\r\n\n",
		"single-line-no-nl":  combinedLine(1),
		"final-line-no-nl":   strings.TrimSuffix(buildLog(50, false), "\n"),
		"bad-final-line":     buildLog(50, false) + "garbage with no newline",
		"bad-first-line":     "garbage\n" + buildLog(20, false),
		"all-bad":            "junk one\njunk two\njunk three\n",
		"crlf-final-line":    combinedLine(2) + "\r",
	}
	for name, input := range inputs {
		for _, policy := range []ErrPolicy{Strict, Skip} {
			ref, refSkip, refLines, refErr := drain(NewReader(strings.NewReader(input), ReaderConfig{Policy: policy}))
			for _, workers := range []int{1, 2, 4} {
				for _, chunk := range []int{16, 64, 1 << 20} {
					t.Run(fmt.Sprintf("%s/policy=%d/w=%d/c=%d", name, policy, workers, chunk), func(t *testing.T) {
						pr := NewParallelReader(strings.NewReader(input), ParallelConfig{
							Policy: policy, Workers: workers, ChunkBytes: chunk,
						})
						got, gotSkip, gotLines, gotErr := drain(pr)
						if len(got) != len(ref) {
							t.Fatalf("entries = %d, want %d", len(got), len(ref))
						}
						for i := range got {
							if got[i] != ref[i] {
								t.Fatalf("entry %d diverges:\n got %+v\nwant %+v", i, got[i], ref[i])
							}
						}
						if gotSkip != refSkip {
							t.Errorf("Skipped = %d, want %d", gotSkip, refSkip)
						}
						if gotLines != refLines {
							t.Errorf("Lines = %d, want %d", gotLines, refLines)
						}
						if fmt.Sprint(gotErr) != fmt.Sprint(refErr) {
							t.Errorf("terminal error = %v, want %v", gotErr, refErr)
						}
						var pe *ParseError
						if errors.As(refErr, &pe) != errors.As(gotErr, &pe) {
							t.Errorf("ParseError unwrap mismatch: ref %v vs got %v", refErr, gotErr)
						}
					})
				}
			}
		}
	}
}

// Terminal errors are sticky, exactly like Reader's.
func TestParallelReaderStickyError(t *testing.T) {
	pr := NewParallelReader(strings.NewReader("garbage\n"), ParallelConfig{Workers: 2})
	var e Entry
	err := pr.NextInto(&e)
	if err == nil {
		t.Fatal("expected a parse error")
	}
	if err2 := pr.NextInto(&e); err2 != err {
		t.Fatalf("second NextInto = %v, want sticky %v", err2, err)
	}
}

// errAfterReader yields data then fails with errBoom, modelling a
// mid-stream I/O failure.
type errAfterReader struct {
	r    io.Reader
	done bool
}

var errBoom = errors.New("disk detached")

func (e *errAfterReader) Read(p []byte) (int, error) {
	if e.done {
		return 0, errBoom
	}
	n, err := e.r.Read(p)
	if err == io.EOF {
		e.done = true
		return n, nil
	}
	return n, err
}

// A mid-stream read failure delivers the already-buffered entries first,
// then surfaces the underlying error — the scanner contract.
func TestParallelReaderReadError(t *testing.T) {
	input := buildLog(40, false)
	ref, _, _, _ := drain(NewReader(strings.NewReader(input), ReaderConfig{}))
	pr := NewParallelReader(&errAfterReader{r: strings.NewReader(input)}, ParallelConfig{Workers: 2, ChunkBytes: 64})
	got, _, _, err := drain(pr)
	if !errors.Is(err, errBoom) {
		t.Fatalf("terminal error = %v, want %v", err, errBoom)
	}
	if len(got) != len(ref) {
		t.Fatalf("entries before error = %d, want %d", len(got), len(ref))
	}
}

// A line over MaxLineBytes fails with bufio.ErrTooLong, like the
// scanner-backed Reader.
func TestParallelReaderLineTooLong(t *testing.T) {
	long := strings.Repeat("x", 4096)
	for name, input := range map[string]string{
		"unterminated": buildLog(10, false) + long,
		"terminated":   buildLog(10, false) + long + "\n" + combinedLine(3) + "\n",
	} {
		t.Run(name, func(t *testing.T) {
			pr := NewParallelReader(strings.NewReader(input), ParallelConfig{
				Workers: 2, ChunkBytes: 32, MaxLineBytes: 1024,
			})
			_, _, _, err := drain(pr)
			if !errors.Is(err, bufio.ErrTooLong) {
				t.Fatalf("terminal error = %v, want bufio.ErrTooLong", err)
			}
		})
	}
}

// Close mid-stream releases the goroutines and parks the reader at a
// terminal state without needing to drain the input.
func TestParallelReaderCloseMidStream(t *testing.T) {
	input := buildLog(5000, false)
	pr := NewParallelReader(strings.NewReader(input), ParallelConfig{Workers: 4, ChunkBytes: 256})
	var e Entry
	for i := 0; i < 10; i++ {
		if err := pr.NextInto(&e); err != nil {
			t.Fatalf("NextInto %d: %v", i, err)
		}
	}
	if err := pr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := pr.NextInto(&e); err != io.EOF {
		t.Fatalf("NextInto after Close = %v, want io.EOF", err)
	}
	if err := pr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// Entries delivered into the caller's *Entry must not be clobbered by
// slab reuse: field strings are interned copies and the Entry itself is
// copied out of the chunk slab.
func TestParallelReaderEntriesStable(t *testing.T) {
	input := buildLog(300, false)
	pr := NewParallelReader(bytes.NewReader([]byte(input)), ParallelConfig{Workers: 2, ChunkBytes: 128})
	got, _, _, err := drain(pr)
	if err != io.EOF {
		t.Fatalf("terminal error = %v", err)
	}
	ref, _, _, _ := drain(NewReader(strings.NewReader(input), ReaderConfig{}))
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("entry %d mutated after delivery:\n got %+v\nwant %+v", i, got[i], ref[i])
		}
	}
}
