package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"divscrape/internal/statecodec"
)

// truncateFile cuts n bytes off the end of path.
func truncateFile(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// flipByte XORs one byte of path; negative offsets index from the end.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += int64(len(b))
	}
	b[off] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// payload builds a small framed snapshot carrying one distinguishing
// value, so tests can tell generations apart after a restore.
func payload(v uint64) *statecodec.Writer {
	w := statecodec.NewWriter()
	w.Tag(0x7e57)
	w.Uint64(v)
	return w
}

// readValue decodes the distinguishing value back out of a reader.
func readValue(t *testing.T, r *statecodec.Reader) uint64 {
	t.Helper()
	if err := r.Expect(0x7e57); err != nil {
		t.Fatalf("payload tag: %v", err)
	}
	v := r.Uint64()
	if err := r.Err(); err != nil {
		t.Fatalf("payload value: %v", err)
	}
	return v
}

// newTestSaver builds a saver whose sleeps are recorded, never taken.
func newTestSaver(t *testing.T, path string, mut func(*Config)) (*Saver, *[]time.Duration) {
	t.Helper()
	var slept []time.Duration
	cfg := Config{
		Path:    path,
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
		Now:     func() time.Time { return time.Unix(1700000000, 0) },
		Backoff: 10 * time.Millisecond,
		// Rand pinned at the jitter midpoint: factor 1.0, so schedule
		// assertions read as the un-jittered backoff.
		Rand: func() float64 { return 0.5 },
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewSaver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, &slept
}

func TestSaveAndLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "guard.state")
	s, _ := newTestSaver(t, path, nil)
	if err := s.Save(payload(42)); err != nil {
		t.Fatal(err)
	}
	var got uint64
	gen, err := Load(path, func(r *statecodec.Reader) error {
		got = readValue(t, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 0 || got != 42 {
		t.Fatalf("restored gen %d value %d, want gen 0 value 42", gen, got)
	}
	st := s.Stats()
	if st.Saves != 1 || st.Retries != 0 || st.Failures != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestGenerationsRotate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "guard.state")
	s, _ := newTestSaver(t, path, func(c *Config) { c.Retain = 3 })
	for v := uint64(1); v <= 5; v++ {
		if err := s.Save(payload(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Newest first: 5, 4, 3. Generation 3 must not exist.
	for gen, want := range map[int]uint64{0: 5, 1: 4, 2: 3} {
		b, err := os.ReadFile(GenPath(path, gen))
		if err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		r, err := statecodec.Decode(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("generation %d decode: %v", gen, err)
		}
		if got := readValue(t, r); got != want {
			t.Fatalf("generation %d holds %d, want %d", gen, got, want)
		}
	}
	if _, err := os.Stat(GenPath(path, 3)); err == nil {
		t.Fatal("generation 3 exists past Retain")
	}
}

func TestRetainOneStillAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "guard.state")
	s, _ := newTestSaver(t, path, func(c *Config) { c.Retain = 1 })
	for v := uint64(1); v <= 3; v++ {
		if err := s.Save(payload(v)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(GenPath(path, 1)); err == nil {
		t.Fatal("generation 1 exists with Retain 1")
	}
	var got uint64
	if _, err := Load(path, func(r *statecodec.Reader) error {
		got = readValue(t, r)
		return nil
	}); err != nil || got != 3 {
		t.Fatalf("restored %d (%v), want 3", got, err)
	}
}

func TestLoadFallsBackPastDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "guard.state")
	s, _ := newTestSaver(t, path, func(c *Config) { c.Retain = 3 })
	for v := uint64(1); v <= 3; v++ {
		if err := s.Save(payload(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Truncate the newest generation (crash mid-write without the rename
	// protocol would look like this) and bit-flip the next.
	truncateFile(t, GenPath(path, 0), 5)
	flipByte(t, GenPath(path, 1), -4) // inside the checksum trailer

	var got uint64
	gen, err := Load(path, func(r *statecodec.Reader) error {
		got = readValue(t, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || got != 1 {
		t.Fatalf("restored gen %d value %d, want gen 2 value 1", gen, got)
	}
}

func TestLoadToleratesRotationGap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "guard.state")
	s, _ := newTestSaver(t, path, func(c *Config) { c.Retain = 3 })
	for v := uint64(1); v <= 3; v++ {
		if err := s.Save(payload(v)); err != nil {
			t.Fatal(err)
		}
	}
	// An interrupted rotation can leave a hole in the sequence.
	truncateFile(t, GenPath(path, 0), 3)
	if err := os.Remove(GenPath(path, 1)); err != nil {
		t.Fatal(err)
	}
	var got uint64
	gen, err := Load(path, func(r *statecodec.Reader) error {
		got = readValue(t, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || got != 1 {
		t.Fatalf("restored gen %d value %d, want gen 2 value 1", gen, got)
	}
}

func TestLoadProbesPastConsecutiveGaps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "guard.state")
	// Only generation 3 survives, behind three empty slots — the shape
	// two interrupted rotations (or a save that died between rotation
	// and rename, twice) leave behind. Load must keep probing rather
	// than declare the sequence ended at the gap.
	if err := os.WriteFile(GenPath(path, 3), fixtureBytes(t, 9), 0o644); err != nil {
		t.Fatal(err)
	}
	var got uint64
	gen, err := Load(path, func(r *statecodec.Reader) error {
		got = readValue(t, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 || got != 9 {
		t.Fatalf("restored gen %d value %d, want gen 3 value 9", gen, got)
	}
}

func TestLoadMissingPath(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "absent.state"), func(*statecodec.Reader) error { return nil })
	if err == nil {
		t.Fatal("Load of missing path succeeded")
	}
}

func TestLoadAbortsOnNonDamageError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "guard.state")
	s, _ := newTestSaver(t, path, func(c *Config) { c.Retain = 2 })
	for v := uint64(1); v <= 2; v++ {
		if err := s.Save(payload(v)); err != nil {
			t.Fatal(err)
		}
	}
	// A restore callback reporting a non-damage failure (a configuration
	// mismatch, say) must stop the walk: the older generation would fail
	// identically, and falling back would resurrect stale state.
	calls := 0
	mismatch := os.ErrPermission
	_, err := Load(path, func(r *statecodec.Reader) error {
		calls++
		return mismatch
	})
	if err == nil {
		t.Fatal("Load succeeded past a non-damage restore error")
	}
	if calls != 1 {
		t.Fatalf("restore called %d times, want 1 (no fallback)", calls)
	}
}

func TestAgeBeforeAndAfterSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "guard.state")
	now := time.Unix(1700000000, 0)
	s, _ := newTestSaver(t, path, func(c *Config) {
		c.Now = func() time.Time { return now }
	})
	if age := s.Age(); age != -1 {
		t.Fatalf("age before first save %v, want -1", age)
	}
	if err := s.Save(payload(1)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(90 * time.Second)
	if age := s.Age(); age != 90*time.Second {
		t.Fatalf("age %v, want 90s", age)
	}
}
