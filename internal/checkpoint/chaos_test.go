package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"divscrape/internal/faultinject"
	"divscrape/internal/statecodec"
)

// The chaos suite: every fault the write protocol claims to survive is
// injected and the claim checked. None of these tests sleep — the retry
// backoff schedule is recorded by the injected Sleep and asserted.

// loadValue restores the distinguishing payload value, failing the test
// on any restore error.
func loadValue(t *testing.T, path string) (uint64, int) {
	t.Helper()
	var got uint64
	gen, err := Load(path, func(r *statecodec.Reader) error {
		got = readValue(t, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, gen
}

func TestChaosENOSPCRetriedWithBackoff(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	path := filepath.Join(t.TempDir(), "guard.state")
	s, slept := newTestSaver(t, path, func(c *Config) {
		c.Retries = 4
		c.Backoff = 10 * time.Millisecond
		c.MaxBackoff = 15 * time.Millisecond
	})
	// First two write attempts hit a full disk; the third succeeds.
	faultinject.Enable("checkpoint.write", faultinject.Fault{Err: syscall.ENOSPC, Times: 2})
	if err := s.Save(payload(7)); err != nil {
		t.Fatalf("save through transient ENOSPC: %v", err)
	}
	// The backoff schedule doubles from Backoff and caps at MaxBackoff.
	want := []time.Duration{10 * time.Millisecond, 15 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i := range want {
		if (*slept)[i] != want[i] {
			t.Fatalf("slept %v, want %v", *slept, want)
		}
	}
	st := s.Stats()
	if st.Saves != 1 || st.Retries != 2 || st.Failures != 0 {
		t.Fatalf("stats %+v, want 1 save 2 retries", st)
	}
	if got, gen := loadValue(t, path); got != 7 || gen != 0 {
		t.Fatalf("restored gen %d value %d", gen, got)
	}
}

func TestChaosTornWriteLeavesGenerationsIntact(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	path := filepath.Join(t.TempDir(), "guard.state")
	s, _ := newTestSaver(t, path, func(c *Config) {
		c.Retain = 2
		c.Retries = 1 // no retry: the torn attempt is the whole save
	})
	if err := s.Save(payload(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(payload(2)); err != nil {
		t.Fatal(err)
	}
	// The next save tears: 9 bytes of the frame land, then the device
	// dies. The temp file must be discarded and both generations left
	// byte-identical.
	before0, _ := os.ReadFile(GenPath(path, 0))
	before1, _ := os.ReadFile(GenPath(path, 1))
	faultinject.Enable("checkpoint.write", faultinject.Fault{Err: syscall.EIO, Partial: 9, Times: 1})
	if err := s.Save(payload(3)); err == nil {
		t.Fatal("torn save reported success")
	}
	after0, _ := os.ReadFile(GenPath(path, 0))
	after1, _ := os.ReadFile(GenPath(path, 1))
	if string(before0) != string(after0) || string(before1) != string(after1) {
		t.Fatal("failed save changed existing generation bytes")
	}
	if _, err := os.Stat(path + ".tmp"); err == nil {
		t.Fatal("temp file left behind")
	}
	if got, gen := loadValue(t, path); got != 2 || gen != 0 {
		t.Fatalf("restored gen %d value %d, want newest intact (2)", gen, got)
	}
}

func TestChaosSyncAndRenameFailures(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	for _, point := range []string{"checkpoint.sync", "checkpoint.rename"} {
		path := filepath.Join(t.TempDir(), "guard.state")
		s, _ := newTestSaver(t, path, func(c *Config) { c.Retries = 2 })
		if err := s.Save(payload(1)); err != nil {
			t.Fatal(err)
		}
		// One failure at the injected point, then the retry lands.
		faultinject.Enable(point, faultinject.Fault{Err: syscall.EIO, Times: 1})
		if err := s.Save(payload(2)); err != nil {
			t.Fatalf("%s: save through one failure: %v", point, err)
		}
		if got, gen := loadValue(t, path); got != 2 || gen != 0 {
			t.Fatalf("%s: restored gen %d value %d", point, gen, got)
		}
		faultinject.Reset()
	}
}

func TestChaosPersistentRenameFailureRotatesOnce(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	path := filepath.Join(t.TempDir(), "guard.state")
	s, _ := newTestSaver(t, path, func(c *Config) {
		c.Retain = 3
		c.Retries = 4
	})
	if err := s.Save(payload(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(payload(2)); err != nil {
		t.Fatal(err)
	}
	// Every rename attempt fails — a read-only remount, say. The save
	// must rotate at most once across all four attempts: re-rotating the
	// already-rotated files would cascade them down a slot per retry,
	// destroying the very generations a failed save promises to keep.
	faultinject.Enable("checkpoint.rename", faultinject.Fault{Err: syscall.EROFS})
	if err := s.Save(payload(3)); err == nil {
		t.Fatal("save with persistent rename failure reported success")
	}
	faultinject.Reset()
	// One rotation ran: the previous newest (2) sits at generation 1,
	// its predecessor (1) at generation 2, and Load walks past the empty
	// newest slot to the survivor.
	if got, gen := loadValue(t, path); got != 2 || gen != 1 {
		t.Fatalf("restored gen %d value %d, want gen 1 value 2", gen, got)
	}
	// The disk recovers: the next save lands as the newest generation.
	if err := s.Save(payload(4)); err != nil {
		t.Fatal(err)
	}
	if got, gen := loadValue(t, path); got != 4 || gen != 0 {
		t.Fatalf("restored gen %d value %d after recovery, want gen 0 value 4", gen, got)
	}
}

func TestChaosExhaustedRetriesThenRecovery(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	path := filepath.Join(t.TempDir(), "guard.state")
	s, _ := newTestSaver(t, path, func(c *Config) { c.Retries = 3 })
	if err := s.Save(payload(1)); err != nil {
		t.Fatal(err)
	}
	// Every attempt fails: the save errors, the failure is counted, and
	// the previous generation still restores.
	faultinject.Enable("checkpoint.write", faultinject.Fault{Err: syscall.ENOSPC})
	err := s.Save(payload(2))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("exhausted save error %v, want ENOSPC", err)
	}
	if st := s.Stats(); st.Failures != 1 || st.Saves != 1 {
		t.Fatalf("stats %+v, want 1 failure 1 save", st)
	}
	if got, _ := loadValue(t, path); got != 1 {
		t.Fatalf("previous generation restored %d, want 1", got)
	}
	// Disk recovers: the next save succeeds and becomes the newest.
	faultinject.Reset()
	if err := s.Save(payload(3)); err != nil {
		t.Fatal(err)
	}
	if got, gen := loadValue(t, path); got != 3 || gen != 0 {
		t.Fatalf("restored gen %d value %d after recovery", gen, got)
	}
}

func TestChaosRetryBackoffJittered(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	path := filepath.Join(t.TempDir(), "guard.state")
	s, slept := newTestSaver(t, path, func(c *Config) {
		c.Retries = 4
		c.Backoff = 10 * time.Millisecond
		c.MaxBackoff = 15 * time.Millisecond
		// Jitter 0.2 with the source pinned at 0.25: every pause is
		// scaled by exactly 1 − 0.2 + 0.4·0.25 = 0.9. Deterministic,
		// yet proves the spread is applied to the slept schedule.
		c.Rand = func() float64 { return 0.25 }
	})
	faultinject.Enable("checkpoint.write", faultinject.Fault{Err: syscall.ENOSPC, Times: 2})
	if err := s.Save(payload(11)); err != nil {
		t.Fatalf("save through transient ENOSPC: %v", err)
	}
	// Un-jittered the schedule would be [10ms, 15ms]; jittered at factor
	// 0.9 it is [9ms, 13.5ms] — the doubling and cap run on the base.
	want := []time.Duration{9 * time.Millisecond, 13500 * time.Microsecond}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i := range want {
		if (*slept)[i] != want[i] {
			t.Fatalf("jittered schedule %v, want %v", *slept, want)
		}
	}
	if got, gen := loadValue(t, path); got != 11 || gen != 0 {
		t.Fatalf("restored gen %d value %d", gen, got)
	}
}

func TestChaosJitterDisabledKeepsExactSchedule(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	path := filepath.Join(t.TempDir(), "guard.state")
	s, slept := newTestSaver(t, path, func(c *Config) {
		c.Retries = 3
		c.Backoff = 10 * time.Millisecond
		c.MaxBackoff = 40 * time.Millisecond
		c.Jitter = -1 // explicit opt-out
		c.Rand = func() float64 { t.Fatal("jitter source consulted while disabled"); return 0 }
	})
	faultinject.Enable("checkpoint.write", faultinject.Fault{Err: syscall.ENOSPC, Times: 2})
	if err := s.Save(payload(5)); err != nil {
		t.Fatalf("save: %v", err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(*slept) != len(want) || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
}
