// Package checkpoint makes the durable state plane crash-safe. The
// statecodec container already fails loudly on damaged bytes; this
// package makes sure a crash mid-write can never damage the bytes a
// restore depends on, and that a damaged newest snapshot still leaves
// an older one to come back from.
//
// # Write protocol
//
// Save never touches an existing generation in place. The framed
// snapshot is written to a temporary sibling, fsynced, and only then
// renamed over the newest-generation path — the atomic-rename idiom, so
// a crash (or an injected ENOSPC, short write or torn file) at any
// instant leaves every previous generation byte-identical to before the
// save started. Before the rename, existing generations rotate one slot
// down (path → path.1 → path.2 …), keeping Config.Retain generations;
// rotation runs at most once per Save, no matter how many attempts the
// save takes, so retrying past a failed rename can never cascade the
// retained generations further down (and off) the window. Transient
// write failures are retried with capped exponential backoff through an
// injectable sleep, so a briefly-full disk degrades a save's latency,
// not the state plane's integrity. A save that fails after its one
// rotation leaves every previous generation byte-identical, shifted one
// slot down with the newest slot empty — a gap Load walks past.
//
// # Restore protocol
//
// Load walks the generations newest-first and restores from the first
// one that decodes and restores cleanly, skipping generations whose
// failure is snapshot damage (statecodec.Damaged: truncation, bit rot,
// checksum or version mismatch). Failures that are not damage — a
// configuration mismatch the restore callback reports, an I/O error —
// stop the walk, because an older generation would fail identically
// and falling back would silently resurrect stale state.
package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"divscrape/internal/faultinject"
	"divscrape/internal/statecodec"
)

// Fault points the chaos suite arms: fiWrite fails (or tears, via
// Fault.Partial) payload writes, fiSync fails the pre-rename fsync,
// fiRename fails the atomic rename itself.
var (
	fiWrite  = faultinject.At("checkpoint.write")
	fiSync   = faultinject.At("checkpoint.sync")
	fiRename = faultinject.At("checkpoint.rename")
)

// Config parameterises a Saver.
type Config struct {
	// Path is the newest generation's path; older generations live at
	// Path.1, Path.2, … (see GenPath).
	Path string
	// Retain is how many generations survive, the newest included.
	// Default 3; 1 keeps only the newest (still atomically replaced).
	Retain int
	// Retries is how many attempts one Save makes before giving up.
	// Default 4.
	Retries int
	// Backoff is the pause before the first retry; it doubles per
	// retry. Default 100ms.
	Backoff time.Duration
	// MaxBackoff caps the doubling. Default 5s.
	MaxBackoff time.Duration
	// Jitter spreads each retry pause by ±this fraction, so a fleet of
	// savers hitting the same full disk does not retry in lockstep. Zero
	// selects 0.2; negative disables jitter entirely.
	Jitter float64
	// Sleep implements the retry pause; defaults to time.Sleep. Tests
	// substitute a recorder — the backoff schedule is asserted, never
	// waited out.
	Sleep func(time.Duration)
	// Now supplies the clock behind Stats().LastSave and Age; defaults
	// to time.Now.
	Now func() time.Time
	// Rand is the jitter source in [0,1), injectable and seedable like
	// Now and Sleep; defaults to math/rand.Float64.
	Rand func() float64
}

// SaverStats is a point-in-time snapshot of a Saver's lifetime
// counters. Safe to read concurrently with Save.
type SaverStats struct {
	// Saves counts successful checkpoints.
	Saves uint64
	// Retries counts write attempts that failed and were retried.
	Retries uint64
	// Failures counts Save calls that exhausted their retries.
	Failures uint64
	// LastSave is when the newest generation landed; zero before the
	// first success.
	LastSave time.Time
}

// Saver writes crash-safe, generation-rotated checkpoints.
type Saver struct {
	cfg Config

	saves    atomic.Uint64
	retries  atomic.Uint64
	failures atomic.Uint64
	lastSave atomic.Int64 // unix nanos; 0 = never
}

// NewSaver validates cfg and returns a Saver.
func NewSaver(cfg Config) (*Saver, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("checkpoint: saver needs a path")
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 3
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 4
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	switch {
	case cfg.Jitter == 0:
		cfg.Jitter = 0.2
	case cfg.Jitter < 0:
		cfg.Jitter = 0
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Float64
	}
	return &Saver{cfg: cfg}, nil
}

// jittered spreads d by ±cfg.Jitter using the injected source.
func (s *Saver) jittered(d time.Duration) time.Duration {
	j := s.cfg.Jitter
	if j <= 0 {
		return d
	}
	return time.Duration(float64(d) * (1 - j + 2*j*s.cfg.Rand()))
}

// GenPath returns generation gen's path: gen 0 is path itself, older
// generations append a numeric suffix (path.1, path.2, …).
func GenPath(path string, gen int) string {
	if gen <= 0 {
		return path
	}
	return path + "." + strconv.Itoa(gen)
}

// Stats returns the saver's lifetime counters.
func (s *Saver) Stats() SaverStats {
	st := SaverStats{
		Saves:    s.saves.Load(),
		Retries:  s.retries.Load(),
		Failures: s.failures.Load(),
	}
	if ns := s.lastSave.Load(); ns != 0 {
		st.LastSave = time.Unix(0, ns)
	}
	return st
}

// Age returns how long ago the newest generation landed, or -1 before
// the first successful save — the "checkpoint generation age" a health
// endpoint reports so an operator sees durability going stale long
// before a restart needs it.
func (s *Saver) Age() time.Duration {
	ns := s.lastSave.Load()
	if ns == 0 {
		return -1
	}
	return s.cfg.Now().Sub(time.Unix(0, ns))
}

// Save checkpoints w's payload as the newest generation, rotating the
// previous ones down a slot. Transient failures are retried with capped
// exponential backoff; the returned error means every attempt failed
// and the previous generations are untouched.
func (s *Saver) Save(w *statecodec.Writer) error {
	var err error
	backoff := s.cfg.Backoff
	// rotated is carried across attempts: once the generations have
	// shifted a slot down, a retry redoes only the temp write and the
	// rename. Rotating again would destroy the very generations a
	// failed save promises to preserve.
	rotated := false
	for attempt := 0; attempt < s.cfg.Retries; attempt++ {
		if attempt > 0 {
			s.retries.Add(1)
			// The doubling runs on the un-jittered base; only the slept
			// pause is spread, so the schedule stays capped.
			s.cfg.Sleep(s.jittered(backoff))
			if backoff *= 2; backoff > s.cfg.MaxBackoff {
				backoff = s.cfg.MaxBackoff
			}
		}
		if err = s.attempt(w, &rotated); err == nil {
			s.saves.Add(1)
			s.lastSave.Store(s.cfg.Now().UnixNano())
			return nil
		}
	}
	s.failures.Add(1)
	return fmt.Errorf("checkpoint: save %s: %w", s.cfg.Path, err)
}

// faultWriter routes payload writes through the write fault point, so
// the chaos suite can inject ENOSPC, a short write, or a torn file
// (Partial bytes persisted, then failure).
type faultWriter struct {
	w io.Writer
}

func (fw faultWriter) Write(p []byte) (int, error) {
	if f := fiWrite.Active(); f != nil {
		n := f.Partial
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			if wn, werr := fw.w.Write(p[:n]); werr != nil {
				return wn, werr
			}
		}
		err := f.Err
		if err == nil {
			err = io.ErrShortWrite
		}
		return n, err
	}
	return fw.w.Write(p)
}

// attempt is one full write: temp file, fsync, rotate (at most once per
// Save — *rotated tracks it across retries), rename, dir sync. Any
// failure removes the temp file; existing generations are untouched
// except by the single rotation, which only ever renames them.
func (s *Saver) attempt(w *statecodec.Writer, rotated *bool) error {
	tmp := s.cfg.Path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	err = statecodec.Encode(faultWriter{f}, w)
	if err == nil {
		if err = fiSync.Fire(); err == nil {
			err = f.Sync()
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if !*rotated {
		if rerr := s.rotate(); rerr != nil {
			os.Remove(tmp)
			return rerr
		}
		*rotated = true
	}
	if err := fiRename.Fire(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.cfg.Path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(s.cfg.Path))
}

// rotate shifts the existing generations one slot down (path → path.1 →
// path.2 …), oldest first. Each rename is atomic; a failure mid-rotation
// leaves a gap in the sequence — which Load tolerates — never a damaged
// file, and re-running skips the generations already moved. Only a
// confirmed-missing source generation is skipped: any other stat failure
// aborts the attempt, because skipping on, say, a transient EIO would
// let the final rename overwrite a generation that was never rotated.
func (s *Saver) rotate() error {
	for gen := s.cfg.Retain - 1; gen >= 1; gen-- {
		from := GenPath(s.cfg.Path, gen-1)
		if _, serr := os.Stat(from); serr != nil {
			if errors.Is(serr, fs.ErrNotExist) {
				continue
			}
			return serr
		}
		if rerr := os.Rename(from, GenPath(s.cfg.Path, gen)); rerr != nil {
			return rerr
		}
	}
	return nil
}

// syncDir flushes the directory entry so the rename itself survives a
// crash. Errors are ignored on filesystems that refuse directory
// fsync — the data file was already synced, only the rename's
// durability window widens.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	_ = d.Sync()
	return d.Close()
}

const (
	// maxGenProbe bounds Load's walk past missing generations, so a
	// stray gap from an interrupted rotation doesn't end the search but
	// a pathological path never loops long.
	maxGenProbe = 64
	// minGenProbe slots are always probed regardless of gaps: an
	// interrupted rotation — or a save whose retries died between
	// rotation and rename — can strand the newest intact generation
	// behind more than one consecutive hole, and giving up at the first
	// gap would report "no intact generation" with one sitting on disk.
	// Past minGenProbe, two consecutive missing slots end the walk:
	// probing all the way out risks resurrecting an ancient leftover
	// from an earlier, larger Retain.
	minGenProbe = 8
)

// Load restores from the newest intact generation at path: it decodes
// each generation in turn and hands the payload to restore, falling
// back generation-by-generation past snapshot damage
// (statecodec.Damaged — truncation, checksum mismatch, version skew)
// and past damage the restore callback itself detects. It returns the
// generation restored (0 = newest). Errors that are not damage abort
// the walk immediately. When every generation is damaged or missing,
// the error joins each generation's failure.
//
// restore may be invoked more than once (once per damaged generation
// skipped), so it must leave its target restorable — the property every
// RestoreFrom in the state plane already guarantees by resetting on
// failure.
func Load(path string, restore func(*statecodec.Reader) error) (int, error) {
	var errs []error
	misses := 0
	for gen := 0; gen <= maxGenProbe; gen++ {
		p := GenPath(path, gen)
		f, err := os.Open(p)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				// Inside the first minGenProbe slots every gap is
				// walked past; beyond that, two consecutive missing
				// slots means the sequence has ended.
				if misses++; gen >= minGenProbe && misses >= 2 {
					break
				}
				continue
			}
			// A slot that exists but won't open is not a gap: the
			// sequence continues, so the miss streak resets.
			misses = 0
			errs = append(errs, fmt.Errorf("generation %d: %w", gen, err))
			continue
		}
		misses = 0
		r, derr := statecodec.Decode(f)
		f.Close()
		if derr != nil {
			if statecodec.Damaged(derr) {
				errs = append(errs, fmt.Errorf("generation %d: %w", gen, derr))
				continue
			}
			return 0, fmt.Errorf("checkpoint: load %s: %w", p, derr)
		}
		if rerr := restore(r); rerr != nil {
			if statecodec.Damaged(rerr) {
				errs = append(errs, fmt.Errorf("generation %d: %w", gen, rerr))
				continue
			}
			return 0, fmt.Errorf("checkpoint: load %s: %w", p, rerr)
		}
		return gen, nil
	}
	if len(errs) == 0 {
		return 0, fmt.Errorf("checkpoint: load %s: %w", path, fs.ErrNotExist)
	}
	return 0, fmt.Errorf("checkpoint: load %s: no intact generation: %w", path, errors.Join(errs...))
}
