package checkpoint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"divscrape/internal/statecodec"
)

// Committed fixtures of a damaged generation sequence. Unlike the chaos
// tests, which damage freshly written snapshots, these bytes are checked
// into the repository: the restore-fallback contract is pinned against
// the exact container format this tree produced, so a future encoding
// change that silently breaks fallback on old snapshots fails here
// rather than in a recovery.
//
// Layout (regenerate with `go test ./internal/checkpoint/ -run
// TestFixture -update` after an intentional format change):
//
//	fixture.state    newest generation, truncated mid-payload
//	fixture.state.1  next generation, one checksum byte flipped
//	fixture.state.2  oldest generation, intact, payload value 10
var updateFixtures = flag.Bool("update", false, "regenerate checkpoint testdata fixtures")

// fixtureBytes encodes one framed generation carrying v.
func fixtureBytes(t *testing.T, v uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := statecodec.Encode(&buf, payload(v)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func fixturePath(gen int) string {
	return GenPath(filepath.Join("testdata", "fixture.state"), gen)
}

func TestFixtureRestoreSkipsToNewestIntactGeneration(t *testing.T) {
	if *updateFixtures {
		gen0 := fixtureBytes(t, 30)
		gen0 = gen0[:len(gen0)-7] // torn tail: truncation damage
		gen1 := fixtureBytes(t, 20)
		gen1[len(gen1)-2] ^= 0xff // bit rot in the checksum trailer
		gen2 := fixtureBytes(t, 10)
		for gen, b := range map[int][]byte{0: gen0, 1: gen1, 2: gen2} {
			if err := os.WriteFile(fixturePath(gen), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Both damaged generations must individually read as damage, not as
	// some other failure — that is what licenses the fallback.
	for gen := 0; gen <= 1; gen++ {
		b, err := os.ReadFile(fixturePath(gen))
		if err != nil {
			t.Fatalf("generation %d: %v (run with -update to regenerate)", gen, err)
		}
		if _, derr := statecodec.Decode(bytes.NewReader(b)); !statecodec.Damaged(derr) {
			t.Fatalf("generation %d decode error %v, want damage", gen, derr)
		}
	}

	var got uint64
	gen, err := Load(filepath.Join("testdata", "fixture.state"), func(r *statecodec.Reader) error {
		got = readValue(t, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || got != 10 {
		t.Fatalf("restored generation %d value %d, want generation 2 value 10", gen, got)
	}
}
