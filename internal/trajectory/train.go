package trajectory

import (
	"fmt"
	"sync"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/sessions"
	"divscrape/internal/sitemodel"
	"divscrape/internal/uaparse"
	"divscrape/internal/workload"
)

// TrainConfig parameterises Train.
type TrainConfig struct {
	// Seed generates the training traffic; use a different seed from the
	// evaluation dataset so train and test are independent draws.
	Seed uint64
	// Duration is the training window. Default 12h — benign archetypes
	// (humans, declared crawlers, monitors) all cycle well inside a day,
	// and only their sessions feed the chain.
	Duration time.Duration
	// IdleTimeout matches the detector's sessionization. Default 30m.
	IdleTimeout time.Duration
	// MinSessionRequests is the request count below which a session is too
	// short to contribute an entropy sample (its transitions still count).
	// Default 6, matching the detector's warmup.
	MinSessionRequests int
}

// Train generates a labelled traffic window and fits the benign navigation
// model on it: Markov transition counts, session kind-entropy baseline and
// the benign content mix. Only events the detector would actually score
// feed the model — malicious actors, authenticated users and verified
// search crawlers are excluded, the latter two mirroring InspectInto's
// short-circuits so the baseline describes the population being judged.
func Train(cfg TrainConfig) (*Model, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 12 * time.Hour
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 30 * time.Minute
	}
	if cfg.MinSessionRequests <= 0 {
		cfg.MinSessionRequests = 6
	}
	gen, err := workload.NewGenerator(workload.Config{
		Seed:     cfg.Seed,
		Duration: cfg.Duration,
	})
	if err != nil {
		return nil, fmt.Errorf("trajectory: training generator: %w", err)
	}

	type trainSession struct {
		prev  int8 // previous PageKind, -1 before the first request
		count uint64
		kinds [sitemodel.KindCount]uint32
	}
	acc := &counts{}
	store, err := sessions.NewStore(sessions.Config[trainSession]{
		IdleTimeout: cfg.IdleTimeout,
		New: func(time.Time) *trainSession {
			return &trainSession{prev: -1}
		},
		OnEvict: func(_ sessions.Key, ts *trainSession) {
			if ts.count >= uint64(cfg.MinSessionRequests) {
				acc.entropySum += kindEntropy(&ts.kinds)
				acc.entropyN++
			}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("trajectory: training store: %w", err)
	}

	enricher := detector.NewEnricher(iprep.BuildFeed())
	err = gen.Run(func(ev workload.Event) error {
		if ev.Label.Malicious() {
			return nil
		}
		req := enricher.Enrich(ev.Entry)
		if req.Entry.AuthUser != "" && req.Entry.AuthUser != "-" {
			return nil
		}
		if req.UA.Class == uaparse.ClassSearchBot && req.IPCat == iprep.SearchEngine {
			return nil
		}
		kind := sitemodel.ClassifyPath(req.Entry.Path).Kind
		ts, _ := store.Touch(sessions.KeyFor(req.IP, ev.Entry.UserAgent), ev.Entry.Time)
		if ts.prev >= 0 {
			acc.trans[ts.prev][kind]++
		}
		ts.prev = int8(kind)
		ts.count++
		ts.kinds[kind]++
		switch {
		case kind == sitemodel.KindStatic:
			acc.assets++
		case kind.IsPage():
			acc.pages++
		case kind == sitemodel.KindPrice:
			acc.api++
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("trajectory: training run: %w", err)
	}
	store.FlushAll()
	return acc.finalize()
}

// DefaultModelSeed seeds the shared default model's training workload. It
// is offset from the evaluation seeds the experiments use, keeping the
// default model an independent draw.
const DefaultModelSeed = 0x7261_6a65 // "raje"

var (
	defaultOnce  sync.Once
	defaultModel *Model
	defaultErr   error
)

// DefaultModel returns the process-wide benign model trained once with
// DefaultModelSeed, shared by every detector built without an explicit
// Config.Model (including all shards of a sharded pipeline).
func DefaultModel() (*Model, error) {
	defaultOnce.Do(func() {
		defaultModel, defaultErr = Train(TrainConfig{Seed: DefaultModelSeed})
	})
	return defaultModel, defaultErr
}
