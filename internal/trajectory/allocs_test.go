package trajectory

import (
	"testing"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/logfmt"
	"divscrape/internal/uaparse"
)

// Inspect reuses the flat feature vector and contribution scratch, so
// scoring an already-warm session must not allocate on the non-alerting
// path. The guard is a threshold rather than exact zero: session-state
// growth (first sight of a product ID, map resizes) may legitimately
// allocate occasionally.
func TestInspectAllocGuard(t *testing.T) {
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ua := "Mozilla/5.0 (X11; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0"
	base := time.Date(2018, 3, 11, 12, 0, 0, 0, time.UTC)
	req := detector.Request{
		Entry: logfmt.Entry{
			RemoteAddr: "10.1.2.3", Identity: "-", AuthUser: "-",
			Method: "GET", Path: "/static/app.css", Proto: "HTTP/1.1",
			Status: 200, Bytes: 900, Referer: "/",
			UserAgent: ua,
		},
		UA: uaparse.Parse(ua),
		IP: 0x0a010203,
	}
	// Warm past the trajectory warm-up so the scorer actually runs.
	for i := 0; i < 50; i++ {
		req.Entry.Time = base.Add(time.Duration(i*7) * time.Second)
		d.Inspect(&req)
	}
	i := 50
	allocs := testing.AllocsPerRun(200, func() {
		req.Entry.Time = base.Add(time.Duration(i*7) * time.Second)
		i++
		d.Inspect(&req)
	})
	if allocs > 0.5 {
		t.Errorf("Inspect allocates %.2f/op in steady state, want ~0", allocs)
	}
}
