package trajectory

import (
	"fmt"
	"time"

	"divscrape/internal/anomaly"
	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/sessions"
	"divscrape/internal/sitemodel"
	"divscrape/internal/uaparse"
)

// Feature names used in verdict explanations.
const (
	featSurprise = "markov-surprise"
	featTeleport = "unlinked-transitions"
	featMix      = "content-mix-skew"
	featEntropy  = "path-entropy-collapse"
	featSweep    = "single-visit-sweep"
)

// featIndex fixes the slot layout of the flat feature vector reused across
// requests; the composite scorer is declared in the same order, so slot i
// here is feature i there.
var featIndex = detector.NewFeatureIndex(
	featSurprise, featTeleport, featMix, featEntropy, featSweep,
)

// Vector slots, resolved once at init.
var (
	idxSurprise = featIndex.Index(featSurprise)
	idxTeleport = featIndex.Index(featTeleport)
	idxMix      = featIndex.Index(featMix)
	idxEntropy  = featIndex.Index(featEntropy)
	idxSweep    = featIndex.Index(featSweep)
)

// Config tunes the detector. Zero values select the documented defaults.
type Config struct {
	// Model is the trained benign navigation model. Nil selects the shared
	// DefaultModel(); sharded pipelines may pass one Model to every shard.
	Model *Model
	// AlertThreshold is the composite score above which a request alerts.
	// Default 0.55.
	AlertThreshold float64
	// WarmupRequests is the number of requests a session must accumulate
	// before the detector will score it; a trajectory needs length before
	// its shape means anything. Default 8.
	WarmupRequests int
	// IdleTimeout ends a session after this much inactivity. Default 30m
	// (the web-analytics convention).
	IdleTimeout time.Duration
	// MinTransitions is the transition count below which the chain-based
	// features (surprise, unlinked transitions) stay silent. Default 4.
	MinTransitions int
	// SurpriseKnee is the per-transition surprise excess over the benign
	// baseline, in bits, at which the surprise feature reaches full raw
	// strength. Default 2.0.
	SurpriseKnee float64
	// TeleportKnee is the fraction of transitions never observed in benign
	// training at which the unlinked-transitions feature reaches full raw
	// strength. Default 0.25.
	TeleportKnee float64
	// MixKnee is the L1 distance between the session's page/asset/API mix
	// and the benign mix (range 0..2) at full raw strength. Default 0.8.
	MixKnee float64
	// EntropyKnee is the session kind-entropy deficit below the benign
	// mean, in bits, at full raw strength. Default 1.2.
	EntropyKnee float64
	// SweepMinViews is the product/price view count required before the
	// single-visit sweep feature engages. Default 12.
	SweepMinViews int
	// InspectAuthUsers, when true, also inspects authenticated traffic.
	InspectAuthUsers bool
}

// DefaultConfig returns the tuned defaults used by the evaluation.
func DefaultConfig() Config {
	return Config{
		AlertThreshold: 0.55,
		WarmupRequests: 8,
		IdleTimeout:    30 * time.Minute,
		MinTransitions: 4,
		SurpriseKnee:   2.0,
		TeleportKnee:   0.25,
		MixKnee:        0.8,
		EntropyKnee:    1.2,
		SweepMinViews:  12,
	}
}

func (c *Config) applyDefaults() {
	d := DefaultConfig()
	if c.AlertThreshold <= 0 {
		c.AlertThreshold = d.AlertThreshold
	}
	if c.WarmupRequests <= 0 {
		c.WarmupRequests = d.WarmupRequests
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = d.IdleTimeout
	}
	if c.MinTransitions <= 0 {
		c.MinTransitions = d.MinTransitions
	}
	if c.SurpriseKnee <= 0 {
		c.SurpriseKnee = d.SurpriseKnee
	}
	if c.TeleportKnee <= 0 {
		c.TeleportKnee = d.TeleportKnee
	}
	if c.MixKnee <= 0 {
		c.MixKnee = d.MixKnee
	}
	if c.EntropyKnee <= 0 {
		c.EntropyKnee = d.EntropyKnee
	}
	if c.SweepMinViews <= 0 {
		c.SweepMinViews = d.SweepMinViews
	}
}

// session is the per-(IP, UA) trajectory memory.
type session struct {
	count       uint64
	pages       uint64
	assets      uint64
	apiCalls    uint64
	transitions uint64
	teleports   uint64 // transitions the benign chain never observed
	surprise    float64
	prevKind    int8 // previous PageKind, -1 before the first request
	views       uint64
	products    map[int]struct{}
	kinds       [sitemodel.KindCount]uint32
}

// Detector is the trajectory detector. Not safe for concurrent use.
type Detector struct {
	cfg    Config
	model  *Model
	scorer *anomaly.Composite
	store  *sessions.Store[session]

	// Per-request scratch, reused to keep Inspect allocation-free.
	vec      []float64
	contribs []anomaly.Contribution
	// vecValid marks vec as holding the last request's features; requests
	// short-circuited before scoring (auth users, verified crawlers,
	// warmup) leave it false so the provenance plane never snapshots a
	// stale vector.
	vecValid bool
}

var (
	_ detector.Detector  = (*Detector)(nil)
	_ detector.Explainer = (*Detector)(nil)
)

// New builds a detector with cfg (zero fields take defaults). When
// cfg.Model is nil the shared DefaultModel is trained on first use.
func New(cfg Config) (*Detector, error) {
	cfg.applyDefaults()
	if cfg.Model == nil {
		m, err := DefaultModel()
		if err != nil {
			return nil, fmt.Errorf("trajectory: default model: %w", err)
		}
		cfg.Model = m
	}
	if !cfg.Model.Trained() {
		return nil, fmt.Errorf("trajectory: model is untrained")
	}
	scorer, err := anomaly.NewComposite([]anomaly.Feature{
		{Name: featSurprise, Weight: 3.0, Scale: 1.0},
		{Name: featTeleport, Weight: 2.0, Scale: 0.6},
		{Name: featMix, Weight: 2.5, Scale: 1.0},
		{Name: featEntropy, Weight: 2.0, Scale: 1.0},
		{Name: featSweep, Weight: 1.0, Scale: 0.8},
	})
	if err != nil {
		return nil, fmt.Errorf("trajectory: build scorer: %w", err)
	}
	d := &Detector{
		cfg:      cfg,
		model:    cfg.Model,
		scorer:   scorer,
		vec:      featIndex.NewVector(),
		contribs: make([]anomaly.Contribution, 0, featIndex.Len()),
	}
	if d.store, err = newStore(cfg); err != nil {
		return nil, fmt.Errorf("trajectory: build store: %w", err)
	}
	return d, nil
}

func newStore(cfg Config) (*sessions.Store[session], error) {
	return sessions.NewStore(sessions.Config[session]{
		IdleTimeout: cfg.IdleTimeout,
		New: func(time.Time) *session {
			return &session{
				products: make(map[int]struct{}, 16),
				prevKind: -1,
			}
		},
		// Recycle resets an ended session in place — the product map keeps
		// its buckets — so session churn does not allocate in steady state.
		Recycle: func(st *session) {
			products := st.products
			clear(products)
			*st = session{
				products: products,
				prevKind: -1,
			}
		},
		Snapshot: snapshotSession,
		Restore:  restoreSession,
	})
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "trajectory" }

// Reset implements detector.Detector.
func (d *Detector) Reset() {
	d.store.Reset()
}

// Sessions reports the number of live sessions (for diagnostics).
func (d *Detector) Sessions() int { return d.store.Len() }

// Model returns the benign navigation model the detector scores against.
func (d *Detector) Model() *Model { return d.model }

// FeatureNames implements detector.Explainer: the feature vector's slot
// names, in order. The returned slice is immutable.
func (d *Detector) FeatureNames() []string { return featIndex.Names() }

// LastFeatures implements detector.Explainer: the vector behind the most
// recent InspectInto, aliasing the detector's reusable scratch. ok is
// false when that request short-circuited before scoring.
func (d *Detector) LastFeatures() ([]float64, bool) { return d.vec, d.vecValid }

// EvictBefore implements detector.Evictable: it proactively drops
// sessions untouched since cutoff. Verdict-neutral whenever cutoff trails
// stream time by at least Config.IdleTimeout — no feature reads the
// clock, so eviction can only change verdicts by splitting a session,
// which the idle-timeout margin rules out.
func (d *Detector) EvictBefore(cutoff time.Time) int {
	return d.store.EvictBefore(cutoff)
}

// Inspect implements detector.Detector.
func (d *Detector) Inspect(req *detector.Request) detector.Verdict {
	var v detector.Verdict
	d.InspectInto(req, &v)
	return v
}

// InspectInto implements detector.Detector. It overwrites every field of
// *out and records reasons as interned feature-name constants, so the
// steady-state decision path performs no allocations.
func (d *Detector) InspectInto(req *detector.Request, out *detector.Verdict) {
	*out = detector.Verdict{}
	d.vecValid = false
	if !d.cfg.InspectAuthUsers && req.Entry.AuthUser != "" && req.Entry.AuthUser != "-" {
		return
	}
	// Verified search-engine crawlers are whitelisted for the same reason
	// the behavioural detector whitelists them: sanctioned crawling is
	// navigationally bot-shaped by design. (Spoofed claims from unverified
	// ranges are still inspected.)
	if req.UA.Class == uaparse.ClassSearchBot && req.IPCat == iprep.SearchEngine {
		return
	}

	now := req.Entry.Time
	st, _ := d.store.Touch(sessions.KeyFor(req.IP, req.Entry.UserAgent), now)
	d.observe(st, req)

	if st.count < uint64(d.cfg.WarmupRequests) {
		return
	}

	d.fillFeatures(st)
	d.vecValid = true
	score, contribs := d.scorer.ScoreVec(d.vec, d.contribs)
	out.Score = score
	if score >= d.cfg.AlertThreshold {
		out.Alert = true
		for i := range contribs {
			out.Reasons.Append(contribs[i].Name)
		}
	}
}

// observe folds one request into the session's trajectory. Deliberately
// clock-free: the walk's shape, not its speed, is this detector's signal
// (speed belongs to the behavioural detector).
func (d *Detector) observe(st *session, req *detector.Request) {
	info := sitemodel.ClassifyPath(req.Entry.Path)
	kind := info.Kind
	if st.prevKind >= 0 {
		prev := sitemodel.PageKind(st.prevKind)
		st.transitions++
		st.surprise += d.model.Surprise(prev, kind)
		if !d.model.Seen(prev, kind) {
			st.teleports++
		}
	}
	st.prevKind = int8(kind)
	st.count++
	st.kinds[kind]++
	switch {
	case kind == sitemodel.KindStatic:
		st.assets++
	case kind.IsPage():
		st.pages++
	case kind == sitemodel.KindPrice:
		st.apiCalls++
	}
	if id := info.ProductID; id >= 0 {
		st.views++
		st.products[id] = struct{}{}
	}
}

// fillFeatures derives the flat feature vector from session state into the
// detector's reusable scratch vector.
func (d *Detector) fillFeatures(st *session) {
	vec := d.vec
	for i := range vec {
		vec[i] = 0
	}

	// Chain features need a minimum walk length before mean surprise and
	// the unlinked fraction stabilise.
	if st.transitions >= uint64(d.cfg.MinTransitions) {
		perTrans := st.surprise / float64(st.transitions)
		if excess := perTrans - d.model.baselineSurprise; excess > 0 {
			vec[idxSurprise] = excess / d.cfg.SurpriseKnee
		}
		vec[idxTeleport] = float64(st.teleports) / float64(st.transitions) / d.cfg.TeleportKnee
	}

	// Content-class mix: L1 distance from the benign page/asset/API shares.
	if content := st.pages + st.assets + st.apiCalls; content > 0 {
		fc := float64(content)
		l1 := abs(float64(st.pages)/fc-d.model.mixPages) +
			abs(float64(st.assets)/fc-d.model.mixAssets) +
			abs(float64(st.apiCalls)/fc-d.model.mixAPI)
		vec[idxMix] = l1 / d.cfg.MixKnee
	}

	// One-sided entropy deficit: hammering one corner of the kind space.
	// (Above-baseline spread is fine — that is just broad browsing.)
	if deficit := d.model.baselineEntropy - kindEntropy(&st.kinds); deficit > 0 {
		vec[idxEntropy] = deficit / d.cfg.EntropyKnee
	}

	// Catalogue sweeps never revisit: distinct/total product views near 1
	// on a long view stream. Humans re-check items (zipf interest), so
	// their ratio sags. Deliberately modest weight — marathon bargain
	// hunters sweep too, a documented false-positive trade-off.
	if st.views >= uint64(d.cfg.SweepMinViews) {
		uniq := float64(len(st.products)) / float64(st.views)
		if uniq > 0.85 {
			vec[idxSweep] = (uniq - 0.85) / 0.15
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// SessionsSince streams the keys and last-activity stamps of sessions
// active at or after since, newest first — the session digests the
// cluster plane ships so peers can gauge replica freshness. The walk
// rides the store's recency order and stops at the first stale session.
func (d *Detector) SessionsSince(since time.Time, fn func(key sessions.Key, lastSeen time.Time)) {
	d.store.RangeNewest(func(k sessions.Key, last time.Time) bool {
		if last.Before(since) {
			return false
		}
		fn(k, last)
		return true
	})
}
