package trajectory

import (
	"testing"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/evaluate"
	"divscrape/internal/iprep"
	"divscrape/internal/workload"
)

// runWorkload streams a generated window through one detector and returns
// per-archetype request-level confusion matrices.
func runWorkload(t *testing.T, d *Detector, seed uint64, dur time.Duration) map[detector.Archetype]*evaluate.Confusion {
	t.Helper()
	gen, err := workload.NewGenerator(workload.Config{Seed: seed, Duration: dur})
	if err != nil {
		t.Fatal(err)
	}
	enr := detector.NewEnricher(iprep.BuildFeed())
	byArch := make(map[detector.Archetype]*evaluate.Confusion)
	var req detector.Request
	var v detector.Verdict
	err = gen.Run(func(ev workload.Event) error {
		enr.EnrichInto(&req, ev.Entry)
		d.InspectInto(&req, &v)
		c := byArch[ev.Label.Archetype]
		if c == nil {
			c = &evaluate.Confusion{}
			byArch[ev.Label.Archetype] = c
		}
		c.Add(v.Alert, ev.Label.Malicious())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return byArch
}

// TestWorkloadCalibration pins the detector's operating point on a held-out
// day of traffic (a different seed from the default model's training
// window): benign archetypes stay quiet, the navigationally distinctive
// scrapers are caught at request level. Headless browsers deliberately sit
// outside this detector's reach — they replay full browser trajectories,
// and catching them is what the *other* two detectors are for.
func TestWorkloadCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-day workload sweep")
	}
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	byArch := runWorkload(t, d, 0xE13_0001, 24*time.Hour)
	for arch, c := range byArch {
		t.Logf("%-18s total=%6d TP=%6d FP=%5d FN=%6d sens=%.3f fpr=%.4f",
			arch, c.Total(), c.TP, c.FP, c.FN, c.Sensitivity(), c.FPR())
	}

	benign := evaluate.Confusion{}
	for _, arch := range []detector.Archetype{
		detector.ArchetypeHuman, detector.ArchetypeSearchBot,
		detector.ArchetypeMonitor, detector.ArchetypePartnerAPI,
	} {
		if c := byArch[arch]; c != nil {
			benign.Merge(*c)
		}
	}
	if fpr := benign.FPR(); fpr > 0.005 {
		t.Errorf("benign FPR %.4f, want <= 0.005", fpr)
	}
	for _, want := range []struct {
		arch    detector.Archetype
		minSens float64
	}{
		{detector.ArchetypeScraperNaive, 0.90},
		{detector.ArchetypeScraperKnownInfra, 0.90},
		{detector.ArchetypeScraperAggressive, 0.60},
		{detector.ArchetypeScraperStealth, 0.30},
	} {
		c := byArch[want.arch]
		if c == nil {
			t.Errorf("no %s traffic in window", want.arch)
			continue
		}
		if s := c.Sensitivity(); s < want.minSens {
			t.Errorf("%s sensitivity %.3f, want >= %.2f", want.arch, s, want.minSens)
		}
	}
}
