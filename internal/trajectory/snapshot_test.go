package trajectory

import (
	"testing"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/statecodec"
	"divscrape/internal/workload"
)

func snapEvents(t *testing.T, seed uint64) []workload.Event {
	t.Helper()
	gen, err := workload.NewGenerator(workload.Config{
		Seed:     seed,
		Duration: 3 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	events, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 1000 {
		t.Fatalf("workload too small: %d events", len(events))
	}
	return events
}

// TestSnapshotResumeEquivalence stops a replay at event k, snapshots,
// restores into a fresh detector and verifies the verdict stream from k
// onward matches the uninterrupted run — the trajectory state carries a
// running surprise sum, a transition cursor and a kind histogram, all of
// which must survive the round trip exactly.
func TestSnapshotResumeEquivalence(t *testing.T) {
	events := snapEvents(t, 31)
	k := len(events) / 2

	full := newDet(t)
	enrFull := detector.NewEnricher(iprep.BuildFeed())
	var want []detector.Verdict
	for i := range events {
		var req detector.Request
		enrFull.EnrichInto(&req, events[i].Entry)
		v := full.Inspect(&req)
		if i >= k {
			want = append(want, v)
		}
	}

	head := newDet(t)
	enr := detector.NewEnricher(iprep.BuildFeed())
	for i := 0; i < k; i++ {
		var req detector.Request
		enr.EnrichInto(&req, events[i].Entry)
		head.Inspect(&req)
	}
	w := statecodec.NewWriter()
	head.SnapshotInto(w)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	tail := newDet(t)
	if err := tail.RestoreFrom(statecodec.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if tail.Sessions() != head.Sessions() {
		t.Fatalf("restored %d sessions, had %d", tail.Sessions(), head.Sessions())
	}
	for i := k; i < len(events); i++ {
		var req detector.Request
		enr.EnrichInto(&req, events[i].Entry)
		got := tail.Inspect(&req)
		if got != want[i-k] {
			t.Fatalf("verdict %d diverged after resume: got %+v, want %+v", i, got, want[i-k])
		}
	}
}

// TestShardedSnapshotMatchesSingle proves topology independence at the
// detector level: two key-disjoint shard instances snapshot to the same
// bytes a single instance seeing all the traffic produces.
func TestShardedSnapshotMatchesSingle(t *testing.T) {
	events := snapEvents(t, 32)
	part := func(ip uint32) int { return int(ip % 2) }

	single := newDet(t)
	shards := []detector.Detector{newDet(t), newDet(t)}
	enrA := detector.NewEnricher(iprep.BuildFeed())
	enrB := detector.NewEnricher(iprep.BuildFeed())
	for i := range events {
		var req detector.Request
		enrA.EnrichInto(&req, events[i].Entry)
		single.Inspect(&req)
		var req2 detector.Request
		enrB.EnrichInto(&req2, events[i].Entry)
		shards[part(req2.IP)].(*Detector).Inspect(&req2)
	}

	ws := statecodec.NewWriter()
	single.SnapshotInto(ws)
	wm := statecodec.NewWriter()
	if err := shards[0].(*Detector).SnapshotShardsInto(wm, shards); err != nil {
		t.Fatal(err)
	}
	if string(ws.Bytes()) != string(wm.Bytes()) {
		t.Error("sharded snapshot differs from single-instance snapshot")
	}

	// And the merged snapshot restores across a different partition.
	out := []detector.Detector{newDet(t), newDet(t), newDet(t)}
	if err := out[0].(*Detector).RestoreShards(statecodec.NewReader(wm.Bytes()), out, func(ip uint32) int { return int(ip % 3) }); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range out {
		total += d.(*Detector).Sessions()
	}
	if total != single.Sessions() {
		t.Errorf("repartitioned to %d sessions, want %d", total, single.Sessions())
	}
}

func TestRestoreRejectsCorruptSnapshot(t *testing.T) {
	events := snapEvents(t, 33)
	d := newDet(t)
	enr := detector.NewEnricher(iprep.BuildFeed())
	for i := 0; i < 500; i++ {
		var req detector.Request
		enr.EnrichInto(&req, events[i].Entry)
		d.Inspect(&req)
	}
	w := statecodec.NewWriter()
	d.SnapshotInto(w)
	for cut := 0; cut < w.Len(); cut += 9 {
		fresh := newDet(t)
		if err := fresh.RestoreFrom(statecodec.NewReader(w.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if fresh.Sessions() != 0 {
			t.Fatalf("failed restore left %d sessions", fresh.Sessions())
		}
	}
}
