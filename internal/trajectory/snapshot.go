package trajectory

import (
	"fmt"
	"sort"

	"divscrape/internal/detector"
	"divscrape/internal/sessions"
	"divscrape/internal/sitemodel"
	"divscrape/internal/statecodec"
)

// tagTrajectory opens a trajectory state block in a snapshot.
const tagTrajectory uint16 = 0x544A

var _ detector.ShardedSnapshotter = (*Detector)(nil)

// snapshotSession and restoreSession are the sessions value hooks; they
// must stay symmetric field for field. The product-ID set is written in
// ascending order so equal sessions always serialise to equal bytes. The
// model itself is NOT part of the state: it is training-time configuration,
// and restore legitimately pairs a checkpoint with the same model the
// writer used (the seed convention guarantees it).
func snapshotSession(w *statecodec.Writer, st *session) {
	w.Uint64(st.count)
	w.Uint64(st.pages)
	w.Uint64(st.assets)
	w.Uint64(st.apiCalls)
	w.Uint64(st.transitions)
	w.Uint64(st.teleports)
	w.Float64(st.surprise)
	w.Uint8(uint8(st.prevKind + 1)) // -1 (none) shifts to 0
	w.Uint64(st.views)
	ids := make([]int, 0, len(st.products))
	for id := range st.products {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.Uint32(uint32(len(ids)))
	for _, id := range ids {
		w.Int(id)
	}
	w.Uint32(uint32(len(st.kinds)))
	for _, n := range st.kinds {
		w.Uint32(n)
	}
}

func restoreSession(r *statecodec.Reader, st *session) error {
	st.count = r.Uint64()
	st.pages = r.Uint64()
	st.assets = r.Uint64()
	st.apiCalls = r.Uint64()
	st.transitions = r.Uint64()
	st.teleports = r.Uint64()
	st.surprise = r.Float64()
	prev := r.Uint8()
	st.views = r.Uint64()
	n := r.Count(8)
	for i := 0; i < n; i++ {
		st.products[r.Int()] = struct{}{}
	}
	nk := r.Count(4)
	if r.Err() != nil {
		return r.Err()
	}
	if nk != kindCount {
		return fmt.Errorf("%w: %d page kinds, want %d", statecodec.ErrCorrupt, nk, kindCount)
	}
	for i := 0; i < nk; i++ {
		st.kinds[i] = r.Uint32()
	}
	if r.Err() != nil {
		return r.Err()
	}
	if prev > uint8(sitemodel.KindCount) {
		return fmt.Errorf("%w: previous kind %d", statecodec.ErrCorrupt, prev)
	}
	st.prevKind = int8(prev) - 1
	return nil
}

// SnapshotInto implements detector.Snapshotter.
func (d *Detector) SnapshotInto(w *statecodec.Writer) {
	if err := d.SnapshotShardsInto(w, []detector.Detector{d}); err != nil {
		w.Fail(err)
	}
}

// RestoreFrom implements detector.Snapshotter.
func (d *Detector) RestoreFrom(r *statecodec.Reader) error {
	return d.RestoreShards(r, []detector.Detector{d}, func(uint32) int { return 0 })
}

// SnapshotShardsInto implements detector.ShardedSnapshotter.
func (d *Detector) SnapshotShardsInto(w *statecodec.Writer, shards []detector.Detector) error {
	stores, err := trajectoryStores(shards)
	if err != nil {
		return err
	}
	w.Tag(tagTrajectory)
	sessions.SnapshotMerged(w, stores)
	return w.Err()
}

// RestoreShards implements detector.ShardedSnapshotter. Sessions are
// keyed by (IP, User-Agent) but partitioned by IP alone — the same rule
// the sharded pipeline and httpguard route requests by — so every
// session of one client lands on that client's shard.
func (d *Detector) RestoreShards(r *statecodec.Reader, shards []detector.Detector, part func(ip uint32) int) error {
	stores, err := trajectoryStores(shards)
	if err != nil {
		return err
	}
	if err := r.Expect(tagTrajectory); err != nil {
		return err
	}
	return sessions.RestorePartitioned(r, stores, func(k sessions.Key) int { return part(k.IP) })
}

// trajectoryStores asserts a shard slice down to the session stores.
func trajectoryStores(shards []detector.Detector) ([]*sessions.Store[session], error) {
	stores := make([]*sessions.Store[session], len(shards))
	for i, s := range shards {
		td, ok := s.(*Detector)
		if !ok {
			return nil, fmt.Errorf("trajectory: shard %d is %T, not *trajectory.Detector", i, s)
		}
		stores[i] = td.store
	}
	return stores, nil
}
