// Package trajectory implements a semantic navigation-trajectory detector:
// the third first-class detector family, judging sessions by *where they
// go* rather than what they claim to be (internal/sentinel) or how fast
// and regularly they go there (internal/arcane). It exploits the site
// model: every request classifies to a sitemodel.PageKind, a session is a
// walk over those kinds, and benign walks — human browsing, declared
// crawlers, monitors — concentrate on a small set of transitions a
// first-order Markov chain captures well. Scraping walks do not: price-API
// hammering, depth-first catalogue sweeps without asset fetches, and
// teleporting enumeration all spend their transitions where benign mass is
// thin.
//
// The chain is trained offline on the benign slice of an independently
// seeded workload (see Train), mirroring how internal/bayes trains its
// model, and stays immutable afterwards — one trained Model is safely
// shared by every detector instance across shards. Content-aware features
// of this family are the ones "Web Robot Detection in Academic Publishing"
// (Lagopoulos et al.) found to beat request-level ones on sophisticated
// bots, which is exactly the diversity bet: strong where the other two are
// structurally blind (clean fingerprints, patient pacing), weak where they
// are strong (no reputation, no timing).
package trajectory

import (
	"fmt"
	"math"

	"divscrape/internal/sitemodel"
)

// kindCount aliases the site model's kind count for table sizing.
const kindCount = int(sitemodel.KindCount)

// Model is the benign navigation model: a Laplace-smoothed first-order
// Markov chain over PageKind transitions plus the benign baselines the
// detector's features compare sessions against. A Model is immutable
// after training and safe for concurrent readers; detector shards share
// one instance.
type Model struct {
	// surprise[a][b] is -log2 P(next=b | prev=a) in bits.
	surprise [sitemodel.KindCount][sitemodel.KindCount]float64
	// seen[a][b] marks transitions observed at least once in training;
	// unseen transitions are the link-fidelity signal (benign navigation
	// follows links the site actually presents).
	seen [sitemodel.KindCount][sitemodel.KindCount]bool
	// baselineSurprise is benign traffic's empirical cross-entropy under
	// the chain, in bits per transition: the level a benign session's
	// mean surprise hovers at.
	baselineSurprise float64
	// baselineEntropy is the mean per-session entropy of the kind-visit
	// distribution over benign sessions, in bits; sessions far below it
	// are hammering one corner of the site.
	baselineEntropy float64
	// mixPages, mixAssets, mixAPI are the benign shares of HTML pages,
	// static assets and price-API calls among those three classes.
	mixPages, mixAssets, mixAPI float64
	trained                     bool
}

// Trained reports whether the model holds a fitted chain.
func (m *Model) Trained() bool { return m.trained }

// Surprise returns the chain's surprise for one transition in bits.
func (m *Model) Surprise(prev, next sitemodel.PageKind) float64 {
	return m.surprise[prev][next]
}

// Seen reports whether training observed the transition at all.
func (m *Model) Seen(prev, next sitemodel.PageKind) bool {
	return m.seen[prev][next]
}

// BaselineSurprise returns the benign cross-entropy in bits/transition.
func (m *Model) BaselineSurprise() float64 { return m.baselineSurprise }

// BaselineEntropy returns the mean benign session kind-entropy in bits.
func (m *Model) BaselineEntropy() float64 { return m.baselineEntropy }

// Mix returns the benign (pages, assets, api) shares.
func (m *Model) Mix() (pages, assets, api float64) {
	return m.mixPages, m.mixAssets, m.mixAPI
}

// counts accumulates the sufficient statistics Train gathers before
// finalising a Model.
type counts struct {
	trans [sitemodel.KindCount][sitemodel.KindCount]uint64
	// entropySum/entropyN average per-session kind entropy.
	entropySum float64
	entropyN   uint64
	pages      uint64
	assets     uint64
	api        uint64
}

// finalize fits the smoothed chain and baselines from the gathered
// statistics.
func (c *counts) finalize() (*Model, error) {
	m := &Model{}
	var totalTrans, surpriseWeighted float64
	for a := 0; a < kindCount; a++ {
		var row uint64
		for b := 0; b < kindCount; b++ {
			row += c.trans[a][b]
		}
		den := float64(row) + float64(kindCount) // Laplace: +1 per cell
		for b := 0; b < kindCount; b++ {
			p := (float64(c.trans[a][b]) + 1) / den
			m.surprise[a][b] = -math.Log2(p)
			m.seen[a][b] = c.trans[a][b] > 0
			totalTrans += float64(c.trans[a][b])
			surpriseWeighted += float64(c.trans[a][b]) * m.surprise[a][b]
		}
	}
	if totalTrans == 0 || c.entropyN == 0 {
		return nil, fmt.Errorf("trajectory: training window produced no benign transitions")
	}
	m.baselineSurprise = surpriseWeighted / totalTrans
	m.baselineEntropy = c.entropySum / float64(c.entropyN)
	if content := c.pages + c.assets + c.api; content > 0 {
		m.mixPages = float64(c.pages) / float64(content)
		m.mixAssets = float64(c.assets) / float64(content)
		m.mixAPI = float64(c.api) / float64(content)
	}
	m.trained = true
	return m, nil
}

// kindEntropy computes the Shannon entropy (bits) of a kind-visit count
// vector. Allocation-free; shared by training and scoring.
func kindEntropy(kinds *[sitemodel.KindCount]uint32) float64 {
	var total uint32
	for _, n := range kinds {
		total += n
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	ft := float64(total)
	for _, n := range kinds {
		if n == 0 {
			continue
		}
		p := float64(n) / ft
		h -= p * math.Log2(p)
	}
	return h
}
