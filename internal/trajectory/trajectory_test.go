package trajectory

import (
	"testing"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/sitemodel"
	"divscrape/internal/uaparse"
	"divscrape/internal/workload"
)

var base = time.Date(2018, 3, 12, 10, 0, 0, 0, time.UTC)

const cleanChrome = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36"
const googlebot = "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)"

func mkReq(t *testing.T, ip, ua, path string, at time.Time) *detector.Request {
	t.Helper()
	addr, err := iprep.ParseIPv4(ip)
	if err != nil {
		t.Fatal(err)
	}
	cat, _ := iprep.BuildFeed().Lookup(addr)
	return &detector.Request{
		Entry: logfmt.Entry{
			RemoteAddr: ip, Identity: "-", AuthUser: "-",
			Time: at, Method: "GET", Path: path, Proto: "HTTP/1.1",
			Status: 200, Bytes: 1000, Referer: "-", UserAgent: ua,
		},
		UA:    uaparse.Parse(ua),
		IP:    addr,
		IPCat: cat,
	}
}

func newDet(t *testing.T) *Detector {
	t.Helper()
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPriceEnumerationCaught: the navigationally loudest scraper shape — a
// pure price-API walk with no pages and no assets — must alert shortly
// after warm-up on trajectory evidence alone (the timing here is humanly
// irregular, so the behavioural detector's signals are not in play).
func TestPriceEnumerationCaught(t *testing.T) {
	d := newDet(t)
	now := base
	warmup := DefaultConfig().WarmupRequests
	gaps := []time.Duration{3 * time.Second, 11 * time.Second, 800 * time.Millisecond, 7 * time.Second}
	firstAlert := -1
	for i := 0; i < 40; i++ {
		now = now.Add(gaps[i%len(gaps)])
		v := d.Inspect(mkReq(t, "172.16.0.8", "python-requests/2.18.4", sitemodel.PricePath(100+i*3), now))
		if i < warmup-1 && v.Alert {
			t.Fatalf("alerted during warm-up at request %d", i)
		}
		if v.Alert && firstAlert < 0 {
			firstAlert = i
		}
	}
	if firstAlert < 0 {
		t.Fatal("price enumeration never alerted")
	}
	if firstAlert > 2*warmup {
		t.Errorf("first alert at request %d, want shortly after warm-up (%d)", firstAlert, warmup)
	}
}

// TestHumanBrowsingStaysQuiet: a benign-shaped walk — home, listings,
// products with asset fetches, search, cart — stays below threshold even
// past warm-up.
func TestHumanBrowsingStaysQuiet(t *testing.T) {
	d := newDet(t)
	now := base
	paths := []string{
		sitemodel.HomePath,
		"/static/app.css",
		"/static/app.js",
		sitemodel.CategoryPath(3, 0),
		sitemodel.ProductPath(756),
		"/static/img/p756.jpg",
		sitemodel.SearchPath("deals"),
		sitemodel.ProductPath(310),
		"/static/img/p310.jpg",
		sitemodel.ProductPath(756),
		sitemodel.CartPath,
		sitemodel.CheckoutPath,
	}
	for i, p := range paths {
		now = now.Add(time.Duration(2+i) * time.Second)
		v := d.Inspect(mkReq(t, "10.0.0.5", cleanChrome, p, now))
		if v.Alert {
			t.Fatalf("human step %d (%s) alerted: score %g reasons %v", i, p, v.Score, v.Reasons.Strings())
		}
	}
}

// TestShortCircuits: authenticated users and verified search crawlers are
// never scored; a crawler claim from an unverified IP is.
func TestShortCircuits(t *testing.T) {
	d := newDet(t)
	now := base

	auth := mkReq(t, "172.16.0.9", "partner-sdk/1.0", sitemodel.PricePath(1), now)
	auth.Entry.AuthUser = "partner42"
	for i := 0; i < 30; i++ {
		now = now.Add(time.Second)
		auth.Entry.Time = now
		if v := d.Inspect(auth); v.Alert || v.Score != 0 {
			t.Fatal("authenticated request was scored")
		}
	}
	if d.Sessions() != 0 {
		t.Fatalf("short-circuited traffic created %d sessions", d.Sessions())
	}

	for i := 0; i < 30; i++ {
		now = now.Add(time.Second)
		if v := d.Inspect(mkReq(t, "192.168.80.10", googlebot, sitemodel.ProductPath(i), now)); v.Alert {
			t.Fatal("verified search crawler alerted")
		}
	}
	if d.Sessions() != 0 {
		t.Fatalf("verified crawler created %d sessions", d.Sessions())
	}

	// The same claim from a datacenter range is inspected like anyone else.
	alerted := false
	for i := 0; i < 40; i++ {
		now = now.Add(time.Second)
		if v := d.Inspect(mkReq(t, "172.16.0.77", googlebot, sitemodel.PricePath(i), now)); v.Alert {
			alerted = true
		}
	}
	if !alerted {
		t.Error("spoofed crawler claim from unverified range never alerted")
	}
}

// TestExplainerSurface: feature names line up with the vector and
// LastFeatures tracks validity across scored and short-circuited requests.
func TestExplainerSurface(t *testing.T) {
	d := newDet(t)
	names := d.FeatureNames()
	if len(names) != featIndex.Len() {
		t.Fatalf("%d feature names, want %d", len(names), featIndex.Len())
	}
	if _, ok := d.LastFeatures(); ok {
		t.Fatal("LastFeatures valid before any request")
	}
	now := base
	for i := 0; i < 20; i++ {
		now = now.Add(time.Second)
		d.Inspect(mkReq(t, "172.16.0.8", "curl/7.58.0", sitemodel.PricePath(i), now))
	}
	vec, ok := d.LastFeatures()
	if !ok {
		t.Fatal("LastFeatures invalid after scored request")
	}
	if len(vec) != len(names) {
		t.Fatalf("vector length %d, want %d", len(vec), len(names))
	}
	auth := mkReq(t, "172.16.0.8", "curl/7.58.0", sitemodel.PricePath(99), now.Add(time.Second))
	auth.Entry.AuthUser = "ops"
	d.Inspect(auth)
	if _, ok := d.LastFeatures(); ok {
		t.Fatal("LastFeatures valid after short-circuited request")
	}
}

// TestEvictionNeutral: periodic EvictBefore at the idle-timeout margin
// never changes a verdict — the guarantee the pipeline's eviction cadence
// and httpguard's janitor rely on.
func TestEvictionNeutral(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{Seed: 23, Duration: 3 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	events, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	plain, evicted := newDet(t), newDet(t)
	enrA := detector.NewEnricher(iprep.BuildFeed())
	enrB := detector.NewEnricher(iprep.BuildFeed())
	idle := DefaultConfig().IdleTimeout
	for i := range events {
		var ra, rb detector.Request
		enrA.EnrichInto(&ra, events[i].Entry)
		enrB.EnrichInto(&rb, events[i].Entry)
		va := plain.Inspect(&ra)
		if i%500 == 499 {
			evicted.EvictBefore(events[i].Entry.Time.Add(-idle))
		}
		vb := evicted.Inspect(&rb)
		if va != vb {
			t.Fatalf("event %d: eviction changed verdict: %+v vs %+v", i, va, vb)
		}
	}
	if evicted.Sessions() >= plain.Sessions() && plain.Sessions() > 0 {
		t.Logf("note: eviction dropped no sessions (plain %d, evicted %d)", plain.Sessions(), evicted.Sessions())
	}
}

// TestDefaultModelShape sanity-checks the trained baselines: benign
// traffic is asset-heavy, its walks have real entropy, and a price→price
// self-loop is more surprising than the product→static step every human
// page view produces.
func TestDefaultModelShape(t *testing.T) {
	m, err := DefaultModel()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Trained() {
		t.Fatal("default model untrained")
	}
	pages, assets, api := m.Mix()
	if assets <= pages || assets <= api {
		t.Errorf("benign mix should be asset-heavy: pages=%.3f assets=%.3f api=%.3f", pages, assets, api)
	}
	if h := m.BaselineEntropy(); h < 1 {
		t.Errorf("benign session entropy %.2f bits, want >= 1", h)
	}
	if m.Surprise(sitemodel.KindPrice, sitemodel.KindPrice) <= m.Surprise(sitemodel.KindProduct, sitemodel.KindStatic) {
		t.Error("price->price self-loop should be more surprising than product->static")
	}
}
