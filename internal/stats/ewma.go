package stats

import (
	"math"
	"time"
)

// EWMA is an exponentially weighted moving average with a fixed smoothing
// factor alpha in (0, 1]. Larger alpha tracks the signal faster; smaller
// alpha smooths more. The zero value is unusable — construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	seen  bool
}

// NewEWMA returns an EWMA with the given smoothing factor. Alpha is clamped
// to (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 0.01
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Add incorporates one observation and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.seen {
		e.value = x
		e.seen = true
		return x
	}
	e.value += e.alpha * (x - e.value)
	return e.value
}

// Value returns the current average, or 0 before any observation.
func (e *EWMA) Value() float64 { return e.value }

// Warm reports whether at least one observation has been added.
func (e *EWMA) Warm() bool { return e.seen }

// Reset clears the average.
func (e *EWMA) Reset() { e.value, e.seen = 0, false }

// DecayRate is a time-decayed event-rate estimator: it answers "how many
// events per second is this client generating right now?" with exponential
// decay over a configurable half-life, so bursts age out smoothly. It is
// the rate signal the behavioural detector feeds into CUSUM.
type DecayRate struct {
	halfLife time.Duration
	rate     float64 // events per second
	last     time.Time
	seen     bool
}

// NewDecayRate returns an estimator with the given half-life (how long it
// takes a historical burst to lose half its weight). Non-positive half-life
// defaults to one minute.
func NewDecayRate(halfLife time.Duration) *DecayRate {
	if halfLife <= 0 {
		halfLife = time.Minute
	}
	return &DecayRate{halfLife: halfLife}
}

// Observe records one event at time now and returns the decayed rate
// estimate in events per second.
func (d *DecayRate) Observe(now time.Time) float64 {
	return d.ObserveN(now, 1)
}

// ObserveN records n simultaneous events at time now.
func (d *DecayRate) ObserveN(now time.Time, n float64) float64 {
	if !d.seen {
		d.seen = true
		d.last = now
		d.rate = 0
	} else if dt := now.Sub(d.last).Seconds(); dt > 0 {
		decay := math.Exp2(-dt / d.halfLife.Seconds())
		d.rate *= decay
		d.last = now
	}
	// An event contributes weight spread over the half-life window.
	d.rate += n * math.Ln2 / d.halfLife.Seconds()
	return d.rate
}

// Rate returns the decayed rate as of time now without recording an event.
func (d *DecayRate) Rate(now time.Time) float64 {
	if !d.seen {
		return 0
	}
	dt := now.Sub(d.last).Seconds()
	if dt <= 0 {
		return d.rate
	}
	return d.rate * math.Exp2(-dt/d.halfLife.Seconds())
}

// Reset clears the estimator.
func (d *DecayRate) Reset() { *d = DecayRate{halfLife: d.halfLife} }
