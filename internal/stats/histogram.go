package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-boundary counting histogram. Boundaries are the upper
// edges of each bucket; values above the last boundary land in an overflow
// bucket. It backs the report renderer's distribution summaries and the
// entropy features of the behavioural detector.
type Histogram struct {
	bounds []float64
	counts []uint64
	total  uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
// The bounds slice is copied.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("stats: histogram bounds must be strictly ascending (bound %d)", i)
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(bounds)+1)}, nil
}

// NewLinearHistogram builds n equal-width buckets covering [lo, hi).
func NewLinearHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 || hi <= lo {
		return nil, fmt.Errorf("stats: invalid linear histogram spec [%g, %g) x %d", lo, hi, n)
	}
	bounds := make([]float64, n)
	width := (hi - lo) / float64(n)
	for i := range bounds {
		bounds[i] = lo + width*float64(i+1)
	}
	return NewHistogram(bounds)
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	idx := sort.SearchFloat64s(h.bounds, x)
	if idx < len(h.bounds) && x == h.bounds[idx] {
		idx++ // upper bounds are exclusive
	}
	h.counts[idx]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Counts returns a copy of the per-bucket counts, including the trailing
// overflow bucket.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// Quantile estimates quantile p by linear interpolation within buckets.
func (h *Histogram) Quantile(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(h.total)
	var cum float64
	lower := math.Inf(-1)
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			var upper float64
			if i < len(h.bounds) {
				upper = h.bounds[i]
			} else {
				upper = h.bounds[len(h.bounds)-1] // overflow: clamp
				return upper
			}
			if math.IsInf(lower, -1) {
				lower = upper // first bucket: no width information below
				return upper
			}
			frac := (target - cum) / float64(c)
			return lower + frac*(upper-lower)
		}
		cum = next
		if i < len(h.bounds) {
			lower = h.bounds[i]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Reset zeroes all buckets.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
}

// Sketch renders a compact ASCII bar sketch, useful in example programs.
func (h *Histogram) Sketch(width int) string {
	if width <= 0 {
		width = 40
	}
	var max uint64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	var sb strings.Builder
	for i, c := range h.counts {
		var label string
		if i < len(h.bounds) {
			label = fmt.Sprintf("<%g", h.bounds[i])
		} else {
			label = fmt.Sprintf(">=%g", h.bounds[len(h.bounds)-1])
		}
		bar := 0
		if max > 0 {
			bar = int(float64(c) / float64(max) * float64(width))
		}
		fmt.Fprintf(&sb, "%10s %8d %s\n", label, c, strings.Repeat("#", bar))
	}
	return sb.String()
}
