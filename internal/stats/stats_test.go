package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestWelfordAgainstTwoPass(t *testing.T) {
	xs := []float64{4, 7, 13, 16, 1, 1, 2, 99, -5, 0.5}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var variance float64
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))

	if !almost(w.Mean(), mean, 1e-9) {
		t.Errorf("mean = %g, want %g", w.Mean(), mean)
	}
	if !almost(w.Variance(), variance, 1e-9) {
		t.Errorf("variance = %g, want %g", w.Variance(), variance)
	}
	if w.N() != uint64(len(xs)) {
		t.Errorf("n = %d, want %d", w.N(), len(xs))
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.CV() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	w.Add(5)
	if w.Variance() != 0 || w.SampleVariance() != 0 {
		t.Error("single observation has zero variance")
	}
	w.Reset()
	if w.N() != 0 {
		t.Error("Reset did not clear")
	}

	// Constant zero stream: CV must stay 0, not Inf.
	for i := 0; i < 5; i++ {
		w.Add(0)
	}
	if w.CV() != 0 {
		t.Errorf("CV of constant zeros = %g, want 0", w.CV())
	}
	// Zero mean with spread: CV is +Inf by convention.
	w.Reset()
	w.Add(-1)
	w.Add(1)
	if !math.IsInf(w.CV(), 1) {
		t.Errorf("CV with zero mean and spread = %g, want +Inf", w.CV())
	}
}

// TestWelfordMergeProperty: merging two accumulators equals accumulating
// the concatenation.
func TestWelfordMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		var w1, w2, all Welford
		for _, x := range a {
			x = clampFinite(x)
			w1.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			x = clampFinite(x)
			w2.Add(x)
			all.Add(x)
		}
		w1.Merge(w2)
		if w1.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		return almost(w1.Mean(), all.Mean(), 1e-6*scale) &&
			almost(w1.Variance(), all.Variance(), 1e-4*math.Max(1, all.Variance()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func clampFinite(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	// Keep magnitudes sane so float error bounds hold.
	return math.Mod(x, 1e6)
}

func TestMinMax(t *testing.T) {
	var m MinMax
	if m.Min() != 0 || m.Max() != 0 || m.Range() != 0 {
		t.Error("empty MinMax should report zeros")
	}
	for _, x := range []float64{3, -2, 8, 0} {
		m.Add(x)
	}
	if m.Min() != -2 || m.Max() != 8 || m.Range() != 10 {
		t.Errorf("min/max/range = %g/%g/%g, want -2/8/10", m.Min(), m.Max(), m.Range())
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Warm() {
		t.Error("fresh EWMA should not be warm")
	}
	if got := e.Add(10); got != 10 {
		t.Errorf("first Add = %g, want 10 (seeding)", got)
	}
	if got := e.Add(20); got != 15 {
		t.Errorf("second Add = %g, want 15", got)
	}
	e.Reset()
	if e.Warm() || e.Value() != 0 {
		t.Error("Reset did not clear")
	}

	// Alpha clamping.
	if NewEWMA(-1) == nil || NewEWMA(2) == nil {
		t.Error("constructor should clamp, not fail")
	}
	clamped := NewEWMA(5)
	clamped.Add(1)
	if got := clamped.Add(3); got != 3 {
		t.Errorf("alpha clamped to 1 should track instantly, got %g", got)
	}
}

func TestDecayRateHalfLife(t *testing.T) {
	d := NewDecayRate(time.Minute)
	base := time.Date(2018, 3, 11, 0, 0, 0, 0, time.UTC)
	// Feed a steady 2 req/s for 5 minutes; the estimate should converge
	// near 2.
	now := base
	for i := 0; i < 600; i++ {
		now = now.Add(500 * time.Millisecond)
		d.Observe(now)
	}
	got := d.Rate(now)
	if !almost(got, 2, 0.3) {
		t.Errorf("steady 2/s estimated as %g", got)
	}
	// After one idle half-life the estimate halves.
	later := d.Rate(now.Add(time.Minute))
	if !almost(later, got/2, 0.05) {
		t.Errorf("after one half-life: %g, want about %g", later, got/2)
	}
	// Rate() is read-only.
	if d.Rate(now.Add(time.Minute)) != later {
		t.Error("Rate mutated state")
	}
	d.Reset()
	if d.Rate(now) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestP2QuantileAccuracy(t *testing.T) {
	// Deterministic pseudo-random stream (LCG) so the test is stable.
	lcg := uint64(12345)
	next := func() float64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return float64(lcg>>11) / float64(1<<53)
	}
	for _, p := range []float64{0.25, 0.5, 0.75, 0.95} {
		q := NewP2Quantile(p)
		xs := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			x := next()
			q.Add(x)
			xs = append(xs, x)
		}
		exact := ExactQuantile(xs, p)
		if !almost(q.Value(), exact, 0.02) {
			t.Errorf("P2(%g) = %g, exact %g", p, q.Value(), exact)
		}
	}
}

func TestP2QuantileSmallStreams(t *testing.T) {
	q := NewP2Quantile(0.5)
	if q.Value() != 0 {
		t.Error("empty estimator should report 0")
	}
	for _, x := range []float64{5, 1, 3} {
		q.Add(x)
	}
	// With fewer than 5 samples it falls back to the exact quantile.
	if got := q.Value(); got != 3 {
		t.Errorf("median of {1,3,5} = %g, want 3", got)
	}
	if q.N() != 3 {
		t.Errorf("N = %d", q.N())
	}
	if q.Quantile() != 0.5 {
		t.Errorf("Quantile() = %g", q.Quantile())
	}
}

func TestP2QuantileClampsP(t *testing.T) {
	lo := NewP2Quantile(-1)
	hi := NewP2Quantile(2)
	if lo.Quantile() <= 0 || hi.Quantile() >= 1 {
		t.Errorf("p clamping failed: %g %g", lo.Quantile(), hi.Quantile())
	}
}

func TestExactQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {-1, 10}, {2, 40},
	}
	for _, tt := range tests {
		if got := ExactQuantile(xs, tt.p); !almost(got, tt.want, 1e-9) {
			t.Errorf("ExactQuantile(p=%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if ExactQuantile(nil, 0.5) != 0 {
		t.Error("empty slice should report 0")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1, 1.5, 3, 10, 2} {
		h.Add(x)
	}
	// Buckets: <1, <2, <5, >=5 (upper bounds exclusive).
	want := []uint64{1, 2, 2, 1}
	got := h.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
	if s := h.Sketch(10); s == "" {
		t.Error("Sketch returned empty string")
	}
	h.Reset()
	if h.Total() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Error("descending bounds accepted")
	}
	if _, err := NewLinearHistogram(0, 10, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := NewLinearHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
	h, err := NewLinearHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h.Bounds()); got != 5 {
		t.Errorf("linear histogram has %d bounds, want 5", got)
	}
}

func TestCountSetEntropy(t *testing.T) {
	s := NewCountSet()
	if s.Entropy() != 0 || s.NormalizedEntropy() != 0 || s.TopShare() != 0 {
		t.Error("empty set should report zeros")
	}
	// Uniform over 4 categories: entropy = 2 bits, normalized = 1.
	for _, c := range []string{"a", "b", "c", "d"} {
		s.Add(c)
	}
	if !almost(s.Entropy(), 2, 1e-9) {
		t.Errorf("entropy = %g, want 2", s.Entropy())
	}
	if !almost(s.NormalizedEntropy(), 1, 1e-9) {
		t.Errorf("normalized = %g, want 1", s.NormalizedEntropy())
	}
	if !almost(s.TopShare(), 0.25, 1e-9) {
		t.Errorf("top share = %g, want 0.25", s.TopShare())
	}
	if s.Distinct() != 4 || s.Total() != 4 || s.Count("a") != 1 {
		t.Error("counting wrong")
	}
	s.Reset()
	if s.Total() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestEntropyOfCounts(t *testing.T) {
	if EntropyOfCounts(nil) != 0 {
		t.Error("empty counts")
	}
	if EntropyOfCounts([]uint64{7}) != 0 {
		t.Error("single category should have zero entropy")
	}
	if got := EntropyOfCounts([]uint64{1, 1}); !almost(got, 1, 1e-9) {
		t.Errorf("two equal categories = %g bits, want 1", got)
	}
	// Zero-count categories contribute nothing.
	if got := EntropyOfCounts([]uint64{1, 1, 0, 0}); !almost(got, 1, 1e-9) {
		t.Errorf("with empty categories = %g bits, want 1", got)
	}
}

// Entropy property: concentration never exceeds the uniform bound.
func TestEntropyBoundProperty(t *testing.T) {
	f := func(counts []uint16) bool {
		s := NewCountSet()
		for i, c := range counts {
			for j := 0; j < int(c%50); j++ {
				s.Add(string(rune('a' + i%26)))
			}
		}
		if s.Distinct() < 2 {
			return s.NormalizedEntropy() == 0
		}
		h := s.NormalizedEntropy()
		return h >= 0 && h <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
