// Package stats provides streaming statistics primitives — running moments,
// exponentially weighted averages, quantile sketches, histograms and entropy
// — used by the behavioural detector to summarise per-session and population
// features in a single pass over the traffic.
//
// All types are plain value types safe for single-goroutine use; detectors
// own their statistics and the pipeline serialises access.
package stats

import "math"

// Welford accumulates count, mean and variance in one pass using Welford's
// online algorithm, which is numerically stable for long streams.
// The zero value is an empty accumulator ready for use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance, or 0 with fewer than two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the Bessel-corrected sample variance.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CV returns the coefficient of variation (stddev/mean), the detector's
// preferred measure of inter-arrival regularity: robotic traffic has a CV
// near zero while human think times are heavily dispersed. Returns +Inf
// when the mean is zero but observations exist.
func (w *Welford) CV() float64 {
	if w.n == 0 {
		return 0
	}
	if w.mean == 0 {
		if w.m2 == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return w.StdDev() / math.Abs(w.mean)
}

// Merge folds another accumulator into this one (parallel Welford merge).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	delta := o.mean - w.mean
	total := n1 + n2
	w.mean += delta * n2 / total
	w.m2 += o.m2 + delta*delta*n1*n2/total
	w.n += o.n
}

// Reset returns the accumulator to its empty state.
func (w *Welford) Reset() { *w = Welford{} }

// Decay scales the accumulator's effective weight by keep in (0, 1),
// implementing exponential forgetting: the mean and variance are
// unchanged, but the baseline now weighs as if it had seen keep·N
// observations, so subsequent observations move it proportionally
// faster. This is how a long-running detector keeps its population
// baseline tracking traffic drift instead of being anchored forever to
// its first days. keep ≥ 1 is a no-op; keep ≤ 0 (or decaying below one
// observation) resets.
func (w *Welford) Decay(keep float64) {
	if keep >= 1 || w.n == 0 {
		return
	}
	n := float64(w.n) * keep
	if keep <= 0 || n < 1 {
		w.Reset()
		return
	}
	oldN := w.n
	w.n = uint64(n + 0.5)
	// m2 scales with the (rounded) weight so Variance (m2/n) is preserved.
	w.m2 *= float64(w.n) / float64(oldN)
}

// MinMax tracks the extremes of a stream. The zero value is empty.
type MinMax struct {
	n        uint64
	min, max float64
}

// Add incorporates one observation.
func (m *MinMax) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
}

// N returns the number of observations.
func (m *MinMax) N() uint64 { return m.n }

// Min returns the smallest observation, or 0 when empty.
func (m *MinMax) Min() float64 { return m.min }

// Max returns the largest observation, or 0 when empty.
func (m *MinMax) Max() float64 { return m.max }

// Range returns max-min, or 0 when empty.
func (m *MinMax) Range() float64 { return m.max - m.min }
