package stats

import "sort"

// P2Quantile estimates a single quantile of a stream in O(1) space using the
// P² (piecewise-parabolic) algorithm of Jain & Chlamtac (1985). It is used
// for population baselines (e.g. the 95th percentile of per-session request
// rates) where storing every observation would be prohibitive.
type P2Quantile struct {
	p       float64
	n       int
	heights [5]float64
	pos     [5]float64
	want    [5]float64
	incr    [5]float64
	initial []float64
}

// NewP2Quantile returns an estimator for quantile p in (0, 1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 {
		p = 0.01
	}
	if p >= 1 {
		p = 0.99
	}
	q := &P2Quantile{p: p, initial: make([]float64, 0, 5)}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.incr = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q
}

// Add incorporates one observation.
func (q *P2Quantile) Add(x float64) {
	if q.n < 5 {
		q.initial = append(q.initial, x)
		q.n++
		if q.n == 5 {
			sort.Float64s(q.initial)
			copy(q.heights[:], q.initial)
			q.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}
	q.n++

	// Find the cell containing x and stretch the extremes if needed.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for i := 1; i < 5; i++ {
			if x < q.heights[i] {
				k = i - 1
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.want {
		q.want[i] += q.incr[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

func (q *P2Quantile) parabolic(i int, d float64) float64 {
	num1 := q.pos[i] - q.pos[i-1] + d
	num2 := q.pos[i+1] - q.pos[i] - d
	den := q.pos[i+1] - q.pos[i-1]
	t1 := (q.heights[i+1] - q.heights[i]) / (q.pos[i+1] - q.pos[i])
	t2 := (q.heights[i] - q.heights[i-1]) / (q.pos[i] - q.pos[i-1])
	return q.heights[i] + d/den*(num1*t1+num2*t2)
}

func (q *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// N returns the number of observations.
func (q *P2Quantile) N() int { return q.n }

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact quantile of the buffered values.
func (q *P2Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if q.n < 5 {
		buf := make([]float64, len(q.initial))
		copy(buf, q.initial)
		sort.Float64s(buf)
		idx := int(q.p * float64(len(buf)-1))
		return buf[idx]
	}
	return q.heights[2]
}

// Quantile returns the target quantile p this estimator tracks.
func (q *P2Quantile) Quantile() float64 { return q.p }

// ExactQuantile computes quantile p of xs by sorting a copy; used in tests
// and offline calibration, not on the hot path.
func ExactQuantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	buf := make([]float64, len(xs))
	copy(buf, xs)
	sort.Float64s(buf)
	if p <= 0 {
		return buf[0]
	}
	if p >= 1 {
		return buf[len(buf)-1]
	}
	// Linear interpolation between closest ranks.
	f := p * float64(len(buf)-1)
	lo := int(f)
	hi := lo + 1
	if hi >= len(buf) {
		return buf[lo]
	}
	frac := f - float64(lo)
	return buf[lo]*(1-frac) + buf[hi]*frac
}
