package stats

import (
	"fmt"
	"testing"
	"time"

	"divscrape/internal/statecodec"
)

func TestWelfordSnapshotRoundTrip(t *testing.T) {
	var a Welford
	for i := 0; i < 100; i++ {
		a.Add(float64(i%17) * 1.3)
	}
	w := statecodec.NewWriter()
	a.SnapshotInto(w)

	var b Welford
	if err := b.RestoreFrom(statecodec.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("restored %+v, want %+v", b, a)
	}
	// Both must evolve identically afterwards.
	a.Add(4.2)
	b.Add(4.2)
	if a.Mean() != b.Mean() || a.Variance() != b.Variance() {
		t.Error("accumulators diverged after restore")
	}
}

func TestCountSetSnapshotDeterministicAndRoundTrips(t *testing.T) {
	build := func(order []int) []byte {
		s := NewCountSet()
		for _, i := range order {
			for j := 0; j <= i%5; j++ {
				s.Add(fmt.Sprintf("ua-%d", i))
			}
		}
		w := statecodec.NewWriter()
		s.SnapshotInto(w)
		return append([]byte(nil), w.Bytes()...)
	}
	fwd := make([]int, 50)
	rev := make([]int, 50)
	for i := range fwd {
		fwd[i], rev[i] = i, 49-i
	}
	a, b := build(fwd), build(rev)
	if string(a) != string(b) {
		t.Error("insertion order leaked into snapshot bytes")
	}

	s := NewCountSet()
	if err := s.RestoreFrom(statecodec.NewReader(a)); err != nil {
		t.Fatal(err)
	}
	if s.Distinct() != 50 {
		t.Errorf("Distinct = %d", s.Distinct())
	}
	if s.Count("ua-7") != 3 {
		t.Errorf("Count(ua-7) = %d", s.Count("ua-7"))
	}
	orig := NewCountSet()
	for _, i := range fwd {
		for j := 0; j <= i%5; j++ {
			orig.Add(fmt.Sprintf("ua-%d", i))
		}
	}
	if s.Total() != orig.Total() || s.TopShare() != orig.TopShare() {
		t.Error("totals diverged after restore")
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("ua-%d", i)
		if s.Count(k) != orig.Count(k) {
			t.Errorf("count %q diverged", k)
		}
	}
}

func TestDecayRateSnapshotRoundTrip(t *testing.T) {
	now := time.Date(2018, 3, 11, 10, 0, 0, 0, time.UTC)
	a := NewDecayRate(2 * time.Minute)
	for i := 0; i < 30; i++ {
		now = now.Add(time.Duration(i) * time.Second)
		a.Observe(now)
	}
	w := statecodec.NewWriter()
	a.SnapshotInto(w)
	b := NewDecayRate(2 * time.Minute)
	if err := b.RestoreFrom(statecodec.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	later := now.Add(45 * time.Second)
	if a.Rate(later) != b.Rate(later) {
		t.Errorf("rates diverged: %g vs %g", a.Rate(later), b.Rate(later))
	}
}

func TestEWMASnapshotRoundTrip(t *testing.T) {
	a := NewEWMA(0.2)
	for i := 0; i < 20; i++ {
		a.Add(float64(i))
	}
	w := statecodec.NewWriter()
	a.SnapshotInto(w)
	b := NewEWMA(0.2)
	if err := b.RestoreFrom(statecodec.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if a.Add(7) != b.Add(7) {
		t.Error("EWMA diverged after restore")
	}
}

func TestP2QuantileSnapshotRoundTrip(t *testing.T) {
	for _, n := range []int{3, 5, 200} { // below, at and beyond the init buffer
		a := NewP2Quantile(0.75)
		x := 1.0
		for i := 0; i < n; i++ {
			x = x*1.1 + float64(i%7)
			a.Add(x)
		}
		w := statecodec.NewWriter()
		a.SnapshotInto(w)
		b := NewP2Quantile(0.75)
		if err := b.RestoreFrom(statecodec.NewReader(w.Bytes())); err != nil {
			t.Fatal(err)
		}
		if a.Value() != b.Value() {
			t.Errorf("n=%d: value %g vs %g", n, a.Value(), b.Value())
		}
		a.Add(123.4)
		b.Add(123.4)
		if a.Value() != b.Value() {
			t.Errorf("n=%d: diverged after restore", n)
		}
	}
}
