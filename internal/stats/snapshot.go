package stats

import (
	"sort"

	"divscrape/internal/statecodec"
)

// Snapshot support: every streaming accumulator detectors embed in
// per-client state can serialise its dynamic fields through the state
// codec and restore them into an identically configured instance, so
// session histories survive process restarts. Configuration (half-lives,
// quantile targets, smoothing factors) is not serialised — it comes from
// code — only the accumulated observations are.

// Section tags; Expect on restore catches snapshots spliced out of order.
const (
	tagWelford    uint16 = 0x5701
	tagCountSet   uint16 = 0x5702
	tagDecayRate  uint16 = 0x5703
	tagEWMA       uint16 = 0x5704
	tagP2Quantile uint16 = 0x5705
)

// SnapshotInto implements statecodec.Snapshotter.
func (w *Welford) SnapshotInto(sw *statecodec.Writer) {
	sw.Tag(tagWelford)
	sw.Uint64(w.n)
	sw.Float64(w.mean)
	sw.Float64(w.m2)
}

// RestoreFrom implements statecodec.Snapshotter.
func (w *Welford) RestoreFrom(r *statecodec.Reader) error {
	if err := r.Expect(tagWelford); err != nil {
		return err
	}
	w.n = r.Uint64()
	w.mean = r.Float64()
	w.m2 = r.Float64()
	return r.Err()
}

// SnapshotInto implements statecodec.Snapshotter. Categories are written
// in sorted order, so equal count sets always serialise to equal bytes
// regardless of map iteration order.
func (s *CountSet) SnapshotInto(w *statecodec.Writer) {
	w.Tag(tagCountSet)
	keys := make([]string, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Uint32(uint32(len(keys)))
	for _, k := range keys {
		w.String(k)
		w.Uint64(s.counts[k])
	}
}

// RestoreFrom implements statecodec.Snapshotter, replacing the current
// contents. The total is recomputed from the restored counts, so the
// count/total invariant holds even against a corrupt payload.
func (s *CountSet) RestoreFrom(r *statecodec.Reader) error {
	if err := r.Expect(tagCountSet); err != nil {
		return err
	}
	s.Reset()
	n := r.Count(4 + 8) // min bytes per entry: empty string + count
	for i := 0; i < n; i++ {
		k := r.String()
		c := r.Uint64()
		if r.Err() != nil {
			return r.Err()
		}
		s.counts[k] = c
		s.total += c
	}
	return r.Err()
}

// SnapshotInto implements statecodec.Snapshotter.
func (d *DecayRate) SnapshotInto(w *statecodec.Writer) {
	w.Tag(tagDecayRate)
	w.Float64(d.rate)
	w.Time(d.last)
	w.Bool(d.seen)
}

// RestoreFrom implements statecodec.Snapshotter. The half-life stays as
// configured on the receiver.
func (d *DecayRate) RestoreFrom(r *statecodec.Reader) error {
	if err := r.Expect(tagDecayRate); err != nil {
		return err
	}
	d.rate = r.Float64()
	d.last = r.Time()
	d.seen = r.Bool()
	return r.Err()
}

// SnapshotInto implements statecodec.Snapshotter.
func (e *EWMA) SnapshotInto(w *statecodec.Writer) {
	w.Tag(tagEWMA)
	w.Float64(e.value)
	w.Bool(e.seen)
}

// RestoreFrom implements statecodec.Snapshotter. Alpha stays as
// configured on the receiver.
func (e *EWMA) RestoreFrom(r *statecodec.Reader) error {
	if err := r.Expect(tagEWMA); err != nil {
		return err
	}
	e.value = r.Float64()
	e.seen = r.Bool()
	return r.Err()
}

// SnapshotInto implements statecodec.Snapshotter.
func (q *P2Quantile) SnapshotInto(w *statecodec.Writer) {
	w.Tag(tagP2Quantile)
	w.Int(q.n)
	for i := 0; i < 5; i++ {
		w.Float64(q.heights[i])
		w.Float64(q.pos[i])
		w.Float64(q.want[i])
	}
	w.Uint32(uint32(len(q.initial)))
	for _, v := range q.initial {
		w.Float64(v)
	}
}

// RestoreFrom implements statecodec.Snapshotter. The target quantile and
// its marker increments stay as configured on the receiver.
func (q *P2Quantile) RestoreFrom(r *statecodec.Reader) error {
	if err := r.Expect(tagP2Quantile); err != nil {
		return err
	}
	q.n = r.Int()
	for i := 0; i < 5; i++ {
		q.heights[i] = r.Float64()
		q.pos[i] = r.Float64()
		q.want[i] = r.Float64()
	}
	n := r.Count(8)
	q.initial = q.initial[:0]
	for i := 0; i < n; i++ {
		q.initial = append(q.initial, r.Float64())
	}
	return r.Err()
}
