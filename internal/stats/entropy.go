package stats

import "math"

// CountSet tracks frequencies of string categories and computes their
// Shannon entropy. The behavioural detector uses it for path-diversity and
// query-parameter features: scripted crawlers tend to concentrate on very
// few URL shapes (low entropy) or to sweep an ID space uniformly (entropy
// close to the maximum), while human browsing lies in between.
type CountSet struct {
	counts map[string]uint64
	total  uint64
}

// NewCountSet returns an empty category counter.
func NewCountSet() *CountSet {
	return &CountSet{counts: make(map[string]uint64)}
}

// Add counts one occurrence of category c.
func (s *CountSet) Add(c string) {
	s.counts[c]++
	s.total++
}

// Total returns the number of observations.
func (s *CountSet) Total() uint64 { return s.total }

// Distinct returns the number of distinct categories seen.
func (s *CountSet) Distinct() int { return len(s.counts) }

// Count returns the frequency of category c.
func (s *CountSet) Count(c string) uint64 { return s.counts[c] }

// Entropy returns the Shannon entropy in bits.
func (s *CountSet) Entropy() float64 {
	if s.total == 0 {
		return 0
	}
	var h float64
	n := float64(s.total)
	for _, c := range s.counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// NormalizedEntropy returns entropy divided by the maximum possible entropy
// for the observed number of categories, in [0, 1]. Returns 0 when fewer
// than two categories have been seen.
func (s *CountSet) NormalizedEntropy() float64 {
	k := len(s.counts)
	if k < 2 {
		return 0
	}
	return s.Entropy() / math.Log2(float64(k))
}

// TopShare returns the fraction of observations held by the most frequent
// category; 1.0 means perfectly concentrated traffic.
func (s *CountSet) TopShare() float64 {
	if s.total == 0 {
		return 0
	}
	var max uint64
	for _, c := range s.counts {
		if c > max {
			max = c
		}
	}
	return float64(max) / float64(s.total)
}

// Reset clears all counts in place: the map's buckets stay allocated, so a
// recycled counter's next session re-populates without re-growing it.
func (s *CountSet) Reset() {
	clear(s.counts)
	s.total = 0
}

// EntropyOfCounts computes Shannon entropy (bits) of an arbitrary count
// vector without building a CountSet.
func EntropyOfCounts(counts []uint64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var h float64
	n := float64(total)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}
