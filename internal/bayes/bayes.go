// Package bayes implements a trainable Naive Bayes scraping detector in
// the style of the probabilistic web-robot detection literature the DSN
// 2018 paper cites (Stassopoulou & Dikaiakos, Computer Networks 2009):
// per-session features are discretised into bins and a Naive Bayes
// classifier, trained on labelled sessions, scores each request with the
// posterior probability that its session is automated.
//
// Within the reproduction it serves as a *third* diverse detector: where
// sentinel encodes vendor signatures and arcane encodes hand-tuned
// behavioural heuristics, this detector learns its decision surface from
// data — a genuinely different failure profile, which is what makes
// 2-out-of-3 adjudication interesting (the paper's "diverse detectors"
// theme taken one detector further).
package bayes

import (
	"fmt"
	"math"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/sessions"
	"divscrape/internal/sitemodel"
	"divscrape/internal/stats"
	"divscrape/internal/uaparse"
)

// Feature indices. Each feature is discretised into a small number of
// ordinal bins; bin edges live in featureBins.
const (
	featDeclaredAutomation = iota // UA class: browser/unknown vs declared bot/tool
	featInterarrivalCV            // timing regularity
	featRate                      // session request rate
	featAssetRatio                // asset fetches per page
	featRefererMissRatio          // missing-referer ratio on navigation
	featAPIRatio                  // price-API share of requests
	featErrorRatio                // 4xx share
	featCoverage                  // distinct products seen
	numFeatures
)

// numBins is the per-feature discretisation width.
const numBins = 4

// featureName labels features in explanations.
var featureNames = [numFeatures]string{
	"declared-automation",
	"interarrival-cv",
	"session-rate",
	"asset-ratio",
	"referer-miss",
	"api-ratio",
	"error-ratio",
	"coverage",
}

// Model holds the trained class-conditional bin counts. The zero value is
// untrained; build with Train or start from Priors and call Update.
type Model struct {
	// counts[class][feature][bin] with Laplace smoothing applied at
	// scoring time. class 0 = benign, 1 = scraper.
	counts [2][numFeatures][numBins]float64
	// classTotals[class] is the number of training observations.
	classTotals [2]float64
}

// Update folds one labelled observation (a session feature vector) into
// the model.
func (m *Model) Update(v FeatureVector, malicious bool) {
	class := 0
	if malicious {
		class = 1
	}
	for f := 0; f < numFeatures; f++ {
		m.counts[class][f][v[f]]++
	}
	m.classTotals[class]++
}

// Trained reports whether both classes have observations.
func (m *Model) Trained() bool {
	return m.classTotals[0] > 0 && m.classTotals[1] > 0
}

// Posterior returns P(scraper | v) under Naive Bayes with Laplace
// smoothing. Returns 0.5 when untrained.
func (m *Model) Posterior(v FeatureVector) float64 {
	if !m.Trained() {
		return 0.5
	}
	// Work in log space to avoid underflow across features.
	logOdds := math.Log(m.classTotals[1]) - math.Log(m.classTotals[0])
	for f := 0; f < numFeatures; f++ {
		likeScraper := (m.counts[1][f][v[f]] + 1) / (m.classTotals[1] + numBins)
		likeBenign := (m.counts[0][f][v[f]] + 1) / (m.classTotals[0] + numBins)
		logOdds += math.Log(likeScraper) - math.Log(likeBenign)
	}
	return 1 / (1 + math.Exp(-logOdds))
}

// Explain returns the per-feature log-odds contributions for a vector,
// most incriminating first (used for alert reasons).
func (m *Model) Explain(v FeatureVector, max int) []string {
	if !m.Trained() || max <= 0 {
		return nil
	}
	names, los := m.rankedContribs(v)
	if max > len(names) {
		max = len(names)
	}
	out := make([]string, 0, max)
	for i := 0; i < max; i++ {
		if los[i] <= 0 {
			break
		}
		out = append(out, names[i])
	}
	return out
}

// explainInto is Explain writing interned feature names into a
// fixed-capacity reason list: the decision path's allocation-free variant.
func (m *Model) explainInto(v FeatureVector, out *detector.ReasonList) {
	if !m.Trained() {
		return
	}
	names, los := m.rankedContribs(v)
	for i := 0; i < len(names) && i < detector.MaxReasons; i++ {
		if los[i] <= 0 {
			break
		}
		out.Append(names[i])
	}
}

// rankedContribs computes the per-feature log-odds and sorts the interned
// feature names by descending contribution, all in fixed-size arrays.
func (m *Model) rankedContribs(v FeatureVector) ([numFeatures]string, [numFeatures]float64) {
	var names [numFeatures]string
	var los [numFeatures]float64
	for f := 0; f < numFeatures; f++ {
		likeScraper := (m.counts[1][f][v[f]] + 1) / (m.classTotals[1] + numBins)
		likeBenign := (m.counts[0][f][v[f]] + 1) / (m.classTotals[0] + numBins)
		names[f] = featureNames[f]
		los[f] = math.Log(likeScraper / likeBenign)
	}
	// Selection sort on a tiny array, descending log-odds.
	for i := 0; i < numFeatures; i++ {
		best := i
		for j := i + 1; j < numFeatures; j++ {
			if los[j] > los[best] {
				best = j
			}
		}
		names[i], names[best] = names[best], names[i]
		los[i], los[best] = los[best], los[i]
	}
	return names, los
}

// FeatureVector is a discretised per-session observation.
type FeatureVector [numFeatures]uint8

// session accumulates the raw per-session feature signals.
type session struct {
	count        uint64
	pages        uint64
	assets       uint64
	apiCalls     uint64
	errors4xx    uint64
	refererMiss  uint64
	refererElig  uint64
	products     map[int]struct{}
	lastTime     time.Time
	first        time.Time
	interarrival stats.Welford
	declared     bool
}

// vector discretises the session's current state.
func (s *session) vector() FeatureVector {
	var v FeatureVector
	v[featDeclaredAutomation] = binBool(s.declared)
	v[featInterarrivalCV] = binThresholds(s.interarrival.CV(), 0.3, 0.7, 1.2)
	elapsed := s.lastTime.Sub(s.first).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(s.count) / elapsed
	}
	v[featRate] = binThresholds(rate, 0.2, 0.8, 2.5)
	assetRatio := 0.0
	if s.pages > 0 {
		assetRatio = float64(s.assets) / float64(s.pages)
	}
	v[featAssetRatio] = binThresholds(assetRatio, 0.2, 0.8, 2.0)
	missRatio := 0.0
	if s.refererElig > 0 {
		missRatio = float64(s.refererMiss) / float64(s.refererElig)
	}
	v[featRefererMissRatio] = binThresholds(missRatio, 0.25, 0.6, 0.9)
	apiRatio := float64(s.apiCalls) / float64(s.count)
	v[featAPIRatio] = binThresholds(apiRatio, 0.1, 0.4, 0.75)
	errRatio := float64(s.errors4xx) / float64(s.count)
	v[featErrorRatio] = binThresholds(errRatio, 0.01, 0.05, 0.2)
	v[featCoverage] = binThresholds(float64(len(s.products)), 10, 40, 150)
	return v
}

func binBool(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// binThresholds maps x to 0..3 by three ascending thresholds.
func binThresholds(x, t1, t2, t3 float64) uint8 {
	switch {
	case x < t1:
		return 0
	case x < t2:
		return 1
	case x < t3:
		return 2
	default:
		return 3
	}
}

// Config tunes the detector.
type Config struct {
	// Model is the trained model; required for New.
	Model *Model
	// AlertThreshold is the posterior above which a request alerts.
	// Default 0.85 (posteriors polarise under Naive Bayes).
	AlertThreshold float64
	// WarmupRequests suppresses scoring for the first requests of a
	// session. Default 5.
	WarmupRequests int
	// IdleTimeout ends sessions. Default 30m.
	IdleTimeout time.Duration
}

// Detector scores requests with the trained model. Not safe for
// concurrent use.
type Detector struct {
	cfg   Config
	store *sessions.Store[session]
}

var _ detector.Detector = (*Detector)(nil)

// New builds a detector around a trained model.
func New(cfg Config) (*Detector, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("bayes: a model is required")
	}
	if !cfg.Model.Trained() {
		return nil, fmt.Errorf("bayes: model has no training observations for both classes")
	}
	if cfg.AlertThreshold <= 0 {
		cfg.AlertThreshold = 0.85
	}
	if cfg.WarmupRequests <= 0 {
		cfg.WarmupRequests = 5
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 30 * time.Minute
	}
	d := &Detector{cfg: cfg}
	var err error
	if d.store, err = newStore(cfg.IdleTimeout); err != nil {
		return nil, fmt.Errorf("bayes: build store: %w", err)
	}
	return d, nil
}

func newStore(idle time.Duration) (*sessions.Store[session], error) {
	return sessions.NewStore(sessions.Config[session]{
		IdleTimeout: idle,
		New: func(now time.Time) *session {
			return &session{products: make(map[int]struct{}, 8), first: now}
		},
		Snapshot: snapshotSession,
		Restore:  restoreSession,
	})
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "bayes" }

// Reset implements detector.Detector.
func (d *Detector) Reset() {
	store, err := newStore(d.cfg.IdleTimeout)
	if err != nil {
		panic(fmt.Sprintf("bayes: impossible store config: %v", err))
	}
	d.store = store
}

// Inspect implements detector.Detector.
func (d *Detector) Inspect(req *detector.Request) detector.Verdict {
	var v detector.Verdict
	d.InspectInto(req, &v)
	return v
}

// InspectInto implements detector.Detector; every field of *out is
// overwritten and reasons are interned feature-name constants.
func (d *Detector) InspectInto(req *detector.Request, out *detector.Verdict) {
	*out = detector.Verdict{}
	// Deployment-parity whitelists, matching the other two detectors:
	// credentialed integrations and verified search engines are
	// sanctioned automation (a raw Naive Bayes model correctly classifies
	// them as robots, which is the wrong question).
	if req.Entry.AuthUser != "" && req.Entry.AuthUser != "-" {
		return
	}
	if req.UA.Class == uaparse.ClassSearchBot && req.IPCat == iprep.SearchEngine {
		return
	}
	now := req.Entry.Time
	st, fresh := d.store.Touch(sessions.KeyFor(req.IP, req.Entry.UserAgent), now)
	observe(st, req, now, fresh)
	if st.count < uint64(d.cfg.WarmupRequests) {
		return
	}
	v := st.vector()
	out.Score = d.cfg.Model.Posterior(v)
	if out.Score >= d.cfg.AlertThreshold {
		out.Alert = true
		d.cfg.Model.explainInto(v, &out.Reasons)
	}
}

// observe folds one request into the session (shared by detection and
// training).
func observe(st *session, req *detector.Request, now time.Time, fresh bool) {
	if !fresh {
		if dt := now.Sub(st.lastTime).Seconds(); dt >= 0 {
			st.interarrival.Add(dt)
		}
	}
	st.lastTime = now
	st.count++
	st.declared = req.UA.IsAutomated() || req.UA.Class == uaparse.ClassEmpty

	info := sitemodel.ClassifyPath(req.Entry.Path)
	switch {
	case info.Kind == sitemodel.KindStatic:
		st.assets++
	case info.Kind.IsPage():
		st.pages++
		if st.pages > 1 {
			st.refererElig++
			if req.Entry.Referer == "" || req.Entry.Referer == "-" {
				st.refererMiss++
			}
		}
	case info.Kind == sitemodel.KindPrice:
		st.apiCalls++
	}
	if req.Entry.Status >= 400 && req.Entry.Status < 500 {
		st.errors4xx++
	}
	if info.ProductID >= 0 {
		st.products[info.ProductID] = struct{}{}
	}
}
