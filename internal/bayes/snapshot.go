package bayes

import (
	"fmt"
	"sort"

	"divscrape/internal/detector"
	"divscrape/internal/sessions"
	"divscrape/internal/statecodec"
)

// Section tags.
const (
	tagModel uint16 = 0x4201
	tagBayes uint16 = 0x4202
)

var _ detector.ShardedSnapshotter = (*Detector)(nil)

// SnapshotInto implements statecodec.Snapshotter: the learned priors are
// the slowest state to rebuild (they need labelled traffic), so they are
// first-class snapshot citizens.
func (m *Model) SnapshotInto(w *statecodec.Writer) {
	w.Tag(tagModel)
	for class := 0; class < 2; class++ {
		w.Float64(m.classTotals[class])
		for f := 0; f < numFeatures; f++ {
			for b := 0; b < numBins; b++ {
				w.Float64(m.counts[class][f][b])
			}
		}
	}
}

// RestoreFrom implements statecodec.Snapshotter.
func (m *Model) RestoreFrom(r *statecodec.Reader) error {
	if err := r.Expect(tagModel); err != nil {
		return err
	}
	for class := 0; class < 2; class++ {
		m.classTotals[class] = r.Float64()
		for f := 0; f < numFeatures; f++ {
			for b := 0; b < numBins; b++ {
				m.counts[class][f][b] = r.Float64()
			}
		}
	}
	return r.Err()
}

// snapshotSession and restoreSession are the sessions value hooks.
func snapshotSession(w *statecodec.Writer, st *session) {
	w.Uint64(st.count)
	w.Uint64(st.pages)
	w.Uint64(st.assets)
	w.Uint64(st.apiCalls)
	w.Uint64(st.errors4xx)
	w.Uint64(st.refererMiss)
	w.Uint64(st.refererElig)
	ids := make([]int, 0, len(st.products))
	for id := range st.products {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.Uint32(uint32(len(ids)))
	for _, id := range ids {
		w.Int(id)
	}
	w.Time(st.lastTime)
	w.Time(st.first)
	st.interarrival.SnapshotInto(w)
	w.Bool(st.declared)
}

func restoreSession(r *statecodec.Reader, st *session) error {
	st.count = r.Uint64()
	st.pages = r.Uint64()
	st.assets = r.Uint64()
	st.apiCalls = r.Uint64()
	st.errors4xx = r.Uint64()
	st.refererMiss = r.Uint64()
	st.refererElig = r.Uint64()
	n := r.Count(8)
	for i := 0; i < n; i++ {
		st.products[r.Int()] = struct{}{}
	}
	st.lastTime = r.Time()
	st.first = r.Time()
	if err := st.interarrival.RestoreFrom(r); err != nil {
		return err
	}
	st.declared = r.Bool()
	return r.Err()
}

// SnapshotInto implements detector.Snapshotter: the trained model plus
// every live session.
func (d *Detector) SnapshotInto(w *statecodec.Writer) {
	if err := d.SnapshotShardsInto(w, []detector.Detector{d}); err != nil {
		w.Fail(err)
	}
}

// RestoreFrom implements detector.Snapshotter.
func (d *Detector) RestoreFrom(r *statecodec.Reader) error {
	return d.RestoreShards(r, []detector.Detector{d}, func(uint32) int { return 0 })
}

// SnapshotShardsInto implements detector.ShardedSnapshotter. Shard
// instances hold replicas of one trained model (or literally share one),
// so the model is written once, from the first instance.
func (d *Detector) SnapshotShardsInto(w *statecodec.Writer, shards []detector.Detector) error {
	dets, err := bayesDetectors(shards)
	if err != nil {
		return err
	}
	w.Tag(tagBayes)
	dets[0].cfg.Model.SnapshotInto(w)
	stores := make([]*sessions.Store[session], len(dets))
	for i, bd := range dets {
		stores[i] = bd.store
	}
	sessions.SnapshotMerged(w, stores)
	return w.Err()
}

// RestoreShards implements detector.ShardedSnapshotter. The restored
// model is copied into every instance's model, so replicas stay in sync
// whether they share one *Model or carry their own.
func (d *Detector) RestoreShards(r *statecodec.Reader, shards []detector.Detector, part func(ip uint32) int) error {
	dets, err := bayesDetectors(shards)
	if err != nil {
		return err
	}
	if err := r.Expect(tagBayes); err != nil {
		return err
	}
	var m Model
	if err := m.RestoreFrom(r); err != nil {
		return err
	}
	if !m.Trained() {
		return fmt.Errorf("%w: restored bayes model is untrained", statecodec.ErrCorrupt)
	}
	for _, bd := range dets {
		*bd.cfg.Model = m
	}
	stores := make([]*sessions.Store[session], len(dets))
	for i, bd := range dets {
		stores[i] = bd.store
	}
	return sessions.RestorePartitioned(r, stores, func(k sessions.Key) int { return part(k.IP) })
}

// bayesDetectors asserts a shard slice down to concrete detectors.
func bayesDetectors(shards []detector.Detector) ([]*Detector, error) {
	dets := make([]*Detector, len(shards))
	for i, s := range shards {
		bd, ok := s.(*Detector)
		if !ok {
			return nil, fmt.Errorf("bayes: shard %d is %T, not *bayes.Detector", i, s)
		}
		dets[i] = bd
	}
	return dets, nil
}
