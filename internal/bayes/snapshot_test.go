package bayes

import (
	"testing"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/statecodec"
	"divscrape/internal/workload"
)

func TestModelSnapshotRoundTrip(t *testing.T) {
	m := trainedModel(t)
	w := statecodec.NewWriter()
	m.SnapshotInto(w)

	var restored Model
	if err := restored.RestoreFrom(statecodec.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !restored.Trained() {
		t.Fatal("restored model untrained")
	}
	// Posteriors must agree bit for bit on every possible vector shape.
	for i := 0; i < 64; i++ {
		var v FeatureVector
		for f := 0; f < numFeatures; f++ {
			v[f] = uint8((i + f) % numBins)
		}
		if m.Posterior(v) != restored.Posterior(v) {
			t.Fatalf("posterior diverged on %v", v)
		}
	}
}

// TestSnapshotResumeEquivalence: stop at k, snapshot (model + sessions),
// restore into a detector built around a *freshly trained-elsewhere*
// model value, and require the verdict stream from k onward to match the
// uninterrupted run.
func TestSnapshotResumeEquivalence(t *testing.T) {
	model := trainedModel(t)
	gen := func() *workload.Generator {
		g, err := workload.NewGenerator(workload.Config{Seed: 777, Duration: 3 * time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	events, err := gen().Generate()
	if err != nil {
		t.Fatal(err)
	}
	k := len(events) / 2

	mc := *model // private copy so restore cannot trivially alias
	full, err := New(Config{Model: &mc})
	if err != nil {
		t.Fatal(err)
	}
	enrFull := detector.NewEnricher(iprep.BuildFeed())
	var want []detector.Verdict
	for i := range events {
		var req detector.Request
		enrFull.EnrichInto(&req, events[i].Entry)
		v := full.Inspect(&req)
		if i >= k {
			want = append(want, v)
		}
	}

	mh := *model
	head, err := New(Config{Model: &mh})
	if err != nil {
		t.Fatal(err)
	}
	enr := detector.NewEnricher(iprep.BuildFeed())
	for i := 0; i < k; i++ {
		var req detector.Request
		enr.EnrichInto(&req, events[i].Entry)
		head.Inspect(&req)
	}
	w := statecodec.NewWriter()
	head.SnapshotInto(w)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	mt := *model
	tail, err := New(Config{Model: &mt})
	if err != nil {
		t.Fatal(err)
	}
	if err := tail.RestoreFrom(statecodec.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i := k; i < len(events); i++ {
		var req detector.Request
		enr.EnrichInto(&req, events[i].Entry)
		got := tail.Inspect(&req)
		if got != want[i-k] {
			t.Fatalf("verdict %d diverged after resume: got %+v, want %+v", i, got, want[i-k])
		}
	}
}

func TestRestoreRejectsCorruptSnapshot(t *testing.T) {
	m := *trainedModel(t)
	d, err := New(Config{Model: &m})
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(workload.Config{Seed: 778, Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	enr := detector.NewEnricher(iprep.BuildFeed())
	if err := g.Run(func(ev workload.Event) error {
		var req detector.Request
		enr.EnrichInto(&req, ev.Entry)
		d.Inspect(&req)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	w := statecodec.NewWriter()
	d.SnapshotInto(w)
	for cut := 0; cut < w.Len(); cut += 101 {
		m2 := *trainedModel(t)
		fresh, err := New(Config{Model: &m2})
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.RestoreFrom(statecodec.NewReader(w.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
