package bayes

import (
	"fmt"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/sessions"
	"divscrape/internal/workload"
)

// TrainConfig parameterises Train.
type TrainConfig struct {
	// Seed generates the training traffic; use a different seed from the
	// evaluation dataset so train and test are independent draws.
	Seed uint64
	// Duration is the training window. Default 24h — long enough that
	// every archetype's duty cycle produces sessions; shorter windows
	// risk leaving whole archetypes out of the training distribution.
	Duration time.Duration
	// SampleEvery takes a training observation from each live session
	// every N requests, so long sessions contribute their evolving state
	// rather than one final snapshot. Default 20.
	SampleEvery int
	// IdleTimeout matches the detector's sessionization. Default 30m.
	IdleTimeout time.Duration
}

// Train generates a labelled traffic window and fits a Naive Bayes model
// on per-session feature snapshots. The returned model is independent of
// the evaluation dataset so long as the seed differs.
func Train(cfg TrainConfig) (*Model, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 24 * time.Hour
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 20
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 30 * time.Minute
	}
	gen, err := workload.NewGenerator(workload.Config{
		Seed:     cfg.Seed,
		Duration: cfg.Duration,
	})
	if err != nil {
		return nil, fmt.Errorf("bayes: training generator: %w", err)
	}

	type trainSession struct {
		session
		malicious bool
	}
	model := &Model{}
	sample := func(ts *trainSession) {
		model.Update(ts.session.vector(), ts.malicious)
	}
	store, err := sessions.NewStore(sessions.Config[trainSession]{
		IdleTimeout: cfg.IdleTimeout,
		New: func(now time.Time) *trainSession {
			ts := &trainSession{}
			ts.products = make(map[int]struct{}, 8)
			ts.first = now
			return ts
		},
		OnEvict: func(_ sessions.Key, ts *trainSession) {
			if ts.count >= 3 {
				sample(ts)
			}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("bayes: training store: %w", err)
	}

	enricher := detector.NewEnricher(nil)
	err = gen.Run(func(ev workload.Event) error {
		req := enricher.Enrich(ev.Entry)
		now := ev.Entry.Time
		ts, fresh := store.Touch(sessions.KeyFor(req.IP, ev.Entry.UserAgent), now)
		ts.malicious = ev.Label.Malicious()
		observe(&ts.session, &req, now, fresh)
		if ts.count%uint64(cfg.SampleEvery) == 0 {
			sample(ts)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("bayes: training run: %w", err)
	}
	store.FlushAll()
	if !model.Trained() {
		return nil, fmt.Errorf("bayes: training window produced no observations for both classes")
	}
	return model, nil
}
