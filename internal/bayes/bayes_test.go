package bayes

import (
	"testing"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/ensemble"
	"divscrape/internal/evaluate"
	"divscrape/internal/iprep"
	"divscrape/internal/workload"
)

// cachedModel trains once per test binary; training replays a full
// simulated day.
var cachedModel *Model

func trainedModel(t testing.TB) *Model {
	t.Helper()
	if cachedModel == nil {
		m, err := Train(TrainConfig{Seed: 1001})
		if err != nil {
			t.Fatal(err)
		}
		cachedModel = m
	}
	return cachedModel
}

func TestModelBasics(t *testing.T) {
	var m Model
	if m.Trained() {
		t.Error("zero model claims training")
	}
	if got := m.Posterior(FeatureVector{}); got != 0.5 {
		t.Errorf("untrained posterior = %g, want 0.5", got)
	}
	// One observation per class with opposite bins polarises the
	// posterior in the right directions.
	var benign, scraper FeatureVector
	for f := range scraper {
		scraper[f] = numBins - 1
	}
	m.Update(benign, false)
	m.Update(scraper, true)
	if !m.Trained() {
		t.Fatal("model should be trained")
	}
	if p := m.Posterior(scraper); p <= 0.5 {
		t.Errorf("scraper-like vector posterior = %g", p)
	}
	if p := m.Posterior(benign); p >= 0.5 {
		t.Errorf("benign-like vector posterior = %g", p)
	}
	if reasons := m.Explain(scraper, 3); len(reasons) == 0 {
		t.Error("no explanation for an incriminating vector")
	}
	if m.Explain(scraper, 0) != nil {
		t.Error("max=0 should return nil")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := New(Config{Model: &Model{}}); err == nil {
		t.Error("untrained model accepted")
	}
}

func TestTrainValidation(t *testing.T) {
	// A window too short to contain both classes must error rather than
	// return a degenerate model.
	if _, err := Train(TrainConfig{Seed: 1, Duration: time.Second}); err == nil {
		t.Error("degenerate training window accepted")
	}
}

// The headline test: train on one seed, evaluate on another, and require
// real skill — this is the learned detector earning its place as a third
// diverse opinion.
func TestTrainedDetectorGeneralises(t *testing.T) {
	model := trainedModel(t)
	det, err := New(Config{Model: model})
	if err != nil {
		t.Fatal(err)
	}

	gen, err := workload.NewGenerator(workload.Config{
		Seed:     2002, // disjoint from the training seed
		Duration: 6 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	enricher := detector.NewEnricher(iprep.BuildFeed())
	var conf evaluate.Confusion
	err = gen.Run(func(ev workload.Event) error {
		req := enricher.Enrich(ev.Entry)
		v := det.Inspect(&req)
		conf.Add(v.Alert, ev.Label.Malicious())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if conf.Sensitivity() < 0.8 {
		t.Errorf("held-out sensitivity = %.3f, want >= 0.8", conf.Sensitivity())
	}
	if conf.Specificity() < 0.9 {
		t.Errorf("held-out specificity = %.3f, want >= 0.9", conf.Specificity())
	}
}

// Three diverse detectors under 2-out-of-3: the ensemble must not be
// worse than the weakest member on both axes simultaneously.
func TestTwoOutOfThreeEnsemble(t *testing.T) {
	model := trainedModel(t)
	bay, err := New(Config{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := ensemble.NewParallel(ensemble.KOutOfN{K: 2}, bay, bay2(t, model), bay3(t))
	if err != nil {
		t.Fatal(err)
	}
	_ = topo // constructed: the integration path in experiments uses real pairs

	// The meaningful 2oo3 check runs sentinel+arcane+bayes via the
	// experiments integration; here validate vote mechanics on the real
	// bayes verdicts.
	gen, err := workload.NewGenerator(workload.Config{Seed: 2002, Duration: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	enricher := detector.NewEnricher(iprep.BuildFeed())
	var single, vote evaluate.Confusion
	det1, _ := New(Config{Model: model})
	det2, _ := New(Config{Model: model, AlertThreshold: 0.7})
	det3, _ := New(Config{Model: model, AlertThreshold: 0.95})
	adj := ensemble.KOutOfN{K: 2}
	err = gen.Run(func(ev workload.Event) error {
		req := enricher.Enrich(ev.Entry)
		verdicts := []detector.Verdict{
			det1.Inspect(&req), det2.Inspect(&req), det3.Inspect(&req),
		}
		single.Add(verdicts[0].Alert, ev.Label.Malicious())
		vote.Add(adj.Decide(verdicts).Alert, ev.Label.Malicious())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The 0.7/0.85/0.95 thresholds bracket the default; the 2-of-3 vote
	// lands between the loosest and strictest member by construction.
	if vote.Sensitivity() > single.Sensitivity()+0.05 &&
		vote.Specificity() > single.Specificity()+0.05 {
		t.Error("vote outcome inconsistent with member thresholds")
	}
}

func bay2(t *testing.T, m *Model) *Detector {
	t.Helper()
	d, err := New(Config{Model: m, AlertThreshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func bay3(t *testing.T) *Detector {
	t.Helper()
	d, err := New(Config{Model: trainedModel(t), AlertThreshold: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDetectorReset(t *testing.T) {
	model := trainedModel(t)
	det, err := New(Config{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.Config{Seed: 3, Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	enricher := detector.NewEnricher(iprep.BuildFeed())
	first := make([]bool, 0, 1024)
	err = gen.Run(func(ev workload.Event) error {
		req := enricher.Enrich(ev.Entry)
		first = append(first, det.Inspect(&req).Alert)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	det.Reset()
	enricher.Reset()
	gen2, err := workload.NewGenerator(workload.Config{Seed: 3, Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	err = gen2.Run(func(ev workload.Event) error {
		req := enricher.Enrich(ev.Entry)
		if det.Inspect(&req).Alert != first[i] {
			t.Fatalf("verdict %d differs after reset", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBinThresholds(t *testing.T) {
	tests := []struct {
		x    float64
		want uint8
	}{
		{-1, 0}, {0.05, 0}, {0.3, 1}, {0.69, 1}, {0.7, 2}, {1.19, 2}, {1.2, 3}, {99, 3},
	}
	for _, tt := range tests {
		if got := binThresholds(tt.x, 0.3, 0.7, 1.2); got != tt.want {
			t.Errorf("binThresholds(%g) = %d, want %d", tt.x, got, tt.want)
		}
	}
}
