package mitigate

import (
	"fmt"
	"testing"
	"time"

	"divscrape/internal/statecodec"
)

var snapBase = time.Date(2018, 3, 13, 8, 0, 0, 0, time.UTC)

// snapStream is a deterministic mixed decision stream: some clients stay
// benign, some climb the ladder, some solve challenges.
type snapStep struct {
	key  string
	at   time.Time
	a    Assessment
	pass bool
}

func snapStream(n int) []snapStep {
	steps := make([]snapStep, 0, n)
	now := snapBase
	for i := 0; i < n; i++ {
		now = now.Add(time.Duration(3+i%11) * time.Second)
		client := i % 7
		st := snapStep{key: fmt.Sprintf("10.0.0.%d", client), at: now}
		switch {
		case client < 3: // benign browsers
			st.a = Assessment{Score: 0.05}
		case client < 5: // sustained scrapers
			st.a = Assessment{Alerted: true, Confirmed: client == 4, Score: 0.6}
		case client == 5: // borderline, occasionally alerted
			st.a = Assessment{Alerted: i%4 == 0, Score: 0.3}
		default: // challenge-solving headless bot
			st.a = Assessment{Alerted: true, Score: 0.5}
			st.pass = i%50 == 49
		}
		steps = append(steps, st)
	}
	return steps
}

// TestEngineSnapshotResumeEquivalence stops the decision stream at step
// k, snapshots the engine, restores into a fresh one and requires the
// action stream from k onward to be identical to the uninterrupted run.
func TestEngineSnapshotResumeEquivalence(t *testing.T) {
	steps := snapStream(4000)
	k := len(steps) / 2

	apply := func(e *Engine, s snapStep) Decision {
		if s.pass {
			e.ChallengePassed(s.key, s.at)
			return Decision{}
		}
		return e.Apply(s.key, s.at, s.a)
	}

	full := newEngine(t, Graduated())
	var want []Decision
	for i, s := range steps {
		d := apply(full, s)
		if i >= k {
			want = append(want, d)
		}
	}

	head := newEngine(t, Graduated())
	for _, s := range steps[:k] {
		apply(head, s)
	}
	w := statecodec.NewWriter()
	head.SnapshotInto(w)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	tail := newEngine(t, Graduated())
	if err := tail.RestoreFrom(statecodec.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if tail.Len() != head.Len() {
		t.Fatalf("restored %d clients, had %d", tail.Len(), head.Len())
	}
	if tail.Counts() != head.Counts() {
		t.Fatalf("restored counts %+v, had %+v", tail.Counts(), head.Counts())
	}
	for i, s := range steps[k:] {
		if got := apply(tail, s); got != want[i] {
			t.Fatalf("decision %d diverged after resume: got %+v, want %+v", k+i, got, want[i])
		}
	}
}

// TestEngineMergedRestoreAcrossPartitions: three shard engines merged and
// redistributed over five must keep producing the decisions the original
// partition would have.
func TestEngineMergedRestoreAcrossPartitions(t *testing.T) {
	part3 := func(key string) int { return int(key[len(key)-1]) % 3 }
	part5 := func(key string) int { return int(key[len(key)-1]) % 5 }
	steps := snapStream(3000)

	shards := make([]*Engine, 3)
	for i := range shards {
		shards[i] = newEngine(t, Graduated())
	}
	reference := newEngine(t, Graduated())
	for _, s := range steps {
		if s.pass {
			shards[part3(s.key)].ChallengePassed(s.key, s.at)
			reference.ChallengePassed(s.key, s.at)
			continue
		}
		shards[part3(s.key)].Apply(s.key, s.at, s.a)
		reference.Apply(s.key, s.at, s.a)
	}

	w := statecodec.NewWriter()
	SnapshotMerged(w, shards)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	out := make([]*Engine, 5)
	for i := range out {
		out[i] = newEngine(t, Graduated())
	}
	if err := RestorePartitioned(statecodec.NewReader(w.Bytes()), out, part5); err != nil {
		t.Fatal(err)
	}

	// The repartitioned fleet must continue exactly like one engine that
	// saw everything.
	now := steps[len(steps)-1].at
	for i := 0; i < 1000; i++ {
		now = now.Add(time.Duration(2+i%7) * time.Second)
		key := fmt.Sprintf("10.0.0.%d", i%7)
		a := Assessment{Alerted: i%3 == 0, Score: 0.4}
		got := out[part5(key)].Apply(key, now, a)
		wantD := reference.Apply(key, now, a)
		if got != wantD {
			t.Fatalf("step %d client %s diverged: got %+v, want %+v", i, key, got, wantD)
		}
	}

	var total ActionCounts
	for _, e := range out {
		total.Add(e.Counts())
	}
	// Counts from before the final 1000 steps live on engine 0; totals
	// must be conserved across the reshard.
	var before ActionCounts
	for _, e := range shards {
		before.Add(e.Counts())
	}
	if total.Total() != before.Total()+1000 {
		t.Errorf("counts not conserved: %d vs %d+1000", total.Total(), before.Total())
	}
}

func TestEngineSnapshotDeterministicBytes(t *testing.T) {
	build := func() []byte {
		e, err := New(Graduated())
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range snapStream(2000) {
			if s.pass {
				e.ChallengePassed(s.key, s.at)
			} else {
				e.Apply(s.key, s.at, s.a)
			}
		}
		w := statecodec.NewWriter()
		e.SnapshotInto(w)
		return append([]byte(nil), w.Bytes()...)
	}
	if string(build()) != string(build()) {
		t.Error("identical engines snapshotted to different bytes")
	}
}

func TestEngineRestoreRejectsCorruptSnapshot(t *testing.T) {
	e := newEngine(t, Graduated())
	for _, s := range snapStream(500) {
		e.Apply(s.key, s.at, s.a)
	}
	w := statecodec.NewWriter()
	e.SnapshotInto(w)
	for cut := 0; cut < w.Len(); cut += 5 {
		fresh := newEngine(t, Graduated())
		if err := fresh.RestoreFrom(statecodec.NewReader(w.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if fresh.Len() != 0 {
			t.Fatalf("failed restore left %d clients", fresh.Len())
		}
	}
	// An out-of-range ladder rung is corrupt.
	w2 := statecodec.NewWriter()
	w2.Tag(0x4D01)
	for i := 0; i < 4; i++ {
		w2.Uint64(0)
	}
	w2.Uint32(1)
	w2.String("10.0.0.1")
	w2.Float64(1.0)
	w2.Uint8(9) // invalid rung
	w2.Int(0)
	w2.Time(snapBase)
	w2.Time(snapBase)
	if err := newEngine(t, Graduated()).RestoreFrom(statecodec.NewReader(w2.Bytes())); err == nil {
		t.Error("invalid ladder rung accepted")
	}
}
