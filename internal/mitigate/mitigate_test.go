package mitigate

import (
	"testing"
	"time"
)

var t0 = time.Date(2018, 3, 11, 9, 0, 0, 0, time.UTC)

func newEngine(t *testing.T, p Policy) *Engine {
	t.Helper()
	e, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// scraping is a sustained adjudicated-alert stream's per-request view.
var scraping = Assessment{Alerted: true, Confirmed: true, Score: 0.5}

func TestPolicyValidation(t *testing.T) {
	if _, err := New(Policy{}); err == nil {
		t.Error("zero policy accepted")
	}
	if _, err := New(Policy{Mode: Mode(99)}); err == nil {
		t.Error("invalid mode accepted")
	}
	bad := Graduated()
	bad.ChallengeThreshold = bad.BlockThreshold + 1
	if _, err := New(bad); err == nil {
		t.Error("non-ascending thresholds accepted")
	}
	bad = Graduated()
	bad.ScoreCap = bad.BlockThreshold / 2
	if _, err := New(bad); err == nil {
		t.Error("cap below block threshold accepted")
	}
	// Zero graduated fields take calibrated defaults.
	e := newEngine(t, Policy{Mode: ModeGraduated})
	if e.Policy().TarpitDelay != Graduated().TarpitDelay {
		t.Errorf("defaulted TarpitDelay = %v", e.Policy().TarpitDelay)
	}
}

func TestStaticModes(t *testing.T) {
	obs := newEngine(t, Observe())
	if d := obs.Apply("c", t0, scraping); d.Action != Allow || d.Tagged {
		t.Errorf("observe decision = %+v", d)
	}

	tag := newEngine(t, Tag())
	if d := tag.Apply("c", t0, scraping); d.Action != Allow || !d.Tagged {
		t.Errorf("tag decision = %+v", d)
	}
	if d := tag.Apply("c", t0, Assessment{}); d.Tagged {
		t.Errorf("clean request tagged: %+v", d)
	}

	blk := newEngine(t, StaticBlock(false))
	if d := blk.Apply("c", t0, Assessment{Alerted: true, Score: 0.3}); d.Action != Block {
		t.Errorf("static block let an alert through: %+v", d)
	}
	if d := blk.Apply("c", t0, Assessment{}); d.Action != Allow {
		t.Errorf("static block denied a clean request: %+v", d)
	}

	conf := newEngine(t, StaticBlock(true))
	if d := conf.Apply("c", t0, Assessment{Alerted: true, Score: 0.3}); d.Action != Block && !d.Tagged {
		t.Errorf("unconfirmed alert neither passed-tagged nor blocked: %+v", d)
	} else if d.Action == Block {
		t.Errorf("unconfirmed alert blocked under confirmed-only: %+v", d)
	}
	if d := conf.Apply("c", t0, scraping); d.Action != Block {
		t.Errorf("confirmed alert not blocked: %+v", d)
	}
}

// TestEscalationLadder drives a sustained scraper through the full ladder
// and checks it climbs one rung at a time.
func TestEscalationLadder(t *testing.T) {
	e := newEngine(t, Graduated())
	now := t0
	var seen []Action
	last := Action(255)
	for i := 0; i < 40; i++ {
		d := e.Apply("scraper", now, scraping)
		if d.Action != last {
			seen = append(seen, d.Action)
			last = d.Action
		}
		if d.Action == Block {
			break
		}
		now = now.Add(time.Second)
	}
	want := []Action{Allow, Tarpit, Challenge, Block}
	if len(seen) != len(want) {
		t.Fatalf("action progression = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("action progression = %v, want %v", seen, want)
		}
	}
}

// TestDecayBackToAllow verifies the TTL decay: a convicted client that
// goes quiet drifts back down the ladder.
func TestDecayBackToAllow(t *testing.T) {
	e := newEngine(t, Graduated())
	now := t0
	for i := 0; i < 20; i++ {
		e.Apply("c", now, scraping)
		now = now.Add(time.Second)
	}
	if d := e.Apply("c", now, scraping); d.Action != Block {
		t.Fatalf("sustained scraping not blocked: %+v", d)
	}
	// Several half-lives of silence: the score decays through every
	// hysteresis band, so the next (clean) request is allowed.
	now = now.Add(2 * time.Hour)
	if d := e.Apply("c", now, Assessment{Score: 0.05}); d.Action != Allow {
		t.Fatalf("decayed client still enforced: %+v", d)
	}
}

// TestHysteresisPreventsFlapping holds a client's score just under the
// tarpit threshold after escalation: without fresh suspicion it must stay
// tarpitted (not flap to Allow) until the score falls through the band.
func TestHysteresisPreventsFlapping(t *testing.T) {
	p := Graduated()
	e := newEngine(t, p)
	now := t0
	var d Decision
	for i := 0; i < 10 && d.Level < Tarpit; i++ {
		d = e.Apply("c", now, Assessment{Alerted: true, Score: 0.3})
		now = now.Add(time.Second)
	}
	if d.Level != Tarpit {
		t.Fatalf("never reached tarpit: %+v", d)
	}
	// Quiet clean requests: score decays slowly; while it sits inside the
	// hysteresis band the client stays at Tarpit.
	sawTarpitBelowThreshold := false
	for i := 0; i < 200; i++ {
		now = now.Add(30 * time.Second)
		d = e.Apply("c", now, Assessment{})
		if d.Action == Allow {
			break
		}
		if d.Score < p.TarpitThreshold && d.Score >= p.TarpitThreshold-p.Hysteresis {
			if d.Action != Tarpit {
				t.Fatalf("flapped to %v inside hysteresis band (score %g)", d.Action, d.Score)
			}
			sawTarpitBelowThreshold = true
		}
	}
	if !sawTarpitBelowThreshold {
		t.Error("score never traversed the hysteresis band; test proves nothing")
	}
	if d.Action != Allow {
		t.Fatalf("client never de-escalated: %+v", d)
	}
	if d.Score >= p.TarpitThreshold-p.Hysteresis {
		t.Errorf("de-escalated above the hysteresis floor: score %g", d.Score)
	}
}

// TestChallengePassedExemptsAndRelieves verifies the challenge flow: a
// solved challenge de-escalates to Tarpit, halves the score and skips the
// Challenge rung for the TTL window.
func TestChallengePassedExemptsAndRelieves(t *testing.T) {
	p := Graduated()
	e := newEngine(t, p)
	now := t0
	var d Decision
	for i := 0; i < 30 && d.Action != Challenge; i++ {
		d = e.Apply("c", now, Assessment{Alerted: true, Score: 0.4})
		now = now.Add(time.Second)
	}
	if d.Action != Challenge {
		t.Fatalf("never challenged: %+v", d)
	}
	before := d.Score
	e.ChallengePassed("c", now)

	d = e.Apply("c", now.Add(time.Second), Assessment{Alerted: true, Score: 0.4})
	if d.Action == Challenge || d.Action == Block {
		t.Fatalf("challenged again inside the pass window: %+v", d)
	}
	if d.Score >= before {
		t.Errorf("score not relieved by solved challenge: %g -> %g", before, d.Score)
	}

	// Keep scraping: the exemption clamps Challenge to Tarpit but does
	// not protect against the Block rung.
	now = now.Add(2 * time.Second)
	var blocked bool
	for i := 0; i < 40; i++ {
		d = e.Apply("c", now, scraping)
		if d.Action == Challenge {
			t.Fatalf("challenge served during exemption: %+v", d)
		}
		if d.Action == Block {
			blocked = true
			break
		}
		now = now.Add(time.Second)
	}
	if !blocked {
		t.Error("persistent scraper never blocked despite solved challenge")
	}
}

// TestChallengeBudgetEscalates verifies that a client which cannot solve
// the challenge is promoted to Block after the budget runs out, even when
// its score alone would hold at the Challenge rung.
func TestChallengeBudgetEscalates(t *testing.T) {
	p := Graduated()
	e := newEngine(t, p)
	now := t0
	var d Decision
	challenged := 0
	for i := 0; i < 200; i++ {
		// Mild sustained suspicion: enough to sit at Challenge, not enough
		// to cross BlockThreshold by score.
		d = e.Apply("c", now, Assessment{Alerted: true, Score: 0.12})
		if d.Action == Challenge {
			challenged++
		}
		if d.Action == Block {
			break
		}
		now = now.Add(10 * time.Second)
	}
	if d.Action != Block {
		t.Fatalf("challenge-ignoring client never blocked (challenged %d times)", challenged)
	}
	if challenged != p.ChallengeBudget {
		t.Errorf("served %d challenges before blocking, budget is %d", challenged, p.ChallengeBudget)
	}
}

// TestDeterminism replays one interleaved multi-client stream twice and
// requires identical decisions — the contract the simulated-clock
// experiments build on.
func TestDeterminism(t *testing.T) {
	stream := func(e *Engine) []Decision {
		var out []Decision
		now := t0
		for i := 0; i < 500; i++ {
			key := []string{"a", "b", "c"}[i%3]
			a := Assessment{
				Alerted:   i%3 == 0,
				Confirmed: i%6 == 0,
				Score:     float64(i%7) / 10,
			}
			out = append(out, e.Apply(key, now, a))
			if i%50 == 49 {
				e.ChallengePassed("b", now)
			}
			now = now.Add(time.Duration(1+i%5) * time.Second)
		}
		return out
	}
	d1 := stream(newEngine(t, Graduated()))
	d2 := stream(newEngine(t, Graduated()))
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, d1[i], d2[i])
		}
	}
}

func TestSweepEvictsIdleOnly(t *testing.T) {
	// A half-life much longer than the idle TTL, so a convicted client's
	// score survives the TTL and Sweep must keep its state.
	p := Graduated()
	p.ScoreHalfLife = 24 * time.Hour
	e := newEngine(t, p)
	now := t0
	for i := 0; i < 20; i++ {
		e.Apply("hot", now.Add(time.Duration(i)*time.Second), scraping)
	}
	e.Apply("idle", now, Assessment{Score: 0.1})
	if n := e.Len(); n != 2 {
		t.Fatalf("clients = %d", n)
	}
	// Before the idle TTL nothing goes.
	if n := e.Sweep(now.Add(p.IdleTTL / 2)); n != 0 {
		t.Errorf("early sweep evicted %d", n)
	}
	// Past the TTL only the low-score client goes: the convicted one's
	// score is still above the Allow band.
	if n := e.Sweep(now.Add(p.IdleTTL + time.Minute)); n != 1 {
		t.Errorf("idle sweep evicted %d, want 1", n)
	}
	if e.Len() != 1 {
		t.Fatalf("clients after idle sweep = %d", e.Len())
	}
	// Far in the future even the conviction has decayed away.
	if n := e.Sweep(now.Add(21 * 24 * time.Hour)); n != 1 {
		t.Errorf("late sweep evicted %d, want 1", n)
	}
	if e.Len() != 0 {
		t.Errorf("clients after sweeps = %d", e.Len())
	}
}

// TestBeaconCannotUnblock: a Block-level client is never served the
// interstitial, so a bare verify beacon from one must not de-escalate it
// — otherwise any kit that knows the two paths walks out of every block.
func TestBeaconCannotUnblock(t *testing.T) {
	e := newEngine(t, Graduated())
	now := t0
	var d Decision
	for i := 0; i < 30 && d.Action != Block; i++ {
		d = e.Apply("bot", now, scraping)
		now = now.Add(time.Second)
	}
	if d.Action != Block {
		t.Fatal("never blocked")
	}
	e.ChallengePassed("bot", now)
	if d = e.Apply("bot", now.Add(time.Second), scraping); d.Action != Block {
		t.Fatalf("beacon de-escalated a blocked client: %+v", d)
	}
}

// TestBeaconReliefRateLimited: inside an open pass window repeat beacons
// are no-ops, so score-halving cannot be farmed faster than once per
// ChallengeTTL.
func TestBeaconReliefRateLimited(t *testing.T) {
	e := newEngine(t, Graduated())
	now := t0
	for i := 0; i < 10; i++ {
		e.Apply("c", now, Assessment{Alerted: true, Score: 0.3})
		now = now.Add(time.Second)
	}
	e.ChallengePassed("c", now)
	after := e.Apply("c", now.Add(time.Second), Assessment{}).Score
	e.ChallengePassed("c", now.Add(2*time.Second)) // inside the window: no-op
	again := e.Apply("c", now.Add(3*time.Second), Assessment{}).Score
	if again < after/2 {
		t.Errorf("repeat beacon farmed relief: score %g -> %g", after, again)
	}
}

// TestSweepEnforcementNeutral: an idle client that Sweep's predicate
// would evict must behave identically whether it was actually evicted or
// survived — same decisions on the same subsequent stream.
func TestSweepEnforcementNeutral(t *testing.T) {
	p := Graduated()
	escalate := func(e *Engine) {
		now := t0
		for i := 0; i < 6; i++ { // up to Tarpit level, then idle out
			e.Apply("c", now, Assessment{Alerted: true, Score: 0.3})
			now = now.Add(time.Second)
		}
	}
	replay := func(e *Engine) []Decision {
		var out []Decision
		now := t0.Add(p.IdleTTL + time.Hour) // long past the idle TTL
		for i := 0; i < 10; i++ {
			out = append(out, e.Apply("c", now, Assessment{Alerted: true, Score: 0.6}))
			now = now.Add(time.Second)
		}
		return out
	}
	swept := newEngine(t, p)
	escalate(swept)
	if n := swept.Sweep(t0.Add(p.IdleTTL + time.Minute)); n != 1 {
		t.Fatalf("sweep evicted %d, want 1", n)
	}
	kept := newEngine(t, p)
	escalate(kept)

	a, b := replay(swept), replay(kept)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverges after eviction: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestZeroBenignWeightAndHysteresisHonoured(t *testing.T) {
	p := Graduated()
	p.BenignWeight = 0
	p.Hysteresis = 0
	e := newEngine(t, p)
	if got := e.Policy(); got.BenignWeight != 0 || got.Hysteresis != 0 {
		t.Errorf("explicit zeros overridden: %+v", got)
	}
	// Benign traffic must now accumulate nothing.
	now := t0
	for i := 0; i < 50; i++ {
		if d := e.Apply("c", now, Assessment{Score: 0.9}); d.Score != 0 {
			t.Fatalf("benign request accumulated score %g with BenignWeight 0", d.Score)
		}
		now = now.Add(time.Second)
	}
}

func TestCountsAndReset(t *testing.T) {
	e := newEngine(t, StaticBlock(false))
	e.Apply("c", t0, scraping)
	e.Apply("c", t0, Assessment{})
	c := e.Counts()
	if c.Blocked != 1 || c.Allowed != 1 || c.Total() != 2 {
		t.Errorf("counts = %+v", c)
	}
	e.Reset()
	if e.Counts().Total() != 0 || e.Len() != 0 {
		t.Error("reset left state behind")
	}
}

func TestActionAndModeNames(t *testing.T) {
	if Allow.String() != "allow" || Block.String() != "block" {
		t.Error("action names wrong")
	}
	if Action(9).String() == "" || Mode(9).String() == "" {
		t.Error("unknown values render empty")
	}
	if ModeGraduated.String() != "graduated" {
		t.Error("mode name wrong")
	}
}
