package mitigate

import (
	"fmt"
	"testing"
	"time"
)

// EvictBefore with a cutoff at least IdleTTL behind stream time must be
// enforcement-neutral: the action sequence of a stream replayed with
// periodic sweeps is identical to the un-swept reference. The stream
// interleaves a persistent scraper, a bursty client that goes quiet past
// the window, and fresh one-shot clients.
func TestEvictBeforeIsEnforcementNeutral(t *testing.T) {
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	type req struct {
		key string
		at  time.Time
		a   Assessment
	}
	var stream []req
	for i := 0; i < 400; i++ {
		at := base.Add(time.Duration(i) * time.Minute)
		stream = append(stream, req{"scraper", at, Assessment{Alerted: true, Score: 0.9}})
		if i < 40 {
			stream = append(stream, req{"burst", at.Add(time.Second), Assessment{Alerted: true, Score: 0.6}})
		}
		if i%7 == 0 {
			stream = append(stream, req{fmt.Sprintf("oneshot-%d", i), at.Add(2 * time.Second),
				Assessment{Score: 0.1}})
		}
		// The burst client returns long after its state could only have
		// decayed to zero — the case eviction must not distort.
		if i == 399 {
			stream = append(stream, req{"burst", at.Add(3 * time.Second), Assessment{Score: 0.2}})
		}
	}

	run := func(window time.Duration) ([]Action, int) {
		e, err := New(Graduated())
		if err != nil {
			t.Fatal(err)
		}
		var actions []Action
		evicted := 0
		var lastSweep time.Time
		for _, r := range stream {
			if window > 0 && r.at.Sub(lastSweep) >= 10*time.Minute {
				evicted += e.EvictBefore(r.at.Add(-window))
				lastSweep = r.at
			}
			actions = append(actions, e.Apply(r.key, r.at, r.a).Action)
		}
		return actions, evicted
	}

	ref, _ := run(0)
	// Window = IdleTTL (2h), the tightest neutral setting.
	swept, evicted := run(Graduated().IdleTTL)
	if evicted == 0 {
		t.Fatal("sweeps evicted nothing; the test is vacuous")
	}
	for i := range ref {
		if ref[i] != swept[i] {
			t.Fatalf("action %d: %v with sweeps, %v without", i, swept[i], ref[i])
		}
	}
}

func TestEvictBeforeBoundsState(t *testing.T) {
	e, err := New(Graduated())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	window := Graduated().IdleTTL
	peak := 0
	for i := 0; i < 5000; i++ {
		at := base.Add(time.Duration(i) * time.Minute)
		e.Apply(fmt.Sprintf("rotating-%d", i), at, Assessment{Score: 0.05})
		if i%50 == 0 {
			e.EvictBefore(at.Add(-window))
		}
		if e.Len() > peak {
			peak = e.Len()
		}
	}
	// One client per minute with a 2h window: O(window/minute) live, with
	// slack for the 50-minute sweep cadence.
	if peak > 200 {
		t.Errorf("peak client state %d; eviction is not bounding memory", peak)
	}
}

func TestEvictBeforeKeepsHotAndPassedClients(t *testing.T) {
	e, err := New(Graduated())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	// Drive a client to a high score, then sweep with a cutoff after its
	// last request: the score has not decayed into the Allow band, so it
	// must survive.
	for i := 0; i < 20; i++ {
		e.Apply("hot", base.Add(time.Duration(i)*time.Second), Assessment{Alerted: true, Score: 1})
	}
	if n := e.EvictBefore(base.Add(time.Minute)); n != 0 {
		t.Errorf("hot client evicted (%d)", n)
	}
	if e.Len() != 1 {
		t.Errorf("Len = %d, want 1", e.Len())
	}

	// A client inside a challenge-pass window is kept even at zero score.
	e.Apply("passed", base, Assessment{Score: 0})
	e.ChallengePassed("passed", base)
	if n := e.EvictBefore(base.Add(10 * time.Minute)); n != 0 {
		t.Errorf("pass-window client evicted (%d)", n)
	}

	// Non-graduated engines hold no ladder state to evict.
	obs, err := New(Observe())
	if err != nil {
		t.Fatal(err)
	}
	obs.Apply("x", base, Assessment{})
	if n := obs.EvictBefore(base.Add(time.Hour)); n != 0 {
		t.Errorf("observe engine evicted %d", n)
	}
}
