package mitigate

import (
	"testing"
	"time"
)

func graduatedEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Graduated())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// escalate drives the client with alerted full-suspicion requests until
// its rung stops changing, returning the final level.
func escalate(e *Engine, key string, start time.Time, n int) Action {
	var level Action
	for i := 0; i < n; i++ {
		d := e.Apply(key, start.Add(time.Duration(i)*time.Second), Assessment{
			Alerted: true, Confirmed: true, Score: 1,
		})
		level = d.Level
	}
	return level
}

func TestDigestsRoundTripThroughMerge(t *testing.T) {
	src := graduatedEngine(t)
	dst := graduatedEngine(t)
	base := time.Date(2018, 3, 11, 6, 0, 0, 0, time.UTC)

	escalate(src, "10.0.0.1", base, 12)
	escalate(src, "10.0.0.2", base, 3)
	src.ChallengePassed("10.0.0.2", base.Add(time.Hour))

	applied := 0
	src.DigestsSince(time.Time{}, func(d ClientDigest) {
		if dst.MergeDigest(d) {
			applied++
		}
	})
	if applied != 2 {
		t.Fatalf("applied %d digests, want 2", applied)
	}
	for _, key := range []string{"10.0.0.1", "10.0.0.2"} {
		if got, want := dst.Level(key), src.Level(key); got != want {
			t.Errorf("replica level %s = %v, want %v", key, got, want)
		}
	}

	// Replaying the same digests is a no-op: merge is idempotent.
	src.DigestsSince(time.Time{}, func(d ClientDigest) {
		if dst.MergeDigest(d) {
			t.Errorf("duplicate digest for %s applied", d.Key)
		}
	})
}

func TestDigestsSinceFiltersByActivity(t *testing.T) {
	e := graduatedEngine(t)
	base := time.Date(2018, 3, 11, 6, 0, 0, 0, time.UTC)
	escalate(e, "old", base, 2)
	escalate(e, "new", base.Add(time.Hour), 2)

	var keys []string
	e.DigestsSince(base.Add(30*time.Minute), func(d ClientDigest) {
		keys = append(keys, d.Key)
	})
	if len(keys) != 1 || keys[0] != "new" {
		t.Fatalf("DigestsSince = %v, want [new]", keys)
	}
	// Zero since is the full-state form.
	n := 0
	e.DigestsSince(time.Time{}, func(ClientDigest) { n++ })
	if n != 2 {
		t.Fatalf("full DigestsSince streamed %d clients, want 2", n)
	}
}

func TestMergeDigestLastWriterWins(t *testing.T) {
	e := graduatedEngine(t)
	base := time.Date(2018, 3, 11, 6, 0, 0, 0, time.UTC)
	newer := ClientDigest{Key: "c", Score: 3, Level: Block, LastSeen: base.Add(time.Minute)}
	older := ClientDigest{Key: "c", Score: 1, Level: Tarpit, LastSeen: base}

	if !e.MergeDigest(newer) {
		t.Fatal("fresh digest not applied")
	}
	if e.MergeDigest(older) {
		t.Fatal("stale digest applied over newer local state")
	}
	if got := e.Level("c"); got != Block {
		t.Fatalf("level = %v after stale merge, want Block", got)
	}
	// Same-timestamp re-delivery is also a no-op (idempotence).
	if e.MergeDigest(newer) {
		t.Fatal("identical digest re-applied")
	}
	// Corrupt rung never lands.
	if e.MergeDigest(ClientDigest{Key: "x", Level: Block + 1, LastSeen: base}) {
		t.Fatal("invalid rung applied")
	}
}

func TestEscalationFrozenHoldsRungAndResumesOnUnfreeze(t *testing.T) {
	e := graduatedEngine(t)
	base := time.Date(2018, 3, 11, 6, 0, 0, 0, time.UTC)

	// Climb to Tarpit (one rung per request), then freeze: further
	// hostile traffic must not raise the rung, however long it runs.
	escalate(e, "bot", base, 1)
	if got := e.Level("bot"); got != Tarpit {
		t.Fatalf("pre-freeze level = %v, want Tarpit", got)
	}
	e.SetEscalationFrozen(true)
	if !e.EscalationFrozen() {
		t.Fatal("EscalationFrozen not reported")
	}
	for i := 0; i < 40; i++ {
		d := e.Apply("bot", base.Add(time.Duration(1+i)*time.Second), Assessment{
			Alerted: true, Confirmed: true, Score: 1,
		})
		if d.Level > Tarpit {
			t.Fatalf("frozen engine escalated to %v", d.Level)
		}
	}

	// Unfreeze: the score is saturated, so climbing resumes immediately,
	// one rung per request.
	e.SetEscalationFrozen(false)
	d := e.Apply("bot", base.Add(42*time.Second), Assessment{Alerted: true, Confirmed: true, Score: 1})
	if d.Level != Challenge {
		t.Fatalf("post-unfreeze level = %v, want Challenge", d.Level)
	}
}

func TestEscalationFrozenSuppressesChallengeBudgetBlock(t *testing.T) {
	e := graduatedEngine(t)
	base := time.Date(2018, 3, 11, 6, 0, 0, 0, time.UTC)

	// Reach the Challenge rung, then freeze and burn far past the
	// challenge budget: the streak must not convict to Block.
	escalate(e, "bot", base, 2)
	if got := e.Level("bot"); got != Challenge {
		t.Fatalf("setup level = %v, want Challenge", got)
	}
	e.SetEscalationFrozen(true)
	budget := e.Policy().ChallengeBudget
	for i := 0; i < budget*3; i++ {
		d := e.Apply("bot", base.Add(time.Duration(2+i)*time.Second), Assessment{
			Alerted: true, Confirmed: true, Score: 1,
		})
		if d.Action == Block || d.Level == Block {
			t.Fatalf("frozen engine blocked via challenge budget at request %d", i)
		}
	}
}
