// Package mitigate turns adjudicated detection verdicts into graduated
// enforcement actions. It is the response plane the DSN 2018 paper stops
// short of: the paper's two tools *detect* malicious scraping, while the
// products they model exist to *respond*. The engine folds the per-request
// decision stream into per-client enforcement state and emits one of four
// actions, ordered by severity:
//
//	Allow → Tarpit (delay the response) → Challenge (require the
//	JavaScript challenge) → Block (refuse with 403)
//
// # The escalation ladder
//
// Every request contributes its adjudicated suspicion to a per-client
// score that decays exponentially with a configurable half-life, so a
// client's standing is a leaky integral of recent behaviour rather than a
// one-shot verdict. Rising score climbs the ladder one rung per request —
// a client is never hard-blocked without first having been slowed and
// challenged — and falling score descends it with hysteresis: the score
// must drop Policy.Hysteresis below a rung's threshold before the client
// de-escalates, which keeps borderline clients from flapping between
// actions. A client that goes quiet decays back toward Allow on its own;
// one that ignores Policy.ChallengeBudget consecutive challenges is
// escalated to Block without waiting for its score, and a solved
// challenge (ChallengePassed) earns a pass window during which the
// Challenge rung is skipped and the score is halved.
//
// # Determinism contract
//
// The engine never reads the wall clock and never draws randomness: every
// transition is a pure function of the policy and the sequence of
// (key, now, Assessment) triples handed to Apply and ChallengePassed, with
// caller-supplied timestamps. Feeding the same decision stream (as the
// simulated-clock workloads do) therefore produces a byte-identical action
// stream, which is what makes the containment experiments in
// internal/experiments reproducible from their seed. An Engine is
// single-threaded by design — httpguard gives each of its key-partitioned
// shards a private engine, mirroring how detector state is sharded.
package mitigate

import (
	"fmt"
	"math"
	"time"
)

// Action is one rung of the enforcement ladder, ordered by severity.
type Action uint8

const (
	// Allow serves the request untouched.
	Allow Action = iota
	// Tarpit serves the request after Decision.Delay, soaking the
	// client's request budget without revealing enforcement.
	Tarpit
	// Challenge withholds content and serves the JavaScript challenge
	// interstitial instead; solving it (ChallengePassed) de-escalates.
	Challenge
	// Block refuses the request outright (403).
	Block
)

var actionNames = [...]string{"allow", "tarpit", "challenge", "block"}

// String returns the action's stable lower-case name.
func (a Action) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// Assessment is the adjudicated detection outcome for one request — the
// bridge between the detector/ensemble plane and the response plane. The
// caller chooses the adjudication (1-out-of-2, 2-out-of-2, weighted
// fusion); the engine only consumes its result.
type Assessment struct {
	// Alerted is the adjudicated alert (e.g. K-out-of-N over detectors).
	Alerted bool
	// Confirmed reports unanimous agreement (the paper's
	// minimum-false-alarm scheme); static block policies can require it.
	Confirmed bool
	// Score is the fused suspicion in [0, 1]; graduated policies
	// integrate it over time.
	Score float64
}

// Decision is what the engine tells the enforcement point to do with one
// request.
type Decision struct {
	// Action is the enforcement outcome.
	Action Action
	// Delay is how long to stall the response; set only for Tarpit.
	Delay time.Duration
	// Tagged reports that the request should carry the verdict header so
	// the application can degrade (serve cached prices, hide inventory).
	Tagged bool
	// Level is the client's steady-state ladder rung after this request.
	// It can differ from Action: a challenge-exempt client at the
	// Challenge rung is tarpitted instead.
	Level Action
	// Score is the client's decayed suspicion after this request.
	Score float64
}

// Mode selects the enforcement style a Policy implements.
type Mode uint8

const (
	// ModeObserve never interferes: every decision is a plain Allow.
	ModeObserve Mode = iota + 1
	// ModeTag allows everything but marks adjudicated alerts Tagged.
	ModeTag
	// ModeStaticBlock is the classic binary switch: Block on alert
	// (or on confirmation only), Allow otherwise. Stateless.
	ModeStaticBlock
	// ModeGraduated is the score-driven escalation ladder.
	ModeGraduated
)

var modeNames = map[Mode]string{
	ModeObserve:     "observe",
	ModeTag:         "tag",
	ModeStaticBlock: "block",
	ModeGraduated:   "graduated",
}

// String returns the mode's stable name.
func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Policy parameterises the engine. Construct with one of the policy
// helpers (Observe, Tag, StaticBlock, Graduated) and override fields as
// needed; the zero Policy is invalid.
type Policy struct {
	// Mode selects the enforcement style.
	Mode Mode
	// BlockOnConfirmedOnly, with ModeStaticBlock, blocks only unanimously
	// confirmed requests and tags single-tool alerts — the serial
	// confirmation deployment the paper sketches.
	BlockOnConfirmedOnly bool

	// Graduated-ladder parameters (ignored by the static modes).

	// ScoreHalfLife is the decay half-life of the per-client suspicion
	// integral. Default 10 minutes.
	ScoreHalfLife time.Duration
	// BenignWeight scales the score contribution of non-alerted requests,
	// so sub-threshold suspicion still accumulates, just slowly. Zero is
	// honoured (benign requests contribute nothing); the Graduated
	// constructor sets 0.25.
	BenignWeight float64
	// TarpitThreshold is the score at which responses start being
	// delayed. Default 0.8.
	TarpitThreshold float64
	// ChallengeThreshold is the score at which content is withheld behind
	// the JavaScript challenge. Default 1.6.
	ChallengeThreshold float64
	// BlockThreshold is the score at which requests are refused.
	// Default 2.6.
	BlockThreshold float64
	// ScoreCap bounds the suspicion integral so decay back to Allow takes
	// bounded time. Default 4.
	ScoreCap float64
	// Hysteresis is how far the score must fall below a rung's threshold
	// before the client de-escalates. Zero is honoured (no band); the
	// Graduated constructor sets 0.25.
	Hysteresis float64
	// TarpitDelay is the per-request stall at the Tarpit rung.
	// Default 2s.
	TarpitDelay time.Duration
	// ChallengeBudget is how many challenged requests a client may leave
	// unsolved before being escalated straight to Block. Default 8.
	ChallengeBudget int
	// ChallengeTTL is how long a solved challenge exempts the client from
	// re-challenging. Default 30 minutes.
	ChallengeTTL time.Duration
	// IdleTTL is how long a client's state survives without traffic
	// before Sweep may evict it. Default 2 hours.
	IdleTTL time.Duration
}

// Observe returns the non-interfering policy.
func Observe() Policy { return Policy{Mode: ModeObserve} }

// Tag returns the tag-only policy: alerts are marked, nothing is denied.
func Tag() Policy { return Policy{Mode: ModeTag} }

// StaticBlock returns the binary block policy the guard historically
// implemented: 403 on adjudicated alert, or on unanimous confirmation
// only when confirmedOnly is set (single-tool alerts are then tagged).
func StaticBlock(confirmedOnly bool) Policy {
	return Policy{Mode: ModeStaticBlock, BlockOnConfirmedOnly: confirmedOnly}
}

// Graduated returns the calibrated escalation-ladder policy.
func Graduated() Policy {
	return Policy{
		Mode:               ModeGraduated,
		ScoreHalfLife:      10 * time.Minute,
		BenignWeight:       0.25,
		TarpitThreshold:    0.8,
		ChallengeThreshold: 1.6,
		BlockThreshold:     2.6,
		ScoreCap:           4,
		Hysteresis:         0.25,
		TarpitDelay:        2 * time.Second,
		ChallengeBudget:    8,
		ChallengeTTL:       30 * time.Minute,
		IdleTTL:            2 * time.Hour,
	}
}

// UsesChallenge reports whether the policy can emit Challenge actions —
// enforcement points only need to host the challenge flow when it can.
func (p Policy) UsesChallenge() bool { return p.Mode == ModeGraduated }

func (p *Policy) validate() error {
	switch p.Mode {
	case ModeObserve, ModeTag, ModeStaticBlock:
		return nil
	case ModeGraduated:
	default:
		return fmt.Errorf("mitigate: invalid mode %d", uint8(p.Mode))
	}
	d := Graduated()
	if p.ScoreHalfLife <= 0 {
		p.ScoreHalfLife = d.ScoreHalfLife
	}
	if p.BenignWeight < 0 || p.BenignWeight > 1 {
		return fmt.Errorf("mitigate: BenignWeight must be in [0,1], got %g", p.BenignWeight)
	}
	if p.TarpitThreshold <= 0 {
		p.TarpitThreshold = d.TarpitThreshold
	}
	if p.ChallengeThreshold <= 0 {
		p.ChallengeThreshold = d.ChallengeThreshold
	}
	if p.BlockThreshold <= 0 {
		p.BlockThreshold = d.BlockThreshold
	}
	if !(p.TarpitThreshold < p.ChallengeThreshold && p.ChallengeThreshold < p.BlockThreshold) {
		return fmt.Errorf("mitigate: thresholds must ascend (tarpit %g < challenge %g < block %g)",
			p.TarpitThreshold, p.ChallengeThreshold, p.BlockThreshold)
	}
	if p.ScoreCap <= 0 {
		p.ScoreCap = d.ScoreCap
	}
	if p.ScoreCap < p.BlockThreshold {
		return fmt.Errorf("mitigate: ScoreCap %g below BlockThreshold %g", p.ScoreCap, p.BlockThreshold)
	}
	if p.Hysteresis < 0 {
		return fmt.Errorf("mitigate: Hysteresis must be non-negative, got %g", p.Hysteresis)
	}
	if p.TarpitDelay <= 0 {
		p.TarpitDelay = d.TarpitDelay
	}
	if p.ChallengeBudget <= 0 {
		p.ChallengeBudget = d.ChallengeBudget
	}
	if p.ChallengeTTL <= 0 {
		p.ChallengeTTL = d.ChallengeTTL
	}
	if p.IdleTTL <= 0 {
		p.IdleTTL = d.IdleTTL
	}
	return nil
}

// threshold returns the score that admits a ladder rung.
func (p *Policy) threshold(level Action) float64 {
	switch level {
	case Tarpit:
		return p.TarpitThreshold
	case Challenge:
		return p.ChallengeThreshold
	case Block:
		return p.BlockThreshold
	default:
		return 0
	}
}

// clientState is one client's position on the ladder.
type clientState struct {
	score      float64
	level      Action
	challenged int       // consecutive unanswered challenged requests
	passUntil  time.Time // solved-challenge exemption window
	lastSeen   time.Time
}

// ActionCounts tallies emitted actions by kind.
type ActionCounts struct {
	Allowed, Tarpitted, Challenged, Blocked uint64
}

// Add folds another tally into this one.
func (c *ActionCounts) Add(o ActionCounts) {
	c.Allowed += o.Allowed
	c.Tarpitted += o.Tarpitted
	c.Challenged += o.Challenged
	c.Blocked += o.Blocked
}

// Total returns the number of recorded decisions.
func (c ActionCounts) Total() uint64 {
	return c.Allowed + c.Tarpitted + c.Challenged + c.Blocked
}

// Count records one decision.
func (c *ActionCounts) Count(a Action) {
	switch a {
	case Tarpit:
		c.Tarpitted++
	case Challenge:
		c.Challenged++
	case Block:
		c.Blocked++
	default:
		c.Allowed++
	}
}

// Engine folds the decision stream into per-client enforcement state.
// Not safe for concurrent use: give each traffic shard its own engine
// (clients hash to exactly one shard, so sharded state equals global
// state, the same argument the detection pipeline makes).
type Engine struct {
	policy  Policy
	clients map[string]*clientState
	counts  ActionCounts
	// frozen suppresses rung climbs (see SetEscalationFrozen): the
	// cluster's fail-closed degraded mode for a node deciding on state it
	// knows is stale.
	frozen bool
}

// New validates the policy and builds an engine.
func New(policy Policy) (*Engine, error) {
	if err := policy.validate(); err != nil {
		return nil, err
	}
	return &Engine{
		policy:  policy,
		clients: make(map[string]*clientState),
	}, nil
}

// Policy returns the effective (defaulted) policy.
func (e *Engine) Policy() Policy { return e.policy }

// Counts returns the lifetime action tally.
func (e *Engine) Counts() ActionCounts { return e.counts }

// Len reports how many clients currently hold enforcement state.
func (e *Engine) Len() int { return len(e.clients) }

// Level returns the client's current ladder rung without touching its
// state (Allow for unknown clients). The provenance plane reads it just
// before Apply to record rung-before → rung-after transitions; note it
// reports the rung as of the client's last Apply — decay since then is
// only materialised by the next Apply.
func (e *Engine) Level(key string) Action {
	if st := e.clients[key]; st != nil {
		return st.level
	}
	return Allow
}

// Apply folds one adjudicated request into the client's enforcement state
// and returns the action to take. now must be non-decreasing per client
// (the stream order detectors already require).
func (e *Engine) Apply(key string, now time.Time, a Assessment) Decision {
	d := e.apply(key, now, a)
	e.counts.Count(d.Action)
	return d
}

func (e *Engine) apply(key string, now time.Time, a Assessment) Decision {
	switch e.policy.Mode {
	case ModeObserve:
		return Decision{Action: Allow}
	case ModeTag:
		return Decision{Action: Allow, Tagged: a.Alerted}
	case ModeStaticBlock:
		if a.Confirmed || (!e.policy.BlockOnConfirmedOnly && a.Alerted) {
			return Decision{Action: Block, Level: Block, Tagged: true}
		}
		return Decision{Action: Allow, Tagged: a.Alerted}
	}

	p := &e.policy
	st := e.clients[key]
	if st == nil {
		st = &clientState{lastSeen: now}
		e.clients[key] = st
	}

	// Leaky integral: decay since the client's last request, then fold in
	// this request's suspicion.
	e.touch(st, now)
	contribution := a.Score
	if !a.Alerted {
		contribution *= p.BenignWeight
	}
	st.score += contribution
	if st.score > p.ScoreCap {
		st.score = p.ScoreCap
	}

	// Climb one rung per request; descend only once the score has fallen
	// Hysteresis below the current rung's admission threshold.
	raw := Allow
	for _, l := range [...]Action{Tarpit, Challenge, Block} {
		if st.score >= p.threshold(l) {
			raw = l
		}
	}
	if raw > st.level {
		if !e.frozen {
			st.level++
		}
	} else {
		for st.level > Allow && st.score < p.threshold(st.level)-p.Hysteresis {
			st.level--
		}
	}
	if st.level < Challenge {
		st.challenged = 0
	}

	exempt := st.passUntil.After(now)
	action := st.level
	if st.level == Challenge {
		if exempt {
			// A solved challenge skips the Challenge rung: the client
			// proved a JavaScript runtime, so keep it merely slowed.
			action = Tarpit
		} else {
			st.challenged++
			if st.challenged > p.ChallengeBudget && !e.frozen {
				// Ignoring the challenge is itself a conviction.
				st.level = Block
				if st.score < p.BlockThreshold {
					st.score = p.BlockThreshold
				}
				action = Block
			}
		}
	}

	d := Decision{Action: action, Tagged: a.Alerted, Level: st.level, Score: st.score}
	if action == Tarpit {
		d.Delay = p.TarpitDelay
	}
	return d
}

// touch decays the client's suspicion to now, and forgets the ladder
// position of a client that has sat idle past IdleTTL with its decayed
// score down in the Allow band — the same predicate under which Sweep
// may evict, which is what makes eviction enforcement-neutral: a swept
// client and an idle survivor are indistinguishable from their next
// request onward.
func (e *Engine) touch(st *clientState, now time.Time) {
	p := &e.policy
	dt := now.Sub(st.lastSeen)
	if dt > 0 {
		st.score *= math.Exp2(-float64(dt) / float64(p.ScoreHalfLife))
	}
	if dt >= p.IdleTTL && st.score < p.TarpitThreshold-p.Hysteresis {
		st.score = 0
		st.level = Allow
		st.challenged = 0
	}
	st.lastSeen = now
}

// ChallengePassed records a solved JavaScript challenge for the client:
// it opens the exemption window, clears the unanswered-challenge streak,
// halves the suspicion score (a working JS runtime is evidence against
// the crudest kits) and de-escalates a Challenge-level client to Tarpit.
//
// Two guards keep the always-reachable beacon from becoming an evasion
// primitive: a Block-level client is never served the interstitial, so a
// bare beacon from one proves nothing and is ignored; and inside an
// already-open pass window a repeat beacon is a no-op, so relief is
// rate-limited to once per ChallengeTTL.
func (e *Engine) ChallengePassed(key string, now time.Time) {
	if e.policy.Mode != ModeGraduated {
		return
	}
	st := e.clients[key]
	if st == nil {
		st = &clientState{lastSeen: now}
		e.clients[key] = st
	}
	e.touch(st, now)
	if st.level == Block || st.passUntil.After(now) {
		return
	}
	st.passUntil = now.Add(e.policy.ChallengeTTL)
	st.challenged = 0
	st.score /= 2
	if st.level == Challenge {
		st.level = Tarpit
	}
}

// Sweep evicts clients idle for longer than Policy.IdleTTL whose decayed
// score has fallen back into the Allow band, bounding state growth. It
// returns the number of clients evicted. Enforcement is unaffected:
// touch resets an idle survivor matching this predicate to the same zero
// state a swept client restarts from, so sweeping earlier or later (or
// on a differently sharded guard) never changes an action sequence.
func (e *Engine) Sweep(now time.Time) int {
	if e.policy.Mode != ModeGraduated {
		return 0
	}
	p := &e.policy
	evicted := 0
	for key, st := range e.clients {
		if now.Sub(st.lastSeen) < p.IdleTTL {
			continue
		}
		score := st.score * math.Exp2(-float64(now.Sub(st.lastSeen))/float64(p.ScoreHalfLife))
		if score < p.TarpitThreshold-p.Hysteresis && !st.passUntil.After(now) {
			delete(e.clients, key)
			evicted++
		}
	}
	return evicted
}

// EvictBefore evicts clients last seen before cutoff whose suspicion,
// decayed to cutoff, has fallen into the Allow band with no live
// challenge pass — the sweeper-facing form of Sweep, taking the state-age
// cutoff directly instead of deriving it from "now" and IdleTTL. It
// returns the number evicted.
//
// Enforcement neutrality holds whenever the caller keeps cutoff at least
// IdleTTL behind stream time (the windowed sweeper's contract): a
// surviving client's next request then arrives ≥ IdleTTL after lastSeen
// with its score decayed below the de-escalation band, which is exactly
// the predicate under which touch resets an un-evicted client to the same
// zero state a swept client restarts from. Scoring the decay at cutoff
// rather than at stream time is conservative — a borderline client is
// kept one more window, never dropped early.
func (e *Engine) EvictBefore(cutoff time.Time) int {
	if e.policy.Mode != ModeGraduated {
		return 0
	}
	p := &e.policy
	evicted := 0
	for key, st := range e.clients {
		if !st.lastSeen.Before(cutoff) {
			continue
		}
		score := st.score * math.Exp2(-float64(cutoff.Sub(st.lastSeen))/float64(p.ScoreHalfLife))
		if score < p.TarpitThreshold-p.Hysteresis && !st.passUntil.After(cutoff) {
			delete(e.clients, key)
			evicted++
		}
	}
	return evicted
}

// Reset clears all per-client state and counters.
func (e *Engine) Reset() {
	clear(e.clients)
	e.counts = ActionCounts{}
}
