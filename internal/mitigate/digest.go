package mitigate

import "time"

// Cluster replication support. A ClientDigest is one client's complete
// ladder position — the same fields the snapshot codec serialises — in a
// form a peer engine can merge. Digests flow between cluster nodes as
// periodic state deltas: the owner of a client streams its updates, and
// replicas fold them in with last-writer-wins semantics keyed on
// LastSeen, which is monotone per client (Apply requires non-decreasing
// timestamps), so replay, duplication and reordering of deltas all
// converge to the owner's state. That idempotence is what lets the
// cluster transport retry and re-send whole windows after a partition
// heals without a reconciliation protocol.

// ClientDigest is one client's ladder position in replicable form.
type ClientDigest struct {
	// Key is the client key (the derived remote address).
	Key string
	// Score is the decayed suspicion integral as of LastSeen.
	Score float64
	// Level is the ladder rung.
	Level Action
	// Challenged is the consecutive unanswered-challenge streak.
	Challenged int
	// PassUntil is the solved-challenge exemption window end.
	PassUntil time.Time
	// LastSeen is the client's last activity — the merge version.
	LastSeen time.Time
}

// DigestsSince streams the digests of every client whose state changed at
// or after since (LastSeen >= since, or a pass window opened that is
// still in the future of since). A zero since streams every client —
// the full-state form a joining or healing peer reconciles from.
func (e *Engine) DigestsSince(since time.Time, fn func(ClientDigest)) {
	for k, st := range e.clients {
		if st.lastSeen.Before(since) && !st.passUntil.After(since) {
			continue
		}
		fn(ClientDigest{
			Key:        k,
			Score:      st.score,
			Level:      st.level,
			Challenged: st.challenged,
			PassUntil:  st.passUntil,
			LastSeen:   st.lastSeen,
		})
	}
}

// MergeDigest folds a replicated digest into the engine with
// last-writer-wins semantics: the digest is applied only when it is
// strictly newer (by LastSeen) than the local state, or the client is
// unknown locally. It reports whether the digest was applied; a stale
// digest is a no-op, which makes merging commutative and idempotent
// across any delivery order. Invalid rungs are rejected.
func (e *Engine) MergeDigest(d ClientDigest) bool {
	if d.Level > Block || d.Key == "" {
		return false
	}
	st := e.clients[d.Key]
	if st == nil {
		e.clients[d.Key] = &clientState{
			score:      d.Score,
			level:      d.Level,
			challenged: d.Challenged,
			passUntil:  d.PassUntil,
			lastSeen:   d.LastSeen,
		}
		return true
	}
	if !d.LastSeen.After(st.lastSeen) {
		return false
	}
	st.score = d.Score
	st.level = d.Level
	st.challenged = d.Challenged
	st.passUntil = d.PassUntil
	st.lastSeen = d.LastSeen
	return true
}

// SetEscalationFrozen switches the ladder into (or out of) frozen mode:
// while frozen, clients never climb to a higher rung and the
// unanswered-challenge streak never escalates to Block. Scores keep
// integrating and decaying, and de-escalation still runs, so the engine's
// view of each client stays current — on unfreeze the very next request
// resumes normal climbing from an up-to-date score. A cluster node that
// loses its quorum under the fail-closed degraded policy freezes its
// engines: escalation decisions on state known to be stale are the
// failure mode replication exists to prevent.
func (e *Engine) SetEscalationFrozen(frozen bool) { e.frozen = frozen }

// EscalationFrozen reports whether the ladder is frozen.
func (e *Engine) EscalationFrozen() bool { return e.frozen }
