package mitigate

import (
	"fmt"
	"sort"

	"divscrape/internal/statecodec"
)

// tagEngine opens a mitigation-engine block in a snapshot.
const tagEngine uint16 = 0x4D01

// Snapshot support. An engine serialises every client's ladder position —
// suspicion score, rung, unanswered-challenge streak, pass window, last
// activity — plus the lifetime action tally, in sorted key order so equal
// engines always produce equal bytes. As with the detectors, two shapes
// are provided: SnapshotInto/RestoreFrom for one engine, and
// SnapshotMerged/RestorePartitioned for a key-partitioned engine set
// (httpguard runs one engine per shard). Merged snapshots do not record
// shard membership, so they restore across any partition — the mechanism
// behind live resharding. Policies are configuration and must match on
// both sides; the aggregate action tally of a merged snapshot is restored
// onto the first engine, preserving fleet totals.

// SnapshotInto implements statecodec.Snapshotter.
func (e *Engine) SnapshotInto(w *statecodec.Writer) {
	SnapshotMerged(w, []*Engine{e})
}

// RestoreFrom implements statecodec.Snapshotter, replacing all client
// state.
func (e *Engine) RestoreFrom(r *statecodec.Reader) error {
	return RestorePartitioned(r, []*Engine{e}, func(string) int { return 0 })
}

// SnapshotMerged writes the union of the engines' client states as one
// canonical snapshot. Engines must hold disjoint key sets.
func SnapshotMerged(w *statecodec.Writer, engines []*Engine) {
	total := 0
	var counts ActionCounts
	for _, e := range engines {
		total += len(e.clients)
		counts.Add(e.counts)
	}
	keys := make([]string, 0, total)
	owner := make(map[string]*clientState, total)
	for _, e := range engines {
		for k, st := range e.clients {
			if _, dup := owner[k]; dup {
				w.Fail(fmt.Errorf("mitigate: client %q held by two engines; shards are not key-disjoint", k))
				return
			}
			owner[k] = st
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	w.Tag(tagEngine)
	w.Uint64(counts.Allowed)
	w.Uint64(counts.Tarpitted)
	w.Uint64(counts.Challenged)
	w.Uint64(counts.Blocked)
	w.Uint32(uint32(len(keys)))
	for _, k := range keys {
		st := owner[k]
		w.String(k)
		w.Float64(st.score)
		w.Uint8(uint8(st.level))
		w.Int(st.challenged)
		w.Time(st.passUntil)
		w.Time(st.lastSeen)
	}
}

// RestorePartitioned distributes a canonical snapshot across engines:
// each client goes to engines[part(key)]. All engines are Reset first; a
// decode failure leaves them empty rather than half-restored. The
// aggregate action tally is restored onto engines[0].
func RestorePartitioned(r *statecodec.Reader, engines []*Engine, part func(key string) int) error {
	for _, e := range engines {
		e.Reset()
	}
	if err := restorePartitioned(r, engines, part); err != nil {
		for _, e := range engines {
			e.Reset()
		}
		return err
	}
	return nil
}

func restorePartitioned(r *statecodec.Reader, engines []*Engine, part func(key string) int) error {
	if err := r.Expect(tagEngine); err != nil {
		return err
	}
	engines[0].counts = ActionCounts{
		Allowed:    r.Uint64(),
		Tarpitted:  r.Uint64(),
		Challenged: r.Uint64(),
		Blocked:    r.Uint64(),
	}
	// Minimum entry: empty key (4) + score (8) + level (1) + challenged
	// (8) + two timestamps (12 each).
	n := r.Count(4 + 8 + 1 + 8 + 12 + 12)
	for i := 0; i < n; i++ {
		k := r.String()
		st := &clientState{
			score:      r.Float64(),
			level:      Action(r.Uint8()),
			challenged: r.Int(),
			passUntil:  r.Time(),
			lastSeen:   r.Time(),
		}
		if r.Err() != nil {
			return r.Err()
		}
		if st.level > Block {
			return fmt.Errorf("%w: ladder rung %d", statecodec.ErrCorrupt, uint8(st.level))
		}
		idx := part(k)
		if idx < 0 || idx >= len(engines) {
			return fmt.Errorf("mitigate: partition function returned %d for %d engines", idx, len(engines))
		}
		e := engines[idx]
		if _, dup := e.clients[k]; dup {
			return fmt.Errorf("%w: duplicate client %q", statecodec.ErrCorrupt, k)
		}
		e.clients[k] = st
	}
	return r.Err()
}
