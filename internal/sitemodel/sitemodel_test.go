package sitemodel

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func testSite(t *testing.T) *Site {
	t.Helper()
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		mod  func(*Config)
	}{
		{"zero categories", func(c *Config) { c.Categories = 0 }},
		{"zero products", func(c *Config) { c.ProductsPerCategory = 0 }},
		{"zero page size", func(c *Config) { c.PageSize = 0 }},
		{"negative error rate", func(c *Config) { c.ServerErrorRate = -0.1 }},
		{"unit error rate", func(c *Config) { c.ServerErrorRate = 1 }},
		{"negative redirect rate", func(c *Config) { c.RedirectRate = -0.1 }},
		{"unit redirect rate", func(c *Config) { c.RedirectRate = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mod(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestCatalogueGeometry(t *testing.T) {
	s := testSite(t)
	cfg := DefaultConfig()
	if s.Products() != cfg.Categories*cfg.ProductsPerCategory {
		t.Errorf("Products = %d", s.Products())
	}
	if s.Categories() != cfg.Categories {
		t.Errorf("Categories = %d", s.Categories())
	}
	wantPages := (cfg.ProductsPerCategory + cfg.PageSize - 1) / cfg.PageSize
	if s.PagesInCategory() != wantPages {
		t.Errorf("PagesInCategory = %d, want %d", s.PagesInCategory(), wantPages)
	}

	// Every product appears on exactly one page of its own category.
	seen := make(map[int]bool)
	for cat := 0; cat < s.Categories(); cat++ {
		for page := 0; page < s.PagesInCategory(); page++ {
			for _, id := range s.ProductsOnPage(cat, page) {
				if seen[id] {
					t.Fatalf("product %d listed twice", id)
				}
				seen[id] = true
				if s.CategoryOf(id) != cat {
					t.Fatalf("product %d on category %d page but CategoryOf = %d",
						id, cat, s.CategoryOf(id))
				}
			}
		}
	}
	if len(seen) != s.Products() {
		t.Errorf("pagination covers %d products, want %d", len(seen), s.Products())
	}

	// Out-of-range queries are nil/-1, not panics.
	if s.ProductsOnPage(-1, 0) != nil || s.ProductsOnPage(0, 9999) != nil {
		t.Error("out-of-range page returned products")
	}
	if s.CategoryOf(-1) != -1 || s.CategoryOf(s.Products()) != -1 {
		t.Error("out-of-range product has a category")
	}
}

func TestClassifyPathRoundTrip(t *testing.T) {
	s := testSite(t)
	tests := []struct {
		give string
		want PathInfo
	}{
		{HomePath, PathInfo{Kind: KindHome, ProductID: -1, Category: -1, Page: -1}},
		{RobotsPath, PathInfo{Kind: KindRobots, ProductID: -1, Category: -1, Page: -1}},
		{ChallengeScriptPath, PathInfo{Kind: KindChallengeScript, ProductID: -1, Category: -1, Page: -1}},
		{ChallengeVerifyPath, PathInfo{Kind: KindChallengeVerify, ProductID: -1, Category: -1, Page: -1}},
		{HealthPath, PathInfo{Kind: KindHealth, ProductID: -1, Category: -1, Page: -1}},
		{LoginPath, PathInfo{Kind: KindLogin, ProductID: -1, Category: -1, Page: -1}},
		{GeoPath, PathInfo{Kind: KindGeo, ProductID: -1, Category: -1, Page: -1}},
		{CartPath, PathInfo{Kind: KindCart, ProductID: -1, Category: -1, Page: -1}},
		{CheckoutPath, PathInfo{Kind: KindCheckout, ProductID: -1, Category: -1, Page: -1}},
		{AdminPath, PathInfo{Kind: KindAdmin, ProductID: -1, Category: -1, Page: -1}},
		{ProductPath(17), PathInfo{Kind: KindProduct, ProductID: 17, Category: -1, Page: -1}},
		{PricePath(9999), PathInfo{Kind: KindPrice, ProductID: 9999, Category: -1, Page: -1}},
		{CategoryPath(3, 0), PathInfo{Kind: KindCategory, ProductID: -1, Category: 3, Page: 0}},
		{CategoryPath(3, 7), PathInfo{Kind: KindCategory, ProductID: -1, Category: 3, Page: 7}},
		{SearchPath("flights paris"), PathInfo{Kind: KindSearch, ProductID: -1, Category: -1, Page: -1}},
		{"/static/app.css", PathInfo{Kind: KindStatic, ProductID: -1, Category: -1, Page: -1}},
		{"/product/xyz", PathInfo{Kind: KindOther, ProductID: -1, Category: -1, Page: -1}},
		{"/nowhere", PathInfo{Kind: KindOther, ProductID: -1, Category: -1, Page: -1}},
	}
	for _, tt := range tests {
		if got := ClassifyPath(tt.give); got != tt.want {
			t.Errorf("ClassifyPath(%q) = %+v, want %+v", tt.give, got, tt.want)
		}
	}
	_ = s
}

func TestClassifyPathProperty(t *testing.T) {
	// ProductPath/PricePath/CategoryPath always classify back to their
	// own ids.
	f := func(id uint16, cat uint8, page uint8) bool {
		p := ClassifyPath(ProductPath(int(id)))
		if p.Kind != KindProduct || p.ProductID != int(id) {
			return false
		}
		pr := ClassifyPath(PricePath(int(id)))
		if pr.Kind != KindPrice || pr.ProductID != int(id) {
			return false
		}
		c := ClassifyPath(CategoryPath(int(cat), int(page)))
		return c.Kind == KindCategory && c.Category == int(cat) && c.Page == int(page)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPageKindIsPage(t *testing.T) {
	pages := []PageKind{KindHome, KindCategory, KindProduct, KindSearch, KindCart, KindCheckout}
	nonPages := []PageKind{KindStatic, KindPrice, KindRobots, KindChallengeScript,
		KindChallengeVerify, KindHealth, KindLogin, KindGeo, KindAdmin, KindOther}
	for _, k := range pages {
		if !k.IsPage() {
			t.Errorf("%v should be a page", k)
		}
	}
	for _, k := range nonPages {
		if k.IsPage() {
			t.Errorf("%v should not be a page", k)
		}
	}
}

func TestRespond(t *testing.T) {
	s := testSite(t)
	tests := []struct {
		name       string
		req        PageRequest
		wantStatus int
	}{
		{"home", PageRequest{Method: "GET", Path: "/", Roll: 0.9}, 200},
		{"valid product", PageRequest{Method: "GET", Path: ProductPath(0), Roll: 0.9}, 200},
		{"invalid product", PageRequest{Method: "GET", Path: ProductPath(10_000_000), Roll: 0.9}, 404},
		{"product conditional", PageRequest{Method: "GET", Path: ProductPath(0), Conditional: true, Roll: 0.9}, 304},
		{"product redirect roll", PageRequest{Method: "GET", Path: ProductPath(0), Roll: 0.01}, 302},
		{"valid price", PageRequest{Method: "GET", Path: PricePath(1), Roll: 0.9}, 200},
		{"invalid price", PageRequest{Method: "GET", Path: PricePath(-1), Roll: 0.9}, 404},
		{"category", PageRequest{Method: "GET", Path: CategoryPath(0, 0), Roll: 0.9}, 200},
		{"bad category", PageRequest{Method: "GET", Path: "/category/99999", Roll: 0.9}, 404},
		{"search", PageRequest{Method: "GET", Path: SearchPath("x"), Roll: 0.9}, 200},
		{"login redirects", PageRequest{Method: "GET", Path: LoginPath}, 302},
		{"geo redirects", PageRequest{Method: "GET", Path: GeoPath}, 302},
		{"admin forbidden", PageRequest{Method: "GET", Path: AdminPath}, 403},
		{"health no content", PageRequest{Method: "GET", Path: HealthPath}, 204},
		{"verify no content", PageRequest{Method: "POST", Path: ChallengeVerifyPath}, 204},
		{"challenge script", PageRequest{Method: "GET", Path: ChallengeScriptPath}, 200},
		{"robots", PageRequest{Method: "GET", Path: RobotsPath}, 200},
		{"static", PageRequest{Method: "GET", Path: "/static/app.css"}, 200},
		{"static conditional", PageRequest{Method: "GET", Path: "/static/app.css", Conditional: true}, 304},
		{"malformed", PageRequest{Method: "GET", Path: "/anything", Malformed: true}, 400},
		{"unknown path", PageRequest{Method: "GET", Path: "/enoent", Roll: 0.9}, 404},
		{"server error roll", PageRequest{Method: "GET", Path: "/", Roll: 0.0000001}, 500},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := s.Respond(tt.req)
			if got.Status != tt.wantStatus {
				t.Errorf("Respond(%+v).Status = %d, want %d", tt.req, got.Status, tt.wantStatus)
			}
			if got.Status == 304 || got.Status == 204 {
				if got.Bytes != -1 {
					t.Errorf("status %d should log '-' bytes, got %d", got.Status, got.Bytes)
				}
			} else if got.Bytes <= 0 {
				t.Errorf("status %d has non-positive size %d", got.Status, got.Bytes)
			}
		})
	}
}

func TestRespondDeterministic(t *testing.T) {
	s := testSite(t)
	req := PageRequest{Method: "GET", Path: ProductPath(42), Roll: 0.9}
	first := s.Respond(req)
	for i := 0; i < 5; i++ {
		if got := s.Respond(req); got != first {
			t.Fatalf("Respond not deterministic: %+v vs %+v", got, first)
		}
	}
}

func TestRobotsPolicy(t *testing.T) {
	txt := RobotsTxt()
	for _, want := range []string{"Disallow: /cart", "Disallow: /api/", "Crawl-delay"} {
		if !strings.Contains(txt, want) {
			t.Errorf("robots.txt missing %q", want)
		}
	}
	allowed := []string{HomePath, ProductPath(1), CategoryPath(0, 0), "/search", "/static/app.css", RobotsPath}
	disallowed := []string{CartPath, CheckoutPath, LoginPath, AdminPath, PricePath(3), "/api/price/88"}
	for _, p := range allowed {
		if DisallowedByRobots(p) {
			t.Errorf("%s should be allowed", p)
		}
	}
	for _, p := range disallowed {
		if !DisallowedByRobots(p) {
			t.Errorf("%s should be disallowed", p)
		}
	}
}

func TestSearchPathEscaping(t *testing.T) {
	got := SearchPath("a b&c=d%")
	if strings.ContainsAny(got[len("/search?q="):], " &=") {
		t.Errorf("unescaped reserved characters in %q", got)
	}
	if ClassifyPath(got).Kind != KindSearch {
		t.Errorf("escaped search path misclassified: %q", got)
	}
}

// TestPageKindStringExhaustive pins the dense name table: every declared
// kind must have a unique, non-empty name, and must never hit the
// "kind(N)" fallback — a newly added kind without a name entry fails
// here instead of silently rendering as its number.
func TestPageKindStringExhaustive(t *testing.T) {
	seen := make(map[string]PageKind, int(KindCount))
	for k := PageKind(0); k < KindCount; k++ {
		name := k.String()
		if name == "" {
			t.Errorf("kind %d has empty name", k)
		}
		if strings.HasPrefix(name, "kind(") {
			t.Errorf("kind %d fell back to %q; add it to pageKindNames", k, name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
	}
	// Out-of-range values must keep the diagnostic fallback.
	if got, want := KindCount.String(), "kind("+strconv.Itoa(int(KindCount))+")"; got != want {
		t.Errorf("KindCount.String() = %q, want %q", got, want)
	}
	if got := PageKind(-1).String(); got != "kind(-1)" {
		t.Errorf("PageKind(-1).String() = %q, want the kind(N) fallback", got)
	}
}
