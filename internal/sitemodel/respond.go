package sitemodel

import (
	"hash/fnv"
	"strconv"
	"strings"
)

// PageRequest describes one request from an actor to the site.
type PageRequest struct {
	// Method is the HTTP method ("GET", "POST", "HEAD").
	Method string
	// Path is the request target including query string.
	Path string
	// Conditional marks a conditional GET (If-Modified-Since); cache-aware
	// crawlers send them and receive 304 for unchanged static content.
	Conditional bool
	// Malformed marks a syntactically broken request (crude scraping kits
	// emit them); the server answers 400.
	Malformed bool
	// Roll is a uniform [0,1) value the site uses for its random outcomes
	// (server errors); the caller supplies it so replays are deterministic.
	Roll float64
}

// Response is the site's answer.
type Response struct {
	// Status is the HTTP status code.
	Status int
	// Bytes is the response body size (-1 for empty bodies logged as "-").
	Bytes int64
}

// Respond computes the response the application gives a request. It is a
// pure function of the request (plus the caller-supplied roll), so the
// generator and tests agree exactly on outcomes.
func (s *Site) Respond(req PageRequest) Response {
	if req.Malformed {
		return Response{Status: 400, Bytes: sized(req.Path, 250, 80)}
	}
	path := req.Path
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}

	// Static content first: conditional GETs may shortcut to 304.
	if strings.HasPrefix(path, "/static/") {
		if req.Conditional {
			return Response{Status: 304, Bytes: -1}
		}
		return Response{Status: 200, Bytes: sized(path, 18_000, 12_000)}
	}

	switch path {
	case RobotsPath:
		return Response{Status: 200, Bytes: int64(len(RobotsTxt()))}
	case ChallengeScriptPath:
		return Response{Status: 200, Bytes: sized(path, 4_000, 500)}
	case ChallengeVerifyPath:
		return Response{Status: 204, Bytes: -1}
	case HealthPath:
		return Response{Status: 204, Bytes: -1}
	case LoginPath, GeoPath:
		return Response{Status: 302, Bytes: sized(path, 350, 60)}
	case AdminPath:
		return Response{Status: 403, Bytes: sized(path, 300, 50)}
	}

	// Dynamic pages may hit backend flakiness.
	if req.Roll < s.cfg.ServerErrorRate {
		return Response{Status: 500, Bytes: sized(path, 600, 120)}
	}

	switch {
	case path == HomePath:
		if req.Conditional {
			return Response{Status: 304, Bytes: -1}
		}
		return Response{Status: 200, Bytes: sized(path, 45_000, 8_000)}
	case path == CartPath, path == CheckoutPath:
		return Response{Status: 200, Bytes: sized(path, 22_000, 4_000)}
	case strings.HasPrefix(path, "/category/"):
		cat, ok := trailingInt(path, "/category/")
		if !ok || cat < 0 || cat >= s.cfg.Categories {
			return Response{Status: 404, Bytes: sized(path, 900, 150)}
		}
		if req.Conditional {
			return Response{Status: 304, Bytes: -1}
		}
		return Response{Status: 200, Bytes: sized(path, 38_000, 9_000)}
	case strings.HasPrefix(path, "/product/"):
		id, ok := trailingInt(path, "/product/")
		if !ok || !s.ValidProduct(id) {
			return Response{Status: 404, Bytes: sized(path, 900, 150)}
		}
		if req.Conditional {
			return Response{Status: 304, Bytes: -1}
		}
		// Canonical/regional redirects: a constant background of 302s on
		// product URLs, hit by humans and scrapers alike.
		if req.Roll < s.cfg.ServerErrorRate+s.cfg.RedirectRate {
			return Response{Status: 302, Bytes: sized(path, 350, 60)}
		}
		return Response{Status: 200, Bytes: sized(path, 52_000, 15_000)}
	case strings.HasPrefix(path, "/api/price/"):
		id, ok := trailingInt(path, "/api/price/")
		if !ok || !s.ValidProduct(id) {
			return Response{Status: 404, Bytes: sized(path, 120, 40)}
		}
		if req.Roll < s.cfg.ServerErrorRate+s.cfg.RedirectRate/2 {
			return Response{Status: 302, Bytes: sized(path, 220, 40)}
		}
		return Response{Status: 200, Bytes: sized(path, 400, 150)}
	case path == "/search":
		if req.Roll < s.cfg.ServerErrorRate+s.cfg.RedirectRate {
			return Response{Status: 302, Bytes: sized(req.Path, 350, 60)}
		}
		return Response{Status: 200, Bytes: sized(req.Path, 30_000, 10_000)}
	default:
		return Response{Status: 404, Bytes: sized(path, 900, 150)}
	}
}

// trailingInt parses the integer following prefix in path.
func trailingInt(path, prefix string) (int, bool) {
	rest := path[len(prefix):]
	if rest == "" {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return n, true
}

// sized returns a deterministic pseudo-random body size for a path: base
// plus a path-hash-dependent spread. Stable across runs so identical
// requests log identical sizes.
func sized(path string, base, spread int64) int64 {
	if spread <= 0 {
		return base
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(path))
	return base + int64(h.Sum64()%uint64(spread)) //nolint:gosec // bounded spread
}
