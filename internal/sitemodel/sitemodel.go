// Package sitemodel defines the synthetic e-commerce application whose
// Apache access logs the evaluation generates: a catalogue of categories
// and products, the URL space over them, per-page static assets, the
// robots.txt policy and the response-status logic. The DSN 2018 paper's
// dataset came from a travel e-commerce application; this model plays that
// role. Price endpoints and product pages are the scraping targets.
package sitemodel

import (
	"fmt"
	"strconv"
	"strings"
)

// Config sizes the catalogue.
type Config struct {
	// Categories is the number of product categories (> 0).
	Categories int
	// ProductsPerCategory is the catalogue depth per category (> 0).
	ProductsPerCategory int
	// PageSize is the number of products listed per category page (> 0).
	PageSize int
	// ServerErrorRate is the probability that any dynamic request fails
	// with a 500, modelling backend flakiness. In [0, 1).
	ServerErrorRate float64
	// RedirectRate is the probability that a product or search request is
	// answered with a 302 to its canonical/regional URL — travel
	// e-commerce applications redirect constantly, which is why 302 is
	// the second-most-alerted status in the paper's tables. In [0, 1).
	RedirectRate float64
}

// DefaultConfig returns a catalogue comparable to a mid-size travel
// e-commerce deployment.
func DefaultConfig() Config {
	return Config{
		Categories:          40,
		ProductsPerCategory: 250,
		PageSize:            25,
		ServerErrorRate:     0.00002,
		RedirectRate:        0.028,
	}
}

// Site is the immutable synthetic application. Safe for concurrent use.
type Site struct {
	cfg      Config
	products int
}

// New validates the configuration and builds the site.
func New(cfg Config) (*Site, error) {
	if cfg.Categories <= 0 {
		return nil, fmt.Errorf("sitemodel: Categories must be positive, got %d", cfg.Categories)
	}
	if cfg.ProductsPerCategory <= 0 {
		return nil, fmt.Errorf("sitemodel: ProductsPerCategory must be positive, got %d", cfg.ProductsPerCategory)
	}
	if cfg.PageSize <= 0 {
		return nil, fmt.Errorf("sitemodel: PageSize must be positive, got %d", cfg.PageSize)
	}
	if cfg.ServerErrorRate < 0 || cfg.ServerErrorRate >= 1 {
		return nil, fmt.Errorf("sitemodel: ServerErrorRate must be in [0,1), got %g", cfg.ServerErrorRate)
	}
	if cfg.RedirectRate < 0 || cfg.RedirectRate >= 1 {
		return nil, fmt.Errorf("sitemodel: RedirectRate must be in [0,1), got %g", cfg.RedirectRate)
	}
	return &Site{cfg: cfg, products: cfg.Categories * cfg.ProductsPerCategory}, nil
}

// Products returns the catalogue size.
func (s *Site) Products() int { return s.products }

// Categories returns the number of categories.
func (s *Site) Categories() int { return s.cfg.Categories }

// PagesInCategory returns the number of listing pages in a category.
func (s *Site) PagesInCategory() int {
	return (s.cfg.ProductsPerCategory + s.cfg.PageSize - 1) / s.cfg.PageSize
}

// CategoryOf returns the category of a product id.
func (s *Site) CategoryOf(productID int) int {
	if productID < 0 || productID >= s.products {
		return -1
	}
	return productID / s.cfg.ProductsPerCategory
}

// ProductsOnPage returns the product ids listed on one category page.
func (s *Site) ProductsOnPage(category, page int) []int {
	if category < 0 || category >= s.cfg.Categories || page < 0 || page >= s.PagesInCategory() {
		return nil
	}
	start := category*s.cfg.ProductsPerCategory + page*s.cfg.PageSize
	end := start + s.cfg.PageSize
	if limit := (category + 1) * s.cfg.ProductsPerCategory; end > limit {
		end = limit
	}
	out := make([]int, 0, end-start)
	for id := start; id < end; id++ {
		out = append(out, id)
	}
	return out
}

// ValidProduct reports whether a product id exists in the catalogue.
func (s *Site) ValidProduct(id int) bool { return id >= 0 && id < s.products }

// Path construction. Centralised here so actors and detectors agree on
// URL shapes.

// HomePath is the site root.
const HomePath = "/"

// ChallengeScriptPath serves the bot-mitigation JavaScript challenge that
// real browsers execute on their first page view.
const ChallengeScriptPath = "/__challenge.js"

// ChallengeVerifyPath receives the challenge solution beacon (a POST that
// answers 204). Clients that never hit this path after browsing pages have
// not executed JavaScript.
const ChallengeVerifyPath = "/__verify"

// RobotsPath serves the crawl policy.
const RobotsPath = "/robots.txt"

// HealthPath answers load-balancer probes.
const HealthPath = "/health"

// LoginPath redirects to the home page after setting a session.
const LoginPath = "/login"

// GeoPath is the region-selection redirect issued at session entry.
const GeoPath = "/geo"

// CartPath and CheckoutPath are transactional pages disallowed to robots.
const (
	CartPath     = "/cart"
	CheckoutPath = "/checkout"
)

// AdminPath is not linked anywhere; only probing clients request it.
const AdminPath = "/admin"

// ProductPath returns the canonical product page URL.
func ProductPath(id int) string {
	return "/product/" + strconv.Itoa(id)
}

// CategoryPath returns a category listing page URL (page is zero-based).
func CategoryPath(category, page int) string {
	if page == 0 {
		return "/category/" + strconv.Itoa(category)
	}
	return "/category/" + strconv.Itoa(category) + "?page=" + strconv.Itoa(page)
}

// PricePath returns the JSON price API URL for a product — the endpoint
// price-scraping campaigns target.
func PricePath(id int) string {
	return "/api/price/" + strconv.Itoa(id)
}

// SearchPath returns a search results URL.
func SearchPath(query string) string {
	return "/search?q=" + escapeQuery(query)
}

func escapeQuery(q string) string {
	var sb strings.Builder
	for i := 0; i < len(q); i++ {
		c := q[i]
		switch {
		case c == ' ':
			sb.WriteByte('+')
		case c == '+' || c == '%' || c == '&' || c == '=' || c == '#' || c < 0x20 || c >= 0x7f:
			fmt.Fprintf(&sb, "%%%02X", c)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// StaticAssets lists the assets a browser fetches after loading any HTML
// page. Product pages additionally pull their image (see ProductAssets).
func StaticAssets() []string {
	return []string{
		"/static/app.css",
		"/static/app.js",
		"/static/logo.png",
	}
}

// ProductAssets lists the extra assets for a product page.
func ProductAssets(id int) []string {
	return []string{"/static/img/p" + strconv.Itoa(id) + ".jpg"}
}

// RobotsTxt renders the crawl policy: transactional and API paths are
// disallowed; well-behaved crawlers honour it, scrapers do not.
func RobotsTxt() string {
	return strings.Join([]string{
		"User-agent: *",
		"Disallow: /cart",
		"Disallow: /checkout",
		"Disallow: /api/",
		"Disallow: /login",
		"Disallow: /admin",
		"Crawl-delay: 5",
		"",
	}, "\n")
}

// DisallowedByRobots reports whether a path is off-limits under the
// robots.txt policy above.
func DisallowedByRobots(path string) bool {
	switch {
	case path == CartPath, path == CheckoutPath, path == LoginPath, path == AdminPath:
		return true
	case strings.HasPrefix(path, "/api/"):
		return true
	default:
		return false
	}
}
