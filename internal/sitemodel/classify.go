package sitemodel

import (
	"strconv"
	"strings"
)

// PageKind is the coarse type of a request target within the site's URL
// space. Detectors classify paths to reason about behaviour (pages vs
// assets vs API) without string-matching in their hot loops.
type PageKind int

const (
	// KindOther is any path outside the known URL space.
	KindOther PageKind = iota
	// KindHome is the site root.
	KindHome
	// KindCategory is a category listing page.
	KindCategory
	// KindProduct is a product detail page.
	KindProduct
	// KindPrice is the JSON price API.
	KindPrice
	// KindSearch is the search results page.
	KindSearch
	// KindStatic is a static asset.
	KindStatic
	// KindRobots is robots.txt.
	KindRobots
	// KindChallengeScript is the served bot-mitigation script.
	KindChallengeScript
	// KindChallengeVerify is the challenge solution beacon.
	KindChallengeVerify
	// KindHealth is the load-balancer probe.
	KindHealth
	// KindLogin is the login redirect.
	KindLogin
	// KindGeo is the region-selection redirect.
	KindGeo
	// KindCart is the shopping cart.
	KindCart
	// KindCheckout is the checkout flow.
	KindCheckout
	// KindAdmin is the unlinked admin path (probing only).
	KindAdmin

	// KindCount is the number of declared kinds. New kinds go above this
	// line; the exhaustiveness test fails any kind missing a name, and
	// consumers size dense per-kind tables (e.g. the trajectory detector's
	// transition matrix) with it.
	KindCount
)

// pageKindNames is a dense per-kind table: String sits on the detectors'
// hot classification paths, where the previous map lookup cost a hash per
// call.
var pageKindNames = [KindCount]string{
	KindOther:           "other",
	KindHome:            "home",
	KindCategory:        "category",
	KindProduct:         "product",
	KindPrice:           "price",
	KindSearch:          "search",
	KindStatic:          "static",
	KindRobots:          "robots",
	KindChallengeScript: "challenge-script",
	KindChallengeVerify: "challenge-verify",
	KindHealth:          "health",
	KindLogin:           "login",
	KindGeo:             "geo",
	KindCart:            "cart",
	KindCheckout:        "checkout",
	KindAdmin:           "admin",
}

// String returns the kind's stable name.
func (k PageKind) String() string {
	if k >= 0 && k < KindCount {
		if s := pageKindNames[k]; s != "" {
			return s
		}
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// IsPage reports whether the kind is an HTML document a browser would
// render (and therefore be followed by asset fetches and, on first view,
// challenge execution).
func (k PageKind) IsPage() bool {
	switch k {
	case KindHome, KindCategory, KindProduct, KindSearch, KindCart, KindCheckout:
		return true
	default:
		return false
	}
}

// PathInfo is the parsed view of one request target.
type PathInfo struct {
	// Kind is the coarse page type.
	Kind PageKind
	// ProductID is set for KindProduct and KindPrice (otherwise -1).
	ProductID int
	// Category and Page are set for KindCategory (otherwise -1).
	Category int
	Page     int
}

// ClassifyPath parses a request target (query string allowed) into a
// PathInfo. It is pure string inspection: ids are syntactic and not
// validated against any catalogue bounds.
func ClassifyPath(target string) PathInfo {
	info := PathInfo{ProductID: -1, Category: -1, Page: -1}
	path, query := target, ""
	if i := strings.IndexByte(target, '?'); i >= 0 {
		path, query = target[:i], target[i+1:]
	}
	switch path {
	case HomePath:
		info.Kind = KindHome
		return info
	case RobotsPath:
		info.Kind = KindRobots
		return info
	case ChallengeScriptPath:
		info.Kind = KindChallengeScript
		return info
	case ChallengeVerifyPath:
		info.Kind = KindChallengeVerify
		return info
	case HealthPath:
		info.Kind = KindHealth
		return info
	case LoginPath:
		info.Kind = KindLogin
		return info
	case GeoPath:
		info.Kind = KindGeo
		return info
	case CartPath:
		info.Kind = KindCart
		return info
	case CheckoutPath:
		info.Kind = KindCheckout
		return info
	case AdminPath:
		info.Kind = KindAdmin
		return info
	case "/search":
		info.Kind = KindSearch
		return info
	}
	switch {
	case strings.HasPrefix(path, "/static/"):
		info.Kind = KindStatic
	case strings.HasPrefix(path, "/product/"):
		if id, ok := trailingInt(path, "/product/"); ok {
			info.Kind = KindProduct
			info.ProductID = id
		}
	case strings.HasPrefix(path, "/api/price/"):
		if id, ok := trailingInt(path, "/api/price/"); ok {
			info.Kind = KindPrice
			info.ProductID = id
		}
	case strings.HasPrefix(path, "/category/"):
		if cat, ok := trailingInt(path, "/category/"); ok {
			info.Kind = KindCategory
			info.Category = cat
			info.Page = 0
			if query != "" {
				info.Page = pageFromQuery(query)
			}
		}
	}
	return info
}

// pageFromQuery scans the query string for a page= parameter without
// splitting it into an allocated slice — ClassifyPath sits inside both
// detectors' per-request loops.
func pageFromQuery(query string) int {
	for len(query) > 0 {
		kv := query
		if i := strings.IndexByte(query, '&'); i >= 0 {
			kv, query = query[:i], query[i+1:]
		} else {
			query = ""
		}
		if v, ok := strings.CutPrefix(kv, "page="); ok {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 {
				return n
			}
		}
	}
	return 0
}
