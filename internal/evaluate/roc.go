package evaluate

import "sort"

// ROCPoint is one operating point of a score-thresholded detector.
type ROCPoint struct {
	// Threshold is the alert threshold producing this point (alerts are
	// scores >= Threshold).
	Threshold float64
	// TPR is the true-positive rate (sensitivity) at the threshold.
	TPR float64
	// FPR is the false-positive rate at the threshold.
	FPR float64
}

// ROC accumulates (score, label) pairs and produces the ROC curve a
// threshold sweep traces. The paper's detectors are binary alert streams,
// but both of this library's detectors expose their internal scores, so
// the trade-off curve the authors planned to study is recoverable offline.
type ROC struct {
	scores []scoredLabel
}

type scoredLabel struct {
	score     float64
	malicious bool
}

// NewROC returns an empty accumulator. sizeHint pre-allocates capacity.
func NewROC(sizeHint int) *ROC {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &ROC{scores: make([]scoredLabel, 0, sizeHint)}
}

// Add records one scored, labelled request.
func (r *ROC) Add(score float64, malicious bool) {
	r.scores = append(r.scores, scoredLabel{score: score, malicious: malicious})
}

// Len returns the number of recorded requests.
func (r *ROC) Len() int { return len(r.scores) }

// Curve returns the ROC curve as a sequence of operating points in
// ascending FPR order, with the implicit (0,0) and (1,1) endpoints
// included. Points are produced at every distinct score value.
func (r *ROC) Curve() []ROCPoint {
	if len(r.scores) == 0 {
		return nil
	}
	buf := make([]scoredLabel, len(r.scores))
	copy(buf, r.scores)
	sort.Slice(buf, func(i, j int) bool { return buf[i].score > buf[j].score })

	var totalPos, totalNeg uint64
	for _, s := range buf {
		if s.malicious {
			totalPos++
		} else {
			totalNeg++
		}
	}

	points := make([]ROCPoint, 0, 64)
	points = append(points, ROCPoint{Threshold: buf[0].score + 1, TPR: 0, FPR: 0})
	var tp, fp uint64
	for i := 0; i < len(buf); {
		score := buf[i].score
		for i < len(buf) && buf[i].score == score {
			if buf[i].malicious {
				tp++
			} else {
				fp++
			}
			i++
		}
		points = append(points, ROCPoint{
			Threshold: score,
			TPR:       ratio(tp, totalPos),
			FPR:       ratio(fp, totalNeg),
		})
	}
	return points
}

// AUC returns the area under the ROC curve by trapezoidal integration.
func (r *ROC) AUC() float64 {
	curve := r.Curve()
	if len(curve) < 2 {
		return 0
	}
	var area float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// ConfusionAt returns the confusion matrix produced by alerting on scores
// >= threshold.
func (r *ROC) ConfusionAt(threshold float64) Confusion {
	var c Confusion
	for _, s := range r.scores {
		c.Add(s.score >= threshold, s.malicious)
	}
	return c
}

// BestYouden returns the threshold maximising Youden's J and the matrix at
// that threshold — the canonical operating-point selection once labels
// exist.
func (r *ROC) BestYouden() (float64, Confusion) {
	curve := r.Curve()
	bestJ := -1.0
	bestThreshold := 0.0
	for _, p := range curve {
		j := p.TPR - p.FPR
		if j > bestJ {
			bestJ = j
			bestThreshold = p.Threshold
		}
	}
	return bestThreshold, r.ConfusionAt(bestThreshold)
}
