// Package evaluate scores detectors against ground-truth labels: confusion
// matrices with the standard binary-classifier metrics (the sensitivity
// and specificity the paper names as its intended next step), and ROC
// threshold sweeps over recorded verdict scores.
package evaluate

import "math"

// Confusion is a binary-classification confusion matrix where "positive"
// means "malicious scraping request".
type Confusion struct {
	// TP counts malicious requests that were alerted.
	TP uint64
	// FP counts benign requests that were alerted.
	FP uint64
	// TN counts benign requests that were not alerted.
	TN uint64
	// FN counts malicious requests that were not alerted.
	FN uint64
}

// Add records one labelled decision.
func (c *Confusion) Add(alert, malicious bool) {
	switch {
	case alert && malicious:
		c.TP++
	case alert:
		c.FP++
	case malicious:
		c.FN++
	default:
		c.TN++
	}
}

// Total returns the number of recorded requests.
func (c *Confusion) Total() uint64 { return c.TP + c.FP + c.TN + c.FN }

// Merge folds another matrix into this one.
func (c *Confusion) Merge(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Sensitivity (recall, TPR) is TP/(TP+FN); NaN-free: 0 when undefined.
func (c *Confusion) Sensitivity() float64 { return ratio(c.TP, c.TP+c.FN) }

// Specificity (TNR) is TN/(TN+FP).
func (c *Confusion) Specificity() float64 { return ratio(c.TN, c.TN+c.FP) }

// Precision (PPV) is TP/(TP+FP).
func (c *Confusion) Precision() float64 { return ratio(c.TP, c.TP+c.FP) }

// NPV is TN/(TN+FN).
func (c *Confusion) NPV() float64 { return ratio(c.TN, c.TN+c.FN) }

// FPR is FP/(FP+TN).
func (c *Confusion) FPR() float64 { return ratio(c.FP, c.FP+c.TN) }

// FNR is FN/(FN+TP).
func (c *Confusion) FNR() float64 { return ratio(c.FN, c.FN+c.TP) }

// Accuracy is (TP+TN)/total.
func (c *Confusion) Accuracy() float64 { return ratio(c.TP+c.TN, c.Total()) }

// BalancedAccuracy is the mean of sensitivity and specificity.
func (c *Confusion) BalancedAccuracy() float64 {
	return (c.Sensitivity() + c.Specificity()) / 2
}

// F1 is the harmonic mean of precision and sensitivity.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.Sensitivity()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Youden is sensitivity + specificity - 1 (Youden's J).
func (c *Confusion) Youden() float64 {
	return c.Sensitivity() + c.Specificity() - 1
}

// MCC is the Matthews correlation coefficient in [-1, 1], 0 when any
// marginal is empty.
func (c *Confusion) MCC() float64 {
	tp, fp, tn, fn := float64(c.TP), float64(c.FP), float64(c.TN), float64(c.FN)
	den := math.Sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
	if den == 0 {
		return 0
	}
	return (tp*tn - fp*fn) / den
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
