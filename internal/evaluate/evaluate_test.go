package evaluate

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestConfusionMetricsHandChecked(t *testing.T) {
	// 80 TP, 20 FN, 90 TN, 10 FP.
	c := Confusion{TP: 80, FN: 20, TN: 90, FP: 10}
	tests := []struct {
		name string
		got  float64
		want float64
	}{
		{"sensitivity", c.Sensitivity(), 0.8},
		{"specificity", c.Specificity(), 0.9},
		{"precision", c.Precision(), 80.0 / 90.0},
		{"npv", c.NPV(), 90.0 / 110.0},
		{"fpr", c.FPR(), 0.1},
		{"fnr", c.FNR(), 0.2},
		{"accuracy", c.Accuracy(), 170.0 / 200.0},
		{"balanced accuracy", c.BalancedAccuracy(), 0.85},
		{"youden", c.Youden(), 0.7},
	}
	for _, tt := range tests {
		if !almost(tt.got, tt.want, 1e-12) {
			t.Errorf("%s = %g, want %g", tt.name, tt.got, tt.want)
		}
	}
	wantF1 := 2 * (80.0 / 90.0) * 0.8 / ((80.0 / 90.0) + 0.8)
	if !almost(c.F1(), wantF1, 1e-12) {
		t.Errorf("f1 = %g, want %g", c.F1(), wantF1)
	}
	mcc := (80.0*90 - 10.0*20) / math.Sqrt(90.0*100*100*110)
	if !almost(c.MCC(), mcc, 1e-12) {
		t.Errorf("mcc = %g, want %g", c.MCC(), mcc)
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	// All metrics are defined (zero) on an empty matrix.
	for name, got := range map[string]float64{
		"sens": c.Sensitivity(), "spec": c.Specificity(),
		"prec": c.Precision(), "f1": c.F1(), "mcc": c.MCC(),
		"acc": c.Accuracy(),
	} {
		if math.IsNaN(got) || got != 0 {
			t.Errorf("%s on empty matrix = %g", name, got)
		}
	}
	c.Add(true, true)
	c.Add(false, false)
	if c.TP != 1 || c.TN != 1 || c.Total() != 2 {
		t.Errorf("Add bookkeeping wrong: %+v", c)
	}
	var d Confusion
	d.Merge(c)
	d.Merge(c)
	if d.Total() != 4 {
		t.Errorf("merge total = %d", d.Total())
	}
}

func TestROCKnownCurve(t *testing.T) {
	r := NewROC(8)
	// Perfectly separable scores.
	for _, s := range []float64{0.9, 0.8, 0.85, 0.95} {
		r.Add(s, true)
	}
	for _, s := range []float64{0.1, 0.2, 0.15, 0.05} {
		r.Add(s, false)
	}
	if auc := r.AUC(); !almost(auc, 1.0, 1e-12) {
		t.Errorf("separable AUC = %g, want 1", auc)
	}
	thr, conf := r.BestYouden()
	if conf.FP != 0 || conf.FN != 0 {
		t.Errorf("best operating point imperfect: t=%g %+v", thr, conf)
	}

	// Perfectly anti-separated scores give AUC 0.
	r2 := NewROC(4)
	r2.Add(0.1, true)
	r2.Add(0.9, false)
	if auc := r2.AUC(); !almost(auc, 0, 1e-12) {
		t.Errorf("anti-separable AUC = %g, want 0", auc)
	}

	if NewROC(-5).Len() != 0 {
		t.Error("negative size hint mishandled")
	}
	if (&ROC{}).Curve() != nil {
		t.Error("empty ROC should have nil curve")
	}
}

func TestROCConfusionAt(t *testing.T) {
	r := NewROC(4)
	r.Add(0.9, true)
	r.Add(0.4, true)
	r.Add(0.6, false)
	r.Add(0.1, false)
	c := r.ConfusionAt(0.5)
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Errorf("ConfusionAt(0.5) = %+v", c)
	}
}

func TestROCRandomScoresAUCHalf(t *testing.T) {
	// Deterministic LCG noise; labels independent of scores → AUC ≈ 0.5.
	r := NewROC(4000)
	lcg := uint64(99)
	next := func() float64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return float64(lcg>>11) / float64(1<<53)
	}
	for i := 0; i < 4000; i++ {
		r.Add(next(), next() < 0.3)
	}
	if auc := r.AUC(); !almost(auc, 0.5, 0.05) {
		t.Errorf("random AUC = %g, want ~0.5", auc)
	}
}

func TestGridROCAgreesWithExact(t *testing.T) {
	exact := NewROC(2000)
	grid := NewGridROC(200)
	lcg := uint64(7)
	next := func() float64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return float64(lcg>>11) / float64(1<<53)
	}
	for i := 0; i < 2000; i++ {
		score := next()
		malicious := next() < score // correlated: AUC well above 0.5
		exact.Add(score, malicious)
		grid.Add(score, malicious)
	}
	if !almost(exact.AUC(), grid.AUC(), 0.02) {
		t.Errorf("grid AUC %g vs exact %g", grid.AUC(), exact.AUC())
	}
	ce := exact.ConfusionAt(0.5)
	cg := grid.ConfusionAt(0.5)
	if ce != cg {
		t.Errorf("confusion at 0.5: grid %+v vs exact %+v", cg, ce)
	}
}

func TestGridROCClamping(t *testing.T) {
	g := NewGridROC(10)
	g.Add(-5, true)
	g.Add(7, false)
	pos, neg := g.Totals()
	if pos != 1 || neg != 1 {
		t.Errorf("totals = %d/%d", pos, neg)
	}
	c := g.ConfusionAt(0.5)
	if c.FN != 1 || c.FP != 1 {
		t.Errorf("clamped scores landed wrong: %+v", c)
	}
	if NewGridROC(2).Curve() != nil {
		t.Error("empty grid should have nil curve")
	}
}

func TestGridROCBestYouden(t *testing.T) {
	g := NewGridROC(100)
	for i := 0; i < 100; i++ {
		g.Add(0.8, true)
		g.Add(0.2, false)
	}
	thr, conf := g.BestYouden()
	if thr <= 0.2 || thr > 0.8 {
		t.Errorf("threshold = %g, want in (0.2, 0.8]", thr)
	}
	if conf.FP != 0 || conf.FN != 0 {
		t.Errorf("imperfect split: %+v", conf)
	}
}

// Property: ROC curves are monotone non-decreasing in both axes.
func TestROCMonotoneProperty(t *testing.T) {
	f := func(scores []float64, labels []bool) bool {
		n := len(scores)
		if len(labels) < n {
			n = len(labels)
		}
		r := NewROC(n)
		for i := 0; i < n; i++ {
			s := math.Abs(math.Mod(scores[i], 1))
			if math.IsNaN(s) {
				s = 0
			}
			r.Add(s, labels[i])
		}
		curve := r.Curve()
		for i := 1; i < len(curve); i++ {
			if curve[i].TPR < curve[i-1].TPR-1e-12 || curve[i].FPR < curve[i-1].FPR-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
