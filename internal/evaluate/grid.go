package evaluate

// GridROC is a constant-memory ROC accumulator: scores are bucketed onto a
// fixed threshold grid over [0, 1], so multi-million-request streams sweep
// in O(bins) memory. Exact for thresholds on the grid; between grid points
// the curve is a conservative step function.
type GridROC struct {
	pos []uint64
	neg []uint64
}

// NewGridROC returns an accumulator with the given number of bins
// (minimum 10; 200 gives 0.005-wide thresholds).
func NewGridROC(bins int) *GridROC {
	if bins < 10 {
		bins = 10
	}
	return &GridROC{pos: make([]uint64, bins+1), neg: make([]uint64, bins+1)}
}

// Add records one scored, labelled request. Scores are clamped to [0, 1].
func (g *GridROC) Add(score float64, malicious bool) {
	bins := len(g.pos) - 1
	if score < 0 {
		score = 0
	}
	if score > 1 {
		score = 1
	}
	idx := int(score * float64(bins))
	if malicious {
		g.pos[idx]++
	} else {
		g.neg[idx]++
	}
}

// Totals returns the recorded positive and negative counts.
func (g *GridROC) Totals() (pos, neg uint64) {
	for i := range g.pos {
		pos += g.pos[i]
		neg += g.neg[i]
	}
	return pos, neg
}

// Curve returns operating points for every grid threshold, ascending FPR.
func (g *GridROC) Curve() []ROCPoint {
	totalPos, totalNeg := g.Totals()
	if totalPos+totalNeg == 0 {
		return nil
	}
	bins := len(g.pos) - 1
	points := make([]ROCPoint, 0, bins+2)
	var tp, fp uint64
	// Sweep thresholds from 1.0 down to 0.0: alerts are scores >= t.
	points = append(points, ROCPoint{Threshold: 1.0001, TPR: 0, FPR: 0})
	for i := bins; i >= 0; i-- {
		tp += g.pos[i]
		fp += g.neg[i]
		points = append(points, ROCPoint{
			Threshold: float64(i) / float64(bins),
			TPR:       ratio(tp, totalPos),
			FPR:       ratio(fp, totalNeg),
		})
	}
	return points
}

// AUC integrates the grid curve with the trapezoid rule.
func (g *GridROC) AUC() float64 {
	curve := g.Curve()
	if len(curve) < 2 {
		return 0
	}
	var area float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// ConfusionAt returns the confusion matrix at the grid threshold nearest
// to t (alerting on scores >= t).
func (g *GridROC) ConfusionAt(t float64) Confusion {
	bins := len(g.pos) - 1
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	cut := int(t*float64(bins) + 0.5)
	var c Confusion
	for i := range g.pos {
		if i >= cut {
			c.TP += g.pos[i]
			c.FP += g.neg[i]
		} else {
			c.FN += g.pos[i]
			c.TN += g.neg[i]
		}
	}
	return c
}

// BestYouden returns the grid threshold maximising Youden's J.
func (g *GridROC) BestYouden() (float64, Confusion) {
	bins := len(g.pos) - 1
	totalPos, totalNeg := g.Totals()
	bestJ, bestT := -1.0, 0.0
	var tp, fp uint64
	for i := bins; i >= 0; i-- {
		tp += g.pos[i]
		fp += g.neg[i]
		j := ratio(tp, totalPos) - ratio(fp, totalNeg)
		if j > bestJ {
			bestJ = j
			bestT = float64(i) / float64(bins)
		}
	}
	return bestT, g.ConfusionAt(bestT)
}
