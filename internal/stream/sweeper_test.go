package stream

import (
	"testing"
	"time"

	"divscrape/internal/clockwork"
)

// recorder captures the cutoffs a sweep hands to its hooks.
type recorder struct {
	cutoffs []time.Time
	per     int
}

func (r *recorder) EvictBefore(cutoff time.Time) int {
	r.cutoffs = append(r.cutoffs, cutoff)
	return r.per
}

func TestSweeperObserveCadence(t *testing.T) {
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	sw, err := NewSweeper(time.Hour, 10*time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{per: 3}
	sw.Register("store", rec)

	if n := sw.Observe(base); n != 0 {
		t.Errorf("anchor observation swept (%d)", n)
	}
	if n := sw.Observe(base.Add(5 * time.Minute)); n != 0 {
		t.Errorf("early observation swept (%d)", n)
	}
	if n := sw.Observe(base.Add(10 * time.Minute)); n != 3 {
		t.Errorf("due observation evicted %d, want 3", n)
	}
	if len(rec.cutoffs) != 1 {
		t.Fatalf("%d sweeps ran, want 1", len(rec.cutoffs))
	}
	if want := base.Add(10*time.Minute - time.Hour); !rec.cutoffs[0].Equal(want) {
		t.Errorf("cutoff = %v, want now − window = %v", rec.cutoffs[0], want)
	}
	// Zero and regressing observations are inert.
	if n := sw.Observe(time.Time{}); n != 0 {
		t.Errorf("zero time swept (%d)", n)
	}
	if n := sw.Observe(base); n != 0 {
		t.Errorf("regressing time swept (%d)", n)
	}

	sweeps, evicted := sw.Stats()
	if sweeps != 1 || evicted != 3 {
		t.Errorf("stats = %d sweeps, %d evicted; want 1, 3", sweeps, evicted)
	}
}

func TestSweeperTickWithSimulatedClock(t *testing.T) {
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	clk := clockwork.NewClock(base)
	sw, err := NewSweeper(2*time.Hour, 0, clk) // every defaults to window/4
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{per: 1}
	sw.Register("engine", rec)
	sw.Register("baseline", EvictFunc(func(time.Time) int { return 2 }))

	sw.Tick() // anchors
	clk.Advance(29 * time.Minute)
	if n := sw.Tick(); n != 0 {
		t.Errorf("tick before cadence swept (%d)", n)
	}
	clk.Advance(time.Minute)
	if n := sw.Tick(); n != 3 {
		t.Errorf("tick at cadence evicted %d, want 3 (both hooks)", n)
	}
	if want := base.Add(30*time.Minute - 2*time.Hour); !rec.cutoffs[0].Equal(want) {
		t.Errorf("cutoff = %v, want %v", rec.cutoffs[0], want)
	}
}

func TestSweeperValidation(t *testing.T) {
	if _, err := NewSweeper(0, time.Minute, nil); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewSweeper(-time.Hour, time.Minute, nil); err == nil {
		t.Error("negative window accepted")
	}
	sw, err := NewSweeper(2*time.Second, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sw.every != time.Second {
		t.Errorf("cadence floor = %v, want 1s", sw.every)
	}
	if sw.Window() != 2*time.Second {
		t.Errorf("Window() = %v", sw.Window())
	}
}
