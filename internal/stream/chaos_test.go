package stream

import (
	"errors"
	"io"
	"syscall"
	"testing"
	"time"

	"divscrape/internal/faultinject"
	"divscrape/internal/logfmt"
)

// Chaos: transient read failures injected into the tail. The follower
// must retry with capped exponential backoff — a tail that dies on the
// first EIO defeats the point of following — and the backoff schedule is
// asserted through the recorded Sleep, never waited out.

func TestChaosReadErrorsRetriedWithBackoff(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	path := dir + "/access.log"
	appendFile(t, path, entryLine(0)+entryLine(1))

	var slept []time.Duration
	var f *Follower
	cfg := FollowerConfig{
		Path:           path,
		PollInterval:   10 * time.Millisecond,
		MaxReadBackoff: 25 * time.Millisecond,
		// Rand pinned at the jitter midpoint: factor 1.0, so the schedule
		// asserts as the un-jittered doubling.
		Rand: func() float64 { return 0.5 },
		Sleep: func(d time.Duration) {
			slept = append(slept, d)
			// Poll waits (end of file reached) end the scenario; retry
			// backoffs keep going until the injected fault exhausts.
			if !fiRead.Enabled() {
				f.Stop()
			}
		},
	}
	var err error
	f, err = NewFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })

	// Three consecutive reads fail with EIO, then the device recovers.
	faultinject.Enable("stream.read", faultinject.Fault{Err: syscall.EIO, Times: 3})

	var e logfmt.Entry
	for i := 0; i < 2; i++ {
		if err := f.NextInto(&e); err != nil {
			t.Fatalf("entry %d through transient read errors: %v", i, err)
		}
	}
	if err := f.NextInto(&e); !errors.Is(err, io.EOF) {
		t.Fatalf("drained follower returned %v, want EOF", err)
	}

	// The first three recorded sleeps are the retry backoffs: the poll
	// interval doubled per consecutive failure, capped at MaxReadBackoff.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond}
	if len(slept) < len(want) {
		t.Fatalf("slept %v, want %v prefix", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff schedule %v, want %v prefix", slept, want)
		}
	}
	st := f.Stats()
	if st.ReadErrors != 3 {
		t.Fatalf("ReadErrors %d, want 3", st.ReadErrors)
	}
	if st.Lines != 2 {
		t.Fatalf("Lines %d, want 2 — retries must not drop entries", st.Lines)
	}
}

func TestChaosReadErrorAfterStopIsTerminal(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	path := dir + "/access.log"
	appendFile(t, path, entryLine(0))

	var f *Follower
	cfg := FollowerConfig{
		Path:         path,
		PollInterval: 10 * time.Millisecond,
		Sleep:        func(time.Duration) { t.Fatal("stopped follower slept") },
	}
	var err error
	f, err = NewFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })

	var e logfmt.Entry
	if err := f.NextInto(&e); err != nil {
		t.Fatal(err)
	}
	// Stop, then fail every read: shutdown must surface the error
	// instead of spinning in the retry loop forever.
	f.Stop()
	faultinject.Enable("stream.read", faultinject.Fault{Err: syscall.EIO})
	if err := f.NextInto(&e); !errors.Is(err, syscall.EIO) {
		t.Fatalf("stopped follower error %v, want EIO", err)
	}
}

func TestChaosReadBackoffJittered(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	path := dir + "/access.log"
	appendFile(t, path, entryLine(0)+entryLine(1))

	var slept []time.Duration
	var f *Follower
	cfg := FollowerConfig{
		Path:           path,
		PollInterval:   10 * time.Millisecond,
		MaxReadBackoff: 25 * time.Millisecond,
		// Jitter 0.2 with the source pinned at 0.25 scales every retry
		// pause by exactly 0.9; poll waits stay un-jittered.
		Rand: func() float64 { return 0.25 },
		Sleep: func(d time.Duration) {
			slept = append(slept, d)
			if !fiRead.Enabled() {
				f.Stop()
			}
		},
	}
	var err error
	f, err = NewFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })

	faultinject.Enable("stream.read", faultinject.Fault{Err: syscall.EIO, Times: 3})
	var e logfmt.Entry
	for i := 0; i < 2; i++ {
		if err := f.NextInto(&e); err != nil {
			t.Fatalf("entry %d through transient read errors: %v", i, err)
		}
	}
	// Base schedule [10ms, 20ms, 25ms] scaled by 0.9 → [9ms, 18ms,
	// 22.5ms]: the doubling and the cap run on the un-jittered base.
	want := []time.Duration{9 * time.Millisecond, 18 * time.Millisecond, 22500 * time.Microsecond}
	if len(slept) < len(want) {
		t.Fatalf("slept %v, want %v prefix", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("jittered schedule %v, want %v prefix", slept, want)
		}
	}
}
