package stream

import (
	"fmt"
	"sync/atomic"
	"time"

	"divscrape/internal/clockwork"
	"divscrape/internal/detector"
)

// Sweeper drives windowed TTL eviction across every registered stateful
// layer from one place: detector session stores, mitigation engines, the
// reputation overlay, anomaly baselines — anything implementing the
// detector.Evictable hook. One sweeper, one window, one cadence, so an
// operator reasons about a single retention knob instead of one per
// subsystem.
//
// The sweeper is clock-agnostic: Observe advances it on event time (the
// deterministic choice for replays and for follow mode, where entry
// timestamps are the stream's own clock), and Tick advances it from a
// clockwork.Source (the wall clock in live services, a simulated clock in
// tests). Both funnel into the same cadence logic, so a test driving a
// clockwork.Clock exercises exactly the code a production wall-clock
// ticker runs.
//
// Sweeping is single-threaded: call Observe/Tick/SweepAt from the one
// goroutine that owns the registered state (the pipeline sink, a guard's
// sweep slot). Stats is safe from any goroutine.
type Sweeper struct {
	window time.Duration
	every  time.Duration
	src    clockwork.Source
	last   time.Time
	hooks  []sweepHook

	sweeps  atomic.Uint64
	evicted atomic.Uint64
}

type sweepHook struct {
	name string
	ev   detector.Evictable
}

// EvictFunc adapts a plain function to detector.Evictable.
type EvictFunc func(cutoff time.Time) int

// EvictBefore implements detector.Evictable.
func (f EvictFunc) EvictBefore(cutoff time.Time) int { return f(cutoff) }

// NewSweeper builds a sweeper with the given retention window and sweep
// cadence (every <= 0 defaults to window/4, at least one second). src
// supplies Tick's clock; nil defaults to the system clock.
func NewSweeper(window, every time.Duration, src clockwork.Source) (*Sweeper, error) {
	if window <= 0 {
		return nil, fmt.Errorf("stream: sweep window must be positive, got %v", window)
	}
	if every <= 0 {
		every = window / 4
		if every < time.Second {
			every = time.Second
		}
	}
	if src == nil {
		src = clockwork.System()
	}
	return &Sweeper{window: window, every: every, src: src}, nil
}

// Register adds an eviction hook under a diagnostic name. Hooks run in
// registration order.
func (s *Sweeper) Register(name string, ev detector.Evictable) {
	s.hooks = append(s.hooks, sweepHook{name: name, ev: ev})
}

// Window returns the retention window.
func (s *Sweeper) Window() time.Duration { return s.window }

// Observe advances the sweeper to now (typically an entry's event time)
// and, if a full cadence interval has elapsed since the last sweep, runs
// one. It returns the number of entries evicted by this call (0 when no
// sweep was due). Non-monotonic observations are clamped: time never runs
// backwards, it just fails to advance.
func (s *Sweeper) Observe(now time.Time) int {
	if now.IsZero() {
		return 0
	}
	if s.last.IsZero() {
		s.last = now
		return 0
	}
	if now.Sub(s.last) < s.every {
		return 0
	}
	return s.SweepAt(now)
}

// Tick is Observe on the sweeper's clock source — the wall clock in
// production. Call it on whatever heartbeat the host has (a ticker, a
// poll loop) — the cadence check makes over-calling free.
func (s *Sweeper) Tick() int { return s.Observe(s.src.Now()) }

// SweepAt unconditionally sweeps all hooks with cutoff now − window and
// resets the cadence anchor.
func (s *Sweeper) SweepAt(now time.Time) int {
	if now.Before(s.last) {
		now = s.last
	}
	s.last = now
	cutoff := now.Add(-s.window)
	n := 0
	for _, h := range s.hooks {
		n += h.ev.EvictBefore(cutoff)
	}
	s.sweeps.Add(1)
	s.evicted.Add(uint64(n))
	return n
}

// Stats reports lifetime sweep and eviction totals.
func (s *Sweeper) Stats() (sweeps, evicted uint64) {
	return s.sweeps.Load(), s.evicted.Load()
}
