// Package stream is the ingestion plane that turns the replay toolkit
// into a long-running service: a bounded-memory, tail-style log Follower
// that survives rotation and truncation, and a windowed eviction Sweeper
// that drives the TTL hooks every stateful layer exposes, so detection
// state stays O(clients active in the window) over days of uptime.
//
// The Follower is a pull-based pipeline.EntrySource: the pipeline asks
// for the next entry when it has capacity, which is what makes ingestion
// backpressure-aware for free — a slow detection stage simply stops
// pulling, the follower stops reading, and the log file itself is the
// buffer (no unbounded in-process queue to grow). Its working set is one
// read chunk plus one partial-line buffer, both reused for the life of
// the follower and bounded by the configured line limit.
package stream

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"divscrape/internal/faultinject"
	"divscrape/internal/logfmt"
)

// fiRead lets the chaos suite inject transient read failures into the
// tail; disarmed it costs one atomic load per fill.
var fiRead = faultinject.At("stream.read")

// FollowerConfig parameterises NewFollower.
type FollowerConfig struct {
	// Path is the log file to follow. The file may not exist yet (a
	// rotation target); the follower waits for it.
	Path string
	// Policy selects malformed-line handling. Live logs see truncated
	// writes during rotation, so the default is logfmt.Skip; logfmt.Strict
	// turns the first malformed line into a terminal error.
	Policy logfmt.ErrPolicy
	// PollInterval is how long to wait at end-of-file before probing for
	// new data or rotation. Default 200ms.
	PollInterval time.Duration
	// MaxLineBytes bounds a single log line; longer lines are discarded
	// as malformed. This is also the bound on the follower's partial-line
	// buffer. Default 1 MiB.
	MaxLineBytes int
	// Sleep implements the poll wait; defaults to time.Sleep. Tests
	// substitute a hook that coordinates with the writer instead of
	// sleeping.
	Sleep func(time.Duration)
	// MaxReadBackoff caps the exponential backoff between retries of a
	// failed read. A transient I/O error (an NFS hiccup, a storage
	// reset) is retried rather than killing the tail; the backoff
	// starts at PollInterval and doubles per consecutive failure up to
	// this cap. Default 5s.
	MaxReadBackoff time.Duration
	// Jitter spreads each retry backoff by ±this fraction, so a fleet of
	// followers sharing a recovering device does not retry in lockstep.
	// Zero selects 0.2; negative disables jitter entirely.
	Jitter float64
	// Rand is the jitter source in [0,1), injectable and seedable like
	// Sleep; defaults to math/rand.Float64.
	Rand func() float64
}

// FollowerStats is a point-in-time snapshot of follower progress
// counters. Safe to read concurrently with the consuming goroutine.
type FollowerStats struct {
	// Lines counts well-formed entries delivered.
	Lines uint64
	// Bytes counts raw bytes consumed from the log.
	Bytes uint64
	// Skipped counts malformed (or over-long) lines dropped under the
	// Skip policy.
	Skipped uint64
	// Rotations counts reopens onto a fresh file at the same path.
	Rotations uint64
	// Truncations counts in-place truncations handled by rewinding.
	Truncations uint64
	// Polls counts end-of-file waits.
	Polls uint64
	// ReadErrors counts transient read failures retried with backoff.
	ReadErrors uint64
}

// Follower tails a log file as a continuous logfmt entry source. It is
// single-consumer: NextInto must be called from one goroutine; Stop and
// Stats may be called from any.
type Follower struct {
	cfg    FollowerConfig
	file   *os.File
	fi     os.FileInfo // identity of the open file, for rotation checks
	offset int64       // read offset in the open file

	pending   []byte // unconsumed bytes read from the file
	parsePos  int    // start of the first unparsed byte in pending
	chunk     []byte // reused read buffer
	discard   bool   // inside an over-long line, dropping until newline
	readFails int    // consecutive failed reads, drives the retry backoff
	intern    *logfmt.Interner
	err       error

	stopped atomic.Bool

	lines       atomic.Uint64
	bytes       atomic.Uint64
	skipped     atomic.Uint64
	rotations   atomic.Uint64
	truncations atomic.Uint64
	polls       atomic.Uint64
	readErrors  atomic.Uint64
}

// NewFollower validates cfg and opens the follower. A missing file is not
// an error — the follower starts polling for it, matching `tail -F`.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("stream: follower needs a path")
	}
	if cfg.Policy == 0 {
		cfg.Policy = logfmt.Skip
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	if cfg.MaxLineBytes <= 0 {
		cfg.MaxLineBytes = 1 << 20
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.MaxReadBackoff <= 0 {
		cfg.MaxReadBackoff = 5 * time.Second
	}
	switch {
	case cfg.Jitter == 0:
		cfg.Jitter = 0.2
	case cfg.Jitter < 0:
		cfg.Jitter = 0
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Float64
	}
	f := &Follower{
		cfg:     cfg,
		pending: make([]byte, 0, 64*1024),
		intern:  logfmt.NewInterner(1 << 16),
	}
	f.openCurrent() // best effort; a missing file is polled for
	return f, nil
}

// openCurrent (re)opens the path and records the file identity. Returns
// false when the file does not exist yet.
func (f *Follower) openCurrent() bool {
	file, err := os.Open(f.cfg.Path)
	if err != nil {
		return false
	}
	fi, err := file.Stat()
	if err != nil {
		file.Close()
		return false
	}
	if f.file != nil {
		f.file.Close()
	}
	f.file, f.fi, f.offset = file, fi, 0
	return true
}

// Stop asks the follower to finish: NextInto drains the complete lines
// already buffered, then returns io.EOF instead of waiting for more.
// Safe to call from any goroutine (a signal handler, a test).
func (f *Follower) Stop() { f.stopped.Store(true) }

// Stats returns a snapshot of the progress counters.
func (f *Follower) Stats() FollowerStats {
	return FollowerStats{
		Lines:       f.lines.Load(),
		Bytes:       f.bytes.Load(),
		Skipped:     f.skipped.Load(),
		Rotations:   f.rotations.Load(),
		Truncations: f.truncations.Load(),
		Polls:       f.polls.Load(),
		ReadErrors:  f.readErrors.Load(),
	}
}

// Next returns the next entry; see NextInto.
func (f *Follower) Next() (logfmt.Entry, error) {
	var e logfmt.Entry
	if err := f.NextInto(&e); err != nil {
		return logfmt.Entry{}, err
	}
	return e, nil
}

// NextInto decodes the next well-formed entry into *e, blocking (by
// polling) until one is available. It returns io.EOF after Stop once the
// buffered complete lines are drained, or the first parse error under the
// Strict policy. Like logfmt.Reader.NextInto it is allocation-free in
// steady state: the line buffer is reused and string fields are interned.
func (f *Follower) NextInto(e *logfmt.Entry) error {
	if f.err != nil {
		return f.err
	}
	for {
		// Drain complete lines already in the buffer.
		for {
			line, ok := f.nextLine()
			if !ok {
				break
			}
			if len(line) == 0 {
				continue
			}
			err := logfmt.ParseCombinedBytes(line, e, f.intern)
			if err == nil {
				f.lines.Add(1)
				return nil
			}
			if f.cfg.Policy == logfmt.Strict {
				f.err = fmt.Errorf("stream: %s: %w", f.cfg.Path, err)
				return f.err
			}
			f.skipped.Add(1)
		}
		if err := f.fill(); err != nil {
			f.err = err
			return err
		}
	}
}

// nextLine extracts the next newline-terminated line from pending,
// compacting the buffer when it has been fully consumed. Over-long lines
// are discarded in bounded space: the buffer never grows past
// MaxLineBytes plus one read chunk.
func (f *Follower) nextLine() ([]byte, bool) {
	for {
		buf := f.pending[f.parsePos:]
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			// No complete line. Compact, then enforce the length bound on
			// the partial remainder.
			if f.parsePos > 0 {
				n := copy(f.pending, f.pending[f.parsePos:])
				f.pending = f.pending[:n]
				f.parsePos = 0
			}
			if len(f.pending) > f.cfg.MaxLineBytes {
				// The partial line is already over budget: drop what we
				// have and keep dropping until its newline arrives.
				f.pending = f.pending[:0]
				f.discard = true
			}
			return nil, false
		}
		line := buf[:nl]
		f.parsePos += nl + 1
		if f.discard {
			// This newline terminates the over-long line we were
			// discarding; count it once and resume normal parsing.
			f.discard = false
			f.skipped.Add(1)
			continue
		}
		if len(line) > f.cfg.MaxLineBytes {
			f.skipped.Add(1)
			continue
		}
		return line, true
	}
}

// fill reads more bytes from the file, handling end-of-file by checking
// for rotation or truncation and otherwise polling. It returns io.EOF
// only after Stop.
func (f *Follower) fill() error {
	if f.chunk == nil {
		f.chunk = make([]byte, 64*1024)
	}
	for {
		if f.file != nil {
			n, err := f.file.ReadAt(f.chunk, f.offset)
			if err == nil || errors.Is(err, io.EOF) {
				err = fiRead.Fire()
				if err != nil {
					n = 0 // an injected failure delivers no bytes
				}
			}
			if n > 0 {
				f.readFails = 0
				f.offset += int64(n)
				f.bytes.Add(uint64(n))
				f.pending = append(f.pending, f.chunk[:n]...)
				return nil
			}
			if err != nil && !errors.Is(err, io.EOF) {
				// Transient read failure: back off and retry rather
				// than dying — a tail that exits on the first EIO
				// defeats the point of following. Only a Stop makes
				// the error terminal, so shutdown never spins here.
				f.readErrors.Add(1)
				if f.stopped.Load() {
					return fmt.Errorf("stream: read %s: %w", f.cfg.Path, err)
				}
				f.cfg.Sleep(f.readBackoff())
				continue
			}
			f.readFails = 0
			// At end of the open file: has the path been rotated away or
			// the file truncated in place?
			switch f.checkRotation() {
			case rotated:
				// The old file is fully drained (we are at its EOF); a
				// partial last line can never complete, so drop it rather
				// than glue it to the new file's first line.
				if len(f.pending) > f.parsePos {
					f.skipped.Add(1)
				}
				f.pending, f.parsePos, f.discard = f.pending[:0], 0, false
				f.rotations.Add(1)
				f.openCurrent()
				continue
			case truncated:
				f.truncations.Add(1)
				f.offset = 0
				f.pending, f.parsePos, f.discard = f.pending[:0], 0, false
				continue
			}
		} else if f.openCurrent() {
			continue
		}
		if f.stopped.Load() {
			return io.EOF
		}
		f.polls.Add(1)
		f.cfg.Sleep(f.cfg.PollInterval)
	}
}

// readBackoff returns the pause before the next read retry: the poll
// interval doubled per consecutive failure, capped at MaxReadBackoff,
// then spread by the configured jitter. The doubling runs on the
// un-jittered base, so the cap holds across any jitter sequence.
func (f *Follower) readBackoff() time.Duration {
	d := f.cfg.PollInterval
	for i := 0; i < f.readFails && d < f.cfg.MaxReadBackoff; i++ {
		d *= 2
	}
	if d > f.cfg.MaxReadBackoff {
		d = f.cfg.MaxReadBackoff
	}
	f.readFails++
	if j := f.cfg.Jitter; j > 0 {
		d = time.Duration(float64(d) * (1 - j + 2*j*f.cfg.Rand()))
	}
	return d
}

// rotationState classifies what happened to the path while we were at
// end-of-file.
type rotationState int

const (
	unchanged rotationState = iota
	rotated
	truncated
)

// checkRotation compares the path's current identity and size against the
// open file.
func (f *Follower) checkRotation() rotationState {
	fi, err := os.Stat(f.cfg.Path)
	if err != nil {
		// The path is gone (mid-rotation); treat as rotation once a new
		// file appears. Until then, keep polling the old handle — the
		// writer may still be appending to it.
		return unchanged
	}
	if !os.SameFile(fi, f.fi) {
		return rotated
	}
	if fi.Size() < f.offset {
		return truncated
	}
	return unchanged
}

// Close releases the underlying file handle. The follower is unusable
// afterwards.
func (f *Follower) Close() error {
	if f.file != nil {
		err := f.file.Close()
		f.file = nil
		return err
	}
	return nil
}
