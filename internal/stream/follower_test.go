package stream

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"divscrape/internal/logfmt"
)

// The follower tests never sleep: the injected Sleep hook is the
// synchronisation point where the "writer" side of the scenario runs
// (append, rotate, truncate, stop), so every test is single-goroutine and
// deterministic.

var testBase = time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)

func entryLine(i int) string {
	e := logfmt.Entry{
		RemoteAddr: fmt.Sprintf("10.0.%d.%d", i/256%256, i%256),
		Identity:   "-",
		AuthUser:   "-",
		Time:       testBase.Add(time.Duration(i) * time.Second),
		Method:     "GET",
		Path:       fmt.Sprintf("/product/%d", i),
		Proto:      "HTTP/1.1",
		Status:     200,
		Bytes:      512,
		Referer:    "-",
		UserAgent:  "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/63.0.3239.84 Safari/537.36",
	}
	return string(logfmt.AppendCombined(nil, &e)) + "\n"
}

func appendFile(t *testing.T, path, content string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(content); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// newTestFollower builds a follower whose poll wait runs steps[n] on the
// n-th poll (and stops the follower once the script is exhausted, so a
// buggy follower cannot spin forever).
func newTestFollower(t *testing.T, path string, cfg FollowerConfig, steps ...func()) *Follower {
	t.Helper()
	cfg.Path = path
	n := 0
	var f *Follower
	cfg.Sleep = func(time.Duration) {
		if n < len(steps) {
			steps[n]()
		} else {
			f.Stop()
		}
		n++
	}
	f, err := NewFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// drain reads entries until io.EOF, returning the request paths seen.
func drain(t *testing.T, f *Follower) []string {
	t.Helper()
	var paths []string
	var e logfmt.Entry
	for {
		err := f.NextInto(&e)
		if errors.Is(err, io.EOF) {
			return paths
		}
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, e.Path)
		if len(paths) > 1_000_000 {
			t.Fatal("runaway follower")
		}
	}
}

func wantPaths(t *testing.T, got []string, from, to int) {
	t.Helper()
	if len(got) != to-from {
		t.Fatalf("got %d entries, want %d", len(got), to-from)
	}
	for i, p := range got {
		if want := fmt.Sprintf("/product/%d", from+i); p != want {
			t.Fatalf("entry %d path = %q, want %q", i, p, want)
		}
	}
}

func TestFollowerReadsExistingThenAppended(t *testing.T) {
	path := filepath.Join(t.TempDir(), "access.log")
	for i := 0; i < 50; i++ {
		appendFile(t, path, entryLine(i))
	}
	f := newTestFollower(t, path, FollowerConfig{},
		func() {
			// First idle poll: the writer appends a second batch.
			for i := 50; i < 80; i++ {
				appendFile(t, path, entryLine(i))
			}
		},
	)
	got := drain(t, f)
	wantPaths(t, got, 0, 80)
	st := f.Stats()
	if st.Lines != 80 || st.Rotations != 0 || st.Skipped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Polls < 2 {
		t.Errorf("polls = %d, want >= 2 (append wait + stop wait)", st.Polls)
	}
}

func TestFollowerSurvivesRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "access.log")
	for i := 0; i < 20; i++ {
		appendFile(t, path, entryLine(i))
	}
	f := newTestFollower(t, path, FollowerConfig{},
		func() {
			// Classic logrotate: rename, recreate, keep writing.
			if err := os.Rename(path, path+".1"); err != nil {
				t.Fatal(err)
			}
			for i := 20; i < 45; i++ {
				appendFile(t, path, entryLine(i))
			}
		},
	)
	got := drain(t, f)
	wantPaths(t, got, 0, 45)
	st := f.Stats()
	if st.Rotations != 1 {
		t.Errorf("rotations = %d, want 1", st.Rotations)
	}
}

// A writer mid-line when the file rotates away leaves a partial last
// line; the follower must drop it (counted as skipped) rather than glue
// it onto the new file's first line.
func TestFollowerDropsPartialLineAtRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "access.log")
	appendFile(t, path, entryLine(0))
	appendFile(t, path, strings.TrimSuffix(entryLine(1), "\n")) // no newline
	f := newTestFollower(t, path, FollowerConfig{},
		func() {
			if err := os.Rename(path, path+".1"); err != nil {
				t.Fatal(err)
			}
			appendFile(t, path, entryLine(2))
		},
	)
	got := drain(t, f)
	if len(got) != 2 || got[0] != "/product/0" || got[1] != "/product/2" {
		t.Fatalf("paths = %v, want [/product/0 /product/2]", got)
	}
	if st := f.Stats(); st.Skipped != 1 {
		t.Errorf("skipped = %d, want 1 (the torn line)", st.Skipped)
	}
}

func TestFollowerHandlesTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "access.log")
	for i := 0; i < 10; i++ {
		appendFile(t, path, entryLine(i))
	}
	f := newTestFollower(t, path, FollowerConfig{},
		func() {
			// copytruncate-style rotation: same inode, size snaps to zero.
			if err := os.Truncate(path, 0); err != nil {
				t.Fatal(err)
			}
			for i := 10; i < 15; i++ {
				appendFile(t, path, entryLine(i))
			}
		},
	)
	got := drain(t, f)
	wantPaths(t, got, 0, 15)
	if st := f.Stats(); st.Truncations != 1 {
		t.Errorf("truncations = %d, want 1", st.Truncations)
	}
}

func TestFollowerWaitsForMissingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "not-yet.log")
	f := newTestFollower(t, path, FollowerConfig{},
		func() {
			appendFile(t, path, entryLine(0)+entryLine(1))
		},
	)
	got := drain(t, f)
	wantPaths(t, got, 0, 2)
}

func TestFollowerSkipsMalformedAndOversize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "access.log")
	appendFile(t, path, entryLine(0))
	appendFile(t, path, "NOT A LOG LINE\n")
	appendFile(t, path, strings.Repeat("x", 4096)+"\n") // over the 1KiB cap below
	appendFile(t, path, entryLine(1))
	f := newTestFollower(t, path, FollowerConfig{MaxLineBytes: 1024})
	got := drain(t, f)
	if len(got) != 2 || got[0] != "/product/0" || got[1] != "/product/1" {
		t.Fatalf("paths = %v", got)
	}
	if st := f.Stats(); st.Skipped != 2 {
		t.Errorf("skipped = %d, want 2", st.Skipped)
	}
}

// The partial-line buffer is bounded: a single enormous line (larger than
// several read chunks) is discarded in streaming fashion without the
// buffer growing to hold it.
func TestFollowerBoundedBufferOnGiantLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "access.log")
	appendFile(t, path, strings.Repeat("y", 1<<20)+"\n")
	appendFile(t, path, entryLine(0))
	f := newTestFollower(t, path, FollowerConfig{MaxLineBytes: 2048})
	got := drain(t, f)
	if len(got) != 1 || got[0] != "/product/0" {
		t.Fatalf("paths = %v", got)
	}
	if st := f.Stats(); st.Skipped != 1 {
		t.Errorf("skipped = %d, want 1 (giant line counted once)", st.Skipped)
	}
	if c := cap(f.pending); c > 2048+64*1024+1024 {
		t.Errorf("pending buffer grew to %d bytes; the line bound is not enforced", c)
	}
}

func TestFollowerStrictPolicySurfacesParseError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "access.log")
	appendFile(t, path, entryLine(0))
	appendFile(t, path, "GARBAGE\n")
	f := newTestFollower(t, path, FollowerConfig{Policy: logfmt.Strict})
	var e logfmt.Entry
	if err := f.NextInto(&e); err != nil {
		t.Fatalf("first entry: %v", err)
	}
	err := f.NextInto(&e)
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("strict policy returned %v, want parse error", err)
	}
	// The error is sticky.
	if err2 := f.NextInto(&e); err2 != err {
		t.Errorf("error not sticky: %v then %v", err, err2)
	}
}

func TestFollowerConfigValidation(t *testing.T) {
	if _, err := NewFollower(FollowerConfig{}); err == nil {
		t.Error("empty path accepted")
	}
}

func TestFollowerStopDrainsBufferedLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "access.log")
	for i := 0; i < 5; i++ {
		appendFile(t, path, entryLine(i))
	}
	f := newTestFollower(t, path, FollowerConfig{})
	f.Stop() // stop before reading anything: buffered lines still arrive
	got := drain(t, f)
	wantPaths(t, got, 0, 5)
}
