package stream

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"divscrape/internal/logfmt"
)

// BenchmarkStreamIngest measures follower throughput end to end: tailing
// a log file through rotation-aware buffered reads into parsed, interned
// entries — the ingest half of `scrapedetect -follow`. Bytes/sec is the
// headline number (it is what an access log is sized in); req/s is
// derivable from the reported per-op time and the fixed entry count.
func BenchmarkStreamIngest(b *testing.B) {
	const entries = 20_000
	path := filepath.Join(b.TempDir(), "access.log")
	var sb strings.Builder
	for i := 0; i < entries; i++ {
		sb.WriteString(entryLine(i))
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		b.Fatal(err)
	}
	size := int64(len(sb.String()))

	b.ReportAllocs()
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := NewFollower(FollowerConfig{Path: path})
		if err != nil {
			b.Fatal(err)
		}
		f.Stop() // drain the file, then finish instead of tailing
		var e logfmt.Entry
		n := 0
		for {
			err := f.NextInto(&e)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		f.Close()
		if n != entries {
			b.Fatalf("drained %d entries, want %d", n, entries)
		}
	}
}

// BenchmarkStreamIngestParallel measures the chunked parallel ingest
// path: logfmt.ParallelReader splitting the same file into newline-
// aligned chunks parsed by N workers and re-sequenced. workers=1
// isolates the chunked-reader overhead vs the scanner-backed follower;
// higher worker counts show the parse fan-out (flat on a single-CPU
// host, where only the chunking win is visible).
func BenchmarkStreamIngestParallel(b *testing.B) {
	const entries = 20_000
	path := filepath.Join(b.TempDir(), "access.log")
	var sb strings.Builder
	for i := 0; i < entries; i++ {
		sb.WriteString(entryLine(i))
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		b.Fatal(err)
	}
	size := int64(len(sb.String()))

	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(size)
			// The worker count rides the record as a metric so benchjson
			// -compare keys on it, the same way the sharded pipeline
			// benchmarks report shards.
			b.ReportMetric(float64(workers), "workers")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := os.Open(path)
				if err != nil {
					b.Fatal(err)
				}
				pr := logfmt.NewParallelReader(f, logfmt.ParallelConfig{Workers: workers})
				var e logfmt.Entry
				n := 0
				for {
					err := pr.NextInto(&e)
					if errors.Is(err, io.EOF) {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
					n++
				}
				f.Close()
				if n != entries {
					b.Fatalf("drained %d entries, want %d", n, entries)
				}
			}
		})
	}
}
