package sessions

import (
	"fmt"
	"sort"
	"time"

	"divscrape/internal/statecodec"
)

// Snapshot support. A store serialises its live session set — key, last
// activity, and the session value through the Config.Snapshot hook — and
// restores it into a store built with the same configuration. Two shapes
// are provided:
//
//   - SnapshotInto / RestoreFrom: one store, e.g. a sequential pipeline's
//     detector.
//
//   - SnapshotMerged / RestorePartitioned: N key-partitioned stores (one
//     per shard) merged into a single canonical snapshot, and a canonical
//     snapshot distributed across M stores by a caller-supplied partition
//     function. Because the entry stream is sorted by (lastSeen, key),
//     the snapshot does not record which shard held which client — which
//     is exactly what lets a checkpoint taken at one shard count restore
//     at another, and what httpguard's live resharding is built on.
//
// Entries are written in ascending (lastSeen, key) order. Restoring in
// that order rebuilds a valid LRU list (stores only ever see monotonic
// touch times, so list order and lastSeen order agree); among sessions
// with equal timestamps the order is canonicalised by key, which cannot
// change behaviour — idle expiry is decided per-entry from lastSeen
// alone. The touch/eviction diagnostics counters are process-local and
// deliberately not serialised.
//
// The value hooks must be symmetric: Restore must consume exactly the
// bytes Snapshot wrote. Configuration (idle timeout, constructors) is not
// serialised and must match on both sides.

// tagStore opens a session-store block in a snapshot.
const tagStore uint16 = 0x5501

// snapshotEntry is one live session flattened for sorting.
type snapshotEntry[T any] struct {
	key      Key
	lastSeen time.Time
	value    *T
}

// entryLess orders snapshot entries canonically: by last activity, then
// by key for determinism among equal timestamps.
func entryLess[T any](a, b *snapshotEntry[T]) bool {
	if !a.lastSeen.Equal(b.lastSeen) {
		return a.lastSeen.Before(b.lastSeen)
	}
	if a.key.IP != b.key.IP {
		return a.key.IP < b.key.IP
	}
	return a.key.UAHash < b.key.UAHash
}

// SnapshotInto implements statecodec.Snapshotter. It requires the
// Config.Snapshot hook; a store built without one fails the writer.
func (s *Store[T]) SnapshotInto(w *statecodec.Writer) {
	SnapshotMerged(w, []*Store[T]{s})
}

// RestoreFrom implements statecodec.Snapshotter, replacing all live
// sessions. It requires the Config.Restore hook.
func (s *Store[T]) RestoreFrom(r *statecodec.Reader) error {
	return RestorePartitioned(r, []*Store[T]{s}, func(Key) int { return 0 })
}

// SnapshotMerged writes the union of the stores' live sessions as one
// canonical snapshot. The stores must hold disjoint key sets (the
// invariant key-partitioned shards maintain by construction); a key seen
// twice fails the writer, since a snapshot that silently dropped one of
// the duplicates would restore to a different state than it saw.
//
// Before serialising, every store's pending idle expiry is applied as of
// the latest activity across all of them. Expiry is lazy — a shard only
// evicts when it is touched — so a quiet shard can hold sessions a
// single-instance run would already have dropped; settling them here
// cannot change any future decision (expiry is decided per entry from
// its own lastSeen) but makes the snapshot canonical: the same traffic
// prefix serialises to the same bytes at any shard count.
func SnapshotMerged[T any](w *statecodec.Writer, stores []*Store[T]) {
	if len(stores) == 0 {
		w.Tag(tagStore)
		w.Uint32(0)
		return
	}
	var latest time.Time
	for _, s := range stores {
		if s.snapshotV == nil {
			w.Fail(fmt.Errorf("sessions: store has no Snapshot hook"))
			return
		}
		if s.tail != nil && s.tail.lastSeen.After(latest) {
			latest = s.tail.lastSeen
		}
	}
	total := 0
	for _, s := range stores {
		s.expire(latest)
		total += s.Len()
	}
	entries := make([]snapshotEntry[T], 0, total)
	seen := make(map[Key]struct{}, total)
	for _, s := range stores {
		for n := s.head; n != nil; n = n.next {
			if _, dup := seen[n.key]; dup {
				w.Fail(fmt.Errorf("sessions: key %v held by two stores; shards are not key-disjoint", n.key))
				return
			}
			seen[n.key] = struct{}{}
			entries = append(entries, snapshotEntry[T]{key: n.key, lastSeen: n.lastSeen, value: n.value})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entryLess(&entries[i], &entries[j]) })
	w.Tag(tagStore)
	w.Uint32(uint32(len(entries)))
	snap := stores[0].snapshotV
	for i := range entries {
		w.Uint32(entries[i].key.IP)
		w.Uint64(entries[i].key.UAHash)
		w.Time(entries[i].lastSeen)
		snap(w, entries[i].value)
	}
}

// RestorePartitioned distributes a canonical snapshot across stores: each
// session goes to stores[part(key)]. Every store is Reset first, so a
// failed restore leaves empty stores rather than a half-merged state.
// part may ignore its argument when restoring into a single store.
func RestorePartitioned[T any](r *statecodec.Reader, stores []*Store[T], part func(Key) int) error {
	for _, s := range stores {
		if s.restoreV == nil {
			return fmt.Errorf("sessions: store has no Restore hook")
		}
		s.Reset()
	}
	if err := restorePartitioned(r, stores, part); err != nil {
		// Leave empty stores rather than a half-restored session set.
		for _, s := range stores {
			s.Reset()
		}
		return err
	}
	return nil
}

func restorePartitioned[T any](r *statecodec.Reader, stores []*Store[T], part func(Key) int) error {
	if err := r.Expect(tagStore); err != nil {
		return err
	}
	// Minimum entry size: key (4+8) + timestamp (8+4).
	n := r.Count(4 + 8 + 8 + 4)
	prev := time.Time{}
	for i := 0; i < n; i++ {
		key := Key{IP: r.Uint32(), UAHash: r.Uint64()}
		last := r.Time()
		if r.Err() != nil {
			return r.Err()
		}
		if i > 0 && last.Before(prev) {
			return fmt.Errorf("%w: session entries out of order", statecodec.ErrCorrupt)
		}
		prev = last
		idx := part(key)
		if idx < 0 || idx >= len(stores) {
			return fmt.Errorf("sessions: partition function returned %d for %d stores", idx, len(stores))
		}
		if err := stores[idx].restoreEntry(key, last, r); err != nil {
			return err
		}
	}
	return r.Err()
}

// restoreEntry appends one restored session at the LRU tail. Callers feed
// entries in ascending lastSeen order, so the tail is always the right
// position.
func (s *Store[T]) restoreEntry(key Key, lastSeen time.Time, r *statecodec.Reader) error {
	if _, ok := s.m[key]; ok {
		return fmt.Errorf("%w: duplicate session key %v", statecodec.ErrCorrupt, key)
	}
	n := s.newNode()
	n.key, n.lastSeen = key, lastSeen
	if n.value == nil {
		n.value = s.newT(lastSeen)
	}
	if err := s.restoreV(r, n.value); err != nil {
		// Put the node back on the free list; its value was Recycle-reset
		// or will be dropped, and the caller resets the store anyway.
		s.recycle(n)
		return err
	}
	s.m[key] = n
	s.pushTail(n)
	return nil
}
