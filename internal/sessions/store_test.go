package sessions

import (
	"testing"
	"testing/quick"
	"time"
)

var base = time.Date(2018, 3, 11, 0, 0, 0, 0, time.UTC)

type counter struct{ n int }

func newStore(t *testing.T, idle time.Duration, onEvict func(Key, *counter)) *Store[counter] {
	t.Helper()
	s, err := NewStore(Config[counter]{
		IdleTimeout: idle,
		New:         func(time.Time) *counter { return &counter{} },
		OnEvict:     onEvict,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(Config[counter]{IdleTimeout: 0, New: func(time.Time) *counter { return nil }}); err == nil {
		t.Error("zero idle timeout accepted")
	}
	if _, err := NewStore(Config[counter]{IdleTimeout: time.Minute}); err == nil {
		t.Error("nil constructor accepted")
	}
}

func TestTouchCreatesOnce(t *testing.T) {
	s := newStore(t, 30*time.Minute, nil)
	k := KeyFor(42, "ua")
	c1, fresh := s.Touch(k, base)
	if !fresh {
		t.Error("first touch should be fresh")
	}
	c1.n++
	c2, fresh2 := s.Touch(k, base.Add(time.Minute))
	if fresh2 {
		t.Error("second touch should not be fresh")
	}
	if c2 != c1 || c2.n != 1 {
		t.Error("state not preserved across touches")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestIdleEviction(t *testing.T) {
	var evicted []Key
	s := newStore(t, 30*time.Minute, func(k Key, c *counter) {
		evicted = append(evicted, k)
	})
	a, b := KeyFor(1, "x"), KeyFor(2, "y")
	s.Touch(a, base)
	s.Touch(b, base.Add(20*time.Minute))
	// At +45m, a (idle 45m) expires; b (idle 25m) survives.
	s.Touch(KeyFor(3, "z"), base.Add(45*time.Minute))
	if s.Peek(a) != nil {
		t.Error("a should have been evicted")
	}
	if s.Peek(b) == nil {
		t.Error("b should have survived")
	}
	if len(evicted) != 1 || evicted[0] != a {
		t.Errorf("evicted = %v, want [a]", evicted)
	}
	if s.Evictions() != 1 {
		t.Errorf("Evictions = %d", s.Evictions())
	}
}

func TestTouchRefreshesIdleTimer(t *testing.T) {
	s := newStore(t, 30*time.Minute, nil)
	k := KeyFor(1, "x")
	now := base
	// Keep touching every 20 minutes for 3 hours: never evicted.
	for i := 0; i < 9; i++ {
		now = now.Add(20 * time.Minute)
		if _, fresh := s.Touch(k, now); fresh && i > 0 {
			t.Fatalf("session restarted at step %d", i)
		}
	}
}

func TestExpiredSessionRestarts(t *testing.T) {
	s := newStore(t, 30*time.Minute, nil)
	k := KeyFor(1, "x")
	c1, _ := s.Touch(k, base)
	c1.n = 99
	c2, fresh := s.Touch(k, base.Add(2*time.Hour))
	if !fresh {
		t.Error("touch after expiry should start a new session")
	}
	if c2.n != 0 {
		t.Error("expired state leaked into the new session")
	}
}

func TestFlushAll(t *testing.T) {
	var evicted int
	s := newStore(t, 30*time.Minute, func(Key, *counter) { evicted++ })
	for i := uint32(0); i < 10; i++ {
		s.Touch(IPOnlyKey(i), base)
	}
	s.FlushAll()
	if s.Len() != 0 || evicted != 10 {
		t.Errorf("after FlushAll: len=%d evicted=%d", s.Len(), evicted)
	}
}

func TestKeySemantics(t *testing.T) {
	if KeyFor(1, "ua-a") == KeyFor(1, "ua-b") {
		t.Error("different UAs behind one IP must have distinct keys")
	}
	if KeyFor(1, "ua") == KeyFor(2, "ua") {
		t.Error("different IPs must have distinct keys")
	}
	if KeyFor(1, "ua") != KeyFor(1, "ua") {
		t.Error("key must be deterministic")
	}
	if IPOnlyKey(7) != IPOnlyKey(7) || IPOnlyKey(7) == IPOnlyKey(8) {
		t.Error("IPOnlyKey semantics wrong")
	}
}

// Property: live sessions + evictions == distinct sessions started, for
// any touch pattern.
func TestSessionConservationProperty(t *testing.T) {
	f := func(ops []struct {
		IP    uint8
		Delta uint16
	}) bool {
		s, err := NewStore(Config[counter]{
			IdleTimeout: 10 * time.Minute,
			New:         func(time.Time) *counter { return &counter{} },
		})
		if err != nil {
			return false
		}
		now := base
		var started uint64
		for _, op := range ops {
			now = now.Add(time.Duration(op.Delta%1200) * time.Second)
			if _, fresh := s.Touch(IPOnlyKey(uint32(op.IP)), now); fresh {
				started++
			}
		}
		return uint64(s.Len())+s.Evictions() == started
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: eviction happens strictly in last-touch order.
func TestEvictionOrderProperty(t *testing.T) {
	var evictedAt []time.Time
	lastSeen := make(map[Key]time.Time)
	s, err := NewStore(Config[counter]{
		IdleTimeout: 5 * time.Minute,
		New:         func(time.Time) *counter { return &counter{} },
		OnEvict: func(k Key, _ *counter) {
			evictedAt = append(evictedAt, lastSeen[k])
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	now := base
	// Interleave touches over many keys with growing gaps.
	for i := 0; i < 500; i++ {
		now = now.Add(time.Duration(i%90) * time.Second)
		k := IPOnlyKey(uint32(i % 17))
		s.Touch(k, now)
		lastSeen[k] = now
	}
	s.FlushAll()
	for i := 1; i < len(evictedAt); i++ {
		if evictedAt[i].Before(evictedAt[i-1]) {
			t.Fatalf("evictions out of last-touch order at %d", i)
		}
	}
}

func BenchmarkStoreTouch(b *testing.B) {
	s, err := NewStore(Config[counter]{
		IdleTimeout: 30 * time.Minute,
		New:         func(time.Time) *counter { return &counter{} },
	})
	if err != nil {
		b.Fatal(err)
	}
	now := base
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now = now.Add(10 * time.Millisecond)
		s.Touch(IPOnlyKey(uint32(i%8192)), now)
	}
}

// Reset must return the store to its just-constructed condition in place:
// empty, zero counters, no OnEvict callbacks, and immediately reusable.
func TestResetClearsInPlace(t *testing.T) {
	evicted := 0
	s, err := NewStore(Config[int]{
		IdleTimeout: time.Minute,
		New:         func(time.Time) *int { return new(int) },
		OnEvict:     func(Key, *int) { evicted++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		s.Touch(KeyFor(uint32(i), "ua"), now)
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", s.Len())
	}
	if evicted != 0 {
		t.Errorf("Reset invoked OnEvict %d times; resets are not expiries", evicted)
	}
	if s.Evictions() != 0 {
		t.Errorf("Evictions after Reset = %d, want 0", s.Evictions())
	}
	// The store must be fully usable again, sessions starting fresh.
	v, fresh := s.Touch(KeyFor(1, "ua"), now)
	if !fresh || v == nil {
		t.Error("post-Reset Touch did not start a fresh session")
	}
}

// Evicted nodes are recycled: session churn must not allocate a new list
// node per session once the free list is primed (the state itself still
// allocates via New, by design).
func TestNodeRecycling(t *testing.T) {
	s, err := NewStore(Config[int]{
		IdleTimeout: time.Second,
		New:         func(time.Time) *int { return new(int) },
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	key := KeyFor(7, "ua")
	// Churn one key through create → expire → recreate many times: each
	// Touch evicts the previous generation's node into the free list and
	// immediately reuses it, so the list never grows beyond one node.
	for i := 0; i < 1000; i++ {
		s.Touch(key, now)
		if s.freeLen > 1 {
			t.Fatalf("free list grew to %d during churn", s.freeLen)
		}
		now = now.Add(2 * time.Second) // expires the previous generation
	}
	if s.Evictions() != 999 {
		t.Errorf("evictions = %d, want 999", s.Evictions())
	}
	s.FlushAll()
	if s.freeLen != 1 {
		t.Errorf("free list holds %d nodes after flush, want 1 (the recycled node)", s.freeLen)
	}
}

func TestSizeHintAccepted(t *testing.T) {
	s, err := NewStore(Config[int]{
		IdleTimeout: time.Minute,
		New:         func(time.Time) *int { return new(int) },
		SizeHint:    1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Error("fresh store not empty")
	}
}

func TestRangeNewestOrderAndEarlyStop(t *testing.T) {
	s := newStore(t, time.Hour, nil)
	for i := 0; i < 4; i++ {
		s.Touch(IPOnlyKey(uint32(i)), base.Add(time.Duration(i)*time.Minute))
	}
	// Re-touch key 1: it becomes the newest.
	s.Touch(IPOnlyKey(1), base.Add(10*time.Minute))

	var order []uint32
	var stamps []time.Time
	s.RangeNewest(func(k Key, last time.Time) bool {
		order = append(order, k.IP)
		stamps = append(stamps, last)
		return true
	})
	want := []uint32{1, 3, 2, 0}
	if len(order) != len(want) {
		t.Fatalf("visited %d sessions, want %d", len(order), len(want))
	}
	for i, ip := range want {
		if order[i] != ip {
			t.Fatalf("visit order = %v, want %v", order, want)
		}
		if i > 0 && stamps[i].After(stamps[i-1]) {
			t.Fatalf("lastSeen not non-increasing: %v", stamps)
		}
	}

	// Early stop: a false return ends the walk.
	n := 0
	s.RangeNewest(func(Key, time.Time) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early-stopped walk visited %d, want 2", n)
	}
}
