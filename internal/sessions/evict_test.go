package sessions

import (
	"testing"
	"time"
)

func evictStore(t *testing.T, onEvict func(Key, *int)) *Store[int] {
	t.Helper()
	s, err := NewStore(Config[int]{
		IdleTimeout: 30 * time.Minute,
		New:         func(time.Time) *int { v := 0; return &v },
		OnEvict:     onEvict,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEvictBefore(t *testing.T) {
	var evicted []Key
	s := evictStore(t, func(k Key, _ *int) { evicted = append(evicted, k) })
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

	s.Touch(IPOnlyKey(1), base)
	s.Touch(IPOnlyKey(2), base.Add(10*time.Minute))
	s.Touch(IPOnlyKey(3), base.Add(20*time.Minute))

	// Cutoff strictly after key 1's touch, at key 2's touch: Before() keeps
	// the boundary session.
	if n := s.EvictBefore(base.Add(10 * time.Minute)); n != 1 {
		t.Fatalf("EvictBefore evicted %d, want 1", n)
	}
	if len(evicted) != 1 || evicted[0] != IPOnlyKey(1) {
		t.Errorf("OnEvict saw %v, want [key 1]", evicted)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if s.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", s.Evictions())
	}

	// Sweeping again at the same cutoff is idempotent.
	if n := s.EvictBefore(base.Add(10 * time.Minute)); n != 0 {
		t.Errorf("repeat EvictBefore evicted %d, want 0", n)
	}

	// A swept key restarts as a fresh session.
	_, fresh := s.Touch(IPOnlyKey(1), base.Add(25*time.Minute))
	if !fresh {
		t.Error("evicted key did not restart as a fresh session")
	}
}

// Proactive EvictBefore at cutoff = now − IdleTimeout must be invisible to
// subsequent Touch calls: it evicts exactly the sessions lazy expiry would
// have dropped at the next Touch.
func TestEvictBeforeMatchesLazyExpiry(t *testing.T) {
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	type touch struct {
		key Key
		at  time.Time
	}
	touches := []touch{
		{IPOnlyKey(1), base},
		{IPOnlyKey(2), base.Add(5 * time.Minute)},
		{IPOnlyKey(1), base.Add(12 * time.Minute)},
		{IPOnlyKey(3), base.Add(50 * time.Minute)}, // expires 1 and 2 lazily
		{IPOnlyKey(1), base.Add(55 * time.Minute)},
		{IPOnlyKey(2), base.Add(90 * time.Minute)},
	}

	run := func(sweep bool) []bool {
		s := evictStore(t, nil)
		var freshSeq []bool
		for _, tc := range touches {
			if sweep {
				s.EvictBefore(tc.at.Add(-30 * time.Minute))
			}
			_, fresh := s.Touch(tc.key, tc.at)
			freshSeq = append(freshSeq, fresh)
		}
		return freshSeq
	}

	lazy, swept := run(false), run(true)
	for i := range lazy {
		if lazy[i] != swept[i] {
			t.Fatalf("touch %d: fresh=%v with sweeps, %v without", i, swept[i], lazy[i])
		}
	}
}
