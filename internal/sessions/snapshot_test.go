package sessions

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"divscrape/internal/statecodec"
)

// snapState is a session value with a serialisable payload.
type snapState struct{ hits uint64 }

func snapStore(t *testing.T, idle time.Duration) *Store[snapState] {
	t.Helper()
	s, err := NewStore(Config[snapState]{
		IdleTimeout: idle,
		New:         func(time.Time) *snapState { return &snapState{} },
		Snapshot:    func(w *statecodec.Writer, v *snapState) { w.Uint64(v.hits) },
		Restore: func(r *statecodec.Reader, v *snapState) error {
			v.hits = r.Uint64()
			return r.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSnapshotRoundTripPreservesSessions(t *testing.T) {
	s := snapStore(t, 30*time.Minute)
	for i := 0; i < 10; i++ {
		st, _ := s.Touch(KeyFor(uint32(i), "ua"), base.Add(time.Duration(i)*time.Minute))
		st.hits = uint64(i * 7)
	}

	w := statecodec.NewWriter()
	s.SnapshotInto(w)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	restored := snapStore(t, 30*time.Minute)
	if err := restored.RestoreFrom(statecodec.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 10 {
		t.Fatalf("Len = %d, want 10", restored.Len())
	}
	for i := 0; i < 10; i++ {
		st := restored.Peek(KeyFor(uint32(i), "ua"))
		if st == nil {
			t.Fatalf("session %d missing after restore", i)
		}
		if st.hits != uint64(i*7) {
			t.Errorf("session %d hits = %d, want %d", i, st.hits, i*7)
		}
	}

	// The restored LRU order must drive the same idle expiry: touching at
	// base+40m expires exactly the sessions idle past 30 minutes.
	restored.Touch(KeyFor(99, "ua"), base.Add(40*time.Minute))
	if got := restored.Evictions(); got != 10 {
		t.Errorf("evictions after restore = %d, want 10", got)
	}
}

func TestSnapshotIsDeterministic(t *testing.T) {
	build := func() []byte {
		s := snapStore(t, time.Hour)
		// Equal timestamps force the canonical key tie-break.
		for i := 0; i < 6; i++ {
			st, _ := s.Touch(KeyFor(uint32(100-i), "ua"), base)
			st.hits = uint64(i)
		}
		w := statecodec.NewWriter()
		s.SnapshotInto(w)
		return append([]byte(nil), w.Bytes()...)
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Error("same sessions serialised to different bytes")
	}
}

func TestSnapshotMergedEqualsPartitionedRestore(t *testing.T) {
	part := func(k Key) int { return int(k.IP % 3) }

	// Build three key-disjoint stores, as shards would.
	shards := make([]*Store[snapState], 3)
	for i := range shards {
		shards[i] = snapStore(t, time.Hour)
	}
	for i := 0; i < 30; i++ {
		k := KeyFor(uint32(i), "ua")
		st, _ := shards[part(k)].Touch(k, base.Add(time.Duration(i)*time.Second))
		st.hits = uint64(i)
	}

	w := statecodec.NewWriter()
	SnapshotMerged(w, shards)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	// Restore across a *different* shard count.
	out := make([]*Store[snapState], 5)
	for i := range out {
		out[i] = snapStore(t, time.Hour)
	}
	part5 := func(k Key) int { return int(k.IP % 5) }
	if err := RestorePartitioned(statecodec.NewReader(w.Bytes()), out, part5); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range out {
		total += s.Len()
	}
	if total != 30 {
		t.Fatalf("restored %d sessions, want 30", total)
	}
	for i := 0; i < 30; i++ {
		k := KeyFor(uint32(i), "ua")
		st := out[part5(k)].Peek(k)
		if st == nil || st.hits != uint64(i) {
			t.Errorf("session %d misplaced or lost after repartition", i)
		}
	}
}

func TestSnapshotMergedRejectsOverlappingStores(t *testing.T) {
	a, b := snapStore(t, time.Hour), snapStore(t, time.Hour)
	k := KeyFor(7, "ua")
	a.Touch(k, base)
	b.Touch(k, base.Add(time.Second))
	w := statecodec.NewWriter()
	SnapshotMerged(w, []*Store[snapState]{a, b})
	if w.Err() == nil {
		t.Error("overlapping key sets accepted")
	}

	// The duplicate must also be caught when another session's timestamp
	// falls between the two copies, separating them in sorted order.
	a2, b2 := snapStore(t, time.Hour), snapStore(t, time.Hour)
	a2.Touch(k, base)
	a2.Touch(KeyFor(8, "other"), base.Add(time.Second))
	b2.Touch(k, base.Add(2*time.Second))
	w2 := statecodec.NewWriter()
	SnapshotMerged(w2, []*Store[snapState]{a2, b2})
	if w2.Err() == nil {
		t.Error("non-adjacent duplicate key accepted")
	}
}

func TestSnapshotWithoutHooksFails(t *testing.T) {
	s := newStore(t, time.Hour, nil) // no Snapshot/Restore hooks
	s.Touch(KeyFor(1, "x"), base)
	w := statecodec.NewWriter()
	s.SnapshotInto(w)
	if w.Err() == nil {
		t.Error("snapshot without hook accepted")
	}
	if err := s.RestoreFrom(statecodec.NewReader(nil)); err == nil {
		t.Error("restore without hook accepted")
	}
}

func TestRestoreRejectsCorruptInput(t *testing.T) {
	s := snapStore(t, time.Hour)
	for i := 0; i < 4; i++ {
		s.Touch(KeyFor(uint32(i), "ua"), base.Add(time.Duration(i)*time.Second))
	}
	w := statecodec.NewWriter()
	s.SnapshotInto(w)
	good := w.Bytes()

	for cut := 0; cut < len(good); cut += 3 {
		fresh := snapStore(t, time.Hour)
		if err := fresh.RestoreFrom(statecodec.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if fresh.Len() != 0 {
			t.Fatalf("failed restore left %d sessions", fresh.Len())
		}
	}
}

func TestRestoreRejectsDuplicateKeys(t *testing.T) {
	w := statecodec.NewWriter()
	w.Tag(tagStore)
	w.Uint32(2)
	for i := 0; i < 2; i++ { // same key twice
		w.Uint32(9)
		w.Uint64(1234)
		w.Time(base)
		w.Uint64(0) // value payload
	}
	s := snapStore(t, time.Hour)
	err := s.RestoreFrom(statecodec.NewReader(w.Bytes()))
	if !errors.Is(err, statecodec.ErrCorrupt) {
		t.Errorf("duplicate keys: err = %v", err)
	}
}

func TestRestoreRejectsOutOfOrderEntries(t *testing.T) {
	w := statecodec.NewWriter()
	w.Tag(tagStore)
	w.Uint32(2)
	w.Uint32(1)
	w.Uint64(1)
	w.Time(base.Add(time.Hour))
	w.Uint64(0)
	w.Uint32(2)
	w.Uint64(2)
	w.Time(base) // earlier than the previous entry
	w.Uint64(0)
	s := snapStore(t, time.Hour)
	if err := s.RestoreFrom(statecodec.NewReader(w.Bytes())); !errors.Is(err, statecodec.ErrCorrupt) {
		t.Errorf("out-of-order entries: err = %v", err)
	}
}

// --- Recycle × FlushAll × free-list bound interaction ---------------------

func recycleStore(t *testing.T) *Store[snapState] {
	t.Helper()
	s, err := NewStore(Config[snapState]{
		IdleTimeout: 30 * time.Minute,
		New:         func(time.Time) *snapState { return &snapState{} },
		Recycle:     func(v *snapState) { v.hits = 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFlushAllRecyclesUpToFreeListBound drives more live sessions than
// the free list may hold, flushes them all, and checks the bound: at most
// maxFreeNodes nodes are retained, every retained value is Recycle-reset,
// and the store remains fully usable afterwards.
func TestFlushAllRecyclesUpToFreeListBound(t *testing.T) {
	s := recycleStore(t)
	total := maxFreeNodes + 512
	for i := 0; i < total; i++ {
		st, _ := s.Touch(KeyFor(uint32(i), "ua"), base)
		st.hits = uint64(i + 1)
	}
	if s.Len() != total {
		t.Fatalf("Len = %d, want %d", s.Len(), total)
	}
	s.FlushAll()
	if s.Len() != 0 {
		t.Fatalf("Len after FlushAll = %d", s.Len())
	}
	if s.freeLen != maxFreeNodes {
		t.Fatalf("free list holds %d nodes, want bound %d", s.freeLen, maxFreeNodes)
	}
	// Nodes beyond the bound must have dropped their values for the GC;
	// nodes within it must carry Recycle-reset values.
	withValue := 0
	for n := s.free; n != nil; n = n.next {
		if n.value != nil {
			withValue++
			if n.value.hits != 0 {
				t.Fatal("recycled value not reset")
			}
		}
	}
	if withValue != maxFreeNodes {
		t.Errorf("%d free nodes carry values, want %d", withValue, maxFreeNodes)
	}
	// New sessions drain the free list before allocating.
	st, fresh := s.Touch(KeyFor(1, "reborn"), base.Add(time.Hour))
	if !fresh || st.hits != 0 {
		t.Error("session after flush not fresh")
	}
	if s.freeLen != maxFreeNodes-1 {
		t.Errorf("freeLen = %d after one Touch, want %d", s.freeLen, maxFreeNodes-1)
	}
}

// TestFlushAllWithoutRecycleDropsValues pins the contrasting behaviour:
// without a Recycle hook the free list keeps nodes but never values.
func TestFlushAllWithoutRecycleDropsValues(t *testing.T) {
	s := newStore(t, 30*time.Minute, nil)
	for i := 0; i < 64; i++ {
		s.Touch(KeyFor(uint32(i), "ua"), base)
	}
	s.FlushAll()
	if s.freeLen != 64 {
		t.Fatalf("freeLen = %d, want 64", s.freeLen)
	}
	for n := s.free; n != nil; n = n.next {
		if n.value != nil {
			t.Fatal("free node kept a value without a Recycle hook")
		}
	}
}

// TestTouchAfterResetReusesRecycledNodes proves Reset pushes live nodes
// through the same Recycle path eviction uses, and that the next replay's
// sessions are built from those recycled nodes (no fresh allocations for
// the node or, with a Recycle hook, the value).
func TestTouchAfterResetReusesRecycledNodes(t *testing.T) {
	s := recycleStore(t)
	values := make(map[*snapState]bool)
	for i := 0; i < 100; i++ {
		st, _ := s.Touch(KeyFor(uint32(i), "ua"), base)
		st.hits = 99
		values[st] = true
	}
	s.Reset()
	if s.Len() != 0 || s.freeLen != 100 {
		t.Fatalf("after Reset: Len=%d freeLen=%d", s.Len(), s.freeLen)
	}
	reused := 0
	for i := 0; i < 100; i++ {
		st, fresh := s.Touch(KeyFor(uint32(1000+i), "ua"), base.Add(time.Minute))
		if !fresh {
			t.Fatal("post-Reset touch not fresh")
		}
		if st.hits != 0 {
			t.Fatal("recycled value not reset by Reset")
		}
		if values[st] {
			reused++
		}
	}
	if reused != 100 {
		t.Errorf("reused %d recycled values, want 100", reused)
	}
	if s.freeLen != 0 {
		t.Errorf("freeLen = %d after reusing all nodes", s.freeLen)
	}
}

// TestRecycleFlushResetInterleaved stresses the three paths against each
// other across several generations; the invariant is conservation: every
// session is observable exactly once per generation and the free list
// never exceeds its bound.
func TestRecycleFlushResetInterleaved(t *testing.T) {
	s := recycleStore(t)
	now := base
	for gen := 0; gen < 5; gen++ {
		n := 2000 + gen*1500 // crosses maxFreeNodes by the third generation
		for i := 0; i < n; i++ {
			st, fresh := s.Touch(KeyFor(uint32(i), fmt.Sprintf("gen%d", gen)), now)
			if !fresh {
				t.Fatalf("gen %d: session %d not fresh", gen, i)
			}
			if st.hits != 0 {
				t.Fatalf("gen %d: dirty recycled value", gen)
			}
			st.hits++
		}
		if s.Len() != n {
			t.Fatalf("gen %d: Len = %d, want %d", gen, s.Len(), n)
		}
		if gen%2 == 0 {
			s.FlushAll()
		} else {
			s.Reset()
		}
		if s.freeLen > maxFreeNodes {
			t.Fatalf("gen %d: free list %d exceeds bound", gen, s.freeLen)
		}
		now = now.Add(time.Hour)
	}
}
