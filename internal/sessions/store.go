// Package sessions provides streaming sessionization: per-client state
// keyed by (IP, User-Agent) with idle-timeout eviction, the standard way
// web analytics reconstructs sessions from access logs. Both detectors
// build on Store to bound their memory while processing arbitrarily long
// logs; eviction order is maintained in an intrusive LRU list so the
// amortised cost per request is O(1).
//
// Stores are durable: with per-value Snapshot/Restore hooks configured,
// a store serialises its live session set through internal/statecodec,
// and key-partitioned shard sets merge into (and restore from) one
// canonical, partition-agnostic snapshot — see snapshot.go.
package sessions

import (
	"fmt"
	"time"

	"divscrape/internal/fnvhash"
	"divscrape/internal/statecodec"
)

// Key identifies a client stream within a log.
type Key struct {
	// IP is the numeric client address.
	IP uint32
	// UAHash is a 64-bit hash of the User-Agent string, distinguishing
	// distinct agents behind one NAT address.
	UAHash uint64
}

// KeyFor builds a Key from an address and User-Agent string. The hash is
// FNV-1a computed inline, so building a key performs no allocation.
func KeyFor(ip uint32, userAgent string) Key {
	return Key{IP: ip, UAHash: fnvhash.String64(userAgent)}
}

// IPOnlyKey builds a Key that aggregates all agents behind one address;
// used for per-IP state such as rate limits and UA-rotation tracking.
func IPOnlyKey(ip uint32) Key {
	return Key{IP: ip}
}

// Store tracks per-key state of type T with idle eviction. The zero value
// is unusable; construct with NewStore. Not safe for concurrent use.
type Store[T any] struct {
	idle      time.Duration
	newT      func(now time.Time) *T
	onEvict   func(Key, *T)
	reuse     func(*T)
	snapshotV func(*statecodec.Writer, *T)
	restoreV  func(*statecodec.Reader, *T) error
	m         map[Key]*node[T]
	head      *node[T] // least recently touched
	tail      *node[T] // most recently touched
	free      *node[T] // evicted nodes recycled into new sessions
	freeLen   int
	touches   uint64
	evicts    uint64
}

// maxFreeNodes bounds the recycled-node list so a burst of short sessions
// (or an address-rotating flood) cannot pin memory forever — with a
// Recycle hook the retained nodes carry live session state, so the bound
// is also the ceiling on state kept for reuse.
const maxFreeNodes = 4096

type node[T any] struct {
	key        Key
	value      *T
	lastSeen   time.Time
	prev, next *node[T]
}

// Config parameterises NewStore.
type Config[T any] struct {
	// IdleTimeout evicts sessions with no activity for this long. The
	// conventional web-analytics value is 30 minutes. Must be positive.
	IdleTimeout time.Duration
	// New constructs the state for a session first seen at now. Required.
	New func(now time.Time) *T
	// OnEvict, if set, observes sessions as they expire (used to fold
	// session summaries into population baselines).
	OnEvict func(Key, *T)
	// Recycle, if set, resets an evicted session value in place so it can
	// back a future session; the store then reuses values through its free
	// list instead of dropping them for the garbage collector, making
	// session churn (eviction + fresh client) allocation-free in steady
	// state. Recycle runs after OnEvict and must return the value to the
	// state New would have produced, minus anything New derives from its
	// timestamp argument.
	Recycle func(*T)
	// Snapshot, if set, serialises one session value into a snapshot; see
	// SnapshotInto. Restore must read back exactly what Snapshot wrote.
	Snapshot func(w *statecodec.Writer, v *T)
	// Restore, if set, fills a freshly constructed session value from a
	// snapshot; see RestoreFrom. It must return an error (never panic) on
	// corrupt input.
	Restore func(r *statecodec.Reader, v *T) error
	// SizeHint pre-sizes the session map for the expected number of
	// concurrently live sessions; zero selects 1024.
	SizeHint int
}

// NewStore validates cfg and returns an empty store.
func NewStore[T any](cfg Config[T]) (*Store[T], error) {
	if cfg.IdleTimeout <= 0 {
		return nil, fmt.Errorf("sessions: IdleTimeout must be positive, got %v", cfg.IdleTimeout)
	}
	if cfg.New == nil {
		return nil, fmt.Errorf("sessions: New constructor is required")
	}
	hint := cfg.SizeHint
	if hint <= 0 {
		hint = 1024
	}
	return &Store[T]{
		idle:      cfg.IdleTimeout,
		newT:      cfg.New,
		onEvict:   cfg.OnEvict,
		reuse:     cfg.Recycle,
		snapshotV: cfg.Snapshot,
		restoreV:  cfg.Restore,
		m:         make(map[Key]*node[T], hint),
	}, nil
}

// Touch returns the state for key as of now, creating it if absent or if
// the previous session expired. The second result reports whether a new
// session started. Touch also expires any sessions idle at now.
func (s *Store[T]) Touch(key Key, now time.Time) (*T, bool) {
	s.expire(now)
	s.touches++
	if n, ok := s.m[key]; ok {
		n.lastSeen = now
		s.moveToTail(n)
		return n.value, false
	}
	n := s.newNode()
	n.key, n.lastSeen = key, now
	// A recycled node may carry a Recycle-reset value; reuse it instead of
	// constructing a fresh one.
	if n.value == nil {
		n.value = s.newT(now)
	}
	s.m[key] = n
	s.pushTail(n)
	return n.value, true
}

// newNode pops a recycled node or allocates one.
func (s *Store[T]) newNode() *node[T] {
	if s.free == nil {
		return new(node[T])
	}
	n := s.free
	s.free = n.next
	s.freeLen--
	n.next = nil
	return n
}

// recycle clears a detached node and pushes it on the free list. With a
// Recycle hook the session value rides along, reset for reuse; without one
// the value is dropped for the collector.
func (s *Store[T]) recycle(n *node[T]) {
	n.key, n.lastSeen, n.prev = Key{}, time.Time{}, nil
	if s.freeLen >= maxFreeNodes {
		n.value = nil
		return
	}
	if s.reuse != nil && n.value != nil {
		s.reuse(n.value)
	} else {
		n.value = nil
	}
	n.next = s.free
	s.free = n
	s.freeLen++
}

// Peek returns the state for key without refreshing its idle timer, or
// nil when absent.
func (s *Store[T]) Peek(key Key) *T {
	if n, ok := s.m[key]; ok {
		return n.value
	}
	return nil
}

// Len returns the number of live sessions.
func (s *Store[T]) Len() int { return len(s.m) }

// Evictions returns the number of sessions expired so far.
func (s *Store[T]) Evictions() uint64 { return s.evicts }

// FlushAll evicts every live session (end of log), invoking OnEvict.
func (s *Store[T]) FlushAll() {
	for s.head != nil {
		s.evictHead()
	}
}

// EvictBefore evicts every session last touched before cutoff, invoking
// OnEvict, and returns the number evicted. It is the proactive form of the
// lazy per-Touch expiry: a sweeper calls it on a wall-clock cadence so
// stores whose keys have gone quiet shed their state without waiting for
// the next Touch. Evicting with cutoff ≤ now − IdleTimeout removes only
// sessions the next Touch at now would have expired anyway, so such
// sweeps never change observable session state — the eviction-equivalence
// property the pipeline's metamorphic test pins down.
func (s *Store[T]) EvictBefore(cutoff time.Time) int {
	n := 0
	for s.head != nil && s.head.lastSeen.Before(cutoff) {
		s.evictHead()
		n++
	}
	return n
}

// RangeNewest walks live sessions from most to least recently touched
// and stops when fn returns false. The LRU list keeps entries in
// last-touch order, so a caller collecting "sessions active since T" —
// the cluster plane's session digests — visits exactly the active ones
// and stops at the first stale entry instead of scanning the store.
func (s *Store[T]) RangeNewest(fn func(key Key, lastSeen time.Time) bool) {
	for n := s.tail; n != nil; n = n.prev {
		if !fn(n.key, n.lastSeen) {
			return
		}
	}
}

// expire evicts sessions idle longer than the timeout as of now. The LRU
// list keeps entries in last-touch order, so expiry pops from the head.
func (s *Store[T]) expire(now time.Time) {
	deadline := now.Add(-s.idle)
	for s.head != nil && s.head.lastSeen.Before(deadline) {
		s.evictHead()
	}
}

func (s *Store[T]) evictHead() {
	n := s.head
	s.unlink(n)
	delete(s.m, n.key)
	s.evicts++
	if s.onEvict != nil {
		s.onEvict(n.key, n.value)
	}
	s.recycle(n)
}

// Reset drops every live session in place, returning the store to its
// just-constructed condition without rebuilding the map (buckets stay
// allocated, so the next log replay does not re-grow it) and without
// invoking OnEvict — a reset is an operator action, not session expiry.
func (s *Store[T]) Reset() {
	for n := s.head; n != nil; {
		next := n.next
		s.recycle(n)
		n = next
	}
	clear(s.m)
	s.head, s.tail = nil, nil
	s.touches, s.evicts = 0, 0
}

func (s *Store[T]) pushTail(n *node[T]) {
	n.prev = s.tail
	n.next = nil
	if s.tail != nil {
		s.tail.next = n
	}
	s.tail = n
	if s.head == nil {
		s.head = n
	}
}

func (s *Store[T]) unlink(n *node[T]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *Store[T]) moveToTail(n *node[T]) {
	if s.tail == n {
		return
	}
	s.unlink(n)
	s.pushTail(n)
}
