// Package ratelimit implements clock-injectable rate measurement and
// admission primitives: token bucket, sliding-window counters and GCRA.
// The commercial-style detector uses them to judge per-client request
// rates; the workload generator uses them in tests to validate actor
// pacing. All types take explicit time.Time arguments — there is no hidden
// wall clock — so simulated traces replay deterministically.
package ratelimit

import (
	"fmt"
	"time"
)

// TokenBucket admits events at a sustained rate with a configurable burst.
// The zero value is unusable; construct with NewTokenBucket.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	seen   bool
}

// NewTokenBucket returns a bucket admitting rate events/second with the
// given burst capacity. The bucket starts full.
func NewTokenBucket(rate, burst float64) (*TokenBucket, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("ratelimit: rate must be positive, got %g", rate)
	}
	if burst < 1 {
		return nil, fmt.Errorf("ratelimit: burst must be at least 1, got %g", burst)
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}, nil
}

// Allow reports whether one event at time now conforms, consuming a token
// if so.
func (b *TokenBucket) Allow(now time.Time) bool {
	return b.AllowN(now, 1)
}

// AllowN reports whether n simultaneous events conform.
func (b *TokenBucket) AllowN(now time.Time, n float64) bool {
	b.refill(now)
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// Tokens returns the available tokens as of now, without consuming.
func (b *TokenBucket) Tokens(now time.Time) float64 {
	b.refill(now)
	return b.tokens
}

func (b *TokenBucket) refill(now time.Time) {
	if !b.seen {
		b.seen = true
		b.last = now
		return
	}
	dt := now.Sub(b.last).Seconds()
	if dt <= 0 {
		return
	}
	b.tokens += dt * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// SlidingWindow counts events over a trailing window using fixed sub-bucket
// rotation, giving an O(1) approximate count with bounded memory. With k
// sub-buckets the count error is at most one sub-bucket's worth of events.
type SlidingWindow struct {
	window  time.Duration
	slot    time.Duration
	buckets []uint64
	head    int       // index of the bucket covering slotStart
	start   time.Time // start of the head slot
	seen    bool
	total   uint64
}

// NewSlidingWindow returns a counter over the given window split into slots
// sub-buckets (minimum 2).
func NewSlidingWindow(window time.Duration, slots int) (*SlidingWindow, error) {
	if window <= 0 {
		return nil, fmt.Errorf("ratelimit: window must be positive, got %v", window)
	}
	if slots < 2 {
		return nil, fmt.Errorf("ratelimit: need at least 2 slots, got %d", slots)
	}
	return &SlidingWindow{
		window:  window,
		slot:    window / time.Duration(slots),
		buckets: make([]uint64, slots),
	}, nil
}

// Observe counts one event at time now and returns the windowed count
// including this event.
func (w *SlidingWindow) Observe(now time.Time) uint64 {
	w.advance(now)
	w.buckets[w.head]++
	w.total++
	return w.total
}

// Count returns the approximate number of events in the trailing window as
// of now.
func (w *SlidingWindow) Count(now time.Time) uint64 {
	w.advance(now)
	return w.total
}

// Rate returns the approximate events/second over the trailing window.
func (w *SlidingWindow) Rate(now time.Time) float64 {
	return float64(w.Count(now)) / w.window.Seconds()
}

// Reset clears the window in place, keeping the bucket array, so recycled
// per-client state can back a fresh session without allocating.
func (w *SlidingWindow) Reset() {
	for i := range w.buckets {
		w.buckets[i] = 0
	}
	w.head, w.start, w.seen, w.total = 0, time.Time{}, false, 0
}

func (w *SlidingWindow) advance(now time.Time) {
	if !w.seen {
		w.seen = true
		w.start = now.Truncate(w.slot)
		return
	}
	steps := int(now.Sub(w.start) / w.slot)
	if steps <= 0 {
		return
	}
	if steps >= len(w.buckets) {
		for i := range w.buckets {
			w.buckets[i] = 0
		}
		w.total = 0
		w.head = 0
		w.start = now.Truncate(w.slot)
		return
	}
	for i := 0; i < steps; i++ {
		w.head = (w.head + 1) % len(w.buckets)
		w.total -= w.buckets[w.head]
		w.buckets[w.head] = 0
	}
	w.start = w.start.Add(time.Duration(steps) * w.slot)
}

// GCRA implements the Generic Cell Rate Algorithm (virtual scheduling
// form): an event conforms if it does not arrive more than the burst
// tolerance ahead of its theoretical arrival time. Functionally equivalent
// to a token bucket but stores a single timestamp, making it the cheapest
// per-client limiter when tracking hundreds of thousands of clients.
type GCRA struct {
	increment time.Duration // emission interval T = 1/rate
	tolerance time.Duration // burst tolerance tau
	tat       time.Time     // theoretical arrival time
	seen      bool
}

// NewGCRA returns a limiter admitting rate events/second with a burst of
// approximately burst events.
func NewGCRA(rate float64, burst float64) (*GCRA, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("ratelimit: rate must be positive, got %g", rate)
	}
	if burst < 1 {
		return nil, fmt.Errorf("ratelimit: burst must be at least 1, got %g", burst)
	}
	inc := time.Duration(float64(time.Second) / rate)
	return &GCRA{
		increment: inc,
		tolerance: time.Duration(float64(inc) * (burst - 1)),
	}, nil
}

// Reset returns the limiter to its just-constructed state (rate and burst
// are kept), so recycled per-client state can back a fresh session.
func (g *GCRA) Reset() {
	g.tat, g.seen = time.Time{}, false
}

// Allow reports whether an event at time now conforms.
func (g *GCRA) Allow(now time.Time) bool {
	if !g.seen {
		g.seen = true
		g.tat = now.Add(g.increment)
		return true
	}
	if now.Before(g.tat.Add(-g.tolerance)) {
		return false
	}
	if g.tat.Before(now) {
		g.tat = now
	}
	g.tat = g.tat.Add(g.increment)
	return true
}
