package ratelimit

import (
	"fmt"

	"divscrape/internal/statecodec"
)

// Snapshot support: the limiters serialise only their dynamic state
// (tokens, timestamps, window counts); rates, bursts and window shapes
// are configuration and must match between the snapshotting and the
// restoring instance. SlidingWindow verifies the bucket count and rejects
// a mismatched snapshot rather than silently reinterpreting it.

// Section tags.
const (
	tagTokenBucket   uint16 = 0x5201
	tagSlidingWindow uint16 = 0x5202
	tagGCRA          uint16 = 0x5203
)

// SnapshotInto implements statecodec.Snapshotter.
func (b *TokenBucket) SnapshotInto(w *statecodec.Writer) {
	w.Tag(tagTokenBucket)
	w.Float64(b.tokens)
	w.Time(b.last)
	w.Bool(b.seen)
}

// RestoreFrom implements statecodec.Snapshotter.
func (b *TokenBucket) RestoreFrom(r *statecodec.Reader) error {
	if err := r.Expect(tagTokenBucket); err != nil {
		return err
	}
	b.tokens = r.Float64()
	b.last = r.Time()
	b.seen = r.Bool()
	return r.Err()
}

// SnapshotInto implements statecodec.Snapshotter.
func (w *SlidingWindow) SnapshotInto(sw *statecodec.Writer) {
	sw.Tag(tagSlidingWindow)
	sw.Uint32(uint32(len(w.buckets)))
	for _, c := range w.buckets {
		sw.Uint64(c)
	}
	sw.Int(w.head)
	sw.Time(w.start)
	sw.Bool(w.seen)
}

// RestoreFrom implements statecodec.Snapshotter. The window total is
// recomputed from the restored buckets so the rotation invariant holds
// even against a corrupt payload, and the bucket count must match the
// receiver's configuration.
func (w *SlidingWindow) RestoreFrom(r *statecodec.Reader) error {
	if err := r.Expect(tagSlidingWindow); err != nil {
		return err
	}
	n := r.Count(8)
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(w.buckets) {
		return fmt.Errorf("%w: sliding window has %d slots, snapshot has %d",
			statecodec.ErrCorrupt, len(w.buckets), n)
	}
	w.total = 0
	for i := 0; i < n; i++ {
		w.buckets[i] = r.Uint64()
		w.total += w.buckets[i]
	}
	w.head = r.Int()
	w.start = r.Time()
	w.seen = r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if w.head < 0 || w.head >= len(w.buckets) {
		return fmt.Errorf("%w: sliding window head %d out of range", statecodec.ErrCorrupt, w.head)
	}
	return nil
}

// SnapshotInto implements statecodec.Snapshotter.
func (g *GCRA) SnapshotInto(w *statecodec.Writer) {
	w.Tag(tagGCRA)
	w.Time(g.tat)
	w.Bool(g.seen)
}

// RestoreFrom implements statecodec.Snapshotter.
func (g *GCRA) RestoreFrom(r *statecodec.Reader) error {
	if err := r.Expect(tagGCRA); err != nil {
		return err
	}
	g.tat = r.Time()
	g.seen = r.Bool()
	return r.Err()
}
