package ratelimit

import (
	"testing"
	"testing/quick"
	"time"
)

var base = time.Date(2018, 3, 11, 0, 0, 0, 0, time.UTC)

func TestTokenBucketValidation(t *testing.T) {
	if _, err := NewTokenBucket(0, 10); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewTokenBucket(1, 0); err == nil {
		t.Error("zero burst accepted")
	}
}

func TestTokenBucketBurstThenRefill(t *testing.T) {
	b, err := NewTokenBucket(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	now := base
	// The bucket starts full: five instant events pass, the sixth fails.
	for i := 0; i < 5; i++ {
		if !b.Allow(now) {
			t.Fatalf("event %d rejected within burst", i)
		}
	}
	if b.Allow(now) {
		t.Error("burst exceeded but event admitted")
	}
	// After two seconds, two tokens return.
	now = now.Add(2 * time.Second)
	if !b.Allow(now) || !b.Allow(now) {
		t.Error("refilled tokens not granted")
	}
	if b.Allow(now) {
		t.Error("admitted more than the refill")
	}
}

func TestTokenBucketConformanceProperty(t *testing.T) {
	// Over any event pattern, admissions in a window never exceed
	// burst + rate*window.
	f := func(gapsMs []uint16) bool {
		b, err := NewTokenBucket(2, 10)
		if err != nil {
			return false
		}
		now := base
		admitted := 0
		var elapsed time.Duration
		for _, g := range gapsMs {
			gap := time.Duration(g%2000) * time.Millisecond
			now = now.Add(gap)
			elapsed += gap
			if b.Allow(now) {
				admitted++
			}
		}
		bound := 10 + int(elapsed.Seconds()*2) + 1
		return admitted <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTokenBucketTokensReadOnly(t *testing.T) {
	b, err := NewTokenBucket(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Tokens(base); got != 3 {
		t.Errorf("fresh bucket has %g tokens, want 3", got)
	}
	b.AllowN(base, 2)
	if got := b.Tokens(base); got != 1 {
		t.Errorf("after AllowN(2): %g tokens, want 1", got)
	}
	if b.AllowN(base, 2) {
		t.Error("AllowN exceeded available tokens")
	}
}

func TestTokenBucketClockBackwards(t *testing.T) {
	b, err := NewTokenBucket(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Allow(base) {
		t.Fatal("first event rejected")
	}
	// Time going backwards must not mint tokens.
	if b.Allow(base.Add(-time.Hour)) {
		t.Error("backwards clock minted tokens")
	}
}

func TestSlidingWindowValidation(t *testing.T) {
	if _, err := NewSlidingWindow(0, 6); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewSlidingWindow(time.Minute, 1); err == nil {
		t.Error("single slot accepted")
	}
}

func TestSlidingWindowCounts(t *testing.T) {
	w, err := NewSlidingWindow(time.Minute, 6)
	if err != nil {
		t.Fatal(err)
	}
	now := base
	for i := 0; i < 30; i++ {
		w.Observe(now)
		now = now.Add(time.Second)
	}
	if got := w.Count(now); got != 30 {
		t.Errorf("count after 30 events in 30s = %d, want 30", got)
	}
	// After the full window passes with no traffic, the count drains.
	if got := w.Count(now.Add(2 * time.Minute)); got != 0 {
		t.Errorf("count after idle window = %d, want 0", got)
	}
}

func TestSlidingWindowExpiryGranularity(t *testing.T) {
	w, err := NewSlidingWindow(time.Minute, 6)
	if err != nil {
		t.Fatal(err)
	}
	w.Observe(base)
	// 61 seconds later the event must be gone (granularity 10s slots).
	if got := w.Count(base.Add(61 * time.Second)); got != 0 {
		t.Errorf("expired event still counted: %d", got)
	}
	// Within the same slot nothing expires.
	w.Observe(base.Add(2 * time.Minute))
	if got := w.Count(base.Add(2*time.Minute + 5*time.Second)); got != 1 {
		t.Errorf("fresh event lost: %d", got)
	}
}

func TestSlidingWindowRate(t *testing.T) {
	w, err := NewSlidingWindow(time.Minute, 6)
	if err != nil {
		t.Fatal(err)
	}
	now := base
	for i := 0; i < 60; i++ {
		w.Observe(now)
		now = now.Add(time.Second)
	}
	got := w.Rate(now)
	if got < 0.8 || got > 1.2 {
		t.Errorf("1/s stream measured as %g/s", got)
	}
}

func TestGCRAValidation(t *testing.T) {
	if _, err := NewGCRA(0, 5); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewGCRA(1, 0.5); err == nil {
		t.Error("burst < 1 accepted")
	}
}

func TestGCRABurstAndSustained(t *testing.T) {
	g, err := NewGCRA(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	now := base
	admitted := 0
	for i := 0; i < 10; i++ {
		if g.Allow(now) {
			admitted++
		}
	}
	if admitted != 5 {
		t.Errorf("instant burst admitted %d, want 5", admitted)
	}
	// At exactly the sustained rate every event conforms.
	for i := 0; i < 20; i++ {
		now = now.Add(time.Second)
		if !g.Allow(now) {
			t.Fatalf("on-rate event %d rejected", i)
		}
	}
	// Double rate gets rejected about half the time.
	rejected := 0
	for i := 0; i < 100; i++ {
		now = now.Add(500 * time.Millisecond)
		if !g.Allow(now) {
			rejected++
		}
	}
	if rejected < 40 || rejected > 60 {
		t.Errorf("2x-rate stream rejected %d of 100, want about 50", rejected)
	}
}

// GCRA and TokenBucket implement the same conformance law; over a steady
// stream their admission counts agree within one burst.
func TestGCRATokenBucketAgreementProperty(t *testing.T) {
	f := func(gapsMs []uint16) bool {
		g, err1 := NewGCRA(2, 8)
		b, err2 := NewTokenBucket(2, 8)
		if err1 != nil || err2 != nil {
			return false
		}
		now := base
		ga, ba := 0, 0
		for _, gap := range gapsMs {
			now = now.Add(time.Duration(gap%3000) * time.Millisecond)
			if g.Allow(now) {
				ga++
			}
			if b.Allow(now) {
				ba++
			}
		}
		diff := ga - ba
		if diff < 0 {
			diff = -diff
		}
		return diff <= 9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGCRA(b *testing.B) {
	g, err := NewGCRA(1.5, 40)
	if err != nil {
		b.Fatal(err)
	}
	now := base
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now = now.Add(100 * time.Millisecond)
		g.Allow(now)
	}
}

func BenchmarkSlidingWindow(b *testing.B) {
	w, err := NewSlidingWindow(time.Minute, 6)
	if err != nil {
		b.Fatal(err)
	}
	now := base
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now = now.Add(50 * time.Millisecond)
		w.Observe(now)
	}
}
