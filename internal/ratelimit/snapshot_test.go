package ratelimit

import (
	"testing"
	"time"

	"divscrape/internal/statecodec"
)

var snapBase = time.Date(2018, 3, 11, 9, 0, 0, 0, time.UTC)

// TestSnapshotRoundTripEquivalence proves the behavioural contract: a
// restored limiter admits exactly the same future event sequence as the
// original.
func TestSnapshotRoundTripEquivalence(t *testing.T) {
	g1, _ := NewGCRA(2, 5)
	b1, _ := NewTokenBucket(2, 5)
	w1, _ := NewSlidingWindow(time.Minute, 6)
	now := snapBase
	for i := 0; i < 40; i++ {
		now = now.Add(time.Duration(100+i*37) * time.Millisecond)
		g1.Allow(now)
		b1.Allow(now)
		w1.Observe(now)
	}

	w := statecodec.NewWriter()
	g1.SnapshotInto(w)
	b1.SnapshotInto(w)
	w1.SnapshotInto(w)

	g2, _ := NewGCRA(2, 5)
	b2, _ := NewTokenBucket(2, 5)
	w2, _ := NewSlidingWindow(time.Minute, 6)
	r := statecodec.NewReader(w.Bytes())
	if err := g2.RestoreFrom(r); err != nil {
		t.Fatal(err)
	}
	if err := b2.RestoreFrom(r); err != nil {
		t.Fatal(err)
	}
	if err := w2.RestoreFrom(r); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}

	for i := 0; i < 200; i++ {
		now = now.Add(time.Duration(80+i*13) * time.Millisecond)
		if g1.Allow(now) != g2.Allow(now) {
			t.Fatalf("GCRA diverged at step %d", i)
		}
		if b1.Allow(now) != b2.Allow(now) {
			t.Fatalf("TokenBucket diverged at step %d", i)
		}
		if w1.Observe(now) != w2.Observe(now) {
			t.Fatalf("SlidingWindow diverged at step %d", i)
		}
	}
}

func TestSlidingWindowRestoreRejectsSlotMismatch(t *testing.T) {
	a, _ := NewSlidingWindow(time.Minute, 6)
	a.Observe(snapBase)
	w := statecodec.NewWriter()
	a.SnapshotInto(w)

	b, _ := NewSlidingWindow(time.Minute, 4)
	if err := b.RestoreFrom(statecodec.NewReader(w.Bytes())); err == nil {
		t.Error("slot-count mismatch accepted")
	}
}

func TestRestoreRejectsTruncation(t *testing.T) {
	g, _ := NewGCRA(1, 2)
	g.Allow(snapBase)
	w := statecodec.NewWriter()
	g.SnapshotInto(w)
	for cut := 0; cut < w.Len(); cut++ {
		fresh, _ := NewGCRA(1, 2)
		if err := fresh.RestoreFrom(statecodec.NewReader(w.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
