//go:build race

package pipeline

// raceEnabled marks a race-instrumented build; allocation budgets are
// meaningless there (the detector itself allocates on sync operations).
const raceEnabled = true
