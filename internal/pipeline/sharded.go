package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/fnvhash"
	"divscrape/internal/trace"
)

// resultBatch is the unit of hand-off in Sharded mode. The producer fills
// reqs and sends the batch to a shard; the shard appends one verdict per
// (request, detector) pair into the flat verdicts slab and forwards the
// batch to the merger; the merger recycles the whole batch once every item
// has been emitted. Batches and the Requests inside them come from
// sync.Pools, so the steady-state stream performs no allocations.
type resultBatch struct {
	reqs     []*detector.Request
	verdicts []detector.Verdict // len == len(reqs) * detector count
	emitted  int
	// shard is the worker the batch was routed to, kept so the merger can
	// decrement that shard's in-flight gauge when tracing is enabled.
	shard int
}

// pendingItem locates one not-yet-emitted decision inside a batch.
type pendingItem struct {
	rb  *resultBatch
	idx int
}

// shardOf hashes a client address onto a shard with FNV-1a over the four
// bytes of the numeric IP. All requests from one client land on one shard,
// which is what keeps per-client detector state shard-local and the output
// byte-identical to Sequential.
func shardOf(ip uint32, shards int) int {
	return int(fnvhash.IP32(ip) % uint32(shards))
}

func (p *Pipeline) runSharded(ctx context.Context, src EntrySource, sink Sink) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	shards := len(p.shardDets)
	nd := len(p.shardDets[0])
	batchSize := p.cfg.Batch
	// Channel depths are counted in requests; convert to batches.
	depth := p.cfg.Buffer / batchSize
	if depth < 1 {
		depth = 1
	}

	// Requests and batches recycle through the Pipeline's pools, shared
	// across Run calls, so repeated runs (and long streams) hold a warmed
	// working set instead of re-allocating it.
	reqPool := &p.reqPool
	rbPool := &p.rbPool

	ins := make([]chan *resultBatch, shards)
	for i := range ins {
		ins[i] = make(chan *resultBatch, depth)
	}
	out := make(chan *resultBatch, shards*depth)
	srcErr := make(chan error, 1)
	tr := p.cfg.Trace
	// next is the sequence number the merger emits next; the enricher
	// numbers this run's requests starting from its current counter.
	next := p.enricher.Seq()

	var wg sync.WaitGroup

	// Producer: parse + enrich on one goroutine (sequence numbers stay in
	// input order), partition by client into per-shard batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			for _, in := range ins {
				close(in)
			}
		}()
		cur := make([]*resultBatch, shards)
		for i := range cur {
			cur[i] = rbPool.Get().(*resultBatch)
			cur[i].shard = i
		}
		send := func(s int) bool {
			rb := cur[s]
			// Depth is observed before the send: a full channel here means
			// the shard (or the merger behind it) is the one applying
			// backpressure.
			tr.QueueDepth(s, len(ins[s]))
			select {
			case ins[s] <- rb:
			case <-ctx.Done():
				return false
			}
			tr.Occupancy(s, 1)
			cur[s] = rbPool.Get().(*resultBatch)
			cur[s].shard = s
			return true
		}
		// Partial batches are force-flushed every flushEvery requests:
		// a quiet client's lone request must not sit in a half-full batch
		// holding back the merger's in-order emission (and growing its
		// reorder buffer) for the rest of the stream. The interval keeps
		// the extra sends amortised to well under one per batch. Note the
		// pacing is request-count, not wall-clock: on a trickling live
		// source the flush can lag arbitrarily in real time, which is why
		// follow-mode callers default to the sequential pipeline.
		flushEvery := batchSize * shards
		sinceFlush := 0
		for {
			ts := tr.Now()
			entry, err := src()
			if errors.Is(err, io.EOF) {
				for s := range cur {
					if len(cur[s].reqs) > 0 && !send(s) {
						return
					}
				}
				return
			}
			if err != nil {
				srcErr <- fmt.Errorf("pipeline: source: %w", err)
				cancel()
				return
			}
			ts = tr.Lap(trace.StageParse, ts)
			req := reqPool.Get().(*detector.Request)
			p.enricher.EnrichInto(req, entry)
			tr.Lap(trace.StageEnrich, ts)
			s := shardOf(req.IP, shards)
			cur[s].reqs = append(cur[s].reqs, req)
			if len(cur[s].reqs) == batchSize && !send(s) {
				return
			}
			if sinceFlush++; sinceFlush >= flushEvery {
				sinceFlush = 0
				for s := range cur {
					if len(cur[s].reqs) > 0 && !send(s) {
						return
					}
				}
			}
		}
	}()

	// Shard workers: private detector instances, no locks. Each shard's
	// input is already in stream order, so its output is too. Each worker
	// also runs its own windowed eviction sweeps, paced by the event time
	// of its own batches: a shard only holds state for clients that hash
	// to it, and eviction is verdict-neutral, so per-shard cadence drift
	// is invisible in the merged stream.
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(in <-chan *resultBatch, dets []detector.Detector) {
			defer wg.Done()
			var evictLast time.Time
			for rb := range in {
				// Detectors write verdicts straight into the batch's flat
				// slab (InspectInto overwrites every field), so judging a
				// batch allocates nothing once the slab has grown.
				need := len(rb.reqs) * nd
				if cap(rb.verdicts) < need {
					rb.verdicts = make([]detector.Verdict, need)
				} else {
					rb.verdicts = rb.verdicts[:need]
				}
				k := 0
				for _, req := range rb.reqs {
					ts := tr.Now()
					for di, d := range dets {
						d.InspectInto(req, &rb.verdicts[k])
						k++
						ts = tr.LapDetector(di, ts)
					}
				}
				// Sweep after the batch with its newest timestamp: state
				// touched by this batch is by construction newer than the
				// cutoff, so the sweep can never claw back what was just
				// judged.
				p.maybeEvict(&evictLast, rb.reqs[len(rb.reqs)-1].Entry.Time, dets)
				select {
				case out <- rb:
				case <-ctx.Done():
					return
				}
			}
		}(ins[i], p.shardDets[i])
	}

	go func() {
		wg.Wait()
		close(out)
	}()

	// Merger (caller's goroutine): restore global order by sequence
	// number. Shard outputs are individually ordered, so the reorder
	// buffer holds at most the in-flight window. The map persists on the
	// Pipeline across runs; an aborted run may leave stale entries, so it
	// is cleared (cheaply, keeping its buckets) before use.
	pending := p.pending
	clear(pending)
	var runErr error
	recycle := func(rb *resultBatch) {
		tr.Occupancy(rb.shard, -1)
		rb.reqs = rb.reqs[:0]
		rb.verdicts = rb.verdicts[:0]
		rb.emitted = 0
		rbPool.Put(rb)
	}
	emit := func(it pendingItem) error {
		req := it.rb.reqs[it.idx]
		ts := tr.Now()
		err := sink(Decision{
			Req:      req,
			Verdicts: it.rb.verdicts[it.idx*nd : (it.idx+1)*nd],
		})
		tr.Lap(trace.StageSink, ts)
		reqPool.Put(req)
		it.rb.emitted++
		if it.rb.emitted == len(it.rb.reqs) {
			recycle(it.rb)
		}
		return err
	}

collect:
	for rb := range out {
		ms := tr.Now()
		for idx, req := range rb.reqs {
			pending[req.Seq] = pendingItem{rb: rb, idx: idx}
		}
		emitted := false
		for {
			it, ok := pending[next]
			if !ok {
				if tr != nil {
					// A batch that emitted nothing is a merge stall: finished
					// work parked behind an earlier sequence number still in
					// flight — the serialisation that caps sharded speedup.
					if !emitted {
						tr.MergeStall()
					}
					tr.MergePending(len(pending))
					tr.Lap(trace.StageMerge, ms)
				}
				continue collect
			}
			delete(pending, next)
			next++
			emitted = true
			if err := emit(it); err != nil {
				runErr = fmt.Errorf("pipeline: sink: %w", err)
				cancel()
				break collect
			}
		}
	}

	// Drain to unblock stages, then wait for goroutine exit.
	cancel()
	for range out {
	}
	wg.Wait()

	select {
	case err := <-srcErr:
		if runErr == nil {
			runErr = err
		}
	default:
	}
	if runErr == nil {
		if err := ctx.Err(); err != nil && !errors.Is(err, context.Canceled) {
			runErr = err
		}
	}
	return runErr
}
