package pipeline

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"divscrape/internal/arcane"
	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/sentinel"
	"divscrape/internal/workload"
)

// evictDecision is the full per-request observable: if eviction changed
// anything a detector can express, one of these fields changes.
type evictDecision struct {
	seq      uint64
	alerts   [2]bool
	scores   [2]float64
	reasons0 string
	reasons1 string
}

func collectDecisions(t *testing.T, p *Pipeline, src EntrySource, sink func(Decision)) []evictDecision {
	t.Helper()
	var out []evictDecision
	err := p.Run(context.Background(), src, func(d Decision) error {
		out = append(out, evictDecision{
			seq:      d.Req.Seq,
			alerts:   [2]bool{d.Verdicts[0].Alert, d.Verdicts[1].Alert},
			scores:   [2]float64{d.Verdicts[0].Score, d.Verdicts[1].Score},
			reasons0: d.Verdicts[0].Reasons.Join(","),
			reasons1: d.Verdicts[1].Reasons.Join(","),
		})
		if sink != nil {
			sink(d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// cleanRequests computes, for a window W, which requests come from
// clients the windowed eviction can never touch: a request is "clean"
// while every inter-request gap of both its session keys (the sentinel's
// per-IP key and the arcane's per-(IP, UA) key) has stayed under W. A
// sweep evicts a key only when some sweep time T satisfies
// lastSeen < T − W with T at or before the key's next request, which
// requires a gap strictly over W — so clean requests see identical
// detector state under every sweep schedule, in every mode. Once a key
// gaps past W its later requests are excluded permanently (whether a
// given schedule's sweep caught the session or not is schedule-dependent,
// which is exactly the freedom the contract grants). Authenticated
// requests never touch either store and are unconditionally clean.
func cleanRequests(events []workload.Event, window time.Duration) (clean []bool, dirty int) {
	type key struct{ ip, ua string }
	dirtyIP := map[string]bool{}
	dirtyKey := map[key]bool{}
	lastIP := map[string]time.Time{}
	lastKey := map[key]time.Time{}
	clean = make([]bool, len(events))
	for i := range events {
		e := &events[i].Entry
		if e.AuthUser != "" && e.AuthUser != "-" {
			clean[i] = true
			continue
		}
		if t0, ok := lastIP[e.RemoteAddr]; ok && e.Time.Sub(t0) >= window {
			dirtyIP[e.RemoteAddr] = true
		}
		lastIP[e.RemoteAddr] = e.Time
		k := key{e.RemoteAddr, e.UserAgent}
		if t0, ok := lastKey[k]; ok && e.Time.Sub(t0) >= window {
			dirtyKey[k] = true
		}
		lastKey[k] = e.Time
		clean[i] = !dirtyIP[e.RemoteAddr] && !dirtyKey[k]
		if !clean[i] {
			dirty++
		}
	}
	return clean, dirty
}

// Metamorphic eviction-equivalence: for any event stream, replaying with
// windowed eviction enabled produces verdicts identical to a no-eviction
// reference for every non-expired client, across Sequential, Concurrent
// and Sharded modes — and identical to a reference run where expired
// clients are manually removed between requests. The window is set well
// below the detectors' idle timeouts so the sweeps genuinely evict
// mid-stream state (with a window at or above the idle timeouts the
// property is total: see TestEvictionNeutralAtIdleWindow).
func TestEvictionEquivalenceMetamorphic(t *testing.T) {
	events := generate(t, 6)
	const (
		window = 10 * time.Minute
		every  = 2 * time.Minute
	)

	clean, dirty := cleanRequests(events, window)
	if dirty == 0 {
		t.Fatal("no request ever expires under the window; the test is vacuous")
	}

	reference := collectDecisions(t, newPipe(t, Sequential), sourceFrom(events), nil)

	compare := func(name string, got []evictDecision) {
		t.Helper()
		if len(got) != len(reference) {
			t.Fatalf("%s: decisions %d != %d", name, len(got), len(reference))
		}
		for i := range reference {
			if clean[i] && got[i] != reference[i] {
				t.Fatalf("%s: eviction changed non-expired decision %d:\n  evicted   %+v\n  reference %+v",
					name, i, got[i], reference[i])
			}
		}
	}

	// Manual-removal reference: a sequential pipeline with eviction off,
	// where the test itself removes expired clients from the sink (the
	// sink runs on the caller's goroutine between inspections, so the
	// detectors are quiescent). This is the ground truth the in-pipeline
	// sweeps are supposed to reproduce.
	sen, err := sentinel.New(sentinel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	arc, err := arcane.New(arcane.Config{})
	if err != nil {
		t.Fatal(err)
	}
	manualPipe, err := New(Config{
		Detectors:  []detector.Detector{sen, arc},
		Reputation: iprep.BuildFeed(),
		Mode:       Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	var lastSweep time.Time
	manualEvicted := 0
	manual := collectDecisions(t, manualPipe, sourceFrom(events), func(d Decision) {
		at := d.Req.Entry.Time
		if lastSweep.IsZero() {
			lastSweep = at
			return
		}
		if at.Sub(lastSweep) >= every {
			lastSweep = at
			manualEvicted += sen.EvictBefore(at.Add(-window))
			manualEvicted += arc.EvictBefore(at.Add(-window))
		}
	})
	if manualEvicted == 0 {
		t.Fatal("manual reference evicted nothing; the window never bit")
	}
	compare("manual removal", manual)

	for _, mode := range []Mode{Sequential, Concurrent, Sharded} {
		p, err := New(Config{
			Factories:   pairFactories(),
			Reputation:  iprep.BuildFeed(),
			Mode:        mode,
			Shards:      3,
			Batch:       32,
			Buffer:      64,
			EvictWindow: window,
			EvictEvery:  every,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := collectDecisions(t, p, sourceFrom(events), nil)
		compare(fmt.Sprintf("mode %d", mode), got)
		sweeps, evicted := p.EvictionStats()
		if sweeps == 0 || evicted == 0 {
			t.Errorf("mode %d: sweeps=%d evicted=%d; eviction never ran, equivalence is vacuous",
				mode, sweeps, evicted)
		}
	}
	t.Logf("window=%v: %d/%d requests from expiring clients, manual run evicted %d sessions",
		window, dirty, len(events), manualEvicted)
}

// With the window at or above every detector idle timeout, eviction is
// completely verdict-neutral: the full decision stream is byte-identical
// in every mode (proactive sweeps can only drop what lazy idle expiry
// would have dropped before its next read).
func TestEvictionNeutralAtIdleWindow(t *testing.T) {
	events := generate(t, 6)
	reference := collectDecisions(t, newPipe(t, Sequential), sourceFrom(events), nil)
	for _, mode := range []Mode{Sequential, Concurrent, Sharded} {
		p, err := New(Config{
			Factories:   pairFactories(),
			Reputation:  iprep.BuildFeed(),
			Mode:        mode,
			Shards:      3,
			EvictWindow: time.Hour, // == sentinel idle, > arcane idle
			EvictEvery:  10 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := collectDecisions(t, p, sourceFrom(events), nil)
		if len(got) != len(reference) {
			t.Fatalf("mode %d: decisions %d != %d", mode, len(got), len(reference))
		}
		for i := range reference {
			if got[i] != reference[i] {
				t.Fatalf("mode %d: idle-window eviction changed decision %d:\n  evicted   %+v\n  reference %+v",
					mode, i, got[i], reference[i])
			}
		}
	}
}

func TestEvictConfigValidation(t *testing.T) {
	if _, err := New(Config{Factories: pairFactories(), EvictWindow: -time.Second}); err == nil {
		t.Error("negative EvictWindow accepted")
	}
	p, err := New(Config{Factories: pairFactories(), EvictWindow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if p.cfg.EvictEvery != 15*time.Minute {
		t.Errorf("default EvictEvery = %v, want window/4", p.cfg.EvictEvery)
	}
}

// soakSource synthesises an unbounded-style stream: 1M requests from 100k
// client addresses that rotate through and never return (the
// address-churning botnet shape), at a fixed event-time pace. Entries are
// built in place, so the source itself adds nothing to the heap besides
// one address string per client.
type soakSource struct {
	n, total   int
	perClient  int
	start      time.Time
	step       time.Duration
	remoteAddr string
}

func (s *soakSource) next() (logfmt.Entry, error) {
	if s.n >= s.total {
		return logfmt.Entry{}, io.EOF
	}
	i := s.n
	s.n++
	if i%s.perClient == 0 {
		client := i / s.perClient
		// Addresses walk the residential 10.0.0.0/13 block.
		s.remoteAddr = fmt.Sprintf("10.%d.%d.%d", client>>16&0x7, client>>8&0xff, client&0xff)
	}
	ua := "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/63.0.3239.84 Safari/537.36"
	if i%3 == 0 {
		ua = "python-requests/2.18.4"
	}
	return logfmt.Entry{
		RemoteAddr: s.remoteAddr,
		Identity:   "-",
		AuthUser:   "-",
		Time:       s.start.Add(time.Duration(i) * s.step),
		Method:     "GET",
		Path:       fmt.Sprintf("/product/%d", i%4096),
		Proto:      "HTTP/1.1",
		Status:     200,
		Bytes:      1234,
		Referer:    "-",
		UserAgent:  ua,
	}, nil
}

// Soak: a 1M-event stream with 100k rotating client IPs must keep the
// live session-store node count under the window bound and the heap flat
// between sweeps — the bounded-memory claim behind `scrapedetect -follow`.
func TestSoakBoundedMemoryUnderEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-event soak")
	}
	const (
		total     = 1_000_000
		clients   = 100_000
		perClient = total / clients
		step      = 20 * time.Millisecond // 1M events ≈ 5.5h of stream time
		window    = time.Hour
	)
	sen, err := sentinel.New(sentinel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	arc, err := arcane.New(arcane.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Detectors:   []detector.Detector{sen, arc},
		Reputation:  iprep.BuildFeed(),
		Mode:        Sequential,
		EvictWindow: window,
		EvictEvery:  window / 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The window bound: clients active within window + sweep cadence of
	// stream time, each client alive for perClient*step.
	activeWindow := window + window/4
	bound := int(activeWindow/(time.Duration(perClient)*step)) + clients/100

	src := &soakSource{total: total, perClient: perClient,
		start: time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC), step: step}

	heapAt := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	var baseline uint64
	n := 0
	err = p.Run(context.Background(), src.next, func(d Decision) error {
		n++
		if n%200_000 != 0 {
			return nil
		}
		// The sink runs on the caller's goroutine with the detectors
		// quiescent, so store sizes and the heap can be sampled mid-run.
		if got := sen.Clients(); got > bound {
			t.Errorf("event %d: sentinel holds %d clients, window bound %d", n, got, bound)
		}
		if got := arc.Sessions(); got > bound {
			t.Errorf("event %d: arcane holds %d sessions, window bound %d", n, got, bound)
		}
		h := heapAt()
		if baseline == 0 {
			baseline = h
			return nil
		}
		// Flat between sweeps: later samples stay within 1.5× the first
		// steady-state sample plus fixed slack for sampling noise.
		if h > baseline+baseline/2+(16<<20) {
			t.Errorf("event %d: heap %d B vs baseline %d B; memory is growing", n, h, baseline)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != total {
		t.Fatalf("processed %d events, want %d", n, total)
	}
	sweeps, evicted := p.EvictionStats()
	if sweeps == 0 || evicted == 0 {
		t.Fatalf("sweeps=%d evicted=%d; the soak never exercised eviction", sweeps, evicted)
	}
	t.Logf("soak: %d events, %d sweeps, %d evictions, final stores sen=%d arc=%d (bound %d)",
		n, sweeps, evicted, sen.Clients(), arc.Sessions(), bound)
}
