package pipeline

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"io"
	"math"
	"testing"
	"time"

	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/statecodec"
	"divscrape/internal/trace"
	"divscrape/internal/workload"
)

// cyclingSource replays the event list until total entries have been
// served, shifting each cycle's timestamps past the previous one so
// event time stays monotonic (clients simply accumulate longer
// sessions).
func cyclingSource(events []workload.Event, total int) EntrySource {
	span := events[len(events)-1].Entry.Time.Sub(events[0].Entry.Time) + time.Second
	i := 0
	var offset time.Duration
	return func() (logfmt.Entry, error) {
		if i >= total {
			return logfmt.Entry{}, io.EOF
		}
		if i > 0 && i%len(events) == 0 {
			offset += span
		}
		e := events[i%len(events)].Entry
		e.Time = e.Time.Add(offset)
		i++
		return e, nil
	}
}

// runFingerprint replays src through p and reduces the run to two
// fingerprints: an order-sensitive hash of the full decision stream
// (seq, alerts, exact score bits) and the checkpoint bytes afterwards.
func runFingerprint(t *testing.T, p *Pipeline, src EntrySource) (stream uint64, ckpt []byte, n int) {
	t.Helper()
	h := fnv.New64a()
	var buf [8]byte
	err := p.Run(context.Background(), src, func(d Decision) error {
		n++
		binary.LittleEndian.PutUint64(buf[:], d.Req.Seq)
		h.Write(buf[:])
		for i := range d.Verdicts {
			v := &d.Verdicts[i]
			b := byte(0)
			if v.Alert {
				b = 1
			}
			h.Write([]byte{b})
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Score))
			h.Write(buf[:])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	w := statecodec.NewWriter()
	if err := p.Checkpoint(w); err != nil {
		t.Fatal(err)
	}
	return h.Sum64(), append([]byte(nil), w.Bytes()...), n
}

// Tracing is observation only: with the plane fully armed — stage spans,
// shard gauges, merge-stall accounting — a 50k-event replay must produce
// a byte-identical decision stream and byte-identical checkpoint to the
// untraced run, in every mode.
func TestTracingEquivalence50k(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-event replay")
	}
	const total = 50_000
	events := generate(t, 2)

	for _, mode := range []Mode{Sequential, Concurrent, Sharded} {
		mode := mode
		t.Run(map[Mode]string{Sequential: "seq", Concurrent: "conc", Sharded: "shard"}[mode], func(t *testing.T) {
			baseHash, baseCkpt, n := runFingerprint(t, newPipe(t, mode), cyclingSource(events, total))
			if n != total {
				t.Fatalf("untraced run sinked %d decisions, want %d", n, total)
			}

			tshards := 0
			if mode == Sharded {
				tshards = 4
			}
			tracer := trace.New(trace.Config{
				Detectors: []string{"sentinel", "arcane"},
				Shards:    tshards,
				Recorder:  trace.RecorderConfig{Rate: 16},
			})
			p, err := New(Config{
				Factories:  pairFactories(),
				Reputation: iprep.BuildFeed(),
				Mode:       mode,
				Shards:     4,
				Trace:      tracer,
			})
			if err != nil {
				t.Fatal(err)
			}
			tracedHash, tracedCkpt, n := runFingerprint(t, p, cyclingSource(events, total))
			if n != total {
				t.Fatalf("traced run sinked %d decisions, want %d", n, total)
			}

			if tracedHash != baseHash {
				t.Errorf("decision stream diverged with tracing on: %x != %x", tracedHash, baseHash)
			}
			if len(tracedCkpt) != len(baseCkpt) {
				t.Fatalf("checkpoint size diverged with tracing on: %d != %d bytes", len(tracedCkpt), len(baseCkpt))
			}
			for i := range baseCkpt {
				if tracedCkpt[i] != baseCkpt[i] {
					t.Fatalf("checkpoint bytes diverged at offset %d", i)
				}
			}

			// And the plane actually observed the run: every exercised
			// stage recorded one span per decision.
			stats := map[string]uint64{}
			for _, st := range tracer.StageStats() {
				stats[st.Name()] = st.Count
			}
			for _, stage := range []string{"parse", "enrich", "detect-sentinel", "detect-arcane", "sink"} {
				if stats[stage] != total {
					t.Errorf("stage %s recorded %d spans, want %d", stage, stats[stage], total)
				}
			}
			if mode == Sharded && stats["merge"] == 0 {
				t.Error("sharded run recorded no merge spans")
			}
		})
	}
}
