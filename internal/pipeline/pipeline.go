// Package pipeline wires the detection system together as a streaming
// dataflow: parse → enrich → detect → collect. It offers four execution
// modes:
//
//   - Sequential runs everything on the caller's goroutine. It is the
//     reference implementation: byte-for-byte deterministic, zero
//     coordination overhead, and allocation-free in steady state (one
//     reused Request, flat feature vectors inside the detectors). Pick it
//     for single-core replays, debugging, and as the equivalence oracle.
//
//   - Concurrent gives each detector its own goroutine with bounded
//     channels and zips the verdict streams back in order — mirroring how
//     the paper's two tools monitored the same traffic independently and
//     in parallel. Throughput is capped at the slowest single detector
//     plus the per-request channel synchronisation, which in practice
//     makes it slower than Sequential (~34% in the recorded benchmarks).
//     Deprecated: kept as a faithful model of the paper's deployment
//     shape and as a second equivalence witness; for parallel throughput
//     use ShardedRelaxed, for parallel + total order use Sharded.
//
//   - Sharded partitions the enriched stream by client IP (FNV-1a) across
//     N worker shards, each owning a private instance of every detector
//     built from detector.Factory values. Because both detectors key all
//     state by client (sentinel per IP, arcane per IP+User-Agent), and
//     session expiry is decidable from a key's own touch times alone, a
//     client's verdicts are identical whichever shard serves it — so after
//     the order-restoring merge (keyed by the enricher's sequence number)
//     the Decision stream is byte-identical to Sequential. Requests travel
//     in pooled batches, so the steady-state hot path performs no
//     allocations. The merge is a serial section: it caps throughput near
//     Sequential's regardless of shard count, which is the price of total
//     order.
//
//   - ShardedRelaxed partitions identically but removes the merge:
//     requests stream through one bounded SPSC ring per shard
//     (internal/spsc) and every shard drains into its own sink on its own
//     goroutine. Only per-client order is guaranteed — each client's
//     decision sequence is byte-identical to Sequential, and the union of
//     all shards' decisions is multiset-equal to the sequential stream —
//     which is all the detectors, session stores and the mitigation
//     ladder require. This is the mode whose throughput scales with
//     GOMAXPROCS. See relaxed.go.
//
// Determinism guarantee: for the same input stream, the three total-order
// modes invoke the sink with identical Decision contents in identical
// order; ShardedRelaxed invokes its per-shard sinks with the same
// decisions in a per-client-preserving permutation of that order. Only
// the internal schedule differs.
//
// Pipelines are also durable: Checkpoint serialises the enricher position
// and every detector's per-client state in a canonical, shard-agnostic
// form, and ResumeFrom restores it into a fresh pipeline of any mode or
// shard count, continuing the decision stream byte-identically — see
// checkpoint.go and internal/statecodec.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/spsc"
	"divscrape/internal/trace"
)

// Decision is the pipeline's per-request output: the enriched request and
// one verdict per registered detector, in registration order.
type Decision struct {
	// Req is the enriched request. The pointer is owned by the pipeline
	// and only valid during the sink call; copy what you keep.
	Req *detector.Request
	// Verdicts aligns with the pipeline's detector list. Like Req, the
	// slice is owned by the pipeline and reused after the sink returns;
	// copy what you keep.
	Verdicts []detector.Verdict
}

// Mode selects the execution strategy.
type Mode int

const (
	// Sequential runs everything on the caller's goroutine; byte-for-byte
	// deterministic and allocation-light. The default.
	Sequential Mode = iota + 1
	// Concurrent fans each request out to one goroutine per detector and
	// zips the verdict streams back in order. Decision *contents* are
	// identical to Sequential (detectors are order-preserving); only the
	// schedule differs.
	Concurrent
	// Sharded partitions the stream by client IP across worker shards,
	// each owning private detector instances built from Config.Factories,
	// and restores stream order before the sink. Decision contents are
	// identical to Sequential; throughput scales with Config.Shards.
	Sharded
	// ShardedRelaxed partitions like Sharded but drops the order-restoring
	// merge: requests travel through one bounded SPSC ring per shard and
	// each shard drains straight into its own sink, guaranteeing per-client
	// order only (all any detector, session store or the mitigation ladder
	// depends on). The whole-stream Decision multiset equals Sequential's;
	// the interleaving across clients does not. This is the mode that
	// removes the merge wall — see relaxed.go and RunRelaxed.
	ShardedRelaxed
)

// shardedTopology reports whether the mode builds per-shard detector
// instances from factories (Sharded and ShardedRelaxed share partitioning,
// checkpoint grouping and state-restore semantics).
func (m Mode) shardedTopology() bool { return m == Sharded || m == ShardedRelaxed }

// Config parameterises New.
type Config struct {
	// Detectors is the ordered detector list. Required for Sequential and
	// Concurrent modes unless Factories is set, in which case a prototype
	// list is built from the factories.
	Detectors []detector.Detector
	// Factories builds private detector instances per shard, in the same
	// order as Detectors. Required for Sharded mode.
	Factories []detector.Factory
	// Reputation enriches requests with IP categories; nil disables.
	Reputation *iprep.DB
	// Mode selects Sequential (default), Concurrent or Sharded execution.
	Mode Mode
	// Buffer is the per-stage channel depth, counted in requests.
	// Default 256.
	Buffer int
	// Shards is the worker count in Sharded mode. Default GOMAXPROCS.
	Shards int
	// Batch is the number of requests handed to a shard per channel send
	// in Sharded mode (batching amortises channel synchronisation).
	// Default 128.
	Batch int
	// EvictWindow, when positive, enables windowed eviction: as stream
	// (event) time advances, detector state untouched for longer than the
	// window is proactively dropped via detector.Evictable, so
	// steady-state memory over an unbounded stream is O(clients active in
	// the window) instead of O(clients ever seen). Keep the window at or
	// above every detector's idle timeout and eviction is verdict-neutral
	// in every mode — proactive sweeps drop exactly the state lazy idle
	// expiry would have dropped before its next read (pinned by the
	// metamorphic eviction-equivalence test). Zero disables sweeping.
	EvictWindow time.Duration
	// EvictEvery is the sweep cadence, measured in event time. Default
	// EvictWindow/4 (at least one second).
	EvictEvery time.Duration
	// Trace, when non-nil, records per-stage spans (parse, enrich, one
	// detect span per detector, merge, sink) and — in Sharded mode — the
	// per-shard queue-depth/in-flight gauges and merge-stall counters that
	// localise the serial merge. Tracing is observation only: the Decision
	// stream and checkpoint bytes are identical with Trace set or nil
	// (pinned by the tracing equivalence test), and a nil Trace costs one
	// nil check per span point, keeping the hot path allocation-free.
	// Build with trace.New, passing Shards matching this config's (post-
	// default) shard count when Mode is Sharded.
	Trace *trace.Tracer
}

// Pipeline executes detection runs. It is single-use-at-a-time: a Pipeline
// must not run two streams concurrently, but may be reused sequentially
// (detector state carries over; call ResetDetectors between independent
// datasets).
type Pipeline struct {
	cfg      Config
	enricher *detector.Enricher
	// shardDets holds each shard's private detector instances in Sharded
	// mode (built once at New, so detector state persists across Run calls
	// exactly as it does in the other modes).
	shardDets [][]detector.Detector
	// reqPool and rbPool recycle the Requests and result batches the
	// sharded mode streams between its stages. They live on the Pipeline —
	// not the run — so repeated Run calls share one warmed pool instead of
	// re-allocating their working set every run.
	reqPool sync.Pool
	rbPool  sync.Pool
	// seqVerdicts is the sequential mode's reused verdict slab.
	seqVerdicts []detector.Verdict
	// rings and relaxedVerdicts are the ShardedRelaxed working set: one
	// SPSC hand-off ring and one reused verdict slab per shard, allocated
	// once at New and reused across runs.
	rings           []*relaxedRing
	relaxedVerdicts [][]detector.Verdict
	// pending is the sharded merger's reorder buffer, kept across runs so
	// its buckets allocate once.
	pending map[uint64]pendingItem
	// seqEvictLast is the sequential mode's sweep cadence anchor; the
	// other modes keep per-worker anchors on the run's goroutines. sweeps
	// and evicted are atomics because sharded workers update them.
	seqEvictLast time.Time
	sweeps       atomic.Uint64
	evicted      atomic.Uint64
}

// New validates cfg and builds a pipeline.
func New(cfg Config) (*Pipeline, error) {
	for i, f := range cfg.Factories {
		if f == nil {
			return nil, fmt.Errorf("pipeline: factory %d is nil", i)
		}
	}
	for i, d := range cfg.Detectors {
		if d == nil {
			return nil, fmt.Errorf("pipeline: detector %d is nil", i)
		}
	}
	if cfg.Mode == 0 {
		cfg.Mode = Sequential
	}
	if cfg.Mode != Sequential && cfg.Mode != Concurrent && !cfg.Mode.shardedTopology() {
		return nil, fmt.Errorf("pipeline: invalid mode %d", int(cfg.Mode))
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 128
	}
	if cfg.EvictWindow < 0 {
		return nil, fmt.Errorf("pipeline: EvictWindow must be non-negative, got %v", cfg.EvictWindow)
	}
	if cfg.EvictWindow > 0 && cfg.EvictEvery <= 0 {
		cfg.EvictEvery = cfg.EvictWindow / 4
		if cfg.EvictEvery < time.Second {
			cfg.EvictEvery = time.Second
		}
	}
	if !cfg.Mode.shardedTopology() && len(cfg.Detectors) == 0 && len(cfg.Factories) > 0 {
		dets, err := buildDetectors(cfg.Factories)
		if err != nil {
			return nil, err
		}
		cfg.Detectors = dets
	}
	if !cfg.Mode.shardedTopology() && len(cfg.Detectors) == 0 {
		return nil, fmt.Errorf("pipeline: need at least one detector")
	}
	p := &Pipeline{cfg: cfg, enricher: detector.NewEnricher(cfg.Reputation)}
	p.reqPool.New = func() any { return new(detector.Request) }
	nd := len(cfg.Detectors)
	if nd == 0 {
		nd = len(cfg.Factories)
	}
	batch := cfg.Batch
	p.rbPool.New = func() any {
		return &resultBatch{
			reqs:     make([]*detector.Request, 0, batch),
			verdicts: make([]detector.Verdict, 0, batch*nd),
		}
	}
	if cfg.Mode.shardedTopology() {
		if len(cfg.Factories) == 0 {
			return nil, fmt.Errorf("pipeline: mode %d requires Factories", int(cfg.Mode))
		}
		if len(cfg.Detectors) > 0 && len(cfg.Factories) != len(cfg.Detectors) {
			return nil, fmt.Errorf("pipeline: %d factories for %d detectors",
				len(cfg.Factories), len(cfg.Detectors))
		}
		// No prototype set is built here: shard 0's instances serve for
		// names, and Run never touches cfg.Detectors in these modes.
		p.shardDets = make([][]detector.Detector, cfg.Shards)
		for i := range p.shardDets {
			dets, err := buildDetectors(cfg.Factories)
			if err != nil {
				return nil, fmt.Errorf("pipeline: shard %d: %w", i, err)
			}
			p.shardDets[i] = dets
		}
	}
	switch cfg.Mode {
	case Sharded:
		// The maximum in-flight working set is fixed by the channel depths,
		// so pre-fill the pools and pre-size the reorder buffer here: even
		// the pipeline's very first run streams without allocating its
		// plumbing mid-flight.
		depth := cfg.Buffer / cfg.Batch
		if depth < 1 {
			depth = 1
		}
		inflight := cfg.Shards*(2*depth+2) + 4
		for i := 0; i < inflight; i++ {
			p.rbPool.Put(p.rbPool.New())
		}
		for i := 0; i < inflight*cfg.Batch; i++ {
			p.reqPool.Put(new(detector.Request))
		}
		p.pending = make(map[uint64]pendingItem, cfg.Shards*depth*cfg.Batch)
	case ShardedRelaxed:
		// One ring per shard, Buffer requests deep (spsc rounds up to a
		// power of two), plus one reused verdict slab per shard. The
		// maximum in-flight Request count is the sum of ring capacities
		// plus one per worker and one at the producer; pre-fill the pool
		// to that bound so the first run streams without allocating.
		p.rings = make([]*relaxedRing, cfg.Shards)
		p.relaxedVerdicts = make([][]detector.Verdict, cfg.Shards)
		inflight := cfg.Shards + 1
		for i := range p.rings {
			p.rings[i] = spsc.New[*detector.Request](cfg.Buffer)
			p.relaxedVerdicts[i] = make([]detector.Verdict, len(cfg.Factories))
			inflight += p.rings[i].Cap()
		}
		for i := 0; i < inflight; i++ {
			p.reqPool.Put(new(detector.Request))
		}
	}
	return p, nil
}

func buildDetectors(factories []detector.Factory) ([]detector.Detector, error) {
	dets := make([]detector.Detector, len(factories))
	for i, f := range factories {
		d, err := f()
		if err != nil {
			return nil, fmt.Errorf("pipeline: build detector %d: %w", i, err)
		}
		if d == nil {
			return nil, fmt.Errorf("pipeline: factory %d returned nil detector", i)
		}
		dets[i] = d
	}
	return dets, nil
}

// Shards returns the effective worker-shard count: the configured (or
// defaulted) count in Sharded mode, 1 otherwise. Benchmarks report it so
// recorded results stay interpretable across machines.
func (p *Pipeline) Shards() int {
	if p.cfg.Mode.shardedTopology() {
		return len(p.shardDets)
	}
	return 1
}

// Detectors returns the registered detector names in order.
func (p *Pipeline) Detectors() []string {
	dets := p.cfg.Detectors
	if len(dets) == 0 && len(p.shardDets) > 0 {
		dets = p.shardDets[0]
	}
	names := make([]string, len(dets))
	for i, d := range dets {
		names[i] = d.Name()
	}
	return names
}

// ResetDetectors clears all detector and enricher state, preparing the
// pipeline for an independent dataset.
func (p *Pipeline) ResetDetectors() {
	for _, d := range p.cfg.Detectors {
		d.Reset()
	}
	for _, shard := range p.shardDets {
		for _, d := range shard {
			d.Reset()
		}
	}
	p.enricher.Reset()
}

// maybeEvict advances one worker's sweep cadence to now (event time) and,
// when a full EvictEvery has elapsed, drops state older than the window
// from the given detectors. Each worker sweeps only the detector
// instances it owns, so no cross-goroutine coordination is needed; the
// per-request cost when no sweep is due is a single time comparison.
func (p *Pipeline) maybeEvict(last *time.Time, now time.Time, dets []detector.Detector) {
	if p.cfg.EvictWindow <= 0 || now.IsZero() {
		return
	}
	if last.IsZero() {
		*last = now
		return
	}
	if now.Sub(*last) < p.cfg.EvictEvery {
		return
	}
	*last = now
	cutoff := now.Add(-p.cfg.EvictWindow)
	n := 0
	for _, d := range dets {
		if ev, ok := d.(detector.Evictable); ok {
			n += ev.EvictBefore(cutoff)
		}
	}
	p.sweeps.Add(1)
	p.evicted.Add(uint64(n))
}

// EvictBefore proactively drops detector state untouched since cutoff
// across every detector instance (all shards in Sharded mode), returning
// the total evicted. It must not be called while a Run is in flight —
// detector state is owned by the run's workers; between runs the caller
// owns it (the same contract as Checkpoint).
func (p *Pipeline) EvictBefore(cutoff time.Time) int {
	n := 0
	for _, d := range p.cfg.Detectors {
		if ev, ok := d.(detector.Evictable); ok {
			n += ev.EvictBefore(cutoff)
		}
	}
	for _, shard := range p.shardDets {
		for _, d := range shard {
			if ev, ok := d.(detector.Evictable); ok {
				n += ev.EvictBefore(cutoff)
			}
		}
	}
	return n
}

// EvictionStats reports how many windowed sweeps have run and how many
// state entries they evicted (lifetime, across all modes and workers).
func (p *Pipeline) EvictionStats() (sweeps, evicted uint64) {
	return p.sweeps.Load(), p.evicted.Load()
}

// EntrySource yields log entries in timestamp order; it returns io.EOF
// when the stream ends.
type EntrySource func() (logfmt.Entry, error)

// Sink consumes decisions in stream order; returning an error aborts the
// run.
type Sink func(Decision) error

// Run streams src through the detectors into sink. In ShardedRelaxed
// mode every shard drains into the one sink concurrently, so it must be
// safe for concurrent use (and receives decisions in per-client order
// only); order-sensitive relaxed consumers should use RunRelaxed with
// one sink per shard instead.
func (p *Pipeline) Run(ctx context.Context, src EntrySource, sink Sink) error {
	switch p.cfg.Mode {
	case Concurrent:
		return p.runConcurrent(ctx, src, sink)
	case Sharded:
		return p.runSharded(ctx, src, sink)
	case ShardedRelaxed:
		return p.runRelaxedShared(ctx, src, sink)
	default:
		return p.runSequential(ctx, src, sink)
	}
}

// RunReader streams an access log in Combined Log Format through the
// detectors. Malformed lines are handled according to policy.
func (p *Pipeline) RunReader(ctx context.Context, r io.Reader, policy logfmt.ErrPolicy, sink Sink) error {
	lr := logfmt.NewReader(r, logfmt.ReaderConfig{Policy: policy})
	return p.Run(ctx, lr.Next, sink)
}

func (p *Pipeline) runSequential(ctx context.Context, src EntrySource, sink Sink) error {
	// One Request and one verdict slab reused for the whole run (and across
	// runs): the sink contract says both are only valid during the call, so
	// nothing outlives the loop and the steady-state decision path performs
	// no allocations.
	if p.seqVerdicts == nil {
		p.seqVerdicts = make([]detector.Verdict, len(p.cfg.Detectors))
	}
	verdicts := p.seqVerdicts
	var req detector.Request
	tr := p.cfg.Trace
	n := 0
	for {
		if n%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		ts := tr.Now()
		entry, err := src()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("pipeline: source: %w", err)
		}
		ts = tr.Lap(trace.StageParse, ts)
		p.enricher.EnrichInto(&req, entry)
		p.maybeEvict(&p.seqEvictLast, req.Entry.Time, p.cfg.Detectors)
		ts = tr.Lap(trace.StageEnrich, ts) // span includes the eviction-cadence check
		for i, d := range p.cfg.Detectors {
			d.InspectInto(&req, &verdicts[i])
			ts = tr.LapDetector(i, ts)
		}
		if err := sink(Decision{Req: &req, Verdicts: verdicts}); err != nil {
			return fmt.Errorf("pipeline: sink: %w", err)
		}
		tr.Lap(trace.StageSink, ts)
		n++
	}
}

func (p *Pipeline) runConcurrent(ctx context.Context, src EntrySource, sink Sink) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	nd := len(p.cfg.Detectors)
	reqCh := make(chan *detector.Request, p.cfg.Buffer)
	ins := make([]chan *detector.Request, nd)
	outs := make([]chan detector.Verdict, nd)
	for i := range ins {
		ins[i] = make(chan *detector.Request, p.cfg.Buffer)
		outs[i] = make(chan detector.Verdict, p.cfg.Buffer)
	}

	var wg sync.WaitGroup
	srcErr := make(chan error, 1)
	tr := p.cfg.Trace

	// Producer: parse + enrich, fan out.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(reqCh)
		defer func() {
			for _, in := range ins {
				close(in)
			}
		}()
		for {
			ts := tr.Now()
			entry, err := src()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				srcErr <- fmt.Errorf("pipeline: source: %w", err)
				cancel()
				return
			}
			ts = tr.Lap(trace.StageParse, ts)
			req := p.reqPool.Get().(*detector.Request)
			p.enricher.EnrichInto(req, entry)
			tr.Lap(trace.StageEnrich, ts)
			select {
			case reqCh <- req:
			case <-ctx.Done():
				return
			}
			for _, in := range ins {
				select {
				case in <- req:
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	// One goroutine per detector: order-preserving map over its input.
	// Each goroutine sweeps its own detector on the event-time cadence —
	// eviction is verdict-neutral, so per-detector cadence drift cannot
	// desynchronise the zipped verdict streams.
	for i, d := range p.cfg.Detectors {
		wg.Add(1)
		go func(di int, in <-chan *detector.Request, out chan<- detector.Verdict, d detector.Detector) {
			defer wg.Done()
			defer close(out)
			own := []detector.Detector{d}
			var evictLast time.Time
			for req := range in {
				p.maybeEvict(&evictLast, req.Entry.Time, own)
				ts := tr.Now()
				v := d.Inspect(req)
				tr.LapDetector(di, ts)
				select {
				case out <- v:
				case <-ctx.Done():
					return
				}
			}
		}(i, ins[i], outs[i], d)
	}

	// Collector (caller's goroutine): zip verdict streams by position. One
	// verdict slab is reused across decisions — the sink contract already
	// requires callers to copy what they keep — and drained requests go
	// back to the pool. Requests abandoned in channels on a cancelled run
	// are simply dropped; the pool re-allocates on demand.
	verdicts := make([]detector.Verdict, nd)
	var runErr error
collect:
	for req := range reqCh {
		for i := range outs {
			v, ok := <-outs[i]
			if !ok {
				// Detector exited early (cancellation); stop collecting.
				break collect
			}
			verdicts[i] = v
		}
		ts := tr.Now()
		err := sink(Decision{Req: req, Verdicts: verdicts})
		tr.Lap(trace.StageSink, ts)
		p.reqPool.Put(req)
		if err != nil {
			runErr = fmt.Errorf("pipeline: sink: %w", err)
			cancel()
			break
		}
	}
	// Drain to unblock stages, then wait for goroutine exit.
	cancel()
	for range reqCh {
	}
	for i := range outs {
		for range outs[i] {
		}
	}
	wg.Wait()

	select {
	case err := <-srcErr:
		if runErr == nil {
			runErr = err
		}
	default:
	}
	if runErr == nil {
		if err := ctx.Err(); err != nil && !errors.Is(err, context.Canceled) {
			runErr = err
		}
	}
	return runErr
}
