// Package pipeline wires the detection system together as a streaming
// dataflow: parse → enrich → detect (one stateful detector per stage) →
// collect. It offers a deterministic sequential mode and a concurrent mode
// that gives each detector its own goroutine with bounded channels —
// mirroring how the paper's two tools monitored the same traffic
// independently and in parallel.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
)

// Decision is the pipeline's per-request output: the enriched request and
// one verdict per registered detector, in registration order.
type Decision struct {
	// Req is the enriched request. The pointer is owned by the pipeline
	// and only valid during the sink call; copy what you keep.
	Req *detector.Request
	// Verdicts aligns with the pipeline's detector list.
	Verdicts []detector.Verdict
}

// Mode selects the execution strategy.
type Mode int

const (
	// Sequential runs everything on the caller's goroutine; byte-for-byte
	// deterministic and allocation-light. The default.
	Sequential Mode = iota + 1
	// Concurrent fans each request out to one goroutine per detector and
	// zips the verdict streams back in order. Decision *contents* are
	// identical to Sequential (detectors are order-preserving); only the
	// schedule differs.
	Concurrent
)

// Config parameterises New.
type Config struct {
	// Detectors is the ordered detector list (at least one).
	Detectors []detector.Detector
	// Reputation enriches requests with IP categories; nil disables.
	Reputation *iprep.DB
	// Mode selects Sequential (default) or Concurrent execution.
	Mode Mode
	// Buffer is the channel depth per stage in Concurrent mode.
	// Default 256.
	Buffer int
}

// Pipeline executes detection runs. It is single-use-at-a-time: a Pipeline
// must not run two streams concurrently, but may be reused sequentially
// (detector state carries over; call ResetDetectors between independent
// datasets).
type Pipeline struct {
	cfg      Config
	enricher *detector.Enricher
}

// New validates cfg and builds a pipeline.
func New(cfg Config) (*Pipeline, error) {
	if len(cfg.Detectors) == 0 {
		return nil, fmt.Errorf("pipeline: need at least one detector")
	}
	for i, d := range cfg.Detectors {
		if d == nil {
			return nil, fmt.Errorf("pipeline: detector %d is nil", i)
		}
	}
	if cfg.Mode == 0 {
		cfg.Mode = Sequential
	}
	if cfg.Mode != Sequential && cfg.Mode != Concurrent {
		return nil, fmt.Errorf("pipeline: invalid mode %d", int(cfg.Mode))
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	return &Pipeline{cfg: cfg, enricher: detector.NewEnricher(cfg.Reputation)}, nil
}

// Detectors returns the registered detector names in order.
func (p *Pipeline) Detectors() []string {
	names := make([]string, len(p.cfg.Detectors))
	for i, d := range p.cfg.Detectors {
		names[i] = d.Name()
	}
	return names
}

// ResetDetectors clears all detector and enricher state, preparing the
// pipeline for an independent dataset.
func (p *Pipeline) ResetDetectors() {
	for _, d := range p.cfg.Detectors {
		d.Reset()
	}
	p.enricher.Reset()
}

// EntrySource yields log entries in timestamp order; it returns io.EOF
// when the stream ends.
type EntrySource func() (logfmt.Entry, error)

// Sink consumes decisions in stream order; returning an error aborts the
// run.
type Sink func(Decision) error

// Run streams src through the detectors into sink.
func (p *Pipeline) Run(ctx context.Context, src EntrySource, sink Sink) error {
	switch p.cfg.Mode {
	case Concurrent:
		return p.runConcurrent(ctx, src, sink)
	default:
		return p.runSequential(ctx, src, sink)
	}
}

// RunReader streams an access log in Combined Log Format through the
// detectors. Malformed lines are handled according to policy.
func (p *Pipeline) RunReader(ctx context.Context, r io.Reader, policy logfmt.ErrPolicy, sink Sink) error {
	lr := logfmt.NewReader(r, logfmt.ReaderConfig{Policy: policy})
	return p.Run(ctx, lr.Next, sink)
}

func (p *Pipeline) runSequential(ctx context.Context, src EntrySource, sink Sink) error {
	verdicts := make([]detector.Verdict, len(p.cfg.Detectors))
	n := 0
	for {
		if n%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		entry, err := src()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("pipeline: source: %w", err)
		}
		req := p.enricher.Enrich(entry)
		for i, d := range p.cfg.Detectors {
			verdicts[i] = d.Inspect(&req)
		}
		if err := sink(Decision{Req: &req, Verdicts: verdicts}); err != nil {
			return fmt.Errorf("pipeline: sink: %w", err)
		}
		n++
	}
}

func (p *Pipeline) runConcurrent(ctx context.Context, src EntrySource, sink Sink) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	nd := len(p.cfg.Detectors)
	reqCh := make(chan *detector.Request, p.cfg.Buffer)
	ins := make([]chan *detector.Request, nd)
	outs := make([]chan detector.Verdict, nd)
	for i := range ins {
		ins[i] = make(chan *detector.Request, p.cfg.Buffer)
		outs[i] = make(chan detector.Verdict, p.cfg.Buffer)
	}

	var wg sync.WaitGroup
	srcErr := make(chan error, 1)

	// Producer: parse + enrich, fan out.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(reqCh)
		defer func() {
			for _, in := range ins {
				close(in)
			}
		}()
		for {
			entry, err := src()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				srcErr <- fmt.Errorf("pipeline: source: %w", err)
				cancel()
				return
			}
			req := p.enricher.Enrich(entry)
			select {
			case reqCh <- &req:
			case <-ctx.Done():
				return
			}
			for _, in := range ins {
				select {
				case in <- &req:
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	// One goroutine per detector: order-preserving map over its input.
	for i, d := range p.cfg.Detectors {
		wg.Add(1)
		go func(in <-chan *detector.Request, out chan<- detector.Verdict, d detector.Detector) {
			defer wg.Done()
			defer close(out)
			for req := range in {
				select {
				case out <- d.Inspect(req):
				case <-ctx.Done():
					return
				}
			}
		}(ins[i], outs[i], d)
	}

	// Collector (caller's goroutine): zip verdict streams by position.
	var runErr error
collect:
	for req := range reqCh {
		verdicts := make([]detector.Verdict, nd)
		for i := range outs {
			v, ok := <-outs[i]
			if !ok {
				// Detector exited early (cancellation); stop collecting.
				break collect
			}
			verdicts[i] = v
		}
		if err := sink(Decision{Req: req, Verdicts: verdicts}); err != nil {
			runErr = fmt.Errorf("pipeline: sink: %w", err)
			cancel()
			break
		}
	}
	// Drain to unblock stages, then wait for goroutine exit.
	cancel()
	for range reqCh {
	}
	for i := range outs {
		for range outs[i] {
		}
	}
	wg.Wait()

	select {
	case err := <-srcErr:
		if runErr == nil {
			runErr = err
		}
	default:
	}
	if runErr == nil {
		if err := ctx.Err(); err != nil && !errors.Is(err, context.Canceled) {
			runErr = err
		}
	}
	return runErr
}
