package pipeline

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"testing"

	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/statecodec"
	"divscrape/internal/workload"
)

// decisionBytes serialises one decision exactly (bit-level scores and
// reasons included), so equivalence checks compare byte streams.
func decisionBytes(buf *bytes.Buffer, d Decision) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], d.Req.Seq)
	buf.Write(tmp[:])
	for i := range d.Verdicts {
		v := &d.Verdicts[i]
		if v.Alert {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.Score))
		buf.Write(tmp[:])
		buf.WriteString(v.Reasons.Join(","))
		buf.WriteByte(';')
	}
}

// runCollect streams events[from:to] through p and returns the decision
// stream as bytes.
func runCollect(t *testing.T, p *Pipeline, events []workload.Event, from, to int) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := p.Run(context.Background(), sourceFrom(events[from:to]), func(d Decision) error {
		decisionBytes(&buf, d)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkpoint frames p's state through the container codec (round-tripping
// through Encode/Decode, as a process restart would).
func checkpoint(t *testing.T, p *Pipeline) []byte {
	t.Helper()
	w := statecodec.NewWriter()
	if err := p.Checkpoint(w); err != nil {
		t.Fatal(err)
	}
	var f bytes.Buffer
	if err := statecodec.Encode(&f, w); err != nil {
		t.Fatal(err)
	}
	return f.Bytes()
}

func resume(t *testing.T, p *Pipeline, frame []byte) {
	t.Helper()
	r, err := statecodec.Decode(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ResumeFrom(r); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointResumeEquivalenceLargeStream is the durable state plane's
// headline proof: stop a replay at event k, checkpoint, restore into a
// fresh pipeline — of the same or a different topology — and the decision
// stream over the remaining ≥25k events is byte-identical to a run that
// was never interrupted, over a ≥50k-event stream.
func TestCheckpointResumeEquivalenceLargeStream(t *testing.T) {
	if testing.Short() {
		t.Skip("large stream")
	}
	events := generate(t, 6)
	if len(events) < 50000 {
		t.Fatalf("stream too small for the equivalence bar: %d events", len(events))
	}
	k := len(events) / 2

	// The uninterrupted reference, split into head/tail byte streams.
	ref := newPipe(t, Sequential)
	refHead := runCollect(t, ref, events, 0, k)
	refTail := runCollect(t, ref, events, k, len(events))

	build := func(mode Mode, shards int) *Pipeline {
		p, err := New(Config{
			Factories:  pairFactories(),
			Reputation: iprep.BuildFeed(),
			Mode:       mode,
			Shards:     shards,
			Batch:      32,
			Buffer:     64,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	cases := []struct {
		name       string
		head, tail *Pipeline
	}{
		{"seq→seq", build(Sequential, 0), build(Sequential, 0)},
		{"seq→shard4", build(Sequential, 0), build(Sharded, 4)},
		{"shard3→seq", build(Sharded, 3), build(Sequential, 0)},
		{"shard3→shard8", build(Sharded, 3), build(Sharded, 8)},
		{"conc→shard2", build(Concurrent, 0), build(Sharded, 2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := runCollect(t, tc.head, events, 0, k); !bytes.Equal(got, refHead) {
				t.Fatal("head run diverged before the checkpoint")
			}
			frame := checkpoint(t, tc.head)
			resume(t, tc.tail, frame)
			got := runCollect(t, tc.tail, events, k, len(events))
			if !bytes.Equal(got, refTail) {
				t.Fatalf("decision stream after resume differs from uninterrupted run (%d vs %d bytes)", len(got), len(refTail))
			}
		})
	}
}

// TestCheckpointBytesTopologyIndependent: the same traffic prefix
// checkpoints to identical bytes whatever topology processed it — the
// determinism guarantee that makes snapshots diffable across deployments.
func TestCheckpointBytesTopologyIndependent(t *testing.T) {
	events := generate(t, 2)
	k := len(events) * 3 / 4

	var frames [][]byte
	for _, cfg := range []struct {
		mode   Mode
		shards int
	}{{Sequential, 0}, {Sharded, 2}, {Sharded, 7}} {
		p, err := New(Config{
			Factories:  pairFactories(),
			Reputation: iprep.BuildFeed(),
			Mode:       cfg.mode,
			Shards:     cfg.shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		runCollect(t, p, events, 0, k)
		frames = append(frames, checkpoint(t, p))
	}
	for i := 1; i < len(frames); i++ {
		if !bytes.Equal(frames[0], frames[i]) {
			t.Fatalf("checkpoint %d differs from sequential checkpoint (%d vs %d bytes)",
				i, len(frames[i]), len(frames[0]))
		}
	}
}

// TestResumePreservesSequenceNumbers: Decision.Req.Seq continues from k,
// so label sidecars indexed by sequence stay aligned across a restart.
func TestResumePreservesSequenceNumbers(t *testing.T) {
	events := generate(t, 1)
	k := len(events) / 3

	head := newPipe(t, Sequential)
	runCollect(t, head, events, 0, k)
	frame := checkpoint(t, head)

	tail := newPipe(t, Sharded)
	resume(t, tail, frame)
	next := uint64(k)
	err := tail.Run(context.Background(), sourceFrom(events[k:]), func(d Decision) error {
		if d.Req.Seq != next {
			return fmt.Errorf("seq %d, want %d", d.Req.Seq, next)
		}
		next++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestResumeRejectsMismatchedPipeline: a checkpoint restores only into a
// pipeline with the same detector roles.
func TestResumeRejectsMismatchedPipeline(t *testing.T) {
	events := generate(t, 1)
	head := newPipe(t, Sequential)
	runCollect(t, head, events, 0, len(events)/4)
	frame := checkpoint(t, head)

	// A pipeline with only one of the two detectors must refuse.
	p, err := New(Config{
		Factories:  pairFactories()[:1],
		Reputation: iprep.BuildFeed(),
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := statecodec.Decode(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ResumeFrom(r); err == nil {
		t.Fatal("detector-count mismatch accepted")
	}

	// Same count, different order must refuse on the name check.
	f := pairFactories()
	p2, err := New(Config{
		Factories:  []detector.Factory{f[1], f[0]},
		Reputation: iprep.BuildFeed(),
	})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := statecodec.Decode(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.ResumeFrom(r2); !errors.Is(err, statecodec.ErrCorrupt) {
		t.Fatalf("detector-order mismatch: err = %v", err)
	}
}

// TestResumeFromCorruptCheckpointLeavesCleanPipeline: decode failures
// must reset, not wedge, the pipeline.
func TestResumeFromCorruptCheckpointLeavesCleanPipeline(t *testing.T) {
	events := generate(t, 1)
	head := newPipe(t, Sequential)
	runCollect(t, head, events, 0, len(events)/2)

	w := statecodec.NewWriter()
	if err := head.Checkpoint(w); err != nil {
		t.Fatal(err)
	}
	payload := w.Bytes()

	for cut := 0; cut < len(payload); cut += len(payload)/64 + 1 {
		p := newPipe(t, Sharded)
		if err := p.ResumeFrom(statecodec.NewReader(payload[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		// The pipeline must still run cleanly from scratch.
		if got := runCollect(t, p, events, 0, 100); len(got) == 0 {
			t.Fatal("pipeline unusable after failed resume")
		}
	}
}
