package pipeline

import (
	"context"
	"testing"

	"divscrape/internal/detector"
	"divscrape/internal/iprep"
)

// The full sequential decision path — enrich, both detectors, verdict
// recording, sink hand-off — must be allocation-free per request in
// steady state: once caches are warm and session state exists, replaying
// the stream performs only a fixed handful of per-run setup allocations
// no matter how many requests flow through. This is the package-level
// counterpart of the per-component alloc tests in internal/detector,
// internal/sentinel and internal/arcane.
func TestSequentialDecisionPathZeroAllocsSteadyState(t *testing.T) {
	events := generate(t, 2)
	p := newPipe(t, Sequential)

	run := func() {
		if err := p.Run(context.Background(), sourceFrom(events), func(Decision) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Warm: parse caches fill, per-client sessions and their state
	// allocate once. Detector state is deliberately NOT reset afterwards —
	// steady state means the same clients keep flowing.
	run()

	allocs := testing.AllocsPerRun(1, run)
	// A full replay re-touches every session without allocating; only a
	// fixed, stream-length-independent setup cost remains (source closure,
	// context check, pool jitter). With tens of thousands of events, a
	// budget this small proves the per-request cost is zero.
	const budget = 32
	if allocs > budget {
		t.Errorf("sequential replay of %d events allocated %.0f times, want <= %d (0 allocs/request)",
			len(events), allocs, budget)
	}
}

// The sharded mode's pooled verdict buffers must never alias live
// decisions: the contents a sink observes for sequence i are exactly the
// sequential reference's, even though buffers recycle constantly. The
// sink poisons every buffer after reading it, so any slot the pipeline
// fails to overwrite before reuse — or hands to two in-flight decisions
// at once — surfaces as a mismatch. Run under -race in CI (make race),
// which additionally catches a racing writer mid-read.
func TestShardedPooledVerdictsNotAliased(t *testing.T) {
	events := generate(t, 2)

	type ref struct {
		alerts  [2]bool
		scores  [2]float64
		reasons [2]detector.ReasonList
	}
	want := make([]ref, 0, len(events))
	seq := newPipe(t, Sequential)
	err := seq.Run(context.Background(), sourceFrom(events), func(d Decision) error {
		want = append(want, ref{
			alerts:  [2]bool{d.Verdicts[0].Alert, d.Verdicts[1].Alert},
			scores:  [2]float64{d.Verdicts[0].Score, d.Verdicts[1].Score},
			reasons: [2]detector.ReasonList{d.Verdicts[0].Reasons, d.Verdicts[1].Reasons},
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	p, err := New(Config{
		Factories:  pairFactories(),
		Reputation: iprep.BuildFeed(),
		Mode:       Sharded,
		Shards:     4,
		Batch:      16, // small batches force heavy pool churn
		Buffer:     64,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	err = p.Run(context.Background(), sourceFrom(events), func(d Decision) error {
		w := &want[d.Req.Seq]
		for i := 0; i < 2; i++ {
			if d.Verdicts[i].Alert != w.alerts[i] || d.Verdicts[i].Score != w.scores[i] ||
				d.Verdicts[i].Reasons != w.reasons[i] {
				t.Fatalf("seq %d verdict %d diverged from sequential reference (buffer aliasing?): got %+v",
					d.Req.Seq, i, d.Verdicts[i])
			}
		}
		// Poison the pooled buffers: if the pipeline recycles a slot
		// without fully overwriting it, a later decision reads this.
		for i := range d.Verdicts {
			d.Verdicts[i] = detector.Verdict{Score: -1, Alert: true, Reasons: detector.ReasonsOf("poisoned")}
		}
		d.Req.Seq = ^uint64(0)
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(events) {
		t.Fatalf("sharded run delivered %d of %d decisions", n, len(events))
	}
}
