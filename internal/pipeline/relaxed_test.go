package pipeline

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/statecodec"
	"divscrape/internal/trace"
)

// rxDecision is one decision flattened for equivalence comparison: the
// enricher sequence number, the client key, and every verdict field the
// sink can observe.
type rxDecision struct {
	seq      uint64
	ip       uint32
	alerts   [2]bool
	scores   [2]float64
	reasons0 string
	reasons1 string
}

func flatten(d Decision) rxDecision {
	return rxDecision{
		seq:      d.Req.Seq,
		ip:       d.Req.IP,
		alerts:   [2]bool{d.Verdicts[0].Alert, d.Verdicts[1].Alert},
		scores:   [2]float64{d.Verdicts[0].Score, d.Verdicts[1].Score},
		reasons0: d.Verdicts[0].Reasons.Join(","),
		reasons1: d.Verdicts[1].Reasons.Join(","),
	}
}

func newRelaxed(t testing.TB, shards, buffer int) *Pipeline {
	t.Helper()
	p, err := New(Config{
		Factories:  pairFactories(),
		Reputation: iprep.BuildFeed(),
		Mode:       ShardedRelaxed,
		Shards:     shards,
		Buffer:     buffer,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runRelaxedCollect drives RunRelaxed with one collecting sink per shard
// and returns each shard's decision stream in arrival order.
func runRelaxedCollect(t *testing.T, p *Pipeline, src EntrySource) [][]rxDecision {
	t.Helper()
	out := make([][]rxDecision, len(p.shardDets))
	sinks := make([]Sink, len(out))
	for i := range sinks {
		i := i
		sinks[i] = func(d Decision) error {
			out[i] = append(out[i], flatten(d))
			return nil
		}
	}
	if err := p.RunRelaxed(context.Background(), src, sinks); err != nil {
		t.Fatal(err)
	}
	return out
}

// perClient groups a decision stream by client, preserving order.
func perClient(streams ...[]rxDecision) map[uint32][]rxDecision {
	m := make(map[uint32][]rxDecision)
	for _, s := range streams {
		for _, d := range s {
			m[d.ip] = append(m[d.ip], d)
		}
	}
	return m
}

// TestRelaxedEquivalenceLargeStream is the relaxed mode's headline proof,
// the analogue of TestShardedEquivalenceLargeStream under the weaker
// contract: over a ≥50k-event stream and across several shard counts,
// (1) every client's decision sequence is byte-identical to the
// sequential reference — same verdicts, same relative order, same
// sequence numbers — and (2) the union of all shards' decisions is
// multiset-equal to the sequential stream (proved by sorting on the
// unique sequence number and comparing element-wise).
func TestRelaxedEquivalenceLargeStream(t *testing.T) {
	if testing.Short() {
		t.Skip("large stream")
	}
	events := generate(t, 6)
	if len(events) < 50000 {
		t.Fatalf("stream too small for the equivalence bar: %d events", len(events))
	}

	ref := make([]rxDecision, 0, len(events))
	err := newPipe(t, Sequential).Run(context.Background(), sourceFrom(events), func(d Decision) error {
		ref = append(ref, flatten(d))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	refByClient := perClient(ref)

	for _, shards := range []int{1, 3, 8} {
		// Buffer 64 keeps the rings small so full-ring parking and the
		// wake protocol are genuinely exercised, not just the fast path.
		shardStreams := runRelaxedCollect(t, newRelaxed(t, shards, 64), sourceFrom(events))

		total := 0
		merged := make([]rxDecision, len(events))
		seen := make(map[uint32]int) // client -> shard that served it
		for si, stream := range shardStreams {
			total += len(stream)
			for _, d := range stream {
				if prev, ok := seen[d.ip]; ok && prev != si {
					t.Fatalf("shards=%d: client %d served by shards %d and %d — partitioning broken",
						shards, d.ip, prev, si)
				}
				seen[d.ip] = si
				if d.seq >= uint64(len(events)) {
					t.Fatalf("shards=%d: sequence %d out of range", shards, d.seq)
				}
				merged[d.seq] = d
			}
		}
		if total != len(events) {
			t.Fatalf("shards=%d: %d decisions, want %d", shards, total, len(events))
		}
		// Multiset equality: sequence numbers are unique and the reference
		// is seq-ordered, so placing each relaxed decision at its sequence
		// index and comparing element-wise proves the streams are
		// permutations of each other with identical contents.
		for i := range ref {
			if merged[i] != ref[i] {
				t.Fatalf("shards=%d: decision seq=%d differs:\n  seq     %+v\n  relaxed %+v",
					shards, i, ref[i], merged[i])
			}
		}
		// Per-client total order: each shard's stream is FIFO per client,
		// so grouping by client must reproduce the reference sequences
		// exactly.
		gotByClient := perClient(shardStreams...)
		if len(gotByClient) != len(refByClient) {
			t.Fatalf("shards=%d: %d clients, want %d", shards, len(gotByClient), len(refByClient))
		}
		for ip, want := range refByClient {
			got := gotByClient[ip]
			if len(got) != len(want) {
				t.Fatalf("shards=%d: client %d has %d decisions, want %d", shards, ip, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shards=%d: client %d decision %d out of order or altered:\n  want %+v\n  got  %+v",
						shards, ip, i, want[i], got[i])
				}
			}
		}
	}
}

// TestRelaxedSharedSinkMultiset covers the single-sink Run entry point
// (the facade/experiments shape): a mutex-guarded shared sink sees every
// decision exactly once with sequential-identical contents.
func TestRelaxedSharedSinkMultiset(t *testing.T) {
	events := generate(t, 2)

	ref := make([]rxDecision, 0, len(events))
	err := newPipe(t, Sequential).Run(context.Background(), sourceFrom(events), func(d Decision) error {
		ref = append(ref, flatten(d))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	p := newRelaxed(t, 4, 64)
	var mu sync.Mutex
	got := make([]rxDecision, len(events))
	filled := make([]bool, len(events))
	err = p.Run(context.Background(), sourceFrom(events), func(d Decision) error {
		f := flatten(d)
		mu.Lock()
		defer mu.Unlock()
		if f.seq >= uint64(len(events)) || filled[f.seq] {
			return fmt.Errorf("sequence %d out of range or duplicated", f.seq)
		}
		filled[f.seq] = true
		got[f.seq] = f
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if !filled[i] {
			t.Fatalf("decision seq=%d never delivered", i)
		}
		if got[i] != ref[i] {
			t.Fatalf("decision seq=%d differs:\n  seq     %+v\n  relaxed %+v", i, ref[i], got[i])
		}
	}
}

// TestRelaxedCheckpointResume proves checkpoint/resume composes with
// relaxed ordering: interrupt a relaxed replay at the midpoint,
// checkpoint, restore into a fresh relaxed pipeline with a different
// shard count, finish the stream — and every client's concatenated
// decision sequence is byte-identical to an uninterrupted sequential run.
func TestRelaxedCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("large stream")
	}
	events := generate(t, 6)
	if len(events) < 50000 {
		t.Fatalf("stream too small for the equivalence bar: %d events", len(events))
	}
	k := len(events) / 2

	ref := make([]rxDecision, 0, len(events))
	err := newPipe(t, Sequential).Run(context.Background(), sourceFrom(events), func(d Decision) error {
		ref = append(ref, flatten(d))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	refByClient := perClient(ref)

	head := newRelaxed(t, 3, 64)
	headStreams := runRelaxedCollect(t, head, sourceFrom(events[:k]))
	frame := checkpoint(t, head)

	tail := newRelaxed(t, 8, 64)
	resume(t, tail, frame)
	tailStreams := runRelaxedCollect(t, tail, sourceFrom(events[k:]))

	gotByClient := perClient(headStreams...)
	for ip, ds := range perClient(tailStreams...) {
		gotByClient[ip] = append(gotByClient[ip], ds...)
	}
	if len(gotByClient) != len(refByClient) {
		t.Fatalf("%d clients, want %d", len(gotByClient), len(refByClient))
	}
	for ip, want := range refByClient {
		got := gotByClient[ip]
		if len(got) != len(want) {
			t.Fatalf("client %d: %d decisions across resume, want %d", ip, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("client %d decision %d diverged across checkpoint/resume:\n  want %+v\n  got  %+v",
					ip, i, want[i], got[i])
			}
		}
	}
}

// TestRelaxedEvictionNeutralAtIdleWindow extends the eviction-neutrality
// proof to relaxed ordering: with the window at or above every detector
// idle timeout, per-shard windowed sweeps change no per-client decision
// sequence.
func TestRelaxedEvictionNeutralAtIdleWindow(t *testing.T) {
	events := generate(t, 6)

	ref := make([]rxDecision, 0, len(events))
	err := newPipe(t, Sequential).Run(context.Background(), sourceFrom(events), func(d Decision) error {
		ref = append(ref, flatten(d))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	refByClient := perClient(ref)

	p, err := New(Config{
		Factories:   pairFactories(),
		Reputation:  iprep.BuildFeed(),
		Mode:        ShardedRelaxed,
		Shards:      3,
		Buffer:      64,
		EvictWindow: time.Hour, // == sentinel idle, > arcane idle
		EvictEvery:  10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	gotByClient := perClient(runRelaxedCollect(t, p, sourceFrom(events))...)
	if len(gotByClient) != len(refByClient) {
		t.Fatalf("%d clients, want %d", len(gotByClient), len(refByClient))
	}
	for ip, want := range refByClient {
		got := gotByClient[ip]
		if len(got) != len(want) {
			t.Fatalf("client %d: %d decisions, want %d", ip, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("client %d: idle-window eviction changed decision %d under relaxed ordering:\n  want %+v\n  got  %+v",
					ip, i, want[i], got[i])
			}
		}
	}
	// With the window equal to the longest idle timeout, sweeps may find
	// nothing to drop (lazy expiry or a returning client beat them to it)
	// — that is the neutrality being proven — but the cadence itself must
	// run or the test is vacuous.
	if sweeps, _ := p.EvictionStats(); sweeps == 0 {
		t.Error("no sweeps ran; eviction neutrality is vacuous")
	}
}

// TestRelaxedEvictionEquivalenceAggressive is the relaxed leg of the
// metamorphic eviction-equivalence property: under a window well below
// the detector idle timeouts — so sweeps genuinely drop mid-stream state
// — every decision whose client state could not have expired is identical
// to the no-eviction sequential reference, in relaxed order.
func TestRelaxedEvictionEquivalenceAggressive(t *testing.T) {
	events := generate(t, 6)
	const (
		window = 10 * time.Minute
		every  = 2 * time.Minute
	)
	clean, dirty := cleanRequests(events, window)
	if dirty == 0 {
		t.Fatal("no request ever expires under the window; the test is vacuous")
	}

	ref := make([]rxDecision, 0, len(events))
	err := newPipe(t, Sequential).Run(context.Background(), sourceFrom(events), func(d Decision) error {
		ref = append(ref, flatten(d))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	p, err := New(Config{
		Factories:   pairFactories(),
		Reputation:  iprep.BuildFeed(),
		Mode:        ShardedRelaxed,
		Shards:      3,
		Buffer:      64,
		EvictWindow: window,
		EvictEvery:  every,
	})
	if err != nil {
		t.Fatal(err)
	}
	merged := make([]rxDecision, len(events))
	for _, stream := range runRelaxedCollect(t, p, sourceFrom(events)) {
		for _, d := range stream {
			merged[d.seq] = d
		}
	}
	for i := range ref {
		if clean[i] && merged[i] != ref[i] {
			t.Fatalf("eviction changed non-expired decision seq=%d under relaxed ordering:\n  reference %+v\n  relaxed   %+v",
				i, ref[i], merged[i])
		}
	}
	sweeps, evicted := p.EvictionStats()
	if sweeps == 0 || evicted == 0 {
		t.Errorf("sweeps=%d evicted=%d; eviction never ran, equivalence is vacuous", sweeps, evicted)
	}
}

// TestRelaxedVerdictsNotAliased is the relaxed analogue of the sharded
// aliasing test: per-shard verdict slabs and pooled requests recycle
// constantly, and a sink that poisons everything it reads must still see
// sequential-identical contents for every sequence number. A tiny ring
// maximises reuse pressure. Run under -race in CI (make race).
func TestRelaxedVerdictsNotAliased(t *testing.T) {
	events := generate(t, 2)

	type ref struct {
		alerts  [2]bool
		scores  [2]float64
		reasons [2]detector.ReasonList
	}
	want := make([]ref, 0, len(events))
	err := newPipe(t, Sequential).Run(context.Background(), sourceFrom(events), func(d Decision) error {
		want = append(want, ref{
			alerts:  [2]bool{d.Verdicts[0].Alert, d.Verdicts[1].Alert},
			scores:  [2]float64{d.Verdicts[0].Score, d.Verdicts[1].Score},
			reasons: [2]detector.ReasonList{d.Verdicts[0].Reasons, d.Verdicts[1].Reasons},
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	p := newRelaxed(t, 4, 8) // 8-slot rings force heavy pool churn
	var n atomic.Uint64
	sinks := make([]Sink, 4)
	for i := range sinks {
		sinks[i] = func(d Decision) error {
			// Each sequence number arrives exactly once across all shards,
			// so distinct goroutines only ever read distinct elements.
			if d.Req.Seq >= uint64(len(want)) {
				return fmt.Errorf("seq %d out of range", d.Req.Seq)
			}
			w := &want[d.Req.Seq]
			for i := 0; i < 2; i++ {
				if d.Verdicts[i].Alert != w.alerts[i] || d.Verdicts[i].Score != w.scores[i] ||
					d.Verdicts[i].Reasons != w.reasons[i] {
					return fmt.Errorf("seq %d verdict %d diverged from sequential reference (buffer aliasing?): got %+v",
						d.Req.Seq, i, d.Verdicts[i])
				}
			}
			for i := range d.Verdicts {
				d.Verdicts[i] = detector.Verdict{Score: -1, Alert: true, Reasons: detector.ReasonsOf("poisoned")}
			}
			d.Req.Seq = ^uint64(0)
			n.Add(1)
			return nil
		}
	}
	if err := p.RunRelaxed(context.Background(), sourceFrom(events), sinks); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != uint64(len(events)) {
		t.Fatalf("relaxed run delivered %d of %d decisions", got, len(events))
	}
}

func TestRelaxedSinkErrorStopsRun(t *testing.T) {
	events := generate(t, 1)
	boom := errors.New("boom")

	// Per-shard sinks: shard 1 fails after a few decisions.
	p := newRelaxed(t, 4, 64)
	sinks := make([]Sink, 4)
	var calls atomic.Uint64
	for i := range sinks {
		i := i
		n := 0
		sinks[i] = func(Decision) error {
			calls.Add(1)
			if i == 1 {
				if n++; n == 10 {
					return boom
				}
			}
			return nil
		}
	}
	err := p.RunRelaxed(context.Background(), sourceFrom(events), sinks)
	if !errors.Is(err, boom) {
		t.Errorf("per-shard sink error = %v, want boom", err)
	}
	if got := calls.Load(); got >= uint64(len(events)) {
		t.Errorf("sink error did not stop the run: %d calls for %d events", got, len(events))
	}

	// Shared-sink Run path.
	p2 := newRelaxed(t, 4, 64)
	var n2 atomic.Uint64
	err = p2.Run(context.Background(), sourceFrom(events), func(Decision) error {
		if n2.Add(1) == 50 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("shared sink error = %v, want boom", err)
	}
}

func TestRelaxedSourceErrorPropagates(t *testing.T) {
	bad := errors.New("disk on fire")
	p := newRelaxed(t, 4, 64)
	calls := 0
	base := time.Date(2018, 3, 11, 6, 0, 0, 0, time.UTC)
	src := func() (logfmt.Entry, error) {
		calls++
		if calls > 3 {
			return logfmt.Entry{}, bad
		}
		return logfmt.Entry{
			RemoteAddr: "10.0.0.1", Time: base.Add(time.Duration(calls) * time.Second),
			Method: "GET", Path: "/", Proto: "HTTP/1.1",
			Status: 200, Bytes: 1, Referer: "-", UserAgent: "x",
		}, nil
	}
	err := p.Run(context.Background(), src, func(Decision) error { return nil })
	if !errors.Is(err, bad) {
		t.Errorf("error = %v, want source error", err)
	}
}

func TestRelaxedContextCancellation(t *testing.T) {
	events := generate(t, 2)
	p := newRelaxed(t, 4, 64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n atomic.Uint64
	err := p.Run(ctx, sourceFrom(events), func(Decision) error {
		if n.Add(1) == 100 {
			cancel()
		}
		return nil
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want nil or context.Canceled", err)
	}
	if got := n.Load(); got > uint64(len(events)/2) {
		t.Errorf("processed %d of %d after cancel", got, len(events))
	}
	// The pipeline must be reusable after an aborted run (rings drained
	// and reopened): a fresh full run still delivers everything.
	p.ResetDetectors()
	var m atomic.Uint64
	if err := p.Run(context.Background(), sourceFrom(events), func(Decision) error { m.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if got := m.Load(); got != uint64(len(events)) {
		t.Errorf("post-abort run delivered %d of %d decisions", got, len(events))
	}
}

func TestRelaxedNoGoroutineLeaks(t *testing.T) {
	events := generate(t, 1)
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		// Normal completion.
		p := newRelaxed(t, 4, 64)
		if err := p.Run(context.Background(), sourceFrom(events), func(Decision) error { return nil }); err != nil {
			t.Fatal(err)
		}
		// Sink error.
		p2 := newRelaxed(t, 4, 64)
		boom := errors.New("x")
		_ = p2.Run(context.Background(), sourceFrom(events), func(Decision) error { return boom })
		// Cancellation.
		ctx, cancel := context.WithCancel(context.Background())
		p3 := newRelaxed(t, 4, 64)
		var n atomic.Uint64
		_ = p3.Run(ctx, sourceFrom(events), func(Decision) error {
			if n.Add(1) == 10 {
				cancel()
			}
			return nil
		})
		cancel()
	}
	for i := 0; i < 100_000; i++ {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
	}
	t.Errorf("goroutines grew from %d to %d", before, runtime.NumGoroutine())
}

func TestRelaxedRunValidation(t *testing.T) {
	// RunRelaxed demands the matching mode and one sink per shard.
	seq := newPipe(t, Sequential)
	noop := func(Decision) error { return nil }
	if err := seq.RunRelaxed(context.Background(), sourceFrom(nil), []Sink{noop}); err == nil {
		t.Error("RunRelaxed accepted a Sequential pipeline")
	}
	p := newRelaxed(t, 4, 64)
	if err := p.RunRelaxed(context.Background(), sourceFrom(nil), []Sink{noop}); err == nil {
		t.Error("RunRelaxed accepted 1 sink for 4 shards")
	}
	if err := p.RunRelaxed(context.Background(), sourceFrom(nil), []Sink{noop, nil, noop, noop}); err == nil {
		t.Error("RunRelaxed accepted a nil sink")
	}
	// New demands factories for the relaxed topology.
	if _, err := New(Config{Mode: ShardedRelaxed}); err == nil {
		t.Error("ShardedRelaxed without factories accepted")
	}
	if p.Shards() != 4 {
		t.Errorf("Shards() = %d, want 4", p.Shards())
	}
}

// TestRelaxedTracingEquivalence50k extends the tracing-is-observation-
// only proof to relaxed mode. Order across clients is not deterministic,
// so the stream fingerprint is commutative — a wrapping sum of
// per-decision hashes, which is order-insensitive but multiset-sensitive
// — and the checkpoint bytes must still be identical with the plane
// armed or off. The relaxed tracer must record per-stage spans and ring
// occupancy while counting zero merge stalls (there is no merger to
// stall: that is the point of the mode).
func TestRelaxedTracingEquivalence50k(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-event replay")
	}
	const total = 50_000
	events := generate(t, 2)

	fingerprint := func(p *Pipeline) (stream uint64, ckpt []byte, n uint64) {
		t.Helper()
		var sum, count atomic.Uint64
		err := p.Run(context.Background(), cyclingSource(events, total), func(d Decision) error {
			h := fnv.New64a()
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], d.Req.Seq)
			h.Write(buf[:])
			for i := range d.Verdicts {
				v := &d.Verdicts[i]
				b := byte(0)
				if v.Alert {
					b = 1
				}
				h.Write([]byte{b})
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Score))
				h.Write(buf[:])
			}
			sum.Add(h.Sum64())
			count.Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		w := statecodec.NewWriter()
		if err := p.Checkpoint(w); err != nil {
			t.Fatal(err)
		}
		return sum.Load(), append([]byte(nil), w.Bytes()...), count.Load()
	}

	baseHash, baseCkpt, n := fingerprint(newRelaxed(t, 4, 64))
	if n != total {
		t.Fatalf("untraced run sinked %d decisions, want %d", n, total)
	}

	tracer := trace.New(trace.Config{
		Detectors: []string{"sentinel", "arcane"},
		Shards:    4,
		Relaxed:   true,
		Recorder:  trace.RecorderConfig{Rate: 16},
	})
	p, err := New(Config{
		Factories:  pairFactories(),
		Reputation: iprep.BuildFeed(),
		Mode:       ShardedRelaxed,
		Shards:     4,
		Buffer:     64,
		Trace:      tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	tracedHash, tracedCkpt, n := fingerprint(p)
	if n != total {
		t.Fatalf("traced run sinked %d decisions, want %d", n, total)
	}
	if tracedHash != baseHash {
		t.Errorf("decision multiset diverged with tracing on: %x != %x", tracedHash, baseHash)
	}
	if !bytes.Equal(tracedCkpt, baseCkpt) {
		t.Error("checkpoint bytes diverged with tracing on")
	}

	stats := map[string]uint64{}
	for _, st := range tracer.StageStats() {
		stats[st.Name()] = st.Count
	}
	for _, stage := range []string{"parse", "enrich", "detect-sentinel", "detect-arcane", "sink"} {
		if stats[stage] != total {
			t.Errorf("stage %s recorded %d spans, want %d", stage, stats[stage], total)
		}
	}
	if stats["merge"] != 0 {
		t.Errorf("relaxed run recorded %d merge spans; the mode has no merger", stats["merge"])
	}
	if tracer.MergeStalls() != 0 {
		t.Errorf("relaxed run counted %d merge stalls; the mode has no merger", tracer.MergeStalls())
	}
	page := string(tracer.Registry().AppendPrometheus(nil))
	if !strings.Contains(page, "divscrape_shard_ring_depth") {
		t.Error("relaxed tracer registered no ring occupancy gauges")
	}
}

// TestRelaxedSteadyStateAllocs pins the relaxed hot path near zero
// allocations: after a warm run, a full replay costs only the fixed
// per-run setup (context, worker goroutines, sink plumbing) — nothing
// proportional to the stream length.
func TestRelaxedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the channel park/wake path")
	}
	events := generate(t, 2)
	p := newRelaxed(t, 4, 256)
	sinks := make([]Sink, 4)
	for i := range sinks {
		sinks[i] = func(Decision) error { return nil }
	}
	run := func() {
		if err := p.RunRelaxed(context.Background(), sourceFrom(events), sinks); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm: caches, sessions, pools

	allocs := testing.AllocsPerRun(1, run)
	// Fixed per-run cost only: context + cancel, 4 worker goroutines and
	// their closures, the per-run error slice, scheduler jitter on pool
	// refills. With tens of thousands of events a budget this small proves
	// the per-request cost is zero.
	const budget = 96
	if allocs > budget {
		t.Errorf("relaxed replay of %d events allocated %.0f times, want <= %d (0 allocs/request)",
			len(events), allocs, budget)
	}
}
