package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/spsc"
	"divscrape/internal/trace"
)

// Relaxed-ordering sharded execution. The total-order Sharded mode pays
// for its byte-identical stream with a global sequence-ordered merge:
// every decision funnels back through one goroutine and one reorder map,
// which BENCH_PR7's stage spans pin as the wall (merge ≈19µs/decision
// while every other stage sits under 0.6µs). ShardedRelaxed removes the
// funnel instead of optimising it. The producer still parses and
// enriches on one goroutine — sequence numbers stay in input order — and
// still partitions by client IP, but requests travel one at a time
// through a bounded SPSC ring per shard, and each shard drains straight
// into its own sink. No reorder map, no merge stage, no cross-shard
// synchronisation after the hand-off.
//
// Ordering contract: all requests from one client hash to one shard
// (shardOf), the producer enriches in input order, and the ring is FIFO,
// so each client's decision sequence is byte-identical to Sequential —
// which is the only order the detectors, sessions and the mitigation
// ladder depend on. Across clients, the interleaving is a permutation of
// the sequential stream: the union of all shards' decisions is multiset-
// equal to Sequential (every decision carries its enricher sequence
// number, so callers that need total order can sort — or should use
// Sharded). Both guarantees are pinned by the metamorphic equivalence
// suite in relaxed_test.go at ≥50k events.

// relaxedRing is the per-shard hand-off queue. Requests come from the
// pipeline's reqPool and return to it on the shard worker after the sink
// call, so the steady-state stream performs no allocations.
type relaxedRing = spsc.Ring[*detector.Request]

// RunRelaxed streams src through the detectors in ShardedRelaxed mode,
// draining shard i's decisions into sinks[i]. len(sinks) must equal the
// pipeline's shard count. Each sink is called from exactly one goroutine
// (no sink needs to be concurrency-safe), in that shard's stream order;
// across sinks there is no ordering. The usual Decision contract holds
// per call: Req and Verdicts are only valid during the call.
func (p *Pipeline) RunRelaxed(ctx context.Context, src EntrySource, sinks []Sink) error {
	if p.cfg.Mode != ShardedRelaxed {
		return fmt.Errorf("pipeline: RunRelaxed requires ShardedRelaxed mode (have mode %d)", int(p.cfg.Mode))
	}
	if len(sinks) != len(p.shardDets) {
		return fmt.Errorf("pipeline: RunRelaxed needs one sink per shard: %d sinks for %d shards",
			len(sinks), len(p.shardDets))
	}
	for i, s := range sinks {
		if s == nil {
			return fmt.Errorf("pipeline: RunRelaxed sink %d is nil", i)
		}
	}
	return p.runRelaxed(ctx, src, sinks)
}

// runRelaxedShared adapts the single-sink Run entry point: every shard
// drains into the same sink, which therefore must be safe for concurrent
// use. The facade and experiments use this with commutative accumulators
// behind a mutex; order-sensitive consumers should call RunRelaxed with
// per-shard sinks or pick the Sharded mode.
func (p *Pipeline) runRelaxedShared(ctx context.Context, src EntrySource, sink Sink) error {
	sinks := make([]Sink, len(p.shardDets))
	for i := range sinks {
		sinks[i] = sink
	}
	return p.runRelaxed(ctx, src, sinks)
}

func (p *Pipeline) runRelaxed(ctx context.Context, src EntrySource, sinks []Sink) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := ctx.Done()

	shards := len(p.shardDets)
	tr := p.cfg.Trace
	reqPool := &p.reqPool

	// Rings persist on the Pipeline across runs (allocated in New) and are
	// closed at the end of every run; an aborted run may additionally
	// leave items queued. Drain and reopen them here — between runs the
	// caller owns the pipeline, so both sides are quiescent.
	rings := p.rings
	for _, r := range rings {
		for {
			req, ok := r.TryPop()
			if !ok {
				break
			}
			reqPool.Put(req)
		}
		r.Reopen()
	}

	sinkErrs := make([]error, shards)
	var srcErr error
	var wg sync.WaitGroup

	// Shard workers: private detector instances, a private reused verdict
	// slab, a private sink. Each worker also paces its own windowed
	// eviction sweeps on the event time of the requests it judges — a
	// shard only holds state for clients that hash to it, and eviction is
	// verdict-neutral, so per-shard cadence drift is invisible.
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int, ring *relaxedRing, dets []detector.Detector, sink Sink) {
			defer wg.Done()
			verdicts := p.relaxedVerdicts[i]
			var evictLast time.Time
			for {
				req, ok := ring.Pop(done)
				if !ok {
					return
				}
				ts := tr.Now()
				for di, d := range dets {
					d.InspectInto(req, &verdicts[di])
					ts = tr.LapDetector(di, ts)
				}
				err := sink(Decision{Req: req, Verdicts: verdicts})
				tr.Lap(trace.StageSink, ts)
				p.maybeEvict(&evictLast, req.Entry.Time, dets)
				reqPool.Put(req)
				if err != nil {
					sinkErrs[i] = fmt.Errorf("pipeline: sink: %w", err)
					cancel()
					return
				}
			}
		}(i, rings[i], p.shardDets[i], sinks[i])
	}

	// Producer on the caller's goroutine: parse + enrich in input order
	// (the enricher owns the sequence counter), route by client hash,
	// push into the shard's ring. A full ring blocks the producer — that
	// is the backpressure path; the ring parks on a wake channel rather
	// than spinning, so a saturated shard never starves its peers of the
	// core they share.
	for {
		ts := tr.Now()
		entry, err := src()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			srcErr = fmt.Errorf("pipeline: source: %w", err)
			cancel()
			break
		}
		ts = tr.Lap(trace.StageParse, ts)
		req := reqPool.Get().(*detector.Request)
		p.enricher.EnrichInto(req, entry)
		tr.Lap(trace.StageEnrich, ts)
		s := shardOf(req.IP, shards)
		if !rings[s].Push(done, req) {
			// Cancelled (a sink error or the caller's context); the
			// request never entered the ring.
			reqPool.Put(req)
			break
		}
		tr.RingDepth(s, rings[s].Len())
	}

	// End of stream (or abort): close every ring so workers drain what is
	// queued and exit, then collect the first error by shard order. (The
	// next run's drain-and-reopen reclaims anything a cancelled worker
	// left queued.)
	for _, r := range rings {
		r.Close()
	}
	wg.Wait()

	if srcErr != nil {
		return srcErr
	}
	for _, err := range sinkErrs {
		if err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	return nil
}
