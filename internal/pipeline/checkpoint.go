package pipeline

import (
	"fmt"

	"divscrape/internal/detector"
	"divscrape/internal/statecodec"
)

// Checkpoint-resume: a pipeline can serialise everything a future
// process needs to continue a replay exactly where this one stopped —
// the enricher's sequence counter and every detector's per-client state
// — and a freshly constructed pipeline can restore it and produce a
// decision stream byte-identical to the run that was never interrupted.
//
// The snapshot is topology-independent: detector state is written in the
// canonical merged form (see detector.ShardedSnapshotter), with no record
// of the mode or shard count that produced it, so a checkpoint taken by a
// sequential replay resumes into a 16-shard pipeline and vice versa. The
// only requirement is that both sides are built from the same detector
// configuration, in the same order.

// tagPipeline opens a pipeline checkpoint block.
const tagPipeline uint16 = 0x5043

// Checkpoint serialises the pipeline's full detection state into w. The
// pipeline must be idle (between Run calls); every registered detector
// must implement detector.Snapshotter — in Sharded mode,
// detector.ShardedSnapshotter. Checkpoint settles pending idle expiry
// across shards (a decision-neutral operation) but otherwise leaves the
// pipeline ready to continue.
func (p *Pipeline) Checkpoint(w *statecodec.Writer) error {
	w.Tag(tagPipeline)
	p.enricher.SnapshotInto(w)
	roles := p.detectorRoles()
	w.Uint16(uint16(len(roles)))
	for j, role := range roles {
		w.String(role[0].Name())
		ss, ok := role[0].(detector.ShardedSnapshotter)
		if !ok {
			if len(role) == 1 {
				s, ok := role[0].(detector.Snapshotter)
				if !ok {
					return fmt.Errorf("pipeline: detector %d (%s) does not support snapshots", j, role[0].Name())
				}
				s.SnapshotInto(w)
				continue
			}
			return fmt.Errorf("pipeline: detector %d (%s) does not support sharded snapshots", j, role[0].Name())
		}
		if err := ss.SnapshotShardsInto(w, role); err != nil {
			return fmt.Errorf("pipeline: checkpoint detector %d (%s): %w", j, role[0].Name(), err)
		}
	}
	return w.Err()
}

// ResumeFrom restores a checkpoint into this pipeline, replacing all
// detector and enricher state. The pipeline must be idle and built with
// the same detectors (same names, same order, same configuration) as the
// one that wrote the checkpoint; the shard count may differ freely. On
// error the pipeline's detectors are left reset, never half-restored.
func (p *Pipeline) ResumeFrom(r *statecodec.Reader) error {
	if err := p.resumeFrom(r); err != nil {
		p.ResetDetectors()
		return err
	}
	return nil
}

func (p *Pipeline) resumeFrom(r *statecodec.Reader) error {
	if err := r.Expect(tagPipeline); err != nil {
		return err
	}
	if err := p.enricher.RestoreFrom(r); err != nil {
		return err
	}
	roles := p.detectorRoles()
	if got := int(r.Uint16()); got != len(roles) {
		if err := r.Err(); err != nil {
			return err
		}
		return fmt.Errorf("%w: checkpoint has %d detectors, pipeline has %d",
			statecodec.ErrCorrupt, got, len(roles))
	}
	shards := len(p.shardDets)
	part := func(ip uint32) int { return 0 }
	if p.cfg.Mode.shardedTopology() {
		part = func(ip uint32) int { return shardOf(ip, shards) }
	}
	for j, role := range roles {
		name := r.String()
		if err := r.Err(); err != nil {
			return err
		}
		if name != role[0].Name() {
			return fmt.Errorf("%w: checkpoint detector %d is %q, pipeline has %q",
				statecodec.ErrCorrupt, j, name, role[0].Name())
		}
		ss, ok := role[0].(detector.ShardedSnapshotter)
		if !ok {
			if len(role) == 1 {
				s, sok := role[0].(detector.Snapshotter)
				if !sok {
					return fmt.Errorf("pipeline: detector %d (%s) does not support snapshots", j, name)
				}
				if err := s.RestoreFrom(r); err != nil {
					return err
				}
				continue
			}
			return fmt.Errorf("pipeline: detector %d (%s) does not support sharded snapshots", j, name)
		}
		if err := ss.RestoreShards(r, role, part); err != nil {
			return err
		}
	}
	return r.Err()
}

// detectorRoles groups the pipeline's detector instances by role: one
// slice per registered detector, holding that detector's instance on
// every shard (a single instance outside Sharded mode).
func (p *Pipeline) detectorRoles() [][]detector.Detector {
	if p.cfg.Mode.shardedTopology() {
		nd := len(p.shardDets[0])
		roles := make([][]detector.Detector, nd)
		for j := 0; j < nd; j++ {
			role := make([]detector.Detector, len(p.shardDets))
			for i := range p.shardDets {
				role[i] = p.shardDets[i][j]
			}
			roles[j] = role
		}
		return roles
	}
	roles := make([][]detector.Detector, len(p.cfg.Detectors))
	for j, d := range p.cfg.Detectors {
		roles[j] = []detector.Detector{d}
	}
	return roles
}
