package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"divscrape/internal/arcane"
	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/sentinel"
	"divscrape/internal/workload"
)

// generate produces a small in-memory event stream shared by the tests.
func generate(t testing.TB, hours int) []workload.Event {
	t.Helper()
	gen, err := workload.NewGenerator(workload.Config{
		Seed:     7,
		Duration: time.Duration(hours) * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	events, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events generated")
	}
	return events
}

func sourceFrom(events []workload.Event) EntrySource {
	i := 0
	return func() (logfmt.Entry, error) {
		if i >= len(events) {
			return logfmt.Entry{}, io.EOF
		}
		e := events[i].Entry
		i++
		return e, nil
	}
}

// pairFactories builds the calibrated sentinel+arcane factory list.
func pairFactories() []detector.Factory {
	return []detector.Factory{
		func() (detector.Detector, error) { return sentinel.New(sentinel.Config{}) },
		func() (detector.Detector, error) { return arcane.New(arcane.Config{}) },
	}
}

func newPipe(t testing.TB, mode Mode) *Pipeline {
	t.Helper()
	p, err := New(Config{
		Factories:  pairFactories(),
		Reputation: iprep.BuildFeed(),
		Mode:       mode,
		Shards:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no detectors accepted")
	}
	if _, err := New(Config{Detectors: []detector.Detector{nil}}); err == nil {
		t.Error("nil detector accepted")
	}
	sen, err := sentinel.New(sentinel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Detectors: []detector.Detector{sen}, Mode: Mode(42)}); err == nil {
		t.Error("invalid mode accepted")
	}
}

// The concurrent pipeline must produce byte-identical decisions to the
// sequential one: detectors are order-preserving, so only the schedule
// may differ.
func TestSequentialConcurrentEquivalence(t *testing.T) {
	events := generate(t, 2)

	type decision struct {
		alerts [2]bool
		scores [2]float64
	}
	collect := func(mode Mode) []decision {
		p := newPipe(t, mode)
		var out []decision
		err := p.Run(context.Background(), sourceFrom(events), func(d Decision) error {
			out = append(out, decision{
				alerts: [2]bool{d.Verdicts[0].Alert, d.Verdicts[1].Alert},
				scores: [2]float64{d.Verdicts[0].Score, d.Verdicts[1].Score},
			})
			return nil
		})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		return out
	}

	seq := collect(Sequential)
	for _, mode := range []Mode{Concurrent, Sharded} {
		got := collect(mode)
		if len(seq) != len(got) {
			t.Fatalf("mode %d: decision counts differ: %d vs %d", mode, len(seq), len(got))
		}
		for i := range seq {
			if seq[i] != got[i] {
				t.Fatalf("mode %d: decision %d differs: seq %+v got %+v", mode, i, seq[i], got[i])
			}
		}
	}
	if len(seq) != len(events) {
		t.Errorf("decisions %d != events %d", len(seq), len(events))
	}
}

// The sharded pipeline must produce byte-identical Decision streams to the
// sequential reference over a large stream (≥50k events), across several
// shard counts and with small batches so partial-batch flushes, reordering
// and pooling all get exercised. Scores, alerts, sequence numbers and
// reason lists are all compared.
func TestShardedEquivalenceLargeStream(t *testing.T) {
	if testing.Short() {
		t.Skip("large stream")
	}
	events := generate(t, 6)
	if len(events) < 50000 {
		t.Fatalf("stream too small for the equivalence bar: %d events", len(events))
	}

	type decision struct {
		seq      uint64
		alerts   [2]bool
		scores   [2]float64
		reasons0 string
		reasons1 string
	}
	collect := func(p *Pipeline) []decision {
		out := make([]decision, 0, len(events))
		err := p.Run(context.Background(), sourceFrom(events), func(d Decision) error {
			out = append(out, decision{
				seq:      d.Req.Seq,
				alerts:   [2]bool{d.Verdicts[0].Alert, d.Verdicts[1].Alert},
				scores:   [2]float64{d.Verdicts[0].Score, d.Verdicts[1].Score},
				reasons0: d.Verdicts[0].Reasons.Join(","),
				reasons1: d.Verdicts[1].Reasons.Join(","),
			})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	want := collect(newPipe(t, Sequential))
	for _, shards := range []int{1, 3, 8} {
		p, err := New(Config{
			Factories:  pairFactories(),
			Reputation: iprep.BuildFeed(),
			Mode:       Sharded,
			Shards:     shards,
			Batch:      32,
			Buffer:     64,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := collect(p)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d decisions, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: decision %d differs:\n  seq  %+v\n  shard %+v", shards, i, want[i], got[i])
			}
		}
	}
}

func TestRunReaderSkipsMalformed(t *testing.T) {
	events := generate(t, 1)
	var sb strings.Builder
	w := logfmt.NewWriter(&sb)
	for i := range events {
		if err := w.Write(&events[i].Entry); err != nil {
			t.Fatal(err)
		}
		if i == 10 {
			sb.WriteString("THIS LINE IS GARBAGE\n")
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	p := newPipe(t, Sequential)
	var n int
	err := p.RunReader(context.Background(), strings.NewReader(sb.String()), logfmt.Skip,
		func(Decision) error {
			n++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(events) {
		t.Errorf("decisions = %d, want %d (garbage skipped)", n, len(events))
	}

	// Strict policy surfaces the error instead.
	p2 := newPipe(t, Sequential)
	err = p2.RunReader(context.Background(), strings.NewReader(sb.String()), logfmt.Strict,
		func(Decision) error { return nil })
	if err == nil {
		t.Error("strict policy ignored the corrupt line")
	}
}

func TestSinkErrorStopsRun(t *testing.T) {
	events := generate(t, 1)
	boom := errors.New("boom")
	for _, mode := range []Mode{Sequential, Concurrent, Sharded} {
		p := newPipe(t, mode)
		var n int
		err := p.Run(context.Background(), sourceFrom(events), func(Decision) error {
			n++
			if n == 50 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("mode %d: error = %v, want boom", mode, err)
		}
		if n != 50 {
			t.Errorf("mode %d: sink called %d times, want 50", mode, n)
		}
	}
}

func TestSourceErrorPropagates(t *testing.T) {
	bad := errors.New("disk on fire")
	for _, mode := range []Mode{Sequential, Concurrent, Sharded} {
		p := newPipe(t, mode)
		calls := 0
		base := time.Date(2018, 3, 11, 6, 0, 0, 0, time.UTC)
		src := func() (logfmt.Entry, error) {
			calls++
			if calls > 3 {
				return logfmt.Entry{}, bad
			}
			return logfmt.Entry{
				RemoteAddr: "10.0.0.1", Time: base.Add(time.Duration(calls) * time.Second),
				Method: "GET", Path: "/", Proto: "HTTP/1.1",
				Status: 200, Bytes: 1, Referer: "-", UserAgent: "x",
			}, nil
		}
		err := p.Run(context.Background(), src, func(Decision) error { return nil })
		if !errors.Is(err, bad) {
			t.Errorf("mode %d: error = %v, want source error", mode, err)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	events := generate(t, 2)
	for _, mode := range []Mode{Sequential, Concurrent, Sharded} {
		p := newPipe(t, mode)
		ctx, cancel := context.WithCancel(context.Background())
		var n int
		err := p.Run(ctx, sourceFrom(events), func(Decision) error {
			n++
			if n == 100 {
				cancel()
			}
			return nil
		})
		cancel()
		// Sequential surfaces ctx.Err; concurrent may finish in-flight
		// work first, but must stop well before the full stream.
		if mode == Sequential && !errors.Is(err, context.Canceled) {
			t.Errorf("sequential: err = %v, want context.Canceled", err)
		}
		if n > len(events)/2 {
			t.Errorf("mode %d: processed %d of %d after cancel", mode, n, len(events))
		}
	}
}

func TestResetDetectorsMakesRunsIndependent(t *testing.T) {
	events := generate(t, 1)
	p := newPipe(t, Sequential)
	countAlerts := func() int {
		alerts := 0
		err := p.Run(context.Background(), sourceFrom(events), func(d Decision) error {
			if d.Verdicts[0].Alert || d.Verdicts[1].Alert {
				alerts++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return alerts
	}
	first := countAlerts()
	p.ResetDetectors()
	second := countAlerts()
	if first != second {
		t.Errorf("runs differ after reset: %d vs %d", first, second)
	}
}

func TestDetectors(t *testing.T) {
	p := newPipe(t, Sequential)
	names := p.Detectors()
	if len(names) != 2 || names[0] != "sentinel" || names[1] != "arcane" {
		t.Errorf("Detectors() = %v", names)
	}
}

// stallDetector blocks inside Inspect until released; used to verify the
// concurrent pipeline respects cancellation while a stage is busy —
// without any test-side sleeping, the stall and its release are explicit
// channel handshakes.
type stallDetector struct {
	stalled chan struct{} // closed once Inspect is blocking
	release chan struct{} // closing it unblocks every Inspect
	once    sync.Once
}

func (s *stallDetector) Name() string { return "stall" }
func (s *stallDetector) Reset()       {}
func (s *stallDetector) Inspect(*detector.Request) detector.Verdict {
	s.once.Do(func() { close(s.stalled) })
	<-s.release
	return detector.Verdict{}
}
func (s *stallDetector) InspectInto(req *detector.Request, out *detector.Verdict) {
	*out = s.Inspect(req)
}

func TestConcurrentCancellationWithSlowStage(t *testing.T) {
	stall := &stallDetector{stalled: make(chan struct{}), release: make(chan struct{})}
	p, err := New(Config{
		Detectors: []detector.Detector{stall},
		Mode:      Concurrent,
		Buffer:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	calls := 0
	base := time.Date(2018, 3, 11, 6, 0, 0, 0, time.UTC)
	src := func() (logfmt.Entry, error) {
		calls++
		return logfmt.Entry{
			RemoteAddr: "10.0.0.1", Time: base.Add(time.Duration(calls) * time.Second),
			Method: "GET", Path: fmt.Sprintf("/p/%d", calls), Proto: "HTTP/1.1",
			Status: 200, Bytes: 1, Referer: "-", UserAgent: "x",
		}, nil
	}
	done := make(chan error, 1)
	go func() {
		done <- p.Run(ctx, src, func(Decision) error { return nil })
	}()
	// Wait until the stage is provably mid-Inspect, let the deadline
	// expire while it is blocked, then release it; the pipeline must
	// unwind and surface the deadline.
	<-stall.stalled
	<-ctx.Done()
	close(stall.release)
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("err = %v, want deadline exceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline did not terminate after context deadline")
	}
}

func BenchmarkPipelineSequential(b *testing.B) {
	benchmarkPipeline(b, Sequential)
}

func BenchmarkPipelineConcurrent(b *testing.B) {
	benchmarkPipeline(b, Concurrent)
}

func BenchmarkPipelineSharded(b *testing.B) {
	benchmarkPipeline(b, Sharded)
}

func BenchmarkPipelineRelaxed(b *testing.B) {
	benchmarkPipeline(b, ShardedRelaxed)
}

func benchmarkPipeline(b *testing.B, mode Mode) {
	events := generate(b, 2)
	// SetBytes reports the Combined-Log-Format size of the stream, so the
	// MB/s column means "access log bytes per second" — the unit a log
	// pipeline is sized in — rather than an event count mislabelled as
	// bytes.
	var logBytes int64
	var line []byte
	for i := range events {
		line = logfmt.AppendCombined(line[:0], &events[i].Entry)
		logBytes += int64(len(line)) + 1 // newline
	}
	p := newPipe(b, mode)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ResetDetectors()
		var err error
		if mode == ShardedRelaxed {
			sinks := make([]Sink, p.Shards())
			for s := range sinks {
				sinks[s] = func(Decision) error { return nil }
			}
			err = p.RunRelaxed(context.Background(), sourceFrom(events), sinks)
		} else {
			err = p.Run(context.Background(), sourceFrom(events), func(Decision) error { return nil })
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(logBytes)
}

// The concurrent pipeline must not leak goroutines on any exit path:
// normal completion, sink error, or cancellation.
func TestNoGoroutineLeaks(t *testing.T) {
	events := generate(t, 1)
	before := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		for _, mode := range []Mode{Concurrent, Sharded} {
			// Normal completion.
			p := newPipe(t, mode)
			if err := p.Run(context.Background(), sourceFrom(events), func(Decision) error { return nil }); err != nil {
				t.Fatal(err)
			}
			// Sink error.
			p2 := newPipe(t, mode)
			boom := errors.New("x")
			_ = p2.Run(context.Background(), sourceFrom(events), func(Decision) error { return boom })
			// Cancellation.
			ctx, cancel := context.WithCancel(context.Background())
			p3 := newPipe(t, mode)
			n := 0
			_ = p3.Run(ctx, sourceFrom(events), func(Decision) error {
				n++
				if n == 10 {
					cancel()
				}
				return nil
			})
			cancel()
		}
	}

	// Run returns only after wg.Wait, so worker goroutines are already
	// past their last real work; yielding the scheduler a bounded number
	// of times is enough for their exits to be observed — no wall-clock
	// sleep needed.
	for i := 0; i < 100_000; i++ {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
	}
	t.Errorf("goroutines grew from %d to %d", before, runtime.NumGoroutine())
}
