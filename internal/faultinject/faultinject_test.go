package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedPointIsInert(t *testing.T) {
	p := At("test.inert")
	if p.Enabled() {
		t.Fatal("fresh point armed")
	}
	if err := p.Fire(); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
	if f := p.Active(); f != nil {
		t.Fatalf("disarmed Active returned %+v", f)
	}
	if s := p.Skew(); s != 0 {
		t.Fatalf("disarmed Skew returned %v", s)
	}
}

func TestDisarmedFireDoesNotAllocate(t *testing.T) {
	p := At("test.alloc")
	allocs := testing.AllocsPerRun(1000, func() {
		if err := p.Fire(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("disarmed Fire allocates %.1f/op, want 0", allocs)
	}
}

func TestAfterAndTimesAccounting(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Enable("test.window", Fault{Err: boom, After: 2, Times: 3})
	p := At("test.window")
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, p.Fire() != nil)
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("passage %d fired=%v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	if p.Enabled() {
		t.Error("point still armed after Times exhausted")
	}
}

func TestReArmRestartsAccounting(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Enable("test.rearm", Fault{Err: boom, Times: 1})
	p := At("test.rearm")
	if p.Fire() == nil {
		t.Fatal("first arm did not fire")
	}
	if p.Fire() != nil {
		t.Fatal("fired past Times")
	}
	Enable("test.rearm", Fault{Err: boom, Times: 1})
	if p.Fire() == nil {
		t.Fatal("re-armed point did not fire")
	}
}

func TestPanicInjection(t *testing.T) {
	t.Cleanup(Reset)
	Enable("test.panic", Fault{Panic: "injected", Times: 1})
	p := At("test.panic")
	func() {
		defer func() {
			if r := recover(); r != "injected" {
				t.Fatalf("recovered %v, want injected panic", r)
			}
		}()
		_ = p.Fire()
		t.Fatal("Fire did not panic")
	}()
	if err := p.Fire(); err != nil {
		t.Fatalf("point not disarmed after panic firing: %v", err)
	}
}

func TestDelayUsesInstalledSleep(t *testing.T) {
	t.Cleanup(Reset)
	var slept []time.Duration
	SetSleep(func(d time.Duration) { slept = append(slept, d) })
	Enable("test.delay", Fault{Delay: 5 * time.Second, Times: 1})
	if err := At("test.delay").Fire(); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 5*time.Second {
		t.Fatalf("sleep hook saw %v, want one 5s stall", slept)
	}
}

func TestSkewAndPartial(t *testing.T) {
	t.Cleanup(Reset)
	Enable("test.skew", Fault{Skew: -3 * time.Minute})
	if s := At("test.skew").Skew(); s != -3*time.Minute {
		t.Fatalf("skew %v", s)
	}
	Enable("test.partial", Fault{Err: errors.New("short"), Partial: 7})
	f := At("test.partial").Active()
	if f == nil || f.Partial != 7 {
		t.Fatalf("active fault %+v, want Partial 7", f)
	}
}

func TestResetDisarmsEverything(t *testing.T) {
	Enable("test.reset.a", Fault{Err: errors.New("a")})
	Enable("test.reset.b", Fault{Err: errors.New("b")})
	Reset()
	if At("test.reset.a").Enabled() || At("test.reset.b").Enabled() {
		t.Fatal("Reset left a point armed")
	}
}
