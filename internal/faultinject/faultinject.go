// Package faultinject is the chaos plane's injection registry: named
// fault points compiled into production code paths that cost one atomic
// pointer load when disarmed, and inject panics, errors, latency, torn
// writes or clock skew when a test arms them. The chaos suites arm a
// point, drive the system through the failure, and assert that the
// surrounding layer degrades the way its policy promises — quarantine
// and restore in httpguard, retry and fall back in checkpoint, back off
// and keep tailing in stream.
//
// # Cost model
//
// A Point holds an atomic.Pointer to its armed fault. Disarmed — the
// only state production traffic ever sees — Fire is a single atomic
// load and a nil check: no allocation, no branch the CPU cannot
// predict, nothing for the alloc-regression guards to notice. Arming is
// test-only and fully dynamic, so the chaos suite runs against the same
// binary the benchmarks measure; there is no build-tag variant whose
// behaviour could drift from the tested one.
//
// # Usage
//
// The instrumented package declares its points at init:
//
//	var fiWrite = faultinject.At("checkpoint.write")
//
// and consults them at the fault site: Fire for generic error/panic
// sites, Active for sites that need fault detail (partial-write length),
// Skew for clock sites. Tests arm by name:
//
//	faultinject.Enable("checkpoint.write", faultinject.Fault{
//		Err: syscall.ENOSPC, After: 1, Times: 2,
//	})
//	t.Cleanup(faultinject.Reset)
//
// Points are process-global, so chaos tests must not run in parallel
// with each other within a package; Reset disarms everything.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what an armed point injects. The zero value fires on
// every passage and injects nothing — combine the fields that apply.
type Fault struct {
	// Err is returned from Fire (and surfaced on Active's result).
	Err error
	// Panic, when non-nil, makes Fire panic with this value after any
	// configured Delay.
	Panic any
	// Delay is slept (through the hook installed with SetSleep, or
	// time.Sleep by default) before the other effects apply. Chaos
	// tests install a channel-handshake hook instead of sleeping, so
	// "a detector stalls mid-inspect" is deterministic.
	Delay time.Duration
	// Skew is the clock offset returned by Point.Skew, for fault sites
	// that perturb time instead of failing.
	Skew time.Duration
	// Partial is the byte count a torn-write site should persist
	// before failing; see checkpoint's write fault.
	Partial int
	// After skips the first After passages through the point before
	// the fault starts firing.
	After int
	// Times bounds how many passages fire; the point disarms itself
	// after the last one. Zero fires until explicitly disarmed.
	Times int
}

// armed pairs a fault with its passage counter, so re-arming a point
// restarts the After/Times accounting.
type armed struct {
	f    Fault
	hits atomic.Int64
}

// Point is one named injection site. Obtain with At; the zero value is
// a permanently disarmed point.
type Point struct {
	name  string
	state atomic.Pointer[armed]
}

// Name returns the point's registry name.
func (p *Point) Name() string { return p.name }

// take consumes one passage and returns the fault if this passage
// fires. Disarmed points return nil after one atomic load.
func (p *Point) take() *Fault {
	a := p.state.Load()
	if a == nil {
		return nil
	}
	n := int(a.hits.Add(1))
	if n <= a.f.After {
		return nil
	}
	if a.f.Times > 0 {
		if n > a.f.After+a.f.Times {
			p.state.CompareAndSwap(a, nil)
			return nil
		}
		if n == a.f.After+a.f.Times {
			p.state.CompareAndSwap(a, nil)
		}
	}
	return &a.f
}

// Fire consumes one passage: it sleeps the fault's Delay, panics with
// its Panic value, or returns its Err. A disarmed point returns nil at
// the cost of one atomic load.
func (p *Point) Fire() error {
	f := p.take()
	if f == nil {
		return nil
	}
	if f.Delay > 0 {
		sleep(f.Delay)
	}
	if f.Panic != nil {
		panic(f.Panic)
	}
	return f.Err
}

// Active consumes one passage and returns the firing fault, or nil.
// For sites that need fault detail (Partial) beyond what Fire applies;
// the caller is responsible for honouring the fault's fields.
func (p *Point) Active() *Fault { return p.take() }

// Skew consumes one passage and returns the fault's clock offset, or 0.
func (p *Point) Skew() time.Duration {
	f := p.take()
	if f == nil {
		return 0
	}
	return f.Skew
}

// Enabled reports whether the point is currently armed (without
// consuming a passage).
func (p *Point) Enabled() bool { return p.state.Load() != nil }

var (
	mu     sync.Mutex
	points = map[string]*Point{}

	// sleepFn is the Delay implementation; nil selects time.Sleep.
	sleepFn atomic.Pointer[func(time.Duration)]
)

func sleep(d time.Duration) {
	if fn := sleepFn.Load(); fn != nil {
		(*fn)(d)
		return
	}
	time.Sleep(d)
}

// SetSleep installs the hook Delay faults sleep through; nil restores
// time.Sleep. Chaos tests install a channel handshake so stalls are
// deterministic, not timed.
func SetSleep(fn func(time.Duration)) {
	if fn == nil {
		sleepFn.Store(nil)
		return
	}
	sleepFn.Store(&fn)
}

// At returns the registry's point for name, creating it disarmed on
// first use. Instrumented packages call this once at init and keep the
// pointer; tests address the same point by name through Enable.
func At(name string) *Point {
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[name]
	if !ok {
		p = &Point{name: name}
		points[name] = p
	}
	return p
}

// Enable arms the named point with f, replacing any previous fault and
// restarting its After/Times accounting.
func Enable(name string, f Fault) {
	At(name).state.Store(&armed{f: f})
}

// Disable disarms the named point.
func Disable(name string) {
	At(name).state.Store(nil)
}

// Reset disarms every registered point and restores the default sleep,
// returning the process to the production (zero-cost) state. Chaos
// tests register it as a cleanup.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for _, p := range points {
		p.state.Store(nil)
	}
	sleepFn.Store(nil)
}
