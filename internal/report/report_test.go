package report

import (
	"strings"
	"testing"
)

func TestCount(t *testing.T) {
	tests := []struct {
		give uint64
		want string
	}{
		{0, "0"},
		{7, "7"},
		{999, "999"},
		{1000, "1,000"},
		{43648, "43,648"},
		{1469744, "1,469,744"},
		{1231408, "1,231,408"},
		{1000000000, "1,000,000,000"},
	}
	for _, tt := range tests {
		if got := Count(tt.give); got != tt.want {
			t.Errorf("Count(%d) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(1231408, 1469744); got != "83.78%" {
		t.Errorf("Percent = %q, want 83.78%%", got)
	}
	if got := Percent(1, 0); got != "n/a" {
		t.Errorf("Percent with zero denominator = %q", got)
	}
}

func TestMetric(t *testing.T) {
	if got := Metric(0.92345); got != "0.923" {
		t.Errorf("Metric = %q", got)
	}
	if got := Metric(1); got != "1.000" {
		t.Errorf("Metric(1) = %q", got)
	}
}

func TestTableRenderGolden(t *testing.T) {
	tbl := &Table{
		Title:   "Table 2 – Diversity",
		Columns: []string{"Bucket", "Count"},
		Aligns:  []Align{Left, Right},
	}
	tbl.AddRow("Both", "1,231,408")
	tbl.AddRow("Neither", "185,383")

	want := strings.Join([]string{
		"Table 2 – Diversity",
		"Bucket        Count",
		"----------------------",
		"Both      1,231,408",
		"Neither     185,383",
		"",
	}, "\n")
	if got := tbl.String(); got != want {
		t.Errorf("render mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := &Table{Columns: []string{"A", "B", "C"}}
	tbl.AddRow("only-one")
	tbl.AddRow("x", "y", "z")
	out := tbl.String()
	if !strings.Contains(out, "only-one") || !strings.Contains(out, "z") {
		t.Errorf("ragged rows rendered wrong:\n%s", out)
	}
	if tbl.Rows() != 2 {
		t.Errorf("Rows = %d", tbl.Rows())
	}
	if tbl.Cell(0, 0) != "only-one" || tbl.Cell(0, 2) != "" || tbl.Cell(9, 9) != "" {
		t.Error("Cell accessor wrong")
	}
}

func TestTableWideCellGrowsColumn(t *testing.T) {
	tbl := &Table{Columns: []string{"X"}}
	tbl.AddRow("a value wider than the header")
	lines := strings.Split(strings.TrimRight(tbl.String(), "\n"), "\n")
	// Header line must be padded to the widest cell.
	if len(lines[0]) < len("a value wider than the header") {
		t.Errorf("header not padded: %q", lines[0])
	}
}

func TestTableNoColumns(t *testing.T) {
	tbl := &Table{}
	tbl.AddRow("lonely")
	if !strings.Contains(tbl.String(), "lonely") {
		t.Error("headerless table lost its row")
	}
}
