// Package report renders the evaluation's tables as aligned plain text in
// the visual style of the paper's Tables 1-4, including thousands
// separators and side-by-side tool columns.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Align selects column alignment.
type Align int

const (
	// Left-aligned column.
	Left Align = iota + 1
	// Right-aligned column (numbers).
	Right
)

// Table is a titled grid of cells.
type Table struct {
	// Title renders above the table, e.g. "Table 2 – Diversity in the
	// alerting behavior by the two tools".
	Title string
	// Columns are the header labels.
	Columns []string
	// Aligns pairs with Columns; missing entries default to Left.
	Aligns []Align
	rows   [][]string
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the content at (row, col), or "" when out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) {
		return ""
	}
	if col < 0 || col >= len(t.rows[row]) {
		return ""
	}
	return t.rows[row][col]
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Columns)
	for _, row := range t.rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Columns {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	total := 0
	for _, w := range widths {
		total += w + 3
	}
	rule := strings.Repeat("-", total)
	if len(t.Columns) > 0 {
		t.writeRow(&sb, t.Columns, widths)
		sb.WriteString(rule)
		sb.WriteByte('\n')
	}
	for _, row := range t.rows {
		t.writeRow(&sb, row, widths)
	}
	_, err := io.WriteString(w, sb.String())
	if err != nil {
		return fmt.Errorf("report: render table: %w", err)
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}

func (t *Table) writeRow(sb *strings.Builder, cells []string, widths []int) {
	for i, width := range widths {
		var cell string
		if i < len(cells) {
			cell = cells[i]
		}
		align := Left
		if i < len(t.Aligns) {
			align = t.Aligns[i]
		}
		pad := width - len(cell)
		if pad < 0 {
			pad = 0
		}
		if align == Right {
			sb.WriteString(strings.Repeat(" ", pad))
			sb.WriteString(cell)
		} else {
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", pad))
		}
		if i != len(widths)-1 {
			sb.WriteString("   ")
		}
	}
	sb.WriteByte('\n')
}

// Count renders n with thousands separators, as the paper prints counts
// (e.g. 1,469,744).
func Count(n uint64) string {
	s := strconv.FormatUint(n, 10)
	if len(s) <= 3 {
		return s
	}
	var sb strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		sb.WriteString(s[:lead])
		if len(s) > lead {
			sb.WriteByte(',')
		}
	}
	for i := lead; i < len(s); i += 3 {
		sb.WriteString(s[i : i+3])
		if i+3 < len(s) {
			sb.WriteByte(',')
		}
	}
	return sb.String()
}

// Percent renders a ratio as "12.34%".
func Percent(num, den uint64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(num)/float64(den))
}

// Metric renders a [0,1] metric with three decimals.
func Metric(x float64) string { return strconv.FormatFloat(x, 'f', 3, 64) }
