package fnvhash

import (
	"hash/fnv"
	"testing"
)

// The inline folds must agree with the stdlib implementation bit for bit.
func TestMatchesStdlib(t *testing.T) {
	for _, s := range []string{"", "a", "Mozilla/5.0 (X11; Linux x86_64)", "10.1.2.3"} {
		h32 := fnv.New32a()
		h32.Write([]byte(s))
		if got := String32(s); got != h32.Sum32() {
			t.Errorf("String32(%q) = %#x, want %#x", s, got, h32.Sum32())
		}
		h64 := fnv.New64a()
		h64.Write([]byte(s))
		if got := String64(s); got != h64.Sum64() {
			t.Errorf("String64(%q) = %#x, want %#x", s, got, h64.Sum64())
		}
	}
}

func TestIP32FoldsLowByteFirst(t *testing.T) {
	ip := uint32(0x0a010203) // 10.1.2.3 big-endian numeric
	h := fnv.New32a()
	h.Write([]byte{0x03, 0x02, 0x01, 0x0a})
	if got := IP32(ip); got != h.Sum32() {
		t.Errorf("IP32 = %#x, want %#x", got, h.Sum32())
	}
	if IP32(1) == IP32(2) {
		t.Error("adjacent IPs collide")
	}
}

func TestNoAllocs(t *testing.T) {
	s := "Mozilla/5.0 (X11; Linux x86_64)"
	if a := testing.AllocsPerRun(100, func() { String64(s) }); a != 0 {
		t.Errorf("String64 allocates %.1f/op", a)
	}
}
