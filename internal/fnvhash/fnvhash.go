// Package fnvhash provides inline, allocation-free FNV-1a hashing. It is
// the single home of the FNV constants so every component that partitions
// or keys by client — session keying, pipeline sharding, the HTTP guard's
// shard routing — folds bytes the same way.
package fnvhash

const (
	offset32 = 2166136261
	prime32  = 16777619
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// String32 returns the 32-bit FNV-1a hash of s.
func String32(s string) uint32 {
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// String64 returns the 64-bit FNV-1a hash of s.
func String64(s string) uint64 {
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Bytes64 returns the 64-bit FNV-1a hash of b; the state snapshot
// container uses it as its integrity checksum.
func Bytes64(b []byte) uint64 {
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return h
}

// IP32 returns the 32-bit FNV-1a hash of a numeric IPv4 address, folding
// its four bytes low-to-high.
func IP32(ip uint32) uint32 {
	h := uint32(offset32)
	for i := 0; i < 4; i++ {
		h ^= ip >> (8 * i) & 0xff
		h *= prime32
	}
	return h
}
