package trace

import (
	"strings"
	"testing"
	"time"
)

// A manual clock: each call advances by step, so span durations are
// exact and assertions on histogram sums are deterministic.
func stepClock(start time.Time, step time.Duration) func() time.Time {
	t := start
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	ts := tr.Now()
	if !ts.IsZero() {
		t.Error("nil tracer Now() != zero time")
	}
	ts = tr.Lap(StageParse, ts)
	ts = tr.LapDetector(0, ts)
	_ = ts
	tr.QueueDepth(0, 5)
	tr.Occupancy(0, 1)
	tr.MergePending(3)
	tr.MergeStall()
	if tr.MergeStalls() != 0 {
		t.Error("nil tracer MergeStalls() != 0")
	}
	if tr.StageStats() != nil {
		t.Error("nil tracer StageStats() != nil")
	}
	if tr.Registry() != nil {
		t.Error("nil tracer Registry() != nil")
	}
	if tr.Recorder() != nil {
		t.Error("nil tracer Recorder() != nil")
	}
}

// The disabled plane's contract: the span points compiled into the hot
// paths must cost zero allocations when the tracer is nil.
func TestNilTracerSpanPathAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		ts := tr.Now()
		ts = tr.Lap(StageParse, ts)
		ts = tr.Lap(StageEnrich, ts)
		ts = tr.LapDetector(0, ts)
		ts = tr.LapDetector(1, ts)
		tr.Lap(StageSink, ts)
		tr.QueueDepth(0, 1)
		tr.Occupancy(0, 1)
		tr.MergeStall()
		if tr.Recorder().Sample() != SampleNone {
			t.Fatal("nil recorder sampled")
		}
	})
	if allocs != 0 {
		t.Errorf("nil-tracer span path allocates %.1f/op, want 0", allocs)
	}
}

func TestLapRecordsSpans(t *testing.T) {
	start := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	tr := New(Config{
		Detectors: []string{"sentinel", "arcane"},
		Now:       stepClock(start, time.Microsecond),
	})
	ts := tr.Now()
	ts = tr.Lap(StageParse, ts)
	ts = tr.LapDetector(0, ts)
	ts = tr.LapDetector(1, ts)
	tr.Lap(StageSink, ts)

	want := map[string]struct {
		count uint64
		sum   float64
	}{
		"parse":           {1, 1e-6},
		"detect-sentinel": {1, 1e-6},
		"detect-arcane":   {1, 1e-6},
		"sink":            {1, 1e-6},
		"enrich":          {0, 0},
		"ensemble":        {0, 0},
		"merge":           {0, 0},
	}
	for _, st := range tr.StageStats() {
		w, ok := want[st.Name()]
		if !ok {
			t.Errorf("unexpected stage %q", st.Name())
			continue
		}
		if st.Count != w.count {
			t.Errorf("%s count = %d, want %d", st.Name(), st.Count, w.count)
		}
		if diff := st.Sum - w.sum; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s sum = %g, want %g", st.Name(), st.Sum, w.sum)
		}
		delete(want, st.Name())
	}
	if len(want) != 0 {
		t.Errorf("stages missing from StageStats: %v", want)
	}
}

// A zero prev anchors without recording — the idiom that lets a span
// chain start mid-path without a spurious from-the-epoch observation.
func TestLapZeroPrevRecordsNothing(t *testing.T) {
	tr := New(Config{Now: stepClock(time.Unix(0, 0), time.Millisecond)})
	tr.Lap(StageParse, time.Time{})
	for _, st := range tr.StageStats() {
		if st.Count != 0 {
			t.Errorf("stage %s recorded %d spans from a zero prev", st.Name(), st.Count)
		}
	}
}

func TestShardInstruments(t *testing.T) {
	tr := New(Config{Shards: 2})
	tr.QueueDepth(0, 7)
	tr.Occupancy(1, 1)
	tr.Occupancy(1, 1)
	tr.Occupancy(1, -1)
	tr.MergePending(3)
	tr.MergeStall()
	tr.MergeStall()
	if got := tr.MergeStalls(); got != 2 {
		t.Errorf("MergeStalls = %d, want 2", got)
	}
	// Out-of-range shards must be ignored, not panic.
	tr.QueueDepth(9, 1)
	tr.Occupancy(9, 1)

	page := string(tr.Registry().AppendPrometheus(nil))
	for _, want := range []string{
		`divscrape_shard_queue_batches{shard="0"} 7`,
		`divscrape_shard_inflight_batches{shard="1"} 1`,
		"divscrape_merge_pending_decisions 3",
		"divscrape_merge_stalls_total 2",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("registry page missing %q:\n%s", want, page)
		}
	}
}

// Relaxed-mode tracers swap the batch/merge instruments for SPSC ring
// occupancy gauges: the merge families would be dead weight (the mode
// has no merger), and frozen-at-zero metrics on a live pipeline's page
// read as a stuck merger, not an absent one.
func TestRelaxedTracerInstruments(t *testing.T) {
	tr := New(Config{Shards: 2, Relaxed: true})
	tr.RingDepth(0, 5)
	tr.RingDepth(1, 2)
	// Out-of-range shards must be ignored, not panic.
	tr.RingDepth(9, 1)
	// Merge/batch setters degrade to no-ops in relaxed topology.
	tr.QueueDepth(0, 7)
	tr.Occupancy(0, 1)
	tr.MergePending(3)
	tr.MergeStall()
	if tr.MergeStalls() != 0 {
		t.Error("relaxed tracer counted a merge stall")
	}
	page := string(tr.Registry().AppendPrometheus(nil))
	for _, want := range []string{
		`divscrape_shard_ring_depth{shard="0"} 5`,
		`divscrape_shard_ring_depth{shard="1"} 2`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("relaxed registry page missing %q:\n%s", want, page)
		}
	}
	for _, absent := range []string{
		"divscrape_shard_queue_batches",
		"divscrape_shard_inflight_batches",
		"divscrape_merge_pending_decisions",
		"divscrape_merge_stalls_total",
	} {
		if strings.Contains(page, absent) {
			t.Errorf("relaxed registry page still exposes merge-era family %q:\n%s", absent, page)
		}
	}
	// And the inverse: a total-order tracer has no ring gauges.
	ordered := New(Config{Shards: 2})
	ordered.RingDepth(0, 5)
	if page := string(ordered.Registry().AppendPrometheus(nil)); strings.Contains(page, "divscrape_shard_ring_depth") {
		t.Errorf("total-order registry page exposes ring gauges:\n%s", page)
	}
}

// Unsharded tracers (httpguard, sequential replays) must not expose
// shard gauges, and the merge setters must degrade to no-ops.
func TestUnshardedTracerHasNoShardInstruments(t *testing.T) {
	tr := New(Config{})
	tr.QueueDepth(0, 5)
	tr.Occupancy(0, 1)
	tr.MergePending(3)
	tr.MergeStall()
	if tr.MergeStalls() != 0 {
		t.Error("unsharded tracer counted a merge stall")
	}
	page := string(tr.Registry().AppendPrometheus(nil))
	for _, absent := range []string{"divscrape_shard_", "divscrape_merge_"} {
		if strings.Contains(page, absent) {
			t.Errorf("unsharded registry page contains %q:\n%s", absent, page)
		}
	}
}
