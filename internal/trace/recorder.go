package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"divscrape/internal/detector"
)

// SampleKind says why a decision was captured into the flight recorder.
type SampleKind uint8

const (
	// SampleNone: not captured.
	SampleNone SampleKind = iota
	// SampleHead: one of the first RecorderConfig.Head decisions, kept
	// forever (the stream's opening is where warmup bugs live).
	SampleHead
	// SampleRate: every RecorderConfig.Rate-th decision, the steady-state
	// cross-section.
	SampleRate
	// SampleEscalation: the mitigation rung increased — always captured,
	// because an escalation is exactly the decision an operator will be
	// asked to justify.
	SampleEscalation
	// SampleClient: the client is explicitly watched
	// (RecorderConfig.Clients / -explain).
	SampleClient
)

var sampleNames = [...]string{"", "head", "rate", "escalation", "client"}

// String returns the kind's wire name ("" for SampleNone).
func (k SampleKind) String() string {
	if int(k) < len(sampleNames) {
		return sampleNames[k]
	}
	return "sample(?)"
}

// Feature is one named feature value from a detector's vector snapshot.
type Feature struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// DetectorRecord is one detector's contribution to a decision record.
type DetectorRecord struct {
	Detector string `json:"detector"`
	// Skipped marks a detector that did not judge this request (it was
	// quarantined by the failure plane); Alert/Score are then the degraded
	// defaults, not a verdict.
	Skipped  bool      `json:"skipped,omitempty"`
	Alert    bool      `json:"alert"`
	Score    float64   `json:"score"`
	Reasons  []string  `json:"reasons,omitempty"`
	Features []Feature `json:"features,omitempty"`
}

// DetectorRecordOf builds one detector's record from its verdict and,
// when the detector implements detector.Explainer and produced a vector
// for this request, its feature snapshot. ex may be nil.
func DetectorRecordOf(name string, v *detector.Verdict, ex detector.Explainer) DetectorRecord {
	dr := DetectorRecord{Detector: name, Alert: v.Alert, Score: v.Score, Reasons: v.Reasons.Strings()}
	if ex != nil {
		if vals, ok := ex.LastFeatures(); ok {
			names := ex.FeatureNames()
			dr.Features = make([]Feature, len(vals))
			for i := range vals {
				dr.Features[i] = Feature{Name: names[i], Value: vals[i]}
			}
		}
	}
	return dr
}

// Record is one complete captured decision: everything needed to answer
// "why did the system do that to this client". All slices are owned by
// the record (capture copies out of pooled hot-path storage).
type Record struct {
	// Seq is the request's stream sequence number.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Client is the decision key (client IP).
	Client string `json:"client"`
	// Sampled names the capture cause: head, rate, escalation or client.
	Sampled   string           `json:"sampled"`
	Detectors []DetectorRecord `json:"detectors"`
	// Alerted / Confirmed are the ensemble's 1oo2 / 2oo2 votes.
	Alerted   bool `json:"alerted"`
	Confirmed bool `json:"confirmed"`
	// Action is the mitigation decision ("" when no engine is attached);
	// RungBefore/RungAfter are the client's ladder rung around it.
	Action     string  `json:"action,omitempty"`
	RungBefore string  `json:"rung_before,omitempty"`
	RungAfter  string  `json:"rung_after,omitempty"`
	Suspicion  float64 `json:"suspicion"`
}

// Event is one provenance event outside the per-decision flow: detector
// quarantine/restore from the failure plane, checkpoint cuts, watchdog
// trips. Client is empty for system-wide events.
type Event struct {
	Time     time.Time `json:"time"`
	Client   string    `json:"client,omitempty"`
	Shard    int       `json:"shard"`
	Kind     string    `json:"kind"`
	Detector string    `json:"detector,omitempty"`
	Detail   string    `json:"detail,omitempty"`
}

// Timeline is the full provenance view for one client: its captured
// decision records in stream order plus the provenance events that frame
// them (system-wide events included — a quarantine explains a degraded
// verdict even though it names no client).
type Timeline struct {
	Client  string   `json:"client"`
	Records []Record `json:"records"`
	Events  []Event  `json:"events"`
}

// RecorderConfig bounds and steers the flight recorder. The zero value
// takes every default.
type RecorderConfig struct {
	// Capacity is the record ring size (default 1024). Once full, new
	// captures overwrite the oldest.
	Capacity int
	// Head preserves the first Head sampled-stream decisions outside the
	// ring (default 64; negative disables head sampling).
	Head int
	// Rate captures every Rate-th decision (default 256; negative
	// disables rate sampling). Sampling is a deterministic counter, not a
	// coin flip, so identical streams capture identical records.
	Rate int
	// Clients are always-capture client keys (the -explain targets).
	Clients []string
	// Events is the provenance event ring size (default 256).
	Events int
	// Sink, when set, receives every captured record — the JSONL audit
	// stream behind scrapedetect -trace-out. It is invoked under the
	// recorder mutex, in capture order; keep it fast (buffered writer).
	Sink func(Record)
}

const (
	defaultCapacity = 1024
	defaultHead     = 64
	defaultRate     = 256
	defaultEvents   = 256
)

// Recorder is the bounded decision flight recorder. The unsampled path
// is one atomic increment (Sample); only actual captures take the mutex.
// A nil *Recorder is safe: it samples nothing and stores nothing.
type Recorder struct {
	capacity int
	headN    int
	rate     int
	clients  []string
	sink     func(Record)

	seen       atomic.Uint64 // decisions offered to Sample
	captured   atomic.Uint64 // records stored
	overwrites atomic.Uint64 // ring slots overwritten before read
	eventCount atomic.Uint64

	mu       sync.Mutex
	head     []Record
	ring     []Record
	ringNext int // next overwrite index once len(ring) == capacity
	events   []Event
	evNext   int
}

func newRecorder(cfg RecorderConfig) *Recorder {
	r := &Recorder{
		capacity: cfg.Capacity,
		headN:    cfg.Head,
		rate:     cfg.Rate,
		clients:  append([]string(nil), cfg.Clients...),
		sink:     cfg.Sink,
	}
	if r.capacity <= 0 {
		r.capacity = defaultCapacity
	}
	switch {
	case r.headN == 0:
		r.headN = defaultHead
	case r.headN < 0:
		r.headN = 0
	}
	switch {
	case r.rate == 0:
		r.rate = defaultRate
	case r.rate < 0:
		r.rate = 0
	}
	evCap := cfg.Events
	if evCap <= 0 {
		evCap = defaultEvents
	}
	r.events = make([]Event, 0, evCap)
	return r
}

// Sample counts one decision and says whether the head/rate policy
// selects it. Callers upgrade the result themselves for escalations
// (SampleEscalation) and watched clients (WantClient → SampleClient) —
// the recorder cannot know either without the decision in hand, and the
// unsampled fast path must stay one atomic add.
func (r *Recorder) Sample() SampleKind {
	if r == nil {
		return SampleNone
	}
	n := r.seen.Add(1)
	if n <= uint64(r.headN) {
		return SampleHead
	}
	if r.rate > 0 && n%uint64(r.rate) == 0 {
		return SampleRate
	}
	return SampleNone
}

// WantClient reports whether client is on the always-capture list.
func (r *Recorder) WantClient(client string) bool {
	if r == nil {
		return false
	}
	for _, c := range r.clients {
		if c == client {
			return true
		}
	}
	return false
}

// Add stores a captured record. rec.Sampled must be set (records with an
// empty cause are dropped); head-sampled records go to the preserved
// head slice while it has room, everything else to the overwrite ring.
func (r *Recorder) Add(rec Record) {
	if r == nil || rec.Sampled == "" {
		return
	}
	r.captured.Add(1)
	r.mu.Lock()
	if rec.Sampled == sampleNames[SampleHead] && len(r.head) < r.headN {
		r.head = append(r.head, rec)
	} else if len(r.ring) < r.capacity {
		r.ring = append(r.ring, rec)
	} else {
		r.overwrites.Add(1)
		r.ring[r.ringNext] = rec
		r.ringNext = (r.ringNext + 1) % r.capacity
	}
	if r.sink != nil {
		r.sink(rec)
	}
	r.mu.Unlock()
}

// AddEvent records a provenance event into the bounded event ring.
func (r *Recorder) AddEvent(ev Event) {
	if r == nil {
		return
	}
	r.eventCount.Add(1)
	r.mu.Lock()
	if len(r.events) < cap(r.events) {
		r.events = append(r.events, ev)
	} else {
		r.events[r.evNext] = ev
		r.evNext = (r.evNext + 1) % cap(r.events)
	}
	r.mu.Unlock()
}

// Recent returns up to limit captured records, newest first, optionally
// filtered by client and/or action. limit <= 0 means no limit. The
// returned records are copies.
func (r *Recorder) Recent(limit int, client, action string) []Record {
	if r == nil {
		return nil
	}
	match := func(rec *Record) bool {
		if client != "" && rec.Client != client {
			return false
		}
		if action != "" && rec.Action != action {
			return false
		}
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, min(nonZero(limit), len(r.ring)+len(r.head)))
	// Ring newest → oldest: walk backwards from the slot before ringNext
	// (append-phase rings are newest at the end, ringNext == 0).
	for i := 0; i < len(r.ring); i++ {
		idx := (r.ringNext - 1 - i + 2*len(r.ring)) % len(r.ring)
		if rec := &r.ring[idx]; match(rec) {
			out = append(out, *rec)
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	for i := len(r.head) - 1; i >= 0; i-- {
		if rec := &r.head[i]; match(rec) {
			out = append(out, *rec)
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}

func nonZero(limit int) int {
	if limit <= 0 {
		return 1 << 20
	}
	return limit
}

// Explain assembles the provenance timeline for one client: its captured
// records in stream order plus the provenance events that frame them.
func (r *Recorder) Explain(client string) Timeline {
	tl := Timeline{Client: client}
	if r == nil {
		return tl
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.head {
		if r.head[i].Client == client {
			tl.Records = append(tl.Records, r.head[i])
		}
	}
	// Ring oldest → newest.
	for i := 0; i < len(r.ring); i++ {
		idx := (r.ringNext + i) % len(r.ring)
		if r.ring[idx].Client == client {
			tl.Records = append(tl.Records, r.ring[idx])
		}
	}
	for i := 0; i < len(r.events); i++ {
		idx := i
		if len(r.events) == cap(r.events) {
			idx = (r.evNext + i) % len(r.events)
		}
		if ev := r.events[idx]; ev.Client == "" || ev.Client == client {
			tl.Events = append(tl.Events, ev)
		}
	}
	return tl
}

// RecorderStats summarises recorder activity for the trace endpoint.
type RecorderStats struct {
	// Seen counts decisions offered to the sampler.
	Seen uint64 `json:"seen"`
	// Captured counts records stored (any sample kind).
	Captured uint64 `json:"captured"`
	// Overwritten counts ring slots recycled before being read.
	Overwritten uint64 `json:"overwritten"`
	// Events counts provenance events recorded.
	Events uint64 `json:"events"`
	// Held is the number of records currently retrievable (head + ring).
	Held int `json:"held"`
}

// Stats snapshots the recorder counters.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	r.mu.Lock()
	held := len(r.head) + len(r.ring)
	r.mu.Unlock()
	return RecorderStats{
		Seen:        r.seen.Load(),
		Captured:    r.captured.Load(),
		Overwritten: r.overwrites.Load(),
		Events:      r.eventCount.Load(),
		Held:        held,
	}
}
