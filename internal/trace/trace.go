// Package trace is the decision provenance and pipeline tracing plane:
// per-stage span recording that feeds latency histograms and shard
// occupancy gauges into an internal/metrics registry, plus a sampled
// flight recorder (recorder.go) that captures complete decision records —
// feature snapshot, each detector's verdict and reasons, the ensemble
// outcome and the mitigation rung transition — for the clients that
// matter.
//
// The whole package is built around one contract: a nil *Tracer is the
// disabled plane. Every method has a nil receiver fast path that returns
// immediately, so call sites thread an untested `tr.Lap(...)` straight
// through the hot path and pay one nil check when tracing is off. The
// disabled path performs zero allocations and zero atomic operations;
// the pipeline and httpguard alloc-regression tests pin that.
//
// When enabled, the update side inherits internal/metrics' discipline:
// Lap and the gauge setters are a clock read plus a few atomics — no
// locks, no allocations — so tracing a production guard distorts the
// latencies it is measuring as little as possible. Only a *sampled*
// flight-record capture takes a (leaf) mutex and allocates.
package trace

import (
	"strconv"
	"time"

	"divscrape/internal/metrics"
)

// Stage identifies one pipeline stage in a span. The stages mirror the
// decision path: parse → enrich → detect (per detector) → ensemble →
// merge → sink. Not every mode exercises every stage (httpguard has no
// parse or merge; the sequential pipeline has no merge) — unexercised
// stages simply record nothing.
type Stage uint8

const (
	// StageParse covers pulling and parsing one record from the source.
	StageParse Stage = iota
	// StageEnrich covers UA parse, IP conversion and reputation lookup.
	StageEnrich
	// StageDetect covers one detector's InspectInto; it is recorded per
	// detector via LapDetector, never via Lap.
	StageDetect
	// StageEnsemble covers adjudication plus the mitigation ladder step.
	StageEnsemble
	// StageMerge covers the sharded merger's handling of one result batch:
	// reorder bookkeeping plus any decisions it emits (StageSink spans are
	// nested inside it in sharded mode — the merger is the serial section,
	// so its span deliberately includes the sink work it serialises).
	StageMerge
	// StageSink covers the caller's sink callback for one decision.
	StageSink

	numStages
)

var stageNames = [numStages]string{"parse", "enrich", "detect", "ensemble", "merge", "sink"}

// String returns the stage's label value in divscrape_stage_seconds.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage(" + strconv.Itoa(int(s)) + ")"
}

// StageBuckets are the histogram bounds (seconds) for per-stage spans.
// Stages run tens of nanoseconds to tens of microseconds in steady state,
// so the ladder starts at 100ns; the top buckets catch scheduling stalls
// and cold paths.
var StageBuckets = []float64{
	1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1e-2,
}

// Config configures a Tracer.
type Config struct {
	// Registry receives the tracing instruments. Nil builds a private
	// registry, readable via Tracer.Registry — convenient for benchmarks
	// and tests that only want StageStats.
	Registry *metrics.Registry
	// Detectors names the detectors, in inspection order; LapDetector(i,·)
	// records into the histogram labelled Detectors[i]. Required if
	// LapDetector will be used.
	Detectors []string
	// Shards, when > 0, registers per-shard queue-depth and in-flight
	// batch gauges plus the merge-stall instruments (sharded pipeline
	// topology). Leave 0 for sequential/concurrent modes and httpguard.
	Shards int
	// Relaxed marks a ShardedRelaxed pipeline topology: with Shards > 0 it
	// swaps the batch/merge instruments (queue depth, in-flight batches,
	// merge pending, merge stalls — none of which exist without a merger)
	// for per-shard SPSC ring occupancy gauges
	// (divscrape_shard_ring_depth), so a relaxed pipeline's metrics page
	// never shows dead merge families frozen at zero.
	Relaxed bool
	// Now supplies timestamps for spans and flight records; nil means
	// time.Now. Tests inject deterministic clocks here.
	Now func() time.Time
	// Recorder configures the decision flight recorder; the zero value
	// takes the documented defaults.
	Recorder RecorderConfig
}

// Tracer records per-stage spans and shard occupancy, and owns the
// flight recorder. A nil Tracer is the disabled plane: every method is
// safe to call and does nothing. Construct with New.
type Tracer struct {
	now func() time.Time
	reg *metrics.Registry
	rec *Recorder

	stage       [numStages]*metrics.Histogram // StageDetect slot is nil; see detect
	detect      []*metrics.Histogram
	detectNames []string

	queue     []*metrics.Gauge
	inflight  []*metrics.Gauge
	ring      []*metrics.Gauge
	mergePend *metrics.Gauge
	stalls    *metrics.Counter
}

// New builds an enabled Tracer, registering its instruments into
// cfg.Registry (or a private registry when nil). Metric names are fixed:
//
//	divscrape_stage_seconds{stage=...}            per-stage span histograms
//	divscrape_stage_seconds{stage="detect",detector=...}
//	divscrape_shard_queue_batches{shard=...}      input queue depth at hand-off
//	divscrape_shard_inflight_batches{shard=...}   batches between producer and recycle
//	divscrape_merge_pending_decisions             decisions parked in the reorder map
//	divscrape_merge_stalls_total                  batches that emitted nothing
//	divscrape_shard_ring_depth{shard=...}         relaxed-mode SPSC ring occupancy
//	                                              (replaces the four above when Relaxed)
//	divscrape_trace_decisions_total               decisions offered to the recorder
//	divscrape_trace_records_total                 flight records captured
//	divscrape_trace_record_drops_total            ring overwrites of unread records
//	divscrape_trace_events_total                  provenance events recorded
func New(cfg Config) *Tracer {
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	t := &Tracer{now: now, reg: reg, rec: newRecorder(cfg.Recorder)}

	const stageName = "divscrape_stage_seconds"
	const stageHelp = "Per-stage pipeline span latency in seconds."
	for s := Stage(0); s < numStages; s++ {
		if s == StageDetect {
			continue // registered per detector below
		}
		t.stage[s] = reg.MustHistogram(stageName, stageHelp, StageBuckets,
			metrics.Label{Key: "stage", Value: s.String()})
	}
	t.detect = make([]*metrics.Histogram, len(cfg.Detectors))
	t.detectNames = append([]string(nil), cfg.Detectors...)
	for i, name := range cfg.Detectors {
		t.detect[i] = reg.MustHistogram(stageName, stageHelp, StageBuckets,
			metrics.Label{Key: "stage", Value: StageDetect.String()},
			metrics.Label{Key: "detector", Value: name})
	}

	switch {
	case cfg.Shards > 0 && cfg.Relaxed:
		t.ring = make([]*metrics.Gauge, cfg.Shards)
		for i := 0; i < cfg.Shards; i++ {
			t.ring[i] = reg.MustGauge("divscrape_shard_ring_depth",
				"Requests queued in each shard's SPSC hand-off ring, observed at producer push.",
				metrics.Label{Key: "shard", Value: strconv.Itoa(i)})
		}
	case cfg.Shards > 0:
		t.queue = make([]*metrics.Gauge, cfg.Shards)
		t.inflight = make([]*metrics.Gauge, cfg.Shards)
		for i := 0; i < cfg.Shards; i++ {
			lbl := metrics.Label{Key: "shard", Value: strconv.Itoa(i)}
			t.queue[i] = reg.MustGauge("divscrape_shard_queue_batches",
				"Input queue depth observed at each batch hand-off, per shard.", lbl)
			t.inflight[i] = reg.MustGauge("divscrape_shard_inflight_batches",
				"Result batches between producer hand-off and merger recycle, per shard.", lbl)
		}
		t.mergePend = reg.MustGauge("divscrape_merge_pending_decisions",
			"Decisions parked in the merger's reorder map awaiting the next sequence number.")
		t.stalls = reg.MustCounter("divscrape_merge_stalls_total",
			"Result batches whose arrival emitted no decisions (merger blocked on an earlier sequence).")
	}

	reg.MustCounterFunc("divscrape_trace_decisions_total",
		"Decisions offered to the flight recorder's sampler.", t.rec.seen.Load)
	reg.MustCounterFunc("divscrape_trace_records_total",
		"Flight records captured (head, rate, escalation or client sampling).", t.rec.captured.Load)
	reg.MustCounterFunc("divscrape_trace_record_drops_total",
		"Flight records overwritten in the ring before being read.", t.rec.overwrites.Load)
	reg.MustCounterFunc("divscrape_trace_events_total",
		"Provenance events (quarantine, restore, checkpoint) recorded.", t.rec.eventCount.Load)
	return t
}

// Registry returns the registry the tracer's instruments live in (the
// private one when Config.Registry was nil). Nil receiver returns nil.
func (t *Tracer) Registry() *metrics.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Recorder returns the flight recorder. Nil receiver returns a nil
// *Recorder, which is itself safe to use (every Recorder method no-ops).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Now returns the tracer's clock reading, or the zero time when disabled.
// Span call sites anchor with ts := tr.Now() and then chain Lap calls.
func (t *Tracer) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.now()
}

// Lap records a span for stage s covering prev → now and returns now, so
// consecutive stages chain: ts = tr.Lap(StageParse, ts). A nil tracer or
// zero prev records nothing. StageDetect must go through LapDetector.
func (t *Tracer) Lap(s Stage, prev time.Time) time.Time {
	if t == nil {
		return prev
	}
	now := t.now()
	if h := t.stage[s]; h != nil && !prev.IsZero() {
		h.Observe(now.Sub(prev).Seconds())
	}
	return now
}

// LapDetector is Lap for the detect stage of detector i (inspection
// order, matching Config.Detectors).
func (t *Tracer) LapDetector(i int, prev time.Time) time.Time {
	if t == nil {
		return prev
	}
	now := t.now()
	if i < len(t.detect) && !prev.IsZero() {
		t.detect[i].Observe(now.Sub(prev).Seconds())
	}
	return now
}

// QueueDepth records the input queue depth observed when handing a batch
// to shard. Out-of-range shards are ignored.
func (t *Tracer) QueueDepth(shard, depth int) {
	if t == nil || shard >= len(t.queue) {
		return
	}
	t.queue[shard].Set(int64(depth))
}

// Occupancy moves shard's in-flight batch gauge by delta (+1 at producer
// hand-off, −1 when the merger recycles the batch).
func (t *Tracer) Occupancy(shard, delta int) {
	if t == nil || shard >= len(t.inflight) {
		return
	}
	t.inflight[shard].Add(int64(delta))
}

// RingDepth records shard's SPSC ring occupancy, observed by the
// relaxed-mode producer after a push. Out-of-range shards (and tracers
// built without Relaxed) are ignored.
func (t *Tracer) RingDepth(shard, depth int) {
	if t == nil || shard >= len(t.ring) {
		return
	}
	t.ring[shard].Set(int64(depth))
}

// MergePending records the size of the merger's reorder map after
// processing a batch.
func (t *Tracer) MergePending(n int) {
	if t == nil || t.mergePend == nil {
		return
	}
	t.mergePend.Set(int64(n))
}

// MergeStall counts a batch whose arrival emitted no decisions: the
// merger is holding completed work hostage to an earlier sequence number
// still in flight — the serialisation the ROADMAP's scaling item is
// chasing, made countable.
func (t *Tracer) MergeStall() {
	if t == nil || t.stalls == nil {
		return
	}
	t.stalls.Inc()
}

// MergeStalls returns the stall count (0 when disabled or unsharded).
func (t *Tracer) MergeStalls() uint64 {
	if t == nil || t.stalls == nil {
		return 0
	}
	return t.stalls.Value()
}

// StageStat is one stage histogram's totals, for benchmark reporting.
type StageStat struct {
	Stage    Stage
	Detector string // non-empty only for StageDetect entries
	Count    uint64
	Sum      float64 // seconds
}

// Name returns the stat's reporting key: the stage name, with the
// detector appended for detect entries ("detect-sentinel").
func (s StageStat) Name() string {
	if s.Detector != "" {
		return s.Stage.String() + "-" + s.Detector
	}
	return s.Stage.String()
}

// Mean returns the mean span in seconds (0 when empty).
func (s StageStat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// StageStats snapshots every stage histogram in stage order, detect
// entries in detector order. Nil receiver returns nil.
func (t *Tracer) StageStats() []StageStat {
	if t == nil {
		return nil
	}
	stats := make([]StageStat, 0, int(numStages)+len(t.detect)-1)
	for s := Stage(0); s < numStages; s++ {
		if s == StageDetect {
			for i, h := range t.detect {
				stats = append(stats, StageStat{Stage: s, Detector: t.detectNames[i], Count: h.Count(), Sum: h.Sum()})
			}
			continue
		}
		h := t.stage[s]
		stats = append(stats, StageStat{Stage: s, Count: h.Count(), Sum: h.Sum()})
	}
	return stats
}
