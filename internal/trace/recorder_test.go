package trace

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"divscrape/internal/detector"
)

func rec(seq uint64, client, sampled, action string) Record {
	return Record{
		Seq:     seq,
		Time:    time.Unix(int64(seq), 0).UTC(),
		Client:  client,
		Sampled: sampled,
		Action:  action,
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Sample() != SampleNone {
		t.Error("nil recorder sampled")
	}
	if r.WantClient("a") {
		t.Error("nil recorder wants a client")
	}
	r.Add(rec(1, "a", "rate", ""))
	r.AddEvent(Event{Kind: "quarantine"})
	if got := r.Recent(10, "", ""); got != nil {
		t.Errorf("nil recorder Recent = %v", got)
	}
	if tl := r.Explain("a"); len(tl.Records) != 0 || len(tl.Events) != 0 {
		t.Errorf("nil recorder Explain = %+v", tl)
	}
	if r.Stats() != (RecorderStats{}) {
		t.Errorf("nil recorder Stats = %+v", r.Stats())
	}
}

// Sampling is a deterministic counter — head for the first Head
// decisions, then every Rate-th — so identical streams capture
// identical records.
func TestSampleDeterminism(t *testing.T) {
	r := newRecorder(RecorderConfig{Head: 3, Rate: 5})
	var got []SampleKind
	for i := 0; i < 12; i++ {
		got = append(got, r.Sample())
	}
	want := []SampleKind{
		SampleHead, SampleHead, SampleHead, // n = 1..3
		SampleNone, SampleRate, // n = 4, 5
		SampleNone, SampleNone, SampleNone, SampleNone, SampleRate, // 6..10
		SampleNone, SampleNone,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("decision %d sampled %v, want %v", i+1, got[i], want[i])
		}
	}
}

func TestSampleDisabled(t *testing.T) {
	r := newRecorder(RecorderConfig{Head: -1, Rate: -1})
	for i := 0; i < 1000; i++ {
		if k := r.Sample(); k != SampleNone {
			t.Fatalf("decision %d sampled %v with sampling disabled", i+1, k)
		}
	}
	if r.Stats().Seen != 1000 {
		t.Errorf("Seen = %d, want 1000", r.Stats().Seen)
	}
}

func TestHeadPreservedRingOverwrites(t *testing.T) {
	r := newRecorder(RecorderConfig{Head: 2, Rate: 1, Capacity: 3})
	r.Add(rec(0, "h0", "head", ""))
	r.Add(rec(1, "h1", "head", ""))
	for seq := uint64(2); seq < 10; seq++ {
		r.Add(rec(seq, "c"+strconv.FormatUint(seq, 10), "rate", ""))
	}
	st := r.Stats()
	if st.Captured != 10 {
		t.Errorf("Captured = %d, want 10", st.Captured)
	}
	if st.Overwritten != 5 { // 8 ring adds into capacity 3
		t.Errorf("Overwritten = %d, want 5", st.Overwritten)
	}
	if st.Held != 5 { // 2 head + 3 ring
		t.Errorf("Held = %d, want 5", st.Held)
	}
	got := r.Recent(0, "", "")
	var seqs []uint64
	for _, rr := range got {
		seqs = append(seqs, rr.Seq)
	}
	// Newest first: the surviving ring tail, then the preserved head.
	want := []uint64{9, 8, 7, 1, 0}
	if len(seqs) != len(want) {
		t.Fatalf("Recent seqs = %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("Recent seqs = %v, want %v", seqs, want)
		}
	}
}

func TestRecentFilters(t *testing.T) {
	r := newRecorder(RecorderConfig{Head: -1, Rate: 1})
	r.Add(rec(0, "alice", "rate", "allow"))
	r.Add(rec(1, "bob", "rate", "block"))
	r.Add(rec(2, "alice", "rate", "block"))

	if got := r.Recent(0, "alice", ""); len(got) != 2 {
		t.Errorf("client filter returned %d records, want 2", len(got))
	}
	if got := r.Recent(0, "", "block"); len(got) != 2 {
		t.Errorf("action filter returned %d records, want 2", len(got))
	}
	got := r.Recent(0, "alice", "block")
	if len(got) != 1 || got[0].Seq != 2 {
		t.Errorf("combined filter = %+v", got)
	}
	if got := r.Recent(1, "", ""); len(got) != 1 || got[0].Seq != 2 {
		t.Errorf("limit=1 = %+v", got)
	}
}

func TestAddDropsUnsampledRecords(t *testing.T) {
	r := newRecorder(RecorderConfig{})
	r.Add(Record{Seq: 1, Client: "a"}) // Sampled empty: dropped
	if st := r.Stats(); st.Captured != 0 || st.Held != 0 {
		t.Errorf("unsampled record stored: %+v", st)
	}
}

func TestSinkReceivesCaptureOrder(t *testing.T) {
	var seen []uint64
	r := newRecorder(RecorderConfig{
		Head: -1, Rate: 1, Capacity: 2,
		Sink: func(rec Record) { seen = append(seen, rec.Seq) },
	})
	for seq := uint64(0); seq < 5; seq++ {
		r.Add(rec(seq, "c", "rate", ""))
	}
	if len(seen) != 5 {
		t.Fatalf("sink saw %d records, want 5", len(seen))
	}
	for i, seq := range seen {
		if seq != uint64(i) {
			t.Fatalf("sink order = %v", seen)
		}
	}
}

func TestEventRingBounded(t *testing.T) {
	r := newRecorder(RecorderConfig{Events: 3})
	for i := 0; i < 5; i++ {
		r.AddEvent(Event{Time: time.Unix(int64(i), 0), Kind: "quarantine", Shard: i})
	}
	if r.Stats().Events != 5 {
		t.Errorf("Events = %d, want 5", r.Stats().Events)
	}
	tl := r.Explain("anyone")
	if len(tl.Events) != 3 {
		t.Fatalf("held %d events, want 3", len(tl.Events))
	}
	// Oldest two overwritten; survivors in order 2, 3, 4.
	for i, ev := range tl.Events {
		if ev.Shard != i+2 {
			t.Errorf("event %d shard = %d, want %d", i, ev.Shard, i+2)
		}
	}
}

func TestExplainTimeline(t *testing.T) {
	r := newRecorder(RecorderConfig{Head: 1, Rate: 1})
	r.Add(rec(0, "alice", "head", ""))
	r.Add(rec(1, "bob", "rate", ""))
	r.Add(rec(2, "alice", "rate", "block"))
	r.AddEvent(Event{Time: time.Unix(5, 0), Kind: "quarantine", Detector: "sentinel"})
	r.AddEvent(Event{Time: time.Unix(6, 0), Client: "bob", Kind: "note"})

	tl := r.Explain("alice")
	if tl.Client != "alice" {
		t.Errorf("timeline client = %q", tl.Client)
	}
	if len(tl.Records) != 2 || tl.Records[0].Seq != 0 || tl.Records[1].Seq != 2 {
		t.Errorf("timeline records = %+v", tl.Records)
	}
	// System-wide events (no client) frame every timeline; another
	// client's events do not.
	if len(tl.Events) != 1 || tl.Events[0].Kind != "quarantine" {
		t.Errorf("timeline events = %+v", tl.Events)
	}
}

func TestDetectorRecordOf(t *testing.T) {
	v := detector.Verdict{Alert: true, Score: 0.9}
	dr := DetectorRecordOf("sentinel", &v, nil)
	if dr.Detector != "sentinel" || !dr.Alert || dr.Score != 0.9 || dr.Features != nil {
		t.Errorf("record = %+v", dr)
	}
	ex := fakeExplainer{names: []string{"a", "b"}, vals: []float64{1, 2}, ok: true}
	dr = DetectorRecordOf("sentinel", &v, ex)
	if len(dr.Features) != 2 || dr.Features[1] != (Feature{Name: "b", Value: 2}) {
		t.Errorf("features = %+v", dr.Features)
	}
	// A short-circuited request (ok=false) yields no snapshot.
	ex.ok = false
	if dr = DetectorRecordOf("sentinel", &v, ex); dr.Features != nil {
		t.Errorf("short-circuited features = %+v", dr.Features)
	}
}

type fakeExplainer struct {
	names []string
	vals  []float64
	ok    bool
}

func (f fakeExplainer) FeatureNames() []string          { return f.names }
func (f fakeExplainer) LastFeatures() ([]float64, bool) { return f.vals, f.ok }

func TestTraceHandler(t *testing.T) {
	r := newRecorder(RecorderConfig{Head: -1, Rate: 1})
	r.Add(rec(0, "alice", "rate", "allow"))
	r.Add(rec(1, "bob", "rate", "block"))
	srv := httptest.NewServer(r.TraceHandler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "?client=bob&action=block")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var doc TraceResponse
	if err := json.NewDecoder(res.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Stats.Captured != 2 || len(doc.Records) != 1 || doc.Records[0].Client != "bob" {
		t.Errorf("trace response = %+v", doc)
	}

	res, err = srv.Client().Get(srv.URL + "?limit=zero")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 400 {
		t.Errorf("bad limit status = %d, want 400", res.StatusCode)
	}
}

func TestHandlersNilRecorder(t *testing.T) {
	var r *Recorder
	for _, h := range []struct {
		name string
		srv  *httptest.Server
	}{
		{"trace", httptest.NewServer(r.TraceHandler())},
		{"explain", httptest.NewServer(r.ExplainHandler())},
	} {
		res, err := h.srv.Client().Get(h.srv.URL + "?client=x")
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != 404 {
			t.Errorf("%s nil-recorder status = %d, want 404", h.name, res.StatusCode)
		}
		h.srv.Close()
	}
}

func TestExplainHandlerRequiresClient(t *testing.T) {
	r := newRecorder(RecorderConfig{})
	srv := httptest.NewServer(r.ExplainHandler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 400 {
		t.Errorf("missing client status = %d, want 400", res.StatusCode)
	}
	res, err = srv.Client().Get(srv.URL + "?client=alice")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var tl Timeline
	if err := json.NewDecoder(res.Body).Decode(&tl); err != nil {
		t.Fatal(err)
	}
	if tl.Client != "alice" {
		t.Errorf("timeline = %+v", tl)
	}
}

func TestSampleKindString(t *testing.T) {
	for k, want := range map[SampleKind]string{
		SampleNone: "", SampleHead: "head", SampleRate: "rate",
		SampleEscalation: "escalation", SampleClient: "client",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if !strings.Contains(SampleKind(99).String(), "sample") {
		t.Errorf("out-of-range String() = %q", SampleKind(99).String())
	}
}
