package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// This file serves the flight recorder over HTTP. Both debug surfaces
// (httpguard's DebugHandler and scrapedetect's -metrics-addr mux) mount
// the same two handlers, so the wire format is defined once, here.

// TraceResponse is the document served by TraceHandler.
type TraceResponse struct {
	Stats   RecorderStats `json:"stats"`
	Records []Record      `json:"records"`
}

const defaultTraceLimit = 64

// TraceHandler serves recent flight records as JSON, newest first.
// Query parameters: client (exact match), action (exact match, e.g.
// "block"), limit (default 64). A nil recorder serves 404, so the
// endpoint can be mounted unconditionally.
func (r *Recorder) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		q := req.URL.Query()
		limit := defaultTraceLimit
		if s := q.Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
				return
			}
			limit = n
		}
		resp := TraceResponse{
			Stats:   r.Stats(),
			Records: r.Recent(limit, q.Get("client"), q.Get("action")),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}

// ExplainHandler serves one client's full provenance timeline as JSON.
// The client query parameter is required. A nil recorder serves 404.
func (r *Recorder) ExplainHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		client := req.URL.Query().Get("client")
		if client == "" {
			http.Error(w, "client query parameter required", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Explain(client))
	})
}
