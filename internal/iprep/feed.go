package iprep

// The synthetic address plan. The workload generator allocates client
// addresses from these ranges and the reputation feed below classifies
// them, with deliberate gaps: reputation data is never complete in the
// field, and the gaps are precisely what makes the behavioural detector
// complementary (the diversity the paper observes).
//
// All ranges are carved from documentation/test space and private space so
// no real operator's addresses are implicated.
var (
	// ResidentialRanges model consumer ISP space. Feeds know them as
	// residential; humans and residential-proxy botnets share them.
	ResidentialRanges = []Prefix{
		MustCIDR("10.0.0.0/13"),
		MustCIDR("10.32.0.0/13"),
		MustCIDR("10.64.0.0/14"),
	}
	// MobileRanges model carrier-grade NAT gateways: few addresses, very
	// many users each.
	MobileRanges = []Prefix{
		MustCIDR("10.96.0.0/19"),
	}
	// CorporateRanges model enterprise egress NAT.
	CorporateRanges = []Prefix{
		MustCIDR("10.112.0.0/17"),
	}
	// DatacenterRanges model hosting providers; the classic home of naive
	// scrapers.
	DatacenterRanges = []Prefix{
		MustCIDR("172.16.0.0/14"),
		MustCIDR("172.20.0.0/15"),
	}
	// DatacenterUnlistedRanges are hosting ranges missing from the feed —
	// a fresh cloud region the feed has not caught up with.
	DatacenterUnlistedRanges = []Prefix{
		MustCIDR("172.22.0.0/16"),
	}
	// ProxyRanges are known anonymising proxy/VPN exits.
	ProxyRanges = []Prefix{
		MustCIDR("192.168.0.0/18"),
	}
	// TorExitRanges are published Tor exits.
	TorExitRanges = []Prefix{
		MustCIDR("192.168.64.0/22"),
	}
	// SearchEngineRanges are verified crawler ranges.
	SearchEngineRanges = []Prefix{
		MustCIDR("192.168.80.0/22"),
	}
	// KnownScraperRanges are confirmed scraping infrastructure, the
	// equivalent of a commercial blocklist entry.
	KnownScraperRanges = []Prefix{
		MustCIDR("192.168.96.0/21"),
	}
)

// BuildFeed constructs the reputation database a commercial product would
// ship: every range above except the deliberately unlisted ones.
func BuildFeed() *DB {
	db := NewDB()
	insert := func(ps []Prefix, c Category) {
		for _, p := range ps {
			db.Insert(p, c)
		}
	}
	insert(ResidentialRanges, Residential)
	insert(MobileRanges, Mobile)
	insert(CorporateRanges, Corporate)
	insert(DatacenterRanges, Datacenter)
	insert(ProxyRanges, ProxyVPN)
	insert(TorExitRanges, TorExit)
	insert(SearchEngineRanges, SearchEngine)
	insert(KnownScraperRanges, KnownScraper)
	return db
}
