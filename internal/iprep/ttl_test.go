package iprep

import (
	"sync"
	"testing"
	"time"
)

func TestInsertTemporaryOverridesAndExpires(t *testing.T) {
	db := BuildFeed()
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

	// A residential /24 gets confirmed as scraper infrastructure for a day.
	p := MustCIDR("10.1.2.0/24")
	ip, _ := ParseIPv4("10.1.2.3")
	if cat, _ := db.Lookup(ip); cat != Residential {
		t.Fatalf("before overlay: %v, want residential", cat)
	}
	db.InsertTemporary(p, KnownScraper, base.Add(24*time.Hour))
	if cat, ok := db.Lookup(ip); !ok || cat != KnownScraper {
		t.Errorf("with overlay: %v, want known-scraper", cat)
	}
	if db.TempLen() != 1 {
		t.Errorf("TempLen = %d, want 1", db.TempLen())
	}
	// Unrelated addresses are untouched.
	other, _ := ParseIPv4("10.1.3.3")
	if cat, _ := db.Lookup(other); cat != Residential {
		t.Errorf("sibling address affected: %v", cat)
	}

	// Before the TTL the sweep keeps it; after, it evicts and the static
	// feed answer returns.
	if n := db.EvictBefore(base.Add(23 * time.Hour)); n != 0 {
		t.Errorf("evicted %d before expiry", n)
	}
	if n := db.EvictBefore(base.Add(25 * time.Hour)); n != 1 {
		t.Errorf("evicted %d after expiry, want 1", n)
	}
	if cat, _ := db.Lookup(ip); cat != Residential {
		t.Errorf("after eviction: %v, want residential", cat)
	}
}

func TestTemporarySpecificityAndReplacement(t *testing.T) {
	db := NewDB()
	db.Insert(MustCIDR("10.0.0.0/8"), Residential)
	until := time.Date(2026, 7, 2, 0, 0, 0, 0, time.UTC)
	ip, _ := ParseIPv4("10.9.9.9")

	// A less specific overlay entry loses to a more specific static one.
	db.Insert(MustCIDR("10.9.9.0/24"), Corporate)
	db.InsertTemporary(MustCIDR("10.0.0.0/8"), ProxyVPN, until)
	if cat, _ := db.Lookup(ip); cat != Corporate {
		t.Errorf("broad overlay beat specific static: %v", cat)
	}

	// Equal specificity: overlay wins.
	db.InsertTemporary(MustCIDR("10.9.9.0/24"), KnownScraper, until)
	if cat, _ := db.Lookup(ip); cat != KnownScraper {
		t.Errorf("equal-specificity overlay lost: %v", cat)
	}

	// Re-inserting the same prefix replaces, not accumulates.
	db.InsertTemporary(MustCIDR("10.9.9.0/24"), TorExit, until.Add(time.Hour))
	if db.TempLen() != 2 {
		t.Errorf("TempLen = %d, want 2", db.TempLen())
	}
	if cat, _ := db.Lookup(ip); cat != TorExit {
		t.Errorf("replacement not visible: %v", cat)
	}

	// Overlay answers for addresses no static prefix covers.
	outside, _ := ParseIPv4("203.0.113.9")
	if _, ok := db.Lookup(outside); ok {
		t.Fatal("unexpected static match")
	}
	db.InsertTemporary(MustCIDR("203.0.113.0/24"), KnownScraper, until)
	if cat, ok := db.Lookup(outside); !ok || cat != KnownScraper {
		t.Errorf("overlay-only lookup = %v, %v", cat, ok)
	}
}

// The overlay mutates behind an atomic pointer, so lookups may race with
// inserts and sweeps (run under -race in CI).
func TestTemporaryConcurrentLookups(t *testing.T) {
	db := BuildFeed()
	until := time.Date(2026, 7, 2, 0, 0, 0, 0, time.UTC)
	ip, _ := ParseIPv4("172.22.5.5")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					db.Lookup(ip)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		db.InsertTemporary(Prefix{IP: 0xAC160000 + uint32(i)<<8, Bits: 24}, KnownScraper, until)
		if i%10 == 0 {
			db.EvictBefore(until.Add(time.Hour))
		}
	}
	close(stop)
	wg.Wait()
}

// Mutators serialise on the overlay lock: concurrent operator pushes and
// sweeper evictions must never lose an update (run under -race in CI).
func TestTemporaryConcurrentMutatorsLoseNothing(t *testing.T) {
	db := NewDB()
	until := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	const writers, perWriter = 4, 64
	var wg sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				p := Prefix{IP: uint32(wtr)<<24 | uint32(i)<<8, Bits: 24}
				db.InsertTemporary(p, KnownScraper, until)
				// Interleave sweeps that can evict nothing (everything
				// expires later) but do rewrite the overlay.
				db.EvictBefore(until.Add(-time.Hour))
			}
		}(wtr)
	}
	wg.Wait()
	if got := db.TempLen(); got != writers*perWriter {
		t.Errorf("TempLen = %d after concurrent inserts, want %d (updates lost)",
			got, writers*perWriter)
	}
}

func TestMergeTemporaryLongestLeaseWins(t *testing.T) {
	db := NewDB()
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	p := MustCIDR("203.0.113.0/24")

	if !db.MergeTemporary(TempEntry{Prefix: p, Cat: ProxyVPN, Until: base.Add(time.Hour)}) {
		t.Fatal("fresh entry not applied")
	}
	// A shorter or equal lease for the same prefix is stale.
	if db.MergeTemporary(TempEntry{Prefix: p, Cat: KnownScraper, Until: base.Add(time.Hour)}) {
		t.Fatal("equal-lease entry applied")
	}
	if db.MergeTemporary(TempEntry{Prefix: p, Cat: KnownScraper, Until: base.Add(30 * time.Minute)}) {
		t.Fatal("shorter-lease entry applied")
	}
	if cat, ok := db.Lookup(p.Nth(1)); !ok || cat != ProxyVPN {
		t.Fatalf("lookup after stale merges = %v/%v, want ProxyVPN", cat, ok)
	}
	// A longer lease replaces, category included.
	if !db.MergeTemporary(TempEntry{Prefix: p, Cat: KnownScraper, Until: base.Add(2 * time.Hour)}) {
		t.Fatal("longer-lease entry not applied")
	}
	if cat, _ := db.Lookup(p.Nth(1)); cat != KnownScraper {
		t.Fatalf("lookup after upgrade = %v, want KnownScraper", cat)
	}
	if db.TempLen() != 1 {
		t.Fatalf("TempLen = %d, want 1", db.TempLen())
	}
	// Out-of-range bits never land.
	if db.MergeTemporary(TempEntry{Prefix: Prefix{Bits: 40}, Cat: ProxyVPN, Until: base.Add(time.Hour)}) {
		t.Fatal("invalid prefix applied")
	}
	// Nor do unknown categories — this is peer-supplied data.
	if db.MergeTemporary(TempEntry{Prefix: p, Cat: Category(99), Until: base.Add(3 * time.Hour)}) {
		t.Fatal("out-of-range category applied")
	}
	if db.MergeTemporary(TempEntry{Prefix: p, Cat: Category(-1), Until: base.Add(3 * time.Hour)}) {
		t.Fatal("negative category applied")
	}
}

func TestTempEntriesRoundTripThroughMerge(t *testing.T) {
	src := NewDB()
	dst := NewDB()
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	src.InsertTemporary(MustCIDR("198.51.100.0/24"), KnownScraper, base.Add(time.Hour))
	src.InsertTemporary(MustCIDR("192.0.2.64/26"), ProxyVPN, base.Add(2*time.Hour))

	applied := 0
	src.TempEntries(func(e TempEntry) {
		if dst.MergeTemporary(e) {
			applied++
		}
	})
	if applied != 2 || dst.TempLen() != 2 {
		t.Fatalf("applied %d entries, TempLen %d, want 2/2", applied, dst.TempLen())
	}
	// Second delivery of the same window is a no-op.
	src.TempEntries(func(e TempEntry) {
		if dst.MergeTemporary(e) {
			t.Fatalf("duplicate entry %v applied", e.Prefix)
		}
	})
}
