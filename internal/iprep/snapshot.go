package iprep

import (
	"fmt"

	"divscrape/internal/statecodec"
)

// tagDB opens a reputation-table block in a snapshot.
const tagDB uint16 = 0x4902

// SnapshotInto implements statecodec.Snapshotter: the full prefix table
// is written in ascending address order (Walk's order), so equal tables
// always serialise to equal bytes. Reputation feeds mutate at runtime
// (feed refreshes insert prefixes), which is what makes the table a
// stateful layer worth checkpointing rather than reconstructing.
func (db *DB) SnapshotInto(w *statecodec.Writer) {
	w.Tag(tagDB)
	w.Uint32(uint32(db.count))
	db.Walk(func(p Prefix, c Category) bool {
		w.Uint32(p.IP)
		w.Uint8(uint8(p.Bits))
		w.Uint8(uint8(c))
		return true
	})
}

// RestoreFrom implements statecodec.Snapshotter, replacing the current
// table contents. The new table is built on the side and swapped in only
// when the whole payload decodes, so a corrupt snapshot leaves the
// receiver's table untouched rather than half-replaced.
func (db *DB) RestoreFrom(r *statecodec.Reader) error {
	if err := r.Expect(tagDB); err != nil {
		return err
	}
	n := r.Count(4 + 1 + 1)
	if r.Err() != nil {
		return r.Err()
	}
	next := NewDB()
	for i := 0; i < n; i++ {
		ip := r.Uint32()
		bits := int(r.Uint8())
		cat := Category(r.Uint8())
		if r.Err() != nil {
			return r.Err()
		}
		if bits > 32 {
			return fmt.Errorf("%w: prefix length %d", statecodec.ErrCorrupt, bits)
		}
		if cat < Unknown || cat > KnownScraper {
			return fmt.Errorf("%w: reputation category %d", statecodec.ErrCorrupt, int(cat))
		}
		next.Insert(Prefix{IP: ip & maskFor(bits), Bits: bits}, cat)
	}
	if err := r.Err(); err != nil {
		return err
	}
	// Replace the static trie only: the dynamic TTL overlay is runtime
	// intel, deliberately outside the snapshot (see ttl.go), and its
	// atomic pointer must not be copied over in any case.
	db.root, db.count = next.root, next.count
	return nil
}
